#!/bin/sh
# Tier-1 verification for the PANDAS reproduction (referenced from
# ROADMAP.md). Fails fast on the first broken step.
set -eu

cd "$(dirname "$0")"

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt: needs formatting:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test ./..."
go test ./...

echo "== go test -race (membership, core, fetch, blob, rs, gf65536, kzg, obsv, transport, wire, adversary, gateway, simnet, swarm)"
go test -race ./internal/membership ./internal/core ./internal/fetch \
	./internal/blob ./internal/rs ./internal/gf65536 ./internal/kzg \
	./internal/obsv ./internal/transport ./internal/wire \
	./internal/adversary ./internal/gateway ./internal/simnet \
	./internal/swarm

echo "== swarm smoke (8 processes, 1 slot, real UDP)"
go run ./cmd/pandas-swarm -n 8 -k 4 -samples 4 -slots 1 -timeout 90s -q

echo "verify: OK"

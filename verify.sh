#!/bin/sh
# Tier-1 verification for the PANDAS reproduction (referenced from
# ROADMAP.md). Fails fast on the first broken step.
set -eu

cd "$(dirname "$0")"

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test ./..."
go test ./...

echo "== go test -race (membership, core, fetch)"
go test -race ./internal/membership ./internal/core ./internal/fetch

echo "verify: OK"

#!/bin/sh
# Tier-1 verification for the PANDAS reproduction (referenced from
# ROADMAP.md). Fails fast on the first broken step.
set -eu

cd "$(dirname "$0")"

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test ./..."
go test ./...

echo "== go test -race (membership, core, fetch, blob, rs, gf65536, obsv)"
go test -race ./internal/membership ./internal/core ./internal/fetch \
	./internal/blob ./internal/rs ./internal/gf65536 ./internal/obsv

echo "verify: OK"

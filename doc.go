// Package pandas is a from-scratch Go implementation of PANDAS
// (Peer-to-peer, Adaptive Networking allowing Data Availability Sampling
// within Ethereum consensus timebounds, Middleware 2025): a protocol that
// disseminates erasure-extended layer-2 blob data and verifies its
// availability by random sampling, all within the first four seconds of
// an Ethereum consensus slot (the tight fork-choice rule).
//
// # Architecture
//
// The protocol proceeds in three phases per 12-second slot:
//
//  1. Seeding: the slot's builder pushes parcels of the 512x512
//     erasure-extended cell matrix directly (UDP, one hop) to the nodes
//     deterministically assigned to custody each row and column.
//  2. Consolidation: every node fetches its assigned rows and columns
//     from peers with overlapping assignments, reconstructing lines from
//     any half of their cells with the rate-1/2 Reed-Solomon code.
//  3. Sampling: concurrently, every node retrieves 73 random cells;
//     success implies the blob is reconstructable with probability
//     1 - 1e-9.
//
// Both consolidation and sampling share an adaptive fetching algorithm
// that grows query redundancy and shrinks timeouts as the 4-second
// deadline approaches.
//
// This package is the public facade. The implementation lives in
// internal packages: the protocol (internal/core), its substrates
// (erasure coding, assignment, commitments, wire formats, a
// discrete-event network simulator, a real UDP transport, Kademlia and
// GossipSub overlays for the paper's baselines), and the experiment
// harness regenerating every table and figure of the paper's evaluation
// (internal/experiments). See DESIGN.md for the full inventory and
// EXPERIMENTS.md for reproduction results.
//
// # Quick start
//
// Simulate a 1,000-node slot:
//
//	cluster, err := pandas.NewCluster(pandas.ClusterConfig{
//		Core: pandas.DefaultConfig(),
//		N:    1000,
//		Seed: 1,
//	})
//	if err != nil { ... }
//	res, err := cluster.RunSlot(1)
//	fmt.Println(res.DeadlineRate(4 * time.Second)) // fraction sampling on time
//
// Or run a real slot over loopback UDP sockets with full payloads,
// commitments, and signatures:
//
//	ln, err := pandas.NewLocalnet(cfg, 16, seed)
//	times, err := ln.RunSlot(1, 8*time.Second)
package pandas

// Command pandas-swarm runs a multi-process PANDAS deployment on one
// machine: it launches N pandas-node worker processes plus a builder
// process, distributes configuration over a UDP control channel, waits
// for the workers' discovery crawl to converge from a handful of
// bootstrap peers, then drives slots end-to-end over real sockets and
// prints a per-slot report in the simnet's schema.
//
//	pandas-swarm -n 64 -slots 3
//	pandas-swarm -n 32 -slots 5 -kill 0.1        # kill 10% of nodes per slot
//	pandas-swarm -n 8 -bin ./pandas-node         # use a prebuilt worker binary
//
// Without -bin the worker binary is compiled from the enclosing module
// (go build pandas/cmd/pandas-node) into a temporary directory.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"pandas/internal/swarm"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "pandas-swarm:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("pandas-swarm", flag.ContinueOnError)
	var (
		n         = fs.Int("n", 64, "protocol nodes (one process each, plus a builder process)")
		slots     = fs.Int("slots", 3, "slots to drive")
		seed      = fs.Int64("seed", 42, "deployment seed")
		k         = fs.Int("k", 8, "base matrix size K (extended is 2K x 2K)")
		custody   = fs.Int("custody", 4, "rows and columns per node")
		samples   = fs.Int("samples", 6, "random cells sampled per slot")
		kill      = fs.Float64("kill", 0, "fraction of node processes killed per slot (fault injection)")
		killDelay = fs.Duration("kill-delay", 500*time.Millisecond, "kill injection delay after slot start")
		bootstrap = fs.Int("bootstrap", 4, "bootstrap peers handed to each worker")
		bin       = fs.String("bin", "", "prebuilt pandas-node binary (default: go build from the module)")
		timeout   = fs.Duration("timeout", 0, "hard wall-clock limit for the whole run (0 = none)")
		quiet     = fs.Bool("q", false, "suppress supervisor/worker diagnostics")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *timeout > 0 {
		time.AfterFunc(*timeout, func() {
			fmt.Fprintf(os.Stderr, "pandas-swarm: timeout after %v\n", *timeout)
			os.Exit(2)
		})
	}

	workerBin := *bin
	if workerBin == "" {
		dir, err := os.MkdirTemp("", "pandas-swarm-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		fmt.Fprintln(os.Stderr, "pandas-swarm: building pandas-node worker binary...")
		workerBin, err = swarm.BuildNodeBinary(dir)
		if err != nil {
			return err
		}
	}

	g := swarm.DefaultGeometry()
	g.K = *k
	g.Custody = *custody
	g.Samples = *samples

	opts := swarm.Options{
		N:             *n,
		Slots:         *slots,
		Seed:          *seed,
		Geometry:      g,
		BootstrapSize: *bootstrap,
		KillFraction:  *kill,
		KillDelay:     *killDelay,
		Command:       swarm.NodeBinaryCommand(workerBin),
		ScrapeMetrics: true,
	}
	if !*quiet {
		opts.Log = os.Stderr
	}

	res, err := swarm.Run(opts)
	if res != nil {
		fmt.Print(res.Render())
	}
	return err
}

// Command pandas-sim runs one of the paper's evaluation experiments and
// prints the corresponding table/figure data.
//
// Usage:
//
//	pandas-sim -exp fig9  -nodes 1000 -slots 10
//	pandas-sim -exp fig13 -sizes 1000,3000,5000
//	pandas-sim -exp table1 -nodes 1000
//	pandas-sim -exp confidence
//	pandas-sim -list
//
// The default parameters are the paper's full Danksharding configuration
// (512x512 extended matrix); use -small for the scaled-down geometry when
// exploring on a laptop.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"pandas/internal/core"
	"pandas/internal/experiments"
	"pandas/internal/metrics"
	"pandas/internal/obsv"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "pandas-sim:", err)
		os.Exit(1)
	}
}

// listOutput is the registry-generated -list text.
func listOutput() string { return experiments.ListText() }

func run(args []string) error {
	fs := flag.NewFlagSet("pandas-sim", flag.ContinueOnError)
	var (
		exp    = fs.String("exp", "", "experiment to run (use -list to enumerate)")
		nodes  = fs.Int("nodes", 1000, "network size")
		slots  = fs.Int("slots", 10, "slots to aggregate")
		seed   = fs.Int64("seed", 1, "random seed")
		small  = fs.Bool("small", false, "use the scaled-down 32x32 geometry (fast)")
		loss   = fs.Float64("loss", -1, "message loss rate in [0,1) (unset: simulator default 3%; 0 disables loss)")
		list   = fs.Bool("list", false, "list experiments and exit")
		csvDir = fs.String("csv", "", "also write sampling CDF CSVs into this directory (fig9/fig11/fig12)")
		trace  = fs.String("trace", "", "record a protocol event trace and write it to this JSONL file")
	)
	params := experiments.DefaultParams()
	experiments.BindFlags(fs, &params)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		fmt.Println(listOutput())
		return nil
	}
	e, ok := experiments.Lookup(*exp)
	if !ok {
		if *exp == "" {
			return fmt.Errorf("missing -exp (use -list to enumerate)")
		}
		return fmt.Errorf("unknown experiment %q (use -list to enumerate)", *exp)
	}
	o := experiments.Options{Nodes: *nodes, Slots: *slots, Seed: *seed}
	lossSet := false
	fs.Visit(func(f *flag.Flag) { lossSet = lossSet || f.Name == "loss" })
	if lossSet {
		if *loss < 0 || *loss >= 1 {
			return fmt.Errorf("-loss: %v is not in [0, 1)", *loss)
		}
		o.LossRate = experiments.Loss(*loss)
	}
	if *small {
		o.Core = core.TestConfig()
	} else {
		o.Core = core.DefaultConfig()
	}
	var ring *obsv.Ring
	if *trace != "" {
		var rerr error
		ring, rerr = obsv.NewRing(o.Core.TraceRing)
		if rerr != nil {
			return rerr
		}
		o.Core.Recorder = ring
	}

	res, err := e.Run(o, &params)
	if err != nil {
		return err
	}
	fmt.Println(res.Render())
	if *csvDir != "" {
		if err := writeCSVs(*csvDir, *exp, res); err != nil {
			return fmt.Errorf("write csv: %w", err)
		}
	}
	if ring != nil {
		if err := writeTrace(*trace, ring); err != nil {
			return fmt.Errorf("write trace: %w", err)
		}
	}
	return nil
}

// writeTrace dumps the recorded events as JSON Lines (load them back
// with obsv.ReadJSONL / obsv.NewTimeline).
func writeTrace(path string, ring *obsv.Ring) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	events := ring.Events()
	if err := obsv.WriteJSONL(f, events); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if lost := ring.Overwritten(); lost > 0 {
		fmt.Fprintf(os.Stderr, "trace: ring wrapped, oldest %d of %d events lost (raise Config.TraceRing)\n",
			lost, ring.Recorded())
	}
	fmt.Fprintf(os.Stderr, "trace: wrote %d events to %s\n", len(events), path)
	return nil
}

// writeCSVs exports plottable sampling CDFs for the figure experiments.
func writeCSVs(dir, exp string, res experiments.Renderer) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	write := func(name string, d *metrics.Distribution) error {
		f, err := os.Create(filepath.Join(dir, name+".csv"))
		if err != nil {
			return err
		}
		defer f.Close()
		return d.WriteCDFCSV(f, 100)
	}
	switch r := res.(type) {
	case *experiments.Fig9Result:
		for _, p := range r.Policies {
			if err := write(exp+"-sampling-"+p.String(), r.PerPhase[p].Sampling); err != nil {
				return err
			}
		}
		if r.Block != nil {
			return write(exp+"-block", r.Block)
		}
	case *experiments.Fig11Result:
		if err := write(exp+"-adaptive", r.AdaptiveSampling); err != nil {
			return err
		}
		return write(exp+"-constant", r.ConstantSampling)
	case *experiments.Fig12Result:
		for sys, sr := range r.Systems {
			if err := write(exp+"-"+string(sys), sr.Sampling); err != nil {
				return err
			}
		}
	}
	return nil
}

// Command pandas-sim runs one of the paper's evaluation experiments and
// prints the corresponding table/figure data.
//
// Usage:
//
//	pandas-sim -exp fig9  -nodes 1000 -slots 10
//	pandas-sim -exp fig13 -sizes 1000,3000,5000
//	pandas-sim -exp table1 -nodes 1000
//	pandas-sim -exp confidence
//	pandas-sim -list
//
// The default parameters are the paper's full Danksharding configuration
// (512x512 extended matrix); use -small for the scaled-down geometry when
// exploring on a laptop.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"pandas/internal/adversary"
	"pandas/internal/core"
	"pandas/internal/experiments"
	"pandas/internal/metrics"
	"pandas/internal/obsv"
)

type renderer interface{ Render() string }

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "pandas-sim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("pandas-sim", flag.ContinueOnError)
	var (
		exp    = fs.String("exp", "", "experiment: fig9 fig10 table1 fig11 fig12 fig13 fig14 fig15a fig15b churn ablation validate confidence adversary withholding byzantine gateway")
		nodes  = fs.Int("nodes", 1000, "network size")
		slots  = fs.Int("slots", 10, "slots to aggregate")
		seed   = fs.Int64("seed", 1, "random seed")
		small  = fs.Bool("small", false, "use the scaled-down 32x32 geometry (fast)")
		sizes  = fs.String("sizes", "", "comma-separated sizes for fig13/fig14 (default paper sizes)")
		fracs  = fs.String("fractions", "", "comma-separated fault fractions for fig15 (default 0,0.2,...,0.8)")
		rates  = fs.String("rates", "", "comma-separated churn rates (departures/node/slot) for churn (default 0,0.05,0.1,0.2,0.4)")
		list   = fs.Bool("list", false, "list experiments and exit")
		csvDir = fs.String("csv", "", "also write sampling CDF CSVs into this directory (fig9/fig11/fig12)")
		trials = fs.Int("trials", 20000, "Monte Carlo trials for confidence/adversary")
		behav  = fs.String("behavior", "silent", "byzantine behavior for adversary: silent laggard garbage")
		trace  = fs.String("trace", "", "record a protocol event trace and write it to this JSONL file")

		clients = fs.Int("clients", 100_000, "gateway: concurrent synthetic light clients per slot")
		queries = fs.Int("queries", 3, "gateway: sampling queries per client per slot")
		zipf    = fs.Float64("zipf", 1.2, "gateway: zipf exponent of cell popularity (>1)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		fmt.Println(`experiments:
  fig9        phase-time distributions per seeding policy (Fig. 9a-d)
  fig10       per-node fetch traffic per policy (Fig. 10)
  table1      per-round fetching statistics (Table 1)
  fig11       adaptive vs constant fetching (Fig. 11)
  fig12       PANDAS vs GossipSub vs DHT at one scale (Fig. 12)
  fig13       PANDAS scaling sweep (Fig. 13)
  fig14       system comparison across scales (Fig. 14)
  fig15a      dead-node sweep (Fig. 15a)
  fig15b      out-of-view sweep (Fig. 15b)
  churn       dynamic membership: churn rate vs sampling-deadline success
  ablation    builder seeding-redundancy sweep (design knob, paper 9)
  validate    metadata vs real data plane cross-validation (8.2)
  confidence  sampling false-positive analysis (Section 3)
  adversary   withholding detection + byzantine-fraction sweep (threat model)
  withholding withholding-detection table only (cluster vs Monte Carlo)
  byzantine   byzantine-fraction sweep only (-behavior, -fractions)
  gateway     sampling-gateway load: coalescing/cache under 100k+ light clients (-clients, -queries, -zipf)`)
		return nil
	}
	o := experiments.Options{Nodes: *nodes, Slots: *slots, Seed: *seed, LossRate: -0}
	if *small {
		o.Core = core.TestConfig()
	} else {
		o.Core = core.DefaultConfig()
	}
	var ring *obsv.Ring
	if *trace != "" {
		var rerr error
		ring, rerr = obsv.NewRing(o.Core.TraceRing)
		if rerr != nil {
			return rerr
		}
		o.Core.Recorder = ring
	}

	var (
		res renderer
		err error
	)
	switch *exp {
	case "fig9":
		res, err = experiments.Fig9(o)
	case "fig10":
		res, err = experiments.Fig10(o)
	case "table1":
		res, err = experiments.Table1(o)
	case "fig11":
		res, err = experiments.Fig11(o)
	case "fig12":
		res, err = experiments.Fig12(o)
	case "fig13":
		res, err = experiments.Fig13(o, parseSizes(*sizes))
	case "fig14":
		res, err = experiments.Fig14(o, parseSizes(*sizes))
	case "fig15a":
		res, err = experiments.Fig15(o, experiments.FaultDead, parseFracs(*fracs))
	case "fig15b":
		res, err = experiments.Fig15(o, experiments.FaultOutOfView, parseFracs(*fracs))
	case "churn":
		rr, perr := parseRates(*rates)
		if perr != nil {
			return perr
		}
		res, err = experiments.Churn(o, rr)
	case "validate":
		res, err = experiments.Validate(o)
	case "ablation":
		res, err = experiments.Ablation(o, parseSizes(*sizes))
	case "confidence":
		res = experiments.Confidence(o.Core.Blob.N(), nil, *trials, *seed)
	case "adversary", "withholding", "byzantine":
		b, ok := map[string]adversary.Behavior{
			"silent":  adversary.Silent,
			"laggard": adversary.Laggard,
			"garbage": adversary.Garbage,
		}[*behav]
		if !ok {
			return fmt.Errorf("-behavior: unknown behavior %q (silent, laggard, garbage)", *behav)
		}
		switch *exp {
		case "withholding":
			res, err = experiments.Withholding(o, nil, *trials)
		case "byzantine":
			res, err = experiments.Byzantine(o, b, parseFracs(*fracs))
		default:
			res, err = experiments.Adversary(o, b, parseFracs(*fracs), *trials)
		}
	case "gateway":
		res, err = experiments.GatewayLoad(o, experiments.GatewayLoadOptions{
			Clients: *clients, QueriesPerClient: *queries, ZipfS: *zipf,
		})
	case "":
		return fmt.Errorf("missing -exp (use -list to enumerate)")
	default:
		return fmt.Errorf("unknown experiment %q", *exp)
	}
	if err != nil {
		return err
	}
	fmt.Println(res.Render())
	if *csvDir != "" {
		if err := writeCSVs(*csvDir, *exp, res); err != nil {
			return fmt.Errorf("write csv: %w", err)
		}
	}
	if ring != nil {
		if err := writeTrace(*trace, ring); err != nil {
			return fmt.Errorf("write trace: %w", err)
		}
	}
	return nil
}

// writeTrace dumps the recorded events as JSON Lines (load them back
// with obsv.ReadJSONL / obsv.NewTimeline).
func writeTrace(path string, ring *obsv.Ring) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	events := ring.Events()
	if err := obsv.WriteJSONL(f, events); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if lost := ring.Overwritten(); lost > 0 {
		fmt.Fprintf(os.Stderr, "trace: ring wrapped, oldest %d of %d events lost (raise Config.TraceRing)\n",
			lost, ring.Recorded())
	}
	fmt.Fprintf(os.Stderr, "trace: wrote %d events to %s\n", len(events), path)
	return nil
}

// writeCSVs exports plottable sampling CDFs for the figure experiments.
func writeCSVs(dir, exp string, res renderer) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	write := func(name string, d *metrics.Distribution) error {
		f, err := os.Create(filepath.Join(dir, name+".csv"))
		if err != nil {
			return err
		}
		defer f.Close()
		return d.WriteCDFCSV(f, 100)
	}
	switch r := res.(type) {
	case *experiments.Fig9Result:
		for _, p := range r.Policies {
			if err := write(exp+"-sampling-"+p.String(), r.PerPhase[p].Sampling); err != nil {
				return err
			}
		}
		if r.Block != nil {
			return write(exp+"-block", r.Block)
		}
	case *experiments.Fig11Result:
		if err := write(exp+"-adaptive", r.AdaptiveSampling); err != nil {
			return err
		}
		return write(exp+"-constant", r.ConstantSampling)
	case *experiments.Fig12Result:
		for sys, sr := range r.Systems {
			if err := write(exp+"-"+string(sys), sr.Sampling); err != nil {
				return err
			}
		}
	}
	return nil
}

func parseSizes(s string) []int {
	if s == "" {
		return nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err == nil && v > 0 {
			out = append(out, v)
		}
	}
	return out
}

func parseRates(s string) ([]float64, error) {
	if s == "" {
		return nil, nil
	}
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil || v < 0 {
			return nil, fmt.Errorf("-rates: %q is not a non-negative number", strings.TrimSpace(part))
		}
		out = append(out, v)
	}
	return out, nil
}

func parseFracs(s string) []float64 {
	if s == "" {
		return nil
	}
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err == nil && v >= 0 && v < 1 {
			out = append(out, v)
		}
	}
	return out
}

package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestParseSizes(t *testing.T) {
	got := parseSizes("100, 200,bogus, -3,300")
	want := []int{100, 200, 300}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	if parseSizes("") != nil {
		t.Fatal("empty should be nil")
	}
}

func TestParseFracs(t *testing.T) {
	got := parseFracs("0, 0.2, 1.5, -1, 0.8")
	want := []float64{0, 0.2, 0.8}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestRunRejectsUnknownExperiment(t *testing.T) {
	if err := run([]string{"-exp", "nope", "-small"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if err := run([]string{"-small"}); err == nil {
		t.Fatal("missing experiment accepted")
	}
	if err := run([]string{"-list"}); err != nil {
		t.Fatalf("-list failed: %v", err)
	}
}

func TestRunConfidenceSmall(t *testing.T) {
	if err := run([]string{"-exp", "confidence", "-small", "-trials", "200"}); err != nil {
		t.Fatal(err)
	}
}

func TestCSVExport(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-exp", "fig11", "-small", "-nodes", "60", "-slots", "1", "-csv", dir}); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"fig11-adaptive.csv", "fig11-constant.csv"} {
		if _, err := os.Stat(filepath.Join(dir, want)); err != nil {
			t.Fatalf("missing %s: %v", want, err)
		}
	}
}

package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunRejectsBadLists: the unified parsers fail loudly on malformed
// sweep lists instead of silently dropping entries (the old behavior).
func TestRunRejectsBadLists(t *testing.T) {
	for _, args := range [][]string{
		{"-exp", "fig13", "-small", "-sizes", "100,bogus"},
		{"-exp", "fig13", "-small", "-sizes", "100,-3"},
		{"-exp", "fig15a", "-small", "-fractions", "0,1.5"},
		{"-exp", "churn", "-small", "-rates", "0.1,nope"},
		{"-exp", "byzantine", "-small", "-behavior", "sneaky"},
		{"-exp", "fig9", "-small", "-loss", "1.5"},
	} {
		if err := run(args); err == nil {
			t.Fatalf("accepted %v", args)
		}
	}
}

func TestRunRejectsUnknownExperiment(t *testing.T) {
	if err := run([]string{"-exp", "nope", "-small"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if err := run([]string{"-small"}); err == nil {
		t.Fatal("missing experiment accepted")
	}
	if err := run([]string{"-list"}); err != nil {
		t.Fatalf("-list failed: %v", err)
	}
}

func TestRunConfidenceSmall(t *testing.T) {
	if err := run([]string{"-exp", "confidence", "-small", "-trials", "200"}); err != nil {
		t.Fatal(err)
	}
}

// TestRunLossFlag: -loss 0 must run lossless (accepted, not treated as
// "unset"); this was impossible to express before the pointer option.
func TestRunLossFlag(t *testing.T) {
	if err := run([]string{"-exp", "table1", "-small", "-nodes", "60", "-slots", "1", "-loss", "0"}); err != nil {
		t.Fatal(err)
	}
}

func TestCSVExport(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-exp", "fig11", "-small", "-nodes", "60", "-slots", "1", "-csv", dir}); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"fig11-adaptive.csv", "fig11-constant.csv"} {
		if _, err := os.Stat(filepath.Join(dir, want)); err != nil {
			t.Fatalf("missing %s: %v", want, err)
		}
	}
}

// TestListIsRegistryGenerated: a new registry entry shows up in -list
// without touching this command.
func TestListIsRegistryGenerated(t *testing.T) {
	// run prints to stdout; assert on the library output it uses.
	out := listOutput()
	for _, name := range []string{"fig9", "byzantine", "gateway", "scale"} {
		if !strings.Contains(out, name) {
			t.Fatalf("-list output missing %q:\n%s", name, out)
		}
	}
}

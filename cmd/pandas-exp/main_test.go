package main

import "testing"

func TestParseSizes(t *testing.T) {
	got := parseSizes("150,300")
	if len(got) != 2 || got[0] != 150 || got[1] != 300 {
		t.Fatalf("got %v", got)
	}
	if parseSizes("") != nil {
		t.Fatal("empty should be nil")
	}
}

func TestRunSmokeSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the whole reduced suite")
	}
	err := run([]string{"-small", "-nodes", "60", "-slots", "1", "-sweep", "50,60", "-faults=false"})
	if err != nil {
		t.Fatal(err)
	}
}

package main

import "testing"

func TestRunRejectsBadSweep(t *testing.T) {
	if err := run([]string{"-small", "-sweep", "150,zzz"}); err == nil {
		t.Fatal("malformed -sweep accepted")
	}
}

func TestRunSmokeSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the whole reduced suite")
	}
	err := run([]string{"-small", "-nodes", "60", "-slots", "1", "-sweep", "50,60", "-faults=false"})
	if err != nil {
		t.Fatal(err)
	}
}

// Command pandas-exp runs the full evaluation suite — every table and
// figure of the paper — at a configurable scale and prints the results as
// one report (the source of EXPERIMENTS.md).
//
// Usage:
//
//	pandas-exp                     # moderate scale, full geometry
//	pandas-exp -nodes 1000 -slots 10   # the paper's testbed scale
//	pandas-exp -small              # scaled-down geometry (smoke test)
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"pandas/internal/core"
	"pandas/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "pandas-exp:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("pandas-exp", flag.ContinueOnError)
	var (
		nodes  = fs.Int("nodes", 500, "network size for the per-figure runs")
		slots  = fs.Int("slots", 2, "slots aggregated per experiment")
		seed   = fs.Int64("seed", 1, "random seed")
		small  = fs.Bool("small", false, "use the scaled-down 32x32 geometry")
		sweep  = fs.String("sweep", "", "comma-separated sizes for the scaling figures (default: nodes/2,nodes)")
		faults = fs.Bool("faults", true, "run the fault sweeps (fig15)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	o := experiments.Options{Nodes: *nodes, Slots: *slots, Seed: *seed}
	if *small {
		o.Core = core.TestConfig()
	} else {
		o.Core = core.DefaultConfig()
	}
	sizes, err := experiments.ParseIntList("-sweep", *sweep)
	if err != nil {
		return err
	}
	if len(sizes) == 0 {
		sizes = []int{*nodes / 2, *nodes}
	}

	type step struct {
		name string
		run  func() (interface{ Render() string }, error)
	}
	steps := []step{
		{"confidence", func() (interface{ Render() string }, error) {
			return experiments.Confidence(o.Core.Blob.N(), nil, 20000, *seed), nil
		}},
		{"fig9", func() (interface{ Render() string }, error) { return experiments.Fig9(o) }},
		{"fig10", func() (interface{ Render() string }, error) { return experiments.Fig10(o) }},
		{"table1", func() (interface{ Render() string }, error) { return experiments.Table1(o) }},
		{"fig11", func() (interface{ Render() string }, error) { return experiments.Fig11(o) }},
		{"fig12", func() (interface{ Render() string }, error) { return experiments.Fig12(o) }},
		{"fig13", func() (interface{ Render() string }, error) { return experiments.Fig13(o, sizes) }},
		{"fig14", func() (interface{ Render() string }, error) { return experiments.Fig14(o, sizes) }},
	}
	if *faults {
		steps = append(steps,
			step{"fig15a", func() (interface{ Render() string }, error) {
				return experiments.Fig15(o, experiments.FaultDead, nil)
			}},
			step{"fig15b", func() (interface{ Render() string }, error) {
				return experiments.Fig15(o, experiments.FaultOutOfView, nil)
			}},
		)
	}
	steps = append(steps, step{"validate", func() (interface{ Render() string }, error) {
		// The real data plane erasure-codes actual bytes; at the full
		// 512x512 geometry a single blob extension is minutes of CPU, so
		// the cross-validation always runs on the scaled-down geometry
		// (identical code paths).
		vo := o
		vo.Core = core.TestConfig()
		if vo.Nodes > 200 {
			vo.Nodes = 200
		}
		return experiments.Validate(vo)
	}})

	fmt.Printf("PANDAS evaluation suite — %d nodes, %d slots, geometry %dx%d\n\n",
		o.Nodes, o.Slots, o.Core.Blob.N(), o.Core.Blob.N())
	for _, st := range steps {
		start := time.Now()
		res, err := st.run()
		if err != nil {
			return fmt.Errorf("%s: %w", st.name, err)
		}
		fmt.Println(res.Render())
		fmt.Printf("[%s completed in %v]\n\n", st.name, time.Since(start).Round(time.Millisecond))
	}
	return nil
}

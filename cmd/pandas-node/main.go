// Command pandas-node runs a real PANDAS participant over UDP. Multiple
// processes (on one machine or a LAN) form a deployment: every process
// gets the same peers file (one host:port per line; the LAST entry is
// the builder) and its own index. The process with -builder seeds a blob
// each slot; the others custody, consolidate, and sample it.
//
// Example, a four-node deployment plus builder in five shells:
//
//	pandas-node -peers peers.txt -index 0
//	pandas-node -peers peers.txt -index 1
//	pandas-node -peers peers.txt -index 2
//	pandas-node -peers peers.txt -index 3
//	pandas-node -peers peers.txt -index 4 -builder -slots 3
//
// For a self-contained single-process demo, see examples/localnet.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"hash/fnv"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"pandas/internal/assign"
	"pandas/internal/blob"
	"pandas/internal/core"
	"pandas/internal/gateway"
	"pandas/internal/ids"
	"pandas/internal/kzg"
	"pandas/internal/obsv"
	"pandas/internal/swarm"
	"pandas/internal/transport"
	"pandas/internal/wire"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "pandas-node:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("pandas-node", flag.ContinueOnError)
	var (
		peersFile = fs.String("peers", "", "file listing host:port per participant; last entry is the builder")
		index     = fs.Int("index", -1, "this process's index into the peers file")
		builder   = fs.Bool("builder", false, "act as the builder (must be the last index)")
		slots     = fs.Int("slots", 1, "number of slots the builder drives")
		seed      = fs.Int64("seed", 42, "shared deployment seed (must match on all processes)")
		k         = fs.Int("k", 8, "base matrix size K (extended is 2K x 2K)")
		custody   = fs.Int("custody", 4, "rows and columns per node")
		samples   = fs.Int("samples", 6, "random cells sampled per slot")
		slotGap   = fs.Duration("slot-gap", 12*time.Second, "time between slots")
		metrics   = fs.String("metrics", "", "serve Prometheus text metrics at http://ADDR/metrics (e.g. :9464)")
		gwAddr    = fs.String("gateway", "", "serve light-client sampling queries at http://ADDR/v1/cell (non-builder only)")
		swarmSup  = fs.String("swarm", "", "run as a swarm worker of the supervisor at ADDR (config arrives over the control channel; only -index applies)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *swarmSup != "" {
		if *index < 0 {
			return fmt.Errorf("-swarm requires -index")
		}
		return swarm.RunWorker(swarm.WorkerOptions{
			Supervisor: *swarmSup,
			Index:      *index,
			Restarts:   swarm.RestartsFromEnv(),
			Log:        os.Stderr,
		})
	}
	if *peersFile == "" || *index < 0 {
		return fmt.Errorf("both -peers and -index are required")
	}
	addrs, err := readPeers(*peersFile)
	if err != nil {
		return err
	}
	if *index >= len(addrs) {
		return fmt.Errorf("index %d out of range (%d peers)", *index, len(addrs))
	}
	nNodes := len(addrs) - 1 // last entry is the builder

	cfg := core.DefaultConfig()
	cfg.Blob = blob.Params{K: *k, CellBytes: 64, ProofBytes: 48}
	cfg.Assign = assign.Params{Rows: *custody, Cols: *custody, N: cfg.Blob.N()}
	cfg.Samples = *samples
	cfg.RealPayloads = true
	if err := cfg.Validate(); err != nil {
		return err
	}

	var reg *obsv.Registry
	if *metrics != "" {
		reg = obsv.NewRegistry()
		cfg.Metrics = reg
		mux := http.NewServeMux()
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			if err := reg.Snapshot().WritePrometheus(w); err != nil {
				fmt.Fprintln(os.Stderr, "pandas-node: metrics write:", err)
			}
		})
		go func() {
			if err := http.ListenAndServe(*metrics, mux); err != nil {
				fmt.Fprintln(os.Stderr, "pandas-node: metrics server:", err)
			}
		}()
		fmt.Printf("metrics exposition at http://%s/metrics\n", *metrics)
	}

	// Deterministic shared identities: every process derives the same
	// table from the seed, mirroring an ENR crawl that has converged.
	nodeIDs := make([]ids.NodeID, nNodes)
	for i := range nodeIDs {
		nodeIDs[i] = ids.NewTestIdentity(*seed<<16 + int64(i)).ID
	}
	var epochSeed assign.Seed
	epochSeed[0] = byte(*seed)
	table, err := core.NewTable(cfg.Assign, epochSeed, nodeIDs)
	if err != nil {
		return err
	}

	ep, err := transport.NewUDP(*index, addrs[*index], cfg.Blob.CellBytes)
	if err != nil {
		return err
	}
	defer ep.Close()
	if err := ep.SetPeers(addrs); err != nil {
		return err
	}
	fmt.Printf("pandas-node %d listening on %s (%d peers)\n", *index, ep.Addr(), len(addrs))

	proposer := ids.NewTestIdentity(*seed<<16 + 999)

	// Graceful drain: on SIGINT/SIGTERM stop cleanly — close the
	// transport (deferred above), flush a final metrics snapshot, and
	// exit 0 — so fleet supervisors can recycle processes without
	// losing observability.
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	defer signal.Stop(sigc)
	drain := func(sig os.Signal) {
		fmt.Printf("pandas-node %d: draining on %v\n", *index, sig)
		if reg != nil {
			_ = reg.Snapshot().WritePrometheus(os.Stderr)
		}
	}

	if *builder {
		b := core.NewBuilder(cfg, *index, ids.NewTestIdentity(*seed<<16+int64(nNodes)+3).ID, table, ep, *seed+5)
		b.SetProposerSigner(func(slot uint64) [wire.SigSize]byte {
			var sig [wire.SigSize]byte
			copy(sig[:], proposer.Sign(wire.SeedSigningBytes(slot, ids.NewTestIdentity(*seed<<16+int64(nNodes)+3).ID)))
			return sig
		})
		data := make([]byte, cfg.Blob.BlobBytes())
		for i := range data {
			data[i] = byte(i*131 + 7)
		}
		if err := b.PrepareBlob(data); err != nil {
			return err
		}
		ep.Start(func(from, size int, payload any) {})
		for s := uint64(1); s <= uint64(*slots); s++ {
			s := s
			done := make(chan struct{})
			ep.Run(func() {
				report := b.SeedSlot(s)
				fmt.Printf("slot %d: seeded %d cells in %d messages (%d KB) to %d nodes\n",
					s, report.Cells, report.Messages, report.Bytes/1024, report.NodesSeeded)
				if reg != nil {
					reg.Counter("builder_seed_cells_total").Add(int64(report.Cells))
					reg.Counter("builder_seed_messages_total").Add(int64(report.Messages))
					reg.Counter("builder_seed_bytes_total").Add(int64(report.Bytes))
					reg.Gauge("builder_slot").Set(int64(s))
				}
				close(done)
			})
			<-done
			if s < uint64(*slots) {
				select {
				case <-time.After(*slotGap):
				case sig := <-sigc:
					drain(sig)
					return nil
				}
			}
		}
		// Give responses time to drain before exiting.
		select {
		case <-time.After(2 * time.Second):
		case sig := <-sigc:
			drain(sig)
		}
		return nil
	}

	node := core.NewNode(cfg, *index, table, ep, *seed^int64(*index*7919))
	node.SetSeedVerification(proposer.Public)
	ep.Start(func(from, size int, payload any) {
		node.HandleMessage(from, size, payload)
	})
	slot := uint64(1)
	startSlot := func(s uint64) {
		done := make(chan struct{})
		ep.Run(func() { node.StartSlot(s); close(done) })
		<-done
	}
	startSlot(slot)
	// The machine-parseable readiness probe: supervisors wait for this
	// line before driving traffic at the process.
	fmt.Printf("ready index=%d addr=%s custody=%v samples=%d\n",
		*index, ep.Addr(), table.Assignment(*index).Lines(), cfg.Samples)

	// Optional sampling-as-a-service frontend: light clients query
	// (slot, row, col) over HTTP; the gateway coalesces and caches so
	// the node's event loop sees one Peek per distinct cell, not one
	// per client. Cells in the node's custody store were verified on
	// arrival, so the gateway serves them without re-proving.
	var gw *gateway.Gateway
	if *gwAddr != "" {
		up := gateway.UpstreamFunc(func(ctx context.Context, qslot uint64, id blob.CellID) (wire.Cell, error) {
			type peeked struct {
				cell wire.Cell
				err  error
			}
			ch := make(chan peeked, 1)
			ep.Run(func() {
				// The custody store only ever holds the node's CURRENT
				// slot; serving a query for any other slot from it would
				// hand out current-slot bytes mislabeled (and cached) as
				// that slot. Checked on the event loop, where slot advances.
				if qslot != slot {
					ch <- peeked{err: fmt.Errorf("slot %d not in custody (current slot %d)", qslot, slot)}
					return
				}
				c, ok := node.Store().Peek(id)
				if !ok {
					ch <- peeked{err: fmt.Errorf("cell %v not in custody", id)}
					return
				}
				if c.Data != nil {
					// Peek aliases custody state that the node loop may
					// replace at the next slot; the gateway retains cells
					// in its cache, so take a private copy here.
					c.Data = append([]byte(nil), c.Data...)
				}
				ch <- peeked{cell: c}
			})
			select {
			case r := <-ch:
				return r.cell, r.err
			case <-ctx.Done():
				return wire.Cell{}, ctx.Err()
			}
		})
		gw, err = gateway.New(gateway.Config{Upstream: up, Metrics: reg, Node: int32(*index)})
		if err != nil {
			return err
		}
		defer gw.Close()
		gw.StartSlot(slot, kzg.Commitment{})
		gmux := http.NewServeMux()
		gmux.HandleFunc("/v1/cell", func(w http.ResponseWriter, r *http.Request) {
			q := r.URL.Query()
			qslot, err1 := strconv.ParseUint(q.Get("slot"), 10, 64)
			row, err2 := strconv.Atoi(q.Get("row"))
			col, err3 := strconv.Atoi(q.Get("col"))
			n := cfg.Blob.N()
			if err1 != nil || err2 != nil || err3 != nil || row < 0 || row >= n || col < 0 || col >= n {
				http.Error(w, fmt.Sprintf("need slot, row, col (0..%d)", n-1), http.StatusBadRequest)
				return
			}
			cell, qerr := gw.Query(r.Context(), clientKey(r.RemoteAddr), qslot,
				blob.CellID{Row: uint16(row), Col: uint16(col)})
			if qerr != nil {
				var ra *gateway.RetryAfterError
				if errors.As(qerr, &ra) {
					secs := int(ra.After.Seconds() + 0.999)
					if secs < 1 {
						secs = 1
					}
					w.Header().Set("Retry-After", strconv.Itoa(secs))
					http.Error(w, qerr.Error(), http.StatusTooManyRequests)
					return
				}
				http.Error(w, qerr.Error(), http.StatusNotFound)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			if err := json.NewEncoder(w).Encode(map[string]any{
				"slot": qslot, "row": row, "col": col,
				"data": cell.Data, "proof": cell.Proof[:],
			}); err != nil {
				fmt.Fprintln(os.Stderr, "pandas-node: gateway response:", err)
			}
		})
		go func() {
			if err := http.ListenAndServe(*gwAddr, gmux); err != nil {
				fmt.Fprintln(os.Stderr, "pandas-node: gateway server:", err)
			}
		}()
		fmt.Printf("sampling gateway at http://%s/v1/cell?slot=S&row=R&col=C\n", *gwAddr)
	}

	ticker := time.NewTicker(500 * time.Millisecond)
	defer ticker.Stop()
	for {
		select {
		case sig := <-sigc:
			drain(sig)
			return nil
		case <-ticker.C:
		}
		status := make(chan string, 1)
		ep.Run(func() {
			m := node.Metrics()
			status <- fmt.Sprintf("slot %d: seed=%v consolidated=%v sampled=%v",
				slot, m.HasSeed, m.Consolidated, m.Sampled)
			if reg != nil {
				reg.Gauge("node_slot").Set(int64(slot))
				reg.Gauge("node_has_seed").Set(boolGauge(m.HasSeed))
				reg.Gauge("node_consolidated").Set(boolGauge(m.Consolidated))
				reg.Gauge("node_sampled").Set(boolGauge(m.Sampled))
				reg.Gauge("node_fetch_msgs_sent").Set(int64(m.FetchMsgsSent))
				reg.Gauge("node_fetch_msgs_recv").Set(int64(m.FetchMsgsRecv))
				reg.Gauge("node_fetch_bytes_sent").Set(m.FetchBytesSent)
				reg.Gauge("node_fetch_bytes_recv").Set(m.FetchBytesRecv)
			}
			if m.Sampled && m.Consolidated {
				if reg != nil {
					reg.Counter("node_slots_completed_total").Inc()
					reg.Histogram("node_sampling_seconds", obsv.DefaultLatencyBounds).
						Observe(m.SampledAt.Seconds())
				}
				slot++
				node.StartSlot(slot)
				if gw != nil {
					gw.StartSlot(slot, kzg.Commitment{})
				}
			}
		})
		fmt.Println(<-status)
	}
}

// clientKey folds a remote address into the gateway's per-client
// fairness key. Only the host half counts — keying on the full
// RemoteAddr (host:ephemeral-port) would grant a fresh MaxPerClient
// budget per TCP connection, letting one client dodge fairness by
// opening more connections.
func clientKey(remoteAddr string) int {
	host, _, err := net.SplitHostPort(remoteAddr)
	if err != nil {
		host = remoteAddr
	}
	h := fnv.New32a()
	h.Write([]byte(host))
	return int(h.Sum32())
}

func boolGauge(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func readPeers(path string) ([]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []string
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line != "" && !strings.HasPrefix(line, "#") {
			out = append(out, line)
		}
	}
	return out, sc.Err()
}

package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestReadPeers(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "peers.txt")
	content := "# comment\n127.0.0.1:9000\n\n127.0.0.1:9001\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := readPeers(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != "127.0.0.1:9000" || got[1] != "127.0.0.1:9001" {
		t.Fatalf("got %v", got)
	}
	if _, err := readPeers(filepath.Join(dir, "missing")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestRunValidatesFlags(t *testing.T) {
	if err := run([]string{}); err == nil {
		t.Fatal("missing flags accepted")
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "peers.txt")
	os.WriteFile(path, []byte("127.0.0.1:9000\n"), 0o644)
	if err := run([]string{"-peers", path, "-index", "5"}); err == nil {
		t.Fatal("out-of-range index accepted")
	}
}

package pandas

import (
	"testing"
	"time"
)

func TestPublicAPISimulatedSlot(t *testing.T) {
	cluster, err := NewCluster(ClusterConfig{
		Core:     TestConfig(),
		N:        80,
		Seed:     1,
		LossRate: 0.03,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := cluster.RunSlot(1)
	if err != nil {
		t.Fatal(err)
	}
	if rate := res.DeadlineRate(AttestationDeadline); rate < 0.95 {
		t.Fatalf("deadline rate %v", rate)
	}
}

func TestPublicAPIConstants(t *testing.T) {
	if SlotDuration != 12*time.Second || AttestationDeadline != 4*time.Second {
		t.Fatal("consensus constants wrong")
	}
	cfg := DefaultConfig()
	if cfg.Blob.N() != 512 || cfg.Samples != 73 || cfg.Redundancy != 8 {
		t.Fatalf("default config drifted: %+v", cfg)
	}
	if cfg.Policy != PolicyRedundant {
		t.Fatal("default policy should be redundant")
	}
}

func TestPublicAPISamplingMath(t *testing.T) {
	if b := SamplingFalsePositiveBound(512, 73); b >= 1e-9 {
		t.Fatalf("bound = %g", b)
	}
	if s := SamplesForConfidence(512, 1e-9); s > 73 {
		t.Fatalf("needed samples = %d", s)
	}
}

func TestMeetsDeadline(t *testing.T) {
	if !MeetsDeadline(3 * time.Second) {
		t.Fatal("3s should meet the deadline")
	}
	if MeetsDeadline(5 * time.Second) {
		t.Fatal("5s should miss")
	}
	if MeetsDeadline(-1) {
		t.Fatal("never-completed should miss")
	}
}

func TestPublicAPILatencyModel(t *testing.T) {
	m := NewPlanetaryLatency(1, 100)
	d := m.Delay(0, 1)
	if d <= 0 || d > time.Second {
		t.Fatalf("delay = %v", d)
	}
}

func TestPublicAPILocalnet(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time UDP test")
	}
	cfg := TestConfig()
	cfg.Blob = BlobParams{K: 8, CellBytes: 64, ProofBytes: 48}
	cfg.Assign.N = 16
	cfg.Assign.Rows, cfg.Assign.Cols = 4, 4
	cfg.Samples = 6
	ln, err := NewLocalnet(cfg, 16, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	times, err := ln.RunSlot(1, 8*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	finished := 0
	for _, d := range times {
		if d >= 0 {
			finished++
		}
	}
	if finished < len(times)-1 {
		t.Fatalf("only %d of %d finished", finished, len(times))
	}
}

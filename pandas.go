package pandas

import (
	"time"

	"pandas/internal/blob"
	"pandas/internal/consensus"
	"pandas/internal/core"
	"pandas/internal/fetch"
	"pandas/internal/latency"
	"pandas/internal/obsv"
	"pandas/internal/simnet"
	"pandas/internal/transport"
)

// Core protocol types, re-exported from the implementation packages.
type (
	// Config holds all protocol parameters (blob geometry, custody
	// assignment, sampling count, fetch schedule, seeding policy).
	Config = core.Config
	// Policy selects the builder's seeding strategy.
	Policy = core.Policy
	// ClusterConfig describes a simulated deployment.
	ClusterConfig = core.ClusterConfig
	// Cluster is a simulated PANDAS deployment (N nodes + one builder)
	// over the discrete-event network.
	Cluster = core.Cluster
	// SlotResult aggregates one simulated slot.
	SlotResult = core.SlotResult
	// NodeOutcome is one node's per-slot observation.
	NodeOutcome = core.NodeOutcome
	// SeedingReport summarizes the builder's output for a slot.
	SeedingReport = core.SeedingReport
	// Node is a PANDAS participant bound to a transport.
	Node = core.Node
	// Builder prepares and seeds extended blob data.
	Builder = core.Builder
	// Localnet is a real-UDP deployment on the loopback interface.
	Localnet = transport.Localnet
	// Schedule drives the adaptive fetching rounds.
	Schedule = fetch.Schedule
	// BlobParams is the cell-matrix geometry.
	BlobParams = blob.Params
	// CellID addresses one cell of the extended matrix.
	CellID = blob.CellID
	// LatencyModel yields one-way propagation delays for the simulator.
	LatencyModel = simnet.LatencyModel
)

// Observability types, re-exported from the obsv layer.
type (
	// Recorder receives protocol trace events; install one via
	// WithRecorder. A nil recorder (the default) disables tracing at the
	// cost of a single nil check per emission site.
	Recorder = obsv.Recorder
	// Event is one typed, slot-scoped trace observation (seed sent,
	// cells received, round started, peer timeout, sample verdict, view
	// refresh, churn event, ...).
	Event = obsv.Event
	// TraceRing is the lock-free ring-buffer Recorder retaining the most
	// recent events.
	TraceRing = obsv.Ring
	// StatsRegistry is the counters/gauges/histograms registry; its
	// Snapshot can be rendered as Prometheus text exposition.
	StatsRegistry = obsv.Registry
	// Snapshot is a point-in-time, read-only copy of a StatsRegistry.
	Snapshot = obsv.Snapshot
	// Timeline reconstructs per-slot, per-node phase timings from a
	// recorded trace — the series the paper's CDFs aggregate.
	Timeline = obsv.Timeline
)

// Seeding policies (Section 6.1 of the paper).
const (
	// PolicyMinimal seeds a single copy of the minimal reconstructable
	// data; cheapest, fragile to loss.
	PolicyMinimal = core.PolicyMinimal
	// PolicySingle seeds one copy of every extended cell.
	PolicySingle = core.PolicySingle
	// PolicyRedundant seeds Redundancy copies of every cell (default,
	// r = 8).
	PolicyRedundant = core.PolicyRedundant
)

// Consensus timing constants.
const (
	// SlotDuration is Ethereum's 12-second slot.
	SlotDuration = consensus.SlotDuration
	// AttestationDeadline is the 4-second window within which block
	// verification and DAS must complete under the tight fork-choice
	// rule.
	AttestationDeadline = consensus.PhaseDuration
)

// DefaultConfig returns the paper's Danksharding-target parameters:
// 512x512 extended matrix of 560-byte cells, 8 rows + 8 columns custody
// per node, 73 samples, redundant seeding with r = 8, and the adaptive
// fetch schedule (t = 400/200/100... ms, k = 1/2/4/6/8/10).
func DefaultConfig() Config { return core.DefaultConfig() }

// TestConfig returns a scaled-down geometry (32x32 extended matrix) that
// exercises identical code paths quickly; intended for tests and demos.
func TestConfig() Config { return core.TestConfig() }

// NewCluster builds a simulated deployment: N protocol nodes plus one
// builder over a discrete-event network with planetary latencies, 3%
// message loss, and per-node bandwidth caps (25 Mbps nodes, 10 Gbps
// builder), as in the paper's testbed.
func NewCluster(cc ClusterConfig) (*Cluster, error) { return core.NewCluster(cc) }

// NewLocalnet builds a real-UDP deployment of n nodes plus a builder on
// 127.0.0.1, with real payloads, erasure reconstruction, commitment
// verification, and proposer signatures.
func NewLocalnet(cfg Config, n int, seed int64) (*Localnet, error) {
	return transport.NewLocalnet(cfg, n, seed)
}

// NewPlanetaryLatency returns the synthetic planetary-scale latency model
// calibrated to the IPFS trace statistics the paper emulates (RTT 8-438
// ms, mean ~64 ms).
func NewPlanetaryLatency(seed int64, vertices int) LatencyModel {
	return latency.NewIPFSLike(seed, vertices)
}

// SamplingFalsePositiveBound returns the probability upper bound of
// wrongly concluding availability after samples random cells of an
// n x n extended matrix (Section 3 of the paper). With n = 512 and
// samples = 73 the bound is below 1e-9.
func SamplingFalsePositiveBound(n, samples int) float64 {
	return blob.FalsePositiveBound(n, samples)
}

// SamplesForConfidence returns the minimal number of random samples
// needed to push the false-positive bound below target.
func SamplesForConfidence(n int, target float64) int {
	return blob.SamplesForConfidence(n, target)
}

// MeetsDeadline reports whether a sampling completion time satisfies the
// tight fork-choice attestation window.
func MeetsDeadline(samplingTime time.Duration) bool {
	return samplingTime >= 0 && samplingTime <= AttestationDeadline
}

// WithRecorder returns a copy of cfg with trace recording enabled:
// every protocol layer (builder seeding, node fetch/sample paths,
// liveness transitions, churn) records events into rec. Pass nil to
// disable tracing.
func WithRecorder(cfg Config, rec Recorder) Config {
	cfg.Recorder = rec
	return cfg
}

// WithMetrics returns a copy of cfg with registry metrics enabled:
// deployments update counters and gauges (message counts, queue depth)
// in reg. Pass nil to disable.
func WithMetrics(cfg Config, reg *StatsRegistry) Config {
	cfg.Metrics = reg
	return cfg
}

// NewTraceRing returns a lock-free ring-buffer Recorder holding the most
// recent capacity events (rounded up to a power of two). Use the
// Config.TraceRing default via DefaultConfig, or pick a size; capacity
// must be at least 1.
func NewTraceRing(capacity int) (*TraceRing, error) { return obsv.NewRing(capacity) }

// NewStatsRegistry returns an empty counters/gauges/histograms registry.
func NewStatsRegistry() *StatsRegistry { return obsv.NewRegistry() }

// NewTimeline reconstructs per-slot, per-node timelines from a recorded
// (or JSONL-loaded) trace.
func NewTimeline(events []Event) *Timeline { return obsv.NewTimeline(events) }

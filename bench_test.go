package pandas

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (Section 8). Each iteration regenerates the corresponding
// experiment at a reduced scale so `go test -bench=.` stays tractable on
// a laptop; the cmd/pandas-sim and cmd/pandas-exp binaries run the same
// experiments at the paper's 1,000-20,000-node scales. Reported metrics
// (ns/op plus custom gauges) capture both runtime and the headline
// quantity of each artifact — e.g. the sampling P99 or the deadline rate
// — so regressions in protocol behaviour show up alongside regressions
// in simulator speed.

import (
	"math/rand"
	"testing"
	"time"

	"pandas/internal/core"
	"pandas/internal/experiments"
	"pandas/internal/ids"
)

// benchOptions is the shared reduced scale for experiment benchmarks.
func benchOptions() experiments.Options {
	o := experiments.TestOptions()
	o.Nodes = 150
	o.Slots = 1
	return o
}

// BenchmarkFig9Phases regenerates Fig. 9a-9d: the per-phase time
// distributions (seeding, consolidation, sampling) for the three seeding
// policies.
func BenchmarkFig9Phases(b *testing.B) {
	for i := 0; i < b.N; i++ {
		o := benchOptions()
		o.Seed = int64(i + 1)
		res, err := experiments.Fig9(o)
		if err != nil {
			b.Fatal(err)
		}
		pt := res.PerPhase[core.PolicyRedundant]
		b.ReportMetric(float64(pt.Sampling.Percentile(99).Milliseconds()), "sampleP99ms")
		b.ReportMetric(float64(pt.Seeding.Max().Milliseconds()), "seedMaxMs")
	}
}

// BenchmarkFig10Bandwidth regenerates Fig. 10: per-node fetch traffic
// (messages and volume) per seeding policy.
func BenchmarkFig10Bandwidth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		o := benchOptions()
		o.Seed = int64(i + 1)
		res, err := experiments.Fig10(o)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Msgs[core.PolicyRedundant].Mean(), "msgs/node")
		b.ReportMetric(res.Bytes[core.PolicyRedundant].Mean()/1024, "KB/node")
	}
}

// BenchmarkTable1Rounds regenerates Table 1: per-round fetching
// statistics under redundant seeding.
func BenchmarkTable1Rounds(b *testing.B) {
	for i := 0; i < b.N; i++ {
		o := benchOptions()
		o.Seed = int64(i + 1)
		res, err := experiments.Table1(o)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Rounds[0].CellsRequested.Mean(), "r1cells")
		b.ReportMetric(res.Rounds[len(res.Rounds)-1].Coverage*100, "r4coverage%")
	}
}

// BenchmarkFig11Adaptive regenerates Fig. 11: adaptive versus constant
// fetching.
func BenchmarkFig11Adaptive(b *testing.B) {
	for i := 0; i < b.N; i++ {
		o := benchOptions()
		o.Seed = int64(i + 1)
		res, err := experiments.Fig11(o)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.AdaptiveSampling.Percentile(99).Milliseconds()), "adaptP99ms")
		b.ReportMetric(float64(res.ConstantSampling.Percentile(99).Milliseconds()), "constP99ms")
	}
}

// BenchmarkFig12Baselines regenerates Fig. 12: PANDAS versus the
// GossipSub and DHT baselines at one scale.
func BenchmarkFig12Baselines(b *testing.B) {
	for i := 0; i < b.N; i++ {
		o := benchOptions()
		o.Nodes = 100
		o.Seed = int64(i + 1)
		res, err := experiments.Fig12(o)
		if err != nil {
			b.Fatal(err)
		}
		d := o.Core.Deadline
		b.ReportMetric(100*res.Systems[experiments.SystemPandas].Sampling.FractionWithin(d), "pandasOnTime%")
		b.ReportMetric(100*res.Systems[experiments.SystemGossip].Sampling.FractionWithin(d), "gossipOnTime%")
		b.ReportMetric(100*res.Systems[experiments.SystemDHT].Sampling.FractionWithin(d), "dhtOnTime%")
	}
}

// BenchmarkFig13Scaling regenerates Fig. 13: PANDAS at increasing
// network sizes.
func BenchmarkFig13Scaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		o := benchOptions()
		o.Seed = int64(i + 1)
		res, err := experiments.Fig13(o, []int{100, 200})
		if err != nil {
			b.Fatal(err)
		}
		big := res.Sizes[len(res.Sizes)-1]
		b.ReportMetric(float64(res.Phases[big].Sampling.Percentile(99).Milliseconds()), "P99msAtMax")
	}
}

// BenchmarkFig14BaselineScaling regenerates Fig. 14: the three systems
// across scales.
func BenchmarkFig14BaselineScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		o := benchOptions()
		o.Seed = int64(i + 1)
		res, err := experiments.Fig14(o, []int{100})
		if err != nil {
			b.Fatal(err)
		}
		per := res.Results[100]
		b.ReportMetric(float64(per[experiments.SystemDHT].Sampling.Median().Milliseconds()), "dhtMedianMs")
	}
}

// BenchmarkFig15Faults regenerates Fig. 15: dead-node and out-of-view
// sweeps.
func BenchmarkFig15Faults(b *testing.B) {
	for i := 0; i < b.N; i++ {
		o := benchOptions()
		o.Seed = int64(i + 1)
		dead, err := experiments.Fig15(o, experiments.FaultDead, []float64{0, 0.4})
		if err != nil {
			b.Fatal(err)
		}
		oov, err := experiments.Fig15(o, experiments.FaultOutOfView, []float64{0.4})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*dead.Points[1].DeadlineRate, "dead40OnTime%")
		b.ReportMetric(100*oov.Points[0].DeadlineRate, "oov40OnTime%")
	}
}

// BenchmarkValidation regenerates the §8.2 simulator validation:
// metadata-cell mode versus the full data plane.
func BenchmarkValidation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		o := benchOptions()
		o.Nodes = 60
		o.Seed = int64(i + 1)
		res, err := experiments.Validate(o)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*res.MedianGap, "medianGap%")
	}
}

// BenchmarkSamplingConfidence regenerates the Section 3 analysis behind
// the 73-sample choice (Fig. 3 boundary cases + false-positive bound).
func BenchmarkSamplingConfidence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Confidence(512, []int{36, 73}, 200, int64(i+1))
		b.ReportMetric(res.Points[1].Analytic, "boundAt73")
	}
}

// BenchmarkBuilderPrepareBlob measures the full real-payload builder
// pipeline at paper scale: 32 MiB of layer-2 data through the 2D
// 512x512 erasure extension, commitment, and per-cell proofs (Fig. 2).
// This is the end-to-end consumer of the erasure-coding fast paths.
// Skipped with -short.
func BenchmarkBuilderPrepareBlob(b *testing.B) {
	if testing.Short() {
		b.Skip("paper-scale benchmark")
	}
	cfg := core.DefaultConfig()
	data := make([]byte, cfg.Blob.BlobBytes())
	rand.New(rand.NewSource(1)).Read(data)
	bld := core.NewBuilder(cfg, 0, ids.NodeID{}, nil, nil, 1)
	// One unmeasured prepare pays the one-time costs a real builder
	// amortizes over a session: codec/twiddle construction and the
	// extended-matrix, digest, and proof arenas (all reused per slot).
	// The measured loop is the steady-state slot path.
	if err := bld.PrepareBlob(data); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := bld.PrepareBlob(data); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatedSlot1000 measures the simulator's raw throughput on
// a paper-scale (1,000-node) slot with full protocol parameters. Skipped
// with -short.
func BenchmarkSimulatedSlot1000(b *testing.B) {
	if testing.Short() {
		b.Skip("paper-scale benchmark")
	}
	cluster, err := NewCluster(ClusterConfig{
		Core:     DefaultConfig(),
		N:        1000,
		Seed:     1,
		LossRate: 0.03,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := cluster.RunSlot(uint64(i + 1))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*res.DeadlineRate(4*time.Second), "onTime%")
	}
}

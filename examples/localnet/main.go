// Localnet: a REAL PANDAS deployment over UDP sockets on 127.0.0.1 —
// actual cell payloads, Reed-Solomon reconstruction, commitment
// verification, and proposer signatures. This is the single-process
// equivalent of the paper's cluster prototype (see cmd/pandas-node for
// the multi-process variant).
package main

import (
	"fmt"
	"log"
	"time"

	"pandas"
)

func main() {
	cfg := pandas.TestConfig()
	// A dense small geometry so 16 nodes give every row/column several
	// holders: 16x16 extended matrix, 4+4 custody lines, 6 samples.
	cfg.Blob = pandas.BlobParams{K: 8, CellBytes: 64, ProofBytes: 48}
	cfg.Assign.N = cfg.Blob.N()
	cfg.Assign.Rows, cfg.Assign.Cols = 4, 4
	cfg.Samples = 6

	ln, err := pandas.NewLocalnet(cfg, 16, 7)
	if err != nil {
		log.Fatal(err)
	}
	defer ln.Close()

	for slot := uint64(1); slot <= 3; slot++ {
		times, err := ln.RunSlot(slot, 8*time.Second)
		if err != nil {
			log.Fatal(err)
		}
		onTime, finished := 0, 0
		var max time.Duration
		for _, d := range times {
			if d < 0 {
				continue
			}
			finished++
			if d <= pandas.AttestationDeadline {
				onTime++
			}
			if d > max {
				max = d
			}
		}
		fmt.Printf("slot %d: %d/%d nodes sampled (max %v), %d within the 4 s deadline\n",
			slot, finished, len(times), max.Round(time.Millisecond), onTime)
	}

	// Show that custody is real, verified data: dump one reconstructed
	// cell from node 0's store.
	node := ln.Nodes[0]
	line := ln.Table.Assignment(0).Lines()[0]
	fmt.Printf("node 0 custody line %v: %d/%d cells held (erasure-reconstructed and verified)\n",
		line, node.Store().LineCount(line), cfg.Blob.N())
}

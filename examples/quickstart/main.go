// Quickstart: simulate one PANDAS slot on a 200-node network and print
// what every downstream user cares about — did every node finish data
// availability sampling inside Ethereum's 4-second attestation window?
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"pandas"
)

func main() {
	// A scaled-down geometry keeps the demo instant; swap in
	// pandas.DefaultConfig() for the full 512x512 Danksharding matrix.
	cfg := pandas.TestConfig()

	cluster, err := pandas.NewCluster(pandas.ClusterConfig{
		Core:     cfg,
		N:        200,
		Seed:     1,
		LossRate: 0.03, // the paper's observed UDP loss
	})
	if err != nil {
		log.Fatal(err)
	}

	res, err := cluster.RunSlot(1)
	if err != nil {
		log.Fatal(err)
	}

	var sampling []time.Duration
	for _, o := range res.Outcomes {
		if o.Sampling >= 0 {
			sampling = append(sampling, o.Sampling)
		}
	}
	sort.Slice(sampling, func(i, j int) bool { return sampling[i] < sampling[j] })

	fmt.Printf("nodes:               %d\n", len(res.Outcomes))
	fmt.Printf("builder sent:        %.1f MB in %d messages (%s policy)\n",
		float64(res.Seeding.Bytes)/1e6, res.Seeding.Messages, res.Seeding.Policy)
	fmt.Printf("sampling median:     %v\n", sampling[len(sampling)/2])
	fmt.Printf("sampling max:        %v\n", sampling[len(sampling)-1])
	fmt.Printf("met 4 s deadline:    %.1f%%\n", 100*res.DeadlineRate(pandas.AttestationDeadline))
	fmt.Printf("false-positive bound for %d samples: %.2g\n",
		cfg.Samples, pandas.SamplingFalsePositiveBound(cfg.Blob.N(), cfg.Samples))
}

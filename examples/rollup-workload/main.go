// Rollup workload: the full layer-2 story the paper motivates. A
// synthetic multi-rollup workload is packed into a blob, the builder
// disseminates it through a PANDAS slot (real payloads, erasure coding,
// commitments), and afterwards a rollup participant retrieves its batch
// from the nodes' distributed custody — without any single node holding
// the whole blob.
package main

import (
	"bytes"
	"fmt"
	"log"

	"pandas"
	"pandas/internal/blob"
	"pandas/internal/l2"
)

func main() {
	cfg := pandas.TestConfig()
	cfg.RealPayloads = true

	// 1. Layer-2 workload: several rollups post compressed batches.
	gen := l2.NewGenerator(42, 6, 1024)
	payload, batches := gen.FillBlob(cfg.Blob.BlobBytes())
	th := l2.Summarize(batches)
	fmt.Printf("blob carries %d batches from %d rollups: %d txs, %d KB\n",
		th.Batches, 6, th.Txs, th.Bytes/1024)

	// 2. One PANDAS slot.
	cluster, err := pandas.NewCluster(pandas.ClusterConfig{
		Core: cfg, N: 120, Seed: 5, LossRate: 0.03,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := cluster.Builder().PrepareBlob(payload); err != nil {
		log.Fatal(err)
	}
	res, err := cluster.RunSlot(1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("slot complete: %.1f%% of nodes sampled within 4 s\n",
		100*res.DeadlineRate(pandas.AttestationDeadline))

	// 3. A rollup participant reassembles the blob from DISTRIBUTED
	//    custody: for every base row, find any node whose custody holds
	//    it and read the data cells.
	p := cfg.Blob
	recovered := make([]byte, 0, p.BlobBytes())
	for r := 0; r < p.K; r++ {
		line := blob.Line{Kind: blob.Row, Index: uint16(r)}
		holders := cluster.Table().Holders(line)
		var rowData []byte
		for _, h := range holders {
			node := cluster.Nodes()[h]
			if !node.Store().LineComplete(line) {
				continue
			}
			for c := 0; c < p.K; c++ {
				cell, ok := node.Store().Get(blob.CellID{Row: uint16(r), Col: uint16(c)})
				if !ok {
					log.Fatalf("row %d cell %d missing at holder %d", r, c, h)
				}
				rowData = append(rowData, cell.Data...)
			}
			break
		}
		if rowData == nil {
			log.Fatalf("no holder has row %d", r)
		}
		recovered = append(recovered, rowData...)
	}

	// 4. Verify the layer-2 data survived the distributed round trip.
	got, err := l2.UnpackBlob(recovered)
	if err != nil {
		log.Fatal(err)
	}
	if len(got) != len(batches) {
		log.Fatalf("recovered %d batches, want %d", len(got), len(batches))
	}
	for i := range got {
		if !bytes.Equal(got[i].Data, batches[i].Data) {
			log.Fatalf("batch %d corrupted", i)
		}
	}
	fmt.Printf("rollup participant recovered all %d batches from distributed custody\n", len(got))
}

// Faults: a Fig. 15-style robustness sweep — how many nodes still sample
// within the 4-second deadline as increasing fractions of the network are
// dead (crashed / free-riding) or missing from peers' views. Also runs a
// data-withholding attack (Fig. 3-right) to show that unavailability is
// systematically detected.
package main

import (
	"fmt"
	"log"

	"pandas"
	"pandas/internal/blob"
	"pandas/internal/core"
	"pandas/internal/experiments"
)

func main() {
	o := experiments.TestOptions()
	o.Nodes = 300
	o.Slots = 1

	for _, kind := range []experiments.FaultKind{experiments.FaultDead, experiments.FaultOutOfView} {
		res, err := experiments.Fig15(o, kind, []float64{0, 0.2, 0.4, 0.6, 0.8})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(res.Render())
	}

	// Data withholding: the builder releases everything EXCEPT the
	// maximal non-reconstructable square. Sampling must fail everywhere.
	cluster, err := pandas.NewCluster(pandas.ClusterConfig{
		Core: o.Core, N: 200, Seed: 9, LossRate: 0.03,
	})
	if err != nil {
		log.Fatal(err)
	}
	n := o.Core.Blob.N()
	h := n/2 + 1
	cluster.Builder().SetWithholding(func(id blob.CellID) bool {
		return int(id.Row) < h && int(id.Col) < h
	})
	res, err := cluster.RunSlot(1)
	if err != nil {
		log.Fatal(err)
	}
	detected := 0
	for _, out := range res.Outcomes {
		if out.Sampling < 0 { // never completed sampling = unavailability detected
			detected++
		}
	}
	fmt.Printf("withholding attack: %d cells withheld, %d/%d nodes detected unavailability (%.1f%%)\n",
		res.Seeding.Withheld, detected, len(res.Outcomes),
		100*float64(detected)/float64(len(res.Outcomes)))
	_ = core.PolicyRedundant
}

// Slot simulation: a Fig. 9-style run — phase-time CDFs for the three
// builder seeding policies (minimal / single / redundant) on a simulated
// planetary network, printed as plottable series.
package main

import (
	"fmt"
	"log"

	"pandas/internal/core"
	"pandas/internal/experiments"
)

func main() {
	o := experiments.TestOptions()
	o.Nodes = 300
	o.Slots = 2

	res, err := experiments.Fig9(o)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Render())

	// CDF series for external plotting (gnuplot/matplotlib): fraction of
	// nodes that completed sampling by time t, per policy.
	fmt.Println("sampling CDF series (ms, fraction):")
	for _, policy := range []core.Policy{core.PolicyMinimal, core.PolicySingle, core.PolicyRedundant} {
		fmt.Printf("# policy=%s\n", policy)
		for _, pt := range res.PerPhase[policy].Sampling.CDF(20) {
			fmt.Printf("%d %.3f\n", pt.Value.Milliseconds(), pt.Fraction)
		}
	}
}

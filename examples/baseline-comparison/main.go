// Baseline comparison: a Fig. 12-style head-to-head of PANDAS against
// the two alternative DAS designs — GossipSub topic meshes and the
// Kademlia DHT — on identical networks. The output shows the paper's
// headline: direct, builder-seeded exchanges finish sampling far sooner
// and with less traffic than overlay-based dissemination.
package main

import (
	"fmt"
	"log"

	"pandas/internal/experiments"
)

func main() {
	o := experiments.TestOptions()
	o.Nodes = 200
	o.Slots = 1

	res, err := experiments.Fig12(o)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Render())

	p := res.Systems[experiments.SystemPandas].Sampling
	g := res.Systems[experiments.SystemGossip].Sampling
	d := res.Systems[experiments.SystemDHT].Sampling
	fmt.Printf("median speedup vs GossipSub: %.1fx\n", float64(g.Median())/float64(p.Median()))
	fmt.Printf("median speedup vs DHT:       %.1fx\n", float64(d.Median())/float64(p.Median()))
}

// Package obsv is the protocol-wide observability layer: a typed,
// slot-scoped event trace, a counters/gauges/histograms registry with
// snapshot semantics, and exporters (JSONL traces, Prometheus text
// exposition, per-slot timeline reconstruction).
//
// The paper's whole evaluation (Section 8) is built from per-node timing
// observations — when the seed arrived, how each fetch round progressed,
// when sampling concluded. This package makes those observations a
// first-class data flow instead of ad-hoc counters: every protocol layer
// records Events through a Recorder injected via core.Config, the
// lock-free Ring keeps the most recent events, and Timeline turns a
// recorded trace back into exactly the per-phase duration series the
// figures aggregate.
//
// Tracing is strictly opt-in. The default Recorder is nil and every
// emission site guards with a single nil check, so the disabled path
// costs ~1 ns and zero allocations (see BenchmarkDisabledEmit and the
// BENCH_obsv.json gate).
package obsv

// Recorder receives protocol trace events. Implementations must be safe
// for concurrent producers (the UDP transport runs per-endpoint loops);
// the simulator's single-threaded event loop is the trivial case.
//
// A nil Recorder means "tracing off": every call site performs one nil
// check and nothing else.
type Recorder interface {
	// Record appends one event to the trace. It must not block and must
	// not retain references into the caller's memory beyond the call.
	Record(Event)
}

// RecorderFunc adapts a function to the Recorder interface.
type RecorderFunc func(Event)

// Record implements Recorder.
func (f RecorderFunc) Record(e Event) { f(e) }

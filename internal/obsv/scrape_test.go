package obsv

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"
)

// TestScrapeRoundTrip is the core contract of the supervisor/worker
// metrics pipeline: whatever WritePrometheus emits, ParsePrometheus
// reconstructs exactly.
func TestScrapeRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("node_slots_completed_total").Add(7)
	r.Counter("worker_restarts_total").Inc()
	r.Gauge("swarm_workers_live").Set(64)
	h := r.Histogram("node_sampling_seconds", DefaultLatencyBounds)
	for _, v := range []float64{0.03, 0.3, 0.31, 1.1, 3.9, 11, 99} {
		h.Observe(v)
	}
	want := r.Snapshot()

	var buf bytes.Buffer
	if err := want.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ParsePrometheus(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
	// The +Inf overflow sample (99) must land in the last bucket.
	hs := got.Histograms["node_sampling_seconds"]
	if hs.Buckets[len(hs.Buckets)-1] != 1 {
		t.Fatalf("+Inf bucket = %d, want 1", hs.Buckets[len(hs.Buckets)-1])
	}
}

// TestScrapeSkipsForeignSeries: lines the writer never produces (labels,
// unknown types, junk values) are skipped, not fatal — a scrape must
// survive a worker exposing extra series.
func TestScrapeSkipsForeignSeries(t *testing.T) {
	in := strings.Join([]string{
		`# HELP something human text`,
		`# TYPE go_goroutines gauge`,
		`go_goroutines 12`,
		`http_requests{code="200",method="get"} 5`, // labeled non-bucket: skip
		`no_type_declared 3`,                       // unclassified: skip
		`bad_value_counter abc`,                    // unparsable: skip
		`# TYPE reqs counter`,
		`reqs 41`,
		``,
	}, "\n")
	s, err := ParsePrometheus(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if s.Gauges["go_goroutines"] != 12 || s.Counters["reqs"] != 41 {
		t.Fatalf("parsed %+v", s)
	}
	if len(s.Counters) != 1 || len(s.Gauges) != 1 || len(s.Histograms) != 0 {
		t.Fatalf("foreign series leaked in: %+v", s)
	}
}

func TestScrapeRejectsMalformedHistograms(t *testing.T) {
	cases := map[string]string{
		"missing +Inf": strings.Join([]string{
			`# TYPE h histogram`,
			`h_bucket{le="1"} 2`,
			`h_sum 1.5`, `h_count 2`,
		}, "\n"),
		"non-cumulative": strings.Join([]string{
			`# TYPE h histogram`,
			`h_bucket{le="1"} 5`,
			`h_bucket{le="2"} 3`,
			`h_bucket{le="+Inf"} 5`,
			`h_sum 1`, `h_count 5`,
		}, "\n"),
		"unsorted bounds": strings.Join([]string{
			`# TYPE h histogram`,
			`h_bucket{le="2"} 1`,
			`h_bucket{le="1"} 2`,
			`h_bucket{le="+Inf"} 2`,
			`h_sum 1`, `h_count 2`,
		}, "\n"),
		"inf below last": strings.Join([]string{
			`# TYPE h histogram`,
			`h_bucket{le="1"} 4`,
			`h_bucket{le="+Inf"} 2`,
			`h_sum 1`, `h_count 4`,
		}, "\n"),
	}
	for name, in := range cases {
		if _, err := ParsePrometheus(strings.NewReader(in)); err == nil {
			t.Errorf("%s: parse accepted malformed histogram", name)
		}
	}
}

func TestSnapshotMerge(t *testing.T) {
	mk := func(completions int64, obs ...float64) Snapshot {
		r := NewRegistry()
		r.Counter("done_total").Add(completions)
		r.Gauge("live").Set(1)
		h := r.Histogram("lat_seconds", []float64{1, 2})
		for _, v := range obs {
			h.Observe(v)
		}
		return r.Snapshot()
	}
	a, b := mk(3, 0.5, 1.5), mk(4, 1.7, 5)
	aBefore, _ := a.Histograms["lat_seconds"], b
	aCopy := copyHist(aBefore)

	m := a.Merge(b)
	if m.Counters["done_total"] != 7 || m.Gauges["live"] != 2 {
		t.Fatalf("merged scalars: %+v", m)
	}
	h := m.Histograms["lat_seconds"]
	if h.Count != 4 || !reflect.DeepEqual(h.Buckets, []int64{1, 2, 1}) {
		t.Fatalf("merged histogram: %+v", h)
	}
	if math.Abs(h.Sum-8.7) > 1e-9 {
		t.Fatalf("merged sum = %v", h.Sum)
	}
	// Merge must not mutate its receiver.
	if !reflect.DeepEqual(a.Histograms["lat_seconds"], aCopy) {
		t.Fatal("Merge mutated the receiver's histogram")
	}

	// Mismatched bounds keep the receiver's histogram untouched.
	r := NewRegistry()
	r.Histogram("lat_seconds", []float64{9}).Observe(100)
	odd := r.Snapshot()
	m2 := a.Merge(odd)
	if !reflect.DeepEqual(m2.Histograms["lat_seconds"], aCopy) {
		t.Fatalf("mismatched-bounds merge altered histogram: %+v", m2.Histograms["lat_seconds"])
	}

	// A histogram only present on one side carries over.
	m3 := Snapshot{}.Merge(a)
	if !reflect.DeepEqual(m3.Histograms["lat_seconds"], aCopy) {
		t.Fatal("one-sided merge dropped histogram")
	}
}

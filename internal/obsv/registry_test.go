package obsv

import (
	"strings"
	"sync"
	"testing"
)

func TestRegistryCountersAndGauges(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("msgs_total")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if reg.Counter("msgs_total") != c {
		t.Fatal("Counter lookup returned a different handle")
	}

	g := reg.Gauge("queue_depth")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
	if reg.Gauge("queue_depth") != g {
		t.Fatal("Gauge lookup returned a different handle")
	}
}

func TestHistogramBuckets(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat", []float64{1, 2})
	for _, v := range []float64{0.5, 1.0, 1.5, 5} {
		h.Observe(v)
	}
	if got := h.Count(); got != 4 {
		t.Fatalf("Count = %d, want 4", got)
	}
	if got := h.Sum(); got != 8 {
		t.Fatalf("Sum = %g, want 8", got)
	}
	s := reg.Snapshot().Histograms["lat"]
	// SearchFloat64s: v <= bound lands in that bucket (0.5 and 1.0 in
	// le=1; 1.5 in le=2; 5 in +Inf).
	want := []int64{2, 1, 1}
	for i, w := range want {
		if s.Buckets[i] != w {
			t.Errorf("bucket %d = %d, want %d", i, s.Buckets[i], w)
		}
	}
}

func TestSnapshotDetached(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("c").Inc()
	reg.Gauge("g").Set(1)
	reg.Histogram("h", []float64{1}).Observe(0.5)

	snap := reg.Snapshot()
	reg.Counter("c").Add(10)
	reg.Gauge("g").Set(99)
	reg.Histogram("h", nil).Observe(0.5)

	if snap.Counters["c"] != 1 {
		t.Errorf("snapshot counter = %d, want 1 (detached)", snap.Counters["c"])
	}
	if snap.Gauges["g"] != 1 {
		t.Errorf("snapshot gauge = %d, want 1 (detached)", snap.Gauges["g"])
	}
	if snap.Histograms["h"].Count != 1 {
		t.Errorf("snapshot histogram count = %d, want 1 (detached)", snap.Histograms["h"].Count)
	}
}

func TestWritePrometheus(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("b_total").Add(3)
	reg.Counter("a_total").Add(1)
	reg.Gauge("depth").Set(-2)
	h := reg.Histogram("lat_seconds", []float64{0.5, 1})
	h.Observe(0.25)
	h.Observe(0.75)
	h.Observe(2)

	var sb strings.Builder
	if err := reg.Snapshot().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE a_total counter
a_total 1
# TYPE b_total counter
b_total 3
# TYPE depth gauge
depth -2
# TYPE lat_seconds histogram
lat_seconds_bucket{le="0.5"} 1
lat_seconds_bucket{le="1"} 2
lat_seconds_bucket{le="+Inf"} 3
lat_seconds_sum 3
lat_seconds_count 3
`
	if got := sb.String(); got != want {
		t.Errorf("Prometheus exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestRegistryConcurrent(t *testing.T) {
	reg := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				reg.Counter("shared_total").Inc()
				reg.Gauge("shared_gauge").Add(1)
				reg.Histogram("shared_hist", []float64{10, 100}).Observe(float64(i))
				_ = reg.Snapshot()
			}
		}()
	}
	wg.Wait()
	s := reg.Snapshot()
	if s.Counters["shared_total"] != 8000 {
		t.Errorf("counter = %d, want 8000", s.Counters["shared_total"])
	}
	if s.Gauges["shared_gauge"] != 8000 {
		t.Errorf("gauge = %d, want 8000", s.Gauges["shared_gauge"])
	}
	if s.Histograms["shared_hist"].Count != 8000 {
		t.Errorf("histogram count = %d, want 8000", s.Histograms["shared_hist"].Count)
	}
}

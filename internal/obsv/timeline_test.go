package obsv

import (
	"bytes"
	"reflect"
	"testing"
	"time"
)

func ms(n int) time.Duration { return time.Duration(n) * time.Millisecond }

// traceFixture is a two-node slot: node 0 completes every phase, node 1
// never samples. Events are deliberately out of order — reconstruction
// must not depend on it.
func traceFixture() []Event {
	return []Event{
		{Seq: 9, At: ms(900), Slot: 1, Kind: KindSampleVerdict, Node: 0, Count: 6, Aux: 1},
		{Seq: 0, At: ms(100), Slot: 1, Kind: KindSlotStart, Node: 0},
		{Seq: 1, At: ms(100), Slot: 1, Kind: KindSlotStart, Node: 1},
		{Seq: 2, At: ms(250), Slot: 1, Kind: KindCellsReceived, Src: SrcSeed, Node: 0, Count: 64, Aux: 2},
		{Seq: 3, At: ms(260), Slot: 1, Kind: KindCellsReceived, Src: SrcSeed, Node: 1, Count: 32},
		{Seq: 4, At: ms(300), Slot: 1, Kind: KindRoundStarted, Node: 1, Round: 1, Count: 10},
		{Seq: 5, At: ms(350), Slot: 1, Kind: KindCellsReceived, Src: SrcFetch, Node: 1, Peer: 0, Round: 1, Count: 8},
		{Seq: 6, At: ms(400), Slot: 1, Kind: KindCellsReceived, Src: SrcReconstruct, Node: 1, Count: 4},
		{Seq: 7, At: ms(500), Slot: 1, Kind: KindPeerTimeout, Node: 1, Peer: 3, Count: 1},
		{Seq: 8, At: ms(600), Slot: 1, Kind: KindConsolidated, Node: 0},
	}
}

func TestTimelineReconstruction(t *testing.T) {
	tl := NewTimeline(traceFixture())
	st := tl.Slot(1)
	if st == nil {
		t.Fatal("slot 1 missing")
	}
	if st.Start != ms(100) {
		t.Fatalf("Start = %v, want 100ms", st.Start)
	}

	n0 := st.Node(0)
	if n0.FirstSeedAt != ms(250) || n0.ConsolidatedAt != ms(600) || n0.SampledAt != ms(900) {
		t.Fatalf("node 0 times: %+v", n0)
	}
	if n0.CellsSeed != 64 {
		t.Errorf("node 0 CellsSeed = %d, want 64", n0.CellsSeed)
	}

	n1 := st.Node(1)
	if n1.SampledAt != -1 || n1.ConsolidatedAt != -1 {
		t.Fatalf("node 1 should be incomplete: %+v", n1)
	}
	if n1.Rounds != 1 || n1.Timeouts != 1 {
		t.Errorf("node 1 rounds/timeouts = %d/%d, want 1/1", n1.Rounds, n1.Timeouts)
	}
	if n1.CellsSeed != 32 || n1.CellsFetch != 8 || n1.CellsRecon != 4 {
		t.Errorf("node 1 cell split = %d/%d/%d, want 32/8/4",
			n1.CellsSeed, n1.CellsFetch, n1.CellsRecon)
	}

	got := st.Durations(PhaseSampling, nil)
	want := []time.Duration{ms(800), -1}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Durations(sampling) = %v, want %v", got, want)
	}
	got = st.Durations(PhaseSeed, nil)
	want = []time.Duration{ms(150), ms(160)}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Durations(seed) = %v, want %v", got, want)
	}
	got = st.Durations(PhaseConsolidation, func(node int) bool { return node == 0 })
	want = []time.Duration{ms(500)}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Durations(consolidation, node 0 only) = %v, want %v", got, want)
	}
}

func TestTimelineMultiSlot(t *testing.T) {
	events := []Event{
		{At: ms(0), Slot: 1, Kind: KindSlotStart, Node: 0},
		{At: ms(12000), Slot: 2, Kind: KindSlotStart, Node: 0},
		{At: ms(12500), Slot: 2, Kind: KindSampleVerdict, Node: 0, Aux: 1},
	}
	tl := NewTimeline(events)
	slots := tl.Slots()
	if len(slots) != 2 || slots[0].Slot != 1 || slots[1].Slot != 2 {
		t.Fatalf("Slots() = %v", slots)
	}
	if d := slots[1].Durations(PhaseSampling, nil); len(d) != 1 || d[0] != ms(500) {
		t.Fatalf("slot 2 sampling durations = %v, want [500ms]", d)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	in := traceFixture()
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mismatch:\nin:  %+v\nout: %+v", in, out)
	}
}

func TestReadJSONLSkipsBlankLines(t *testing.T) {
	src := "\n" + `{"seq":0,"at":1000000,"slot":1,"kind":1,"node":0,"peer":-1}` + "\n\n"
	out, err := ReadJSONL(bytes.NewBufferString(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Kind != KindSlotStart || out[0].Peer != -1 {
		t.Fatalf("parsed %+v", out)
	}
}

func TestKindStrings(t *testing.T) {
	for k := KindSlotStart; k <= KindDHTMsg; k++ {
		if s := k.String(); s == "" || s[0] == 'K' {
			t.Errorf("Kind(%d).String() = %q", k, s)
		}
	}
	for _, op := range []ChurnOp{ChurnJoin, ChurnRestart, ChurnLeave, ChurnCrash} {
		if s := op.String(); s == "" || s[0] == 'C' {
			t.Errorf("%d.String() = %q", op, s)
		}
	}
}

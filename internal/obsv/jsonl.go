package obsv

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// WriteJSONL writes events as JSON Lines: one event object per line, in
// the given order. The format round-trips through ReadJSONL.
func WriteJSONL(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range events {
		if err := enc.Encode(&events[i]); err != nil {
			return fmt.Errorf("obsv: encode event %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ReadJSONL parses a JSON Lines trace produced by WriteJSONL. Blank
// lines are skipped.
func ReadJSONL(r io.Reader) ([]Event, error) {
	var out []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(b, &e); err != nil {
			return nil, fmt.Errorf("obsv: line %d: %w", line, err)
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obsv: read trace: %w", err)
	}
	return out, nil
}

package obsv

import (
	"testing"
	"time"
)

// BenchmarkEmitDisabled measures the disabled-recorder cost at every
// instrumentation site: one nil check. The bench gate in
// scripts/bench.sh requires <= 2 ns/op and 0 allocs/op.
func BenchmarkEmitDisabled(b *testing.B) {
	var o Observer
	e := Event{At: time.Second, Kind: KindCellsReceived, Count: 8}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		o.Emit(e)
	}
}

// BenchmarkEmitEnabled measures the enabled path: atomic ticket, event
// copy, atomic pointer store.
func BenchmarkEmitEnabled(b *testing.B) {
	o := Observer{Rec: MustRing(1 << 12), Node: 7, Slot: 1}
	e := Event{At: time.Second, Kind: KindCellsReceived, Count: 8}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		o.Emit(e)
	}
}

func BenchmarkRingRecordParallel(b *testing.B) {
	r := MustRing(1 << 14)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		e := Event{Kind: KindCellsReceived}
		for pb.Next() {
			r.Record(e)
		}
	})
}

// TestEmitDisabledZeroAllocs pins the disabled path's allocation count
// to zero independently of the benchmark gate.
func TestEmitDisabledZeroAllocs(t *testing.T) {
	var o Observer
	e := Event{At: time.Second, Kind: KindCellsReceived, Count: 8}
	if n := testing.AllocsPerRun(1000, func() { o.Emit(e) }); n != 0 {
		t.Fatalf("disabled Emit allocates %.1f per op, want 0", n)
	}
}

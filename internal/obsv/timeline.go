package obsv

import (
	"fmt"
	"sort"
	"time"
)

// Phase selects which completion time a timeline query reads.
type Phase int

// Phases of one node's slot, matching the paper's evaluation series.
const (
	// PhaseSeed is the arrival of the node's FIRST seed data (Fig. 9a).
	PhaseSeed Phase = iota + 1
	// PhaseConsolidation is custody-consolidation completion (Fig. 9b).
	PhaseConsolidation
	// PhaseSampling is sampling completion (Fig. 9c / Fig. 15).
	PhaseSampling
)

// String implements fmt.Stringer.
func (p Phase) String() string {
	switch p {
	case PhaseSeed:
		return "seed"
	case PhaseConsolidation:
		return "consolidation"
	case PhaseSampling:
		return "sampling"
	default:
		return fmt.Sprintf("Phase(%d)", int(p))
	}
}

// NodeTimeline is one node's reconstructed slot, with absolute event
// times (-1: never happened).
type NodeTimeline struct {
	Node int
	// StartAt is the node's own SlotStart time (joiners start late).
	StartAt time.Duration
	// FirstSeedAt is the first seed-cell batch's arrival.
	FirstSeedAt time.Duration
	// ConsolidatedAt is custody-consolidation completion.
	ConsolidatedAt time.Duration
	// SampledAt is sampling completion.
	SampledAt time.Duration
	// Rounds counts fetch rounds started.
	Rounds int
	// Timeouts counts peer-timeout transitions observed.
	Timeouts int
	// CellsSeed / CellsFetch / CellsRecon split ingested cells by source.
	CellsSeed  int
	CellsFetch int
	CellsRecon int
}

// SlotTimeline is one slot reconstructed from a trace.
type SlotTimeline struct {
	Slot uint64
	// Start anchors relative durations: the earliest SlotStart in the
	// slot. Cluster drivers start every online node synchronously, so
	// this equals the driver's slot-start time.
	Start time.Duration
	nodes map[int]*NodeTimeline
}

// Node returns the given node's timeline (nil if it emitted nothing).
func (st *SlotTimeline) Node(i int) *NodeTimeline { return st.nodes[i] }

// Nodes returns the per-node timelines in ascending node order.
func (st *SlotTimeline) Nodes() []*NodeTimeline {
	out := make([]*NodeTimeline, 0, len(st.nodes))
	for _, nt := range st.nodes {
		out = append(out, nt)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	return out
}

// Durations returns the phase-completion durations relative to the slot
// start, in ascending node order — exactly the series the legacy
// NodeOutcome aggregation feeds metrics.NewDistribution. A node that
// never completed the phase yields -1 (the distribution's failure
// marker). include filters nodes (nil: all traced nodes); the cluster
// passes the same liveness filter the legacy path applies to outcomes.
func (st *SlotTimeline) Durations(p Phase, include func(node int) bool) []time.Duration {
	var out []time.Duration
	for _, nt := range st.Nodes() {
		if include != nil && !include(nt.Node) {
			continue
		}
		at := time.Duration(-1)
		switch p {
		case PhaseSeed:
			at = nt.FirstSeedAt
		case PhaseConsolidation:
			at = nt.ConsolidatedAt
		case PhaseSampling:
			at = nt.SampledAt
		}
		if at < 0 {
			out = append(out, -1)
			continue
		}
		out = append(out, at-st.Start)
	}
	return out
}

// Timeline is a trace regrouped by slot and node: the bridge from a
// recorded (or JSONL-loaded) event stream back to the per-phase duration
// series the figures aggregate.
type Timeline struct {
	slots map[uint64]*SlotTimeline
}

// NewTimeline reconstructs per-slot, per-node timelines from a trace.
// Events may arrive in any order (ring snapshots are sequence-ordered,
// JSONL files are whatever the writer dumped).
func NewTimeline(events []Event) *Timeline {
	t := &Timeline{slots: make(map[uint64]*SlotTimeline)}
	for _, e := range events {
		st := t.slots[e.Slot]
		if st == nil {
			st = &SlotTimeline{Slot: e.Slot, Start: -1, nodes: make(map[int]*NodeTimeline)}
			t.slots[e.Slot] = st
		}
		nt := st.nodes[int(e.Node)]
		if nt == nil {
			nt = &NodeTimeline{
				Node:           int(e.Node),
				StartAt:        -1,
				FirstSeedAt:    -1,
				ConsolidatedAt: -1,
				SampledAt:      -1,
			}
			st.nodes[int(e.Node)] = nt
		}
		switch e.Kind {
		case KindSlotStart:
			// A node may start a slot more than once (crash + restart);
			// keep the earliest for the anchor and the latest per node.
			if st.Start < 0 || e.At < st.Start {
				st.Start = e.At
			}
			nt.StartAt = e.At
		case KindCellsReceived:
			switch e.Src {
			case SrcSeed:
				if nt.FirstSeedAt < 0 || e.At < nt.FirstSeedAt {
					nt.FirstSeedAt = e.At
				}
				nt.CellsSeed += int(e.Count)
			case SrcFetch:
				nt.CellsFetch += int(e.Count)
			case SrcReconstruct:
				nt.CellsRecon += int(e.Count)
			}
		case KindRoundStarted:
			nt.Rounds++
		case KindPeerTimeout:
			nt.Timeouts++
		case KindConsolidated:
			if nt.ConsolidatedAt < 0 || e.At < nt.ConsolidatedAt {
				nt.ConsolidatedAt = e.At
			}
		case KindSampleVerdict:
			if nt.SampledAt < 0 || e.At < nt.SampledAt {
				nt.SampledAt = e.At
			}
		}
	}
	return t
}

// Slot returns one slot's timeline (nil if the trace has no events for
// it).
func (t *Timeline) Slot(slot uint64) *SlotTimeline { return t.slots[slot] }

// Slots returns the reconstructed slots in ascending slot order.
func (t *Timeline) Slots() []*SlotTimeline {
	out := make([]*SlotTimeline, 0, len(t.slots))
	for _, st := range t.slots {
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Slot < out[j].Slot })
	return out
}

package obsv

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// ParsePrometheus reads the text exposition format WritePrometheus
// emits and reconstructs the snapshot — the scrape half of the
// supervisor/worker metrics pipeline. It understands exactly the subset
// WritePrometheus produces (counter, gauge, histogram; no labels other
// than histogram le) and skips series it cannot classify rather than
// failing, so a scrape never dies on a foreign metric.
func ParsePrometheus(r io.Reader) (Snapshot, error) {
	s := Snapshot{
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]int64),
		Histograms: make(map[string]HistSnapshot),
	}
	types := make(map[string]string)
	// Histograms arrive as cumulative buckets; collect and de-accumulate
	// at the end.
	type histAcc struct {
		bounds  []float64
		cumul   []int64
		infCum  int64
		sum     float64
		count   int64
		hasInf  bool
		ordered bool
	}
	hists := make(map[string]*histAcc)
	acc := func(name string) *histAcc {
		h := hists[name]
		if h == nil {
			h = &histAcc{ordered: true}
			hists[name] = h
		}
		return h
	}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			f := strings.Fields(line)
			// "# TYPE name kind"
			if len(f) == 4 && f[1] == "TYPE" {
				types[f[2]] = f[3]
			}
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			continue
		}
		series, value := line[:sp], line[sp+1:]

		if i := strings.IndexByte(series, '{'); i >= 0 {
			// Only histogram buckets carry labels in this format:
			// name_bucket{le="X"} cum
			name, ok := strings.CutSuffix(series[:i], "_bucket")
			if !ok {
				continue
			}
			label := series[i:]
			if !strings.HasPrefix(label, `{le="`) || !strings.HasSuffix(label, `"}`) {
				continue
			}
			le := label[len(`{le="`) : len(label)-len(`"}`)]
			cum, err := strconv.ParseInt(value, 10, 64)
			if err != nil {
				continue
			}
			h := acc(name)
			if le == "+Inf" {
				h.infCum = cum
				h.hasInf = true
				continue
			}
			ub, err := strconv.ParseFloat(le, 64)
			if err != nil {
				continue
			}
			if len(h.bounds) > 0 && ub <= h.bounds[len(h.bounds)-1] {
				h.ordered = false
			}
			h.bounds = append(h.bounds, ub)
			h.cumul = append(h.cumul, cum)
			continue
		}

		if name, ok := strings.CutSuffix(series, "_sum"); ok && types[name] == "histogram" {
			if v, err := strconv.ParseFloat(value, 64); err == nil {
				acc(name).sum = v
			}
			continue
		}
		if name, ok := strings.CutSuffix(series, "_count"); ok && types[name] == "histogram" {
			if v, err := strconv.ParseInt(value, 10, 64); err == nil {
				acc(name).count = v
			}
			continue
		}

		v, err := strconv.ParseInt(value, 10, 64)
		if err != nil {
			continue
		}
		switch types[series] {
		case "counter":
			s.Counters[series] = v
		case "gauge":
			s.Gauges[series] = v
		}
	}
	if err := sc.Err(); err != nil {
		return s, fmt.Errorf("obsv: scrape: %w", err)
	}

	for name, h := range hists {
		if !h.ordered || !h.hasInf {
			return s, fmt.Errorf("obsv: scrape: histogram %s has malformed buckets", name)
		}
		hs := HistSnapshot{
			Bounds:  h.bounds,
			Buckets: make([]int64, len(h.bounds)+1),
			Count:   h.count,
			Sum:     h.sum,
		}
		prev := int64(0)
		for i, cum := range h.cumul {
			if cum < prev {
				return s, fmt.Errorf("obsv: scrape: histogram %s buckets not cumulative", name)
			}
			hs.Buckets[i] = cum - prev
			prev = cum
		}
		if h.infCum < prev {
			return s, fmt.Errorf("obsv: scrape: histogram %s buckets not cumulative", name)
		}
		hs.Buckets[len(hs.Buckets)-1] = h.infCum - prev
		s.Histograms[name] = hs
	}
	return s, nil
}

// Merge folds other into a copy of s: counters and gauges add (a merged
// gauge reads as a fleet total), histograms with identical bounds add
// bucket-wise. Mismatched histogram shapes keep s's version. Neither
// receiver nor argument is mutated.
func (s Snapshot) Merge(other Snapshot) Snapshot {
	out := Snapshot{
		Counters:   make(map[string]int64, len(s.Counters)+len(other.Counters)),
		Gauges:     make(map[string]int64, len(s.Gauges)+len(other.Gauges)),
		Histograms: make(map[string]HistSnapshot, len(s.Histograms)+len(other.Histograms)),
	}
	for k, v := range s.Counters {
		out.Counters[k] = v
	}
	for k, v := range other.Counters {
		out.Counters[k] += v
	}
	for k, v := range s.Gauges {
		out.Gauges[k] = v
	}
	for k, v := range other.Gauges {
		out.Gauges[k] += v
	}
	for k, v := range s.Histograms {
		out.Histograms[k] = copyHist(v)
	}
	for k, v := range other.Histograms {
		cur, ok := out.Histograms[k]
		if !ok {
			out.Histograms[k] = copyHist(v)
			continue
		}
		if !boundsEqual(cur.Bounds, v.Bounds) || len(cur.Buckets) != len(v.Buckets) {
			continue
		}
		for i := range v.Buckets {
			cur.Buckets[i] += v.Buckets[i]
		}
		cur.Count += v.Count
		cur.Sum += v.Sum
		out.Histograms[k] = cur
	}
	return out
}

func copyHist(h HistSnapshot) HistSnapshot {
	return HistSnapshot{
		Bounds:  append([]float64(nil), h.Bounds...),
		Buckets: append([]int64(nil), h.Buckets...),
		Count:   h.Count,
		Sum:     h.Sum,
	}
}

func boundsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		// Bounds survive a float->text->float round trip exactly
		// (strconv 'g' -1), so exact comparison is right; NaN never
		// appears in bucket bounds.
		if a[i] != b[i] || math.IsNaN(a[i]) != math.IsNaN(b[i]) {
			return false
		}
	}
	return true
}

package obsv

import (
	"fmt"
	"time"
)

// Kind identifies the type of a trace event. The taxonomy covers every
// protocol layer: builder seeding, node receive/fetch/sample paths,
// peer-liveness transitions, membership maintenance, and churn.
type Kind uint8

// Event kinds. See DESIGN.md §3.7 for the full taxonomy and the fields
// each kind populates.
const (
	// KindSlotStart marks a node (re)starting a slot: emitted by
	// Node.StartSlot and again when a joiner enters mid-slot. The
	// earliest SlotStart of a slot anchors all relative durations.
	KindSlotStart Kind = iota + 1
	// KindSeedSent is one seed datagram leaving the builder. Peer is the
	// recipient, Count the cells carried, Bytes the wire size, Aux the
	// boost entries carried.
	KindSeedSent
	// KindCellsReceived is a batch of cells ingested by a node. Src says
	// how they arrived (seeding, a fetch response, or local erasure
	// reconstruction), Count is the newly added cells, Aux the
	// duplicates in the batch, Round the fetch round a response was
	// attributed to (0 outside round attribution).
	KindCellsReceived
	// KindRoundStarted marks one adaptive-fetch round beginning. Round
	// is the 1-based round number, Count the size of the missing set F,
	// Aux the number of peers queried by the round's plan.
	KindRoundStarted
	// KindBoostPromotion records that a round's plan promoted peers via
	// the builder's consolidation-boost map: Count is the number of
	// boosted peers, Aux the boosted cells.
	KindBoostPromotion
	// KindPeerTimeout is a liveness transition: a queried peer's reply
	// deadline expired. Peer is the suspect, Count its consecutive
	// failures, Aux the backoff imposed (nanoseconds).
	KindPeerTimeout
	// KindPeerRecovered is the inverse transition: a previously demoted
	// peer answered. Count is the failure count that was cleared.
	KindPeerRecovered
	// KindPeerDemoted records that round planning skipped a peer still
	// inside its liveness backoff. Peer is the skipped peer, Round the
	// round that skipped it.
	KindPeerDemoted
	// KindConsolidated marks a node completing custody consolidation.
	KindConsolidated
	// KindSampleVerdict marks a node concluding sampling: Count is the
	// number of samples drawn, Aux is 1 when every sample was satisfied
	// (the only verdict a completed slot emits today).
	KindSampleVerdict
	// KindViewRefresh is a completed DHT view-refresh crawl: Count the
	// entries discovered, Aux the node's cumulative crawl number.
	KindViewRefresh
	// KindChurnEvent is a membership lifecycle transition; Aux holds a
	// ChurnOp value.
	KindChurnEvent
	// KindGossipMsg is a gossip frame handled by a node's router (block
	// mesh or membership-announcement mesh). Aux is 1 for duplicates.
	KindGossipMsg
	// KindDHTMsg is a DHT RPC handled by a node's Kademlia peer.
	KindDHTMsg
	// KindWithheldCell records the builder withholding data for a slot:
	// emitted once per seeding, with Count the number of withheld cells
	// and Aux the total extended cells. Node is the builder's index.
	KindWithheldCell
	// KindCorruptReject records a node rejecting cells whose proof
	// verification failed. Peer is the sender (-1 for a seed batch),
	// Count the rejected cells. The rejected cells stay in the missing
	// set and are re-requested from other peers next round.
	KindCorruptReject
	// KindFaultStart marks a scheduled network fault engaging. Node is
	// -1 (the fault is network-global), Count the isolated node count
	// for a partition (0 otherwise), Aux the FaultKind code.
	KindFaultStart
	// KindFaultStop marks the matching fault clearing; fields mirror
	// KindFaultStart.
	KindFaultStop
	// KindGatewayQuery is a light-client sampling query received by a
	// gateway frontend. Node is the gateway's id (-1 for a standalone
	// gateway), Peer the client id, Count the cells requested (1).
	KindGatewayQuery
	// KindGatewayCacheHit is a gateway query answered from the hot-cell
	// cache without touching the upstream node. Peer is the client id.
	KindGatewayCacheHit
	// KindGatewayCoalesced is a gateway query that joined an in-flight
	// upstream fetch for the same cell instead of issuing its own. Peer
	// is the client id, Aux the number of waiters sharing the fetch so
	// far (including this one).
	KindGatewayCoalesced
	// KindGatewayBatchVerify is one amortized proof-verification batch
	// at a gateway: Count is the batch size, Aux the cells that FAILED
	// verification (0 for a clean batch).
	KindGatewayBatchVerify
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindSlotStart:
		return "slot-start"
	case KindSeedSent:
		return "seed-sent"
	case KindCellsReceived:
		return "cells-received"
	case KindRoundStarted:
		return "round-started"
	case KindBoostPromotion:
		return "boost-promotion"
	case KindPeerTimeout:
		return "peer-timeout"
	case KindPeerRecovered:
		return "peer-recovered"
	case KindPeerDemoted:
		return "peer-demoted"
	case KindConsolidated:
		return "consolidated"
	case KindSampleVerdict:
		return "sample-verdict"
	case KindViewRefresh:
		return "view-refresh"
	case KindChurnEvent:
		return "churn-event"
	case KindGossipMsg:
		return "gossip-msg"
	case KindDHTMsg:
		return "dht-msg"
	case KindWithheldCell:
		return "withheld-cell"
	case KindCorruptReject:
		return "corrupt-reject"
	case KindFaultStart:
		return "fault-start"
	case KindFaultStop:
		return "fault-stop"
	case KindGatewayQuery:
		return "gateway-query"
	case KindGatewayCacheHit:
		return "gateway-cache-hit"
	case KindGatewayCoalesced:
		return "gateway-coalesced"
	case KindGatewayBatchVerify:
		return "gateway-batch-verify"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Source says how a KindCellsReceived batch arrived.
type Source uint8

// Cell sources.
const (
	// SrcNone is the zero value (event kinds without a source).
	SrcNone Source = iota
	// SrcSeed marks cells delivered by the builder's seeding.
	SrcSeed
	// SrcFetch marks cells delivered by a peer's fetch response.
	SrcFetch
	// SrcReconstruct marks cells produced by local erasure
	// reconstruction.
	SrcReconstruct
)

// String implements fmt.Stringer.
func (s Source) String() string {
	switch s {
	case SrcNone:
		return ""
	case SrcSeed:
		return "seed"
	case SrcFetch:
		return "fetch"
	case SrcReconstruct:
		return "reconstruct"
	default:
		return fmt.Sprintf("Source(%d)", uint8(s))
	}
}

// ChurnOp is the lifecycle transition carried in a KindChurnEvent's Aux.
type ChurnOp int64

// Churn operations.
const (
	// ChurnJoin is a pool node coming online for the first time.
	ChurnJoin ChurnOp = iota + 1
	// ChurnRestart is a departed node coming back.
	ChurnRestart
	// ChurnLeave is a graceful (announced) departure.
	ChurnLeave
	// ChurnCrash is an unannounced departure.
	ChurnCrash
)

// String implements fmt.Stringer.
func (o ChurnOp) String() string {
	switch o {
	case ChurnJoin:
		return "join"
	case ChurnRestart:
		return "restart"
	case ChurnLeave:
		return "leave"
	case ChurnCrash:
		return "crash"
	default:
		return fmt.Sprintf("ChurnOp(%d)", int64(o))
	}
}

// Event is one observation in a slot-scoped trace. The struct is flat
// and fixed-size so recorders can store it without indirection; field
// meaning is kind-specific (see the Kind constants).
type Event struct {
	// Seq is the trace-global sequence number, assigned by the recorder.
	Seq uint64 `json:"seq"`
	// At is the (virtual or real) time of the observation.
	At time.Duration `json:"at"`
	// Slot scopes the event to a consensus slot (0 when unknown, e.g.
	// liveness transitions recorded between slots).
	Slot uint64 `json:"slot"`
	// Kind is the event type.
	Kind Kind `json:"kind"`
	// Src qualifies KindCellsReceived batches.
	Src Source `json:"src,omitempty"`
	// Node is the observing node's index (the builder's for seeding).
	Node int32 `json:"node"`
	// Peer is the counterpart node, -1 when there is none.
	Peer int32 `json:"peer"`
	// Round is the 1-based fetch round, 0 outside round context.
	Round int32 `json:"round,omitempty"`
	// Count is the kind-specific cardinality (cells, failures, peers).
	Count int32 `json:"count,omitempty"`
	// Bytes is the wire volume involved, when meaningful.
	Bytes int64 `json:"bytes,omitempty"`
	// Aux is the kind-specific extra value (duplicates, ChurnOp, plan
	// size, backoff nanoseconds...).
	Aux int64 `json:"aux,omitempty"`
}

// String renders a compact human-readable form for debugging.
func (e Event) String() string {
	return fmt.Sprintf("%s slot=%d node=%d peer=%d at=%s count=%d aux=%d",
		e.Kind, e.Slot, e.Node, e.Peer, e.At, e.Count, e.Aux)
}

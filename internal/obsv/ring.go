package obsv

import (
	"fmt"
	"sort"
	"sync/atomic"
)

// DefaultRingSize is the trace capacity used when a caller does not pick
// one: 64Ki events is ~4 slots of a 1000-node simulated run.
const DefaultRingSize = 1 << 16

// Ring is a lock-free, fixed-capacity Recorder. Producers claim a slot
// with one atomic increment and publish a private copy of the event with
// one atomic pointer store; when the ring wraps, the oldest events are
// overwritten. Reads (Events, Snapshot consumers) may run concurrently
// with writers and always observe fully published events — a slot is
// either nil, the old event, or the new one, never a torn mix.
type Ring struct {
	next  atomic.Uint64 // ticket counter: total events recorded
	mask  uint64
	slots []atomic.Pointer[Event]
}

// NewRing returns a Ring holding the most recent capacity events.
// Capacity is rounded up to a power of two; it must be at least 1.
func NewRing(capacity int) (*Ring, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("obsv: ring capacity %d < 1", capacity)
	}
	size := 1
	for size < capacity {
		size <<= 1
	}
	return &Ring{
		mask:  uint64(size - 1),
		slots: make([]atomic.Pointer[Event], size),
	}, nil
}

// MustRing is NewRing for known-good capacities; it panics on error.
func MustRing(capacity int) *Ring {
	r, err := NewRing(capacity)
	if err != nil {
		panic(err)
	}
	return r
}

// Cap returns the ring's capacity (a power of two).
func (r *Ring) Cap() int { return len(r.slots) }

// Record implements Recorder. Safe for concurrent producers. The enabled
// path costs one atomic add, one heap copy of the event, and one atomic
// store; a published event is never mutated afterwards.
func (r *Ring) Record(e Event) {
	seq := r.next.Add(1) - 1
	e.Seq = seq
	r.slots[seq&r.mask].Store(&e)
}

// Recorded returns the total number of events recorded, including any
// that have since been overwritten.
func (r *Ring) Recorded() uint64 { return r.next.Load() }

// Overwritten returns how many events have been lost to wrap-around.
func (r *Ring) Overwritten() uint64 {
	n := r.next.Load()
	if c := uint64(len(r.slots)); n > c {
		return n - c
	}
	return 0
}

// Events returns the retained events in sequence order. It is safe to
// call while producers are recording: each returned event is a fully
// published copy. Events racing with wrap-around may be skipped, so the
// result can be shorter than Cap even on a full ring.
func (r *Ring) Events() []Event {
	out := make([]Event, 0, len(r.slots))
	for i := range r.slots {
		if p := r.slots[i].Load(); p != nil {
			out = append(out, *p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Reset discards all retained events and restarts sequence numbering.
// It must not race with concurrent Record calls.
func (r *Ring) Reset() {
	r.next.Store(0)
	for i := range r.slots {
		r.slots[i].Store(nil)
	}
}

package obsv

import "time"

// RoundStat captures the fetching progress of one node during one round,
// the quantities reported in Table 1 of the paper.
type RoundStat struct {
	MsgsSent          int
	CellsRequested    int
	RepliesInRound    int
	RepliesAfterRound int
	CellsInRound      int
	CellsAfterRound   int
	Duplicates        int
	Reconstructed     int
	// CoverageAfter is the cumulative fraction of the node's initial
	// fetch set satisfied when the NEXT round began.
	CoverageAfter float64
}

// NodeView aggregates one node's per-slot observations. It is the
// unified read surface of the observability layer: the protocol updates
// it through an Observer while (optionally) tracing the same transitions
// as Events, so a live view and a reconstructed Timeline agree by
// construction. core.NodeMetrics is an alias of this type.
type NodeView struct {
	// Phase completion (absolute virtual times; valid when the Has* /
	// Consolidated / Sampled flags are set).
	FirstSeedAt    time.Duration
	SeedAt         time.Duration // last seed datagram received
	ConsolidatedAt time.Duration
	SampledAt      time.Duration
	HasSeed        bool
	Consolidated   bool
	Sampled        bool

	// Seeding counters.
	SeedCells      int
	SeedDuplicates int

	// Fetch-phase traffic (queries + responses, both directions),
	// excluding seeding. This is the quantity of Fig. 10.
	FetchMsgsSent  int
	FetchMsgsRecv  int
	FetchBytesSent int64
	FetchBytesRecv int64

	// CorruptRejects counts cells rejected for failing proof
	// verification (garbage responses from byzantine peers). Rejected
	// cells never count as ingested; they stay missing and are re-fetched
	// from other peers.
	CorruptRejects int

	// Rounds holds per-round statistics (Table 1).
	Rounds []RoundStat

	// InitialFetchSet is |F| when fetching began.
	InitialFetchSet int
}

// Observer maintains one participant's NodeView and mirrors its phase
// transitions into a Recorder. It is embedded by value in core.Node: the
// view IS the node's metrics, and tracing is the optional side channel.
// With a nil Rec every Emit is a single nil check.
type Observer struct {
	// View is the live per-slot aggregate (the legacy NodeMetrics).
	View NodeView
	// Rec receives trace events; nil disables tracing.
	Rec Recorder
	// Node is stamped into every emitted event.
	Node int32
	// Slot is stamped into every emitted event; updated by BeginSlot.
	Slot uint64
}

// Emit stamps the observer's node and slot into e and records it. Does
// nothing when Rec is nil; callers building non-trivial events should
// guard with Enabled to keep the disabled path at one comparison.
func (o *Observer) Emit(e Event) {
	if o.Rec == nil {
		return
	}
	e.Node = o.Node
	e.Slot = o.Slot
	o.Rec.Record(e)
}

// Enabled reports whether tracing is on (Rec non-nil).
func (o *Observer) Enabled() bool { return o.Rec != nil }

// BeginSlot resets the view for a new (or re-entered) slot and emits
// KindSlotStart.
func (o *Observer) BeginSlot(slot uint64, now time.Duration) {
	o.Slot = slot
	o.View = NodeView{}
	if o.Rec != nil {
		o.Emit(Event{At: now, Kind: KindSlotStart, Peer: -1})
	}
}

// SeedChunk records one seed datagram's arrival times and cell count.
// It updates the view only — the matching CellsReceived event is emitted
// by SeedIngested once duplicates are known — so SeedAt keeps its role
// as the seed-watchdog generation marker.
func (o *Observer) SeedChunk(now time.Duration, cells int) {
	if !o.View.HasSeed {
		o.View.HasSeed = true
		o.View.FirstSeedAt = now
	}
	o.View.SeedAt = now
	o.View.SeedCells += cells
}

// SeedIngested accounts a seed batch after store ingestion and emits the
// KindCellsReceived event (Src seed) carrying added and duplicate
// counts.
func (o *Observer) SeedIngested(now time.Duration, added, dups int) {
	o.View.SeedDuplicates += dups
	if o.Rec != nil {
		o.Emit(Event{At: now, Kind: KindCellsReceived, Src: SrcSeed,
			Peer: -1, Count: int32(added), Aux: int64(dups)})
	}
}

// ConsolidationDone marks custody consolidation complete.
func (o *Observer) ConsolidationDone(now time.Duration) {
	o.View.Consolidated = true
	o.View.ConsolidatedAt = now
	if o.Rec != nil {
		o.Emit(Event{At: now, Kind: KindConsolidated, Peer: -1})
	}
}

// SamplingDone marks sampling complete and emits the sample verdict
// (Aux=1: all samples satisfied — the only verdict a completed slot
// reaches today).
func (o *Observer) SamplingDone(now time.Duration, samples int) {
	o.View.Sampled = true
	o.View.SampledAt = now
	if o.Rec != nil {
		o.Emit(Event{At: now, Kind: KindSampleVerdict, Peer: -1,
			Count: int32(samples), Aux: 1})
	}
}

package obsv

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing value. Safe for concurrent use.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by d (d must be non-negative).
func (c *Counter) Add(d int64) { c.v.Add(d) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a value that can go up and down. Safe for concurrent use.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add shifts the gauge by d (may be negative).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// DefaultLatencyBounds are histogram bucket upper bounds (seconds) suited
// to protocol phase latencies: sub-second resolution up to the 4 s
// attestation deadline, then the 12 s slot.
var DefaultLatencyBounds = []float64{
	0.05, 0.1, 0.2, 0.4, 0.6, 0.8, 1, 1.5, 2, 3, 4, 6, 8, 12,
}

// Histogram accumulates observations into fixed upper-bound buckets
// (Prometheus cumulative-bucket semantics). Safe for concurrent use.
type Histogram struct {
	bounds  []float64 // sorted upper bounds, exclusive of +Inf
	buckets []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits, CAS-updated
}

func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{
		bounds:  b,
		buckets: make([]atomic.Int64, len(b)+1), // +1 for the +Inf bucket
	}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Registry is a get-or-create store of named metrics. Metric handles are
// stable: callers may look one up once and keep the pointer on a hot
// path. Safe for concurrent use.
type Registry struct {
	mu    sync.RWMutex
	cnt   map[string]*Counter
	gauge map[string]*Gauge
	hist  map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		cnt:   make(map[string]*Counter),
		gauge: make(map[string]*Gauge),
		hist:  make(map[string]*Histogram),
	}
}

// Counter returns the counter with the given name, creating it if
// needed.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c := r.cnt[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.cnt[name]; c == nil {
		c = &Counter{}
		r.cnt[name] = c
	}
	return c
}

// Gauge returns the gauge with the given name, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g := r.gauge[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauge[name]; g == nil {
		g = &Gauge{}
		r.gauge[name] = g
	}
	return g
}

// Histogram returns the histogram with the given name, creating it with
// the given bucket upper bounds if needed. Bounds are ignored on lookup
// of an existing histogram.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.RLock()
	h := r.hist[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hist[name]; h == nil {
		h = newHistogram(bounds)
		r.hist[name] = h
	}
	return h
}

// HistSnapshot is a point-in-time copy of one histogram.
type HistSnapshot struct {
	Bounds  []float64 // sorted upper bounds (exclusive of +Inf)
	Buckets []int64   // per-bound counts; last entry is the +Inf bucket
	Count   int64
	Sum     float64
}

// Snapshot is a point-in-time, read-only copy of a Registry's values.
type Snapshot struct {
	Counters   map[string]int64
	Gauges     map[string]int64
	Histograms map[string]HistSnapshot
}

// Snapshot copies every metric's current value. The result is detached:
// later metric updates do not affect it.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.cnt)),
		Gauges:     make(map[string]int64, len(r.gauge)),
		Histograms: make(map[string]HistSnapshot, len(r.hist)),
	}
	for name, c := range r.cnt {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauge {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hist {
		hs := HistSnapshot{
			Bounds:  append([]float64(nil), h.bounds...),
			Buckets: make([]int64, len(h.buckets)),
			Count:   h.Count(),
			Sum:     h.Sum(),
		}
		for i := range h.buckets {
			hs.Buckets[i] = h.buckets[i].Load()
		}
		s.Histograms[name] = hs
	}
	return s
}

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format (version 0.0.4), metrics sorted by name.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	for _, name := range sortedKeys(s.Counters) {
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, s.Counters[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Gauges) {
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", name, name, s.Gauges[name]); err != nil {
			return err
		}
	}
	names := make([]string, 0, len(s.Histograms))
	for name := range s.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := s.Histograms[name]
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
			return err
		}
		cum := int64(0)
		for i, ub := range h.Bounds {
			cum += h.Buckets[i]
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d\n",
				name, strconv.FormatFloat(ub, 'g', -1, 64), cum); err != nil {
				return err
			}
		}
		cum += h.Buckets[len(h.Buckets)-1]
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n",
			name, strconv.FormatFloat(h.Sum, 'g', -1, 64), name, h.Count); err != nil {
			return err
		}
	}
	return nil
}

func sortedKeys(m map[string]int64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

package obsv

import (
	"sync"
	"testing"
	"time"
)

func TestNewRingCapacity(t *testing.T) {
	for _, tc := range []struct{ ask, want int }{
		{1, 1}, {2, 2}, {3, 4}, {5, 8}, {64, 64}, {1000, 1024},
	} {
		r, err := NewRing(tc.ask)
		if err != nil {
			t.Fatalf("NewRing(%d): %v", tc.ask, err)
		}
		if r.Cap() != tc.want {
			t.Errorf("NewRing(%d).Cap() = %d, want %d", tc.ask, r.Cap(), tc.want)
		}
	}
	for _, bad := range []int{0, -1, -100} {
		if _, err := NewRing(bad); err == nil {
			t.Errorf("NewRing(%d): expected error", bad)
		}
	}
}

func TestRingRecordAndEvents(t *testing.T) {
	r := MustRing(8)
	for i := 0; i < 5; i++ {
		r.Record(Event{At: time.Duration(i) * time.Millisecond, Kind: KindSlotStart, Node: int32(i)})
	}
	if got := r.Recorded(); got != 5 {
		t.Fatalf("Recorded() = %d, want 5", got)
	}
	if got := r.Overwritten(); got != 0 {
		t.Fatalf("Overwritten() = %d, want 0", got)
	}
	events := r.Events()
	if len(events) != 5 {
		t.Fatalf("Events() returned %d events, want 5", len(events))
	}
	for i, e := range events {
		if e.Seq != uint64(i) {
			t.Errorf("event %d: Seq = %d, want %d (sequence order)", i, e.Seq, i)
		}
		if e.Node != int32(i) {
			t.Errorf("event %d: Node = %d, want %d", i, e.Node, i)
		}
	}
}

func TestRingWrapAround(t *testing.T) {
	r := MustRing(4)
	for i := 0; i < 10; i++ {
		r.Record(Event{Node: int32(i)})
	}
	if got := r.Recorded(); got != 10 {
		t.Fatalf("Recorded() = %d, want 10", got)
	}
	if got := r.Overwritten(); got != 6 {
		t.Fatalf("Overwritten() = %d, want 6", got)
	}
	events := r.Events()
	if len(events) != 4 {
		t.Fatalf("Events() returned %d, want 4 (capacity)", len(events))
	}
	// The retained events are the newest four, in sequence order.
	for i, e := range events {
		want := uint64(6 + i)
		if e.Seq != want {
			t.Errorf("event %d: Seq = %d, want %d", i, e.Seq, want)
		}
	}
}

func TestRingReset(t *testing.T) {
	r := MustRing(4)
	for i := 0; i < 6; i++ {
		r.Record(Event{Node: int32(i)})
	}
	r.Reset()
	if got := r.Recorded(); got != 0 {
		t.Fatalf("Recorded() after Reset = %d, want 0", got)
	}
	if got := len(r.Events()); got != 0 {
		t.Fatalf("Events() after Reset has %d entries, want 0", got)
	}
	r.Record(Event{Node: 42})
	events := r.Events()
	if len(events) != 1 || events[0].Seq != 0 || events[0].Node != 42 {
		t.Fatalf("post-Reset record mismatch: %+v", events)
	}
}

// TestRingConcurrent hammers the ring from several producers while a
// consumer snapshots mid-run; run under -race this is the lock-freedom
// regression test. Every observed event must be internally consistent
// (Seq determines Node), and the final snapshot holds exactly the newest
// capacity events.
func TestRingConcurrent(t *testing.T) {
	const (
		producers = 8
		perProd   = 2000
	)
	r := MustRing(1024)
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Consumer: snapshot continuously while producers run; check that
	// every event is fully published (At encodes Node, so a torn event
	// would disagree).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, e := range r.Events() {
				if e.At != time.Duration(e.Node) {
					t.Errorf("torn event: Node=%d At=%d", e.Node, e.At)
					return
				}
			}
		}
	}()

	var prod sync.WaitGroup
	for p := 0; p < producers; p++ {
		prod.Add(1)
		go func(p int) {
			defer prod.Done()
			for i := 0; i < perProd; i++ {
				node := int32(p*perProd + i)
				r.Record(Event{At: time.Duration(node), Kind: KindCellsReceived, Node: node})
			}
		}(p)
	}
	prod.Wait()
	close(stop)
	wg.Wait()

	if got := r.Recorded(); got != producers*perProd {
		t.Fatalf("Recorded() = %d, want %d", got, producers*perProd)
	}
	events := r.Events()
	if len(events) != r.Cap() {
		t.Fatalf("final Events() has %d entries, want full capacity %d", len(events), r.Cap())
	}
	seen := make(map[uint64]bool, len(events))
	// A producer delayed between its ticket claim and its store can leave
	// an event one generation stale, so allow 2*Cap of slack.
	lo := uint64(producers*perProd - 2*r.Cap())
	for _, e := range events {
		if seen[e.Seq] {
			t.Fatalf("duplicate Seq %d", e.Seq)
		}
		seen[e.Seq] = true
		if e.Seq < lo {
			t.Fatalf("stale event Seq %d survived wrap (oldest retainable %d)", e.Seq, lo)
		}
	}
}

package adversary

import (
	"reflect"
	"testing"
	"time"

	"pandas/internal/blob"
	"pandas/internal/wire"
)

func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  *Config
		ok   bool
	}{
		{"nil", nil, true},
		{"zero", &Config{}, true},
		{"silent", &Config{SilentFraction: 0.2}, true},
		{"all behaviors", &Config{SilentFraction: 0.2, LaggardFraction: 0.2, GarbageFraction: 0.2, PoisonFraction: 0.2}, true},
		{"fraction out of range", &Config{SilentFraction: 1.5}, false},
		{"negative fraction", &Config{GarbageFraction: -0.1}, false},
		{"fractions sum over 1", &Config{SilentFraction: 0.6, LaggardFraction: 0.6}, false},
		{"lag inverted", &Config{LagMin: time.Second, LagMax: time.Millisecond}, false},
		{"maximal withholding", &Config{Builder: BuilderAttack{Withholding: WithholdMaximal}}, true},
		{"random withholding no fraction", &Config{Builder: BuilderAttack{Withholding: WithholdRandom}}, false},
		{"random withholding", &Config{Builder: BuilderAttack{Withholding: WithholdRandom, WithholdFraction: 0.3}}, true},
		{"rows without lines", &Config{Builder: BuilderAttack{Withholding: WithholdRows}}, false},
		{"rows", &Config{Builder: BuilderAttack{Withholding: WithholdRows, WithholdLines: 4}}, true},
		{"unknown pattern", &Config{Builder: BuilderAttack{Withholding: Pattern(99)}}, false},
		{"crash", &Config{Builder: BuilderAttack{CrashAfterFraction: 0.5}}, true},
		{"crash out of range", &Config{Builder: BuilderAttack{CrashAfterFraction: 1.5}}, false},
		{"partition", &Config{Faults: []Fault{{Kind: FaultPartition, At: time.Second, Duration: time.Second, Fraction: 0.3}}}, true},
		{"partition bad fraction", &Config{Faults: []Fault{{Kind: FaultPartition, At: time.Second, Duration: time.Second, Fraction: 1.0}}}, false},
		{"loss burst", &Config{Faults: []Fault{{Kind: FaultLossBurst, Duration: time.Second, LossRate: 0.5}}}, true},
		{"loss burst bad rate", &Config{Faults: []Fault{{Kind: FaultLossBurst, Duration: time.Second, LossRate: 0}}}, false},
		{"fault unknown kind", &Config{Faults: []Fault{{Duration: time.Second}}}, false},
		{"fault zero duration", &Config{Faults: []Fault{{Kind: FaultPartition, Fraction: 0.3}}}, false},
	}
	for _, tc := range cases {
		err := tc.cfg.Validate()
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: expected error, got nil", tc.name)
		}
	}
}

func TestActive(t *testing.T) {
	var nilCfg *Config
	if nilCfg.Active() {
		t.Error("nil config reported active")
	}
	if (&Config{}).Active() {
		t.Error("zero config reported active")
	}
	active := []*Config{
		{SilentFraction: 0.1},
		{Builder: BuilderAttack{Withholding: WithholdMaximal}},
		{Builder: BuilderAttack{SeedDelay: time.Second}},
		{Builder: BuilderAttack{SeedFraction: 0.5}},
		{Builder: BuilderAttack{CrashAfterFraction: 0.5}},
		{Faults: []Fault{{Kind: FaultPartition, Duration: time.Second, Fraction: 0.3}}},
	}
	for i, c := range active {
		if !c.Active() {
			t.Errorf("case %d: config not reported active", i)
		}
	}
}

func TestSortitionDeterministic(t *testing.T) {
	cfg := &Config{SilentFraction: 0.2, LaggardFraction: 0.1, GarbageFraction: 0.1, PoisonFraction: 0.05}
	a := cfg.Sortition(42, 200)
	b := cfg.Sortition(42, 200)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("sortition is not deterministic for a fixed seed")
	}
	c := cfg.Sortition(43, 200)
	if reflect.DeepEqual(a, c) {
		t.Fatal("sortition ignored the seed")
	}
}

func TestSortitionCounts(t *testing.T) {
	cfg := &Config{SilentFraction: 0.2, LaggardFraction: 0.1, GarbageFraction: 0.1, PoisonFraction: 0.05}
	n := 200
	got := map[Behavior]int{}
	for _, b := range cfg.Sortition(7, n) {
		got[b]++
	}
	want := map[Behavior]int{Silent: 40, Laggard: 20, Garbage: 20, Poisoner: 10, Honest: 110}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("sortition counts = %v, want %v", got, want)
	}
}

func TestSortitionNil(t *testing.T) {
	var cfg *Config
	for _, b := range cfg.Sortition(1, 50) {
		if b != Honest {
			t.Fatal("nil config sortitioned a non-honest node")
		}
	}
}

func TestWithholdMaximalMatchesBlob(t *testing.T) {
	n := 32
	pred := BuilderAttack{Withholding: WithholdMaximal}.WithholdPredicate(n, 1)
	available := blob.MaximalWithholding(n)
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			id := blob.CellID{Row: uint16(r), Col: uint16(c)}
			if pred(id) == available.Has(id) {
				t.Fatalf("cell %v: predicate and blob.MaximalWithholding disagree", id)
			}
		}
	}
	if got, want := WithheldCount(n, pred), blob.WithheldCells(n); got != want {
		t.Fatalf("withheld %d cells, want %d", got, want)
	}
}

func TestWithholdRandomFraction(t *testing.T) {
	n := 64
	f := 0.3
	pred := BuilderAttack{Withholding: WithholdRandom, WithholdFraction: f}.WithholdPredicate(n, 5)
	got := float64(WithheldCount(n, pred)) / float64(n*n)
	if got < f-0.05 || got > f+0.05 {
		t.Fatalf("random withholding hit rate %.3f, want ~%.2f", got, f)
	}
	// Deterministic per seed.
	pred2 := BuilderAttack{Withholding: WithholdRandom, WithholdFraction: f}.WithholdPredicate(n, 5)
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			id := blob.CellID{Row: uint16(r), Col: uint16(c)}
			if pred(id) != pred2(id) {
				t.Fatal("random predicate not deterministic per seed")
			}
		}
	}
}

func TestWithholdLines(t *testing.T) {
	n := 32
	for _, rows := range []bool{true, false} {
		pattern := WithholdCols
		if rows {
			pattern = WithholdRows
		}
		pred := BuilderAttack{Withholding: pattern, WithholdLines: 3}.WithholdPredicate(n, 9)
		if got, want := WithheldCount(n, pred), 3*n; got != want {
			t.Fatalf("rows=%v: withheld %d cells, want %d", rows, got, want)
		}
		// Whole lines: every withheld cell's line is fully withheld.
		for r := 0; r < n; r++ {
			line := 0
			for c := 0; c < n; c++ {
				id := blob.CellID{Row: uint16(r), Col: uint16(c)}
				if rows && pred(id) {
					line++
				}
				if !rows && pred(blob.CellID{Row: uint16(c), Col: uint16(r)}) {
					line++
				}
			}
			if line != 0 && line != n {
				t.Fatalf("rows=%v: line %d partially withheld (%d cells)", rows, r, line)
			}
		}
	}
}

func TestWithholdNone(t *testing.T) {
	if pred := (BuilderAttack{}).WithholdPredicate(32, 1); pred != nil {
		t.Fatal("WithholdNone should yield a nil predicate")
	}
	if WithheldCount(32, nil) != 0 {
		t.Fatal("nil predicate should count zero withheld cells")
	}
}

func TestSeedTargets(t *testing.T) {
	if SeedTargets(1, 100, 0) != nil || SeedTargets(1, 100, 1) != nil {
		t.Fatal("non-restricting fractions should return nil (everyone)")
	}
	tg := SeedTargets(1, 100, 0.4)
	if len(tg) != 40 {
		t.Fatalf("got %d targets, want 40", len(tg))
	}
	if !reflect.DeepEqual(tg, SeedTargets(1, 100, 0.4)) {
		t.Fatal("seed targets not deterministic")
	}
}

// fakeTransport records sends and timers for policy tests.
type fakeTransport struct {
	sent   []any
	sentTo []int
	timers []struct {
		d  time.Duration
		fn func()
	}
}

func (f *fakeTransport) Send(to int, size int, payload any) {
	f.sent = append(f.sent, payload)
	f.sentTo = append(f.sentTo, to)
}
func (f *fakeTransport) SendReliable(to int, size int, payload any) { f.Send(to, size, payload) }
func (f *fakeTransport) After(d time.Duration, fn func()) {
	f.timers = append(f.timers, struct {
		d  time.Duration
		fn func()
	}{d, fn})
}
func (f *fakeTransport) Now() time.Duration { return 0 }

func resp() *wire.Response {
	return &wire.Response{Slot: 1, Cells: []wire.Cell{
		{ID: blob.CellID{Row: 1, Col: 2}, Data: []byte{0xAA, 0xBB}},
		{ID: blob.CellID{Row: 3, Col: 4}},
	}}
}

func TestHonestWrapIsIdentity(t *testing.T) {
	tr := &fakeTransport{}
	cfg := &Config{}
	for _, b := range []Behavior{Honest, Poisoner} {
		a := NewAgent(0, b, 1, cfg)
		if a.WrapTransport(tr) != Transport(tr) {
			t.Fatalf("%v agent should not wrap the transport", b)
		}
	}
	var nilAgent *Agent
	if nilAgent.WrapTransport(tr) != Transport(tr) {
		t.Fatal("nil agent should not wrap the transport")
	}
}

func TestSilentDropsResponses(t *testing.T) {
	tr := &fakeTransport{}
	a := NewAgent(0, Silent, 1, &Config{})
	w := a.WrapTransport(tr)
	w.Send(5, 100, resp())
	if len(tr.sent) != 0 {
		t.Fatal("silent agent let a response through")
	}
	if a.DroppedResponses != 1 {
		t.Fatalf("DroppedResponses = %d, want 1", a.DroppedResponses)
	}
	// Queries still pass: silent nodes sample for themselves.
	w.Send(5, 40, &wire.Query{Slot: 1})
	if len(tr.sent) != 1 {
		t.Fatal("silent agent dropped a non-response message")
	}
}

func TestLaggardDelaysResponses(t *testing.T) {
	tr := &fakeTransport{}
	cfg := &Config{LagMin: 500 * time.Millisecond, LagMax: 2 * time.Second}
	a := NewAgent(0, Laggard, 1, cfg)
	w := a.WrapTransport(tr)
	w.Send(5, 100, resp())
	if len(tr.sent) != 0 {
		t.Fatal("laggard sent the response immediately")
	}
	if len(tr.timers) != 1 {
		t.Fatalf("laggard armed %d timers, want 1", len(tr.timers))
	}
	if d := tr.timers[0].d; d < cfg.LagMin || d >= cfg.LagMax {
		t.Fatalf("lag delay %v outside [%v, %v)", d, cfg.LagMin, cfg.LagMax)
	}
	tr.timers[0].fn()
	if len(tr.sent) != 1 || tr.sentTo[0] != 5 {
		t.Fatal("laggard did not deliver the response after the delay")
	}
	if a.DelayedResponses != 1 {
		t.Fatalf("DelayedResponses = %d, want 1", a.DelayedResponses)
	}
}

func TestGarbageCorruptsCopy(t *testing.T) {
	tr := &fakeTransport{}
	a := NewAgent(0, Garbage, 1, &Config{})
	w := a.WrapTransport(tr)
	orig := resp()
	w.Send(5, 100, orig)
	if len(tr.sent) != 1 {
		t.Fatal("garbage agent did not send")
	}
	got := tr.sent[0].(*wire.Response)
	if got == orig {
		t.Fatal("garbage agent mutated the shared message instead of copying")
	}
	for i, c := range got.Cells {
		if !c.Tainted {
			t.Fatalf("cell %d not marked tainted", i)
		}
		if c.ID != orig.Cells[i].ID {
			t.Fatalf("cell %d ID changed", i)
		}
	}
	// Real-payload cell: data flipped on the copy, original untouched.
	if got.Cells[0].Data[0] != 0xAA^0xFF {
		t.Fatal("real payload not corrupted")
	}
	if orig.Cells[0].Data[0] != 0xAA {
		t.Fatal("original payload was mutated")
	}
	if orig.Cells[0].Tainted || orig.Cells[1].Tainted {
		t.Fatal("original cells were marked tainted")
	}
	if a.CorruptedCells != 2 {
		t.Fatalf("CorruptedCells = %d, want 2", a.CorruptedCells)
	}
}

func TestPoisonPeriodDefault(t *testing.T) {
	var nilCfg *Config
	if nilCfg.PoisonPeriod() != DefaultPoisonInterval {
		t.Fatal("nil config should use the default poison interval")
	}
	if (&Config{PoisonInterval: 3 * time.Second}).PoisonPeriod() != 3*time.Second {
		t.Fatal("explicit poison interval ignored")
	}
}

func TestBehaviorStrings(t *testing.T) {
	for b, want := range map[Behavior]string{
		Honest: "honest", Silent: "silent", Laggard: "laggard",
		Garbage: "garbage", Poisoner: "poisoner",
	} {
		if b.String() != want {
			t.Errorf("Behavior %d: got %q want %q", b, b.String(), want)
		}
	}
	for p, want := range map[Pattern]string{
		WithholdNone: "none", WithholdRandom: "random", WithholdRows: "rows",
		WithholdCols: "cols", WithholdMaximal: "maximal",
	} {
		if p.String() != want {
			t.Errorf("Pattern %d: got %q want %q", p, p.String(), want)
		}
	}
	for k, want := range map[FaultKind]string{
		FaultPartition: "partition", FaultLossBurst: "loss-burst",
	} {
		if k.String() != want {
			t.Errorf("FaultKind %d: got %q want %q", k, k.String(), want)
		}
	}
}

// Package adversary implements composable byzantine-behavior and
// fault-injection policies for PANDAS deployments.
//
// PANDAS exists to detect data withholding (Section 3 of the paper), yet
// an honest-only deployment never exercises that machinery. This package
// supplies the attackers: builder-side withholding patterns and degraded
// seeding (late, partial, crash mid-transmission), per-node byzantine
// behaviors applied at the protocol message boundary (silent, laggard,
// garbage, view-poisoner), and scheduled network faults (partitions and
// loss bursts) on the simulation clock. Everything is driven by
// deterministic sortition from the run seed, so adversarial runs are as
// reproducible as honest ones.
//
// The package deliberately wraps existing components instead of forking
// them: builder attacks install through Builder.SetWithholding and the
// seeding schedule, node behaviors wrap the node's Transport, and network
// faults use the simulator's loss-rate and link-filter hooks. core wires
// it all up from ClusterConfig.Adversary; nothing here imports core.
package adversary

import (
	"errors"
	"fmt"
	"math/rand"
	"time"
)

// Behavior is the policy a node follows. The zero value is honest.
type Behavior uint8

// Node behaviors.
const (
	// Honest nodes follow the protocol.
	Honest Behavior = iota
	// Silent nodes receive queries but never respond (free-riders /
	// query-dropping byzantines). They still fetch and sample for
	// themselves.
	Silent
	// Laggard nodes respond, but only after an adversarial delay drawn
	// from [LagMin, LagMax) — enough to push honest fetchers past their
	// round timeouts.
	Laggard
	// Garbage nodes respond promptly with corrupted cells whose proofs
	// fail verification; honest fetchers must reject and re-request.
	Garbage
	// Poisoner nodes advertise departed peers as live through the
	// membership gossip mesh, keeping dead entries in honest views.
	Poisoner
)

// String implements fmt.Stringer.
func (b Behavior) String() string {
	switch b {
	case Honest:
		return "honest"
	case Silent:
		return "silent"
	case Laggard:
		return "laggard"
	case Garbage:
		return "garbage"
	case Poisoner:
		return "poisoner"
	default:
		return fmt.Sprintf("Behavior(%d)", uint8(b))
	}
}

// Pattern selects a builder withholding pattern generator.
type Pattern uint8

// Withholding patterns.
const (
	// WithholdNone seeds honestly.
	WithholdNone Pattern = iota
	// WithholdRandom withholds each cell independently with probability
	// WithholdFraction. Below ~1/2 the erasure code heals the gaps; the
	// attack wastes fetch traffic without breaking availability.
	WithholdRandom
	// WithholdRows withholds WithholdLines entire rows. Up to K rows the
	// columns reconstruct them; beyond K the data is unrecoverable.
	WithholdRows
	// WithholdCols withholds WithholdLines entire columns, symmetrically.
	WithholdCols
	// WithholdMaximal withholds the (n/2+1) x (n/2+1) square anchored at
	// (0,0): the largest region that defeats reconstruction while
	// releasing everything else (Fig. 3-right, blob.MaximalWithholding).
	WithholdMaximal
)

// String implements fmt.Stringer.
func (p Pattern) String() string {
	switch p {
	case WithholdNone:
		return "none"
	case WithholdRandom:
		return "random"
	case WithholdRows:
		return "rows"
	case WithholdCols:
		return "cols"
	case WithholdMaximal:
		return "maximal"
	default:
		return fmt.Sprintf("Pattern(%d)", uint8(p))
	}
}

// BuilderAttack describes adversarial builder behavior for a run.
type BuilderAttack struct {
	// Withholding selects the pattern of cells the builder refuses to
	// release.
	Withholding Pattern
	// WithholdFraction is the per-cell probability for WithholdRandom.
	WithholdFraction float64
	// WithholdLines is the number of full lines for WithholdRows/Cols.
	WithholdLines int
	// SeedDelay postpones the start of seeding past the slot start (late
	// seeding): the whole 4 s sampling budget shrinks by this much.
	SeedDelay time.Duration
	// SeedFraction, when in (0, 1), restricts seeding to that share of
	// the nodes (partial seeding); the rest must fetch everything from
	// peers. Zero or one means everyone is seeded.
	SeedFraction float64
	// CrashAfterFraction, when in (0, 1), makes the builder go silent
	// after transmitting that share of its seed datagrams — a crash in
	// the middle of its ~1 s transmission schedule. Because datagrams are
	// sent round-robin across nodes, every node ends up with a truncated
	// batch rather than a few nodes with none.
	CrashAfterFraction float64
}

// active reports whether any builder attack is configured.
func (a BuilderAttack) active() bool {
	return a.Withholding != WithholdNone || a.SeedDelay > 0 ||
		(a.SeedFraction > 0 && a.SeedFraction < 1) ||
		(a.CrashAfterFraction > 0 && a.CrashAfterFraction < 1)
}

// FaultKind selects a scheduled network fault.
type FaultKind uint8

// Network fault kinds.
const (
	// FaultPartition isolates a random Fraction of the nodes from the
	// rest for the window: messages crossing the cut are dropped.
	FaultPartition FaultKind = iota + 1
	// FaultLossBurst raises the network loss rate to LossRate for the
	// window, then restores the baseline.
	FaultLossBurst
)

// String implements fmt.Stringer.
func (k FaultKind) String() string {
	switch k {
	case FaultPartition:
		return "partition"
	case FaultLossBurst:
		return "loss-burst"
	default:
		return fmt.Sprintf("FaultKind(%d)", uint8(k))
	}
}

// Fault is one scheduled network fault, re-armed every slot at the given
// offset from the slot start.
type Fault struct {
	Kind FaultKind
	// At is the fault's start offset from each slot start.
	At time.Duration
	// Duration is how long the fault lasts.
	Duration time.Duration
	// Fraction is the isolated node share for FaultPartition.
	Fraction float64
	// LossRate is the drop probability during a FaultLossBurst.
	LossRate float64
}

// Defaults for unset knobs.
const (
	// DefaultLagMin / DefaultLagMax bound the laggard response delay:
	// past every adaptive round timeout, short of the inflight TTL, so a
	// laggard's replies arrive just late enough to be useless for the
	// round that asked.
	DefaultLagMin = 500 * time.Millisecond
	DefaultLagMax = 2 * time.Second
	// DefaultPoisonInterval is how often a poisoner re-advertises a
	// departed peer.
	DefaultPoisonInterval = time.Second
)

// Config collects every adversary knob for a deployment. A nil or
// zero-valued config is inert: the deployment behaves exactly as without
// the subsystem.
type Config struct {
	// SilentFraction..PoisonFraction select the share of nodes assigned
	// each byzantine behavior by sortition. The fractions must sum to at
	// most 1; the remainder stays honest.
	SilentFraction  float64
	LaggardFraction float64
	GarbageFraction float64
	PoisonFraction  float64

	// LagMin/LagMax bound the laggard delay distribution (uniform).
	// Zero values select the defaults.
	LagMin time.Duration
	LagMax time.Duration

	// PoisonInterval is the poisoner's re-advertisement period. Zero
	// selects the default.
	PoisonInterval time.Duration

	// Builder describes the builder-side attack.
	Builder BuilderAttack

	// Faults are scheduled network faults, re-armed each slot.
	Faults []Fault
}

// Validation errors.
var ErrBadAdversary = errors.New("adversary: invalid configuration")

// Active reports whether the config enables any adversarial behavior.
// Nil-safe.
func (c *Config) Active() bool {
	if c == nil {
		return false
	}
	return c.SilentFraction > 0 || c.LaggardFraction > 0 ||
		c.GarbageFraction > 0 || c.PoisonFraction > 0 ||
		c.Builder.active() || len(c.Faults) > 0
}

// Validate checks parameter consistency. Nil-safe (nil is valid: inert).
func (c *Config) Validate() error {
	if c == nil {
		return nil
	}
	fracs := []struct {
		name string
		v    float64
	}{
		{"silent", c.SilentFraction}, {"laggard", c.LaggardFraction},
		{"garbage", c.GarbageFraction}, {"poison", c.PoisonFraction},
	}
	sum := 0.0
	for _, f := range fracs {
		if f.v < 0 || f.v > 1 {
			return fmt.Errorf("%w: %s fraction %v out of [0,1]", ErrBadAdversary, f.name, f.v)
		}
		sum += f.v
	}
	if sum > 1 {
		return fmt.Errorf("%w: behavior fractions sum to %v > 1", ErrBadAdversary, sum)
	}
	if c.LagMin < 0 || c.LagMax < 0 {
		return fmt.Errorf("%w: negative lag bound", ErrBadAdversary)
	}
	if c.LagMin > 0 && c.LagMax > 0 && c.LagMax < c.LagMin {
		return fmt.Errorf("%w: LagMax %v < LagMin %v", ErrBadAdversary, c.LagMax, c.LagMin)
	}
	if c.PoisonInterval < 0 {
		return fmt.Errorf("%w: negative poison interval", ErrBadAdversary)
	}
	b := c.Builder
	switch b.Withholding {
	case WithholdNone, WithholdRandom, WithholdRows, WithholdCols, WithholdMaximal:
	default:
		return fmt.Errorf("%w: unknown withholding pattern %d", ErrBadAdversary, b.Withholding)
	}
	if b.Withholding == WithholdRandom && (b.WithholdFraction <= 0 || b.WithholdFraction > 1) {
		return fmt.Errorf("%w: random withholding fraction %v out of (0,1]", ErrBadAdversary, b.WithholdFraction)
	}
	if (b.Withholding == WithholdRows || b.Withholding == WithholdCols) && b.WithholdLines < 1 {
		return fmt.Errorf("%w: line withholding needs WithholdLines >= 1", ErrBadAdversary)
	}
	if b.SeedDelay < 0 {
		return fmt.Errorf("%w: negative seed delay", ErrBadAdversary)
	}
	if b.SeedFraction < 0 || b.SeedFraction > 1 {
		return fmt.Errorf("%w: seed fraction %v out of [0,1]", ErrBadAdversary, b.SeedFraction)
	}
	if b.CrashAfterFraction < 0 || b.CrashAfterFraction > 1 {
		return fmt.Errorf("%w: crash fraction %v out of [0,1]", ErrBadAdversary, b.CrashAfterFraction)
	}
	for i, f := range c.Faults {
		switch f.Kind {
		case FaultPartition:
			if f.Fraction <= 0 || f.Fraction >= 1 {
				return fmt.Errorf("%w: fault %d partition fraction %v out of (0,1)", ErrBadAdversary, i, f.Fraction)
			}
		case FaultLossBurst:
			if f.LossRate <= 0 || f.LossRate >= 1 {
				return fmt.Errorf("%w: fault %d loss rate %v out of (0,1)", ErrBadAdversary, i, f.LossRate)
			}
		default:
			return fmt.Errorf("%w: fault %d has unknown kind %d", ErrBadAdversary, i, f.Kind)
		}
		if f.At < 0 || f.Duration <= 0 {
			return fmt.Errorf("%w: fault %d window [%v,+%v) invalid", ErrBadAdversary, i, f.At, f.Duration)
		}
	}
	return nil
}

// lagBounds resolves the laggard delay bounds with defaults applied.
// Nil-safe.
func (c *Config) lagBounds() (lo, hi time.Duration) {
	if c != nil {
		lo, hi = c.LagMin, c.LagMax
	}
	if lo == 0 {
		lo = DefaultLagMin
	}
	if hi == 0 {
		hi = DefaultLagMax
	}
	if hi < lo {
		hi = lo
	}
	return lo, hi
}

// PoisonPeriod resolves the poisoner re-advertisement interval.
func (c *Config) PoisonPeriod() time.Duration {
	if c == nil || c.PoisonInterval == 0 {
		return DefaultPoisonInterval
	}
	return c.PoisonInterval
}

// sortitionSalt decorrelates adversary sortition from every other
// consumer of the run seed, so enabling adversaries never perturbs
// honest-path randomness.
const sortitionSalt = 0x41445653 // "ADVS"

// Sortition deterministically assigns a behavior to each of n nodes from
// the run seed: a seeded permutation is cut into contiguous spans sized
// by the configured fractions (floor semantics, matching DeadFraction).
// The same (seed, n, config) always yields the same assignment — the
// property the determinism tests pin down. Nil-safe: a nil config
// returns all-honest.
func (c *Config) Sortition(seed int64, n int) []Behavior {
	out := make([]Behavior, n)
	if c == nil || n == 0 {
		return out
	}
	rng := rand.New(rand.NewSource(seed ^ sortitionSalt))
	perm := rng.Perm(n)
	next := 0
	for _, span := range []struct {
		b Behavior
		f float64
	}{
		{Silent, c.SilentFraction},
		{Laggard, c.LaggardFraction},
		{Garbage, c.GarbageFraction},
		{Poisoner, c.PoisonFraction},
	} {
		k := int(float64(n) * span.f)
		for i := 0; i < k && next < n; i++ {
			out[perm[next]] = span.b
			next++
		}
	}
	return out
}

// SeedTargets returns the deterministic set of nodes a partial-seeding
// builder serves: a seeded random subset of size fraction*n. Returns nil
// (meaning "everyone") when the fraction does not restrict.
func SeedTargets(seed int64, n int, fraction float64) map[int]bool {
	if fraction <= 0 || fraction >= 1 {
		return nil
	}
	rng := rand.New(rand.NewSource(seed ^ 0x53454544)) // "SEED"
	keep := int(float64(n) * fraction)
	targets := make(map[int]bool, keep)
	for _, i := range rng.Perm(n)[:keep] {
		targets[i] = true
	}
	return targets
}

package adversary

import (
	"math/rand"

	"pandas/internal/blob"
)

// WithholdPredicate builds the cell predicate a builder attack installs
// via Builder.SetWithholding: it returns true for cells the builder
// refuses to seed. n is the extended matrix width; the seed makes the
// randomized patterns deterministic per run. Returns nil for
// WithholdNone, which SetWithholding treats as "seed honestly".
func (a BuilderAttack) WithholdPredicate(n int, seed int64) func(blob.CellID) bool {
	switch a.Withholding {
	case WithholdNone:
		return nil
	case WithholdMaximal:
		// The strongest attack (Fig. 3-right): withhold the
		// (n/2+1) x (n/2+1) square anchored at (0,0); everything outside
		// it is released, yet no line can reach the n/2 cells erasure
		// decoding needs. Complement of blob.MaximalWithholding.
		h := n/2 + 1
		return func(id blob.CellID) bool {
			return int(id.Row) < h && int(id.Col) < h
		}
	case WithholdRandom:
		// Independent per-cell withholding with probability f. Decisions
		// are precomputed into a bitmap so the predicate is pure and every
		// cell's fate is fixed once per run (a cell seeded to one node is
		// never withheld from another).
		return randomPredicate(n, seed, a.WithholdFraction)
	case WithholdRows:
		return linePredicate(n, seed, a.WithholdLines, true)
	case WithholdCols:
		return linePredicate(n, seed, a.WithholdLines, false)
	default:
		return nil
	}
}

// withholdSalt decorrelates withholding draws from sortition and seeding.
const withholdSalt = 0x57495448 // "WITH"

// randomPredicate withholds each cell independently with probability f.
func randomPredicate(n int, seed int64, f float64) func(blob.CellID) bool {
	rng := rand.New(rand.NewSource(seed ^ withholdSalt))
	withheld := make([]bool, n*n)
	for i := range withheld {
		withheld[i] = rng.Float64() < f
	}
	return func(id blob.CellID) bool {
		return withheld[int(id.Row)*n+int(id.Col)]
	}
}

// linePredicate withholds `lines` whole rows (or columns), chosen
// uniformly without replacement. Withholding up to K = n/2 rows is healed
// by column decoding; beyond that the matrix is unrecoverable.
func linePredicate(n int, seed int64, lines int, rows bool) func(blob.CellID) bool {
	if lines > n {
		lines = n
	}
	rng := rand.New(rand.NewSource(seed ^ withholdSalt))
	chosen := make([]bool, n)
	for _, i := range rng.Perm(n)[:lines] {
		chosen[i] = true
	}
	return func(id blob.CellID) bool {
		if rows {
			return chosen[id.Row]
		}
		return chosen[id.Col]
	}
}

// WithheldCount returns how many of the n x n cells a predicate
// withholds; nil counts as zero. Used by tests and for reporting.
func WithheldCount(n int, pred func(blob.CellID) bool) int {
	if pred == nil {
		return 0
	}
	count := 0
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			if pred(blob.CellID{Row: uint16(r), Col: uint16(c)}) {
				count++
			}
		}
	}
	return count
}

package adversary

import (
	"math/rand"
	"time"

	"pandas/internal/wire"
)

// Transport is the substrate interface byzantine policies interpose on.
// It is structurally identical to core.Transport, so any core transport
// satisfies it without this package importing core (which imports us).
type Transport interface {
	Send(to int, size int, payload any)
	SendReliable(to int, size int, payload any)
	After(d time.Duration, fn func())
	Now() time.Duration
}

// Agent is one node's adversarial identity: its sortitioned behavior plus
// the node-local randomness and counters the behavior needs. Agents for
// honest nodes exist too (WrapTransport is then the identity), so a
// cluster can index agents by node uniformly.
type Agent struct {
	node     int
	behavior Behavior
	rng      *rand.Rand
	lagMin   time.Duration
	lagMax   time.Duration

	// Counters (single-threaded simulator; no atomics needed).

	// DroppedResponses counts responses a Silent agent swallowed.
	DroppedResponses int
	// DelayedResponses counts responses a Laggard agent deferred.
	DelayedResponses int
	// CorruptedCells counts cells a Garbage agent tampered with.
	CorruptedCells int
	// ForgedAnnouncements counts departed-peer re-advertisements a
	// Poisoner agent published (incremented by the cluster's gossip
	// wiring, which owns the announcement mesh).
	ForgedAnnouncements int
}

// NewAgent builds the agent for one node. The rng is seeded from the run
// seed, the node index, and a package salt, so each agent's draws are
// deterministic and independent of every honest randomness stream.
func NewAgent(node int, b Behavior, seed int64, cfg *Config) *Agent {
	a := &Agent{
		node:     node,
		behavior: b,
		rng:      rand.New(rand.NewSource(seed ^ int64(node)*0x9e3779b9 ^ 0x42595a41)), // "BYZA"
	}
	a.lagMin, a.lagMax = cfg.lagBounds()
	return a
}

// Node returns the node index this agent is bound to.
func (a *Agent) Node() int { return a.node }

// Pick draws a uniform index in [0, n) from the agent's deterministic
// randomness (poisoners use it to choose which departed peer to forge).
func (a *Agent) Pick(n int) int { return a.rng.Intn(n) }

// Behavior returns the agent's sortitioned behavior.
func (a *Agent) Behavior() Behavior { return a.behavior }

// WrapTransport applies the agent's policy to the node's outbound
// traffic. Honest and Poisoner agents return tr unchanged (poisoning
// happens in the membership gossip layer, not the PANDAS data path);
// Silent, Laggard, and Garbage agents intercept outgoing protocol
// responses. Only responses are touched: byzantine nodes still query and
// sample for themselves — they are free-riders, not absentees — which is
// the harder case for honest fetchers because the peers look alive.
func (a *Agent) WrapTransport(tr Transport) Transport {
	if a == nil {
		return tr
	}
	switch a.behavior {
	case Silent, Laggard, Garbage:
		return &byzTransport{inner: tr, agent: a}
	default:
		return tr
	}
}

// byzTransport applies a response-boundary policy to one node's sends.
type byzTransport struct {
	inner Transport
	agent *Agent
}

// Send implements Transport. Non-response traffic (queries, gossip,
// membership) passes through untouched.
func (t *byzTransport) Send(to int, size int, payload any) {
	resp, ok := payload.(*wire.Response)
	if !ok {
		t.inner.Send(to, size, payload)
		return
	}
	switch t.agent.behavior {
	case Silent:
		t.agent.DroppedResponses++
	case Laggard:
		t.agent.DelayedResponses++
		d := t.agent.lagDelay()
		t.inner.After(d, func() { t.inner.Send(to, size, resp) })
	case Garbage:
		t.inner.Send(to, size, t.agent.corrupt(resp))
	default:
		t.inner.Send(to, size, payload)
	}
}

// SendReliable implements Transport. Nodes only send responses via Send;
// the reliable path (builder seeding) passes through.
func (t *byzTransport) SendReliable(to int, size int, payload any) {
	t.inner.SendReliable(to, size, payload)
}

// After implements Transport.
func (t *byzTransport) After(d time.Duration, fn func()) { t.inner.After(d, fn) }

// Now implements Transport.
func (t *byzTransport) Now() time.Duration { return t.inner.Now() }

// lagDelay draws the laggard's uniform response delay.
func (a *Agent) lagDelay() time.Duration {
	if a.lagMax <= a.lagMin {
		return a.lagMin
	}
	return a.lagMin + time.Duration(a.rng.Int63n(int64(a.lagMax-a.lagMin)))
}

// corrupt returns a tampered copy of a response. The original message and
// its cell payloads are never mutated: the simulator passes messages by
// reference, so in-place corruption would poison the sender's own store
// and any shared references. Cells with real payloads get their first
// byte flipped — the KZG proof then fails verification at the receiver.
// Metadata-mode cells (nil Data) carry no bytes to flip, so the corruption
// is modeled by the Tainted marker, which the store treats exactly as a
// failed proof check would be in a real deployment.
func (a *Agent) corrupt(resp *wire.Response) *wire.Response {
	out := &wire.Response{Slot: resp.Slot, Cells: make([]wire.Cell, len(resp.Cells))}
	for i, c := range resp.Cells {
		cc := c
		if c.Data != nil {
			cc.Data = append([]byte(nil), c.Data...)
			cc.Data[0] ^= 0xFF
		}
		cc.Tainted = true
		out.Cells[i] = cc
		a.CorruptedCells++
	}
	return out
}

// Package metrics provides the summary statistics the paper's evaluation
// reports: distributions of completion times with percentiles, CDF
// series for figures, and mean/stddev aggregates for Table 1.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"time"
)

// Distribution summarizes a sample of durations. Negative inputs mean
// "never completed" and are tracked separately as failures.
type Distribution struct {
	sorted   []time.Duration
	failures int
}

// NewDistribution builds a distribution from raw samples; values < 0
// count as failures (e.g. nodes that missed the phase entirely).
func NewDistribution(samples []time.Duration) *Distribution {
	d := &Distribution{}
	for _, s := range samples {
		if s < 0 {
			d.failures++
			continue
		}
		d.sorted = append(d.sorted, s)
	}
	sort.Slice(d.sorted, func(i, j int) bool { return d.sorted[i] < d.sorted[j] })
	return d
}

// Count returns the number of successful samples.
func (d *Distribution) Count() int { return len(d.sorted) }

// Failures returns the number of never-completed samples.
func (d *Distribution) Failures() int { return d.failures }

// Total returns successes plus failures.
func (d *Distribution) Total() int { return len(d.sorted) + d.failures }

// Min returns the smallest sample (0 if empty).
func (d *Distribution) Min() time.Duration {
	if len(d.sorted) == 0 {
		return 0
	}
	return d.sorted[0]
}

// Max returns the largest sample (0 if empty).
func (d *Distribution) Max() time.Duration {
	if len(d.sorted) == 0 {
		return 0
	}
	return d.sorted[len(d.sorted)-1]
}

// Mean returns the arithmetic mean of successful samples.
func (d *Distribution) Mean() time.Duration {
	if len(d.sorted) == 0 {
		return 0
	}
	var sum time.Duration
	for _, s := range d.sorted {
		sum += s
	}
	return sum / time.Duration(len(d.sorted))
}

// Median returns the 50th percentile.
func (d *Distribution) Median() time.Duration { return d.Percentile(50) }

// Percentile returns the p-th percentile (0 < p <= 100) of successful
// samples, failures excluded. Uses the nearest-rank method.
func (d *Distribution) Percentile(p float64) time.Duration {
	if len(d.sorted) == 0 {
		return 0
	}
	if p <= 0 {
		return d.sorted[0]
	}
	if p >= 100 {
		return d.sorted[len(d.sorted)-1]
	}
	rank := int(math.Ceil(p / 100 * float64(len(d.sorted))))
	if rank < 1 {
		rank = 1
	}
	return d.sorted[rank-1]
}

// FractionWithin returns the fraction of ALL samples (failures included in
// the denominator) that completed within the deadline — the paper's
// "met the 4 s deadline" metric.
func (d *Distribution) FractionWithin(deadline time.Duration) float64 {
	if d.Total() == 0 {
		return 0
	}
	n := sort.Search(len(d.sorted), func(i int) bool { return d.sorted[i] > deadline })
	return float64(n) / float64(d.Total())
}

// CDFPoint is one point of a cumulative distribution series.
type CDFPoint struct {
	Value    time.Duration
	Fraction float64 // cumulative fraction of ALL samples
}

// CDF returns an evenly subsampled CDF with at most points entries,
// suitable for plotting the paper's figures.
func (d *Distribution) CDF(points int) []CDFPoint {
	n := len(d.sorted)
	if n == 0 || points < 1 {
		return nil
	}
	if points > n {
		points = n
	}
	out := make([]CDFPoint, 0, points)
	total := float64(d.Total())
	for i := 0; i < points; i++ {
		idx := (i + 1) * n / points
		if idx < 1 {
			idx = 1
		}
		out = append(out, CDFPoint{
			Value:    d.sorted[idx-1],
			Fraction: float64(idx) / total,
		})
	}
	return out
}

// Summary formats the distribution like the paper's prose:
// "median=..., P99=..., max=..., on-time=...%".
func (d *Distribution) Summary(deadline time.Duration) string {
	return fmt.Sprintf("n=%d median=%s P99=%s max=%s on-time=%.1f%%",
		d.Total(),
		formatMs(d.Median()), formatMs(d.Percentile(99)), formatMs(d.Max()),
		100*d.FractionWithin(deadline))
}

func formatMs(d time.Duration) string {
	return fmt.Sprintf("%dms", d.Milliseconds())
}

// Scalar summarizes a sample of float64 values (message counts, byte
// volumes) with mean and standard deviation, as in Table 1.
type Scalar struct {
	values []float64
}

// NewScalar builds a scalar aggregate.
func NewScalar(values []float64) *Scalar {
	return &Scalar{values: append([]float64(nil), values...)}
}

// Add appends a value.
func (s *Scalar) Add(v float64) { s.values = append(s.values, v) }

// Count returns the sample size.
func (s *Scalar) Count() int { return len(s.values) }

// Mean returns the arithmetic mean.
func (s *Scalar) Mean() float64 {
	if len(s.values) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s.values {
		sum += v
	}
	return sum / float64(len(s.values))
}

// StdDev returns the population standard deviation.
func (s *Scalar) StdDev() float64 {
	n := len(s.values)
	if n < 2 {
		return 0
	}
	mean := s.Mean()
	acc := 0.0
	for _, v := range s.values {
		d := v - mean
		acc += d * d
	}
	return math.Sqrt(acc / float64(n))
}

// Max returns the largest value.
func (s *Scalar) Max() float64 {
	m := math.Inf(-1)
	for _, v := range s.values {
		if v > m {
			m = v
		}
	}
	if math.IsInf(m, -1) {
		return 0
	}
	return m
}

// MeanStd formats "mean ± std" with the given precision, Table 1 style.
func (s *Scalar) MeanStd() string {
	return fmt.Sprintf("%.0f ± %.0f", s.Mean(), s.StdDev())
}

// Table renders rows of labeled columns as an aligned text table, the
// output format of the experiment binaries.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{header: header} }

// AddRow appends a row; short rows are padded.
func (t *Table) AddRow(cells ...string) {
	for len(cells) < len(t.header) {
		cells = append(cells, "")
	}
	t.rows = append(t.rows, cells)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// WriteCDFCSV writes a CDF as "ms,fraction" rows, ready for gnuplot or
// matplotlib — the format used to regenerate the paper's figures as
// plots rather than tables.
func (d *Distribution) WriteCDFCSV(w io.Writer, points int) error {
	if _, err := fmt.Fprintln(w, "ms,fraction"); err != nil {
		return err
	}
	for _, pt := range d.CDF(points) {
		if _, err := fmt.Fprintf(w, "%d,%.6f\n", pt.Value.Milliseconds(), pt.Fraction); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV renders the table as CSV.
func (t *Table) WriteCSV(w io.Writer) error {
	writeRow := func(cells []string) error {
		for i, c := range cells {
			if i > 0 {
				if _, err := io.WriteString(w, ","); err != nil {
					return err
				}
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			if _, err := io.WriteString(w, c); err != nil {
				return err
			}
		}
		_, err := io.WriteString(w, "\n")
		return err
	}
	if err := writeRow(t.header); err != nil {
		return err
	}
	for _, row := range t.rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	return nil
}

package metrics

import (
	"math"
	"strings"
	"testing"
	"time"
)

func ms(n int) time.Duration { return time.Duration(n) * time.Millisecond }

func TestDistributionBasics(t *testing.T) {
	d := NewDistribution([]time.Duration{ms(30), ms(10), ms(20), -1, ms(40)})
	if d.Count() != 4 || d.Failures() != 1 || d.Total() != 5 {
		t.Fatalf("counts wrong: %d %d %d", d.Count(), d.Failures(), d.Total())
	}
	if d.Min() != ms(10) || d.Max() != ms(40) {
		t.Fatal("min/max wrong")
	}
	if d.Mean() != ms(25) {
		t.Fatalf("mean = %v", d.Mean())
	}
}

func TestPercentiles(t *testing.T) {
	var samples []time.Duration
	for i := 1; i <= 100; i++ {
		samples = append(samples, ms(i))
	}
	d := NewDistribution(samples)
	cases := []struct {
		p    float64
		want time.Duration
	}{
		{50, ms(50)},
		{99, ms(99)},
		{100, ms(100)},
		{1, ms(1)},
		{0, ms(1)},
		{-5, ms(1)},
		{150, ms(100)},
	}
	for _, c := range cases {
		if got := d.Percentile(c.p); got != c.want {
			t.Errorf("P%.0f = %v, want %v", c.p, got, c.want)
		}
	}
	if d.Median() != ms(50) {
		t.Fatal("median wrong")
	}
}

func TestPercentileEmpty(t *testing.T) {
	d := NewDistribution(nil)
	if d.Percentile(50) != 0 || d.Mean() != 0 || d.Min() != 0 || d.Max() != 0 {
		t.Fatal("empty distribution should return zeros")
	}
}

func TestFractionWithin(t *testing.T) {
	d := NewDistribution([]time.Duration{ms(1), ms(2), ms(3), ms(10), -1})
	if got := d.FractionWithin(ms(3)); got != 3.0/5 {
		t.Fatalf("FractionWithin = %v", got)
	}
	if got := d.FractionWithin(ms(100)); got != 4.0/5 {
		t.Fatalf("failures must never count as within: %v", got)
	}
	if NewDistribution(nil).FractionWithin(ms(1)) != 0 {
		t.Fatal("empty should be 0")
	}
}

func TestCDF(t *testing.T) {
	var samples []time.Duration
	for i := 1; i <= 50; i++ {
		samples = append(samples, ms(i))
	}
	d := NewDistribution(samples)
	cdf := d.CDF(10)
	if len(cdf) != 10 {
		t.Fatalf("len = %d", len(cdf))
	}
	last := cdf[len(cdf)-1]
	if last.Value != ms(50) || last.Fraction != 1.0 {
		t.Fatalf("last point = %+v", last)
	}
	for i := 1; i < len(cdf); i++ {
		if cdf[i].Value < cdf[i-1].Value || cdf[i].Fraction < cdf[i-1].Fraction {
			t.Fatal("CDF not monotone")
		}
	}
	// With failures the CDF tops out below 1.
	d2 := NewDistribution([]time.Duration{ms(1), -1})
	cdf2 := d2.CDF(5)
	if cdf2[len(cdf2)-1].Fraction != 0.5 {
		t.Fatalf("failure-aware fraction = %v", cdf2[len(cdf2)-1].Fraction)
	}
	if d.CDF(0) != nil || NewDistribution(nil).CDF(5) != nil {
		t.Fatal("degenerate CDFs should be nil")
	}
}

func TestSummaryString(t *testing.T) {
	d := NewDistribution([]time.Duration{ms(100), ms(200)})
	s := d.Summary(ms(150))
	if !strings.Contains(s, "median=100ms") || !strings.Contains(s, "on-time=50.0%") {
		t.Fatalf("summary = %q", s)
	}
}

func TestScalar(t *testing.T) {
	s := NewScalar([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.Mean() != 5 {
		t.Fatalf("mean = %v", s.Mean())
	}
	if math.Abs(s.StdDev()-2) > 1e-9 {
		t.Fatalf("stddev = %v", s.StdDev())
	}
	if s.Max() != 9 {
		t.Fatalf("max = %v", s.Max())
	}
	if s.MeanStd() != "5 ± 2" {
		t.Fatalf("MeanStd = %q", s.MeanStd())
	}
	s.Add(100)
	if s.Count() != 9 {
		t.Fatal("Add did not extend")
	}
}

func TestScalarEdgeCases(t *testing.T) {
	empty := NewScalar(nil)
	if empty.Mean() != 0 || empty.StdDev() != 0 || empty.Max() != 0 {
		t.Fatal("empty scalar should be zeros")
	}
	one := NewScalar([]float64{7})
	if one.StdDev() != 0 {
		t.Fatal("single sample stddev should be 0")
	}
}

func TestTableRendering(t *testing.T) {
	tab := NewTable("name", "value")
	tab.AddRow("seeding", "700ms")
	tab.AddRow("x") // short row padded
	out := tab.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "name") || !strings.Contains(lines[0], "value") {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.Contains(lines[2], "seeding") || !strings.Contains(lines[2], "700ms") {
		t.Fatalf("row = %q", lines[2])
	}
}

func TestWriteCDFCSV(t *testing.T) {
	d := NewDistribution([]time.Duration{ms(10), ms(20), ms(30), ms(40)})
	var buf strings.Builder
	if err := d.WriteCDFCSV(&buf, 4); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "ms,fraction" || len(lines) != 5 {
		t.Fatalf("csv = %q", buf.String())
	}
	if lines[4] != "40,1.000000" {
		t.Fatalf("last line = %q", lines[4])
	}
}

func TestTableWriteCSV(t *testing.T) {
	tab := NewTable("a", "b")
	tab.AddRow("x,y", "plain")
	var buf strings.Builder
	if err := tab.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "a,b\n\"x,y\",plain\n"
	if buf.String() != want {
		t.Fatalf("csv = %q, want %q", buf.String(), want)
	}
}

package blob

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"pandas/internal/rs"
)

// Blob is the base K x K matrix of data cells assembled by a builder from
// layer-2 data before extension.
type Blob struct {
	params Params
	cells  [][]byte // K*K cells, row-major, each CellBytes long
}

// NewBlob packs data into a base blob, zero-padding the tail. Returns
// ErrDataTooLarge if data exceeds the blob capacity.
func NewBlob(p Params, data []byte) (*Blob, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if len(data) > p.BlobBytes() {
		return nil, fmt.Errorf("%w: %d > %d", ErrDataTooLarge, len(data), p.BlobBytes())
	}
	cells := make([][]byte, p.K*p.K)
	backing := make([]byte, p.BlobBytes())
	copy(backing, data)
	for i := range cells {
		cells[i] = backing[i*p.CellBytes : (i+1)*p.CellBytes]
	}
	return &Blob{params: p, cells: cells}, nil
}

// Params returns the blob geometry.
func (b *Blob) Params() Params { return b.params }

// Cell returns the payload of the data cell at (row, col) of the BASE
// matrix (both < K). The returned slice aliases internal storage.
func (b *Blob) Cell(row, col int) []byte {
	return b.cells[row*b.params.K+col]
}

// Data reassembles the packed data bytes (including padding).
func (b *Blob) Data() []byte {
	out := make([]byte, 0, b.params.BlobBytes())
	for _, c := range b.cells {
		out = append(out, c...)
	}
	return out
}

// Extended is the 2K x 2K erasure-extended matrix. Every row and every
// column is a rate-1/2 Reed-Solomon codeword: any K of its 2K cells
// suffice to reconstruct the rest.
//
// All n*n cells live in one contiguous row-major backing array — row r
// is the byte range [r*n*CellBytes, (r+1)*n*CellBytes) — so rows can be
// hashed and encoded as single contiguous spans and the whole matrix
// can be recycled across slots via ExtendOptions.Reuse.
type Extended struct {
	params  Params
	n       int
	backing []byte // n*n*CellBytes, row-major
	rowRS   *rs.Codec16
}

// ExtendOptions tunes the two-dimensional extension.
type ExtendOptions struct {
	// Workers bounds the codeword worker pool; 0 uses GOMAXPROCS.
	Workers int
	// Sequential pins all coding to the calling goroutine (one worker,
	// no goroutines spawned) for determinism tests and single-threaded
	// profiling. Parallel and sequential extension produce bit-identical
	// cells: codewords are independent and write disjoint cells.
	Sequential bool
	// Reuse recycles the backing arena of a previous extension with the
	// same geometry (the returned *Extended is then the same object,
	// fully overwritten). The caller must be done reading the previous
	// matrix. A nil or mismatched Reuse allocates fresh.
	Reuse *Extended
	// OnRowPhase, when non-nil, is invoked once on its own goroutine as
	// soon as the row phase completes: rows 0..K-1 (data and row parity)
	// are final and safe to read while the column phase is still
	// computing rows K..n-1, which lets callers overlap per-row work
	// (hashing, seeding) with the remaining encode. The hook is joined
	// before the extend call returns.
	OnRowPhase func(e *Extended)
}

// shardsPool recycles the per-worker [][]byte codeword headers so the
// steady-state extension performs zero per-cell allocations.
var shardsPool sync.Pool

func getShardHeaders(n int) [][]byte {
	sh, _ := shardsPool.Get().([][]byte)
	if cap(sh) < n {
		return make([][]byte, n)
	}
	return sh[:n]
}

// Extend erasure-codes the blob in two dimensions with the default
// options. Rows of the base blob are extended first (K -> 2K cells per
// row), then every column of the widened matrix is extended (K -> 2K
// cells per column). Because the code is linear, the "parity of parity"
// quadrant is consistent whichever dimension is coded first.
func Extend(b *Blob) (*Extended, error) {
	return ExtendWith(b, ExtendOptions{})
}

// ExtendWith is Extend with explicit options.
func ExtendWith(b *Blob, opt ExtendOptions) (*Extended, error) {
	p := b.params
	return extend(p, func(r int, dst []byte) {
		for c := 0; c < p.K; c++ {
			copy(dst[c*p.CellBytes:], b.Cell(r, c))
		}
	}, opt)
}

// ExtendData extends raw packed data directly (zero-padding the tail),
// skipping the intermediate Blob copy: the data quadrant is written
// straight into the extended matrix's backing as each row codeword is
// loaded. Returns ErrDataTooLarge if data exceeds the blob capacity.
func ExtendData(p Params, data []byte, opt ExtendOptions) (*Extended, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if len(data) > p.BlobBytes() {
		return nil, fmt.Errorf("%w: %d > %d", ErrDataTooLarge, len(data), p.BlobBytes())
	}
	rowBytes := p.K * p.CellBytes
	return extend(p, func(r int, dst []byte) {
		off := r * rowBytes
		nc := 0
		if off < len(data) {
			nc = copy(dst, data[off:])
		}
		clear(dst[nc:])
	}, opt)
}

// extend is the shared two-dimensional extension: loadRow fills the
// data-quadrant span of row r (K*CellBytes bytes) and is called from
// the row-phase workers.
func extend(p Params, loadRow func(r int, dst []byte), opt ExtendOptions) (*Extended, error) {
	n := p.N()
	codec, err := codecFor(p)
	if err != nil {
		return nil, fmt.Errorf("blob: create codec: %w", err)
	}
	size := n * n * p.CellBytes
	e := opt.Reuse
	if e == nil || e.params != p || cap(e.backing) < size {
		e = &Extended{params: p, n: n, backing: make([]byte, size)}
	}
	e.backing = e.backing[:size]
	e.rowRS = codec

	workers := opt.Workers
	if opt.Sequential {
		workers = 1
	} else if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	cb := p.CellBytes
	rowSpan := n * cb
	// Row phase: K row codewords, then a barrier (columns read the row
	// parity), then n column codewords. Every codeword encodes in place
	// over cell-sized windows of the contiguous backing.
	encodeRow := func(sh [][]byte, r int) error {
		row := e.backing[r*rowSpan : (r+1)*rowSpan]
		loadRow(r, row[:p.K*cb])
		for j := 0; j < n; j++ {
			sh[j] = row[j*cb : (j+1)*cb : (j+1)*cb]
		}
		if err := codec.Encode(sh); err != nil {
			return fmt.Errorf("blob: extend row %d: %w", r, err)
		}
		return nil
	}
	// Column phase: adjacent columns are independent codewords that share
	// one twiddle schedule, and every coding step (XOR, per-word multiply)
	// is elementwise — so a panel of adjacent columns encodes as ONE wide
	// codeword whose shard r is the contiguous panel span of row r. This
	// is bit-identical to per-column encoding but replaces cell-sized
	// strided copies and butterflies with streaming multi-KB ones.
	panelCols := 1
	if cb < 4096 {
		panelCols = 4096 / cb
	}
	panels := (n + panelCols - 1) / panelCols
	encodePanel := func(sh [][]byte, pi int) error {
		c0 := pi * panelCols
		pw := min(panelCols, n-c0) * cb
		for r := 0; r < n; r++ {
			off := r*rowSpan + c0*cb
			sh[r] = e.backing[off : off+pw : off+pw]
		}
		if err := codec.Encode(sh); err != nil {
			return fmt.Errorf("blob: extend column panel at %d: %w", c0, err)
		}
		return nil
	}
	if err := runCodewords(workers, n, p.K, encodeRow); err != nil {
		return nil, err
	}
	// The hook may read rows 0..K-1 concurrently with the column phase,
	// which only writes rows K..n-1. Join it before returning so the
	// caller regains exclusive ownership of the matrix.
	var hookWG sync.WaitGroup
	if opt.OnRowPhase != nil {
		hookWG.Add(1)
		go func(hook func(*Extended)) {
			defer hookWG.Done()
			hook(e)
		}(opt.OnRowPhase)
		defer hookWG.Wait()
	}
	if err := runCodewords(workers, n, panels, encodePanel); err != nil {
		return nil, err
	}
	return e, nil
}

// runCodewords runs fn(scratch, i) for i in [0, count) across a bounded
// worker pool. Each worker owns one pooled codeword-header scratch of
// length n. With one worker everything runs on the calling goroutine.
func runCodewords(workers, n, count int, fn func(sh [][]byte, i int) error) error {
	if workers > count {
		workers = count
	}
	if workers <= 1 {
		sh := getShardHeaders(n)
		defer shardsPool.Put(sh) //nolint:staticcheck // slice header boxing is fine
		for i := 0; i < count; i++ {
			if err := fn(sh, i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		wg      sync.WaitGroup
		next    atomic.Int64
		errOnce sync.Once
		firstEr error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sh := getShardHeaders(n)
			defer shardsPool.Put(sh) //nolint:staticcheck // slice header boxing is fine
			for {
				i := int(next.Add(1)) - 1
				if i >= count {
					return
				}
				if err := fn(sh, i); err != nil {
					errOnce.Do(func() { firstEr = err })
					return
				}
			}
		}()
	}
	wg.Wait()
	return firstEr
}

// Params returns the blob geometry.
func (e *Extended) Params() Params { return e.params }

// N returns the extended matrix width.
func (e *Extended) N() int { return e.n }

// Cell returns the payload of the extended cell. The returned slice
// aliases internal storage.
func (e *Extended) Cell(id CellID) []byte {
	cb := e.params.CellBytes
	off := id.Index(e.n) * cb
	return e.backing[off : off+cb : off+cb]
}

// RowBytes returns the contiguous byte span of row r (n cells of
// CellBytes each), aliasing internal storage. Row-wise consumers
// (hashing, seeding) should prefer this over n Cell calls.
func (e *Extended) RowBytes(r int) []byte {
	span := e.n * e.params.CellBytes
	return e.backing[r*span : (r+1)*span]
}

// Line returns the payloads of all cells along the given row or column.
func (e *Extended) Line(l Line) [][]byte {
	out := make([][]byte, e.n)
	for i, id := range l.Cells(e.n) {
		out[i] = e.Cell(id)
	}
	return out
}

// Codec returns the rate-1/2 codec shared by all rows and columns.
func (e *Extended) Codec() *rs.Codec16 { return e.rowRS }

// ReconstructLine recovers a complete row or column from a partial set of
// its cells. have maps position along the line (0..2K-1) to the cell
// payload; at least K positions must be present. The returned slice has
// 2K entries in line order. The input map is not modified.
func (e *Extended) ReconstructLine(l Line, have map[int][]byte) ([][]byte, error) {
	return ReconstructLine(e.params, have)
}

// ReconstructLine is the standalone form used by nodes that do not hold a
// full Extended matrix: given at least K of the 2K cells of a single row
// or column (keyed by position along the line), it returns all 2K cells.
func ReconstructLine(p Params, have map[int][]byte) ([][]byte, error) {
	n := p.N()
	if len(have) < p.K {
		return nil, fmt.Errorf("%w: have %d of %d needed", ErrNotEnough, len(have), p.K)
	}
	codec, err := codecFor(p)
	if err != nil {
		return nil, fmt.Errorf("blob: create codec: %w", err)
	}
	shards := make([][]byte, n)
	for pos, cell := range have {
		if pos < 0 || pos >= n {
			return nil, fmt.Errorf("%w: position %d", ErrBadCell, pos)
		}
		if len(cell) != p.CellBytes {
			return nil, fmt.Errorf("%w: cell at %d has %d bytes, want %d", ErrBadCell, pos, len(cell), p.CellBytes)
		}
		shards[pos] = cell
	}
	if err := codec.Reconstruct(shards); err != nil {
		return nil, fmt.Errorf("blob: reconstruct line: %w", err)
	}
	return shards, nil
}

package blob

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"pandas/internal/rs"
)

// Blob is the base K x K matrix of data cells assembled by a builder from
// layer-2 data before extension.
type Blob struct {
	params Params
	cells  [][]byte // K*K cells, row-major, each CellBytes long
}

// NewBlob packs data into a base blob, zero-padding the tail. Returns
// ErrDataTooLarge if data exceeds the blob capacity.
func NewBlob(p Params, data []byte) (*Blob, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if len(data) > p.BlobBytes() {
		return nil, fmt.Errorf("%w: %d > %d", ErrDataTooLarge, len(data), p.BlobBytes())
	}
	cells := make([][]byte, p.K*p.K)
	backing := make([]byte, p.BlobBytes())
	copy(backing, data)
	for i := range cells {
		cells[i] = backing[i*p.CellBytes : (i+1)*p.CellBytes]
	}
	return &Blob{params: p, cells: cells}, nil
}

// Params returns the blob geometry.
func (b *Blob) Params() Params { return b.params }

// Cell returns the payload of the data cell at (row, col) of the BASE
// matrix (both < K). The returned slice aliases internal storage.
func (b *Blob) Cell(row, col int) []byte {
	return b.cells[row*b.params.K+col]
}

// Data reassembles the packed data bytes (including padding).
func (b *Blob) Data() []byte {
	out := make([]byte, 0, b.params.BlobBytes())
	for _, c := range b.cells {
		out = append(out, c...)
	}
	return out
}

// Extended is the 2K x 2K erasure-extended matrix. Every row and every
// column is a rate-1/2 Reed-Solomon codeword: any K of its 2K cells
// suffice to reconstruct the rest.
type Extended struct {
	params Params
	n      int
	cells  [][]byte // n*n cells, row-major
	rowRS  *rs.Codec16
}

// ExtendOptions tunes the two-dimensional extension.
type ExtendOptions struct {
	// Workers bounds the codeword worker pool; 0 uses GOMAXPROCS.
	Workers int
	// Sequential pins all coding to the calling goroutine (one worker,
	// no goroutines spawned) for determinism tests and single-threaded
	// profiling. Parallel and sequential extension produce bit-identical
	// cells: codewords are independent and write disjoint cells.
	Sequential bool
}

// shardsPool recycles the per-worker [][]byte codeword headers so the
// steady-state extension performs zero per-cell allocations.
var shardsPool sync.Pool

func getShardHeaders(n int) [][]byte {
	sh, _ := shardsPool.Get().([][]byte)
	if cap(sh) < n {
		return make([][]byte, n)
	}
	return sh[:n]
}

// Extend erasure-codes the blob in two dimensions with the default
// options. Rows of the base blob are extended first (K -> 2K cells per
// row), then every column of the widened matrix is extended (K -> 2K
// cells per column). Because the code is linear, the "parity of parity"
// quadrant is consistent whichever dimension is coded first.
func Extend(b *Blob) (*Extended, error) {
	return ExtendWith(b, ExtendOptions{})
}

// ExtendWith is Extend with explicit options.
func ExtendWith(b *Blob, opt ExtendOptions) (*Extended, error) {
	p := b.params
	n := p.N()
	codec, err := codecFor(p)
	if err != nil {
		return nil, fmt.Errorf("blob: create codec: %w", err)
	}
	// All cells of the three parity quadrants come from one backing
	// allocation, pre-sliced to cell size so the codec reuses them in
	// place; the data quadrant aliases the base blob.
	cells := make([][]byte, n*n)
	for r := 0; r < p.K; r++ {
		for c := 0; c < p.K; c++ {
			cells[r*n+c] = b.Cell(r, c)
		}
	}
	backing := make([]byte, 3*p.K*p.K*p.CellBytes)
	next := 0
	alloc := func() []byte {
		s := backing[next : next+p.CellBytes : next+p.CellBytes]
		next += p.CellBytes
		return s
	}
	for r := 0; r < p.K; r++ {
		for c := p.K; c < n; c++ {
			cells[r*n+c] = alloc()
		}
	}
	for r := p.K; r < n; r++ {
		for c := 0; c < n; c++ {
			cells[r*n+c] = alloc()
		}
	}

	workers := opt.Workers
	if opt.Sequential {
		workers = 1
	} else if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	// Row phase: K row codewords, then a barrier (columns read the row
	// parity), then n column codewords.
	encodeRow := func(sh [][]byte, r int) error {
		copy(sh, cells[r*n:(r+1)*n])
		if err := codec.Encode(sh); err != nil {
			return fmt.Errorf("blob: extend row %d: %w", r, err)
		}
		return nil
	}
	encodeCol := func(sh [][]byte, c int) error {
		for r := 0; r < n; r++ {
			sh[r] = cells[r*n+c]
		}
		if err := codec.Encode(sh); err != nil {
			return fmt.Errorf("blob: extend column %d: %w", c, err)
		}
		return nil
	}
	if err := runCodewords(workers, n, p.K, encodeRow); err != nil {
		return nil, err
	}
	if err := runCodewords(workers, n, n, encodeCol); err != nil {
		return nil, err
	}
	return &Extended{params: p, n: n, cells: cells, rowRS: codec}, nil
}

// runCodewords runs fn(scratch, i) for i in [0, count) across a bounded
// worker pool. Each worker owns one pooled codeword-header scratch of
// length n. With one worker everything runs on the calling goroutine.
func runCodewords(workers, n, count int, fn func(sh [][]byte, i int) error) error {
	if workers > count {
		workers = count
	}
	if workers <= 1 {
		sh := getShardHeaders(n)
		defer shardsPool.Put(sh) //nolint:staticcheck // slice header boxing is fine
		for i := 0; i < count; i++ {
			if err := fn(sh, i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		wg      sync.WaitGroup
		next    atomic.Int64
		errOnce sync.Once
		firstEr error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sh := getShardHeaders(n)
			defer shardsPool.Put(sh) //nolint:staticcheck // slice header boxing is fine
			for {
				i := int(next.Add(1)) - 1
				if i >= count {
					return
				}
				if err := fn(sh, i); err != nil {
					errOnce.Do(func() { firstEr = err })
					return
				}
			}
		}()
	}
	wg.Wait()
	return firstEr
}

// Params returns the blob geometry.
func (e *Extended) Params() Params { return e.params }

// N returns the extended matrix width.
func (e *Extended) N() int { return e.n }

// Cell returns the payload of the extended cell. The returned slice
// aliases internal storage.
func (e *Extended) Cell(id CellID) []byte {
	return e.cells[id.Index(e.n)]
}

// Line returns the payloads of all cells along the given row or column.
func (e *Extended) Line(l Line) [][]byte {
	out := make([][]byte, e.n)
	for i, id := range l.Cells(e.n) {
		out[i] = e.cells[id.Index(e.n)]
	}
	return out
}

// Codec returns the rate-1/2 codec shared by all rows and columns.
func (e *Extended) Codec() *rs.Codec16 { return e.rowRS }

// ReconstructLine recovers a complete row or column from a partial set of
// its cells. have maps position along the line (0..2K-1) to the cell
// payload; at least K positions must be present. The returned slice has
// 2K entries in line order. The input map is not modified.
func (e *Extended) ReconstructLine(l Line, have map[int][]byte) ([][]byte, error) {
	return ReconstructLine(e.params, have)
}

// ReconstructLine is the standalone form used by nodes that do not hold a
// full Extended matrix: given at least K of the 2K cells of a single row
// or column (keyed by position along the line), it returns all 2K cells.
func ReconstructLine(p Params, have map[int][]byte) ([][]byte, error) {
	n := p.N()
	if len(have) < p.K {
		return nil, fmt.Errorf("%w: have %d of %d needed", ErrNotEnough, len(have), p.K)
	}
	codec, err := codecFor(p)
	if err != nil {
		return nil, fmt.Errorf("blob: create codec: %w", err)
	}
	shards := make([][]byte, n)
	for pos, cell := range have {
		if pos < 0 || pos >= n {
			return nil, fmt.Errorf("%w: position %d", ErrBadCell, pos)
		}
		if len(cell) != p.CellBytes {
			return nil, fmt.Errorf("%w: cell at %d has %d bytes, want %d", ErrBadCell, pos, len(cell), p.CellBytes)
		}
		shards[pos] = cell
	}
	if err := codec.Reconstruct(shards); err != nil {
		return nil, fmt.Errorf("blob: reconstruct line: %w", err)
	}
	return shards, nil
}

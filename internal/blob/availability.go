package blob

// Availability mathematics from Section 3 of the paper.
//
// The maximal amount of extended data an adversary can release while still
// preventing reconstruction is the full n x n matrix minus an
// (n/2+1) x (n/2+1) square: with n/2+1 rows and columns each missing
// n/2+1 cells, no line reaches the n/2 cells needed for erasure decoding.
// A sampling node that draws s random distinct cells misses that withheld
// square with probability at most prod_{i=0}^{s-1} (1 - w/(n^2 - i)) where
// w = (n/2+1)^2. With the paper's parameters (n = 512, s = 73) the bound
// is below 1e-9.

// WithheldCells returns w, the size of the maximal non-reconstructable
// withheld region for extended width n: (n/2+1)^2.
func WithheldCells(n int) int {
	h := n/2 + 1
	return h * h
}

// FalsePositiveBound returns the upper bound on the probability that s
// random distinct samples all land outside a maximal withheld region of an
// n x n extended matrix — i.e. the probability of wrongly concluding the
// data is available.
func FalsePositiveBound(n, s int) float64 {
	w := float64(WithheldCells(n))
	total := float64(n * n)
	p := 1.0
	for i := 0; i < s; i++ {
		p *= 1 - w/(total-float64(i))
		if p == 0 {
			return 0
		}
	}
	return p
}

// SamplesForConfidence returns the minimal number of samples s such that
// FalsePositiveBound(n, s) <= target. It caps the search at n*n.
func SamplesForConfidence(n int, target float64) int {
	w := float64(WithheldCells(n))
	total := float64(n * n)
	p := 1.0
	for s := 1; s <= n*n; s++ {
		p *= 1 - w/(total-float64(s-1))
		if p <= target {
			return s
		}
	}
	return n * n
}

// MaximalWithholding returns the cell-presence set corresponding to the
// strongest data-withholding attack (Fig. 3-right): all cells are present
// EXCEPT an (n/2+1) x (n/2+1) square anchored at (0, 0). The returned set
// is not reconstructable.
func MaximalWithholding(n int) *CellSet {
	s := NewCellSet(n)
	h := n/2 + 1
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			if r < h && c < h {
				continue
			}
			s.Add(CellID{Row: uint16(r), Col: uint16(c)})
		}
	}
	return s
}

// MinimalReconstructable returns a minimal cell set from which the entire
// matrix can be recovered (Fig. 3-left): the first half of the cells of
// each of the first n/2 rows — i.e. the base data quadrant. Row decoding
// cannot start (each row has only n/2... exactly n/2 cells, so rows ARE
// decodable), after which columns complete the matrix.
func MinimalReconstructable(n int) *CellSet {
	s := NewCellSet(n)
	for r := 0; r < n/2; r++ {
		for c := 0; c < n/2; c++ {
			s.Add(CellID{Row: uint16(r), Col: uint16(c)})
		}
	}
	return s
}

package blob

import "math/bits"

// CellSet tracks which cells of an extended matrix are present, with O(1)
// per-row and per-column counts. It is the metadata representation of blob
// data used by the large-scale simulator and by node custody bookkeeping;
// one CellSet for the default 512x512 geometry occupies 32 KB.
//
// CellSet is not safe for concurrent use.
type CellSet struct {
	n         int
	words     []uint64 // n*n bits, row-major
	rowCounts []uint16
	colCounts []uint16
	total     int
}

// NewCellSet creates an empty presence bitmap for an extended matrix of
// width n (= Params.N()).
func NewCellSet(n int) *CellSet {
	return &CellSet{
		n:         n,
		words:     make([]uint64, (n*n+63)/64),
		rowCounts: make([]uint16, n),
		colCounts: make([]uint16, n),
	}
}

// N returns the matrix width the set was created for.
func (s *CellSet) N() int { return s.n }

// Add marks the cell present. It returns true if the cell was newly added,
// false if it was already present.
func (s *CellSet) Add(id CellID) bool {
	idx := id.Index(s.n)
	w, b := idx/64, uint(idx%64)
	if s.words[w]&(1<<b) != 0 {
		return false
	}
	s.words[w] |= 1 << b
	s.rowCounts[id.Row]++
	s.colCounts[id.Col]++
	s.total++
	return true
}

// Has reports whether the cell is present.
func (s *CellSet) Has(id CellID) bool {
	idx := id.Index(s.n)
	return s.words[idx/64]&(1<<uint(idx%64)) != 0
}

// Count returns the total number of present cells.
func (s *CellSet) Count() int { return s.total }

// RowCount returns the number of present cells in the given row.
func (s *CellSet) RowCount(row int) int { return int(s.rowCounts[row]) }

// ColCount returns the number of present cells in the given column.
func (s *CellSet) ColCount(col int) int { return int(s.colCounts[col]) }

// LineCount returns the number of present cells along the line.
func (s *CellSet) LineCount(l Line) int {
	if l.Kind == Row {
		return s.RowCount(int(l.Index))
	}
	return s.ColCount(int(l.Index))
}

// LineComplete reports whether every cell of the line is present.
func (s *CellSet) LineComplete(l Line) bool { return s.LineCount(l) == s.n }

// LineReconstructable reports whether the line holds at least half of its
// cells and can therefore be completed with the rate-1/2 erasure code.
func (s *CellSet) LineReconstructable(l Line) bool {
	return s.LineCount(l) >= s.n/2
}

// CompleteLine marks every cell of the line present (the effect of an
// erasure-code reconstruction). It returns the number of newly added
// cells.
func (s *CellSet) CompleteLine(l Line) int {
	added := 0
	for _, id := range l.Cells(s.n) {
		if s.Add(id) {
			added++
		}
	}
	return added
}

// MissingInLine returns the positions along the line (0..n-1) whose cells
// are absent.
func (s *CellSet) MissingInLine(l Line) []int {
	var out []int
	for i, id := range l.Cells(s.n) {
		if !s.Has(id) {
			out = append(out, i)
		}
	}
	return out
}

// Clone returns a deep copy.
func (s *CellSet) Clone() *CellSet {
	c := &CellSet{
		n:         s.n,
		words:     append([]uint64(nil), s.words...),
		rowCounts: append([]uint16(nil), s.rowCounts...),
		colCounts: append([]uint16(nil), s.colCounts...),
		total:     s.total,
	}
	return c
}

// Reconstructable reports whether iterative row/column erasure decoding
// starting from the present cells can recover the ENTIRE extended matrix.
// This is the peeling process available to the network as a whole: any row
// or column with at least n/2 present cells is completed, repeatedly,
// until a fixpoint. A full matrix means the blob is available (Fig. 3 of
// the paper shows the minimal and maximal boundary cases).
func (s *CellSet) Reconstructable() bool {
	work := s.Clone()
	half := work.n / 2
	for {
		progress := false
		for i := 0; i < work.n; i++ {
			if c := int(work.rowCounts[i]); c >= half && c < work.n {
				work.CompleteLine(Line{Kind: Row, Index: uint16(i)})
				progress = true
			}
			if c := int(work.colCounts[i]); c >= half && c < work.n {
				work.CompleteLine(Line{Kind: Col, Index: uint16(i)})
				progress = true
			}
		}
		if work.total == work.n*work.n {
			return true
		}
		if !progress {
			return false
		}
	}
}

// PopcountSanity recomputes the total from the raw bitmap; used by tests
// to validate counter bookkeeping.
func (s *CellSet) PopcountSanity() int {
	t := 0
	for _, w := range s.words {
		t += bits.OnesCount64(w)
	}
	return t
}

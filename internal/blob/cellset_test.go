package blob

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCellSetAddHasCount(t *testing.T) {
	s := NewCellSet(8)
	id := CellID{Row: 2, Col: 3}
	if s.Has(id) {
		t.Fatal("empty set has cell")
	}
	if !s.Add(id) {
		t.Fatal("first Add returned false")
	}
	if s.Add(id) {
		t.Fatal("duplicate Add returned true")
	}
	if !s.Has(id) || s.Count() != 1 || s.RowCount(2) != 1 || s.ColCount(3) != 1 {
		t.Fatal("counters wrong after Add")
	}
	if s.RowCount(0) != 0 || s.ColCount(0) != 0 {
		t.Fatal("unrelated counters non-zero")
	}
}

func TestCellSetCountersMatchBitmap(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + 2*rng.Intn(15)
		s := NewCellSet(n)
		rows := make([]int, n)
		cols := make([]int, n)
		for i := 0; i < n*n/2; i++ {
			id := CellID{Row: uint16(rng.Intn(n)), Col: uint16(rng.Intn(n))}
			if s.Add(id) {
				rows[id.Row]++
				cols[id.Col]++
			}
		}
		if s.Count() != s.PopcountSanity() {
			return false
		}
		for i := 0; i < n; i++ {
			if s.RowCount(i) != rows[i] || s.ColCount(i) != cols[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestCellSetLineOps(t *testing.T) {
	s := NewCellSet(8)
	l := Line{Kind: Row, Index: 1}
	for i := 0; i < 4; i++ {
		s.Add(CellID{Row: 1, Col: uint16(i)})
	}
	if !s.LineReconstructable(l) {
		t.Fatal("4 of 8 should be reconstructable")
	}
	if s.LineComplete(l) {
		t.Fatal("line not complete yet")
	}
	missing := s.MissingInLine(l)
	if len(missing) != 4 || missing[0] != 4 {
		t.Fatalf("missing = %v", missing)
	}
	if added := s.CompleteLine(l); added != 4 {
		t.Fatalf("CompleteLine added %d, want 4", added)
	}
	if !s.LineComplete(l) || s.MissingInLine(l) != nil {
		t.Fatal("line should be complete")
	}
	// Column counters must have been updated by CompleteLine.
	for c := 0; c < 8; c++ {
		if s.ColCount(c) != 1 {
			t.Fatalf("ColCount(%d) = %d", c, s.ColCount(c))
		}
	}
}

func TestCellSetLineCountByKind(t *testing.T) {
	s := NewCellSet(4)
	s.Add(CellID{Row: 0, Col: 2})
	if s.LineCount(Line{Kind: Row, Index: 0}) != 1 {
		t.Fatal("row count")
	}
	if s.LineCount(Line{Kind: Col, Index: 2}) != 1 {
		t.Fatal("col count")
	}
}

func TestCellSetCloneIndependent(t *testing.T) {
	s := NewCellSet(4)
	s.Add(CellID{0, 0})
	c := s.Clone()
	c.Add(CellID{1, 1})
	if s.Has(CellID{1, 1}) {
		t.Fatal("clone aliases original")
	}
	if c.Count() != 2 || s.Count() != 1 {
		t.Fatal("clone counts wrong")
	}
}

func TestReconstructableFullAndEmpty(t *testing.T) {
	s := NewCellSet(8)
	if s.Reconstructable() {
		t.Fatal("empty set reconstructable")
	}
	for r := 0; r < 8; r++ {
		for c := 0; c < 8; c++ {
			s.Add(CellID{uint16(r), uint16(c)})
		}
	}
	if !s.Reconstructable() {
		t.Fatal("full set not reconstructable")
	}
}

func TestMinimalReconstructable(t *testing.T) {
	for _, n := range []int{8, 16, 64} {
		s := MinimalReconstructable(n)
		if s.Count() != n*n/4 {
			t.Fatalf("n=%d: count = %d, want %d", n, s.Count(), n*n/4)
		}
		if !s.Reconstructable() {
			t.Fatalf("n=%d: minimal quadrant not reconstructable", n)
		}
		// Removing any single cell from the quadrant breaks it.
		c := s.Clone()
		// Rebuild without cell (0,0): peeling cannot start anywhere.
		c2 := NewCellSet(n)
		for r := 0; r < n/2; r++ {
			for col := 0; col < n/2; col++ {
				if r == 0 && col == 0 {
					continue
				}
				c2.Add(CellID{uint16(r), uint16(col)})
			}
		}
		_ = c
		if c2.Reconstructable() {
			t.Fatalf("n=%d: quadrant minus one cell should not be reconstructable", n)
		}
	}
}

func TestMaximalWithholdingNotReconstructable(t *testing.T) {
	for _, n := range []int{8, 16, 64} {
		s := MaximalWithholding(n)
		want := n*n - WithheldCells(n)
		if s.Count() != want {
			t.Fatalf("n=%d: count = %d, want %d", n, s.Count(), want)
		}
		if s.Reconstructable() {
			t.Fatalf("n=%d: maximal withholding is reconstructable", n)
		}
		// Adding one withheld cell back tips it over: the row it lands in
		// becomes decodable, then peeling cascades.
		s.Add(CellID{0, 0})
		if !s.Reconstructable() {
			t.Fatalf("n=%d: one extra cell should enable reconstruction", n)
		}
	}
}

func TestFalsePositiveBoundPaperNumbers(t *testing.T) {
	// Paper: with n=512 and s=73, the false-positive bound is below 1e-9.
	got := FalsePositiveBound(512, 73)
	if got >= 1e-9 {
		t.Fatalf("FalsePositiveBound(512, 73) = %g, want < 1e-9", got)
	}
	// The exact threshold of the hypergeometric bound is 72; the paper
	// community's 73 keeps one sample of slack. 71 must NOT reach 1e-9.
	if prev := FalsePositiveBound(512, 71); prev < 1e-9 {
		t.Fatalf("FalsePositiveBound(512, 71) = %g; unexpectedly strong", prev)
	}
}

func TestSamplesForConfidence(t *testing.T) {
	// The exact bound crosses 1e-9 at s=72; the paper rounds up to 73.
	if got := SamplesForConfidence(512, 1e-9); got != 72 {
		t.Fatalf("SamplesForConfidence(512, 1e-9) = %d, want 72", got)
	}
	if got := SamplesForConfidence(512, 1.0); got != 1 {
		t.Fatalf("SamplesForConfidence(512, 1.0) = %d, want 1", got)
	}
}

func TestFalsePositiveBoundMonotone(t *testing.T) {
	prev := 1.0
	for s := 1; s <= 100; s++ {
		cur := FalsePositiveBound(512, s)
		if cur > prev {
			t.Fatalf("bound increased at s=%d", s)
		}
		prev = cur
	}
}

func TestWithheldCells(t *testing.T) {
	if got := WithheldCells(512); got != 257*257 {
		t.Fatalf("WithheldCells(512) = %d, want %d", got, 257*257)
	}
}

func TestMonteCarloSamplingDetectsWithholding(t *testing.T) {
	// Sample s random cells against the maximal withholding pattern many
	// times; the empirical detection rate must be high and consistent
	// with the analytic bound (which is a miss-probability upper bound).
	const n, s, trials = 64, 30, 2000
	set := MaximalWithholding(n)
	rng := rand.New(rand.NewSource(42))
	misses := 0
	for trial := 0; trial < trials; trial++ {
		allPresent := true
		seen := map[int]bool{}
		for len(seen) < s {
			idx := rng.Intn(n * n)
			if seen[idx] {
				continue
			}
			seen[idx] = true
			if !set.Has(CellIDFromIndex(idx, n)) {
				allPresent = false
				break
			}
		}
		if allPresent {
			misses++
		}
	}
	bound := FalsePositiveBound(n, s)
	rate := float64(misses) / trials
	// Allow generous slack over the analytic bound for Monte Carlo noise.
	if rate > bound*3+0.01 {
		t.Fatalf("empirical miss rate %g far above bound %g", rate, bound)
	}
}

func BenchmarkCellSetAdd(b *testing.B) {
	s := NewCellSet(512)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Add(CellIDFromIndex(i%(512*512), 512))
	}
}

func BenchmarkReconstructable512(b *testing.B) {
	s := MinimalReconstructable(512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !s.Reconstructable() {
			b.Fatal("not reconstructable")
		}
	}
}

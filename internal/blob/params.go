// Package blob models the Danksharding extended blob: a square matrix of
// fixed-size cells, erasure-extended in two dimensions so that every row
// and every column can be reconstructed from any half of its cells.
//
// With the paper's target parameters the base blob is a 256x256 matrix of
// 512-byte cells (32 MB). Two-dimensional Reed-Solomon extension doubles
// both dimensions, producing a 512x512 matrix. Each cell additionally
// carries a 48-byte KZG proof (package kzg), for a total extended size of
// 512*512*(512+48) = 140 MB.
//
// The package also provides CellSet, a compact presence bitmap over the
// extended matrix with per-row and per-column counters. CellSet is the
// "metadata cell" representation used by the large-scale simulator, where
// tracking real payload bytes for 20,000 nodes would be prohibitive — the
// same approach as the paper's PeerSim simulator.
package blob

import (
	"errors"
	"fmt"
)

// Errors returned by this package.
var (
	ErrInvalidParams = errors.New("blob: invalid parameters")
	ErrDataTooLarge  = errors.New("blob: data exceeds blob capacity")
	ErrBadCell       = errors.New("blob: cell out of range or mis-sized")
	ErrNotEnough     = errors.New("blob: not enough cells to reconstruct")
)

// Params describes the geometry of a blob and its extension. The zero
// value is not usable; use DefaultParams or TestParams.
type Params struct {
	// K is the number of data rows (and columns) of the base blob.
	// The extended matrix is N x N with N = 2*K.
	K int
	// CellBytes is the number of payload bytes per cell (512 in the
	// paper). Must be even (the GF(2^16) codec works on 16-bit words).
	CellBytes int
	// ProofBytes is the size of the per-cell KZG proof (48 in the paper).
	// Proofs ride along with cells on the wire but do not participate in
	// erasure coding.
	ProofBytes int
}

// DefaultParams returns the Danksharding target parameters used throughout
// the paper: 256x256 data cells of 512 B extended to 512x512, 48 B proofs.
func DefaultParams() Params {
	return Params{K: 256, CellBytes: 512, ProofBytes: 48}
}

// TestParams returns a scaled-down geometry (16x16 -> 32x32, 64 B cells)
// that keeps unit tests and examples fast while exercising identical code
// paths.
func TestParams() Params {
	return Params{K: 16, CellBytes: 64, ProofBytes: 48}
}

// Validate checks the parameters for internal consistency.
func (p Params) Validate() error {
	switch {
	case p.K < 1:
		return fmt.Errorf("%w: K=%d", ErrInvalidParams, p.K)
	case 2*p.K > 65536:
		return fmt.Errorf("%w: extended width %d exceeds GF(2^16) limit", ErrInvalidParams, 2*p.K)
	case p.CellBytes < 2 || p.CellBytes%2 != 0:
		return fmt.Errorf("%w: CellBytes=%d (must be positive and even)", ErrInvalidParams, p.CellBytes)
	case p.ProofBytes < 0:
		return fmt.Errorf("%w: ProofBytes=%d", ErrInvalidParams, p.ProofBytes)
	}
	return nil
}

// N returns the extended matrix width/height (2*K).
func (p Params) N() int { return 2 * p.K }

// BlobBytes returns the data capacity of the base blob in bytes.
func (p Params) BlobBytes() int { return p.K * p.K * p.CellBytes }

// CellWireBytes returns the on-the-wire size of one cell: payload plus
// proof (560 B with default parameters).
func (p Params) CellWireBytes() int { return p.CellBytes + p.ProofBytes }

// ExtendedCells returns the number of cells in the extended matrix.
func (p Params) ExtendedCells() int { return p.N() * p.N() }

// ExtendedWireBytes returns the total wire size of the extended blob
// (140 MB with default parameters).
func (p Params) ExtendedWireBytes() int {
	return p.ExtendedCells() * p.CellWireBytes()
}

// CellID addresses a cell in the extended matrix.
type CellID struct {
	Row, Col uint16
}

// Index returns the flattened index of the cell in row-major order for an
// extended matrix of width n.
func (c CellID) Index(n int) int { return int(c.Row)*n + int(c.Col) }

// CellIDFromIndex is the inverse of Index.
func CellIDFromIndex(idx, n int) CellID {
	return CellID{Row: uint16(idx / n), Col: uint16(idx % n)}
}

// String implements fmt.Stringer.
func (c CellID) String() string { return fmt.Sprintf("(%d,%d)", c.Row, c.Col) }

// LineKind distinguishes rows from columns in custody assignments.
type LineKind uint8

// Line kinds.
const (
	Row LineKind = iota + 1
	Col
)

// String implements fmt.Stringer.
func (k LineKind) String() string {
	switch k {
	case Row:
		return "row"
	case Col:
		return "col"
	default:
		return fmt.Sprintf("LineKind(%d)", uint8(k))
	}
}

// Line identifies one full row or column of the extended matrix. Rows and
// columns are the paper's custody units: each node is assigned 8 distinct
// rows and 8 distinct columns.
type Line struct {
	Kind  LineKind
	Index uint16
}

// String implements fmt.Stringer.
func (l Line) String() string { return fmt.Sprintf("%s%d", l.Kind, l.Index) }

// Cells enumerates the cell IDs of the line for extended width n.
func (l Line) Cells(n int) []CellID {
	out := make([]CellID, n)
	for i := 0; i < n; i++ {
		if l.Kind == Row {
			out[i] = CellID{Row: l.Index, Col: uint16(i)}
		} else {
			out[i] = CellID{Row: uint16(i), Col: l.Index}
		}
	}
	return out
}

// Contains reports whether the line passes through the given cell.
func (l Line) Contains(c CellID) bool {
	if l.Kind == Row {
		return c.Row == l.Index
	}
	return c.Col == l.Index
}

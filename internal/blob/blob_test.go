package blob

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func testParams() Params { return Params{K: 8, CellBytes: 32, ProofBytes: 48} }

func randBlob(t testing.TB, p Params, seed int64) *Blob {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	data := make([]byte, p.BlobBytes())
	rng.Read(data)
	b, err := NewBlob(p, data)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestParamsValidate(t *testing.T) {
	cases := []struct {
		p  Params
		ok bool
	}{
		{DefaultParams(), true},
		{TestParams(), true},
		{Params{K: 0, CellBytes: 64, ProofBytes: 48}, false},
		{Params{K: 8, CellBytes: 63, ProofBytes: 48}, false}, // odd
		{Params{K: 8, CellBytes: 0, ProofBytes: 48}, false},
		{Params{K: 8, CellBytes: 64, ProofBytes: -1}, false},
		{Params{K: 40000, CellBytes: 64, ProofBytes: 0}, false}, // 2K > 65536
	}
	for i, c := range cases {
		err := c.p.Validate()
		if (err == nil) != c.ok {
			t.Errorf("case %d: Validate() = %v, ok=%v", i, err, c.ok)
		}
	}
}

func TestParamsPaperNumbers(t *testing.T) {
	p := DefaultParams()
	if got := p.BlobBytes(); got != 32*1024*1024 {
		t.Errorf("BlobBytes = %d, want 32 MiB", got)
	}
	if got := p.CellWireBytes(); got != 560 {
		t.Errorf("CellWireBytes = %d, want 560", got)
	}
	if got := p.N(); got != 512 {
		t.Errorf("N = %d, want 512", got)
	}
	if got := p.ExtendedWireBytes(); got != 512*512*560 {
		t.Errorf("ExtendedWireBytes = %d, want %d", got, 512*512*560)
	}
}

func TestNewBlobPadsAndRejects(t *testing.T) {
	p := testParams()
	b, err := NewBlob(p, []byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	data := b.Data()
	if !bytes.Equal(data[:5], []byte("hello")) {
		t.Fatal("data prefix lost")
	}
	for _, x := range data[5:] {
		if x != 0 {
			t.Fatal("padding not zero")
		}
	}
	if _, err := NewBlob(p, make([]byte, p.BlobBytes()+1)); !errors.Is(err, ErrDataTooLarge) {
		t.Fatalf("err = %v, want ErrDataTooLarge", err)
	}
}

func TestExtendSystematic(t *testing.T) {
	p := testParams()
	b := randBlob(t, p, 1)
	e, err := Extend(b)
	if err != nil {
		t.Fatal(err)
	}
	// Data quadrant must equal the base blob.
	for r := 0; r < p.K; r++ {
		for c := 0; c < p.K; c++ {
			if !bytes.Equal(e.Cell(CellID{uint16(r), uint16(c)}), b.Cell(r, c)) {
				t.Fatalf("data cell (%d,%d) differs", r, c)
			}
		}
	}
}

func TestExtendRowsAndColumnsAreCodewords(t *testing.T) {
	p := testParams()
	b := randBlob(t, p, 2)
	e, err := Extend(b)
	if err != nil {
		t.Fatal(err)
	}
	codec := e.Codec()
	n := p.N()
	for i := 0; i < n; i++ {
		rowShards := e.Line(Line{Kind: Row, Index: uint16(i)})
		ok, err := codec.Verify(rowShards)
		if err != nil || !ok {
			t.Fatalf("row %d is not a codeword: %v %v", i, ok, err)
		}
		colShards := e.Line(Line{Kind: Col, Index: uint16(i)})
		ok, err = codec.Verify(colShards)
		if err != nil || !ok {
			t.Fatalf("col %d is not a codeword: %v %v", i, ok, err)
		}
	}
}

func TestReconstructLineFromAnyHalf(t *testing.T) {
	p := testParams()
	b := randBlob(t, p, 3)
	e, err := Extend(b)
	if err != nil {
		t.Fatal(err)
	}
	n := p.N()
	rng := rand.New(rand.NewSource(4))
	for _, l := range []Line{{Row, 0}, {Row, uint16(n - 1)}, {Col, 3}, {Col, uint16(n / 2)}} {
		full := e.Line(l)
		have := map[int][]byte{}
		for _, pos := range rng.Perm(n)[:p.K] {
			have[pos] = full[pos]
		}
		got, err := ReconstructLine(p, have)
		if err != nil {
			t.Fatalf("line %v: %v", l, err)
		}
		for i := range full {
			if !bytes.Equal(got[i], full[i]) {
				t.Fatalf("line %v cell %d mismatch", l, i)
			}
		}
	}
}

func TestReconstructLineErrors(t *testing.T) {
	p := testParams()
	if _, err := ReconstructLine(p, map[int][]byte{0: make([]byte, p.CellBytes)}); !errors.Is(err, ErrNotEnough) {
		t.Fatalf("err = %v, want ErrNotEnough", err)
	}
	have := map[int][]byte{}
	for i := 0; i < p.K; i++ {
		have[i] = make([]byte, p.CellBytes)
	}
	have[0] = make([]byte, p.CellBytes+1)
	if _, err := ReconstructLine(p, have); !errors.Is(err, ErrBadCell) {
		t.Fatalf("err = %v, want ErrBadCell", err)
	}
	have[0] = make([]byte, p.CellBytes)
	have[p.N()] = make([]byte, p.CellBytes) // out of range position
	if _, err := ReconstructLine(p, have); !errors.Is(err, ErrBadCell) {
		t.Fatalf("err = %v, want ErrBadCell", err)
	}
}

func TestQuickReconstructRandomHalves(t *testing.T) {
	p := Params{K: 4, CellBytes: 8, ProofBytes: 0}
	b := randBlob(t, p, 5)
	e, err := Extend(b)
	if err != nil {
		t.Fatal(err)
	}
	n := p.N()
	f := func(seed int64, rowIdx uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		l := Line{Kind: Row, Index: uint16(int(rowIdx) % n)}
		if seed%2 == 0 {
			l.Kind = Col
		}
		full := e.Line(l)
		have := map[int][]byte{}
		keep := p.K + rng.Intn(n-p.K+1) // any count in [K, n]
		for _, pos := range rng.Perm(n)[:keep] {
			have[pos] = full[pos]
		}
		got, err := ReconstructLine(p, have)
		if err != nil {
			return false
		}
		for i := range full {
			if !bytes.Equal(got[i], full[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestCellIDIndexRoundTrip(t *testing.T) {
	n := 32
	for idx := 0; idx < n*n; idx += 7 {
		id := CellIDFromIndex(idx, n)
		if id.Index(n) != idx {
			t.Fatalf("round trip failed for %d", idx)
		}
	}
}

func TestLineCellsAndContains(t *testing.T) {
	r := Line{Kind: Row, Index: 3}
	cells := r.Cells(8)
	if len(cells) != 8 {
		t.Fatalf("len = %d", len(cells))
	}
	for i, c := range cells {
		if c.Row != 3 || int(c.Col) != i {
			t.Fatalf("bad cell %v at %d", c, i)
		}
		if !r.Contains(c) {
			t.Fatalf("Contains(%v) = false", c)
		}
	}
	if r.Contains(CellID{Row: 4, Col: 0}) {
		t.Fatal("row 3 contains row-4 cell")
	}
	c := Line{Kind: Col, Index: 5}
	if !c.Contains(CellID{Row: 7, Col: 5}) || c.Contains(CellID{Row: 5, Col: 4}) {
		t.Fatal("column Contains wrong")
	}
}

func TestLineKindString(t *testing.T) {
	if Row.String() != "row" || Col.String() != "col" {
		t.Fatal("LineKind strings wrong")
	}
	if (Line{Kind: Row, Index: 7}).String() != "row7" {
		t.Fatal("Line string wrong")
	}
}

package blob

import (
	"sync"

	"pandas/internal/rs"
)

// Building a Codec16 inverts a K x K matrix, which is far too expensive to
// repeat for every reconstructed line. Codecs are immutable, so a small
// process-wide cache keyed by geometry is shared by all blobs and nodes.
var codecCache sync.Map // Params.K -> *rs.Codec16

func codecFor(p Params) (*rs.Codec16, error) {
	if v, ok := codecCache.Load(p.K); ok {
		return v.(*rs.Codec16), nil
	}
	c, err := rs.New16(p.K, p.N())
	if err != nil {
		return nil, err
	}
	v, _ := codecCache.LoadOrStore(p.K, c)
	return v.(*rs.Codec16), nil
}

package blob

import (
	"bytes"
	"testing"
)

// TestExtendParallelMatchesSequential pins the determinism contract of
// the worker pool: parallel extension must be bit-identical to the
// single-goroutine Sequential path, for any worker count. Codewords are
// independent and write disjoint cells, so scheduling order must not
// leak into the output.
func TestExtendParallelMatchesSequential(t *testing.T) {
	p := testParams()
	b := randBlob(t, p, 7)
	seq, err := ExtendWith(b, ExtendOptions{Sequential: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, 3, 8, 64} {
		par, err := ExtendWith(b, ExtendOptions{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !bytes.Equal(par.backing, seq.backing) {
			t.Fatalf("workers=%d: matrix differs from sequential extension", workers)
		}
	}
}

// TestExtendDataMatchesExtendWith pins the direct-from-data path against
// the Blob-mediated one, including the zero-padded tail.
func TestExtendDataMatchesExtendWith(t *testing.T) {
	p := testParams()
	data := randData(t, p.BlobBytes()-3*p.CellBytes-5, 9)
	b, err := NewBlob(p, data)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Extend(b)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ExtendData(p, data, ExtendOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.backing, want.backing) {
		t.Fatal("ExtendData differs from NewBlob+Extend")
	}
	if _, err := ExtendData(p, make([]byte, p.BlobBytes()+1), ExtendOptions{}); err == nil {
		t.Fatal("oversized data not rejected")
	}
}

// TestExtendReuse pins arena recycling: extending different data into a
// reused matrix must be bit-identical to a fresh extension (no stale
// bytes survive, including in the padding region), and must actually
// reuse the backing storage.
func TestExtendReuse(t *testing.T) {
	p := testParams()
	long := randData(t, p.BlobBytes(), 10)
	short := randData(t, p.BlobBytes()/2, 11)

	reused, err := ExtendData(p, long, ExtendOptions{})
	if err != nil {
		t.Fatal(err)
	}
	prevBase := &reused.backing[0]
	reused, err = ExtendData(p, short, ExtendOptions{Reuse: reused})
	if err != nil {
		t.Fatal(err)
	}
	if &reused.backing[0] != prevBase {
		t.Fatal("reuse allocated a fresh backing")
	}
	fresh, err := ExtendData(p, short, ExtendOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(reused.backing, fresh.backing) {
		t.Fatal("reused extension differs from fresh extension")
	}
}

// TestExtendRowPhaseHook checks the OnRowPhase contract: when the hook
// fires, rows 0..K-1 (data + row parity) are final and readable, and
// the hook observes exactly the same bytes a post-extension reader does.
func TestExtendRowPhaseHook(t *testing.T) {
	p := testParams()
	data := randData(t, p.BlobBytes(), 12)
	var snap []byte
	e, err := ExtendData(p, data, ExtendOptions{
		Workers: 4,
		OnRowPhase: func(e *Extended) {
			for r := 0; r < p.K; r++ {
				snap = append(snap, e.RowBytes(r)...)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	var want []byte
	for r := 0; r < p.K; r++ {
		want = append(want, e.RowBytes(r)...)
	}
	if !bytes.Equal(snap, want) {
		t.Fatal("row-phase snapshot differs from final top half")
	}
}

func randData(t *testing.T, n int, seed int64) []byte {
	t.Helper()
	b := randBlob(t, testParams(), seed)
	out := b.Data()
	return out[:n]
}

package blob

import (
	"bytes"
	"testing"
)

// TestExtendParallelMatchesSequential pins the determinism contract of
// the worker pool: parallel extension must be bit-identical to the
// single-goroutine Sequential path, for any worker count. Codewords are
// independent and write disjoint cells, so scheduling order must not
// leak into the output.
func TestExtendParallelMatchesSequential(t *testing.T) {
	p := testParams()
	b := randBlob(t, p, 7)
	seq, err := ExtendWith(b, ExtendOptions{Sequential: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, 3, 8, 64} {
		par, err := ExtendWith(b, ExtendOptions{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range seq.cells {
			if !bytes.Equal(par.cells[i], seq.cells[i]) {
				t.Fatalf("workers=%d: cell %d differs from sequential extension", workers, i)
			}
		}
	}
}

// TestExtendDataQuadrantAliasesBlob checks that extension does not copy
// the K x K data quadrant: those cells alias the base blob's storage.
func TestExtendDataQuadrantAliasesBlob(t *testing.T) {
	p := testParams()
	b := randBlob(t, p, 8)
	e, err := Extend(b)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < p.K; r++ {
		for c := 0; c < p.K; c++ {
			base := b.Cell(r, c)
			ext := e.Cell(CellID{Row: uint16(r), Col: uint16(c)})
			if &base[0] != &ext[0] {
				t.Fatalf("data cell (%d,%d) was copied instead of aliased", r, c)
			}
		}
	}
}

package blob

import (
	"math/rand"
	"testing"
)

// benchBlob builds a deterministic pseudo-random base blob filling the
// full capacity of the geometry.
func benchBlob(b *testing.B, p Params) *Blob {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	data := make([]byte, p.BlobBytes())
	rng.Read(data)
	bl, err := NewBlob(p, data)
	if err != nil {
		b.Fatal(err)
	}
	return bl
}

// BenchmarkExtend32MB measures the full 2D extension at the paper
// geometry: K=256, 512 B cells — a 32 MB base blob extended to the
// 512x512 (128 MB) matrix. This is the builder's seeding-critical path
// (Fig. 9). Throughput is reported relative to the base blob size.
func BenchmarkExtend32MB(b *testing.B) {
	p := DefaultParams()
	bl := benchBlob(b, p)
	b.SetBytes(int64(p.BlobBytes()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Extend(bl); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtendTest measures extension at the scaled-down test
// geometry (16x16, 64 B cells) used throughout the unit tests.
func BenchmarkExtendTest(b *testing.B) {
	p := TestParams()
	bl := benchBlob(b, p)
	b.SetBytes(int64(p.BlobBytes()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Extend(bl); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReconstructLine measures single-line recovery at paper
// geometry from exactly K of 2K cells, the consolidation hot path on
// custody nodes. The same loss pattern repeats across iterations, the
// common case under churn (the same dead custodians all slot).
func BenchmarkReconstructLine(b *testing.B) {
	p := DefaultParams()
	bl := benchBlob(b, p)
	ext, err := Extend(bl)
	if err != nil {
		b.Fatal(err)
	}
	line := Line{Kind: Row, Index: 3}
	cells := ext.Line(line)
	have := make(map[int][]byte, p.K)
	for i := 0; i < p.K; i++ {
		// Interleave data and parity positions so reconstruction does
		// real decode work (pure data positions would be a no-op).
		pos := i * 2
		have[pos] = cells[pos]
	}
	b.SetBytes(int64(p.N() * p.CellBytes))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReconstructLine(p, have); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReconstructLineColdCache is BenchmarkReconstructLine with a
// loss pattern that shifts every iteration, defeating any decode-matrix
// caching: the matrix-inversion worst case.
func BenchmarkReconstructLineColdCache(b *testing.B) {
	p := DefaultParams()
	bl := benchBlob(b, p)
	ext, err := Extend(bl)
	if err != nil {
		b.Fatal(err)
	}
	line := Line{Kind: Row, Index: 3}
	cells := ext.Line(line)
	n := p.N()
	b.SetBytes(int64(n * p.CellBytes))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		have := make(map[int][]byte, p.K)
		for j := 0; j < p.K; j++ {
			pos := (j*2 + i) % n
			have[pos] = cells[pos]
		}
		if _, err := ReconstructLine(p, have); err != nil {
			b.Fatal(err)
		}
	}
}

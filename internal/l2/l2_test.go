package l2

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestGeneratorDeterministic(t *testing.T) {
	g1 := NewGenerator(1, 5, 1000)
	g2 := NewGenerator(1, 5, 1000)
	for i := 0; i < 10; i++ {
		a, b := g1.NextBatch(), g2.NextBatch()
		if a.Rollup != b.Rollup || a.Kind != b.Kind || !bytes.Equal(a.Data, b.Data) {
			t.Fatal("same seed produced different batches")
		}
	}
}

func TestNextBatchShape(t *testing.T) {
	g := NewGenerator(2, 8, 2000)
	seenKinds := map[RollupKind]bool{}
	for i := 0; i < 200; i++ {
		b := g.NextBatch()
		if len(b.Data) < 32 {
			t.Fatalf("batch %d too small: %d", i, len(b.Data))
		}
		if b.Txs < 1 {
			t.Fatal("batch with no transactions")
		}
		if int(b.Rollup) >= 8 {
			t.Fatalf("rollup id %d out of range", b.Rollup)
		}
		seenKinds[b.Kind] = true
	}
	if !seenKinds[Optimistic] {
		t.Fatal("no optimistic rollups in the mix")
	}
}

func TestFillAndUnpackRoundTrip(t *testing.T) {
	g := NewGenerator(3, 6, 1500)
	payload, packed := g.FillBlob(64 * 1024)
	if len(packed) == 0 {
		t.Fatal("nothing packed")
	}
	if len(payload) > 64*1024 {
		t.Fatalf("payload %d exceeds capacity", len(payload))
	}
	got, err := UnpackBlob(payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(packed) {
		t.Fatalf("unpacked %d batches, want %d", len(got), len(packed))
	}
	for i := range got {
		if got[i].Rollup != packed[i].Rollup ||
			got[i].Kind != packed[i].Kind ||
			got[i].Sequence != packed[i].Sequence ||
			got[i].Txs != packed[i].Txs ||
			!bytes.Equal(got[i].Data, packed[i].Data) {
			t.Fatalf("batch %d mismatch", i)
		}
	}
}

func TestUnpackRejectsCorruption(t *testing.T) {
	g := NewGenerator(4, 3, 800)
	payload, _ := g.FillBlob(16 * 1024)
	if _, err := UnpackBlob(payload[:3]); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("short payload: %v", err)
	}
	if _, err := UnpackBlob(payload[:len(payload)-5]); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("truncated payload: %v", err)
	}
}

func TestQuickFillUnpack(t *testing.T) {
	f := func(seed int64, rollups, mean uint8) bool {
		g := NewGenerator(seed, int(rollups%10)+1, int(mean)*16+64)
		payload, packed := g.FillBlob(32 * 1024)
		got, err := UnpackBlob(payload)
		if err != nil {
			return false
		}
		return len(got) == len(packed)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSummarize(t *testing.T) {
	g := NewGenerator(5, 4, 1000)
	_, packed := g.FillBlob(32 * 1024)
	th := Summarize(packed)
	if th.Batches != len(packed) || th.Txs == 0 || th.Bytes == 0 {
		t.Fatalf("summary = %+v", th)
	}
}

func BenchmarkFillBlob(b *testing.B) {
	g := NewGenerator(6, 10, 4000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.FillBlob(512 * 1024)
	}
}

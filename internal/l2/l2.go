// Package l2 generates synthetic layer-2 rollup workloads: the batched,
// compressed transaction data that fills PANDAS blobs.
//
// The paper's motivation (Sections 1-2) is rollup throughput: optimistic
// and ZK rollups periodically post compressed transaction batches to the
// data availability layer. This package produces realistic batch streams
// — variable-size batches from multiple concurrent rollups, with
// compressed-transaction entropy characteristics — and packs them into
// blob payloads, so examples and benchmarks exercise the protocol with
// the workload it was designed for rather than zero-filled buffers.
package l2

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
)

// RollupKind mirrors the two families of layer-2 protocols the paper
// discusses.
type RollupKind uint8

// Rollup kinds.
const (
	// Optimistic rollups post compressed transaction batches and rely on
	// fraud proofs (e.g. Arbitrum, Optimism).
	Optimistic RollupKind = iota + 1
	// ZK rollups post validity proofs alongside state diffs (e.g.
	// zkSync, Polygon).
	ZK
)

// String implements fmt.Stringer.
func (k RollupKind) String() string {
	switch k {
	case Optimistic:
		return "optimistic"
	case ZK:
		return "zk"
	default:
		return fmt.Sprintf("RollupKind(%d)", uint8(k))
	}
}

// Batch is one rollup's posting for a slot.
type Batch struct {
	Rollup   uint32
	Kind     RollupKind
	Sequence uint64
	Txs      int
	Data     []byte
}

// batchHeaderSize is the serialized batch header:
// rollup(4) kind(1) sequence(8) txs(4) length(4).
const batchHeaderSize = 21

// WireSize returns the serialized batch size.
func (b *Batch) WireSize() int { return batchHeaderSize + len(b.Data) }

// Generator produces a deterministic stream of rollup batches.
type Generator struct {
	rng     *rand.Rand
	rollups []rollupState
	seq     uint64
}

type rollupState struct {
	id       uint32
	kind     RollupKind
	meanSize int
}

// NewGenerator creates a workload of `rollups` concurrent rollups with
// the given mean batch size in bytes. Roughly a third are ZK rollups,
// matching the contemporary mix.
func NewGenerator(seed int64, rollups, meanBatch int) *Generator {
	if rollups < 1 {
		rollups = 1
	}
	if meanBatch < 64 {
		meanBatch = 64
	}
	g := &Generator{rng: rand.New(rand.NewSource(seed))}
	for i := 0; i < rollups; i++ {
		kind := Optimistic
		if g.rng.Intn(3) == 0 {
			kind = ZK
		}
		// Rollup sizes are heterogeneous: a few big ones dominate.
		mean := meanBatch / 2
		if g.rng.Intn(4) == 0 {
			mean = meanBatch * 2
		}
		g.rollups = append(g.rollups, rollupState{id: uint32(i), kind: kind, meanSize: mean})
	}
	return g
}

// NextBatch produces the next batch, round-robin across rollups with
// exponential-ish size variation. Compressed transaction data is modeled
// as high-entropy bytes (compression removes redundancy).
func (g *Generator) NextBatch() *Batch {
	r := g.rollups[int(g.seq)%len(g.rollups)]
	g.seq++
	size := int(float64(r.meanSize) * (0.25 + g.rng.ExpFloat64()))
	if size < 32 {
		size = 32
	}
	data := make([]byte, size)
	g.rng.Read(data)
	// ZK rollups carry a validity proof header (constant-size, modeled).
	txs := size / 120 // ~120 compressed bytes per transaction
	if r.kind == ZK {
		txs = size / 40 // state diffs are denser
	}
	if txs < 1 {
		txs = 1
	}
	return &Batch{Rollup: r.id, Kind: r.kind, Sequence: g.seq, Txs: txs, Data: data}
}

// FillBlob packs batches into a blob payload of the given capacity,
// returning the payload and the packed batches. The payload begins with
// a 4-byte batch count; each batch is length-prefixed, so UnpackBlob can
// recover the stream.
func (g *Generator) FillBlob(capacity int) ([]byte, []*Batch) {
	payload := make([]byte, 4, capacity)
	var packed []*Batch
	for {
		b := g.NextBatch()
		if len(payload)+b.WireSize() > capacity {
			break
		}
		payload = appendBatch(payload, b)
		packed = append(packed, b)
	}
	binary.BigEndian.PutUint32(payload[:4], uint32(len(packed)))
	return payload, packed
}

func appendBatch(buf []byte, b *Batch) []byte {
	buf = binary.BigEndian.AppendUint32(buf, b.Rollup)
	buf = append(buf, byte(b.Kind))
	buf = binary.BigEndian.AppendUint64(buf, b.Sequence)
	buf = binary.BigEndian.AppendUint32(buf, uint32(b.Txs))
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(b.Data)))
	buf = append(buf, b.Data...)
	return buf
}

// ErrCorrupt reports a malformed blob payload.
var ErrCorrupt = errors.New("l2: corrupt blob payload")

// UnpackBlob recovers the batch stream from a blob payload produced by
// FillBlob. This is what a rollup participant does after retrieving its
// data from the availability layer.
func UnpackBlob(payload []byte) ([]*Batch, error) {
	if len(payload) < 4 {
		return nil, ErrCorrupt
	}
	count := int(binary.BigEndian.Uint32(payload[:4]))
	rest := payload[4:]
	out := make([]*Batch, 0, count)
	for i := 0; i < count; i++ {
		if len(rest) < batchHeaderSize {
			return nil, fmt.Errorf("%w: truncated header at batch %d", ErrCorrupt, i)
		}
		b := &Batch{
			Rollup:   binary.BigEndian.Uint32(rest[0:4]),
			Kind:     RollupKind(rest[4]),
			Sequence: binary.BigEndian.Uint64(rest[5:13]),
			Txs:      int(binary.BigEndian.Uint32(rest[13:17])),
		}
		size := int(binary.BigEndian.Uint32(rest[17:21]))
		rest = rest[batchHeaderSize:]
		if len(rest) < size {
			return nil, fmt.Errorf("%w: truncated data at batch %d", ErrCorrupt, i)
		}
		b.Data = append([]byte(nil), rest[:size]...)
		rest = rest[size:]
		out = append(out, b)
	}
	return out, nil
}

// Throughput summarizes a packed blob in layer-2 terms.
type Throughput struct {
	Batches int
	Txs     int
	Bytes   int
}

// Summarize computes throughput figures for packed batches.
func Summarize(batches []*Batch) Throughput {
	t := Throughput{Batches: len(batches)}
	for _, b := range batches {
		t.Txs += b.Txs
		t.Bytes += b.WireSize()
	}
	return t
}

package rs

import (
	"math/rand"
	"testing"
)

// Paper geometry for the GF(2^16) codec: each row/column codeword of the
// extended matrix has K=256 data shards extended to 512, with 512 B
// cells.
const (
	benchK16    = 256
	benchN16    = 512
	benchShard  = 512
	benchGF8K   = 128
	benchGF8N   = 256
	benchGF8Srd = 512
)

func benchShards16(b *testing.B, c *Codec16, size int) [][]byte {
	b.Helper()
	rng := rand.New(rand.NewSource(7))
	shards := make([][]byte, c.TotalShards())
	for i := 0; i < c.DataShards(); i++ {
		shards[i] = make([]byte, size)
		rng.Read(shards[i])
	}
	return shards
}

// BenchmarkEncode16 measures Codec16.Encode at paper geometry
// (K=256 -> 512, 512 B shards): the additive-FFT path. Throughput is
// relative to the data bytes encoded.
func BenchmarkEncode16(b *testing.B) {
	c, err := New16(benchK16, benchN16)
	if err != nil {
		b.Fatal(err)
	}
	shards := benchShards16(b, c, benchShard)
	b.SetBytes(int64(benchK16 * benchShard))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Encode(shards); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEncode16Matrix measures the dense matrix fallback at a
// non-power-of-two k close to paper scale, the path Reconstruct shares.
func BenchmarkEncode16Matrix(b *testing.B) {
	c, err := New16(benchK16-6, benchN16-12)
	if err != nil {
		b.Fatal(err)
	}
	shards := benchShards16(b, c, benchShard)
	b.SetBytes(int64((benchK16 - 6) * benchShard))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Encode(shards); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVerify16 measures parity verification at paper geometry.
func BenchmarkVerify16(b *testing.B) {
	c, err := New16(benchK16, benchN16)
	if err != nil {
		b.Fatal(err)
	}
	shards := benchShards16(b, c, benchShard)
	if err := c.Encode(shards); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(benchK16 * benchShard))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ok, err := c.Verify(shards)
		if err != nil || !ok {
			b.Fatalf("Verify = %v %v", ok, err)
		}
	}
}

// BenchmarkReconstruct16Warm measures reconstruction of half the shards
// with a RECURRING loss pattern, the common case under churn: the decode
// matrix comes from the LRU after the first iteration.
func BenchmarkReconstruct16Warm(b *testing.B) {
	benchReconstruct16(b, false)
}

// BenchmarkReconstruct16Cold shifts the loss pattern every iteration so
// every decode matrix is a cache miss (full Gauss-Jordan inversion).
func BenchmarkReconstruct16Cold(b *testing.B) {
	benchReconstruct16(b, true)
}

func benchReconstruct16(b *testing.B, shift bool) {
	c, err := New16(benchK16, benchN16)
	if err != nil {
		b.Fatal(err)
	}
	master := benchShards16(b, c, benchShard)
	if err := c.Encode(master); err != nil {
		b.Fatal(err)
	}
	shards := make([][]byte, benchN16)
	b.SetBytes(int64(benchK16 * benchShard))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		off := 0
		if shift {
			off = i % benchK16
		}
		for j := range shards {
			shards[j] = nil
		}
		// Keep every other shard, rotated by off: half data and half
		// parity missing.
		for j := 0; j < benchK16; j++ {
			pos := (2*j + off) % benchN16
			shards[pos] = master[pos]
		}
		if err := c.Reconstruct(shards); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEncode8 measures the GF(2^8) codec at its maximum geometry
// (128 -> 256 shards of 512 B).
func BenchmarkEncode8(b *testing.B) {
	c, err := New(benchGF8K, benchGF8N)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	shards := make([][]byte, benchGF8N)
	for i := 0; i < benchGF8K; i++ {
		shards[i] = make([]byte, benchGF8Srd)
		rng.Read(shards[i])
	}
	b.SetBytes(int64(benchGF8K * benchGF8Srd))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Encode(shards); err != nil {
			b.Fatal(err)
		}
	}
}

package rs

import (
	"math/bits"

	"pandas/internal/gf65536"
)

// Additive-FFT encode path (Lin–Chung–Han style) for Codec16.
//
// The codec's generator matrix is the normalized Vandermonde construction:
// data shard j is the value of a degree-<k polynomial p at the field
// element j, and parity shard i is p(i) for i in [k, n). When k is a power
// of two, the data points {0..k-1} form a GF(2)-linear subspace
// W_h = span{x^0..x^{h-1}} (h = log2 k) and every aligned k-block of
// parity points {ck..ck+k-1} is a coset ck + W_h. Interpolation on W_h
// and evaluation on a coset are then additive FFTs in the novel
// polynomial basis of LCH14: O(k log k) shard operations instead of the
// O(k^2) of the matrix product, while producing bit-identical parity —
// the polynomial through k points of degree < k is unique, so any
// evaluation algorithm yields the same bytes as the matrix path.
//
// Construction. s_i is the subspace polynomial vanishing on W_i:
//
//	s_0(x) = x,   s_{i+1}(x) = s_i(x)^2 + s_i(v_i)·s_i(x),  v_i = x^i
//
// (s_i is GF(2)-linearized, so s_i(a+b) = s_i(a)+s_i(b)). The normalized
// polynomial is ŝ_i = s_i / s_i(v_i), which satisfies ŝ_i(v_i) = 1 and
// vanishes on W_i. The novel basis is X_j = Π ŝ_i^{j_i} over the binary
// digits j_i of j. A length-2^h transform at coset offset β runs h
// butterfly stages; the butterfly of stage s on the pair (u, v) separated
// by 2^s uses the per-block twiddle t = ŝ_s(β + base), where base is the
// block's starting index:
//
//	FFT  (coeffs → values):  u ^= t·v ; v ^= u
//	IFFT (values → coeffs):  v ^= u   ; u ^= t·v
//
// The recursion offsets differ by exactly ŝ_s(v_s) = 1 between block
// halves, which is what the normalization buys.
type fftPlan struct {
	k, h int
	// ifftTab[s][b] is the split-multiplication table of the stage-s,
	// block-b twiddle of the inverse transform at offset 0; nil marks a
	// zero twiddle (the multiply is skipped).
	ifftTab [][]*gf65536.MulTable16
	// fftTab[c] holds the same schedule for the forward transform at
	// coset offset (c+1)*k, i.e. the parity block of shards
	// [(c+1)k, (c+2)k).
	fftTab [][][]*gf65536.MulTable16
	// sHat[s][b] = ŝ_s(x^b); by linearity ŝ_s(y) is the XOR of the
	// entries at y's set bits.
	sHat [][16]uint16
}

// newFFTPlan builds the twiddle schedule for k data shards (k a power of
// two, k >= 2) and n total shards.
func newFFTPlan(k, n int) *fftPlan {
	h := bits.TrailingZeros(uint(k))
	p := &fftPlan{k: k, h: h}

	// Subspace polynomial images s_i(x^b) by the linearized recursion.
	var s [16]uint16
	for b := 0; b < 16; b++ {
		s[b] = 1 << b
	}
	p.sHat = make([][16]uint16, h)
	for i := 0; i < h; i++ {
		inv := gf65536.Inv(s[i]) // s_i(v_i) != 0 since v_i is outside W_i
		for b := 0; b < 16; b++ {
			p.sHat[i][b] = gf65536.Mul(s[b], inv)
		}
		si := s[i]
		for b := 0; b < 16; b++ {
			s[b] = gf65536.Add(gf65536.Mul(s[b], s[b]), gf65536.Mul(si, s[b]))
		}
	}

	p.ifftTab = p.schedule(0)
	cosets := (n + k - 1) / k // aligned k-blocks covering [k, n)
	p.fftTab = make([][][]*gf65536.MulTable16, cosets-1)
	for c := 1; c < cosets; c++ {
		p.fftTab[c-1] = p.schedule(uint(c * k))
	}
	return p
}

// sHatAt evaluates ŝ_s at y using GF(2)-linearity over y's bits.
func (p *fftPlan) sHatAt(s int, y uint) uint16 {
	var out uint16
	for b := y; b != 0; b &= b - 1 {
		out ^= p.sHat[s][bits.TrailingZeros(b)]
	}
	return out
}

// schedule precomputes the per-stage, per-block twiddle tables of a
// length-k transform at coset offset beta.
func (p *fftPlan) schedule(beta uint) [][]*gf65536.MulTable16 {
	tabs := make([][]*gf65536.MulTable16, p.h)
	for s := 0; s < p.h; s++ {
		blocks := p.k >> (s + 1)
		tabs[s] = make([]*gf65536.MulTable16, blocks)
		for b := 0; b < blocks; b++ {
			t := p.sHatAt(s, beta^uint(b<<(s+1)))
			if t != 0 {
				tabs[s][b] = gf65536.TableFor(t)
			}
		}
	}
	return tabs
}

// ifftShards transforms sh[0..k) in place from values on W_h to
// novel-basis coefficients. All shards must be equally sized.
func (p *fftPlan) ifftShards(sh [][]byte) {
	for s := 0; s < p.h; s++ {
		step := 1 << s
		tabs := p.ifftTab[s]
		for base := 0; base < p.k; base += 2 * step {
			t := tabs[base>>(s+1)]
			for i := base; i < base+step; i++ {
				u, v := sh[i], sh[i+step]
				gf65536.AddBytes(u, v) // v ^= u
				if t != nil {
					t.MulAdd(v, u) // u ^= t*v
				}
			}
		}
	}
}

// fftShards transforms sh[0..k) in place from novel-basis coefficients
// to values on the coset whose twiddle schedule is tabs.
func (p *fftPlan) fftShards(sh [][]byte, tabs [][]*gf65536.MulTable16) {
	for s := p.h - 1; s >= 0; s-- {
		step := 1 << s
		st := tabs[s]
		for base := 0; base < p.k; base += 2 * step {
			t := st[base>>(s+1)]
			for i := base; i < base+step; i++ {
				u, v := sh[i], sh[i+step]
				if t != nil {
					t.MulAdd(v, u) // u ^= t*v
				}
				gf65536.AddBytes(u, v) // v ^= u
			}
		}
	}
}

package rs

import (
	"math/bits"

	"pandas/internal/gf65536"
)

// Additive-FFT encode path (Lin–Chung–Han style) for Codec16.
//
// The codec's generator matrix is the normalized Vandermonde construction:
// data shard j is the value of a degree-<k polynomial p at the field
// element j, and parity shard i is p(i) for i in [k, n). When k is a power
// of two, the data points {0..k-1} form a GF(2)-linear subspace
// W_h = span{x^0..x^{h-1}} (h = log2 k) and every aligned k-block of
// parity points {ck..ck+k-1} is a coset ck + W_h. Interpolation on W_h
// and evaluation on a coset are then additive FFTs in the novel
// polynomial basis of LCH14: O(k log k) shard operations instead of the
// O(k^2) of the matrix product, while producing bit-identical parity —
// the polynomial through k points of degree < k is unique, so any
// evaluation algorithm yields the same bytes as the matrix path.
//
// Construction. s_i is the subspace polynomial vanishing on W_i:
//
//	s_0(x) = x,   s_{i+1}(x) = s_i(x)^2 + s_i(v_i)·s_i(x),  v_i = x^i
//
// (s_i is GF(2)-linearized, so s_i(a+b) = s_i(a)+s_i(b)). The normalized
// polynomial is ŝ_i = s_i / s_i(v_i), which satisfies ŝ_i(v_i) = 1 and
// vanishes on W_i. The novel basis is X_j = Π ŝ_i^{j_i} over the binary
// digits j_i of j. A length-2^h transform at coset offset β runs h
// butterfly stages; the butterfly of stage s on the pair (u, v) separated
// by 2^s uses the per-block twiddle t = ŝ_s(β + base), where base is the
// block's starting index:
//
//	FFT  (coeffs → values):  u ^= t·v ; v ^= u
//	IFFT (values → coeffs):  v ^= u   ; u ^= t·v
//
// The recursion offsets differ by exactly ŝ_s(v_s) = 1 between block
// halves, which is what the normalization buys.
type fftPlan struct {
	k, h int
	// ifftTab[s][b] is the split-multiplication table of the stage-s,
	// block-b twiddle of the inverse transform at offset 0; nil marks a
	// zero twiddle (the multiply is skipped).
	ifftTab [][]*gf65536.MulTable16
	// fftTab[c] holds the same schedule for the forward transform at
	// coset offset (c+1)*k, i.e. the parity block of shards
	// [(c+1)k, (c+2)k).
	fftTab [][][]*gf65536.MulTable16
	// sHat[s][b] = ŝ_s(x^b); by linearity ŝ_s(y) is the XOR of the
	// entries at y's set bits.
	sHat [][16]uint16
}

// newFFTPlan builds the twiddle schedule for k data shards (k a power of
// two, k >= 2) and n total shards.
func newFFTPlan(k, n int) *fftPlan {
	h := bits.TrailingZeros(uint(k))
	p := &fftPlan{k: k, h: h}

	// Subspace polynomial images s_i(x^b) by the linearized recursion.
	var s [16]uint16
	for b := 0; b < 16; b++ {
		s[b] = 1 << b
	}
	p.sHat = make([][16]uint16, h)
	for i := 0; i < h; i++ {
		inv := gf65536.Inv(s[i]) // s_i(v_i) != 0 since v_i is outside W_i
		for b := 0; b < 16; b++ {
			p.sHat[i][b] = gf65536.Mul(s[b], inv)
		}
		si := s[i]
		for b := 0; b < 16; b++ {
			s[b] = gf65536.Add(gf65536.Mul(s[b], s[b]), gf65536.Mul(si, s[b]))
		}
	}

	p.ifftTab = p.schedule(0)
	cosets := (n + k - 1) / k // aligned k-blocks covering [k, n)
	p.fftTab = make([][][]*gf65536.MulTable16, cosets-1)
	for c := 1; c < cosets; c++ {
		p.fftTab[c-1] = p.schedule(uint(c * k))
	}
	return p
}

// sHatAt evaluates ŝ_s at y using GF(2)-linearity over y's bits.
func (p *fftPlan) sHatAt(s int, y uint) uint16 {
	var out uint16
	for b := y; b != 0; b &= b - 1 {
		out ^= p.sHat[s][bits.TrailingZeros(b)]
	}
	return out
}

// schedule precomputes the per-stage, per-block twiddle tables of a
// length-k transform at coset offset beta.
func (p *fftPlan) schedule(beta uint) [][]*gf65536.MulTable16 {
	tabs := make([][]*gf65536.MulTable16, p.h)
	for s := 0; s < p.h; s++ {
		blocks := p.k >> (s + 1)
		tabs[s] = make([]*gf65536.MulTable16, blocks)
		for b := 0; b < blocks; b++ {
			t := p.sHatAt(s, beta^uint(b<<(s+1)))
			if t != 0 {
				tabs[s][b] = gf65536.TableFor(t)
			}
		}
	}
	return tabs
}

// ifftShards transforms sh[0..k) in place from values on W_h to
// novel-basis coefficients. All shards must be equally sized.
//
// Both transforms run depth-first over aligned sub-blocks instead of
// stage-by-stage over the whole codeword: a size-m block finishes all
// its log2(m) stages while its shards are still cache-resident, so a
// codeword larger than L2 is swept O(1) times instead of once per
// stage (the stage-order walk made large encodes memory-bound). The
// butterflies within a block commute within a stage and depend only on
// earlier stages of the same block, so the reordering is bit-identical
// to the stage-order schedule — pinned by the FFT-vs-matrix tests.
func (p *fftPlan) ifftShards(sh [][]byte) {
	p.ifftRec(sh, nil, 0, p.k)
}

// ifftFrom is ifftShards with the input read from src: shard i is
// copied from src[i] into dst[i] at the recursion leaf, immediately
// before its first butterfly reads it, so the load rides the same
// cache residency as the transform instead of costing a separate
// whole-codeword sweep. dst is otherwise treated as uninitialized.
func (p *fftPlan) ifftFrom(dst, src [][]byte) {
	p.ifftRec(dst, src, 0, p.k)
}

func (p *fftPlan) ifftRec(sh, src [][]byte, base, m int) {
	if m == 1 {
		if src != nil {
			copy(sh[base], src[base])
		}
		return
	}
	half := m >> 1
	p.ifftRec(sh, src, base, half)
	p.ifftRec(sh, src, base+half, half)
	s := bits.TrailingZeros(uint(half)) // top stage of this block
	t := p.ifftTab[s][base>>(s+1)]
	for i := base; i < base+half; i++ {
		gf65536.InvButterfly(t, sh[i], sh[i+half]) // v ^= u ; u ^= t*v
	}
}

// fftShards transforms sh[0..k) in place from novel-basis coefficients
// to values on the coset whose twiddle schedule is tabs. Same
// depth-first blocking as ifftShards, with the stage order reversed:
// a block's top stage runs first, then its halves recurse.
func (p *fftPlan) fftShards(sh [][]byte, tabs [][]*gf65536.MulTable16) {
	p.fftRec(sh, tabs, 0, p.k)
}

func (p *fftPlan) fftRec(sh [][]byte, tabs [][]*gf65536.MulTable16, base, m int) {
	if m == 1 {
		return
	}
	half := m >> 1
	s := bits.TrailingZeros(uint(half))
	t := tabs[s][base>>(s+1)]
	for i := base; i < base+half; i++ {
		gf65536.FwdButterfly(t, sh[i], sh[i+half]) // u ^= t*v ; v ^= u
	}
	p.fftRec(sh, tabs, base, half)
	p.fftRec(sh, tabs, base+half, half)
}

package rs

import (
	"errors"
	"fmt"

	"pandas/internal/gf256"
)

// ErrSingular is returned when a matrix that must be invertible is not.
var ErrSingular = errors.New("rs: matrix is singular")

// matrix is a dense row-major matrix over GF(2^8).
type matrix struct {
	rows, cols int
	data       []byte // len rows*cols
}

func newMatrix(rows, cols int) matrix {
	return matrix{rows: rows, cols: cols, data: make([]byte, rows*cols)}
}

func (m matrix) at(r, c int) byte     { return m.data[r*m.cols+c] }
func (m matrix) set(r, c int, v byte) { m.data[r*m.cols+c] = v }
func (m matrix) row(r int) []byte     { return m.data[r*m.cols : (r+1)*m.cols] }
func (m matrix) String() string       { return fmt.Sprintf("matrix(%dx%d)", m.rows, m.cols) }

// identity returns the n-by-n identity matrix.
func identity(n int) matrix {
	m := newMatrix(n, n)
	for i := 0; i < n; i++ {
		m.set(i, i, 1)
	}
	return m
}

// vandermonde returns the rows-by-cols matrix with entry (r, c) equal to
// r^c, using distinct field elements per row so any cols rows are linearly
// independent.
func vandermonde(rows, cols int) matrix {
	m := newMatrix(rows, cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			m.set(r, c, gf256.Pow(byte(r), c))
		}
	}
	return m
}

// mul returns m * other.
func (m matrix) mul(other matrix) matrix {
	if m.cols != other.rows {
		panic("rs: matrix dimension mismatch")
	}
	out := newMatrix(m.rows, other.cols)
	for r := 0; r < m.rows; r++ {
		for k := 0; k < m.cols; k++ {
			a := m.at(r, k)
			if a == 0 {
				continue
			}
			gf256.MulAddSlice(a, other.row(k), out.row(r))
		}
	}
	return out
}

// subMatrix returns the matrix restricted to rows [rmin, rmax) and
// columns [cmin, cmax), as a copy.
func (m matrix) subMatrix(rmin, rmax, cmin, cmax int) matrix {
	out := newMatrix(rmax-rmin, cmax-cmin)
	for r := rmin; r < rmax; r++ {
		for c := cmin; c < cmax; c++ {
			out.set(r-rmin, c-cmin, m.at(r, c))
		}
	}
	return out
}

// invert returns the inverse of a square matrix using Gauss-Jordan
// elimination, or ErrSingular.
func (m matrix) invert() (matrix, error) {
	if m.rows != m.cols {
		panic("rs: cannot invert non-square matrix")
	}
	n := m.rows
	// Work on [m | I] and reduce the left half to I.
	work := newMatrix(n, 2*n)
	for r := 0; r < n; r++ {
		copy(work.row(r)[:n], m.row(r))
		work.set(r, n+r, 1)
	}
	for col := 0; col < n; col++ {
		// Find pivot.
		pivot := -1
		for r := col; r < n; r++ {
			if work.at(r, col) != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			return matrix{}, ErrSingular
		}
		if pivot != col {
			pr, cr := work.row(pivot), work.row(col)
			for i := range pr {
				pr[i], cr[i] = cr[i], pr[i]
			}
		}
		// Scale pivot row to make the pivot 1.
		if pv := work.at(col, col); pv != 1 {
			inv := gf256.Inv(pv)
			gf256.MulSlice(inv, work.row(col), work.row(col))
		}
		// Eliminate the column from all other rows.
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			if f := work.at(r, col); f != 0 {
				gf256.MulAddSlice(f, work.row(col), work.row(r))
			}
		}
	}
	out := newMatrix(n, n)
	for r := 0; r < n; r++ {
		copy(out.row(r), work.row(r)[n:])
	}
	return out, nil
}

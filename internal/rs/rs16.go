package rs

import (
	"bytes"
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"

	"pandas/internal/gf65536"
)

// MaxShards16 caps the total shard count of a Codec16 (distinct GF(2^16)
// evaluation points).
const MaxShards16 = 65536

// Codec16 is a systematic Reed-Solomon codec over GF(2^16), supporting up
// to 65536 total shards. Shard contents are interpreted as big-endian
// 16-bit words, so shard sizes must be even. This is the codec used for
// the 256->512 row/column extension of the PANDAS blob matrix.
//
// The public API is unchanged from the naive implementation, but the hot
// paths are not: when k is a power of two, Encode and Verify run the
// additive-FFT evaluation of rs16_fft.go (O(k log k) shard operations,
// bit-identical output); all remaining matrix products run on cached
// split-multiplication tables with four-source fused accumulation; and
// Reconstruct keeps an LRU of inverted decode matrices keyed by the
// chosen-shard bitmask so recurring loss patterns skip Gauss-Jordan.
//
// A Codec16 is logically immutable and safe for concurrent use; the
// internal caches are synchronized.
type Codec16 struct {
	k, n   int
	encode matrix16 // n x k, top k rows identity

	fft *fftPlan // non-nil when k is a power of two >= 2

	// rowTab lazily caches the split-multiplication tables of each
	// encode-matrix row, so Encode/Reconstruct/Verify on the matrix path
	// never rebuild per-coefficient tables.
	rowTab []atomic.Pointer[[]*gf65536.MulTable16]

	dec     *decodeCache // inverted decode matrices by loss pattern
	scratch scratchPool  // shard workspaces for Verify and encodeFFT
	hdrs    scratchPool  // shard-header ([][]byte) workspaces, size 0
}

// scratchPool hands out slices of reusable shard-sized buffers.
type scratchPool struct{ p sync.Pool }

func (sp *scratchPool) get(count, size int) [][]byte {
	bufs, _ := sp.p.Get().([][]byte)
	if cap(bufs) < count {
		bufs = make([][]byte, count)
	}
	bufs = bufs[:count]
	for i := range bufs {
		if cap(bufs[i]) < size {
			bufs[i] = make([]byte, size)
		} else {
			bufs[i] = bufs[i][:size]
		}
	}
	return bufs
}

func (sp *scratchPool) put(bufs [][]byte) { sp.p.Put(bufs) } //nolint:staticcheck // slice header boxing is fine here

// matrix16 is a dense row-major matrix over GF(2^16).
type matrix16 struct {
	rows, cols int
	data       []uint16
}

func newMatrix16(rows, cols int) matrix16 {
	return matrix16{rows: rows, cols: cols, data: make([]uint16, rows*cols)}
}

func (m matrix16) at(r, c int) uint16     { return m.data[r*m.cols+c] }
func (m matrix16) set(r, c int, v uint16) { m.data[r*m.cols+c] = v }
func (m matrix16) row(r int) []uint16     { return m.data[r*m.cols : (r+1)*m.cols] }

func (m matrix16) mul(other matrix16) matrix16 {
	if m.cols != other.rows {
		panic("rs: matrix16 dimension mismatch")
	}
	out := newMatrix16(m.rows, other.cols)
	for r := 0; r < m.rows; r++ {
		for k := 0; k < m.cols; k++ {
			a := m.at(r, k)
			if a == 0 {
				continue
			}
			gf65536.MulAddSlice(a, other.row(k), out.row(r))
		}
	}
	return out
}

func (m matrix16) subMatrix(rmin, rmax, cmin, cmax int) matrix16 {
	out := newMatrix16(rmax-rmin, cmax-cmin)
	for r := rmin; r < rmax; r++ {
		for c := cmin; c < cmax; c++ {
			out.set(r-rmin, c-cmin, m.at(r, c))
		}
	}
	return out
}

func (m matrix16) invert() (matrix16, error) {
	if m.rows != m.cols {
		panic("rs: cannot invert non-square matrix16")
	}
	n := m.rows
	work := newMatrix16(n, 2*n)
	for r := 0; r < n; r++ {
		copy(work.row(r)[:n], m.row(r))
		work.set(r, n+r, 1)
	}
	for col := 0; col < n; col++ {
		pivot := -1
		for r := col; r < n; r++ {
			if work.at(r, col) != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			return matrix16{}, ErrSingular
		}
		if pivot != col {
			pr, cr := work.row(pivot), work.row(col)
			for i := range pr {
				pr[i], cr[i] = cr[i], pr[i]
			}
		}
		if pv := work.at(col, col); pv != 1 {
			inv := gf65536.Inv(pv)
			gf65536.MulSlice(inv, work.row(col), work.row(col))
		}
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			if f := work.at(r, col); f != 0 {
				gf65536.MulAddSlice(f, work.row(col), work.row(r))
			}
		}
	}
	out := newMatrix16(n, n)
	for r := 0; r < n; r++ {
		copy(out.row(r), work.row(r)[n:])
	}
	return out, nil
}

func vandermonde16(rows, cols int) matrix16 {
	m := newMatrix16(rows, cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			m.set(r, c, gf65536.Pow(uint16(r), c))
		}
	}
	return m
}

// New16 creates a GF(2^16) codec with k data shards and n total shards.
// Requires 1 <= k < n <= MaxShards16.
func New16(k, n int) (*Codec16, error) {
	if k < 1 || n <= k || n > MaxShards16 {
		return nil, fmt.Errorf("%w: k=%d n=%d", ErrInvalidParams, k, n)
	}
	v := vandermonde16(n, k)
	top := v.subMatrix(0, k, 0, k)
	topInv, err := top.invert()
	if err != nil {
		return nil, fmt.Errorf("rs: vandermonde16 top block: %w", err)
	}
	c := &Codec16{
		k:      k,
		n:      n,
		encode: v.mul(topInv),
		rowTab: make([]atomic.Pointer[[]*gf65536.MulTable16], n),
		dec:    newDecodeCache(decodeCacheSize),
	}
	if k >= 2 && bits.OnesCount(uint(k)) == 1 {
		c.fft = newFFTPlan(k, n)
	}
	return c, nil
}

// rowTables returns the cached split-multiplication tables of
// encode-matrix row i, building them on first use.
func (c *Codec16) rowTables(i int) []*gf65536.MulTable16 {
	if t := c.rowTab[i].Load(); t != nil {
		return *t
	}
	row := c.encode.row(i)
	tabs := make([]*gf65536.MulTable16, len(row))
	for j, v := range row {
		tabs[j] = gf65536.TableFor(v)
	}
	c.rowTab[i].CompareAndSwap(nil, &tabs)
	return *c.rowTab[i].Load()
}

// mulRowInto sets dst = sum_j tabs[j]*srcs[j], overwriting dst. The first
// source is an overwriting multiply (no clearing pass) and the remainder
// accumulate eight (then four, two) sources per dst pass, dividing the
// dst read-modify-write traffic of the naive loop by the fan-in.
func mulRowInto(tabs []*gf65536.MulTable16, srcs [][]byte, dst []byte) {
	tabs[0].Mul(srcs[0], dst)
	j := 1
	for ; j+8 <= len(srcs); j += 8 {
		gf65536.MulAdd8(tabs[j], tabs[j+1], tabs[j+2], tabs[j+3],
			tabs[j+4], tabs[j+5], tabs[j+6], tabs[j+7],
			srcs[j], srcs[j+1], srcs[j+2], srcs[j+3],
			srcs[j+4], srcs[j+5], srcs[j+6], srcs[j+7], dst)
	}
	for ; j+4 <= len(srcs); j += 4 {
		gf65536.MulAdd4(tabs[j], tabs[j+1], tabs[j+2], tabs[j+3],
			srcs[j], srcs[j+1], srcs[j+2], srcs[j+3], dst)
	}
	if j+2 <= len(srcs) {
		gf65536.MulAdd2(tabs[j], tabs[j+1], srcs[j], srcs[j+1], dst)
		j += 2
	}
	for ; j < len(srcs); j++ {
		tabs[j].MulAdd(srcs[j], dst)
	}
}

// DataShards returns k.
func (c *Codec16) DataShards() int { return c.k }

// TotalShards returns n.
func (c *Codec16) TotalShards() int { return c.n }

// ParityShards returns n - k.
func (c *Codec16) ParityShards() int { return c.n - c.k }

// Encode computes parity shards n-k..n-1 from data shards 0..k-1.
// All data shards must be non-nil, equally sized, and of even length.
// Existing parity slices are reused when their capacity suffices.
func (c *Codec16) Encode(shards [][]byte) error {
	if len(shards) != c.n {
		return fmt.Errorf("%w: got %d, want %d", ErrShardCount, len(shards), c.n)
	}
	size, err := checkEvenShards(shards[:c.k])
	if err != nil {
		return err
	}
	for i := c.k; i < c.n; i++ {
		if cap(shards[i]) >= size {
			shards[i] = shards[i][:size]
		} else {
			shards[i] = make([]byte, size)
		}
	}
	if c.fft != nil {
		c.encodeFFT(shards, size)
		return nil
	}
	for i := c.k; i < c.n; i++ {
		mulRowInto(c.rowTables(i), shards[:c.k], shards[i])
	}
	return nil
}

// encodeFFT fills the parity shards by interpolating the data on W_h
// (inverse FFT) and evaluating on each parity coset (forward FFT). Every
// write fully overwrites its destination, so reused parity buffers need
// no clearing.
func (c *Codec16) encodeFFT(shards [][]byte, size int) {
	k := c.k
	if c.n == 2*k {
		// The workspace is the parity half itself: the inverse transform
		// reads the data shards directly (copying each at its recursion
		// leaf), then the forward transform evaluates on the coset — the
		// values land exactly where they belong, with zero extra buffers
		// and no separate copy sweep.
		w := shards[k:]
		c.fft.ifftFrom(w, shards[:k])
		c.fft.fftShards(w, c.fft.fftTab[0])
		return
	}
	coeffs := c.scratch.get(k, size)
	defer c.scratch.put(coeffs)
	c.fft.ifftFrom(coeffs, shards[:k])
	vals := c.scratch.get(k, size)
	defer c.scratch.put(vals)
	for ci := range c.fft.fftTab {
		for j := range vals {
			copy(vals[j], coeffs[j])
		}
		c.fft.fftShards(vals, c.fft.fftTab[ci])
		lo := (ci + 1) * k
		for j := 0; j < k && lo+j < c.n; j++ {
			copy(shards[lo+j], vals[j])
		}
	}
}

// Reconstruct fills in nil shards in place given at least k present shards.
func (c *Codec16) Reconstruct(shards [][]byte) error {
	if len(shards) != c.n {
		return fmt.Errorf("%w: got %d, want %d", ErrShardCount, len(shards), c.n)
	}
	present := make([]int, 0, c.k)
	size := -1
	for i, s := range shards {
		if s == nil {
			continue
		}
		if size == -1 {
			size = len(s)
		} else if len(s) != size {
			return fmt.Errorf("%w: shard %d has %d bytes, want %d", ErrShardSize, i, len(s), size)
		}
		present = append(present, i)
	}
	if size > 0 && size%2 != 0 {
		return fmt.Errorf("%w: odd shard size %d", ErrShardSize, size)
	}
	if len(present) < c.k {
		return fmt.Errorf("%w: have %d, need %d", ErrTooFewShards, len(present), c.k)
	}
	if len(present) == c.n {
		return nil
	}
	chosen := present[:c.k]
	dec, err := c.decodeMatrixFor(chosen)
	if err != nil {
		return err
	}
	// Recover missing data shards from the chosen present shards. The
	// source-shard set is the same for every row, so gather it (and a
	// reusable table slice) once.
	srcs := make([][]byte, c.k)
	for r, idx := range chosen {
		srcs[r] = shards[idx]
	}
	tabs := make([]*gf65536.MulTable16, c.k)
	missingParity := 0
	for i := c.k; i < c.n; i++ {
		if shards[i] == nil {
			missingParity++
		}
	}
	for j := 0; j < c.k; j++ {
		if shards[j] != nil {
			continue
		}
		out := make([]byte, size)
		row := dec.row(j)
		for r, v := range row {
			tabs[r] = gf65536.TableFor(v)
		}
		mulRowInto(tabs, srcs, out)
		shards[j] = out
	}
	if missingParity == 0 {
		return nil
	}
	// Regenerate missing parity from the (now complete) data. When many
	// parity shards are gone and the FFT path exists, recomputing ALL
	// parity costs O(k log k) shard ops versus O(k) per matrix row, so
	// switch over past ~2 log2(k) missing shards.
	if c.fft != nil && missingParity > 2*c.fft.h {
		full := c.scratch.get(c.n-c.k, size)
		defer c.scratch.put(full)
		tmp := c.hdrs.get(c.n, 0)
		defer c.hdrs.put(tmp)
		copy(tmp, shards[:c.k])
		for i := c.k; i < c.n; i++ {
			tmp[i] = full[i-c.k]
		}
		c.encodeFFT(tmp, size)
		for i := c.k; i < c.n; i++ {
			if shards[i] == nil {
				shards[i] = append([]byte(nil), tmp[i]...)
			}
		}
		return nil
	}
	for i := c.k; i < c.n; i++ {
		if shards[i] != nil {
			continue
		}
		out := make([]byte, size)
		mulRowInto(c.rowTables(i), shards[:c.k], out)
		shards[i] = out
	}
	return nil
}

// decodeMatrixFor returns the inverted decode matrix for the chosen
// present-shard set, consulting the loss-pattern LRU first.
func (c *Codec16) decodeMatrixFor(chosen []int) (matrix16, error) {
	key := chosenKey(chosen, c.n)
	if dec, ok := c.dec.get(key); ok {
		return dec, nil
	}
	sub := newMatrix16(c.k, c.k)
	for r, idx := range chosen {
		copy(sub.row(r), c.encode.row(idx))
	}
	dec, err := sub.invert()
	if err != nil {
		return matrix16{}, fmt.Errorf("rs: decode matrix16: %w", err)
	}
	c.dec.put(key, dec)
	return dec, nil
}

// Verify checks parity consistency; all shards must be present.
func (c *Codec16) Verify(shards [][]byte) (bool, error) {
	if len(shards) != c.n {
		return false, fmt.Errorf("%w: got %d, want %d", ErrShardCount, len(shards), c.n)
	}
	size := -1
	for i, s := range shards {
		if s == nil {
			return false, fmt.Errorf("%w: shard %d is missing", ErrShardCount, i)
		}
		if size == -1 {
			size = len(s)
		} else if len(s) != size {
			return false, ErrShardSize
		}
	}
	if size%2 != 0 {
		return false, fmt.Errorf("%w: odd shard size %d", ErrShardSize, size)
	}
	if c.fft != nil {
		// Recompute all parity via the FFT path into pooled scratch and
		// compare — the same O(k log k) cost as Encode.
		tmp := c.scratch.get(c.n-c.k, size)
		defer c.scratch.put(tmp)
		shadow := c.hdrs.get(c.n, 0)
		defer c.hdrs.put(shadow)
		copy(shadow, shards[:c.k])
		for i := c.k; i < c.n; i++ {
			shadow[i] = tmp[i-c.k]
		}
		c.encodeFFT(shadow, size)
		for i := c.k; i < c.n; i++ {
			if !bytes.Equal(shadow[i], shards[i]) {
				return false, nil
			}
		}
		return true, nil
	}
	buf := c.scratch.get(1, size)
	defer c.scratch.put(buf)
	for i := c.k; i < c.n; i++ {
		mulRowInto(c.rowTables(i), shards[:c.k], buf[0])
		if !bytes.Equal(buf[0], shards[i]) {
			return false, nil
		}
	}
	return true, nil
}

func checkEvenShards(data [][]byte) (int, error) {
	size := -1
	for i, s := range data {
		if s == nil {
			return 0, fmt.Errorf("%w: data shard %d is nil", ErrShardCount, i)
		}
		if size == -1 {
			size = len(s)
		} else if len(s) != size {
			return 0, fmt.Errorf("%w: shard %d has %d bytes, want %d", ErrShardSize, i, len(s), size)
		}
	}
	if size == 0 {
		return 0, fmt.Errorf("%w: empty shards", ErrShardSize)
	}
	if size%2 != 0 {
		return 0, fmt.Errorf("%w: odd shard size %d (GF(2^16) needs 16-bit words)", ErrShardSize, size)
	}
	return size, nil
}

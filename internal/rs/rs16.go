package rs

import (
	"fmt"

	"pandas/internal/gf65536"
)

// MaxShards16 caps the total shard count of a Codec16 (distinct GF(2^16)
// evaluation points).
const MaxShards16 = 65536

// Codec16 is a systematic Reed-Solomon codec over GF(2^16), supporting up
// to 65536 total shards. Shard contents are interpreted as big-endian
// 16-bit words, so shard sizes must be even. This is the codec used for
// the 256->512 row/column extension of the PANDAS blob matrix.
//
// A Codec16 is immutable and safe for concurrent use.
type Codec16 struct {
	k, n   int
	encode matrix16 // n x k, top k rows identity
}

// matrix16 is a dense row-major matrix over GF(2^16).
type matrix16 struct {
	rows, cols int
	data       []uint16
}

func newMatrix16(rows, cols int) matrix16 {
	return matrix16{rows: rows, cols: cols, data: make([]uint16, rows*cols)}
}

func (m matrix16) at(r, c int) uint16     { return m.data[r*m.cols+c] }
func (m matrix16) set(r, c int, v uint16) { m.data[r*m.cols+c] = v }
func (m matrix16) row(r int) []uint16     { return m.data[r*m.cols : (r+1)*m.cols] }

func (m matrix16) mul(other matrix16) matrix16 {
	if m.cols != other.rows {
		panic("rs: matrix16 dimension mismatch")
	}
	out := newMatrix16(m.rows, other.cols)
	for r := 0; r < m.rows; r++ {
		for k := 0; k < m.cols; k++ {
			a := m.at(r, k)
			if a == 0 {
				continue
			}
			gf65536.MulAddSlice(a, other.row(k), out.row(r))
		}
	}
	return out
}

func (m matrix16) subMatrix(rmin, rmax, cmin, cmax int) matrix16 {
	out := newMatrix16(rmax-rmin, cmax-cmin)
	for r := rmin; r < rmax; r++ {
		for c := cmin; c < cmax; c++ {
			out.set(r-rmin, c-cmin, m.at(r, c))
		}
	}
	return out
}

func (m matrix16) invert() (matrix16, error) {
	if m.rows != m.cols {
		panic("rs: cannot invert non-square matrix16")
	}
	n := m.rows
	work := newMatrix16(n, 2*n)
	for r := 0; r < n; r++ {
		copy(work.row(r)[:n], m.row(r))
		work.set(r, n+r, 1)
	}
	for col := 0; col < n; col++ {
		pivot := -1
		for r := col; r < n; r++ {
			if work.at(r, col) != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			return matrix16{}, ErrSingular
		}
		if pivot != col {
			pr, cr := work.row(pivot), work.row(col)
			for i := range pr {
				pr[i], cr[i] = cr[i], pr[i]
			}
		}
		if pv := work.at(col, col); pv != 1 {
			inv := gf65536.Inv(pv)
			gf65536.MulSlice(inv, work.row(col), work.row(col))
		}
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			if f := work.at(r, col); f != 0 {
				gf65536.MulAddSlice(f, work.row(col), work.row(r))
			}
		}
	}
	out := newMatrix16(n, n)
	for r := 0; r < n; r++ {
		copy(out.row(r), work.row(r)[n:])
	}
	return out, nil
}

func vandermonde16(rows, cols int) matrix16 {
	m := newMatrix16(rows, cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			m.set(r, c, gf65536.Pow(uint16(r), c))
		}
	}
	return m
}

// New16 creates a GF(2^16) codec with k data shards and n total shards.
// Requires 1 <= k < n <= MaxShards16.
func New16(k, n int) (*Codec16, error) {
	if k < 1 || n <= k || n > MaxShards16 {
		return nil, fmt.Errorf("%w: k=%d n=%d", ErrInvalidParams, k, n)
	}
	v := vandermonde16(n, k)
	top := v.subMatrix(0, k, 0, k)
	topInv, err := top.invert()
	if err != nil {
		return nil, fmt.Errorf("rs: vandermonde16 top block: %w", err)
	}
	return &Codec16{k: k, n: n, encode: v.mul(topInv)}, nil
}

// DataShards returns k.
func (c *Codec16) DataShards() int { return c.k }

// TotalShards returns n.
func (c *Codec16) TotalShards() int { return c.n }

// ParityShards returns n - k.
func (c *Codec16) ParityShards() int { return c.n - c.k }

// Encode computes parity shards n-k..n-1 from data shards 0..k-1.
// All data shards must be non-nil, equally sized, and of even length.
func (c *Codec16) Encode(shards [][]byte) error {
	if len(shards) != c.n {
		return fmt.Errorf("%w: got %d, want %d", ErrShardCount, len(shards), c.n)
	}
	size, err := checkEvenShards(shards[:c.k])
	if err != nil {
		return err
	}
	for i := c.k; i < c.n; i++ {
		if len(shards[i]) != size {
			shards[i] = make([]byte, size)
		} else {
			clear(shards[i])
		}
		row := c.encode.row(i)
		for j := 0; j < c.k; j++ {
			gf65536.MulAddBytes(row[j], shards[j], shards[i])
		}
	}
	return nil
}

// Reconstruct fills in nil shards in place given at least k present shards.
func (c *Codec16) Reconstruct(shards [][]byte) error {
	if len(shards) != c.n {
		return fmt.Errorf("%w: got %d, want %d", ErrShardCount, len(shards), c.n)
	}
	present := make([]int, 0, c.k)
	size := -1
	for i, s := range shards {
		if s == nil {
			continue
		}
		if size == -1 {
			size = len(s)
		} else if len(s) != size {
			return fmt.Errorf("%w: shard %d has %d bytes, want %d", ErrShardSize, i, len(s), size)
		}
		present = append(present, i)
	}
	if size > 0 && size%2 != 0 {
		return fmt.Errorf("%w: odd shard size %d", ErrShardSize, size)
	}
	if len(present) < c.k {
		return fmt.Errorf("%w: have %d, need %d", ErrTooFewShards, len(present), c.k)
	}
	if len(present) == c.n {
		return nil
	}
	chosen := present[:c.k]
	sub := newMatrix16(c.k, c.k)
	for r, idx := range chosen {
		copy(sub.row(r), c.encode.row(idx))
	}
	dec, err := sub.invert()
	if err != nil {
		return fmt.Errorf("rs: decode matrix16: %w", err)
	}
	for j := 0; j < c.k; j++ {
		if shards[j] != nil {
			continue
		}
		out := make([]byte, size)
		row := dec.row(j)
		for r, idx := range chosen {
			gf65536.MulAddBytes(row[r], shards[idx], out)
		}
		shards[j] = out
	}
	for i := c.k; i < c.n; i++ {
		if shards[i] != nil {
			continue
		}
		out := make([]byte, size)
		row := c.encode.row(i)
		for j := 0; j < c.k; j++ {
			gf65536.MulAddBytes(row[j], shards[j], out)
		}
		shards[i] = out
	}
	return nil
}

// Verify checks parity consistency; all shards must be present.
func (c *Codec16) Verify(shards [][]byte) (bool, error) {
	if len(shards) != c.n {
		return false, fmt.Errorf("%w: got %d, want %d", ErrShardCount, len(shards), c.n)
	}
	size := -1
	for i, s := range shards {
		if s == nil {
			return false, fmt.Errorf("%w: shard %d is missing", ErrShardCount, i)
		}
		if size == -1 {
			size = len(s)
		} else if len(s) != size {
			return false, ErrShardSize
		}
	}
	buf := make([]byte, size)
	for i := c.k; i < c.n; i++ {
		clear(buf)
		row := c.encode.row(i)
		for j := 0; j < c.k; j++ {
			gf65536.MulAddBytes(row[j], shards[j], buf)
		}
		for b := range buf {
			if buf[b] != shards[i][b] {
				return false, nil
			}
		}
	}
	return true, nil
}

func checkEvenShards(data [][]byte) (int, error) {
	size := -1
	for i, s := range data {
		if s == nil {
			return 0, fmt.Errorf("%w: data shard %d is nil", ErrShardCount, i)
		}
		if size == -1 {
			size = len(s)
		} else if len(s) != size {
			return 0, fmt.Errorf("%w: shard %d has %d bytes, want %d", ErrShardSize, i, len(s), size)
		}
	}
	if size == 0 {
		return 0, fmt.Errorf("%w: empty shards", ErrShardSize)
	}
	if size%2 != 0 {
		return 0, fmt.Errorf("%w: odd shard size %d (GF(2^16) needs 16-bit words)", ErrShardSize, size)
	}
	return size, nil
}

package rs

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func mustCodec16(t testing.TB, k, n int) *Codec16 {
	t.Helper()
	c, err := New16(k, n)
	if err != nil {
		t.Fatalf("New16(%d, %d): %v", k, n, err)
	}
	return c
}

func TestNew16RejectsBadParams(t *testing.T) {
	for _, c := range []struct{ k, n int }{{0, 4}, {4, 4}, {5, 4}, {1, 65537}} {
		if _, err := New16(c.k, c.n); !errors.Is(err, ErrInvalidParams) {
			t.Errorf("New16(%d,%d) err = %v", c.k, c.n, err)
		}
	}
}

func TestCodec16Systematic(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	c := mustCodec16(t, 4, 8)
	shards := randShards(rng, 4, 8, 64)
	orig := make([][]byte, 4)
	for i := range orig {
		orig[i] = append([]byte(nil), shards[i]...)
	}
	if err := c.Encode(shards); err != nil {
		t.Fatal(err)
	}
	for i := range orig {
		if !bytes.Equal(shards[i], orig[i]) {
			t.Fatalf("data shard %d modified", i)
		}
	}
	ok, err := c.Verify(shards)
	if err != nil || !ok {
		t.Fatalf("Verify = %v %v", ok, err)
	}
}

func TestCodec16RejectsOddShardSize(t *testing.T) {
	c := mustCodec16(t, 2, 4)
	shards := [][]byte{make([]byte, 7), make([]byte, 7), nil, nil}
	if err := c.Encode(shards); !errors.Is(err, ErrShardSize) {
		t.Fatalf("err = %v, want ErrShardSize", err)
	}
}

func TestCodec16ReconstructBeyond256Shards(t *testing.T) {
	// The whole point of GF(2^16): more than 256 total shards, like the
	// paper's 256 -> 512 row extension. Use a scaled-down-but-over-256
	// configuration to keep runtime low.
	const k, n, size = 150, 300, 8
	rng := rand.New(rand.NewSource(21))
	c := mustCodec16(t, k, n)
	master := randShards(rng, k, n, size)
	if err := c.Encode(master); err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 3; trial++ {
		shards := make([][]byte, n)
		perm := rng.Perm(n)
		for _, i := range perm[:k] {
			shards[i] = append([]byte(nil), master[i]...)
		}
		if err := c.Reconstruct(shards); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i := range master {
			if !bytes.Equal(shards[i], master[i]) {
				t.Fatalf("trial %d: shard %d mismatch", trial, i)
			}
		}
	}
}

func TestCodec16ReconstructParityOnlySurvivors(t *testing.T) {
	// Recover everything from parity shards alone (rate 1/2: any k works,
	// including the k parity shards).
	const k, n, size = 8, 16, 32
	rng := rand.New(rand.NewSource(22))
	c := mustCodec16(t, k, n)
	master := randShards(rng, k, n, size)
	if err := c.Encode(master); err != nil {
		t.Fatal(err)
	}
	shards := make([][]byte, n)
	for i := k; i < n; i++ {
		shards[i] = append([]byte(nil), master[i]...)
	}
	if err := c.Reconstruct(shards); err != nil {
		t.Fatal(err)
	}
	for i := range master {
		if !bytes.Equal(shards[i], master[i]) {
			t.Fatalf("shard %d mismatch", i)
		}
	}
}

func TestCodec16TooFewShards(t *testing.T) {
	c := mustCodec16(t, 4, 8)
	shards := make([][]byte, 8)
	shards[0] = make([]byte, 4)
	shards[1] = make([]byte, 4)
	if err := c.Reconstruct(shards); !errors.Is(err, ErrTooFewShards) {
		t.Fatalf("err = %v, want ErrTooFewShards", err)
	}
}

func TestCodec16VerifyDetectsCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	c := mustCodec16(t, 4, 8)
	shards := randShards(rng, 4, 8, 16)
	if err := c.Encode(shards); err != nil {
		t.Fatal(err)
	}
	shards[6][0] ^= 0x80
	ok, err := c.Verify(shards)
	if err != nil || ok {
		t.Fatalf("Verify = %v %v, want false nil", ok, err)
	}
}

func TestQuick16RoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := 1 + r.Intn(6)
		n := k + 1 + r.Intn(6)
		size := 2 * (1 + r.Intn(16))
		c, err := New16(k, n)
		if err != nil {
			return false
		}
		shards := randShards(r, k, n, size)
		if err := c.Encode(shards); err != nil {
			return false
		}
		master := make([][]byte, n)
		for i := range shards {
			master[i] = append([]byte(nil), shards[i]...)
		}
		perm := r.Perm(n)
		for _, i := range perm[k:] {
			shards[i] = nil
		}
		if err := c.Reconstruct(shards); err != nil {
			return false
		}
		for i := range master {
			if !bytes.Equal(master[i], shards[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEncode16Row32(b *testing.B) {
	// A scaled-down PANDAS row: 32 data cells -> 64, 512-byte cells.
	rng := rand.New(rand.NewSource(25))
	c := mustCodec16(b, 32, 64)
	shards := randShards(rng, 32, 64, 512)
	b.SetBytes(32 * 512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Encode(shards); err != nil {
			b.Fatal(err)
		}
	}
}

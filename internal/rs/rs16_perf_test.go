package rs

import (
	"bytes"
	"math/rand"
	"testing"
)

// TestEncode16FFTMatchesMatrix pins the additive-FFT encode to the
// systematic Vandermonde matrix product: for power-of-two k both paths
// must produce bit-identical parity, at n == 2k (in-place fast path) and
// at n != 2k (multi-coset + partial-coset path).
func TestEncode16FFTMatchesMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	for _, tc := range []struct{ k, n int }{
		{2, 4}, {4, 8}, {8, 16}, {16, 32}, // rate-1/2 fast path
		{4, 6}, {8, 21}, {16, 40}, // general coset path
	} {
		fftC := mustCodec16(t, tc.k, tc.n)
		if fftC.fft == nil {
			t.Fatalf("k=%d: expected FFT plan", tc.k)
		}
		matC := mustCodec16(t, tc.k, tc.n)
		matC.fft = nil // force the matrix path

		a := randShards(rng, tc.k, tc.n, 64)
		b := make([][]byte, tc.n)
		for i := 0; i < tc.k; i++ {
			b[i] = append([]byte(nil), a[i]...)
		}
		if err := fftC.Encode(a); err != nil {
			t.Fatalf("k=%d n=%d fft encode: %v", tc.k, tc.n, err)
		}
		if err := matC.Encode(b); err != nil {
			t.Fatalf("k=%d n=%d matrix encode: %v", tc.k, tc.n, err)
		}
		for i := range a {
			if !bytes.Equal(a[i], b[i]) {
				t.Fatalf("k=%d n=%d shard %d: FFT and matrix encodes differ", tc.k, tc.n, i)
			}
		}
	}
}

// TestEncode16ReusesParityCapacity checks that Encode writes into
// caller-provided parity buffers instead of reallocating.
func TestEncode16ReusesParityCapacity(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	c := mustCodec16(t, 4, 8)
	shards := randShards(rng, 4, 8, 32)
	for i := 4; i < 8; i++ {
		shards[i] = make([]byte, 0, 64) // ample capacity, zero length
	}
	before := make([]*byte, 8)
	for i := 4; i < 8; i++ {
		before[i] = &shards[i][:1][0]
	}
	if err := c.Encode(shards); err != nil {
		t.Fatal(err)
	}
	for i := 4; i < 8; i++ {
		if len(shards[i]) != 32 {
			t.Fatalf("parity %d resized to %d, want 32", i, len(shards[i]))
		}
		if &shards[i][0] != before[i] {
			t.Fatalf("parity %d was reallocated despite sufficient capacity", i)
		}
	}
	if ok, err := c.Verify(shards); err != nil || !ok {
		t.Fatalf("Verify = %v %v", ok, err)
	}
}

// TestReconstruct16DecodeCache checks that the decode-matrix LRU caches
// by loss pattern: repeating a pattern adds no entry, a new pattern does,
// and cached reconstructions stay correct.
func TestReconstruct16DecodeCache(t *testing.T) {
	const k, n, size = 8, 16, 32
	rng := rand.New(rand.NewSource(42))
	c := mustCodec16(t, k, n)
	master := randShards(rng, k, n, size)
	if err := c.Encode(master); err != nil {
		t.Fatal(err)
	}
	lose := func(missing ...int) [][]byte {
		shards := make([][]byte, n)
		gone := make(map[int]bool, len(missing))
		for _, i := range missing {
			gone[i] = true
		}
		for i := range master {
			if !gone[i] {
				shards[i] = append([]byte(nil), master[i]...)
			}
		}
		return shards
	}
	check := func(shards [][]byte) {
		t.Helper()
		if err := c.Reconstruct(shards); err != nil {
			t.Fatal(err)
		}
		for i := range master {
			if !bytes.Equal(shards[i], master[i]) {
				t.Fatalf("shard %d mismatch after cached reconstruct", i)
			}
		}
	}
	check(lose(0, 3, 5))
	if got := c.dec.len(); got != 1 {
		t.Fatalf("cache size after first pattern = %d, want 1", got)
	}
	check(lose(0, 3, 5)) // same pattern: hit, no growth
	if got := c.dec.len(); got != 1 {
		t.Fatalf("cache size after repeat = %d, want 1", got)
	}
	check(lose(1, 2)) // new pattern: miss, one more entry
	if got := c.dec.len(); got != 2 {
		t.Fatalf("cache size after second pattern = %d, want 2", got)
	}
}

// TestReconstruct16FFTParityRegen forces the bulk-parity FFT regeneration
// branch (many missing parity shards) and checks bit-exact recovery.
func TestReconstruct16FFTParityRegen(t *testing.T) {
	const k, n, size = 16, 32, 64
	rng := rand.New(rand.NewSource(43))
	c := mustCodec16(t, k, n)
	master := randShards(rng, k, n, size)
	if err := c.Encode(master); err != nil {
		t.Fatal(err)
	}
	// All parity missing (16 > 2*log2(16) = 8 triggers the FFT branch).
	shards := make([][]byte, n)
	for i := 0; i < k; i++ {
		shards[i] = append([]byte(nil), master[i]...)
	}
	if err := c.Reconstruct(shards); err != nil {
		t.Fatal(err)
	}
	for i := range master {
		if !bytes.Equal(shards[i], master[i]) {
			t.Fatalf("shard %d mismatch after FFT parity regeneration", i)
		}
	}
}

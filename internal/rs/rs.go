// Package rs implements a systematic Reed-Solomon erasure code over
// GF(2^8).
//
// A Codec splits data into k shards and produces n-k parity shards such
// that the original data can be reconstructed from ANY k of the n shards.
// PANDAS uses rate-1/2 codes (n = 2k) per row and per column of the blob
// matrix: each 256-cell row extends to 512 cells and survives the loss of
// any half of them.
//
// The construction is the classic systematic Vandermonde code: an n-by-k
// Vandermonde matrix is normalized (multiplied by the inverse of its top
// k-by-k block) so the first k rows form the identity. Encoding is then a
// matrix-vector product per byte position; decoding gathers any k surviving
// rows of the encode matrix, inverts, and re-multiplies.
package rs

import (
	"bytes"
	"errors"
	"fmt"

	"pandas/internal/gf256"
)

// Limits on code parameters. GF(2^8) Vandermonde rows must be distinct
// field elements, capping total shards at 256.
const (
	MaxShards = 256
)

// Errors returned by the codec.
var (
	ErrInvalidParams = errors.New("rs: invalid codec parameters")
	ErrTooFewShards  = errors.New("rs: not enough shards to reconstruct")
	ErrShardSize     = errors.New("rs: shards have inconsistent sizes")
	ErrShardCount    = errors.New("rs: wrong number of shards")
)

// Codec encodes k data shards into n total shards and reconstructs from
// any k of them. A Codec is logically immutable and safe for concurrent
// use; the internal scratch pool is synchronized.
type Codec struct {
	k, n    int
	encode  matrix      // n x k; top k rows are the identity
	scratch scratchPool // reusable Verify comparison buffers
}

// New creates a codec with k data shards and n total shards
// (n-k parity shards). Requires 1 <= k < n <= MaxShards.
func New(k, n int) (*Codec, error) {
	if k < 1 || n <= k || n > MaxShards {
		return nil, fmt.Errorf("%w: k=%d n=%d", ErrInvalidParams, k, n)
	}
	v := vandermonde(n, k)
	top := v.subMatrix(0, k, 0, k)
	topInv, err := top.invert()
	if err != nil {
		return nil, fmt.Errorf("rs: vandermonde top block: %w", err)
	}
	return &Codec{k: k, n: n, encode: v.mul(topInv)}, nil
}

// DataShards returns k, the number of data shards.
func (c *Codec) DataShards() int { return c.k }

// TotalShards returns n, the total number of shards.
func (c *Codec) TotalShards() int { return c.n }

// ParityShards returns n - k.
func (c *Codec) ParityShards() int { return c.n - c.k }

// Encode computes the n-k parity shards from the k data shards.
// shards must have length n; the first k entries hold the data and must
// be non-nil slices of equal length. The remaining n-k entries are
// overwritten (allocated if nil or mis-sized).
func (c *Codec) Encode(shards [][]byte) error {
	if len(shards) != c.n {
		return fmt.Errorf("%w: got %d, want %d", ErrShardCount, len(shards), c.n)
	}
	size, err := c.checkDataShards(shards[:c.k])
	if err != nil {
		return err
	}
	for i := c.k; i < c.n; i++ {
		if cap(shards[i]) >= size {
			shards[i] = shards[i][:size]
		} else {
			shards[i] = make([]byte, size)
		}
		mulRowInto8(c.encode.row(i), shards[:c.k], shards[i])
	}
	return nil
}

// mulRowInto8 sets dst = sum_j row[j]*srcs[j] over GF(2^8), overwriting
// dst (the first term is an overwriting multiply, so reused buffers need
// no clearing pass).
func mulRowInto8(row []byte, srcs [][]byte, dst []byte) {
	gf256.MulSlice(row[0], srcs[0], dst)
	for j := 1; j < len(srcs); j++ {
		gf256.MulAddSlice(row[j], srcs[j], dst)
	}
}

// Reconstruct fills in missing shards (nil entries) in place. shards must
// have length n; at least k entries must be present. Both data and parity
// shards are regenerated.
func (c *Codec) Reconstruct(shards [][]byte) error {
	if len(shards) != c.n {
		return fmt.Errorf("%w: got %d, want %d", ErrShardCount, len(shards), c.n)
	}
	present := make([]int, 0, c.k)
	size := -1
	for i, s := range shards {
		if s == nil {
			continue
		}
		if size == -1 {
			size = len(s)
		} else if len(s) != size {
			return fmt.Errorf("%w: shard %d has %d bytes, want %d", ErrShardSize, i, len(s), size)
		}
		present = append(present, i)
	}
	if len(present) < c.k {
		return fmt.Errorf("%w: have %d, need %d", ErrTooFewShards, len(present), c.k)
	}
	if len(present) == c.n {
		return nil // nothing missing
	}

	// Recover data shards first: take the encode-matrix rows of k present
	// shards, invert, and multiply by the present shard vector.
	chosen := present[:c.k]
	sub := newMatrix(c.k, c.k)
	for r, idx := range chosen {
		copy(sub.row(r), c.encode.row(idx))
	}
	dec, err := sub.invert()
	if err != nil {
		return fmt.Errorf("rs: decode matrix: %w", err)
	}
	// data[j] = sum_r dec[j][r] * shards[chosen[r]]
	for j := 0; j < c.k; j++ {
		if shards[j] != nil {
			continue
		}
		out := make([]byte, size)
		row := dec.row(j)
		for r, idx := range chosen {
			mulAdd(row[r], shards[idx], out)
		}
		shards[j] = out
	}
	// Regenerate missing parity shards from the (now complete) data.
	for i := c.k; i < c.n; i++ {
		if shards[i] != nil {
			continue
		}
		out := make([]byte, size)
		row := c.encode.row(i)
		for j := 0; j < c.k; j++ {
			mulAdd(row[j], shards[j], out)
		}
		shards[i] = out
	}
	return nil
}

// Verify checks that the parity shards are consistent with the data
// shards. All n shards must be present and equally sized.
func (c *Codec) Verify(shards [][]byte) (bool, error) {
	if len(shards) != c.n {
		return false, fmt.Errorf("%w: got %d, want %d", ErrShardCount, len(shards), c.n)
	}
	size := -1
	for i, s := range shards {
		if s == nil {
			return false, fmt.Errorf("%w: shard %d is missing", ErrShardCount, i)
		}
		if size == -1 {
			size = len(s)
		} else if len(s) != size {
			return false, ErrShardSize
		}
	}
	buf := c.scratch.get(1, size)
	defer c.scratch.put(buf)
	for i := c.k; i < c.n; i++ {
		mulRowInto8(c.encode.row(i), shards[:c.k], buf[0])
		if !bytes.Equal(buf[0], shards[i]) {
			return false, nil
		}
	}
	return true, nil
}

func (c *Codec) checkDataShards(data [][]byte) (int, error) {
	size := -1
	for i, s := range data {
		if s == nil {
			return 0, fmt.Errorf("%w: data shard %d is nil", ErrShardCount, i)
		}
		if size == -1 {
			size = len(s)
		} else if len(s) != size {
			return 0, fmt.Errorf("%w: shard %d has %d bytes, want %d", ErrShardSize, i, len(s), size)
		}
	}
	if size == 0 {
		return 0, fmt.Errorf("%w: empty shards", ErrShardSize)
	}
	return size, nil
}

// mulAdd is a thin wrapper so call sites read naturally.
func mulAdd(c byte, src, dst []byte) { gf256.MulAddSlice(c, src, dst) }

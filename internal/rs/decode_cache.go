package rs

import (
	"container/list"
	"sync"
)

// decodeCacheSize bounds the per-codec LRU of inverted decode matrices.
// At the paper geometry an entry is a 256x256 uint16 matrix (128 KiB), so
// the cache tops out at 8 MiB per codec while covering far more loss
// patterns than recur in practice (under churn the same dead custodians
// produce the same pattern all slot).
const decodeCacheSize = 64

// decodeCache is a small mutex-guarded LRU of inverted decode matrices
// keyed by the bitmask of the k shards chosen for reconstruction.
// Recurring loss patterns skip the O(k^3) Gauss-Jordan inversion.
type decodeCache struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*list.Element
	order   *list.List // front = most recently used
}

type decodeCacheEntry struct {
	key string
	dec matrix16
}

func newDecodeCache(capacity int) *decodeCache {
	return &decodeCache{
		cap:     capacity,
		entries: make(map[string]*list.Element, capacity),
		order:   list.New(),
	}
}

// chosenKey packs the chosen shard indices into a bitmask string usable
// as a map key. n is the total shard count of the codec.
func chosenKey(chosen []int, n int) string {
	mask := make([]byte, (n+7)/8)
	for _, idx := range chosen {
		mask[idx>>3] |= 1 << (idx & 7)
	}
	return string(mask)
}

func (dc *decodeCache) get(key string) (matrix16, bool) {
	dc.mu.Lock()
	defer dc.mu.Unlock()
	el, ok := dc.entries[key]
	if !ok {
		return matrix16{}, false
	}
	dc.order.MoveToFront(el)
	return el.Value.(*decodeCacheEntry).dec, true
}

func (dc *decodeCache) put(key string, dec matrix16) {
	dc.mu.Lock()
	defer dc.mu.Unlock()
	if el, ok := dc.entries[key]; ok {
		dc.order.MoveToFront(el)
		return
	}
	dc.entries[key] = dc.order.PushFront(&decodeCacheEntry{key: key, dec: dec})
	for dc.order.Len() > dc.cap {
		el := dc.order.Back()
		dc.order.Remove(el)
		delete(dc.entries, el.Value.(*decodeCacheEntry).key)
	}
}

// len reports the number of cached matrices (for tests).
func (dc *decodeCache) len() int {
	dc.mu.Lock()
	defer dc.mu.Unlock()
	return dc.order.Len()
}

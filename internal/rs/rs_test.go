package rs

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func mustCodec(t testing.TB, k, n int) *Codec {
	t.Helper()
	c, err := New(k, n)
	if err != nil {
		t.Fatalf("New(%d, %d): %v", k, n, err)
	}
	return c
}

func randShards(rng *rand.Rand, k, n, size int) [][]byte {
	shards := make([][]byte, n)
	for i := 0; i < k; i++ {
		shards[i] = make([]byte, size)
		rng.Read(shards[i])
	}
	return shards
}

func TestNewRejectsBadParams(t *testing.T) {
	cases := []struct{ k, n int }{
		{0, 4}, {-1, 4}, {4, 4}, {5, 4}, {1, 257}, {200, 300},
	}
	for _, c := range cases {
		if _, err := New(c.k, c.n); !errors.Is(err, ErrInvalidParams) {
			t.Errorf("New(%d, %d) err = %v, want ErrInvalidParams", c.k, c.n, err)
		}
	}
}

func TestEncodeSystematic(t *testing.T) {
	// The first k shards must be the data, untouched.
	rng := rand.New(rand.NewSource(1))
	c := mustCodec(t, 4, 8)
	shards := randShards(rng, 4, 8, 64)
	orig := make([][]byte, 4)
	for i := range orig {
		orig[i] = append([]byte(nil), shards[i]...)
	}
	if err := c.Encode(shards); err != nil {
		t.Fatal(err)
	}
	for i := range orig {
		if !bytes.Equal(shards[i], orig[i]) {
			t.Fatalf("data shard %d modified by Encode", i)
		}
	}
}

func TestEncodeVerify(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	c := mustCodec(t, 6, 12)
	shards := randShards(rng, 6, 12, 100)
	if err := c.Encode(shards); err != nil {
		t.Fatal(err)
	}
	ok, err := c.Verify(shards)
	if err != nil || !ok {
		t.Fatalf("Verify = %v, %v; want true, nil", ok, err)
	}
	// Corrupt one parity byte: Verify must fail.
	shards[7][3] ^= 1
	ok, err = c.Verify(shards)
	if err != nil || ok {
		t.Fatalf("Verify after corruption = %v, %v; want false, nil", ok, err)
	}
}

func TestReconstructFromAnyK(t *testing.T) {
	// Exhaustively drop every subset of size n-k for a small code.
	const k, n, size = 4, 8, 32
	rng := rand.New(rand.NewSource(3))
	c := mustCodec(t, k, n)
	master := randShards(rng, k, n, size)
	if err := c.Encode(master); err != nil {
		t.Fatal(err)
	}
	// Iterate over all 4-element subsets of [0,8) to erase.
	var erase func(start int, chosen []int)
	erase = func(start int, chosen []int) {
		if len(chosen) == n-k {
			shards := make([][]byte, n)
			for i := range master {
				shards[i] = append([]byte(nil), master[i]...)
			}
			for _, e := range chosen {
				shards[e] = nil
			}
			if err := c.Reconstruct(shards); err != nil {
				t.Fatalf("Reconstruct erased=%v: %v", chosen, err)
			}
			for i := range master {
				if !bytes.Equal(shards[i], master[i]) {
					t.Fatalf("shard %d mismatch after reconstruct (erased %v)", i, chosen)
				}
			}
			return
		}
		for i := start; i < n; i++ {
			erase(i+1, append(chosen, i))
		}
	}
	erase(0, nil)
}

func TestReconstructTooFewShards(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	c := mustCodec(t, 4, 8)
	shards := randShards(rng, 4, 8, 16)
	if err := c.Encode(shards); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ { // keep only 3 < k
		shards[i] = nil
	}
	if err := c.Reconstruct(shards); !errors.Is(err, ErrTooFewShards) {
		t.Fatalf("err = %v, want ErrTooFewShards", err)
	}
}

func TestReconstructNoopWhenComplete(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	c := mustCodec(t, 3, 6)
	shards := randShards(rng, 3, 6, 16)
	if err := c.Encode(shards); err != nil {
		t.Fatal(err)
	}
	before := make([][]byte, len(shards))
	for i := range shards {
		before[i] = append([]byte(nil), shards[i]...)
	}
	if err := c.Reconstruct(shards); err != nil {
		t.Fatal(err)
	}
	for i := range shards {
		if !bytes.Equal(before[i], shards[i]) {
			t.Fatalf("Reconstruct modified complete shard %d", i)
		}
	}
}

func TestShardSizeMismatch(t *testing.T) {
	c := mustCodec(t, 2, 4)
	shards := [][]byte{make([]byte, 8), make([]byte, 9), nil, nil}
	if err := c.Encode(shards); !errors.Is(err, ErrShardSize) {
		t.Fatalf("Encode err = %v, want ErrShardSize", err)
	}
	if err := c.Reconstruct(shards); !errors.Is(err, ErrShardSize) {
		t.Fatalf("Reconstruct err = %v, want ErrShardSize", err)
	}
}

func TestWrongShardCount(t *testing.T) {
	c := mustCodec(t, 2, 4)
	if err := c.Encode(make([][]byte, 3)); !errors.Is(err, ErrShardCount) {
		t.Fatalf("err = %v, want ErrShardCount", err)
	}
	if _, err := c.Verify(make([][]byte, 5)); !errors.Is(err, ErrShardCount) {
		t.Fatalf("err = %v, want ErrShardCount", err)
	}
}

func TestRate12CodeLikePaper(t *testing.T) {
	// The PANDAS row code: 256 data cells -> 512 total, recover from any
	// half. Use small shard size to keep the test fast; erase a random
	// half many times.
	const k, n = 256, 512
	if n > MaxShards {
		// GF(2^8) caps at 256 shards; the paper's 512-wide rows use the
		// same rate-1/2 structure. The production path in package blob
		// composes two half-width codes; here we test at the field's cap.
		t.Skip("512 shards exceed GF(2^8); covered by package blob")
	}
}

func TestHalfRateCode128(t *testing.T) {
	// Rate-1/2 code at the largest size used by blob (k=128, n=256).
	const k, n, size = 128, 256, 8
	rng := rand.New(rand.NewSource(7))
	c := mustCodec(t, k, n)
	master := randShards(rng, k, n, size)
	if err := c.Encode(master); err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 5; trial++ {
		shards := make([][]byte, n)
		perm := rng.Perm(n)
		for _, i := range perm[:k] { // keep exactly k random shards
			shards[i] = append([]byte(nil), master[i]...)
		}
		if err := c.Reconstruct(shards); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i := range master {
			if !bytes.Equal(shards[i], master[i]) {
				t.Fatalf("trial %d: shard %d mismatch", trial, i)
			}
		}
	}
}

func TestQuickEncodeReconstructRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := 1 + r.Intn(8)
		n := k + 1 + r.Intn(8)
		size := 1 + r.Intn(64)
		c, err := New(k, n)
		if err != nil {
			return false
		}
		shards := randShards(r, k, n, size)
		if err := c.Encode(shards); err != nil {
			return false
		}
		master := make([][]byte, n)
		for i := range shards {
			master[i] = append([]byte(nil), shards[i]...)
		}
		// Erase a random set leaving exactly k survivors.
		perm := r.Perm(n)
		for _, i := range perm[k:] {
			shards[i] = nil
		}
		if err := c.Reconstruct(shards); err != nil {
			return false
		}
		for i := range master {
			if !bytes.Equal(master[i], shards[i]) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestMatrixInvertIdentity(t *testing.T) {
	id := identity(5)
	inv, err := id.invert()
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 5; r++ {
		for c := 0; c < 5; c++ {
			want := byte(0)
			if r == c {
				want = 1
			}
			if inv.at(r, c) != want {
				t.Fatalf("inv[%d][%d] = %d", r, c, inv.at(r, c))
			}
		}
	}
}

func TestMatrixInvertSingular(t *testing.T) {
	m := newMatrix(2, 2)
	m.set(0, 0, 1)
	m.set(0, 1, 2)
	m.set(1, 0, 1)
	m.set(1, 1, 2) // identical rows
	if _, err := m.invert(); !errors.Is(err, ErrSingular) {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}

func TestMatrixInvertRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(10)
		m := newMatrix(n, n)
		rng.Read(m.data)
		inv, err := m.invert()
		if errors.Is(err, ErrSingular) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		prod := m.mul(inv)
		for r := 0; r < n; r++ {
			for c := 0; c < n; c++ {
				want := byte(0)
				if r == c {
					want = 1
				}
				if prod.at(r, c) != want {
					t.Fatalf("n=%d: (m*inv)[%d][%d] = %d", n, r, c, prod.at(r, c))
				}
			}
		}
	}
}

func BenchmarkEncode128x256(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	c := mustCodec(b, 128, 256)
	shards := randShards(rng, 128, 256, 512)
	b.SetBytes(128 * 512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Encode(shards); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReconstruct128x256(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	c := mustCodec(b, 128, 256)
	master := randShards(rng, 128, 256, 512)
	if err := c.Encode(master); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(128 * 512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		shards := make([][]byte, 256)
		perm := rng.Perm(256)
		for _, idx := range perm[:128] {
			shards[idx] = master[idx]
		}
		b.StartTimer()
		if err := c.Reconstruct(shards); err != nil {
			b.Fatal(err)
		}
	}
}

package latency

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func TestRegionWeightsSumToOne(t *testing.T) {
	sum := 0.0
	for _, r := range regions {
		sum += r.Weight
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("weights sum to %v", sum)
	}
}

func TestRegionRTTSymmetricAndPositive(t *testing.T) {
	n := len(regionRTTms)
	if n != len(regions) {
		t.Fatalf("matrix size %d != regions %d", n, len(regions))
	}
	for i := 0; i < n; i++ {
		if len(regionRTTms[i]) != n {
			t.Fatalf("row %d has %d entries", i, len(regionRTTms[i]))
		}
		for j := 0; j < n; j++ {
			if regionRTTms[i][j] <= 0 {
				t.Fatalf("non-positive RTT at (%d,%d)", i, j)
			}
			if regionRTTms[i][j] != regionRTTms[j][i] {
				t.Fatalf("asymmetric RTT at (%d,%d)", i, j)
			}
		}
		for j := 0; j < n; j++ {
			if i != j && regionRTTms[i][i] > regionRTTms[i][j] {
				t.Fatalf("intra-region RTT exceeds inter-region at (%d,%d)", i, j)
			}
		}
	}
}

func TestTopologyDeterministic(t *testing.T) {
	t1 := NewIPFSLike(1, 500)
	t2 := NewIPFSLike(1, 500)
	for i := 0; i < 50; i++ {
		for j := 0; j < 50; j += 7 {
			if t1.Delay(i, j) != t2.Delay(i, j) {
				t.Fatalf("delay(%d,%d) differs across same-seed topologies", i, j)
			}
		}
	}
	t3 := NewIPFSLike(2, 500)
	diff := false
	for i := 0; i < 20 && !diff; i++ {
		if t1.Delay(i, i+1) != t3.Delay(i, i+1) {
			diff = true
		}
	}
	if !diff {
		t.Fatal("different seeds produced identical topologies")
	}
}

func TestTopologySymmetricRTT(t *testing.T) {
	tp := NewIPFSLike(3, 200)
	for i := 0; i < 20; i++ {
		for j := 0; j < 20; j++ {
			if tp.RTT(i, j) != tp.RTT(j, i) {
				t.Fatalf("RTT(%d,%d) asymmetric", i, j)
			}
		}
	}
}

func TestTopologyMatchesTraceStatistics(t *testing.T) {
	// The paper's trace: RTT in [8 ms, 438 ms], mean 64 ms. Our synthetic
	// model must land in the same ballpark: mean within [45, 95] ms, min
	// below 20 ms, max within [250, 600] ms.
	tp := NewIPFSLike(42, 10000)
	s := tp.SampleStats(30000, 7)
	if s.Mean < 45*time.Millisecond || s.Mean > 95*time.Millisecond {
		t.Fatalf("mean RTT %v outside [45ms, 95ms]", s.Mean)
	}
	if s.Min > 20*time.Millisecond {
		t.Fatalf("min RTT %v too high", s.Min)
	}
	if s.Max < 250*time.Millisecond || s.Max > 600*time.Millisecond {
		t.Fatalf("max RTT %v outside [250ms, 600ms]", s.Max)
	}
}

func TestDelayIsHalfRTT(t *testing.T) {
	tp := NewIPFSLike(4, 100)
	for i := 0; i < 10; i++ {
		if tp.Delay(i, i+1) != tp.RTT(i, i+1)/2 {
			t.Fatal("Delay != RTT/2")
		}
	}
}

func TestVertexReuseBeyondCount(t *testing.T) {
	tp := NewIPFSLike(5, 100)
	// Node 150 maps to the same vertex as node 50.
	if tp.Delay(150, 7) != tp.Delay(50, 7) {
		t.Fatal("vertex reuse (mod count) broken")
	}
	if tp.NumVertices() != 100 {
		t.Fatalf("NumVertices = %d", tp.NumVertices())
	}
}

func TestBestConnectedIsAboveAverage(t *testing.T) {
	tp := NewIPFSLike(6, 2000)
	best := tp.BestConnected(500, 0.2, 9)
	bestAvg := tp.AvgRTTOf(best, 300, 11)
	// Average over random nodes for comparison.
	var total time.Duration
	const probes = 50
	for i := 0; i < probes; i++ {
		total += tp.AvgRTTOf(i*13%500, 300, 11)
	}
	mean := total / probes
	if bestAvg > mean {
		t.Fatalf("best-connected node (avg %v) is worse than population mean (%v)", bestAvg, mean)
	}
}

func TestRegionOf(t *testing.T) {
	tp := NewIPFSLike(7, 100)
	name := tp.RegionOf(3)
	found := false
	for _, r := range regions {
		if r.Name == name {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("unknown region %q", name)
	}
}

func TestMatrixModel(t *testing.T) {
	m, err := NewMatrix([][]time.Duration{
		{0, 10 * time.Millisecond},
		{10 * time.Millisecond, 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Delay(0, 1) != 10*time.Millisecond {
		t.Fatal("Delay wrong")
	}
	if m.Delay(2, 3) != m.Delay(0, 1) {
		t.Fatal("modulo wrap broken")
	}
	if _, err := NewMatrix(nil); !errors.Is(err, ErrBadMatrix) {
		t.Fatal("empty matrix accepted")
	}
	if _, err := NewMatrix([][]time.Duration{{0}, {0}}); !errors.Is(err, ErrBadMatrix) {
		t.Fatal("ragged matrix accepted")
	}
}

func BenchmarkDelay(b *testing.B) {
	tp := NewIPFSLike(8, 10000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tp.Delay(i%10000, (i*7)%10000)
	}
}

func TestParseCSV(t *testing.T) {
	src := "# comment\n0, 10.5\n10.5, 0\n"
	m, err := ParseCSV(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if m.Delay(0, 1) != 10*time.Millisecond+500*time.Microsecond {
		t.Fatalf("Delay = %v", m.Delay(0, 1))
	}
	if _, err := ParseCSV(strings.NewReader("a,b\nc,d\n")); err == nil {
		t.Fatal("garbage CSV accepted")
	}
	if _, err := ParseCSV(strings.NewReader("0,1\n2\n")); err == nil {
		t.Fatal("ragged CSV accepted")
	}
}

// Package latency provides all-pairs network latency models for the
// simulator.
//
// SUBSTITUTION NOTE (see DESIGN.md §4): the paper emulates WAN conditions
// by replaying the probelab "RFM15" all-pair latency trace collected on
// IPFS — 10,000 vertices with round-trip times ranging from 8 ms to
// 438 ms and an average of 64 ms, with a visible "step" near 64 ms formed
// by well-connected cloud vertices. That trace is not redistributable
// here, so this package generates a synthetic topology calibrated to the
// same summary statistics: nodes are placed in weighted geographic
// regions with realistic inter-region RTTs, per-vertex access jitter, and
// a slow heavy tail of poorly connected vertices. A Matrix model is also
// provided for loading a real trace when one is available.
package latency

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"strconv"
	"strings"
	"time"
)

// Errors returned by this package.
var ErrBadMatrix = errors.New("latency: malformed matrix")

// Region describes a geographic cluster of vertices.
type Region struct {
	Name   string
	Weight float64 // fraction of vertices placed here
}

// regions and the inter-region round-trip base latencies (milliseconds)
// approximate public cloud inter-region measurements. Ordering of rows
// and columns matches the regions slice.
var regions = []Region{
	// Weights are concentrated in the EU/NA hosting clusters, matching the
	// RFM15 observation that most reachable IPFS/Ethereum nodes sit in a
	// small set of datacenter regions; they are calibrated so the overall
	// mean RTT lands near the trace's 64 ms.
	{Name: "eu-west", Weight: 0.55},
	{Name: "na-east", Weight: 0.25},
	{Name: "eu-central", Weight: 0.12},
	{Name: "na-west", Weight: 0.03},
	{Name: "asia-east", Weight: 0.02},
	{Name: "asia-se", Weight: 0.01},
	{Name: "sa-east", Weight: 0.01},
	{Name: "oceania", Weight: 0.01},
}

var regionRTTms = [][]float64{
	//        euw  nae  euc  naw  ase  asse  sae   oc
	{8, 75, 22, 135, 230, 165, 185, 270},    // eu-west
	{75, 10, 90, 65, 180, 220, 115, 200},    // na-east
	{22, 90, 9, 150, 245, 160, 205, 285},    // eu-central
	{135, 65, 150, 10, 115, 170, 175, 140},  // na-west
	{230, 180, 245, 115, 12, 55, 300, 120},  // asia-east
	{165, 220, 160, 170, 55, 14, 320, 95},   // asia-se
	{185, 115, 205, 175, 300, 320, 15, 290}, // sa-east
	{270, 200, 285, 140, 120, 95, 290, 16},  // oceania
}

// Topology is a synthetic all-pairs latency model over a fixed number of
// vertices. Node indices map onto vertices modulo the vertex count, which
// mirrors the paper's handling of >10,000-node simulations ("we reuse
// vertices randomly for the assignment").
type Topology struct {
	vertices []vertex
	perm     []int // random node->vertex indirection
}

type vertex struct {
	region int
	// access is the one-way last-mile delay added on each side.
	access time.Duration
}

// NewIPFSLike builds a synthetic topology with the given number of
// vertices, calibrated to the RFM15 trace statistics. The same seed always
// produces the same topology.
func NewIPFSLike(seed int64, vertices int) *Topology {
	rng := rand.New(rand.NewSource(seed))
	t := &Topology{vertices: make([]vertex, vertices), perm: rng.Perm(vertices)}
	for i := range t.vertices {
		r := sampleRegion(rng)
		// Last-mile access delay: most vertices are well connected
		// (datacenter-like, 1-5 ms one-way); a 5% heavy tail adds up to
		// 60 ms more, reproducing the trace's 438 ms worst-case RTTs.
		access := time.Duration(1+rng.Intn(5)) * time.Millisecond
		if rng.Float64() < 0.05 {
			access += time.Duration(20+rng.Intn(41)) * time.Millisecond
		}
		t.vertices[i] = vertex{region: r, access: access}
	}
	return t
}

func sampleRegion(rng *rand.Rand) int {
	x := rng.Float64()
	acc := 0.0
	for i, r := range regions {
		acc += r.Weight
		if x < acc {
			return i
		}
	}
	return len(regions) - 1
}

// NumVertices returns the number of distinct vertices.
func (t *Topology) NumVertices() int { return len(t.vertices) }

// vertexOf maps a node index onto a vertex.
func (t *Topology) vertexOf(node int) vertex {
	if node < 0 {
		node = -node
	}
	return t.vertices[t.perm[node%len(t.perm)]]
}

// Delay implements simnet.LatencyModel: the ONE-WAY delay between two
// nodes, i.e. half the modeled RTT.
func (t *Topology) Delay(from, to int) time.Duration {
	return t.RTT(from, to) / 2
}

// RTT returns the modeled round-trip time between two nodes.
func (t *Topology) RTT(from, to int) time.Duration {
	a, b := t.vertexOf(from), t.vertexOf(to)
	base := time.Duration(regionRTTms[a.region][b.region] * float64(time.Millisecond))
	return base + a.access + b.access
}

// RegionOf returns the region name a node maps to (for diagnostics).
func (t *Topology) RegionOf(node int) string {
	return regions[t.vertexOf(node).region].Name
}

// AvgRTTOf returns a node's average RTT to a sample of peers; used to
// identify well-connected placements. sample <= 0 averages over all
// vertices.
func (t *Topology) AvgRTTOf(node, sample int, seed int64) time.Duration {
	n := len(t.vertices)
	if sample <= 0 || sample > n {
		sample = n
	}
	rng := rand.New(rand.NewSource(seed))
	var sum time.Duration
	for i := 0; i < sample; i++ {
		peer := rng.Intn(n)
		sum += t.RTT(node, peer)
	}
	return sum / time.Duration(sample)
}

// BestConnected returns a node index whose average RTT ranks within the
// best frac (e.g. 0.2) among count candidate node indices. The paper
// places the builder on a vertex "randomly selected among the 20% with
// the best average latency to all other nodes".
func (t *Topology) BestConnected(count int, frac float64, seed int64) int {
	if count <= 0 {
		return 0
	}
	type cand struct {
		node int
		avg  time.Duration
	}
	cands := make([]cand, count)
	for i := 0; i < count; i++ {
		cands[i] = cand{node: i, avg: t.AvgRTTOf(i, 200, seed+int64(i))}
	}
	// Partial selection sort of the best fraction, then pick randomly.
	k := int(float64(count) * frac)
	if k < 1 {
		k = 1
	}
	for i := 0; i < k; i++ {
		minIdx := i
		for j := i + 1; j < count; j++ {
			if cands[j].avg < cands[minIdx].avg {
				minIdx = j
			}
		}
		cands[i], cands[minIdx] = cands[minIdx], cands[i]
	}
	rng := rand.New(rand.NewSource(seed))
	return cands[rng.Intn(k)].node
}

// Stats summarizes the RTT distribution over a random sample of pairs.
type Stats struct {
	Min, Max, Mean time.Duration
}

// SampleStats estimates min/max/mean RTT over pairs random vertex pairs.
func (t *Topology) SampleStats(pairs int, seed int64) Stats {
	rng := rand.New(rand.NewSource(seed))
	n := len(t.vertices)
	var s Stats
	s.Min = time.Hour
	var sum time.Duration
	for i := 0; i < pairs; i++ {
		a, b := rng.Intn(n), rng.Intn(n)
		for b == a {
			b = rng.Intn(n)
		}
		rtt := t.RTT(a, b)
		if rtt < s.Min {
			s.Min = rtt
		}
		if rtt > s.Max {
			s.Max = rtt
		}
		sum += rtt
	}
	s.Mean = sum / time.Duration(pairs)
	return s
}

// Matrix is a latency model backed by an explicit all-pairs ONE-WAY delay
// matrix, for loading real traces.
type Matrix struct {
	delays [][]time.Duration
}

// NewMatrix validates and wraps a square delay matrix.
func NewMatrix(delays [][]time.Duration) (*Matrix, error) {
	n := len(delays)
	if n == 0 {
		return nil, fmt.Errorf("%w: empty", ErrBadMatrix)
	}
	for i, row := range delays {
		if len(row) != n {
			return nil, fmt.Errorf("%w: row %d has %d entries, want %d", ErrBadMatrix, i, len(row), n)
		}
	}
	return &Matrix{delays: delays}, nil
}

// Delay implements simnet.LatencyModel; node indices wrap modulo the
// matrix size.
func (m *Matrix) Delay(from, to int) time.Duration {
	n := len(m.delays)
	return m.delays[abs(from)%n][abs(to)%n]
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// ParseCSV builds a Matrix model from CSV text containing a square matrix
// of one-way delays in MILLISECONDS (floats). This is the loading path
// for a real all-pairs trace (such as the probelab RFM15 data the paper
// replays) when one is available.
func ParseCSV(r io.Reader) (*Matrix, error) {
	var delays [][]time.Duration
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		var row []time.Duration
		for _, field := range strings.Split(line, ",") {
			ms, err := strconv.ParseFloat(strings.TrimSpace(field), 64)
			if err != nil {
				return nil, fmt.Errorf("%w: %v", ErrBadMatrix, err)
			}
			row = append(row, time.Duration(ms*float64(time.Millisecond)))
		}
		delays = append(delays, row)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadMatrix, err)
	}
	return NewMatrix(delays)
}

package membership

import (
	"math/rand"
	"time"
)

// Dynamic-membership defaults.
const (
	// DefaultRefreshInterval is the period of DHT-crawl view refresh.
	// Real crawls take about a minute (§4.1); half a slot keeps views
	// usefully fresh at simulation scale without flooding the event
	// queue.
	DefaultRefreshInterval = 6 * time.Second
	// DefaultRefreshFanout is the number of random-target lookups per
	// refresh crawl.
	DefaultRefreshFanout = 2
)

// Clock is the scheduling substrate (the simulator's event clock).
type Clock interface {
	Now() time.Duration
	After(d time.Duration, fn func())
}

// FlashEvent is a burst of simultaneous lifecycle transitions: a flash
// crowd (Join nodes come online) and/or a flash exit (Leave nodes go
// offline) at a fixed virtual time.
type FlashEvent struct {
	// At is the virtual time of the burst, measured from engine start.
	At time.Duration
	// Join is the number of offline nodes brought online.
	Join int
	// Leave is the number of online nodes taken offline.
	Leave int
	// Crash marks the departures as crashes (unannounced) rather than
	// graceful leaves.
	Crash bool
}

// Config describes the dynamic-membership model: the churn processes the
// Engine schedules plus the view-maintenance knobs the cluster wires up.
// The zero value is inactive (static membership).
type Config struct {
	// MeanSession is the expected online duration before a node departs
	// (sessions are exponential). Zero disables spontaneous departures.
	MeanSession time.Duration
	// MeanDowntime is the expected offline duration before a departed
	// node restarts (exponential). Zero keeps departed nodes offline.
	MeanDowntime time.Duration
	// JoinRate is the Poisson rate (events/second) at which members of
	// the initial offline pool come online for the first time. Restarts
	// after downtime are governed by MeanDowntime instead.
	JoinRate float64
	// CrashFraction is the probability that a departure is a crash (no
	// announcement, stale state left behind) rather than a graceful
	// leave.
	CrashFraction float64
	// InitialOfflineFraction of nodes start offline, forming the pool
	// that JoinRate and flash crowds draw fresh joiners from.
	InitialOfflineFraction float64
	// Flash lists scheduled burst events.
	Flash []FlashEvent

	// RefreshInterval is the per-node period of DHT-crawl view refresh;
	// zero selects DefaultRefreshInterval, negative disables refresh.
	RefreshInterval time.Duration
	// RefreshFanout is the crawl fanout; zero selects
	// DefaultRefreshFanout.
	RefreshFanout int
	// Scorer parameterizes peer-liveness scoring.
	Scorer ScorerConfig
}

// Active reports whether the configuration produces any membership
// dynamics at all. An inactive config is equivalent to nil: the cluster
// takes the static-membership fast path, which is what makes a zero-rate
// churn sweep bit-identical to the paper's Fig. 15 runs.
func (c *Config) Active() bool {
	if c == nil {
		return false
	}
	return c.MeanSession > 0 || c.JoinRate > 0 || c.InitialOfflineFraction > 0 || len(c.Flash) > 0
}

// Stats counts lifecycle events the engine has executed.
type Stats struct {
	Joins    int // pool nodes coming online for the first time
	Restarts int // departed nodes coming back
	Leaves   int // graceful departures
	Crashes  int // unannounced departures
}

// Minus returns the event counts accumulated since prev.
func (s Stats) Minus(prev Stats) Stats {
	return Stats{
		Joins:    s.Joins - prev.Joins,
		Restarts: s.Restarts - prev.Restarts,
		Leaves:   s.Leaves - prev.Leaves,
		Crashes:  s.Crashes - prev.Crashes,
	}
}

// Hooks are the engine's effect callbacks, invoked on the event clock.
type Hooks struct {
	// OnJoin fires when a node comes online; restart distinguishes a
	// returning node (stale local state) from a first-time joiner.
	OnJoin func(node int, restart bool)
	// OnLeave fires when a node goes offline; crash distinguishes an
	// unannounced failure from a graceful leave.
	OnLeave func(node int, crash bool)
}

// indexSet is a deterministic set over node indices with O(1) random
// selection (map iteration order would break reproducibility).
type indexSet struct {
	items []int
	pos   map[int]int
}

func newIndexSet() *indexSet { return &indexSet{pos: make(map[int]int)} }

func (s *indexSet) add(v int) {
	if _, ok := s.pos[v]; ok {
		return
	}
	s.pos[v] = len(s.items)
	s.items = append(s.items, v)
}

func (s *indexSet) remove(v int) {
	i, ok := s.pos[v]
	if !ok {
		return
	}
	last := len(s.items) - 1
	s.items[i] = s.items[last]
	s.pos[s.items[i]] = i
	s.items = s.items[:last]
	delete(s.pos, v)
}

func (s *indexSet) has(v int) bool { _, ok := s.pos[v]; return ok }
func (s *indexSet) len() int       { return len(s.items) }

func (s *indexSet) random(rng *rand.Rand) (int, bool) {
	if len(s.items) == 0 {
		return 0, false
	}
	return s.items[rng.Intn(len(s.items))], true
}

// Engine schedules node lifecycle events over a fixed population of n
// nodes on the event clock. It owns the online/offline state machine and
// invokes Hooks for the effects (marking simulator nodes dead, resetting
// protocol state, gossiping announcements); it knows nothing about the
// protocol itself. All randomness comes from its own seeded generator,
// so enabling churn does not perturb the cluster's other random choices.
type Engine struct {
	cfg      Config
	clock    Clock
	rng      *rand.Rand
	hooks    Hooks
	online   *indexSet
	offline  *indexSet
	pool     *indexSet // initial-offline nodes that never joined
	excluded map[int]bool
	started  bool
	stats    Stats
}

// NewEngine creates a churn engine over nodes 0..n-1.
func NewEngine(cfg Config, clock Clock, rng *rand.Rand, n int, hooks Hooks) *Engine {
	e := &Engine{
		cfg:      cfg,
		clock:    clock,
		rng:      rng,
		hooks:    hooks,
		online:   newIndexSet(),
		offline:  newIndexSet(),
		pool:     newIndexSet(),
		excluded: make(map[int]bool),
	}
	for i := 0; i < n; i++ {
		e.online.add(i)
	}
	return e
}

// Exclude removes nodes from churn management (e.g. nodes pinned dead by
// a separate fault model); they stay in whatever state they are in. Must
// be called before Start.
func (e *Engine) Exclude(nodes ...int) {
	for _, v := range nodes {
		e.excluded[v] = true
		e.online.remove(v)
		e.offline.remove(v)
		e.pool.remove(v)
	}
}

// Start draws the initial offline pool and schedules every churn
// process. Call exactly once, before the simulation runs.
func (e *Engine) Start() {
	if e.started {
		return
	}
	e.started = true
	// Initial offline pool: a random subset starts out of the network.
	if f := e.cfg.InitialOfflineFraction; f > 0 {
		count := int(float64(e.online.len()) * f)
		candidates := append([]int(nil), e.online.items...)
		e.rng.Shuffle(len(candidates), func(i, j int) {
			candidates[i], candidates[j] = candidates[j], candidates[i]
		})
		for _, v := range candidates[:count] {
			e.online.remove(v)
			e.offline.add(v)
			e.pool.add(v)
		}
	}
	// Session timers for every initially online node.
	for _, v := range append([]int(nil), e.online.items...) {
		e.scheduleSession(v)
	}
	// Poisson join process from the pool.
	if e.cfg.JoinRate > 0 {
		e.scheduleNextPoolJoin()
	}
	// Flash events.
	for _, ev := range e.cfg.Flash {
		ev := ev
		e.clock.After(ev.At, func() { e.flash(ev) })
	}
}

// Online reports whether a node is currently online. Excluded nodes
// report their construction-time state (online).
func (e *Engine) Online(node int) bool {
	return !e.offline.has(node)
}

// OnlineCount returns the number of online managed nodes.
func (e *Engine) OnlineCount() int { return e.online.len() }

// Stats returns cumulative lifecycle-event counts.
func (e *Engine) Stats() Stats { return e.stats }

// expDur draws an exponential duration with the given mean.
func (e *Engine) expDur(mean time.Duration) time.Duration {
	return time.Duration(e.rng.ExpFloat64() * float64(mean))
}

func (e *Engine) scheduleSession(node int) {
	if e.cfg.MeanSession <= 0 {
		return
	}
	e.clock.After(e.expDur(e.cfg.MeanSession), func() {
		if !e.online.has(node) {
			return // already departed (e.g. flash exit)
		}
		e.leave(node, e.rng.Float64() < e.cfg.CrashFraction)
	})
}

func (e *Engine) scheduleNextPoolJoin() {
	if e.pool.len() == 0 {
		return
	}
	e.clock.After(e.expDur(time.Duration(float64(time.Second)/e.cfg.JoinRate)), func() {
		if node, ok := e.pool.random(e.rng); ok {
			e.join(node, false)
		}
		e.scheduleNextPoolJoin()
	})
}

func (e *Engine) leave(node int, crash bool) {
	e.online.remove(node)
	e.offline.add(node)
	if crash {
		e.stats.Crashes++
	} else {
		e.stats.Leaves++
	}
	if e.hooks.OnLeave != nil {
		e.hooks.OnLeave(node, crash)
	}
	if e.cfg.MeanDowntime > 0 {
		e.clock.After(e.expDur(e.cfg.MeanDowntime), func() {
			if e.offline.has(node) {
				e.join(node, true)
			}
		})
	}
}

func (e *Engine) join(node int, restart bool) {
	e.offline.remove(node)
	e.pool.remove(node)
	e.online.add(node)
	if restart {
		e.stats.Restarts++
	} else {
		e.stats.Joins++
	}
	if e.hooks.OnJoin != nil {
		e.hooks.OnJoin(node, restart)
	}
	e.scheduleSession(node)
}

func (e *Engine) flash(ev FlashEvent) {
	for i := 0; i < ev.Join; i++ {
		// Prefer fresh pool nodes; fall back to any offline node
		// (restarts) once the pool is dry.
		if node, ok := e.pool.random(e.rng); ok {
			e.join(node, false)
			continue
		}
		node, ok := e.offline.random(e.rng)
		if !ok {
			break
		}
		e.join(node, true)
	}
	for i := 0; i < ev.Leave; i++ {
		node, ok := e.online.random(e.rng)
		if !ok {
			break
		}
		e.leave(node, ev.Crash)
	}
}

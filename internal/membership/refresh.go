package membership

import (
	"time"

	"pandas/internal/dht"
	"pandas/internal/obsv"
)

// Refresher keeps one node's LiveView fresh by periodically crawling the
// Kademlia DHT — the paper's §4.1 view-building mechanism, wired to the
// previously orphaned dht.Crawl. Every interval the node issues a
// fanout-target crawl and folds every discovered entry into its view.
//
// Crawls only ADD peers: routing tables retain entries for departed
// nodes (stale ENRs), so a crawl may well re-discover a peer that
// gracefully left after the last announcement was applied. That is
// deliberate — pruning the stale state is the liveness scorer's job, not
// the discovery layer's.
type Refresher struct {
	peer     *dht.Peer
	view     *LiveView
	clock    Clock
	interval time.Duration
	fanout   int
	seed     int64
	crawls   int
	// active gates crawling (an offline node cannot crawl); nil means
	// always active.
	active func() bool
	// onFound, when set, observes every completed crawl's entries (the
	// cluster uses it to feed routing-table bookkeeping).
	onFound func([]dht.Entry)
	// Tracing (nil rec disables it).
	rec  obsv.Recorder
	node int32
	slot uint64
}

// NewRefresher creates a refresher for one node. Interval and fanout of
// zero select the defaults.
func NewRefresher(peer *dht.Peer, view *LiveView, clock Clock, interval time.Duration, fanout int, seed int64, active func() bool) *Refresher {
	if interval == 0 {
		interval = DefaultRefreshInterval
	}
	if fanout <= 0 {
		fanout = DefaultRefreshFanout
	}
	return &Refresher{
		peer:     peer,
		view:     view,
		clock:    clock,
		interval: interval,
		fanout:   fanout,
		seed:     seed,
		active:   active,
	}
}

// SetOnFound installs a crawl-result observer.
func (r *Refresher) SetOnFound(fn func([]dht.Entry)) { r.onFound = fn }

// SetRecorder installs event tracing for completed crawls: node is the
// owning node's index, stamped into every event. Pass nil to disable.
func (r *Refresher) SetRecorder(rec obsv.Recorder, node int) {
	r.rec = rec
	r.node = int32(node)
}

// SetSlot updates the slot stamped into traced events (the refresh loop
// outlives slot boundaries, so the owner bumps this each slot).
func (r *Refresher) SetSlot(slot uint64) { r.slot = slot }

// Crawls returns the number of crawls issued so far.
func (r *Refresher) Crawls() int { return r.crawls }

// Start schedules the periodic refresh loop after an initial delay
// (staggered per node by the caller so the network's crawls spread out
// over the interval). A negative configured interval disables the loop;
// RefreshNow still works.
func (r *Refresher) Start(initialDelay time.Duration) {
	if r.interval < 0 {
		return
	}
	r.clock.After(initialDelay, r.tick)
}

func (r *Refresher) tick() {
	if r.active == nil || r.active() {
		r.RefreshNow()
	}
	r.clock.After(r.interval, r.tick)
}

// RefreshNow issues one crawl immediately and merges the result into the
// view (used on restart: a returning node rebuilds its stale view).
func (r *Refresher) RefreshNow() {
	r.crawls++
	// Vary targets per crawl so successive refreshes probe different
	// regions of the ID space.
	crawlSeed := r.seed + int64(r.crawls)*1_000_003
	crawlNum := r.crawls
	r.peer.Crawl(r.fanout, crawlSeed, func(found []dht.Entry) {
		for _, e := range found {
			r.view.Add(e.Addr)
		}
		if r.rec != nil {
			r.rec.Record(obsv.Event{At: r.clock.Now(), Slot: r.slot,
				Kind: obsv.KindViewRefresh, Node: r.node, Peer: -1,
				Count: int32(len(found)), Aux: int64(crawlNum)})
		}
		if r.onFound != nil {
			r.onFound(found)
		}
	})
}

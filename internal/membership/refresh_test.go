package membership

import (
	"testing"
	"time"

	"pandas/internal/dht"
	"pandas/internal/ids"
	"pandas/internal/simnet"
)

type dhtTransport struct {
	net  *simnet.Network
	self int
}

func (t dhtTransport) Self() int                        { return t.self }
func (t dhtTransport) Send(to, size int, payload any)   { t.net.Send(t.self, to, size, payload) }
func (t dhtTransport) After(d time.Duration, fn func()) { t.net.After(d, fn) }
func (t dhtTransport) Now() time.Duration               { return t.net.Now() }

// dhtNet wires n DHT peers over the simulator with sparse bootstrap
// tables (~8 contacts each) — the view-refresh substrate.
func dhtNet(t *testing.T, n int) (*simnet.Network, []*dht.Peer) {
	t.Helper()
	net, err := simnet.New(simnet.Config{
		Latency: simnet.ConstantLatency(10 * time.Millisecond),
		Seed:    17,
	})
	if err != nil {
		t.Fatal(err)
	}
	entries := make([]dht.Entry, n)
	for i := 0; i < n; i++ {
		entries[i] = dht.Entry{ID: ids.NewTestIdentity(int64(i)).ID, Addr: i}
	}
	peers := make([]*dht.Peer, n)
	for i := 0; i < n; i++ {
		i := i
		net.AddNode(func(from, size int, payload any) {
			if peers[i].HandleMessage(from, payload) && from >= 0 && from < n {
				// Any exchange teaches the recipient the sender's
				// record, as real Kademlia contact handling does.
				peers[i].Table().Add(entries[from])
			}
		}, 0, 0)
		peers[i] = dht.NewPeer(entries[i], dhtTransport{net: net, self: i}, 0)
		for j := 1; j <= 8; j++ {
			peers[i].Bootstrap([]dht.Entry{entries[(i+j*13)%n]})
		}
	}
	return net, peers
}

// TestRefreshConvergesOn100NodeTable is the crawl-convergence check the
// churn subsystem rests on: starting from an ~8-entry bootstrap view,
// periodic crawl refresh must discover the large majority of a 100-node
// network within a few cycles.
func TestRefreshConvergesOn100NodeTable(t *testing.T) {
	const n = 100
	net, peers := dhtNet(t, n)
	view := NewLiveView()
	view.Add(0)
	r := NewRefresher(peers[0], view, net, 5*time.Second, 6, 99, nil)
	r.Start(0)
	net.Run(30 * time.Second)
	if r.Crawls() < 3 {
		t.Fatalf("only %d crawls ran", r.Crawls())
	}
	frac := float64(view.Len()) / n
	if frac < 0.9 {
		t.Fatalf("view converged to only %.0f%% of the network", frac*100)
	}
	// Every discovered peer must be a real network member.
	for _, p := range view.Peers() {
		if p < 0 || p >= n {
			t.Fatalf("view contains fabricated peer %d", p)
		}
	}
}

func TestRefreshNowMergesAndNotifies(t *testing.T) {
	net, peers := dhtNet(t, 40)
	view := NewLiveView()
	var observed int
	r := NewRefresher(peers[3], view, net, -1, 4, 5, nil)
	r.SetOnFound(func(found []dht.Entry) { observed = len(found) })
	r.Start(0) // negative interval: periodic loop disabled
	net.Run(5 * time.Second)
	if r.Crawls() != 0 {
		t.Fatal("disabled refresher crawled on its own")
	}
	r.RefreshNow()
	net.Run(30 * time.Second)
	if observed == 0 || view.Len() == 0 {
		t.Fatalf("RefreshNow discovered nothing (observed=%d view=%d)", observed, view.Len())
	}
}

func TestRefreshSkipsWhileInactive(t *testing.T) {
	net, peers := dhtNet(t, 20)
	view := NewLiveView()
	active := false
	r := NewRefresher(peers[0], view, net, time.Second, 2, 1, func() bool { return active })
	r.Start(0)
	net.Run(5 * time.Second)
	if r.Crawls() != 0 {
		t.Fatal("inactive refresher crawled")
	}
	active = true
	net.Run(20 * time.Second)
	if r.Crawls() == 0 {
		t.Fatal("refresher never resumed after reactivation")
	}
}

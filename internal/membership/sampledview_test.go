package membership

import "testing"

// TestSampledViewStatistics checks the sampled view behaves like a
// uniform (keep) sample: self always visible, deterministic, and the
// visible fraction close to keep for several nodes.
func TestSampledViewStatistics(t *testing.T) {
	const n = 20000
	for _, keep := range []float64{0.2, 0.6, 0.8} {
		for self := 0; self < 5; self++ {
			v := NewSampledView(12345, self, keep)
			if !v.Contains(self) {
				t.Fatalf("keep=%v: node %d cannot see itself", keep, self)
			}
			count := 0
			for p := 0; p < n; p++ {
				if p != self && v.Contains(p) {
					count++
				}
			}
			frac := float64(count) / float64(n-1)
			if frac < keep-0.02 || frac > keep+0.02 {
				t.Errorf("keep=%v self=%d: visible fraction %.4f off by more than 0.02", keep, self, frac)
			}
			// Determinism: a second instance agrees everywhere.
			v2 := NewSampledView(12345, self, keep)
			for p := 0; p < 100; p++ {
				if v.Contains(p) != v2.Contains(p) {
					t.Fatalf("keep=%v self=%d: nondeterministic at peer %d", keep, self, p)
				}
			}
		}
	}
}

// TestSampledViewIndependence: different nodes (and different seeds)
// must not share the same visible subset.
func TestSampledViewIndependence(t *testing.T) {
	a := NewSampledView(1, 0, 0.5)
	b := NewSampledView(1, 1, 0.5)
	c := NewSampledView(2, 0, 0.5)
	sameAB, sameAC := 0, 0
	const n = 4096
	for p := 2; p < n; p++ {
		if a.Contains(p) == b.Contains(p) {
			sameAB++
		}
		if a.Contains(p) == c.Contains(p) {
			sameAC++
		}
	}
	// Independent 50% draws agree about half the time; identical draws
	// would agree always.
	if sameAB > n*3/4 || sameAC > n*3/4 {
		t.Fatalf("views look correlated: sameAB=%d sameAC=%d of %d", sameAB, sameAC, n)
	}
}

// TestSampledViewEdges pins the degenerate keep fractions.
func TestSampledViewEdges(t *testing.T) {
	none := NewSampledView(9, 3, 0)
	all := NewSampledView(9, 3, 1)
	for p := 0; p < 100; p++ {
		if p != 3 && none.Contains(p) {
			t.Fatalf("keep=0 sees peer %d", p)
		}
		if !all.Contains(p) {
			t.Fatalf("keep=1 misses peer %d", p)
		}
	}
}

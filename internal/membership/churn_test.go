package membership

import (
	"math/rand"
	"testing"
	"time"
)

type eventLog struct {
	joins, restarts, leaves, crashes []int
}

func hooksFor(log *eventLog) Hooks {
	return Hooks{
		OnJoin: func(node int, restart bool) {
			if restart {
				log.restarts = append(log.restarts, node)
			} else {
				log.joins = append(log.joins, node)
			}
		},
		OnLeave: func(node int, crash bool) {
			if crash {
				log.crashes = append(log.crashes, node)
			} else {
				log.leaves = append(log.leaves, node)
			}
		},
	}
}

func TestConfigActive(t *testing.T) {
	var nilCfg *Config
	if nilCfg.Active() {
		t.Fatal("nil config active")
	}
	if (&Config{}).Active() {
		t.Fatal("zero config active")
	}
	for _, c := range []*Config{
		{MeanSession: time.Second},
		{JoinRate: 0.1},
		{InitialOfflineFraction: 0.2},
		{Flash: []FlashEvent{{At: time.Second, Join: 1}}},
	} {
		if !c.Active() {
			t.Fatalf("config %+v should be active", c)
		}
	}
	// A refresh-only config produces no dynamics.
	if (&Config{RefreshInterval: time.Second}).Active() {
		t.Fatal("refresh-only config active")
	}
}

func TestEngineSessionsAndRestarts(t *testing.T) {
	clk := &engineClock{}
	log := &eventLog{}
	e := NewEngine(Config{
		MeanSession:   2 * time.Second,
		MeanDowntime:  time.Second,
		CrashFraction: 0.5,
	}, clk, rand.New(rand.NewSource(42)), 50, hooksFor(log))
	e.Start()
	clk.run(60 * time.Second)

	departures := len(log.leaves) + len(log.crashes)
	if departures == 0 {
		t.Fatal("no departures over 60s with 2s mean sessions")
	}
	if len(log.crashes) == 0 || len(log.leaves) == 0 {
		t.Fatalf("crash/graceful split degenerate: %d crashes, %d leaves",
			len(log.crashes), len(log.leaves))
	}
	if len(log.restarts) == 0 {
		t.Fatal("no restarts despite MeanDowntime")
	}
	st := e.Stats()
	if st.Leaves != len(log.leaves) || st.Crashes != len(log.crashes) || st.Restarts != len(log.restarts) {
		t.Fatalf("stats %+v disagree with hook log", st)
	}
	// Online/offline bookkeeping must be consistent.
	online := 0
	for i := 0; i < 50; i++ {
		if e.Online(i) {
			online++
		}
	}
	if online != e.OnlineCount() {
		t.Fatalf("Online() count %d != OnlineCount %d", online, e.OnlineCount())
	}
}

func TestEnginePoissonJoinsDrainPool(t *testing.T) {
	clk := &engineClock{}
	log := &eventLog{}
	e := NewEngine(Config{
		InitialOfflineFraction: 0.4,
		JoinRate:               1.0, // one join/sec on average
	}, clk, rand.New(rand.NewSource(7)), 20, hooksFor(log))
	e.Start()
	if e.OnlineCount() != 12 {
		t.Fatalf("initial online %d, want 12", e.OnlineCount())
	}
	clk.run(120 * time.Second)
	if len(log.joins) != 8 {
		t.Fatalf("pool joins %d, want all 8", len(log.joins))
	}
	if e.OnlineCount() != 20 {
		t.Fatalf("final online %d, want 20", e.OnlineCount())
	}
	if e.Stats().Joins != 8 {
		t.Fatalf("stats joins %d", e.Stats().Joins)
	}
}

func TestEngineFlashEvents(t *testing.T) {
	clk := &engineClock{}
	log := &eventLog{}
	e := NewEngine(Config{
		InitialOfflineFraction: 0.5,
		Flash: []FlashEvent{
			{At: time.Second, Join: 5},
			{At: 2 * time.Second, Leave: 3, Crash: true},
		},
	}, clk, rand.New(rand.NewSource(3)), 40, hooksFor(log))
	e.Start()
	clk.run(500 * time.Millisecond)
	if len(log.joins) != 0 {
		t.Fatal("flash fired early")
	}
	clk.run(1500 * time.Millisecond)
	if len(log.joins) != 5 {
		t.Fatalf("flash crowd joined %d, want 5", len(log.joins))
	}
	clk.run(3 * time.Second)
	if len(log.crashes) != 3 || len(log.leaves) != 0 {
		t.Fatalf("flash exit: %d crashes %d leaves, want 3 crashes", len(log.crashes), len(log.leaves))
	}
	if e.OnlineCount() != 20+5-3 {
		t.Fatalf("online %d after flashes", e.OnlineCount())
	}
}

func TestEngineFlashJoinFallsBackToRestarts(t *testing.T) {
	clk := &engineClock{}
	log := &eventLog{}
	// Empty pool: a flash crash at 1s, then a flash join at 2s must bring
	// the crashed node back as a RESTART.
	e := NewEngine(Config{
		Flash: []FlashEvent{
			{At: time.Second, Leave: 1, Crash: true},
			{At: 2 * time.Second, Join: 1},
		},
	}, clk, rand.New(rand.NewSource(5)), 10, hooksFor(log))
	e.Start()
	clk.run(3 * time.Second)
	if len(log.crashes) != 1 || len(log.restarts) != 1 {
		t.Fatalf("crashes=%d restarts=%d", len(log.crashes), len(log.restarts))
	}
	if log.crashes[0] != log.restarts[0] {
		t.Fatal("restart resurrected a different node than the crash took down")
	}
	if e.OnlineCount() != 10 {
		t.Fatalf("online %d, want 10", e.OnlineCount())
	}
}

func TestEngineExclude(t *testing.T) {
	clk := &engineClock{}
	log := &eventLog{}
	e := NewEngine(Config{
		MeanSession:  500 * time.Millisecond,
		MeanDowntime: 500 * time.Millisecond,
	}, clk, rand.New(rand.NewSource(9)), 10, hooksFor(log))
	e.Exclude(3, 4)
	e.Start()
	clk.run(30 * time.Second)
	for _, n := range append(append(append(log.joins, log.restarts...), log.leaves...), log.crashes...) {
		if n == 3 || n == 4 {
			t.Fatalf("excluded node %d saw a lifecycle event", n)
		}
	}
	if !e.Online(3) || !e.Online(4) {
		t.Fatal("excluded nodes must stay in construction state")
	}
}

func TestEngineDeterminism(t *testing.T) {
	runOnce := func() ([]int, Stats) {
		clk := &engineClock{}
		log := &eventLog{}
		e := NewEngine(Config{
			MeanSession:            time.Second,
			MeanDowntime:           time.Second,
			CrashFraction:          0.3,
			InitialOfflineFraction: 0.2,
			JoinRate:               0.5,
		}, clk, rand.New(rand.NewSource(11)), 30, hooksFor(log))
		e.Start()
		clk.run(20 * time.Second)
		var seq []int
		seq = append(seq, log.joins...)
		seq = append(seq, log.restarts...)
		seq = append(seq, log.leaves...)
		seq = append(seq, log.crashes...)
		return seq, e.Stats()
	}
	a, sa := runOnce()
	b, sb := runOnce()
	if sa != sb {
		t.Fatalf("stats diverge: %+v vs %+v", sa, sb)
	}
	if len(a) != len(b) {
		t.Fatalf("event counts diverge: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event sequence diverges at %d", i)
		}
	}
}

package membership

import (
	"testing"
	"time"
)

func TestLiveViewBasics(t *testing.T) {
	v := NewLiveView()
	if v.Contains(3) || v.Len() != 0 {
		t.Fatal("fresh view not empty")
	}
	v.Add(3)
	v.Add(7)
	v.Add(3) // idempotent
	if !v.Contains(3) || !v.Contains(7) || v.Len() != 2 {
		t.Fatalf("after adds: len=%d", v.Len())
	}
	v.Remove(3)
	if v.Contains(3) || v.Len() != 1 {
		t.Fatal("remove failed")
	}
	v.Remove(99) // no-op
	if v.Len() != 1 {
		t.Fatal("removing absent peer changed view")
	}
}

func TestFullLiveView(t *testing.T) {
	v := FullLiveView(5)
	for i := 0; i < 5; i++ {
		if !v.Contains(i) {
			t.Fatalf("full view missing %d", i)
		}
	}
	if v.Contains(5) || v.Len() != 5 {
		t.Fatal("full view wrong size")
	}
	got := v.Peers()
	if len(got) != 5 {
		t.Fatalf("Peers returned %d entries", len(got))
	}
}

func TestViewFunc(t *testing.T) {
	var v View = ViewFunc(func(p int) bool { return p%2 == 0 })
	if !v.Contains(4) || v.Contains(5) {
		t.Fatal("ViewFunc adapter broken")
	}
}

func TestDirectory(t *testing.T) {
	d := NewDirectory(4)
	if d.OnlineCount() != 4 || !d.Online(2) || !d.Believed(2) {
		t.Fatal("fresh directory not fully online")
	}
	d.SetOnline(2, false)
	if d.Online(2) || d.OnlineCount() != 3 {
		t.Fatal("SetOnline(false) not applied")
	}
	d.SetOnline(2, false) // idempotent
	if d.OnlineCount() != 3 {
		t.Fatal("double offline double-counted")
	}
	d.SetOnline(2, true)
	if !d.Online(2) || d.OnlineCount() != 4 {
		t.Fatal("SetOnline(true) not applied")
	}
	d.SetBelieved(1, false)
	if d.Believed(1) || !d.Online(1) {
		t.Fatal("belief must be independent of truth")
	}
	// Out-of-range indices are inert.
	d.SetOnline(-1, false)
	d.SetOnline(99, false)
	if d.Online(-1) || d.Online(99) || d.OnlineCount() != 4 {
		t.Fatal("out-of-range access changed state")
	}
}

// fakeClock is a deterministic manual clock for scorer tests.
type fakeClock struct{ t time.Duration }

func (c *fakeClock) now() time.Duration { return c.t }

func TestScorerBackoffGrowsAndCaps(t *testing.T) {
	clk := &fakeClock{}
	s := NewScorer(ScorerConfig{BaseBackoff: time.Second, MaxBackoff: 4 * time.Second}, clk.now)
	if !s.Queryable(9) || s.Penalty(9) != 0 {
		t.Fatal("unknown peer must be healthy")
	}
	s.ReportTimeout(9) // backoff 1s
	if s.Queryable(9) {
		t.Fatal("peer queryable during backoff")
	}
	if s.Failures(9) != 1 {
		t.Fatalf("failures=%d", s.Failures(9))
	}
	clk.t = 1100 * time.Millisecond
	if !s.Queryable(9) {
		t.Fatal("peer not re-armed after backoff expiry")
	}
	if s.Penalty(9) == 0 {
		t.Fatal("re-armed peer must still carry a penalty")
	}
	s.ReportTimeout(9) // backoff 2s
	if s.Queryable(9) {
		t.Fatal("second timeout must re-demote")
	}
	clk.t += 1500 * time.Millisecond
	if s.Queryable(9) {
		t.Fatal("backoff did not double")
	}
	clk.t += time.Second
	if !s.Queryable(9) {
		t.Fatal("doubled backoff never expired")
	}
	// Drive failures past the cap: backoff must stay at MaxBackoff.
	for i := 0; i < 10; i++ {
		s.ReportTimeout(9)
	}
	clk.t += 4*time.Second + time.Millisecond
	if !s.Queryable(9) {
		t.Fatal("backoff exceeded its cap")
	}
}

func TestScorerSuccessResets(t *testing.T) {
	clk := &fakeClock{}
	s := NewScorer(ScorerConfig{}, clk.now)
	s.ReportTimeout(4)
	s.ReportTimeout(4)
	if s.Demoted() != 1 {
		t.Fatalf("demoted=%d", s.Demoted())
	}
	s.ReportSuccess(4)
	if !s.Queryable(4) || s.Penalty(4) != 0 || s.Failures(4) != 0 || s.Demoted() != 0 {
		t.Fatal("success did not reset the peer")
	}
}

// engineClock adapts a sorted manual event queue for engine tests.
type engineClock struct {
	t      time.Duration
	events []struct {
		at time.Duration
		fn func()
	}
}

func (c *engineClock) Now() time.Duration { return c.t }
func (c *engineClock) After(d time.Duration, fn func()) {
	c.events = append(c.events, struct {
		at time.Duration
		fn func()
	}{c.t + d, fn})
}

// run executes events in time order until the horizon.
func (c *engineClock) run(until time.Duration) {
	for {
		best := -1
		for i, e := range c.events {
			if e.at > until {
				continue
			}
			if best < 0 || e.at < c.events[best].at {
				best = i
			}
		}
		if best < 0 {
			break
		}
		e := c.events[best]
		c.events = append(c.events[:best], c.events[best+1:]...)
		c.t = e.at
		e.fn()
	}
	if c.t < until {
		c.t = until
	}
}

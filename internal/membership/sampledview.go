package membership

import "math"

// SampledView is a compact, allocation-free stand-in for the LiveView
// used by the out-of-view fault model: instead of materializing each
// node's random (1-f) subset of the network as a hash set — O(N) memory
// and O(N) rng draws per node, so O(N²) for the cluster — membership is
// a deterministic per-(self, peer) hash draw against a keep threshold.
// Every node still sees an independent uniform ~(1-f) sample of the
// network, but a 100k-node cluster pays 16 bytes per view instead of
// rebuilding 100k maps of 100k entries.
//
// The trade against LiveView is mutability: SampledView cannot evolve,
// so it serves only the static out-of-view sweeps. Deployments with
// churn keep LiveView (the announcement mesh and DHT crawls must update
// views in place).
type SampledView struct {
	seed      uint64
	self      uint64
	threshold uint64
}

// NewSampledView creates the view for one node. keep is the fraction of
// peers visible (clamped to [0, 1]); seed must be shared by the whole
// cluster so the per-pair draws are reproducible.
func NewSampledView(seed uint64, self int, keep float64) SampledView {
	if keep < 0 {
		keep = 0
	}
	// keep*MaxUint64 overflows the uint64 conversion at keep=1 (the
	// float rounds up to 2^64), so the full-view case is pinned exactly.
	threshold := uint64(math.MaxUint64)
	if keep < 1 {
		threshold = uint64(keep * float64(1<<63) * 2)
	}
	return SampledView{
		seed:      seed,
		self:      uint64(self),
		threshold: threshold,
	}
}

// Contains implements View. A node always sees itself.
func (v SampledView) Contains(peer int) bool {
	if uint64(peer) == v.self {
		return true
	}
	h := mix64(v.seed ^ v.self*0x9e3779b97f4a7c15)
	h = mix64(h ^ uint64(peer)*0xc2b2ae3d27d4eb4f)
	return h <= v.threshold
}

// mix64 is the splitmix64 finalizer: a cheap, well-distributed 64-bit
// hash for the per-pair visibility draw.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

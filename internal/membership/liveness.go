package membership

import (
	"time"

	"pandas/internal/obsv"
)

// Scorer defaults.
const (
	// DefaultBaseBackoff is the quarantine after a peer's first timeout.
	// It exceeds one adaptive-fetch round, so a peer that times out once
	// sits out at least the next round.
	DefaultBaseBackoff = time.Second
	// DefaultMaxBackoff caps the exponential backoff; a peer dead for
	// several probes is effectively out for the rest of the slot.
	DefaultMaxBackoff = 30 * time.Second
	// DefaultPenalty is the score deduction per recorded failure applied
	// to a peer that is queryable again after its backoff expired.
	DefaultPenalty = 2
)

// ScorerConfig parameterizes peer-liveness scoring.
type ScorerConfig struct {
	// BaseBackoff is the quarantine after the first timeout; each further
	// consecutive timeout doubles it. Zero selects DefaultBaseBackoff.
	BaseBackoff time.Duration
	// MaxBackoff caps the doubling. Zero selects DefaultMaxBackoff.
	MaxBackoff time.Duration
	// Penalty is the per-failure score deduction for peers out of
	// backoff. Zero selects DefaultPenalty.
	Penalty int
}

func (c ScorerConfig) withDefaults() ScorerConfig {
	if c.BaseBackoff <= 0 {
		c.BaseBackoff = DefaultBaseBackoff
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = DefaultMaxBackoff
	}
	if c.Penalty <= 0 {
		c.Penalty = DefaultPenalty
	}
	return c
}

type peerScore struct {
	failures     int
	backoffUntil time.Duration
}

// Scorer tracks per-peer liveness for one node (Algorithm 1's scoring
// step, extended with failure knowledge). Query timeouts demote a peer
// with exponential backoff: while the backoff runs the peer is not
// queryable at all; once it expires the peer is re-armed — the fetcher's
// periodic queryable-set sweep retries it — but carries a score penalty
// proportional to its failure count. Any successful response resets the
// peer to healthy. State persists across slots: a peer that crashed in
// slot s is still known-bad in slot s+1.
//
// Scorer implements fetch.Liveness and core.LivenessRecorder.
type Scorer struct {
	cfg   ScorerConfig
	now   func() time.Duration
	state map[int]*peerScore

	// Tracing (nil rec disables it; see obsv.Recorder).
	rec  obsv.Recorder
	node int32
	slot uint64
}

// NewScorer creates a scorer reading time from now (the simulation
// clock in practice).
func NewScorer(cfg ScorerConfig, now func() time.Duration) *Scorer {
	return &Scorer{cfg: cfg.withDefaults(), now: now, state: make(map[int]*peerScore)}
}

// SetRecorder installs event tracing for liveness transitions: node is
// the owning node's index, stamped into every event. Pass nil to
// disable.
func (s *Scorer) SetRecorder(rec obsv.Recorder, node int) {
	s.rec = rec
	s.node = int32(node)
}

// SetSlot updates the slot stamped into traced events (liveness state
// persists across slots, so the owner bumps this each slot).
func (s *Scorer) SetSlot(slot uint64) { s.slot = slot }

// ReportTimeout records that a query to the peer went unanswered,
// doubling its backoff.
func (s *Scorer) ReportTimeout(peer int) {
	st := s.state[peer]
	if st == nil {
		st = &peerScore{}
		s.state[peer] = st
	}
	st.failures++
	back := s.cfg.BaseBackoff
	for i := 1; i < st.failures && back < s.cfg.MaxBackoff; i++ {
		back *= 2
	}
	if back > s.cfg.MaxBackoff {
		back = s.cfg.MaxBackoff
	}
	st.backoffUntil = s.now() + back
	if s.rec != nil {
		s.rec.Record(obsv.Event{At: s.now(), Slot: s.slot,
			Kind: obsv.KindPeerTimeout, Node: s.node, Peer: int32(peer),
			Count: int32(st.failures), Aux: int64(back)})
	}
}

// ReportGarbage records that the peer served cells failing proof
// verification. Unlike a timeout — which might be congestion — garbage
// is deliberate, so the peer jumps straight to the maximum backoff with
// a failure count matching it (the score penalty a fully backed-off peer
// would carry). Liveness state persists across slots, so a garbage peer
// starts the next slot still quarantined even though the fetcher's
// per-slot ban has reset.
func (s *Scorer) ReportGarbage(peer int) {
	st := s.state[peer]
	if st == nil {
		st = &peerScore{}
		s.state[peer] = st
	}
	// Failure count equivalent to having timed out all the way up the
	// exponential ladder.
	steps := 1
	for back := s.cfg.BaseBackoff; back < s.cfg.MaxBackoff; back *= 2 {
		steps++
	}
	if st.failures < steps {
		st.failures = steps
	} else {
		st.failures++
	}
	st.backoffUntil = s.now() + s.cfg.MaxBackoff
	if s.rec != nil {
		s.rec.Record(obsv.Event{At: s.now(), Slot: s.slot,
			Kind: obsv.KindPeerTimeout, Node: s.node, Peer: int32(peer),
			Count: int32(st.failures), Aux: int64(s.cfg.MaxBackoff)})
	}
}

// ReportSuccess marks the peer healthy, clearing failures and backoff.
func (s *Scorer) ReportSuccess(peer int) {
	st := s.state[peer]
	if st == nil {
		return
	}
	delete(s.state, peer)
	// Only an actual transition (failures recorded) is worth tracing.
	if s.rec != nil && st.failures > 0 {
		s.rec.Record(obsv.Event{At: s.now(), Slot: s.slot,
			Kind: obsv.KindPeerRecovered, Node: s.node, Peer: int32(peer),
			Count: int32(st.failures)})
	}
}

// Queryable reports whether the peer may be queried now (false while in
// timeout backoff). Implements fetch.Liveness.
func (s *Scorer) Queryable(peer int) bool {
	st := s.state[peer]
	return st == nil || st.backoffUntil <= s.now()
}

// Penalty returns the score deduction for the peer (0 when healthy).
// Implements fetch.Liveness.
func (s *Scorer) Penalty(peer int) int {
	st := s.state[peer]
	if st == nil {
		return 0
	}
	return st.failures * s.cfg.Penalty
}

// Failures returns the peer's consecutive timeout count.
func (s *Scorer) Failures(peer int) int {
	if st := s.state[peer]; st != nil {
		return st.failures
	}
	return 0
}

// Demoted counts peers currently inside their backoff window.
func (s *Scorer) Demoted() int {
	now := s.now()
	n := 0
	for _, st := range s.state {
		if st.backoffUntil > now {
			n++
		}
	}
	return n
}

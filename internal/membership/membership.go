// Package membership implements dynamic network membership for PANDAS:
// evolving per-node views, a churn engine that schedules node lifecycle
// events (join, graceful leave, crash, restart) on the simulation clock,
// peer-liveness scoring with exponential backoff, and DHT-crawl-based
// view refresh.
//
// The paper evaluates PANDAS under static membership only: every node's
// view is frozen when the slot starts (Fig. 15b sweeps the *size* of
// views but never changes one mid-slot), and churn is explicitly deferred
// to future work (§9). This package supplies the missing dynamics over a
// fixed identity universe — the epoch table still enumerates every
// possible participant (as the DHT's ENR records do in practice), but
// which of them is online changes continuously:
//
//   - the churn Engine drives offline→online→offline transitions from
//     configurable processes (Poisson arrivals, exponential session and
//     downtime lengths, flash-crowd/flash-exit bursts);
//   - each node's LiveView evolves during a slot, fed by gossip of
//     join/leave announcements and by periodic crawls of the Kademlia
//     DHT (the paper's §4.1 view-building mechanism, internal/dht);
//   - a per-node Scorer demotes peers that time out with exponential
//     backoff, so the adaptive fetcher (Algorithm 1) stops burning round
//     budget on departed peers; peers are re-armed when their backoff
//     expires and the fetcher's queryable-set sweep retries them.
//
// Crashes leave stale state behind on purpose: a crashed node is never
// announced, its entries linger in peers' views and routing tables, and
// only liveness scoring removes it from fetch plans — the degradation
// mode that churn studies of DAS networks identify as dominant.
package membership

// View reports whether a peer is visible to a node. It replaces the
// static in-view closure of the original static-membership code:
// implementations may evolve while a slot is running.
type View interface {
	Contains(peer int) bool
}

// ViewFunc adapts a predicate to the View interface.
type ViewFunc func(peer int) bool

// Contains implements View.
func (f ViewFunc) Contains(peer int) bool { return f(peer) }

// LiveView is a mutable membership view: the set of peers a node
// currently believes to be part of the network. It is updated by gossip
// announcements (joins and graceful leaves) and by DHT crawl refreshes;
// crashed peers are NOT removed — they linger until liveness scoring
// demotes them, mirroring stale ENRs in real deployments. Like every
// per-node structure in this codebase it is confined to the simulator's
// event loop and needs no locking.
type LiveView struct {
	known map[int]bool
}

// NewLiveView returns an empty view.
func NewLiveView() *LiveView {
	return &LiveView{known: make(map[int]bool)}
}

// FullLiveView returns a view containing peers 0..n-1.
func FullLiveView(n int) *LiveView {
	v := &LiveView{known: make(map[int]bool, n)}
	for i := 0; i < n; i++ {
		v.known[i] = true
	}
	return v
}

// Contains implements View.
func (v *LiveView) Contains(peer int) bool { return v.known[peer] }

// Add inserts a peer into the view.
func (v *LiveView) Add(peer int) { v.known[peer] = true }

// Remove deletes a peer from the view.
func (v *LiveView) Remove(peer int) { delete(v.known, peer) }

// Len returns the number of visible peers.
func (v *LiveView) Len() int { return len(v.known) }

// Peers returns the visible peer indices in unspecified order.
func (v *LiveView) Peers() []int {
	out := make([]int, 0, len(v.known))
	for p := range v.known {
		out = append(out, p)
	}
	return out
}

// Announcement is the join/leave notice a node floods over the gossip
// mesh when it enters or gracefully exits the network. Crashes produce
// no announcement — peers only learn through timeouts and crawls.
type Announcement struct {
	// Seq uniquely identifies the announcement for duplicate
	// suppression during mesh flooding.
	Seq uint64
	// Node is the subject's index.
	Node int
	// Join distinguishes a join (true) from a graceful leave (false).
	Join bool
}

// AnnouncementWireSize is the datagram size of one announcement:
// IP/UDP overhead (28) + seq (8) + node (4) + kind (1).
const AnnouncementWireSize = 28 + 8 + 4 + 1

// Directory is the cluster-side membership bookkeeping: the ground truth
// of which nodes are online, and the "believed online" set that
// announcement-followers (most importantly the builder) hold. The two
// diverge exactly for crashes, which are not announced: a crashed node
// stays believed-online and keeps receiving (wasted) seed traffic until
// it returns.
type Directory struct {
	online      []bool
	believed    []bool
	onlineCount int
}

// NewDirectory creates a directory with all n nodes online and believed
// online.
func NewDirectory(n int) *Directory {
	d := &Directory{online: make([]bool, n), believed: make([]bool, n), onlineCount: n}
	for i := range d.online {
		d.online[i] = true
		d.believed[i] = true
	}
	return d
}

// SetOnline records ground-truth liveness.
func (d *Directory) SetOnline(node int, on bool) {
	if node < 0 || node >= len(d.online) || d.online[node] == on {
		return
	}
	d.online[node] = on
	if on {
		d.onlineCount++
	} else {
		d.onlineCount--
	}
}

// Online reports ground-truth liveness.
func (d *Directory) Online(node int) bool {
	return node >= 0 && node < len(d.online) && d.online[node]
}

// OnlineCount returns the number of online nodes.
func (d *Directory) OnlineCount() int { return d.onlineCount }

// SetBelieved records announcement-derived liveness belief.
func (d *Directory) SetBelieved(node int, on bool) {
	if node >= 0 && node < len(d.believed) {
		d.believed[node] = on
	}
}

// Believed reports announcement-derived liveness belief.
func (d *Directory) Believed(node int) bool {
	return node >= 0 && node < len(d.believed) && d.believed[node]
}

package gossip

import (
	"math/rand"
	"testing"
	"time"

	"pandas/internal/simnet"
)

func memberRange(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func TestOverlayDegreeBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	o := NewOverlay(rng, memberRange(100), DefaultDegree)
	for _, m := range o.Members() {
		nbs := o.Neighbors(m)
		if len(nbs) < DefaultDegree {
			t.Fatalf("node %d has only %d neighbours", m, len(nbs))
		}
		seen := map[int]bool{}
		for _, nb := range nbs {
			if nb == m {
				t.Fatalf("node %d is its own neighbour", m)
			}
			if seen[nb] {
				t.Fatalf("node %d has duplicate neighbour %d", m, nb)
			}
			seen[nb] = true
		}
	}
}

func TestOverlaySymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	o := NewOverlay(rng, memberRange(50), 4)
	for _, m := range o.Members() {
		for _, nb := range o.Neighbors(m) {
			found := false
			for _, back := range o.Neighbors(nb) {
				if back == m {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("edge %d-%d not symmetric", m, nb)
			}
		}
	}
}

func TestOverlayConnected(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	o := NewOverlay(rng, memberRange(200), DefaultDegree)
	if !o.Connected() {
		t.Fatal("200-member degree-8 mesh should be connected")
	}
}

func TestOverlaySmallMemberships(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	if o := NewOverlay(rng, nil, 8); !o.Connected() {
		t.Fatal("empty overlay should be trivially connected")
	}
	o := NewOverlay(rng, []int{7}, 8)
	if len(o.Neighbors(7)) != 0 {
		t.Fatal("single member should have no neighbours")
	}
	o2 := NewOverlay(rng, []int{3, 9}, 8)
	if len(o2.Neighbors(3)) != 1 || o2.Neighbors(3)[0] != 9 {
		t.Fatalf("pair mesh wrong: %v", o2.Neighbors(3))
	}
}

func TestOverlayDeterministic(t *testing.T) {
	o1 := NewOverlay(rand.New(rand.NewSource(5)), memberRange(40), 4)
	o2 := NewOverlay(rand.New(rand.NewSource(5)), memberRange(40), 4)
	for _, m := range o1.Members() {
		a, b := o1.Neighbors(m), o2.Neighbors(m)
		if len(a) != len(b) {
			t.Fatal("non-deterministic mesh")
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatal("non-deterministic mesh")
			}
		}
	}
}

func TestRouterPublishAndDedup(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	o := NewOverlay(rng, memberRange(20), 4)
	r := NewRouter(0)
	targets := r.Publish(o, MsgID(1))
	if len(targets) == 0 {
		t.Fatal("publish should flood to neighbours")
	}
	if !r.Seen(1) {
		t.Fatal("published message not marked seen")
	}
	// Receiving our own publish back is a duplicate.
	fwd, isNew := r.Receive(o, MsgID(1), targets[0])
	if isNew || fwd != nil {
		t.Fatal("duplicate not suppressed")
	}
}

func TestRouterReceiveForwardsExceptSender(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	o := NewOverlay(rng, memberRange(20), 4)
	r := NewRouter(5)
	from := o.Neighbors(5)[0]
	fwd, isNew := r.Receive(o, MsgID(9), from)
	if !isNew {
		t.Fatal("first copy should be new")
	}
	for _, peer := range fwd {
		if peer == from {
			t.Fatal("forwarded back to sender")
		}
	}
	if len(fwd) != len(o.Neighbors(5))-1 {
		t.Fatalf("forwarded to %d peers, want %d", len(fwd), len(o.Neighbors(5))-1)
	}
}

func TestRouterReset(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	o := NewOverlay(rng, memberRange(10), 3)
	r := NewRouter(0)
	r.Publish(o, MsgID(1))
	r.Reset()
	if r.Seen(1) {
		t.Fatal("Reset did not clear seen state")
	}
}

// TestFloodReachesAllMembers wires routers over the simulator and checks
// that a published message reaches every member of a connected mesh, and
// that per-node duplicate counts stay bounded by the mesh degree.
func TestFloodReachesAllMembers(t *testing.T) {
	const n = 120
	rng := rand.New(rand.NewSource(9))
	members := memberRange(n)
	o := NewOverlay(rng, members, DefaultDegree)
	if !o.Connected() {
		t.Skip("mesh disconnected with this seed")
	}
	net, err := simnet.New(simnet.Config{Latency: simnet.ConstantLatency(5 * time.Millisecond), Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	routers := make([]*Router, n)
	delivered := make([]bool, n)
	for i := 0; i < n; i++ {
		i := i
		routers[i] = NewRouter(i)
		net.AddNode(func(from, size int, payload any) {
			id := payload.(MsgID)
			fwd, isNew := routers[i].Receive(o, id, from)
			if isNew {
				delivered[i] = true
				for _, peer := range fwd {
					net.Send(i, peer, size, payload)
				}
			}
		}, 0, 0)
	}
	// Node 0 publishes.
	delivered[0] = true
	for _, peer := range routers[0].Publish(o, MsgID(77)) {
		net.Send(0, peer, 1000, MsgID(77))
	}
	net.Run(10 * time.Second)
	for i, d := range delivered {
		if !d {
			t.Fatalf("member %d never received the message", i)
		}
	}
}

func BenchmarkOverlayBuild(b *testing.B) {
	members := memberRange(1000)
	for i := 0; i < b.N; i++ {
		NewOverlay(rand.New(rand.NewSource(int64(i))), members, DefaultDegree)
	}
}

// Package gossip implements a GossipSub-style topic mesh: the multi-hop,
// controlled-flooding overlay Ethereum uses for block dissemination, and
// the substrate of the paper's GossipSub DAS baseline.
//
// Each topic maintains a mesh: every member picks `degree` random peers
// (8 by default, GossipSub's fanout), and the union of those choices forms
// the undirected mesh graph. A published message floods the mesh: each
// node forwards the first copy it sees to all mesh neighbours except the
// one it came from. Duplicate suppression is per (topic, message).
//
// The package is deliberately transport-agnostic and deterministic: an
// Overlay computes mesh neighbourships from a seeded generator, and a
// Router decides, given a received message, which peers to forward it to.
// The caller (simulator or UDP transport) performs the sends, so all of
// the flooding logic is unit-testable without a network.
package gossip

import (
	"math/rand"
	"sort"
)

// DefaultDegree is GossipSub's default mesh degree (D = 8).
const DefaultDegree = 8

// Overlay is the static mesh of one topic.
type Overlay struct {
	neighbors map[int][]int
	members   []int
}

// NewOverlay builds a mesh over the given member node indices: every
// member picks up to degree random peers, and edges are symmetrized. The
// same rng state always yields the same mesh.
func NewOverlay(rng *rand.Rand, members []int, degree int) *Overlay {
	o := &Overlay{neighbors: make(map[int][]int, len(members)), members: append([]int(nil), members...)}
	if len(members) <= 1 {
		return o
	}
	edge := make(map[[2]int]bool)
	addEdge := func(a, b int) {
		if a == b {
			return
		}
		key := [2]int{min(a, b), max(a, b)}
		if edge[key] {
			return
		}
		edge[key] = true
		o.neighbors[a] = append(o.neighbors[a], b)
		o.neighbors[b] = append(o.neighbors[b], a)
	}
	for _, m := range members {
		d := min(degree, len(members)-1)
		perm := rng.Perm(len(members))
		added := 0
		for _, pi := range perm {
			if added >= d {
				break
			}
			peer := members[pi]
			if peer == m {
				continue
			}
			addEdge(m, peer)
			added++
		}
	}
	for _, m := range members {
		sort.Ints(o.neighbors[m])
	}
	return o
}

// Members returns the topic members.
func (o *Overlay) Members() []int { return o.members }

// Neighbors returns the mesh neighbours of a node (nil for non-members).
func (o *Overlay) Neighbors(node int) []int { return o.neighbors[node] }

// Connected reports whether the mesh graph is connected over its members;
// a disconnected mesh cannot deliver to everyone.
func (o *Overlay) Connected() bool {
	if len(o.members) == 0 {
		return true
	}
	seen := map[int]bool{o.members[0]: true}
	stack := []int{o.members[0]}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, nb := range o.neighbors[cur] {
			if !seen[nb] {
				seen[nb] = true
				stack = append(stack, nb)
			}
		}
	}
	return len(seen) == len(o.members)
}

// MsgID identifies a published message for duplicate suppression.
type MsgID uint64

// RouterStats counts one router's gossip activity, cumulative across
// Reset calls (Reset clears duplicate-suppression state, not counters).
type RouterStats struct {
	// Published counts messages originated by this node.
	Published int
	// Received counts incoming copies that were new to this node.
	Received int
	// Duplicates counts incoming copies that were already seen.
	Duplicates int
	// Forwarded counts peers the node was told to forward copies to.
	Forwarded int
}

// Router tracks seen messages for one node across topics and computes
// forwarding decisions. It is the per-node gossip state machine.
type Router struct {
	node string // diagnostics only
	self int
	seen map[MsgID]bool

	// Stats accumulates the router's activity counters.
	Stats RouterStats
}

// NewRouter creates the per-node router.
func NewRouter(self int) *Router {
	return &Router{self: self, seen: make(map[MsgID]bool)}
}

// Publish returns the peers the node sends a NEW message to (all its mesh
// neighbours), marking the message as seen locally.
func (r *Router) Publish(o *Overlay, id MsgID) []int {
	r.seen[id] = true
	out := o.Neighbors(r.self)
	r.Stats.Published++
	r.Stats.Forwarded += len(out)
	return out
}

// Receive processes an incoming copy of a message from peer `from` and
// returns the peers to forward it to (all mesh neighbours except from),
// or nil if it is a duplicate. The bool reports whether the message was
// new to this node.
func (r *Router) Receive(o *Overlay, id MsgID, from int) ([]int, bool) {
	if r.seen[id] {
		r.Stats.Duplicates++
		return nil, false
	}
	r.seen[id] = true
	nbs := o.Neighbors(r.self)
	out := make([]int, 0, len(nbs))
	for _, nb := range nbs {
		if nb != from {
			out = append(out, nb)
		}
	}
	r.Stats.Received++
	r.Stats.Forwarded += len(out)
	return out, true
}

// Seen reports whether the message has been observed by this node.
func (r *Router) Seen(id MsgID) bool { return r.seen[id] }

// Reset clears seen-message state (between slots).
func (r *Router) Reset() { r.seen = make(map[MsgID]bool) }

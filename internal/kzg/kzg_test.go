package kzg

import (
	"math/rand"
	"testing"

	"pandas/internal/blob"
)

func makeExtended(t testing.TB, seed int64) *blob.Extended {
	t.Helper()
	p := blob.Params{K: 4, CellBytes: 32, ProofBytes: ProofSize}
	rng := rand.New(rand.NewSource(seed))
	data := make([]byte, p.BlobBytes())
	rng.Read(data)
	b, err := blob.NewBlob(p, data)
	if err != nil {
		t.Fatal(err)
	}
	e, err := blob.Extend(b)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestCommitDeterministic(t *testing.T) {
	e := makeExtended(t, 1)
	c1 := Commit(e)
	c2 := Commit(e)
	if c1 != c2 {
		t.Fatal("Commit not deterministic")
	}
}

func TestCommitSensitiveToData(t *testing.T) {
	e1 := makeExtended(t, 1)
	e2 := makeExtended(t, 2)
	if Commit(e1) == Commit(e2) {
		t.Fatal("different blobs share a commitment")
	}
}

func TestProveVerifyRoundTrip(t *testing.T) {
	e := makeExtended(t, 3)
	c := Commit(e)
	n := e.N()
	for r := 0; r < n; r += 3 {
		for col := 0; col < n; col += 3 {
			id := blob.CellID{Row: uint16(r), Col: uint16(col)}
			p := Prove(c, id, e.Cell(id))
			if !Verify(c, id, e.Cell(id), p) {
				t.Fatalf("Verify failed for %v", id)
			}
		}
	}
}

func TestVerifyRejectsTamperedCell(t *testing.T) {
	e := makeExtended(t, 4)
	c := Commit(e)
	id := blob.CellID{Row: 1, Col: 2}
	cell := append([]byte(nil), e.Cell(id)...)
	p := Prove(c, id, cell)
	cell[0] ^= 1
	if Verify(c, id, cell, p) {
		t.Fatal("Verify accepted tampered cell")
	}
}

func TestVerifyRejectsWrongPosition(t *testing.T) {
	e := makeExtended(t, 5)
	c := Commit(e)
	id := blob.CellID{Row: 1, Col: 2}
	p := Prove(c, id, e.Cell(id))
	wrong := blob.CellID{Row: 2, Col: 1}
	if Verify(c, wrong, e.Cell(id), p) {
		t.Fatal("Verify accepted proof at wrong position")
	}
}

func TestVerifyRejectsWrongCommitment(t *testing.T) {
	e1 := makeExtended(t, 6)
	e2 := makeExtended(t, 7)
	c1, c2 := Commit(e1), Commit(e2)
	id := blob.CellID{Row: 0, Col: 0}
	p := Prove(c1, id, e1.Cell(id))
	if Verify(c2, id, e1.Cell(id), p) {
		t.Fatal("Verify accepted proof under wrong commitment")
	}
}

func TestProveAllCoversMatrix(t *testing.T) {
	e := makeExtended(t, 8)
	c := Commit(e)
	proofs := ProveAll(e, c)
	n := e.N()
	if len(proofs) != n*n {
		t.Fatalf("len(proofs) = %d, want %d", len(proofs), n*n)
	}
	for _, idx := range []int{0, 1, n, n*n - 1} {
		id := blob.CellIDFromIndex(idx, n)
		if !Verify(c, id, e.Cell(id), proofs[idx]) {
			t.Fatalf("proof %d invalid", idx)
		}
	}
}

func TestProofSizeMatchesPaper(t *testing.T) {
	if ProofSize != 48 {
		t.Fatalf("ProofSize = %d, want 48", ProofSize)
	}
	var p Proof
	if len(p) != 48 {
		t.Fatalf("len(Proof) = %d", len(p))
	}
}

func TestMerkleRootEdgeCases(t *testing.T) {
	// Empty and single-leaf trees must not panic and must be stable.
	r0 := merkleRoot(nil)
	r0b := merkleRoot(nil)
	if r0 != r0b {
		t.Fatal("empty root unstable")
	}
	leaf := [32]byte{1}
	r1 := merkleRoot([][32]byte{leaf})
	if r1 != leaf {
		t.Fatal("single leaf should be its own root")
	}
	// Odd number of leaves (promotion path).
	r3 := merkleRoot([][32]byte{{1}, {2}, {3}})
	r3b := merkleRoot([][32]byte{{1}, {2}, {3}})
	if r3 != r3b {
		t.Fatal("odd-leaf root unstable")
	}
	if r3 == merkleRoot([][32]byte{{1}, {2}, {4}}) {
		t.Fatal("root insensitive to last leaf")
	}
}

func BenchmarkProve(b *testing.B) {
	e := makeExtended(b, 9)
	c := Commit(e)
	id := blob.CellID{Row: 1, Col: 1}
	cell := e.Cell(id)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Prove(c, id, cell)
	}
}

func BenchmarkVerify(b *testing.B) {
	e := makeExtended(b, 10)
	c := Commit(e)
	id := blob.CellID{Row: 1, Col: 1}
	cell := e.Cell(id)
	p := Prove(c, id, cell)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !Verify(c, id, cell, p) {
			b.Fatal("verify failed")
		}
	}
}

// TestVerifyBatchMatchesVerify: VerifyBatch must agree with per-cell
// Verify on every cell and report the valid count, with corrupted
// cells flagged individually.
func TestVerifyBatchMatchesVerify(t *testing.T) {
	e := makeExtended(t, 11)
	c := Commit(e)
	var ids []blob.CellID
	var cells [][]byte
	var proofs []Proof
	for r := 0; r < 4; r++ {
		for col := 0; col < 4; col++ {
			id := blob.CellID{Row: uint16(r), Col: uint16(col)}
			cell := e.Cell(id)
			ids = append(ids, id)
			cells = append(cells, cell)
			proofs = append(proofs, Prove(c, id, cell))
		}
	}
	ok := make([]bool, len(ids))
	if valid := VerifyBatch(c, ids, cells, proofs, ok); valid != len(ids) {
		t.Fatalf("valid = %d, want %d", valid, len(ids))
	}
	for i := range ok {
		if !ok[i] {
			t.Fatalf("cell %d rejected in all-good batch", i)
		}
	}
	// Corrupt two entries: one proof, one payload.
	proofs[3][0] ^= 0xff
	cells[9] = append([]byte(nil), cells[9]...)
	cells[9][0] ^= 1
	if valid := VerifyBatch(c, ids, cells, proofs, ok); valid != len(ids)-2 {
		t.Fatalf("valid = %d, want %d", valid, len(ids)-2)
	}
	for i := range ok {
		want := i != 3 && i != 9
		if ok[i] != want {
			t.Fatalf("cell %d: ok=%v, want %v", i, ok[i], want)
		}
		if got := Verify(c, ids[i], cells[i], proofs[i]); got != ok[i] {
			t.Fatalf("cell %d: batch=%v disagrees with Verify=%v", i, ok[i], got)
		}
	}
}

func BenchmarkVerifyBatch64(b *testing.B) {
	e := makeExtended(b, 12)
	c := Commit(e)
	const n = 64
	ids := make([]blob.CellID, n)
	cells := make([][]byte, n)
	proofs := make([]Proof, n)
	for i := 0; i < n; i++ {
		ids[i] = blob.CellID{Row: uint16(i / 8), Col: uint16(i % 8)}
		cells[i] = e.Cell(ids[i])
		proofs[i] = Prove(c, ids[i], cells[i])
	}
	ok := make([]bool, n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if VerifyBatch(c, ids, cells, proofs, ok) != n {
			b.Fatal("batch failed")
		}
	}
}

package kzg

import (
	"testing"

	"pandas/internal/blob"
)

func TestMerkleProveVerify(t *testing.T) {
	e := makeExtended(t, 20)
	tree := NewMerkleTree(e)
	root := tree.Root()
	n := e.N()
	for idx := 0; idx < n*n; idx += 3 {
		id := blob.CellIDFromIndex(idx, n)
		path := tree.Prove(id)
		if !MerkleVerify(root, id, e.Cell(id), path, n) {
			t.Fatalf("valid path rejected for %v", id)
		}
	}
}

func TestMerkleVerifyRejectsForgery(t *testing.T) {
	e := makeExtended(t, 21)
	tree := NewMerkleTree(e)
	root := tree.Root()
	n := e.N()
	id := blob.CellID{Row: 2, Col: 3}
	path := tree.Prove(id)

	// Tampered payload: unlike the 48-byte hash scheme, NO party can
	// produce a valid path for forged data.
	forged := append([]byte(nil), e.Cell(id)...)
	forged[0] ^= 1
	if MerkleVerify(root, id, forged, path, n) {
		t.Fatal("forged payload accepted")
	}
	// Wrong position.
	other := blob.CellID{Row: 3, Col: 2}
	if MerkleVerify(root, other, e.Cell(id), path, n) {
		t.Fatal("wrong position accepted")
	}
	// Truncated path.
	if MerkleVerify(root, id, e.Cell(id), path[:len(path)-1], n) {
		t.Fatal("truncated path accepted")
	}
	// Wrong root.
	var badRoot [32]byte
	if MerkleVerify(badRoot, id, e.Cell(id), path, n) {
		t.Fatal("wrong root accepted")
	}
}

func TestMerkleProofSize(t *testing.T) {
	// 512x512 = 2^18 leaves -> 18 levels -> 576 bytes.
	if got := MerkleProofSize(512); got != 18*32 {
		t.Fatalf("MerkleProofSize(512) = %d, want %d", got, 18*32)
	}
	// The paper's 48-byte KZG proofs are 12x smaller — the reason real
	// deployments use polynomial commitments.
	if MerkleProofSize(512) <= ProofSize {
		t.Fatal("expected Merkle proofs to be larger than KZG proofs")
	}
}

func TestMerkleDeterministicRoot(t *testing.T) {
	e := makeExtended(t, 22)
	r1 := NewMerkleTree(e).Root()
	r2 := NewMerkleTree(e).Root()
	if r1 != r2 {
		t.Fatal("root not deterministic")
	}
	e2 := makeExtended(t, 23)
	if NewMerkleTree(e2).Root() == r1 {
		t.Fatal("different blobs share a root")
	}
}

func BenchmarkMerkleProve(b *testing.B) {
	e := makeExtended(b, 24)
	tree := NewMerkleTree(e)
	id := blob.CellID{Row: 1, Col: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree.Prove(id)
	}
}

func BenchmarkMerkleVerify(b *testing.B) {
	e := makeExtended(b, 25)
	tree := NewMerkleTree(e)
	id := blob.CellID{Row: 1, Col: 1}
	path := tree.Prove(id)
	root := tree.Root()
	n := e.N()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !MerkleVerify(root, id, e.Cell(id), path, n) {
			b.Fatal("verify failed")
		}
	}
}

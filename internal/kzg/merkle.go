package kzg

import (
	"crypto/sha256"
	"encoding/binary"

	"pandas/internal/blob"
)

// This file provides a second, cryptographically binding commitment
// variant: Merkle inclusion proofs over the cells of the extended matrix.
//
// The 48-byte hash construction in kzg.go preserves the paper's wire
// sizes but — unlike real KZG — lets any party derive a "valid" proof for
// arbitrary data. When binding matters more than matching the 48-byte
// proof size (e.g. adversarial cell-forgery experiments), MerkleCommit /
// MerkleProve / MerkleVerify give genuine soundness at the cost of
// log2(n^2) x 32-byte proofs (576 B for the 512x512 matrix).

// MerkleProofSize returns the inclusion-proof size in bytes for an
// extended width n.
func MerkleProofSize(n int) int {
	depth := 0
	for total := 1; total < n*n; total *= 2 {
		depth++
	}
	return depth * 32
}

// MerklePath is a bottom-up inclusion path: the sibling hash at each
// level of the cell tree.
type MerklePath [][32]byte

// MerkleTree is the full cell-hash tree of one extended blob, kept by the
// builder to produce inclusion paths.
type MerkleTree struct {
	n      int
	levels [][][32]byte // levels[0] = leaves (padded to a power of two)
}

// leafHash binds a cell's position and payload.
func leafHash(id blob.CellID, cell []byte) [32]byte {
	h := sha256.New()
	var hdr [5]byte
	hdr[0] = 0x00 // leaf domain separator
	binary.BigEndian.PutUint16(hdr[1:3], id.Row)
	binary.BigEndian.PutUint16(hdr[3:5], id.Col)
	h.Write(hdr[:])
	h.Write(cell)
	var out [32]byte
	h.Sum(out[:0])
	return out
}

func innerHash(a, b [32]byte) [32]byte {
	h := sha256.New()
	h.Write([]byte{0x01}) // inner domain separator
	h.Write(a[:])
	h.Write(b[:])
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// NewMerkleTree builds the cell tree of an extended blob.
func NewMerkleTree(e *blob.Extended) *MerkleTree {
	n := e.N()
	size := 1
	for size < n*n {
		size *= 2
	}
	leaves := make([][32]byte, size)
	for idx := 0; idx < n*n; idx++ {
		id := blob.CellIDFromIndex(idx, n)
		leaves[idx] = leafHash(id, e.Cell(id))
	}
	// Padding leaves stay zero, hashed like normal nodes.
	t := &MerkleTree{n: n, levels: [][][32]byte{leaves}}
	for len(t.levels[len(t.levels)-1]) > 1 {
		prev := t.levels[len(t.levels)-1]
		next := make([][32]byte, len(prev)/2)
		for i := range next {
			next[i] = innerHash(prev[2*i], prev[2*i+1])
		}
		t.levels = append(t.levels, next)
	}
	return t
}

// Root returns the tree root (the binding commitment).
func (t *MerkleTree) Root() [32]byte {
	return t.levels[len(t.levels)-1][0]
}

// Prove returns the inclusion path for a cell.
func (t *MerkleTree) Prove(id blob.CellID) MerklePath {
	idx := id.Index(t.n)
	path := make(MerklePath, 0, len(t.levels)-1)
	for level := 0; level < len(t.levels)-1; level++ {
		path = append(path, t.levels[level][idx^1])
		idx /= 2
	}
	return path
}

// MerkleVerify checks a cell payload against a root using its inclusion
// path. Unlike Verify in kzg.go, a mismatched payload cannot be given a
// valid path without breaking SHA-256.
func MerkleVerify(root [32]byte, id blob.CellID, cell []byte, path MerklePath, n int) bool {
	idx := id.Index(n)
	acc := leafHash(id, cell)
	for _, sib := range path {
		if idx%2 == 0 {
			acc = innerHash(acc, sib)
		} else {
			acc = innerHash(sib, acc)
		}
		idx /= 2
	}
	return idx == 0 && acc == root
}

// Package kzg provides a simulated Kate-Zaverucha-Goldberg commitment
// scheme for blob cells.
//
// SUBSTITUTION NOTE (see DESIGN.md §4): the real Danksharding design uses
// KZG polynomial commitments over BLS12-381, which require pairing
// cryptography outside the Go standard library. PANDAS's contribution is a
// networking protocol; what it needs from KZG is only
//
//  1. a small constant-size commitment registered in the block (KZGC),
//  2. a 48-byte per-cell proof carried with every cell (KZGP), and
//  3. a cheap per-cell verification check on receipt.
//
// This package preserves all three with a hash-based construction:
//
//   - each row of the extended matrix gets a row digest (SHA-256 over the
//     row index and all cell payloads);
//   - the blob Commitment is a Merkle root over the row digests;
//   - the per-cell Proof is the first 48 bytes of
//     SHA-256(commitment || row || col || cell payload) — verifiable by
//     anyone holding the commitment and the cell.
//
// Unlike real KZG, a proof here can only be PRODUCED by a party holding
// the commitment and the cell (the builder), which matches the paper's
// rational-builder model: the builder never sends incorrect data because
// detection forfeits its reward. Wire sizes are identical to the paper's
// (48-byte proofs, 32-byte commitments), so all bandwidth results carry
// over unchanged.
package kzg

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"hash"
	"sync"

	"pandas/internal/blob"
)

// ProofSize is the per-cell proof size in bytes, matching real KZG.
const ProofSize = 48

// CommitmentSize is the commitment size in bytes.
const CommitmentSize = 32

// Errors returned by this package.
var (
	ErrBadProofSize = errors.New("kzg: proof has wrong size")
)

// Commitment binds an entire extended blob, standing in for the KZG
// commitment (KZGC) registered in the blob-carrying transaction.
type Commitment [CommitmentSize]byte

// Proof binds one cell to a Commitment, standing in for the per-cell KZG
// proof (KZGP).
type Proof [ProofSize]byte

// Commit computes the blob commitment: a binary Merkle root over per-row
// digests of the extended matrix.
func Commit(e *blob.Extended) Commitment {
	n := e.N()
	leaves := make([][32]byte, n)
	for r := 0; r < n; r++ {
		h := sha256.New()
		var idx [4]byte
		binary.BigEndian.PutUint32(idx[:], uint32(r))
		h.Write(idx[:])
		for _, cell := range e.Line(blob.Line{Kind: blob.Row, Index: uint16(r)}) {
			h.Write(cell)
		}
		h.Sum(leaves[r][:0])
	}
	return Commitment(merkleRoot(leaves))
}

// merkleRoot folds the leaves pairwise; an odd tail node is promoted.
func merkleRoot(level [][32]byte) [32]byte {
	if len(level) == 0 {
		return sha256.Sum256(nil)
	}
	for len(level) > 1 {
		next := make([][32]byte, 0, (len(level)+1)/2)
		for i := 0; i+1 < len(level); i += 2 {
			h := sha256.New()
			h.Write(level[i][:])
			h.Write(level[i+1][:])
			var d [32]byte
			h.Sum(d[:0])
			next = append(next, d)
		}
		if len(level)%2 == 1 {
			next = append(next, level[len(level)-1])
		}
		level = next
	}
	return level[0]
}

// scratch holds the reusable hash states and digest buffers of one
// proof computation. Pooling it keeps Prove/Verify/VerifyBatch
// allocation-free in steady state: the two SHA-256 states are Reset
// between cells and the digests land in fixed arrays.
type scratch struct {
	h1, h2 hash.Hash
	d1, d2 [sha256.Size]byte
}

var scratchPool = sync.Pool{New: func() any {
	return &scratch{h1: sha256.New(), h2: sha256.New()}
}}

// proveInto computes the proof for one cell using pooled scratch state.
func (s *scratch) proveInto(c Commitment, id blob.CellID, cell []byte) Proof {
	s.h1.Reset()
	s.h1.Write(c[:])
	var hdr [4]byte
	binary.BigEndian.PutUint16(hdr[0:2], id.Row)
	binary.BigEndian.PutUint16(hdr[2:4], id.Col)
	s.h1.Write(hdr[:])
	s.h1.Write(cell)
	s.h1.Sum(s.d1[:0])
	// Extend to 48 bytes with a second domain-separated digest.
	s.h2.Reset()
	s.h2.Write([]byte{0x01})
	s.h2.Write(s.d1[:])
	s.h2.Sum(s.d2[:0])
	var p Proof
	copy(p[:32], s.d1[:])
	copy(p[32:], s.d2[:16])
	return p
}

// Prove produces the 48-byte proof for a single cell. Only a party holding
// the commitment and the cell payload (i.e. the builder, or a node that
// already verified the cell) can produce it.
func Prove(c Commitment, id blob.CellID, cell []byte) Proof {
	s := scratchPool.Get().(*scratch)
	p := s.proveInto(c, id, cell)
	scratchPool.Put(s)
	return p
}

// Verify checks a cell payload against the commitment using its proof.
func Verify(c Commitment, id blob.CellID, cell []byte, p Proof) bool {
	return Prove(c, id, cell) == p
}

// VerifyBatch checks many cells against one commitment, amortizing the
// scratch state across the whole batch: one pooled pair of hash states
// serves every cell, so queued gateway responses verify without
// per-cell allocation. ids, cells, and proofs are parallel slices; ok
// (which must be at least as long as ids) receives the per-cell verdict
// and the number of valid cells is returned.
func VerifyBatch(c Commitment, ids []blob.CellID, cells [][]byte, proofs []Proof, ok []bool) int {
	s := scratchPool.Get().(*scratch)
	valid := 0
	for i, id := range ids {
		good := s.proveInto(c, id, cells[i]) == proofs[i]
		ok[i] = good
		if good {
			valid++
		}
	}
	scratchPool.Put(s)
	return valid
}

// ProveAll computes proofs for every cell of the extended matrix, returned
// in row-major order. This is the builder's preparatory step (Fig. 2 of
// the paper).
func ProveAll(e *blob.Extended, c Commitment) []Proof {
	n := e.N()
	out := make([]Proof, n*n)
	for r := 0; r < n; r++ {
		for col := 0; col < n; col++ {
			id := blob.CellID{Row: uint16(r), Col: uint16(col)}
			out[id.Index(n)] = Prove(c, id, e.Cell(id))
		}
	}
	return out
}

// Package kzg provides a simulated Kate-Zaverucha-Goldberg commitment
// scheme for blob cells.
//
// SUBSTITUTION NOTE (see DESIGN.md §4): the real Danksharding design uses
// KZG polynomial commitments over BLS12-381, which require pairing
// cryptography outside the Go standard library. PANDAS's contribution is a
// networking protocol; what it needs from KZG is only
//
//  1. a small constant-size commitment registered in the block (KZGC),
//  2. a 48-byte per-cell proof carried with every cell (KZGP), and
//  3. a cheap per-cell verification check on receipt.
//
// This package preserves all three with a hash-based construction:
//
//   - each row of the extended matrix gets a row digest (SHA-256 over the
//     row index and all cell payloads);
//   - the blob Commitment is a Merkle root over the row digests;
//   - the per-cell Proof is the first 48 bytes of
//     SHA-256(commitment || row || col || cell payload) — verifiable by
//     anyone holding the commitment and the cell.
//
// Unlike real KZG, a proof here can only be PRODUCED by a party holding
// the commitment and the cell (the builder), which matches the paper's
// rational-builder model: the builder never sends incorrect data because
// detection forfeits its reward. Wire sizes are identical to the paper's
// (48-byte proofs, 32-byte commitments), so all bandwidth results carry
// over unchanged.
package kzg

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"

	"pandas/internal/blob"
)

// ProofSize is the per-cell proof size in bytes, matching real KZG.
const ProofSize = 48

// CommitmentSize is the commitment size in bytes.
const CommitmentSize = 32

// Errors returned by this package.
var (
	ErrBadProofSize = errors.New("kzg: proof has wrong size")
)

// Commitment binds an entire extended blob, standing in for the KZG
// commitment (KZGC) registered in the blob-carrying transaction.
type Commitment [CommitmentSize]byte

// Proof binds one cell to a Commitment, standing in for the per-cell KZG
// proof (KZGP).
type Proof [ProofSize]byte

// Commit computes the blob commitment: a binary Merkle root over per-row
// digests of the extended matrix.
func Commit(e *blob.Extended) Commitment {
	n := e.N()
	leaves := make([][32]byte, n)
	for r := 0; r < n; r++ {
		h := sha256.New()
		var idx [4]byte
		binary.BigEndian.PutUint32(idx[:], uint32(r))
		h.Write(idx[:])
		for _, cell := range e.Line(blob.Line{Kind: blob.Row, Index: uint16(r)}) {
			h.Write(cell)
		}
		h.Sum(leaves[r][:0])
	}
	return Commitment(merkleRoot(leaves))
}

// merkleRoot folds the leaves pairwise; an odd tail node is promoted.
func merkleRoot(level [][32]byte) [32]byte {
	if len(level) == 0 {
		return sha256.Sum256(nil)
	}
	for len(level) > 1 {
		next := make([][32]byte, 0, (len(level)+1)/2)
		for i := 0; i+1 < len(level); i += 2 {
			h := sha256.New()
			h.Write(level[i][:])
			h.Write(level[i+1][:])
			var d [32]byte
			h.Sum(d[:0])
			next = append(next, d)
		}
		if len(level)%2 == 1 {
			next = append(next, level[len(level)-1])
		}
		level = next
	}
	return level[0]
}

// Prove produces the 48-byte proof for a single cell. Only a party holding
// the commitment and the cell payload (i.e. the builder, or a node that
// already verified the cell) can produce it.
func Prove(c Commitment, id blob.CellID, cell []byte) Proof {
	h := sha256.New()
	h.Write(c[:])
	var hdr [4]byte
	binary.BigEndian.PutUint16(hdr[0:2], id.Row)
	binary.BigEndian.PutUint16(hdr[2:4], id.Col)
	h.Write(hdr[:])
	h.Write(cell)
	d1 := h.Sum(nil)
	// Extend to 48 bytes with a second domain-separated digest.
	h2 := sha256.New()
	h2.Write([]byte{0x01})
	h2.Write(d1)
	d2 := h2.Sum(nil)
	var p Proof
	copy(p[:32], d1)
	copy(p[32:], d2[:16])
	return p
}

// Verify checks a cell payload against the commitment using its proof.
func Verify(c Commitment, id blob.CellID, cell []byte, p Proof) bool {
	return Prove(c, id, cell) == p
}

// ProveAll computes proofs for every cell of the extended matrix, returned
// in row-major order. This is the builder's preparatory step (Fig. 2 of
// the paper).
func ProveAll(e *blob.Extended, c Commitment) []Proof {
	n := e.N()
	out := make([]Proof, n*n)
	for r := 0; r < n; r++ {
		for col := 0; col < n; col++ {
			id := blob.CellID{Row: uint16(r), Col: uint16(col)}
			out[id.Index(n)] = Prove(c, id, e.Cell(id))
		}
	}
	return out
}

// Package kzg provides a simulated Kate-Zaverucha-Goldberg commitment
// scheme for blob cells.
//
// SUBSTITUTION NOTE (see DESIGN.md §4): the real Danksharding design uses
// KZG polynomial commitments over BLS12-381, which require pairing
// cryptography outside the Go standard library. PANDAS's contribution is a
// networking protocol; what it needs from KZG is only
//
//  1. a small constant-size commitment registered in the block (KZGC),
//  2. a 48-byte per-cell proof carried with every cell (KZGP), and
//  3. a cheap per-cell verification check on receipt.
//
// This package preserves all three with a hash-based construction built
// around one SHA-256 pass per cell payload:
//
//   - every cell gets a cell digest
//     d = SHA-256(0x02 || row || col || payload);
//   - each row gets a row digest SHA-256(0x03 || row || cell digests),
//     and the blob Commitment is a Merkle root over the row digests;
//   - the per-cell Proof is SHA-256(commitment || d[:16]) followed by
//     the first 16 bytes of d — verifiable by anyone holding the
//     commitment and the cell, since verification recomputes d from the
//     payload. Binding to the digest's 48-byte prefix keeps the binding
//     hash input inside one SHA-256 block (one compression per proof).
//
// The cell digest is computed once and shared by the commitment and the
// proof, so the builder hashes each payload byte exactly once; the
// Committer type below streams this work row by row. Unlike real KZG, a
// proof here can only be PRODUCED by a party holding the commitment and
// the cell (the builder), which matches the paper's rational-builder
// model: the builder never sends incorrect data because detection
// forfeits its reward. Wire sizes are identical to the paper's (48-byte
// proofs, 32-byte commitments), so all bandwidth results carry over
// unchanged.
package kzg

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"hash"
	"sync"
	"sync/atomic"

	"pandas/internal/blob"
)

// ProofSize is the per-cell proof size in bytes, matching real KZG.
const ProofSize = 48

// CommitmentSize is the commitment size in bytes.
const CommitmentSize = 32

// Domain-separation prefixes. 0x00/0x01 are taken by the binding Merkle
// tree in merkle.go.
const (
	domainCell = 0x02
	domainRow  = 0x03
)

// Errors returned by this package.
var (
	ErrBadProofSize = errors.New("kzg: proof has wrong size")
)

// Commitment binds an entire extended blob, standing in for the KZG
// commitment (KZGC) registered in the blob-carrying transaction.
type Commitment [CommitmentSize]byte

// Proof binds one cell to a Commitment, standing in for the per-cell KZG
// proof (KZGP).
type Proof [ProofSize]byte

// Committer accumulates per-cell digests row by row and derives the
// commitment and all proofs from them, hashing each payload byte exactly
// once. All arenas are retained across Reset, so a builder reusing one
// Committer per slot commits and proves with zero steady-state
// allocation. HashRow/Root are not safe for concurrent use (feed rows
// from one goroutine at a time); ProveAll runs its own worker pool over
// the finished digest arena.
type Committer struct {
	n       int
	digests [][32]byte // n*n cell digests, row-major
	rows    [][32]byte // n row digests
	fold    [][32]byte // Merkle scratch (Root must not consume rows)
	h       hash.Hash
	hdr     [8]byte // staged header bytes (see scratch.buf)
	cellBuf []byte  // header||payload staging for one-shot cell digests
}

// NewCommitter returns a Committer sized for an n x n extended matrix.
func NewCommitter(n int) *Committer {
	cm := &Committer{h: sha256.New()}
	cm.Reset(n)
	return cm
}

// Reset prepares the Committer for a fresh n x n matrix, reusing its
// arenas when the geometry allows.
func (cm *Committer) Reset(n int) {
	cm.n = n
	if cap(cm.digests) < n*n {
		cm.digests = make([][32]byte, n*n)
	}
	cm.digests = cm.digests[:n*n]
	if cap(cm.rows) < n {
		cm.rows = make([][32]byte, n)
		cm.fold = make([][32]byte, n)
	}
	cm.rows = cm.rows[:n]
	cm.fold = cm.fold[:n]
}

// N returns the matrix width the Committer was Reset for.
func (cm *Committer) N() int { return cm.n }

// HashRow digests row r from its contiguous byte span (n cells of
// cellBytes each, as returned by blob.Extended.RowBytes): n cell
// digests into the arena, then the row digest over them. Each row must
// be hashed exactly once per Reset before Root or ProveAll.
func (cm *Committer) HashRow(r int, row []byte, cellBytes int) {
	n := cm.n
	d := cm.digests[r*n : (r+1)*n]
	// Cell digests go through the one-shot Sum256 over a staged
	// header||payload buffer: the copy is L1-resident and cheaper than
	// the streaming hash.Hash interface's per-cell Reset/Sum state churn.
	if cap(cm.cellBuf) < 5+cellBytes {
		cm.cellBuf = make([]byte, 5+cellBytes)
	}
	buf := cm.cellBuf[:5+cellBytes]
	buf[0] = domainCell
	binary.BigEndian.PutUint16(buf[1:3], uint16(r))
	for c := 0; c < n; c++ {
		binary.BigEndian.PutUint16(buf[3:5], uint16(c))
		copy(buf[5:], row[c*cellBytes:(c+1)*cellBytes])
		d[c] = sha256.Sum256(buf)
	}
	cm.hdr[0] = domainRow
	binary.BigEndian.PutUint32(cm.hdr[1:5], uint32(r))
	cm.h.Reset()
	cm.h.Write(cm.hdr[:5])
	for c := range d {
		cm.h.Write(d[c][:])
	}
	cm.h.Sum(cm.rows[r][:0])
}

// Root returns the commitment: a binary Merkle root over the row
// digests. The row digests are preserved (the fold runs on scratch), so
// Root may be called while proofs are still being generated.
func (cm *Committer) Root() Commitment {
	copy(cm.fold, cm.rows)
	return Commitment(merkleFold(cm.fold, cm.h))
}

// proveRow fills out[r*n:(r+1)*n] from the row's cell digests.
func (cm *Committer) proveRow(s *scratch, c Commitment, r int, out []Proof) {
	n := cm.n
	d := cm.digests[r*n : (r+1)*n]
	row := out[r*n : (r+1)*n]
	for i := range d {
		row[i] = s.proofFromDigest(c, &d[i])
	}
}

// ProveAll fills out (row-major, len >= n*n) with the proof of every
// cell against c, reusing the cell digests accumulated by HashRow — no
// payload is re-hashed. workers bounds the prover pool (values <= 1 run
// inline on the caller); each worker pins one pooled scratch for its
// whole life, so the steady-state loop performs zero allocations.
// rowDone, when non-nil, is invoked exactly once per row after that
// row's proofs are fully written; rows may finish out of order. All
// rows are complete when ProveAll returns.
func (cm *Committer) ProveAll(c Commitment, out []Proof, workers int, rowDone func(r int)) {
	n := cm.n
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		s := scratchPool.Get().(*scratch)
		for r := 0; r < n; r++ {
			cm.proveRow(s, c, r, out)
			if rowDone != nil {
				rowDone(r)
			}
		}
		scratchPool.Put(s)
		return
	}
	var (
		wg   sync.WaitGroup
		next atomic.Int64
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := scratchPool.Get().(*scratch)
			defer scratchPool.Put(s)
			for {
				r := int(next.Add(1)) - 1
				if r >= n {
					return
				}
				cm.proveRow(s, c, r, out)
				if rowDone != nil {
					rowDone(r)
				}
			}
		}()
	}
	wg.Wait()
}

// Commit computes the blob commitment for a fully extended matrix.
// Builders on the hot path should use a reused Committer instead; this
// convenience form allocates a fresh one.
func Commit(e *blob.Extended) Commitment {
	n := e.N()
	cb := e.Params().CellBytes
	cm := NewCommitter(n)
	for r := 0; r < n; r++ {
		cm.HashRow(r, e.RowBytes(r), cb)
	}
	return cm.Root()
}

// merkleFold folds the level pairwise in place with the supplied hash
// state (an odd tail node is promoted), consuming the slice's contents.
func merkleFold(level [][32]byte, h hash.Hash) [32]byte {
	for m := len(level); m > 1; {
		half := m / 2
		for i := 0; i < half; i++ {
			h.Reset()
			h.Write(level[2*i][:])
			h.Write(level[2*i+1][:])
			h.Sum(level[i][:0])
		}
		if m%2 == 1 {
			level[half] = level[m-1]
			m = half + 1
		} else {
			m = half
		}
	}
	return level[0]
}

// merkleRoot folds the leaves pairwise with one pooled hash state,
// reusing the input slice as scratch (its contents are consumed).
func merkleRoot(level [][32]byte) [32]byte {
	if len(level) == 0 {
		return sha256.Sum256(nil)
	}
	s := scratchPool.Get().(*scratch)
	root := merkleFold(level, s.h1)
	scratchPool.Put(s)
	return root
}

// scratch holds the reusable hash state and digest buffers of one
// proof computation. Pooling it keeps Prove/Verify/VerifyBatch
// allocation-free in steady state: the SHA-256 state is Reset between
// cells, the digests land in fixed arrays, and buf stages small inputs
// so no stack-local array escapes through the hash.Hash interface (an
// interface Write moves its argument to the heap).
type scratch struct {
	h1     hash.Hash
	d1, d2 [sha256.Size]byte
	buf    [64]byte
}

var scratchPool = sync.Pool{New: func() any {
	return &scratch{h1: sha256.New()}
}}

// proofFromDigest derives a cell's proof from its cell digest: a
// 32-byte binding hash over (commitment || d[:16]) plus the digest's
// first 16 bytes, which verification recomputes anyway. The 48-byte
// binding input fits one SHA-256 block with its padding, so each proof
// costs a single compression and the payload is untouched.
func (s *scratch) proofFromDigest(c Commitment, d *[sha256.Size]byte) Proof {
	copy(s.buf[:32], c[:])
	copy(s.buf[32:48], d[:16])
	s.d2 = sha256.Sum256(s.buf[:48])
	var p Proof
	copy(p[:32], s.d2[:])
	copy(p[32:], d[:16])
	return p
}

// cellDigestInto computes the cell digest d = H(0x02 || row || col ||
// payload) into out.
func (s *scratch) cellDigestInto(id blob.CellID, cell []byte, out *[sha256.Size]byte) {
	s.buf[0] = domainCell
	binary.BigEndian.PutUint16(s.buf[1:3], id.Row)
	binary.BigEndian.PutUint16(s.buf[3:5], id.Col)
	s.h1.Reset()
	s.h1.Write(s.buf[:5])
	s.h1.Write(cell)
	s.h1.Sum(out[:0])
}

// proveInto computes the proof for one cell using pooled scratch state.
func (s *scratch) proveInto(c Commitment, id blob.CellID, cell []byte) Proof {
	s.cellDigestInto(id, cell, &s.d1)
	return s.proofFromDigest(c, &s.d1)
}

// Prove produces the 48-byte proof for a single cell. Only a party holding
// the commitment and the cell payload (i.e. the builder, or a node that
// already verified the cell) can produce it.
func Prove(c Commitment, id blob.CellID, cell []byte) Proof {
	s := scratchPool.Get().(*scratch)
	p := s.proveInto(c, id, cell)
	scratchPool.Put(s)
	return p
}

// Verify checks a cell payload against the commitment using its proof.
func Verify(c Commitment, id blob.CellID, cell []byte, p Proof) bool {
	return Prove(c, id, cell) == p
}

// VerifyBatch checks many cells against one commitment, amortizing the
// scratch state across the whole batch: one pooled pair of hash states
// serves every cell, so queued gateway responses verify without
// per-cell allocation. ids, cells, and proofs are parallel slices; ok
// (which must be at least as long as ids) receives the per-cell verdict
// and the number of valid cells is returned.
func VerifyBatch(c Commitment, ids []blob.CellID, cells [][]byte, proofs []Proof, ok []bool) int {
	s := scratchPool.Get().(*scratch)
	valid := 0
	for i, id := range ids {
		good := s.proveInto(c, id, cells[i]) == proofs[i]
		ok[i] = good
		if good {
			valid++
		}
	}
	scratchPool.Put(s)
	return valid
}

// ProveAll computes proofs for every cell of the extended matrix,
// returned in row-major order, with one pooled scratch hoisted over the
// whole n*n loop. Builders should prefer Committer.ProveAll, which
// shares the payload hashing with Commit; this form re-digests every
// cell.
func ProveAll(e *blob.Extended, c Commitment) []Proof {
	n := e.N()
	out := make([]Proof, n*n)
	s := scratchPool.Get().(*scratch)
	for r := 0; r < n; r++ {
		for col := 0; col < n; col++ {
			id := blob.CellID{Row: uint16(r), Col: uint16(col)}
			out[id.Index(n)] = s.proveInto(c, id, e.Cell(id))
		}
	}
	scratchPool.Put(s)
	return out
}

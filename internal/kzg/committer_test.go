package kzg

import (
	"sync"
	"testing"

	"pandas/internal/blob"
)

func hashAllRows(cm *Committer, e *blob.Extended) {
	cb := e.Params().CellBytes
	for r := 0; r < e.N(); r++ {
		cm.HashRow(r, e.RowBytes(r), cb)
	}
}

// TestCommitterMatchesCommit pins the streaming Committer against the
// one-shot Commit and ProveAll forms: same commitment, same proofs, for
// every prover worker count, and across a Reset/reuse cycle.
func TestCommitterMatchesCommit(t *testing.T) {
	e := makeExtended(t, 21)
	n := e.N()
	wantC := Commit(e)
	wantP := ProveAll(e, wantC)

	cm := NewCommitter(n)
	for cycle := 0; cycle < 2; cycle++ { // second cycle exercises Reset reuse
		cm.Reset(n)
		hashAllRows(cm, e)
		gotC := cm.Root()
		if gotC != wantC {
			t.Fatalf("cycle %d: Committer root differs from Commit", cycle)
		}
		for _, workers := range []int{0, 1, 2, 3, 8} {
			got := make([]Proof, n*n)
			var mu sync.Mutex
			done := make(map[int]int)
			cm.ProveAll(gotC, got, workers, func(r int) {
				mu.Lock()
				done[r]++
				mu.Unlock()
			})
			for i := range got {
				if got[i] != wantP[i] {
					t.Fatalf("cycle %d workers=%d: proof %d differs from ProveAll", cycle, workers, i)
				}
			}
			if len(done) != n {
				t.Fatalf("workers=%d: rowDone fired for %d of %d rows", workers, len(done), n)
			}
			for r, c := range done {
				if c != 1 {
					t.Fatalf("workers=%d: rowDone fired %d times for row %d", workers, c, r)
				}
			}
		}
	}
}

// TestCommitterRootStable pins that Root does not consume the row
// digests (it folds on scratch), so it can be recomputed.
func TestCommitterRootStable(t *testing.T) {
	e := makeExtended(t, 22)
	cm := NewCommitter(e.N())
	hashAllRows(cm, e)
	if cm.Root() != cm.Root() {
		t.Fatal("repeated Root calls disagree")
	}
}

// BenchmarkProveRowSteady measures the steady-state prover inner loop —
// one row of proofs from pre-computed digests — and is gated at zero
// allocations per op in scripts/bench.sh.
func BenchmarkProveRowSteady(b *testing.B) {
	e := makeExtended(b, 23)
	n := e.N()
	cm := NewCommitter(n)
	hashAllRows(cm, e)
	c := cm.Root()
	out := make([]Proof, n*n)
	s := scratchPool.Get().(*scratch)
	defer scratchPool.Put(s)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cm.proveRow(s, c, i%n, out)
	}
}

// BenchmarkCommitterSlot measures the full paper-scale commit+prove
// path the builder runs per slot (512x512 cells of 512 B), reusing the
// Committer as the builder does.
func BenchmarkCommitterSlot(b *testing.B) {
	if testing.Short() {
		b.Skip("paper-scale benchmark")
	}
	p := blob.DefaultParams()
	data := make([]byte, p.BlobBytes())
	for i := range data {
		data[i] = byte(i * 2654435761)
	}
	e, err := blob.ExtendData(p, data, blob.ExtendOptions{})
	if err != nil {
		b.Fatal(err)
	}
	n := e.N()
	cm := NewCommitter(n)
	out := make([]Proof, n*n)
	b.SetBytes(int64(n * n * p.CellBytes))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cm.Reset(n)
		hashAllRows(cm, e)
		cm.ProveAll(cm.Root(), out, 1, nil)
	}
}

package core

import (
	"crypto/ed25519"
	"errors"
	"math/rand"
	"sort"
	"time"

	"pandas/internal/blob"
	"pandas/internal/fetch"
	"pandas/internal/ids"
	"pandas/internal/membership"
	"pandas/internal/obsv"
	"pandas/internal/wire"
)

// LivenessRecorder is the node-side contract of peer-liveness scoring:
// the fetcher reports per-peer query outcomes and consults queryability
// and penalties when scoring candidates. Implemented by
// membership.Scorer.
type LivenessRecorder interface {
	fetch.Liveness
	// ReportTimeout records that a query to the peer expired unanswered.
	ReportTimeout(peer int)
	// ReportSuccess records a response from the peer.
	ReportSuccess(peer int)
	// ReportGarbage records that the peer served cells failing proof
	// verification — worse than a timeout: the peer is alive and lying.
	ReportGarbage(peer int)
}

// RoundStat captures the fetching progress of one node during one round,
// the quantities reported in Table 1 of the paper. It is an alias of
// obsv.RoundStat: the observability layer owns the definition and core
// re-exports it so existing call sites keep compiling.
type RoundStat = obsv.RoundStat

// NodeMetrics aggregates one node's per-slot observations. It is an
// alias of obsv.NodeView: the live view maintained by the node's
// obsv.Observer is the single source of truth, and Node.Metrics()
// returns a copy of it.
type NodeMetrics = obsv.NodeView

// inflightTTL is how long an unanswered query still counts toward a
// cell's redundancy target before other peers are asked instead. Queried
// peers that lack a cell buffer the request and reply once their own
// seeding/consolidation delivers it — typically within the builder's
// ~1 s transmission window — so expiring earlier only produces duplicate
// deliveries, while expiring much later delays recovery from genuinely
// lost responses.
const inflightTTL = 1600 * time.Millisecond

// flushDelay is the coalescing window for replies to buffered queries.
const flushDelay = 25 * time.Millisecond

type boostParcel struct {
	line  blob.Line
	start int
	count int
}

// Node is one PANDAS participant: it custodies assigned rows/columns,
// consolidates them from peers, answers custody queries, and samples
// random cells — all per slot.
type Node struct {
	cfg   Config
	index int
	table *Table
	tr    Transport
	rng   *rand.Rand

	// view reports whether a peer is in this node's (possibly incomplete
	// and possibly evolving) view; nil means the full view.
	view membership.View

	// liveness scores peer responsiveness; nil disables scoring (the
	// static-membership configuration).
	liveness LivenessRecorder

	// verifySeeds enables proposer-signature checks on seed messages.
	verifySeeds bool
	proposerPub ed25519.PublicKey

	// Per-slot state. The maps are cleared and reused across slots (and
	// the store reset in place) instead of reallocated: per-slot garbage
	// is what caps how many nodes fit in one process.
	slot       uint64
	store      *Store
	samples    []blob.CellID
	pendingSmp map[blob.CellID]bool
	boost      map[int][]boostParcel
	queried    map[int]bool
	queryRound map[int]int
	buffered   map[blob.CellID]map[int]bool
	round      int
	lastRearm  int
	roundEnds  []time.Duration
	fetching   bool
	seedTimer  bool
	seedChunks int
	seedDone   bool
	// promised holds cells the builder's CB map says are being seeded to
	// THIS node; they are excluded from fetching until the seed batch
	// completes or goes quiet (pipelining: fetch what peers have while
	// the builder is still transmitting, without re-requesting what is
	// already on its way).
	promised map[blob.CellID]bool
	// outstanding maps cells with in-flight queries to the expiry times
	// of those queries; unexpired entries count toward the redundancy
	// target so rounds do not re-request what is already on its way.
	outstanding map[blob.CellID][]time.Duration
	// pendingOut coalesces responses to buffered queries: cells often
	// land in bursts (seed chunks, reconstruction), and answering each
	// arrival individually would multiply message counts. A short timer
	// flushes the batch.
	pendingOut map[int][]wire.Cell
	flushArmed bool
	// cbSeeded records, per assigned line, which positions the builder's
	// CB map says were seeded SOMEWHERE; those are the cheap cells to
	// fetch and are preferred when choosing which missing cells to
	// request. Positions are a bitset (one word per 64 line positions).
	cbSeeded map[blob.Line][]uint64
	// awaitReply tracks, per queried peer, the deadline by which SOME
	// response must arrive before the peer is reported to the liveness
	// scorer as timed out. Only maintained when liveness is set.
	awaitReply map[int]time.Duration
	// badPeers bans, for the rest of the slot, peers that served cells
	// failing proof verification: unlike a timeout (which exponential
	// backoff forgives), a bad proof is cryptographic evidence of
	// misbehavior, so the planner never asks the peer again this slot —
	// including across the periodic queried-set re-arm sweeps.
	badPeers map[int]bool
	// gen invalidates timers armed for an earlier lifetime of this node:
	// it increments on every StartSlot, so a node that crashes and
	// restarts within the same slot does not execute stale callbacks.
	gen uint64

	// Scratch buffers reused across calls on the event-loop hot paths
	// (drawSamples, addCells, missingCells, planRound). All are cleared
	// before use; none escape the call that fills them.
	drawSeen     map[int]bool
	touchedScr   map[blob.Line]bool
	linesScr     []blob.Line
	missSeen     map[blob.CellID]bool
	missBuf      []blob.CellID
	promOnScr    map[blob.Line]int
	planIndex    map[blob.CellID]int
	planLines    map[blob.Line][]int
	planOrder    []blob.Line
	planScores   map[int]int
	planBoosted  map[int][]int
	planBoostOrd []int
	planStamp    []int
	planSamples  []int
	planCounts   []int
	planScored   []fetch.Scored

	// obs maintains the current slot's metrics view and (optionally)
	// traces protocol events through cfg.Recorder.
	obs obsv.Observer

	// mRejects counts proof-verification rejects in the shared registry
	// (nil without cfg.Metrics).
	mRejects *obsv.Counter
}

// NewNode creates a node bound to a transport address. rngSeed drives the
// node's local (unpredictable to others) choices: sample selection.
func NewNode(cfg Config, index int, table *Table, tr Transport, rngSeed int64) *Node {
	n := &Node{
		cfg:   cfg,
		index: index,
		table: table,
		tr:    tr,
		rng:   rand.New(rand.NewSource(rngSeed)),
		obs:   obsv.Observer{Rec: cfg.Recorder, Node: int32(index)},
	}
	if cfg.Metrics != nil {
		n.mRejects = cfg.Metrics.Counter("fetch_corrupt_rejects_total")
	}
	return n
}

// Metrics returns the node's observations for the current slot — a copy
// of the live view the node's observer maintains.
func (n *Node) Metrics() NodeMetrics { return n.obs.View }

// SetView restricts the node's knowledge of the network. Views may be
// static predicates (membership.ViewFunc) or evolve while the slot runs
// (membership.LiveView). Passing nil restores the complete view.
func (n *Node) SetView(v membership.View) { n.view = v }

// View returns the node's current view (nil means complete).
func (n *Node) View() membership.View { return n.view }

// SetLiveness installs peer-liveness scoring: query timeouts demote
// peers and the fetch planner skips demoted ones. Passing nil disables
// scoring.
func (n *Node) SetLiveness(l LivenessRecorder) { n.liveness = l }

// SetSeedVerification enables proposer-signature verification of seeding
// messages against the given proposer public key.
func (n *Node) SetSeedVerification(pub ed25519.PublicKey) {
	n.verifySeeds = pub != nil
	n.proposerPub = pub
}

// Index returns the node's transport address.
func (n *Node) Index() int { return n.index }

// afterGuarded schedules fn but drops it if the node has since been
// restarted (StartSlot increments gen). Slot-number checks alone cannot
// catch a crash+restart WITHIN one slot, and they also let a timer armed
// near the end of slot s leak into slot s when the counter wraps around
// a multi-slot run; the generation counter closes both holes.
func (n *Node) afterGuarded(d time.Duration, fn func()) {
	g := n.gen
	n.tr.After(d, func() {
		if n.gen == g {
			fn()
		}
	})
}

// Transport returns the node's transport (for callers that need its
// clock, e.g. converting completion times across endpoints).
func (n *Node) Transport() Transport { return n.tr }

// Store exposes the current slot's custody store (for inspection).
func (n *Node) Store() *Store { return n.store }

// Samples returns the cells selected for sampling this slot.
func (n *Node) Samples() []blob.CellID { return n.samples }

// StartSlot resets per-slot state: recomputes nothing (the assignment
// lives in the shared epoch table), resets the store in place, and draws
// the slot's random sample set. Fetching does not start until seed cells
// arrive, a custody query arms the seed-wait timer, or the fallback
// timer (3x SeedWait) fires.
func (n *Node) StartSlot(slot uint64) {
	n.slot = slot
	n.gen++
	a := n.table.Assignment(n.index)
	if n.store == nil {
		n.store = NewStore(n.cfg.Blob, a, n.cfg.RealPayloads, n.verifySeeds)
	} else {
		n.store.Reset(a, n.cfg.RealPayloads, n.verifySeeds)
	}
	n.samples = n.drawSamples()
	n.pendingSmp = resetMap(n.pendingSmp, len(n.samples))
	for _, c := range n.samples {
		n.pendingSmp[c] = true
	}
	n.boost = resetMap(n.boost, 0)
	n.queried = resetMap(n.queried, 0)
	n.queryRound = resetMap(n.queryRound, 0)
	n.buffered = resetMap(n.buffered, 0)
	n.round = 0
	n.lastRearm = 0
	n.roundEnds = n.roundEnds[:0]
	n.fetching = false
	n.seedTimer = false
	n.seedChunks = 0
	n.seedDone = false
	n.promised = resetMap(n.promised, 0)
	n.outstanding = resetMap(n.outstanding, 0)
	n.cbSeeded = resetMap(n.cbSeeded, 0)
	n.pendingOut = resetMap(n.pendingOut, 0)
	n.flushArmed = false
	n.awaitReply = resetMap(n.awaitReply, 0)
	n.badPeers = resetMap(n.badPeers, 0)
	n.obs.BeginSlot(slot, n.tr.Now())

	// Fallback: a node the builder does not know never receives seeds and
	// may never be queried; it still must sample.
	n.afterGuarded(3*n.cfg.SeedWait, func() {
		if !n.obs.View.HasSeed && !n.fetching && !n.done() {
			n.startFetch()
		}
	})
}

// JoinSlot brings a node online partway through a slot: a joiner (or a
// restarting crasher) starts from an empty store — whatever it held
// before going down is gone — and must fetch everything it needs from
// peers. Seeding has typically already passed it by, so the StartSlot
// fallback timer is what kicks off its fetch unless a custody query or a
// straggling seed datagram arrives first.
func (n *Node) JoinSlot(slot uint64) { n.StartSlot(slot) }

// drawSamples picks Samples distinct random cells, unpredictable to
// other participants (unlike the custody assignment).
func (n *Node) drawSamples() []blob.CellID {
	total := n.cfg.Blob.ExtendedCells()
	count := n.cfg.Samples
	n.drawSeen = resetMap(n.drawSeen, count)
	out := make([]blob.CellID, 0, count)
	for len(out) < count {
		idx := n.rng.Intn(total)
		if n.drawSeen[idx] {
			continue
		}
		n.drawSeen[idx] = true
		out = append(out, blob.CellIDFromIndex(idx, n.cfg.Blob.N()))
	}
	return out
}

// resetMap returns m emptied for reuse, allocating only on first use.
func resetMap[K comparable, V any](m map[K]V, hint int) map[K]V {
	if m == nil {
		return make(map[K]V, hint)
	}
	clear(m)
	return m
}

// HandleMessage dispatches a received protocol payload. It reports
// whether the payload was a PANDAS message.
func (n *Node) HandleMessage(from int, size int, payload any) bool {
	switch m := payload.(type) {
	case *wire.Seed:
		n.onSeed(m)
	case *wire.Query:
		n.obs.View.FetchMsgsRecv++
		n.obs.View.FetchBytesRecv += int64(size)
		n.onQuery(from, m)
	case *wire.Response:
		n.obs.View.FetchMsgsRecv++
		n.obs.View.FetchBytesRecv += int64(size)
		n.onResponse(from, m)
	default:
		return false
	}
	return true
}

func (n *Node) onSeed(m *wire.Seed) {
	if m.Slot != n.slot || n.store == nil {
		return
	}
	if n.verifySeeds {
		if !ids.VerifyFrom(n.proposerPub, wire.SeedSigningBytes(m.Slot, m.Builder), m.ProposerSig[:]) {
			return // unauthenticated seeding: ignore
		}
	}
	if _, ok := n.store.Commitment(); !ok {
		n.store.SetCommitment(m.Commitment)
	}
	now := n.tr.Now()
	n.obs.SeedChunk(now, len(m.Cells))
	n.seedChunks++
	// Watchdog for lost tail chunks: if no further seed datagram lands
	// within the seed-wait period, fetching starts with what we have.
	// SeedAt doubles as the generation marker, so only the timer armed by
	// the LAST chunk received fires the fetch.
	generation := now
	n.afterGuarded(n.cfg.SeedWait, func() {
		if n.obs.View.SeedAt != generation {
			return
		}
		// Seed flow went quiet without completing: any promised cells
		// that never arrived were lost — fetch them from peers.
		n.seedDone = true
		n.promised = nil
		if !n.fetching && !n.done() {
			n.startFetch()
		}
	})
	dups, added, rejects := n.addCells(m.Cells)
	n.obs.SeedIngested(now, added, dups)
	if rejects > 0 && n.obs.Enabled() {
		// Peer -1: the rejecting batch came from the seeding path, not a
		// fetch peer (nothing to ban — seeds are already authenticated).
		n.obs.Emit(obsv.Event{At: now, Kind: obsv.KindCorruptReject,
			Peer: -1, Count: int32(rejects)})
	}
	for _, e := range m.Boost {
		peer := n.table.HolderAt(e.Line, int(e.HolderRef))
		if peer < 0 {
			continue
		}
		seeded := n.cbSeeded[e.Line]
		if seeded == nil {
			seeded = make([]uint64, (n.cfg.Blob.N()+63)/64)
			n.cbSeeded[e.Line] = seeded
		}
		for p := int(e.Start); p < int(e.Start)+int(e.Count); p++ {
			seeded[p/64] |= 1 << uint(p%64)
		}
		if peer == n.index {
			// Our own parcels: the builder is sending these cells to us.
			for pos := int(e.Start); pos < int(e.Start)+int(e.Count); pos++ {
				n.promised[cellOnLine(e.Line, pos)] = true
			}
			continue
		}
		n.boost[peer] = append(n.boost[peer], boostParcel{line: e.Line, start: int(e.Start), count: int(e.Count)})
	}
	if n.seedChunks >= int(m.ChunkCount) {
		// Full batch landed: everything still missing is fair game.
		n.seedDone = true
		n.promised = nil
	}
	// The reception of seed cells triggers consolidation and sampling
	// (Fig. 5). Cells still being transmitted by the builder are excluded
	// from F via the promised set, so the pipeline starts immediately
	// without re-requesting in-flight seed data.
	if !n.fetching && !n.done() {
		n.startFetch()
	} else if n.fetching && n.seedDone {
		n.updateCompletion()
	}
}

func (n *Node) onQuery(from int, m *wire.Query) {
	if m.Slot != n.slot || n.store == nil {
		return
	}
	var have []wire.Cell
	for _, id := range m.Cells {
		if c, ok := n.store.Get(id); ok {
			have = append(have, c)
			continue
		}
		if n.store.Covered(id) {
			// Assigned but not yet received: buffer, reply when it lands
			// (no negative acknowledgements).
			reqs, ok := n.buffered[id]
			if !ok {
				reqs = make(map[int]bool, 1)
				n.buffered[id] = reqs
			}
			reqs[from] = true
		}
	}
	n.sendCells(from, have)

	// A request for a slot we have no seed cells for arms the seed-wait
	// timer (Section 6.2): if the builder's seeds never arrive (packet
	// loss, or the builder does not know this node), fetching starts
	// regardless. The timer is generous — three seed-wait periods — so
	// that nodes seeded late in the builder's ~1 s transmission schedule
	// still start from their seed batch rather than from nothing, which
	// keeps round-1 queries aimed at peers that already hold data (the
	// paper's Table 1 dynamics).
	if !n.obs.View.HasSeed && !n.fetching && !n.seedTimer {
		n.seedTimer = true
		n.afterGuarded(3*n.cfg.SeedWait, func() {
			if !n.obs.View.HasSeed && !n.fetching && !n.done() {
				n.startFetch()
			}
		})
	}
}

func (n *Node) onResponse(from int, m *wire.Response) {
	if m.Slot != n.slot || n.store == nil {
		return
	}
	// Any response — even an empty or partial one — settles the reply
	// deadline; whether it counts for or against the peer depends on
	// whether its cells verify.
	delete(n.awaitReply, from)
	var dups, added, rejects int
	round := 0
	// Attribute the reply to the round in which the peer was queried.
	if r, ok := n.queryRound[from]; ok && r >= 1 && r <= len(n.roundEnds) {
		round = r
		stat := &n.obs.View.Rounds[r-1]
		inRound := n.tr.Now() <= n.roundEnds[r-1]
		if inRound {
			stat.RepliesInRound++
			stat.CellsInRound += len(m.Cells)
		} else {
			stat.RepliesAfterRound++
			stat.CellsAfterRound += len(m.Cells)
		}
		dups, added, rejects = n.addCells(m.Cells)
		stat.Duplicates += dups
	} else {
		dups, added, rejects = n.addCells(m.Cells)
	}
	if n.obs.Enabled() {
		n.obs.Emit(obsv.Event{At: n.tr.Now(), Kind: obsv.KindCellsReceived,
			Src: obsv.SrcFetch, Peer: int32(from), Round: int32(round),
			Count: int32(added), Aux: int64(dups)})
	}
	if rejects > 0 {
		// Cryptographic evidence of misbehavior — a signed commitment and
		// a cell that fails against it. Ban the peer for the rest of the
		// slot (the periodic queried-set re-arm must not resurrect it) and
		// report garbage rather than success to the liveness scorer.
		n.badPeers[from] = true
		if n.liveness != nil {
			n.liveness.ReportGarbage(from)
		}
		if n.obs.Enabled() {
			n.obs.Emit(obsv.Event{At: n.tr.Now(), Kind: obsv.KindCorruptReject,
				Peer: int32(from), Round: int32(round), Count: int32(rejects)})
		}
		return
	}
	if n.liveness != nil {
		n.liveness.ReportSuccess(from)
	}
}

// addCells ingests a batch of cells: store them, satisfy samples, flush
// buffered queries, attempt erasure reconstruction, and update phase
// completion. It returns the duplicate count, the number of cells added,
// and the number rejected for failing proof verification. Rejected cells
// are never ingested: their in-flight markers are dropped on the spot so
// the next round's plan re-requests them from other peers.
func (n *Node) addCells(cells []wire.Cell) (dups, added, rejects int) {
	if len(cells) == 0 {
		return 0, 0, 0
	}
	touched := resetMap(n.touchedScr, 4)
	n.touchedScr = touched
	for _, c := range cells {
		ok, err := n.store.Add(c)
		if errors.Is(err, ErrBadProof) {
			rejects++
			delete(n.outstanding, c.ID)
			n.obs.View.CorruptRejects++
			if n.mRejects != nil {
				n.mRejects.Inc()
			}
			continue
		}
		if err != nil || !ok {
			dups++
			continue
		}
		added++
		n.cellLanded(c, touched)
	}
	// Erasure reconstruction of any custody line that crossed the
	// half-full threshold (Algorithm 1, UPONRECEIVE).
	recon := 0
	lines := n.linesScr[:0]
	for line := range touched {
		lines = append(lines, line)
	}
	n.linesScr = lines
	sort.Slice(lines, func(i, j int) bool {
		if lines[i].Kind != lines[j].Kind {
			return lines[i].Kind < lines[j].Kind
		}
		return lines[i].Index < lines[j].Index
	})
	for _, line := range lines {
		newCells, err := n.store.TryReconstruct(line)
		if err != nil {
			continue
		}
		recon += len(newCells)
		for _, c := range newCells {
			n.cellLanded(c, nil)
		}
	}
	if recon > 0 && n.round >= 1 && n.round <= len(n.obs.View.Rounds) {
		n.obs.View.Rounds[n.round-1].Reconstructed += recon
	}
	if recon > 0 && n.obs.Enabled() {
		n.obs.Emit(obsv.Event{At: n.tr.Now(), Kind: obsv.KindCellsReceived,
			Src: obsv.SrcReconstruct, Peer: -1, Round: int32(n.round),
			Count: int32(recon)})
	}
	n.armFlush()
	n.updateCompletion()
	return dups, added, rejects
}

// armFlush schedules a coalesced transmission of buffered-query replies.
func (n *Node) armFlush() {
	if n.flushArmed || len(n.pendingOut) == 0 {
		return
	}
	n.flushArmed = true
	n.afterGuarded(flushDelay, func() {
		n.flushArmed = false
		recipients := make([]int, 0, len(n.pendingOut))
		for to := range n.pendingOut {
			recipients = append(recipients, to)
		}
		sort.Ints(recipients)
		for _, to := range recipients {
			n.sendCells(to, n.pendingOut[to])
		}
		clear(n.pendingOut)
	})
}

// cellLanded performs the bookkeeping for one newly present cell.
func (n *Node) cellLanded(c wire.Cell, touched map[blob.Line]bool) {
	if n.pendingSmp[c.ID] {
		delete(n.pendingSmp, c.ID)
	}
	delete(n.outstanding, c.ID)
	if reqs, ok := n.buffered[c.ID]; ok {
		full, _ := n.store.Get(c.ID)
		for to := range reqs {
			n.pendingOut[to] = append(n.pendingOut[to], full)
		}
		delete(n.buffered, c.ID)
	}
	if touched != nil {
		rowLine := blob.Line{Kind: blob.Row, Index: c.ID.Row}
		colLine := blob.Line{Kind: blob.Col, Index: c.ID.Col}
		if n.store.LineCount(rowLine) > 0 && !n.store.LineComplete(rowLine) {
			touched[rowLine] = true
		}
		if n.store.LineCount(colLine) > 0 && !n.store.LineComplete(colLine) {
			touched[colLine] = true
		}
	}
}

// updateCompletion records consolidation and sampling completion times.
func (n *Node) updateCompletion() {
	now := n.tr.Now()
	if !n.obs.View.Consolidated && n.store.CompleteLines() == n.store.TrackedLines() {
		n.obs.ConsolidationDone(now)
	}
	if !n.obs.View.Sampled && len(n.pendingSmp) == 0 {
		n.obs.SamplingDone(now, len(n.samples))
	}
}

func (n *Node) done() bool {
	if n.cfg.DisableConsolidation {
		return n.obs.View.Sampled
	}
	return n.obs.View.Consolidated && n.obs.View.Sampled
}

// DeliverCustody ingests custody cells that arrived outside the PANDAS
// seeding path (e.g. via the GossipSub baseline's topic meshes). It
// triggers the sampling fetcher on first delivery.
func (n *Node) DeliverCustody(cells []wire.Cell) {
	if n.store == nil {
		return
	}
	n.addCells(cells)
	if !n.fetching && !n.done() {
		n.startFetch()
	}
}

// sendCells transmits cells to a peer in datagram-sized chunks.
func (n *Node) sendCells(to int, cells []wire.Cell) {
	for len(cells) > 0 {
		chunk := cells
		if len(chunk) > n.cfg.MaxCellsPerMsg {
			chunk = cells[:n.cfg.MaxCellsPerMsg]
		}
		cells = cells[len(chunk):]
		m := &wire.Response{Slot: n.slot, Cells: chunk}
		size := m.WireSize(n.cfg.Blob.CellBytes)
		n.obs.View.FetchMsgsSent++
		n.obs.View.FetchBytesSent += int64(size)
		n.tr.Send(to, size, m)
	}
}

// startFetch begins the adaptive fetching process (consolidation and
// sampling share it).
func (n *Node) startFetch() {
	n.fetching = true
	n.obs.View.InitialFetchSet = len(n.missingCells())
	n.runRound()
}

// missingCells computes F: custody cells not yet present plus samples not
// yet present. The returned slice is a scratch buffer owned by the node:
// it is valid until the next missingCells call (each round consumes its F
// before scheduling the next).
func (n *Node) missingCells() []blob.CellID {
	out := n.missBuf[:0]
	seen := resetMap(n.missSeen, 0)
	n.missSeen = seen
	if !n.cfg.DisableConsolidation {
		a := n.table.Assignment(n.index)
		half := n.cfg.Blob.K
		margin := half / 4
		if margin < 2 {
			margin = 2
		}
		promisedOn := resetMap(n.promOnScr, 0)
		n.promOnScr = promisedOn
		for id := range n.promised {
			promisedOn[blob.Line{Kind: blob.Row, Index: id.Row}]++
			promisedOn[blob.Line{Kind: blob.Col, Index: id.Col}]++
		}
		for _, l := range a.Lines() {
			have := n.store.LineCount(l)
			if have >= n.cfg.Blob.N() {
				continue
			}
			// Rational fetching: a line reconstructs from any K of its 2K
			// cells, so request only up to K+margin present cells rather
			// than every missing one — the erasure code supplies the rest.
			// Requesting everything would turn the decoder's surplus into
			// duplicate deliveries (and wasted bandwidth) for half a line.
			// Cells the builder has promised this node (its own CB
			// parcels, still in flight) count as good as received.
			needed := half + margin - have - promisedOn[l]
			if needed <= 0 {
				// Already past the threshold; reconstruction will fire as
				// soon as the in-flight cells land.
				continue
			}
			missing := n.store.MissingOnLine(l)
			seeded := n.cbSeeded[l]
			isSeeded := func(pos int) bool {
				return seeded != nil && seeded[pos/64]&(1<<uint(pos%64)) != 0
			}
			// Prefer positions the builder actually seeded somewhere, and
			// rotate the starting point with the round number so that a
			// cell that turns out to be unobtainable (lost response, dead
			// holder) does not pin the same subset forever.
			picked := 0
			for pass := 0; pass < 2 && picked < needed; pass++ {
				off := 0
				if len(missing) > 0 {
					off = (n.round * 13) % len(missing)
				}
				for i := range missing {
					if picked >= needed {
						break
					}
					pos := missing[(i+off)%len(missing)]
					if (pass == 0) != isSeeded(pos) {
						continue
					}
					id := cellOnLine(l, pos)
					if seen[id] || n.promised[id] {
						continue
					}
					seen[id] = true
					out = append(out, id)
					picked++
				}
			}
		}
	}
	for _, id := range n.samples {
		if n.pendingSmp[id] && !seen[id] && !n.promised[id] && !n.store.Has(id) {
			seen[id] = true
			out = append(out, id)
		}
	}
	n.missBuf = out
	return out
}

// runRound executes one round of Algorithm 1 and schedules the next.
func (n *Node) runRound() {
	if n.store == nil || !n.fetching {
		n.fetching = false
		return
	}
	F := n.missingCells()
	// Record cumulative coverage for the round that just ended (also when
	// the fetch completed during it).
	if n.round >= 1 && n.round <= len(n.obs.View.Rounds) && n.obs.View.InitialFetchSet > 0 {
		n.obs.View.Rounds[n.round-1].CoverageAfter =
			1 - float64(len(F))/float64(n.obs.View.InitialFetchSet)
	}
	if n.done() {
		n.fetching = false
		return
	}
	if n.round >= n.cfg.Schedule.MaxRounds {
		n.fetching = false
		return
	}
	n.round++
	// Sweep expired reply deadlines: a peer queried more than inflightTTL
	// ago with no response of any kind is reported to the liveness scorer,
	// which puts it into exponential backoff (and re-arms it later via the
	// queryable-set sweep below).
	if n.liveness != nil {
		now := n.tr.Now()
		for peer, deadline := range n.awaitReply {
			if now >= deadline {
				delete(n.awaitReply, peer)
				n.liveness.ReportTimeout(peer)
			}
		}
	}
	if len(F) == 0 {
		n.updateCompletion()
		n.fetching = false
		return
	}
	stat := RoundStat{}
	// Periodic re-arm: with single-copy data (the minimal policy) a lost
	// response can leave a cell whose only live holder has already been
	// queried; clearing the queried set every few rounds lets the node
	// retry it. In-flight markers keep this from duplicating requests in
	// the common case.
	if n.round > 1 && n.round-n.lastRearm >= 8 {
		n.lastRearm = n.round
		clear(n.queried)
	}
	plan := n.planRound(F)
	if len(plan) == 0 && len(F) > 0 && n.round > 1 && n.round-n.lastRearm >= 4 {
		// Every queryable peer has been used while cells remain missing —
		// possible because earlier rounds requested only budgeted subsets
		// of each line. Re-arm the queryable set (a fresh Q <- V sweep);
		// in-flight markers still prevent immediate duplicate requests,
		// and the sweep is rate-limited to one per four rounds.
		n.lastRearm = n.round
		clear(n.queried)
		plan = n.planRound(F)
	}
	if n.obs.Enabled() {
		n.obs.Emit(obsv.Event{At: n.tr.Now(), Kind: obsv.KindRoundStarted,
			Peer: -1, Round: int32(n.round), Count: int32(len(F)),
			Aux: int64(len(plan))})
	}
	for _, q := range plan {
		peer := q.Peer
		n.queried[peer] = true
		n.queryRound[peer] = n.round
		if n.liveness != nil {
			if _, waiting := n.awaitReply[peer]; !waiting {
				n.awaitReply[peer] = n.tr.Now() + inflightTTL
			}
		}
		cells := make([]blob.CellID, len(q.Cells))
		for i, idx := range q.Cells {
			cells[i] = F[idx]
		}
		stat.CellsRequested += len(cells)
		for len(cells) > 0 {
			chunk := cells
			if len(chunk) > n.cfg.MaxCellsPerMsg {
				chunk = cells[:n.cfg.MaxCellsPerMsg]
			}
			cells = cells[len(chunk):]
			m := &wire.Query{Slot: n.slot, Cells: chunk}
			size := m.WireSize(n.cfg.Blob.CellBytes)
			stat.MsgsSent++
			n.obs.View.FetchMsgsSent++
			n.obs.View.FetchBytesSent += int64(size)
			n.tr.Send(peer, size, m)
		}
	}
	timeout := n.cfg.Schedule.Timeout(n.round)
	n.obs.View.Rounds = append(n.obs.View.Rounds, stat)
	n.roundEnds = append(n.roundEnds, n.tr.Now()+timeout)
	n.afterGuarded(timeout, n.runRound)
}

// planRound builds scored candidates over the holders of every line that
// intersects F and plans queries with the round's redundancy factor.
func (n *Node) planRound(F []blob.CellID) []fetch.Query {
	index := resetMap(n.planIndex, len(F))
	n.planIndex = index
	for i, id := range F {
		index[id] = i
	}
	// Group F by line (both the row and the column of each cell can
	// serve it).
	lineCells := resetMap(n.planLines, 0)
	n.planLines = lineCells
	lineOrder := n.planOrder[:0]
	for i, id := range F {
		rl := blob.Line{Kind: blob.Row, Index: id.Row}
		cl := blob.Line{Kind: blob.Col, Index: id.Col}
		if len(lineCells[rl]) == 0 {
			lineOrder = append(lineOrder, rl)
		}
		lineCells[rl] = append(lineCells[rl], i)
		if len(lineCells[cl]) == 0 {
			lineOrder = append(lineOrder, cl)
		}
		lineCells[cl] = append(lineCells[cl], i)
	}
	n.planOrder = lineOrder
	// Score candidate peers: coverage per shared line plus boost. The
	// scan over each line's holders is windowed at maxLineCandidates —
	// in a dense deployment (small grid, huge N) a line can have
	// thousands of holders, and scoring all of them made planning (and
	// the O(N log N) sort in PlanLazyFrom) the simulator's dominant
	// cost, O(N²) across the cluster per round. The window rotates with
	// (node, round, line), so retries reach different peers each round;
	// at the paper's geometry (a handful of holders per line) every
	// holder is scored.
	//
	// Candidates accumulate into scored in first-encounter order —
	// lines in F order, holders in window order — which is
	// deterministic by construction, so equal-score ties resolve
	// identically across runs without sorting. scores maps each peer to
	// its index in scored.
	scores := resetMap(n.planScores, 0)
	n.planScores = scores
	scored := n.planScored[:0]
	truncated := false
	for _, line := range lineOrder {
		cells := lineCells[line]
		holders := n.table.Holders(line)
		span := len(holders)
		off := 0
		if span > maxLineCandidates {
			truncated = true
			off = scanOffset(n.index, n.round, line, span)
			span = maxLineCandidates
		}
		for j := 0; j < span; j++ {
			peer := holders[(off+j)%len(holders)]
			if peer == n.index || n.queried[peer] {
				continue
			}
			if n.view != nil && !n.view.Contains(peer) {
				continue
			}
			if idx, ok := scores[peer]; ok {
				scored[idx].Score += len(cells)
			} else {
				scores[peer] = len(scored)
				scored = append(scored, fetch.Scored{Peer: peer, Score: len(cells)})
			}
		}
	}
	// Consolidation boost: peers the builder's CB map lists as seeded
	// with cells still missing. Their score gets the cb_boost bonus, and
	// — crucially — the query planned for them targets exactly their
	// seeded cells, so round 1 pulls every cell from a peer that already
	// HAS it rather than from a peer that would buffer the request until
	// its own consolidation finishes.
	boostedCells := resetMap(n.planBoosted, 0)
	n.planBoosted = boostedCells
	if cap(n.planStamp) < len(F) {
		n.planStamp = make([]int, len(F))
	}
	stamp := n.planStamp[:len(F)]
	for i := range stamp {
		stamp[i] = 0
	}
	stampVal := 0
	// Iterate boost peers in sorted order: fallback admissions append to
	// scored, and the append order must not depend on map iteration.
	boostPeers := n.planBoostOrd[:0]
	for peer := range n.boost {
		boostPeers = append(boostPeers, peer)
	}
	sort.Ints(boostPeers)
	n.planBoostOrd = boostPeers
	for _, peer := range boostPeers {
		parcels := n.boost[peer]
		idx, ok := scores[peer]
		if !ok {
			// Full-scan rounds: absence means dead view / already
			// queried / not a holder. Windowed rounds can also have
			// sampled the peer out, and a CB-listed holder is exactly
			// who round 1 must reach, so admit it through the same
			// filters with its parcel coverage as the base score.
			if !truncated {
				continue
			}
			if peer == n.index || n.queried[peer] {
				continue
			}
			if n.view != nil && !n.view.Contains(peer) {
				continue
			}
			cov := 0
			for pi, p := range parcels {
				dup := false
				for _, q := range parcels[:pi] {
					if q.line == p.line {
						dup = true
						break
					}
				}
				if !dup {
					cov += len(lineCells[p.line])
				}
			}
			if cov == 0 {
				continue
			}
			idx = len(scored)
			scores[peer] = idx
			scored = append(scored, fetch.Scored{Peer: peer, Score: cov})
		}
		stampVal++
		var cells []int
		for _, p := range parcels {
			for pos := p.start; pos < p.start+p.count; pos++ {
				if i, ok := index[cellOnLine(p.line, pos)]; ok && stamp[i] != stampVal {
					stamp[i] = stampVal
					cells = append(cells, i)
				}
			}
		}
		if len(cells) > 0 {
			boostedCells[peer] = cells
			scored[idx].Score += len(cells) * n.cfg.CBBoost
		}
	}
	if n.obs.Enabled() && len(boostedCells) > 0 {
		total := 0
		for _, cells := range boostedCells {
			total += len(cells)
		}
		n.obs.Emit(obsv.Event{At: n.tr.Now(), Kind: obsv.KindBoostPromotion,
			Peer: -1, Round: int32(n.round), Count: int32(len(boostedCells)),
			Aux: int64(total)})
	}
	n.planScored = scored
	// Peers caught serving unverifiable cells are banned for the slot —
	// a stronger judgment than liveness backoff, which is why it is a
	// separate filter rather than a scorer state.
	if len(n.badPeers) > 0 {
		scored = fetch.Exclude(scored, func(peer int) bool { return n.badPeers[peer] })
	}
	if n.liveness != nil {
		var onSkip func(int)
		if n.obs.Enabled() {
			at := n.tr.Now()
			onSkip = func(peer int) {
				n.obs.Emit(obsv.Event{At: at, Kind: obsv.KindPeerDemoted,
					Peer: int32(peer), Round: int32(n.round)})
			}
		}
		scored = fetch.ApplyLivenessObserved(scored, n.liveness, onSkip)
	}

	// Sample cells have no CB entries; boosted peers may still cover
	// them through their assignments.
	sampleIdx := n.planSamples[:0]
	for i, id := range F {
		if n.pendingSmp[id] {
			sampleIdx = append(sampleIdx, i)
		}
	}
	n.planSamples = sampleIdx
	cellsOf := func(peer int) []int {
		if bc, ok := boostedCells[peer]; ok {
			out := bc
			a := n.table.Assignment(peer)
			for _, idx := range sampleIdx {
				if a.Covers(F[idx]) {
					dup := false
					for _, x := range bc {
						if x == idx {
							dup = true
							break
						}
					}
					if !dup {
						out = append(out, idx)
					}
				}
			}
			return out
		}
		var out []int
		for _, l := range n.table.Assignment(peer).Lines() {
			for _, idx := range lineCells[l] {
				if stamp[idx] != -(peer + 1) {
					stamp[idx] = -(peer + 1)
					out = append(out, idx)
				}
			}
		}
		return out
	}
	k := n.cfg.Schedule.RedundancyAt(n.round)
	// Unexpired in-flight queries count toward each cell's redundancy.
	now := n.tr.Now()
	if cap(n.planCounts) < len(F) {
		n.planCounts = make([]int, len(F))
	}
	counts := n.planCounts[:len(F)]
	for i, id := range F {
		exps := n.outstanding[id]
		live := exps[:0]
		for _, e := range exps {
			if e > now {
				live = append(live, e)
			}
		}
		if len(live) == 0 {
			delete(n.outstanding, id)
		} else {
			n.outstanding[id] = live
		}
		counts[i] = len(live)
	}
	plan := fetch.PlanLazyFrom(scored, counts, k, cellsOf)
	expiry := now + inflightTTL
	for _, q := range plan {
		for _, idx := range q.Cells {
			n.outstanding[F[idx]] = append(n.outstanding[F[idx]], expiry)
		}
	}
	return plan
}

// maxLineCandidates bounds how many holders of one line planRound
// scores. The redundancy ceiling is fetch.MaxRedundancy (10), so 64
// candidates per line leave ample slack for liveness demotions and
// banned peers while keeping planning O(lines) instead of O(N). See
// the comment at the scoring loop.
const maxLineCandidates = 64

// scanOffset picks the rotating window start for a line's holder scan:
// deterministic in (node, round, line) so runs are reproducible, varied
// across rounds so successive retries sample different holders.
func scanOffset(self, round int, l blob.Line, n int) int {
	x := uint64(self)*0x9e3779b97f4a7c15 ^
		uint64(round)*0xc2b2ae3d27d4eb4f ^
		(uint64(l.Index)<<3|uint64(l.Kind))*0xd6e8feb86659fd93
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int(x % uint64(n))
}

package core

import (
	"testing"
	"time"

	"pandas/internal/assign"
	"pandas/internal/blob"
	"pandas/internal/ids"
	"pandas/internal/wire"
)

func nodeFixture(t *testing.T, n int) (*Node, *Table, *captureTransport, Config) {
	t.Helper()
	cfg := TestConfig()
	nodeIDs := make([]ids.NodeID, n)
	for i := range nodeIDs {
		nodeIDs[i] = ids.NewTestIdentity(int64(i)).ID
	}
	var seed assign.Seed
	seed[0] = 3
	table, err := NewTable(cfg.Assign, seed, nodeIDs)
	if err != nil {
		t.Fatal(err)
	}
	tr := &captureTransport{}
	node := NewNode(cfg, 0, table, tr, 11)
	return node, table, tr, cfg
}

func seedFor(node *Node, table *Table, cfg Config, slot uint64, frac float64) *wire.Seed {
	a := table.Assignment(node.Index())
	m := &wire.Seed{Slot: slot, ChunkIndex: 0, ChunkCount: 1}
	for _, l := range a.Lines() {
		limit := int(float64(cfg.Blob.N()) * frac)
		for pos := 0; pos < limit; pos++ {
			m.Cells = append(m.Cells, wire.Cell{ID: cellOnLine(l, pos)})
		}
	}
	return m
}

func TestNodeSeedTriggersFetch(t *testing.T) {
	node, table, tr, cfg := nodeFixture(t, 60)
	node.StartSlot(1)
	if node.fetching {
		t.Fatal("fetching before seeds")
	}
	node.HandleMessage(99, 100, seedFor(node, table, cfg, 1, 0.3))
	if !node.fetching {
		t.Fatal("complete seed batch did not start fetching")
	}
	if !node.Metrics().HasSeed || node.Metrics().SeedCells == 0 {
		t.Fatal("seed metrics not recorded")
	}
	// Round 1 must have sent queries.
	queries := 0
	for _, s := range tr.sends {
		if _, ok := s.payload.(*wire.Query); ok {
			queries++
		}
	}
	if queries == 0 {
		t.Fatal("no queries sent in round 1")
	}
}

func TestNodeIncompleteBatchPipelinesAndWatchdogExpiresPromises(t *testing.T) {
	// Fetching is pipelined: it starts at the FIRST seed chunk, with
	// cells the builder promised excluded from F. If the batch never
	// completes, the watchdog declares the seed flow done and releases
	// the promises.
	node, table, tr, cfg := nodeFixture(t, 60)
	node.StartSlot(1)
	m := seedFor(node, table, cfg, 1, 0.3)
	m.ChunkCount = 2 // claim another chunk is coming
	node.HandleMessage(99, 100, m)
	if !node.fetching {
		t.Fatal("pipelined fetch did not start on first chunk")
	}
	if node.seedDone {
		t.Fatal("batch marked done while a chunk is outstanding")
	}
	tr.advance(cfg.SeedWait + time.Millisecond)
	if !node.seedDone {
		t.Fatal("watchdog did not expire the seed flow")
	}
	if node.promised != nil && len(node.promised) > 0 {
		t.Fatal("promises not released after watchdog")
	}
}

func TestNodeIgnoresWrongSlot(t *testing.T) {
	node, table, tr, cfg := nodeFixture(t, 60)
	node.StartSlot(2)
	node.HandleMessage(99, 100, seedFor(node, table, cfg, 1, 0.5)) // stale slot
	if node.Metrics().HasSeed {
		t.Fatal("accepted stale-slot seed")
	}
	_ = tr
}

func TestNodeQueryAnsweredFromStore(t *testing.T) {
	node, table, tr, cfg := nodeFixture(t, 60)
	node.StartSlot(1)
	a := table.Assignment(0)
	l := a.Lines()[0]
	held := cellOnLine(l, 0)
	node.HandleMessage(99, 100, &wire.Seed{
		Slot: 1, ChunkIndex: 0, ChunkCount: 1,
		Cells: []wire.Cell{{ID: held}},
	})
	tr.sends = nil
	node.HandleMessage(7, 50, &wire.Query{Slot: 1, Cells: []blob.CellID{held}})
	found := false
	for _, s := range tr.sends {
		if r, ok := s.payload.(*wire.Response); ok && s.to == 7 {
			for _, c := range r.Cells {
				if c.ID == held {
					found = true
				}
			}
		}
	}
	if !found {
		t.Fatal("held cell not served")
	}
	_ = cfg
}

func TestNodeQueryBufferedUntilCellArrives(t *testing.T) {
	node, table, tr, cfg := nodeFixture(t, 60)
	node.StartSlot(1)
	a := table.Assignment(0)
	l := a.Lines()[0]
	wanted := cellOnLine(l, 5)

	// Query for an assigned-but-missing cell: no response yet.
	node.HandleMessage(7, 50, &wire.Query{Slot: 1, Cells: []blob.CellID{wanted}})
	for _, s := range tr.sends {
		if _, ok := s.payload.(*wire.Response); ok {
			t.Fatal("responded before having the cell")
		}
	}
	// Cell arrives via a seed; the buffered query must be answered after
	// the coalescing window.
	node.HandleMessage(99, 100, &wire.Seed{
		Slot: 1, ChunkIndex: 0, ChunkCount: 1,
		Cells: []wire.Cell{{ID: wanted}},
	})
	tr.advance(tr.now + flushDelay + time.Millisecond)
	answered := false
	for _, s := range tr.sends {
		if r, ok := s.payload.(*wire.Response); ok && s.to == 7 {
			for _, c := range r.Cells {
				if c.ID == wanted {
					answered = true
				}
			}
		}
	}
	if !answered {
		t.Fatal("buffered query never answered")
	}
	_ = cfg
}

func TestNodeUncoveredQueryIgnored(t *testing.T) {
	node, table, tr, _ := nodeFixture(t, 60)
	node.StartSlot(1)
	// Find a cell NOT covered by node 0's assignment.
	a := table.Assignment(0)
	var uncovered blob.CellID
	found := false
	for r := 0; r < 32 && !found; r++ {
		for c := 0; c < 32 && !found; c++ {
			id := blob.CellID{Row: uint16(r), Col: uint16(c)}
			if !a.Covers(id) {
				uncovered, found = id, true
			}
		}
	}
	if !found {
		t.Skip("assignment covers the whole matrix")
	}
	node.HandleMessage(7, 50, &wire.Query{Slot: 1, Cells: []blob.CellID{uncovered}})
	if len(node.buffered) != 0 {
		t.Fatal("buffered a query for an uncovered cell")
	}
	_ = tr
}

func TestNodePromisedCellsNotRequested(t *testing.T) {
	node, table, tr, cfg := nodeFixture(t, 60)
	node.StartSlot(1)
	a := table.Assignment(0)
	l := a.Lines()[0]
	// Seed chunk 1 of 2: boost map promising positions [0, K) of line l to
	// THIS node.
	rank := table.HolderRank(l, 0)
	if rank < 0 {
		t.Fatal("node 0 must hold its own line")
	}
	m := &wire.Seed{
		Slot: 1, ChunkIndex: 0, ChunkCount: 2,
		Boost: []wire.BoostEntry{{
			Line: l, HolderRef: uint16(rank), Start: 0, Count: uint16(cfg.Blob.K),
		}},
	}
	node.HandleMessage(99, 100, m)
	// Fetch starts via watchdog (batch incomplete).
	tr.advance(cfg.SeedWait + time.Millisecond)
	if !node.fetching {
		t.Fatal("watchdog did not fire")
	}
	// Wait: watchdog expiry clears promises. Instead verify via direct
	// missing computation BEFORE expiry on a fresh fixture.
	node2 := NewNode(cfg, 0, table, &captureTransport{}, 12)
	node2.StartSlot(1)
	node2.HandleMessage(99, 100, m)
	missing := node2.missingCells()
	for _, id := range missing {
		if l.Contains(id) && int(positionOn(l, id)) < cfg.Blob.K {
			t.Fatalf("promised cell %v still requested", id)
		}
	}
}

// positionOn returns a cell's position along a line.
func positionOn(l blob.Line, id blob.CellID) uint16 {
	if l.Kind == blob.Row {
		return id.Col
	}
	return id.Row
}

func TestNodeReconstructionCompletesLines(t *testing.T) {
	node, table, tr, cfg := nodeFixture(t, 60)
	node.StartSlot(1)
	a := table.Assignment(0)
	l := a.Lines()[0]
	// Deliver exactly half of line l: reconstruction must complete it.
	m := &wire.Seed{Slot: 1, ChunkIndex: 0, ChunkCount: 1}
	for pos := 0; pos < cfg.Blob.K; pos++ {
		m.Cells = append(m.Cells, wire.Cell{ID: cellOnLine(l, pos)})
	}
	node.HandleMessage(99, 100, m)
	if !node.Store().LineComplete(l) {
		t.Fatalf("line %v not reconstructed: %d cells", l, node.Store().LineCount(l))
	}
	_ = tr
}

func TestNodeSampleSatisfiedByResponse(t *testing.T) {
	node, table, tr, cfg := nodeFixture(t, 60)
	node.StartSlot(1)
	node.HandleMessage(99, 100, seedFor(node, table, cfg, 1, 0.0)) // empty batch, starts fetch
	if node.Metrics().Sampled {
		t.Fatal("sampled with no data")
	}
	// Deliver all samples via responses.
	var cells []wire.Cell
	for _, s := range node.Samples() {
		cells = append(cells, wire.Cell{ID: s})
	}
	node.HandleMessage(5, 100, &wire.Response{Slot: 1, Cells: cells})
	if !node.Metrics().Sampled {
		t.Fatal("samples delivered but not marked sampled")
	}
	if node.Metrics().SampledAt != tr.now {
		t.Fatal("SampledAt not recorded")
	}
}

func TestNodeSeedVerificationRejectsForgery(t *testing.T) {
	node, table, tr, cfg := nodeFixture(t, 60)
	proposer := ids.NewTestIdentity(1000)
	node.SetSeedVerification(proposer.Public)
	node.StartSlot(1)
	m := seedFor(node, table, cfg, 1, 0.3) // zero signature = forged
	node.HandleMessage(99, 100, m)
	if node.Metrics().HasSeed {
		t.Fatal("unsigned seed accepted")
	}
	// Properly signed seed is accepted.
	builderID := ids.NewTestIdentity(999).ID
	m2 := seedFor(node, table, cfg, 1, 0.3)
	m2.Builder = builderID
	copy(m2.ProposerSig[:], proposer.Sign(wire.SeedSigningBytes(1, builderID)))
	node.HandleMessage(99, 100, m2)
	if !node.Metrics().HasSeed {
		t.Fatal("valid seed rejected")
	}
	_ = tr
}

func TestNodeFallbackTimerStartsFetchWithoutSeeds(t *testing.T) {
	node, _, tr, cfg := nodeFixture(t, 60)
	node.StartSlot(1)
	tr.advance(3*cfg.SeedWait + time.Millisecond)
	if !node.fetching {
		t.Fatal("fallback timer did not start fetching")
	}
	if node.Metrics().HasSeed {
		t.Fatal("HasSeed without seeds")
	}
}

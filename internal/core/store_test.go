package core

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"pandas/internal/assign"
	"pandas/internal/blob"
	"pandas/internal/kzg"
	"pandas/internal/wire"
)

func testAssignment() assign.Assignment {
	return assign.Assignment{Rows: []uint16{1, 5}, Cols: []uint16{2, 9}}
}

func testStoreParams() blob.Params {
	return blob.Params{K: 8, CellBytes: 32, ProofBytes: kzg.ProofSize}
}

func TestStoreAddHasCoverage(t *testing.T) {
	s := NewStore(testStoreParams(), testAssignment(), false, false)
	onRow := blob.CellID{Row: 1, Col: 7}
	onCol := blob.CellID{Row: 14, Col: 2}
	offBoth := blob.CellID{Row: 0, Col: 0}

	if !s.Covered(onRow) || !s.Covered(onCol) || s.Covered(offBoth) {
		t.Fatal("Covered wrong")
	}
	for _, id := range []blob.CellID{onRow, onCol, offBoth} {
		if s.Has(id) {
			t.Fatal("cell present before Add")
		}
		added, err := s.Add(wire.Cell{ID: id})
		if err != nil || !added {
			t.Fatalf("Add(%v) = %v, %v", id, added, err)
		}
		if !s.Has(id) {
			t.Fatalf("Has(%v) false after Add", id)
		}
		added, err = s.Add(wire.Cell{ID: id})
		if err != nil || added {
			t.Fatal("duplicate Add should return false")
		}
	}
	if s.LineCount(blob.Line{Kind: blob.Row, Index: 1}) != 1 {
		t.Fatal("row count wrong")
	}
	if s.LineCount(blob.Line{Kind: blob.Col, Index: 2}) != 1 {
		t.Fatal("col count wrong")
	}
	if s.LineCount(blob.Line{Kind: blob.Row, Index: 0}) != 0 {
		t.Fatal("untracked line should count 0")
	}
}

func TestStoreIntersectionCellCountsOnBothLines(t *testing.T) {
	s := NewStore(testStoreParams(), testAssignment(), false, false)
	// (1, 2) lies on tracked row 1 AND tracked col 2.
	s.Add(wire.Cell{ID: blob.CellID{Row: 1, Col: 2}})
	if s.LineCount(blob.Line{Kind: blob.Row, Index: 1}) != 1 ||
		s.LineCount(blob.Line{Kind: blob.Col, Index: 2}) != 1 {
		t.Fatal("intersection cell must count on both lines")
	}
}

func TestStoreRejectsOutOfRange(t *testing.T) {
	s := NewStore(testStoreParams(), testAssignment(), false, false)
	if _, err := s.Add(wire.Cell{ID: blob.CellID{Row: 99, Col: 0}}); !errors.Is(err, blob.ErrBadCell) {
		t.Fatalf("err = %v", err)
	}
}

func TestStoreMissingOnLine(t *testing.T) {
	p := testStoreParams()
	s := NewStore(p, testAssignment(), false, false)
	l := blob.Line{Kind: blob.Row, Index: 1}
	for c := 0; c < 5; c++ {
		s.Add(wire.Cell{ID: blob.CellID{Row: 1, Col: uint16(c)}})
	}
	missing := s.MissingOnLine(l)
	if len(missing) != p.N()-5 {
		t.Fatalf("missing = %d, want %d", len(missing), p.N()-5)
	}
	if missing[0] != 5 {
		t.Fatalf("first missing = %d", missing[0])
	}
	if s.MissingOnLine(blob.Line{Kind: blob.Row, Index: 0}) != nil {
		t.Fatal("untracked line should report nil")
	}
}

func TestStoreMetadataReconstruct(t *testing.T) {
	p := testStoreParams()
	s := NewStore(p, testAssignment(), false, false)
	l := blob.Line{Kind: blob.Row, Index: 5}
	// Below half: no reconstruction.
	for c := 0; c < p.K-1; c++ {
		s.Add(wire.Cell{ID: blob.CellID{Row: 5, Col: uint16(c)}})
	}
	cells, err := s.TryReconstruct(l)
	if err != nil || cells != nil {
		t.Fatalf("below-half reconstruct = %v, %v", cells, err)
	}
	// At half: completes.
	s.Add(wire.Cell{ID: blob.CellID{Row: 5, Col: uint16(p.K - 1)}})
	cells, err = s.TryReconstruct(l)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != p.N()-p.K {
		t.Fatalf("reconstructed %d cells, want %d", len(cells), p.N()-p.K)
	}
	if !s.LineComplete(l) {
		t.Fatal("line not complete after reconstruct")
	}
	// Idempotent.
	cells, err = s.TryReconstruct(l)
	if err != nil || cells != nil {
		t.Fatal("second reconstruct should be a no-op")
	}
}

func TestStoreRealReconstructProducesRealBytes(t *testing.T) {
	p := testStoreParams()
	rng := rand.New(rand.NewSource(1))
	data := make([]byte, p.BlobBytes())
	rng.Read(data)
	base, err := blob.NewBlob(p, data)
	if err != nil {
		t.Fatal(err)
	}
	ext, err := blob.Extend(base)
	if err != nil {
		t.Fatal(err)
	}
	com := kzg.Commit(ext)

	a := assign.Assignment{Rows: []uint16{3}, Cols: nil}
	s := NewStore(p, a, true, true)
	s.SetCommitment(com)
	l := blob.Line{Kind: blob.Row, Index: 3}
	// Feed the first half of row 3 with valid proofs.
	for c := 0; c < p.K; c++ {
		id := blob.CellID{Row: 3, Col: uint16(c)}
		cell := wire.Cell{ID: id, Data: ext.Cell(id), Proof: kzg.Prove(com, id, ext.Cell(id))}
		if _, err := s.Add(cell); err != nil {
			t.Fatal(err)
		}
	}
	newCells, err := s.TryReconstruct(l)
	if err != nil {
		t.Fatal(err)
	}
	if len(newCells) != p.N()-p.K {
		t.Fatalf("reconstructed %d", len(newCells))
	}
	// Reconstructed payloads must match the builder's extension and
	// carry valid proofs.
	for _, c := range newCells {
		if !bytes.Equal(c.Data, ext.Cell(c.ID)) {
			t.Fatalf("cell %v payload mismatch", c.ID)
		}
		if !kzg.Verify(com, c.ID, c.Data, c.Proof) {
			t.Fatalf("cell %v proof invalid", c.ID)
		}
	}
	// Served cells round-trip through Get.
	got, ok := s.Get(blob.CellID{Row: 3, Col: uint16(p.N() - 1)})
	if !ok || got.Data == nil {
		t.Fatal("Get after reconstruct failed")
	}
}

func TestStoreVerifyRejectsBadProof(t *testing.T) {
	p := testStoreParams()
	s := NewStore(p, testAssignment(), true, true)
	s.SetCommitment(kzg.Commitment{1})
	c := wire.Cell{ID: blob.CellID{Row: 1, Col: 0}, Data: make([]byte, p.CellBytes)}
	// Proof is zero: must fail verification.
	if _, err := s.Add(c); !errors.Is(err, ErrBadProof) {
		t.Fatalf("err = %v, want ErrBadProof", err)
	}
	if s.Has(c.ID) {
		t.Fatal("bad cell stored")
	}
}

func TestStoreExtrasForSamples(t *testing.T) {
	s := NewStore(testStoreParams(), testAssignment(), false, false)
	off := blob.CellID{Row: 12, Col: 13}
	if s.Covered(off) {
		t.Fatal("cell unexpectedly covered")
	}
	added, err := s.Add(wire.Cell{ID: off})
	if err != nil || !added {
		t.Fatal("extra cell add failed")
	}
	if !s.Has(off) {
		t.Fatal("extra cell not present")
	}
	if _, ok := s.Get(off); !ok {
		t.Fatal("extra cell not gettable")
	}
}

func TestStoreCompleteLines(t *testing.T) {
	p := testStoreParams()
	a := assign.Assignment{Rows: []uint16{0}, Cols: []uint16{0}}
	s := NewStore(p, a, false, false)
	if s.TrackedLines() != 2 || s.CompleteLines() != 0 {
		t.Fatal("initial line counts wrong")
	}
	for i := 0; i < p.N(); i++ {
		s.Add(wire.Cell{ID: blob.CellID{Row: 0, Col: uint16(i)}})
		s.Add(wire.Cell{ID: blob.CellID{Row: uint16(i), Col: 0}})
	}
	if s.CompleteLines() != 2 {
		t.Fatalf("CompleteLines = %d", s.CompleteLines())
	}
}

// TestStorePeekAliasing pins Peek's zero-copy contract (documented on
// the method): in real mode the returned Data slice ALIASES the store's
// internal payload — no copy is made — and Peek agrees with Get on
// presence. The gateway's hot path depends on the no-copy guarantee;
// this test is the tripwire if Peek ever starts copying (or Get stops
// returning stored bytes).
func TestStorePeekAliasing(t *testing.T) {
	p := testStoreParams()
	s := NewStore(p, testAssignment(), true, false)
	id := blob.CellID{Row: 1, Col: 3}
	payload := make([]byte, p.CellBytes)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	if _, err := s.Add(wire.Cell{ID: id, Data: payload}); err != nil {
		t.Fatal(err)
	}

	got, ok := s.Peek(id)
	if !ok {
		t.Fatal("Peek missed a stored cell")
	}
	if !bytes.Equal(got.Data, payload) {
		t.Fatal("Peek returned wrong payload")
	}
	// Same backing array: element 0 of the returned slice and of a
	// second Peek must share an address (zero-copy), and Get must serve
	// the same bytes.
	again, _ := s.Peek(id)
	if &got.Data[0] != &again.Data[0] {
		t.Fatal("Peek copied the payload; contract is zero-copy aliasing")
	}
	viaGet, ok := s.Get(id)
	if !ok || !bytes.Equal(viaGet.Data, got.Data) {
		t.Fatal("Get and Peek disagree")
	}

	// Absent cell and metadata-only mode still behave.
	if _, ok := s.Peek(blob.CellID{Row: 1, Col: 4}); ok {
		t.Fatal("Peek invented an absent cell")
	}
	meta := NewStore(p, testAssignment(), false, false)
	if _, err := meta.Add(wire.Cell{ID: id}); err != nil {
		t.Fatal(err)
	}
	c, ok := meta.Peek(id)
	if !ok || c.Data != nil {
		t.Fatal("metadata-mode Peek should report presence with no payload")
	}
}

// Package core implements the PANDAS protocol: builder-led seeding of
// erasure-extended blob data, peer-to-peer consolidation of custody
// assignments, and random sampling — all within the 4-second attestation
// window of an Ethereum consensus slot.
//
// The package ties the substrates together: cell geometry (blob), the
// deterministic assignment (assign), the adaptive fetcher (fetch),
// commitments (kzg), wire formats (wire), and a Transport abstraction
// implemented by the discrete-event simulator (simnet) and by the real
// UDP transport (transport).
package core

import (
	"errors"
	"fmt"
	"time"

	"pandas/internal/assign"
	"pandas/internal/blob"
	"pandas/internal/fetch"
	"pandas/internal/obsv"
	"pandas/internal/wire"
)

// Errors returned by this package.
var (
	ErrBadConfig = errors.New("core: invalid configuration")
	ErrNoNodes   = errors.New("core: cluster has no nodes")
)

// Policy selects the builder's seeding strategy (Section 6.1).
type Policy int

// Seeding policies.
const (
	// PolicyMinimal sends a single copy of the minimal reconstructable
	// data (the base quadrant): cheapest for the builder, fragile to any
	// loss. Used as a cost baseline.
	PolicyMinimal Policy = iota + 1
	// PolicySingle sends a single copy of every extended cell (140 MB
	// with paper parameters); the erasure code absorbs losses.
	PolicySingle
	// PolicyRedundant sends Redundancy copies of every extended cell
	// (the paper's default, r = 8).
	PolicyRedundant
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case PolicyMinimal:
		return "minimal"
	case PolicySingle:
		return "single"
	case PolicyRedundant:
		return "redundant"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Config collects all protocol parameters. DefaultConfig returns the
// paper's values; TestConfig a scaled-down geometry for fast tests.
type Config struct {
	// Blob is the cell-matrix geometry.
	Blob blob.Params
	// Assign is the custody assignment geometry (rows/cols per node).
	Assign assign.Params
	// Samples is the number of random cells each node samples (73).
	Samples int
	// Schedule drives adaptive fetching rounds.
	Schedule fetch.Schedule
	// CBBoost is the consolidation-boost score bonus (10,000).
	CBBoost int
	// UseBoost controls whether builders attach consolidation-boost maps.
	UseBoost bool
	// SeedWait is the timer armed when a node is queried for a slot it
	// has no seed cells for yet (400 ms); fetching starts when it fires.
	SeedWait time.Duration
	// Deadline is the sampling deadline from slot start (4 s).
	Deadline time.Duration
	// Policy is the builder's seeding strategy.
	Policy Policy
	// Redundancy is r, the copies per cell under PolicyRedundant.
	Redundancy int
	// RealPayloads selects between metadata cells (large-scale
	// simulation) and real bytes with erasure coding and commitment
	// verification.
	RealPayloads bool
	// MaxCellsPerMsg caps cells per datagram.
	MaxCellsPerMsg int
	// DisableConsolidation turns off fetching of missing custody cells;
	// only sampling drives the fetcher. The GossipSub baseline uses this:
	// custody arrives via topic gossip instead of explicit consolidation.
	DisableConsolidation bool
	// ExtendWorkers bounds the builder's erasure-coding worker pool when
	// extending real payloads (0 = GOMAXPROCS). Set 1 to pin the
	// extension to a single goroutine; outputs are bit-identical either
	// way, so this only trades wall-clock for scheduling determinism.
	ExtendWorkers int
	// ProveWorkers bounds the builder's proof-generation worker pool
	// (0 = GOMAXPROCS). As with ExtendWorkers, outputs are bit-identical
	// at any setting.
	ProveWorkers int
	// SequentialPrepare makes Builder.PrepareAndSeed run the monolithic
	// prepare-then-seed path — no row-digest/column-encode overlap, no
	// proving concurrent with transmission, a single prover goroutine —
	// instead of the streaming pipeline. Both paths emit bit-identical
	// commitments, proofs, datagrams, and reports (pinned by test); the
	// knob only trades wall-clock for scheduling determinism.
	SequentialPrepare bool
	// Recorder receives protocol trace events from every layer (builder
	// seeding, node receive/fetch/sample paths, liveness transitions,
	// churn). Nil — the default — disables tracing: every emission site
	// is a single nil check, so the protocol's behaviour and timing are
	// unchanged (see obsv's disabled-path benchmark gate).
	Recorder obsv.Recorder
	// Metrics is the counters/gauges/histograms registry shared by the
	// deployment (gossip/DHT message counts, simulator queue depth).
	// Nil disables registry updates.
	Metrics *obsv.Registry
	// TraceRing is the event capacity of the ring-buffer recorder created
	// by trace-enabled drivers (pandas-sim -trace, pandas.NewTraceRing).
	// It does not allocate anything by itself; it only sizes the ring
	// when one is requested.
	TraceRing int
}

// DefaultConfig returns the paper's parameters: 512x512 extended matrix,
// 560 B cells, 8+8 custody lines, 73 samples, redundant seeding with
// r = 8, adaptive schedule, 4 s deadline.
func DefaultConfig() Config {
	return Config{
		Blob:           blob.DefaultParams(),
		Assign:         assign.DefaultParams(blob.DefaultParams().N()),
		Samples:        73,
		Schedule:       fetch.DefaultSchedule(),
		CBBoost:        fetch.DefaultCBBoost,
		UseBoost:       true,
		SeedWait:       400 * time.Millisecond,
		Deadline:       4 * time.Second,
		Policy:         PolicyRedundant,
		Redundancy:     8,
		MaxCellsPerMsg: wire.MaxCellsPerMessage,
		TraceRing:      obsv.DefaultRingSize,
	}
}

// TestConfig returns a scaled-down configuration (32x32 extended matrix,
// 2+2 custody lines, 8 samples) that exercises identical code paths at a
// fraction of the cost.
func TestConfig() Config {
	cfg := DefaultConfig()
	cfg.Blob = blob.TestParams() // K=16 -> 32x32
	cfg.Assign = assign.Params{Rows: 2, Cols: 2, N: cfg.Blob.N()}
	cfg.Samples = 8
	cfg.Redundancy = 4
	return cfg
}

// Validate checks parameter consistency.
func (c Config) Validate() error {
	if err := c.Blob.Validate(); err != nil {
		return fmt.Errorf("%w: %v", ErrBadConfig, err)
	}
	if err := c.Assign.Validate(); err != nil {
		return fmt.Errorf("%w: %v", ErrBadConfig, err)
	}
	switch {
	case c.Assign.N != c.Blob.N():
		return fmt.Errorf("%w: assignment width %d != extended width %d", ErrBadConfig, c.Assign.N, c.Blob.N())
	case c.Samples < 1 || c.Samples > c.Blob.ExtendedCells():
		return fmt.Errorf("%w: samples=%d", ErrBadConfig, c.Samples)
	case c.Policy < PolicyMinimal || c.Policy > PolicyRedundant:
		return fmt.Errorf("%w: unknown policy %d", ErrBadConfig, c.Policy)
	case c.Policy == PolicyRedundant && c.Redundancy < 1:
		return fmt.Errorf("%w: redundancy=%d", ErrBadConfig, c.Redundancy)
	case c.Deadline <= 0:
		return fmt.Errorf("%w: deadline=%v", ErrBadConfig, c.Deadline)
	case c.MaxCellsPerMsg < 1:
		return fmt.Errorf("%w: maxCellsPerMsg=%d", ErrBadConfig, c.MaxCellsPerMsg)
	case c.TraceRing < 1:
		return fmt.Errorf("%w: traceRing=%d", ErrBadConfig, c.TraceRing)
	}
	// Recorder and Metrics are nil-safe: nil simply disables tracing and
	// registry updates, so there is nothing further to validate.
	return nil
}

// Transport abstracts the substrate messages travel over. Implementations
// must deliver callbacks on a single logical thread (the simulator's
// event loop or the UDP transport's receive loop).
type Transport interface {
	// Send transmits a protocol message of the given wire size to the
	// peer with transport address to.
	Send(to int, size int, payload any)
	// SendReliable transmits without simulated random loss; used for the
	// builder's seeding path (see simnet.SendReliable). Transports
	// without a reliability distinction implement it as Send.
	SendReliable(to int, size int, payload any)
	// After schedules fn after a delay of (virtual or real) time.
	After(d time.Duration, fn func())
	// Now returns the current (virtual or real) time.
	Now() time.Duration
}

package core

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	"pandas/internal/assign"
	"pandas/internal/blob"
	"pandas/internal/ids"
	"pandas/internal/kzg"
	"pandas/internal/membership"
	"pandas/internal/wire"
)

// captureTransport records sends for unit tests of node/builder logic.
type captureTransport struct {
	now   time.Duration
	sends []capturedSend
	// timers run manually via fire().
	timers []capturedTimer
}

type capturedSend struct {
	to       int
	size     int
	payload  any
	reliable bool
}

type capturedTimer struct {
	at time.Duration
	fn func()
}

func (c *captureTransport) Send(to, size int, payload any) {
	c.sends = append(c.sends, capturedSend{to: to, size: size, payload: payload})
}

func (c *captureTransport) SendReliable(to, size int, payload any) {
	c.sends = append(c.sends, capturedSend{to: to, size: size, payload: payload, reliable: true})
}

func (c *captureTransport) After(d time.Duration, fn func()) {
	c.timers = append(c.timers, capturedTimer{at: c.now + d, fn: fn})
}

func (c *captureTransport) Now() time.Duration { return c.now }

// advance runs all timers due by the new time, in order.
func (c *captureTransport) advance(to time.Duration) {
	for {
		best := -1
		for i, t := range c.timers {
			if t.at <= to && (best < 0 || t.at < c.timers[best].at) {
				best = i
			}
		}
		if best < 0 {
			break
		}
		t := c.timers[best]
		c.timers = append(c.timers[:best], c.timers[best+1:]...)
		if t.at > c.now {
			c.now = t.at
		}
		t.fn()
	}
	if to > c.now {
		c.now = to
	}
}

func builderFixture(t *testing.T, cfg Config, n int) (*Builder, *Table, *captureTransport) {
	t.Helper()
	nodeIDs := make([]ids.NodeID, n)
	for i := range nodeIDs {
		nodeIDs[i] = ids.NewTestIdentity(int64(i)).ID
	}
	var seed assign.Seed
	seed[0] = 7
	table, err := NewTable(cfg.Assign, seed, nodeIDs)
	if err != nil {
		t.Fatal(err)
	}
	tr := &captureTransport{}
	b := NewBuilder(cfg, n, ids.NewTestIdentity(999).ID, table, tr, 1)
	return b, table, tr
}

func TestBuilderSeedsAllCellsOnce(t *testing.T) {
	cfg := TestConfig()
	cfg.Policy = PolicySingle
	b, _, tr := builderFixture(t, cfg, 100)
	report := b.SeedSlot(1)
	if report.Cells != cfg.Blob.ExtendedCells() {
		t.Fatalf("single policy sent %d cells, want %d", report.Cells, cfg.Blob.ExtendedCells())
	}
	// Every cell appears exactly once across all seed messages.
	seen := make(map[blob.CellID]int)
	for _, s := range tr.sends {
		m, ok := s.payload.(*wire.Seed)
		if !ok {
			t.Fatalf("non-seed payload %T", s.payload)
		}
		if !s.reliable {
			t.Fatal("seeding must use the reliable path")
		}
		for _, c := range m.Cells {
			seen[c.ID]++
		}
	}
	if len(seen) != cfg.Blob.ExtendedCells() {
		t.Fatalf("distinct cells = %d", len(seen))
	}
	for id, cnt := range seen {
		if cnt != 1 {
			t.Fatalf("cell %v sent %d times", id, cnt)
		}
	}
}

func TestBuilderChunkMarkersConsistent(t *testing.T) {
	cfg := TestConfig()
	b, _, tr := builderFixture(t, cfg, 60)
	b.SeedSlot(1)
	perNode := make(map[int][]*wire.Seed)
	for _, s := range tr.sends {
		perNode[s.to] = append(perNode[s.to], s.payload.(*wire.Seed))
	}
	for node, msgs := range perNode {
		total := int(msgs[0].ChunkCount)
		if total != len(msgs) {
			t.Fatalf("node %d: ChunkCount %d != %d messages", node, total, len(msgs))
		}
		seenIdx := make(map[uint16]bool)
		boostFirst := true
		for i, m := range msgs {
			if int(m.ChunkCount) != total {
				t.Fatal("inconsistent ChunkCount")
			}
			if seenIdx[m.ChunkIndex] {
				t.Fatal("duplicate ChunkIndex")
			}
			seenIdx[m.ChunkIndex] = true
			// Boost-only chunks precede cell chunks.
			if len(m.Boost) > 0 && len(m.Cells) > 0 {
				t.Fatal("mixed boost+cell chunk")
			}
			if len(m.Cells) > 0 {
				boostFirst = false
			}
			if len(m.Boost) > 0 && !boostFirst {
				t.Fatalf("node %d msg %d: boost chunk after cell chunk", node, i)
			}
		}
	}
}

func TestBuilderBoostEntriesResolve(t *testing.T) {
	cfg := TestConfig()
	b, table, tr := builderFixture(t, cfg, 60)
	b.SeedSlot(1)
	for _, s := range tr.sends {
		m := s.payload.(*wire.Seed)
		for _, e := range m.Boost {
			peer := table.HolderAt(e.Line, int(e.HolderRef))
			if peer < 0 {
				t.Fatalf("boost entry %+v resolves to no holder", e)
			}
			if !table.Assignment(peer).HasLine(e.Line) {
				t.Fatalf("boost entry resolves to non-holder %d", peer)
			}
		}
	}
}

func TestBuilderWithholdingReport(t *testing.T) {
	cfg := TestConfig()
	cfg.Policy = PolicySingle
	b, _, _ := builderFixture(t, cfg, 60)
	n := cfg.Blob.N()
	h := n/2 + 1
	b.SetWithholding(func(id blob.CellID) bool {
		return int(id.Row) < h && int(id.Col) < h
	})
	report := b.SeedSlot(1)
	if report.Withheld != h*h {
		t.Fatalf("withheld %d, want %d", report.Withheld, h*h)
	}
	if report.Cells != cfg.Blob.ExtendedCells()-h*h {
		t.Fatalf("cells sent %d", report.Cells)
	}
}

func TestBuilderRestrictedView(t *testing.T) {
	cfg := TestConfig()
	b, _, tr := builderFixture(t, cfg, 80)
	b.SetView(membership.ViewFunc(func(peer int) bool { return peer < 40 }))
	report := b.SeedSlot(1)
	if report.NodesSeeded == 0 {
		t.Fatal("nothing seeded")
	}
	for _, s := range tr.sends {
		if s.to >= 40 {
			t.Fatalf("seeded out-of-view node %d", s.to)
		}
	}
}

// TestBuilderPipelinedMatchesMonolithic pins the streaming
// PrepareAndSeed path against the monolithic prepare-then-seed path:
// identical commitment, identical proof arena, bit-identical seed
// datagrams (recipients, sizes, order, payloads, proofs), and an equal
// report — across prover worker counts and a second slot that reuses
// every arena.
func TestBuilderPipelinedMatchesMonolithic(t *testing.T) {
	cfg := TestConfig()
	cfg.RealPayloads = true
	cfg.Policy = PolicySingle
	data := make([]byte, cfg.Blob.BlobBytes())
	rand.New(rand.NewSource(42)).Read(data)

	for _, workers := range []int{1, 2, 8} {
		// Both builders are rebuilt per worker count so their rngs start
		// from the same state (seeding consumes rng as it plans).
		seqCfg := cfg
		seqCfg.SequentialPrepare = true
		want, _, wantTr := builderFixture(t, seqCfg, 80)
		pipeCfg := cfg
		pipeCfg.ProveWorkers = workers
		got, _, gotTr := builderFixture(t, pipeCfg, 80)
		for slot := uint64(1); slot <= 2; slot++ { // slot 2 reuses arenas
			wantTr.sends = nil
			gotTr.sends = nil
			wantReport, err := want.PrepareAndSeed(slot, data)
			if err != nil {
				t.Fatal(err)
			}
			gotReport, err := got.PrepareAndSeed(slot, data)
			if err != nil {
				t.Fatal(err)
			}
			if got.Commitment() != want.Commitment() {
				t.Fatalf("workers=%d slot=%d: commitments differ", workers, slot)
			}
			if !reflect.DeepEqual(got.proofs, want.proofs) {
				t.Fatalf("workers=%d slot=%d: proof arenas differ", workers, slot)
			}
			if gotReport != wantReport {
				t.Fatalf("workers=%d slot=%d: reports differ:\n got %+v\nwant %+v",
					workers, slot, gotReport, wantReport)
			}
			if len(gotTr.sends) != len(wantTr.sends) {
				t.Fatalf("workers=%d slot=%d: %d sends, want %d",
					workers, slot, len(gotTr.sends), len(wantTr.sends))
			}
			for i := range gotTr.sends {
				g, w := gotTr.sends[i], wantTr.sends[i]
				if g.to != w.to || g.size != w.size || g.reliable != w.reliable {
					t.Fatalf("workers=%d slot=%d send %d: envelope differs", workers, slot, i)
				}
				if !reflect.DeepEqual(g.payload, w.payload) {
					t.Fatalf("workers=%d slot=%d send %d: datagram differs", workers, slot, i)
				}
			}
		}
	}
}

// TestBuilderPrepareBlobReusesArenas pins the steady-state contract the
// builder benchmark depends on: preparing a second blob reuses the
// extended-matrix backing and the proof arena instead of reallocating.
func TestBuilderPrepareBlobReusesArenas(t *testing.T) {
	cfg := TestConfig()
	cfg.RealPayloads = true
	b, _, _ := builderFixture(t, cfg, 10)
	data := make([]byte, cfg.Blob.BlobBytes())
	rand.New(rand.NewSource(5)).Read(data)
	if err := b.PrepareBlob(data); err != nil {
		t.Fatal(err)
	}
	ext, proofs := b.extended, &b.proofs[0]
	rand.New(rand.NewSource(6)).Read(data)
	if err := b.PrepareBlob(data); err != nil {
		t.Fatal(err)
	}
	if b.extended != ext {
		t.Fatal("second PrepareBlob reallocated the extended matrix")
	}
	if &b.proofs[0] != proofs {
		t.Fatal("second PrepareBlob reallocated the proof arena")
	}
	// The re-prepared blob must be self-consistent: spot-check a proof.
	id := blob.CellID{Row: 3, Col: 29}
	cell, ok := b.CellPayload(id)
	if !ok {
		t.Fatal("no payload after prepare")
	}
	if !kzg.Verify(b.Commitment(), cell.ID, cell.Data, cell.Proof) {
		t.Fatal("re-prepared cell fails verification")
	}
}

func TestBuilderRedundancyCopies(t *testing.T) {
	cfg := TestConfig()
	cfg.Policy = PolicyRedundant
	cfg.Redundancy = 3
	b, table, tr := builderFixture(t, cfg, 200) // dense enough for 3 holders/line
	b.SeedSlot(1)
	counts := make(map[blob.CellID]int)
	for _, s := range tr.sends {
		for _, c := range s.payload.(*wire.Seed).Cells {
			counts[c.ID]++
		}
	}
	// Most cells should have exactly r copies (lines with < r holders cap).
	exact := 0
	for id, cnt := range counts {
		if cnt > 3 {
			t.Fatalf("cell %v sent %d > r times", id, cnt)
		}
		if cnt == 3 {
			exact++
		}
	}
	if float64(exact) < 0.5*float64(len(counts)) {
		t.Fatalf("only %d/%d cells reached full redundancy", exact, len(counts))
	}
	_ = table
}

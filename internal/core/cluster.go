package core

import (
	"fmt"
	"math/rand"
	"time"

	"pandas/internal/adversary"
	"pandas/internal/assign"
	"pandas/internal/consensus"
	"pandas/internal/dht"
	"pandas/internal/gossip"
	"pandas/internal/ids"
	"pandas/internal/latency"
	"pandas/internal/membership"
	"pandas/internal/obsv"
	"pandas/internal/simnet"
	"pandas/internal/wire"
)

// ClusterConfig describes a simulated PANDAS deployment: N nodes plus one
// builder over the discrete-event network.
type ClusterConfig struct {
	// Core holds the protocol parameters.
	Core Config
	// N is the number of (non-builder) nodes.
	N int
	// Seed drives every random choice in the deployment.
	Seed int64
	// Latency is the propagation model; nil selects the IPFS-like
	// planetary topology.
	Latency simnet.LatencyModel
	// LossRate is the per-message drop probability (3% default when
	// negative).
	LossRate float64
	// DeadFraction marks this share of nodes as crashed/free-riding:
	// they receive but never respond, and the builder does not know.
	DeadFraction float64
	// OutOfViewFraction removes this share of the network from every
	// node's view (views are random per node; the builder keeps a full
	// view).
	OutOfViewFraction float64
	// BlockGossip additionally disseminates a block over a global
	// GossipSub-style mesh and records reception times (Fig. 9a and the
	// attestation decision).
	BlockGossip bool
	// BlockSize is the gossiped block size in bytes (128 KiB default).
	BlockSize int
	// VerifySeeds enables proposer-signature verification at nodes
	// (real-payload deployments).
	VerifySeeds bool
	// Churn enables dynamic membership: nodes join, leave, crash, and
	// restart while slots run; per-node views evolve through gossip
	// announcements and periodic DHT crawls; and peer-liveness scoring
	// steers fetching away from departed peers. A nil or inactive config
	// keeps the static deployment, bit-identical to the fixed-membership
	// code path. Composes with OutOfViewFraction (restricted views churn)
	// and DeadFraction (dead nodes are excluded from lifecycle events).
	Churn *membership.Config
	// Adversary enables byzantine behaviors, builder attacks, and
	// scheduled network faults. Per-node behaviors are drawn by
	// deterministic sortition from Seed; all adversarial randomness comes
	// from dedicated streams, so a nil or inactive config leaves the
	// honest deployment bit-identical. View-poisoner behavior requires
	// Churn (it rides the membership announcement mesh) and is a no-op
	// without it.
	Adversary *adversary.Config
}

// NodeOutcome reports one node's slot, with durations relative to the
// slot start. A negative duration means "never happened".
type NodeOutcome struct {
	Seed          time.Duration // last seed datagram
	Consolidation time.Duration
	Sampling      time.Duration
	BlockRecv     time.Duration // only with BlockGossip
	ConsFromSeed  time.Duration // consolidation measured from seeding
	Dead          bool
	// Offline marks nodes that were down when the slot started and never
	// joined during it; their other fields are zero values.
	Offline bool
	// JoinedAt is the node's first mid-slot (re)join, relative to slot
	// start (-1: none). Joiners start from an empty store and miss
	// seeding, so they are measured as catch-up, not deadline success.
	JoinedAt time.Duration
	// LeftAt is the node's first departure after slot start (-1: none).
	LeftAt time.Duration

	FetchMsgs  int   // queries + responses, both directions
	FetchBytes int64 // corresponding traffic volume
	Rounds     []RoundStat
	SampleVote consensus.Vote // tight fork-choice attestation
}

// SlotResult aggregates a full slot.
type SlotResult struct {
	Outcomes []NodeOutcome
	Seeding  SeedingReport
	// BuilderBytes is the builder's total sent volume (seeding).
	BuilderBytes int64
	// Dropped counts messages lost in the network during the slot.
	Dropped int
	// Churn counts the lifecycle events that fired during this slot
	// (zero without dynamic membership).
	Churn membership.Stats
}

// Cluster is a simulated deployment.
type Cluster struct {
	cfg     ClusterConfig
	net     *simnet.Network
	table   *Table
	nodes   []*Node
	builder *Builder
	bIndex  int

	proposer  *ids.Identity
	overlay   *gossip.Overlay
	routers   []*gossip.Router
	blockRecv []time.Duration
	dead      []bool
	randao    *consensus.Randao

	// Dynamic membership (nil/empty without ClusterConfig.Churn).
	dir        *membership.Directory
	engine     *membership.Engine
	views      []*membership.LiveView
	scorers    []*membership.Scorer
	dhtPeers   []*dht.Peer
	refreshers []*membership.Refresher
	annOverlay *gossip.Overlay
	annRouters []*gossip.Router
	annSeq     uint64
	curSlot    uint64
	started    []bool
	joinedAt   []time.Duration
	leftAt     []time.Duration
	churnPrev  membership.Stats

	// Adversary subsystem (inert without ClusterConfig.Adversary).
	behaviors []adversary.Behavior
	agents    []*adversary.Agent
	seedDelay time.Duration
	advRng    *rand.Rand
	// partitioned flags nodes inside the current partition window (empty
	// outside fault windows); partCount tracks how many are set so the
	// per-message link filter is one comparison in the common case.
	partitioned []bool
	partCount   int
	departed    map[int]bool

	// Observability (nil without Core.Recorder / Core.Metrics).
	rec        obsv.Recorder
	mGossip    *obsv.Counter
	mGossipDup *obsv.Counter
	mAnn       *obsv.Counter
	mDHT       *obsv.Counter
	mPoison    *obsv.Counter
}

// simTransport adapts the simulator to the core Transport interface.
type simTransport struct {
	net  *simnet.Network
	self int
}

func (s simTransport) Self() int                      { return s.self }
func (s simTransport) Send(to, size int, payload any) { s.net.Send(s.self, to, size, payload) }
func (s simTransport) SendReliable(to, size int, payload any) {
	s.net.SendReliable(s.self, to, size, payload)
}
func (s simTransport) After(d time.Duration, fn func()) { s.net.After(d, fn) }
func (s simTransport) Now() time.Duration               { return s.net.Now() }

// NewCluster builds the deployment: identities, epoch table, simulator
// wiring, fault injection, and optionally the block gossip overlay.
func NewCluster(cc ClusterConfig) (*Cluster, error) {
	if cc.N < 1 {
		return nil, ErrNoNodes
	}
	if err := cc.Core.Validate(); err != nil {
		return nil, err
	}
	if cc.Latency == nil {
		vertices := cc.N + 1
		if vertices > 10000 {
			vertices = 10000
		}
		cc.Latency = latency.NewIPFSLike(cc.Seed, vertices)
	}
	loss := cc.LossRate
	if loss < 0 {
		loss = simnet.DefaultLossRate
	}
	if cc.BlockSize == 0 {
		cc.BlockSize = 128 * 1024
	}
	net, err := simnet.New(simnet.Config{
		Latency:  cc.Latency,
		LossRate: loss,
		Seed:     cc.Seed,
		MinDelay: time.Millisecond,
	})
	if err != nil {
		return nil, err
	}

	rng := rand.New(rand.NewSource(cc.Seed))
	nodeIDs := make([]ids.NodeID, cc.N)
	for i := range nodeIDs {
		// Cached interning: sweeps rebuild clusters with the same seed at
		// growing sizes, and per-node ed25519 keygen dominates large
		// cluster construction otherwise.
		nodeIDs[i] = ids.NewTestIdentityCached(cc.Seed<<20 + int64(i)).ID
	}
	entropy := [32]byte{}
	rng.Read(entropy[:])
	randao := consensus.NewRandao(entropy)
	table, err := NewTable(cc.Core.Assign, randao.SeedFor(0), nodeIDs)
	if err != nil {
		return nil, err
	}

	c := &Cluster{
		cfg:    cc,
		net:    net,
		table:  table,
		dead:   make([]bool, cc.N),
		randao: randao,
		rec:    cc.Core.Recorder,
	}
	if reg := cc.Core.Metrics; reg != nil {
		net.SetMetrics(reg)
		c.mGossip = reg.Counter("gossip_msgs_total")
		c.mGossipDup = reg.Counter("gossip_duplicates_total")
		c.mAnn = reg.Counter("membership_announcements_total")
		c.mDHT = reg.Counter("dht_msgs_total")
	}

	proposer, err := ids.NewIdentity()
	if err != nil {
		return nil, fmt.Errorf("core: proposer identity: %w", err)
	}
	c.proposer = proposer

	// Adversary sortition happens before node registration because each
	// byzantine node's transport is wrapped at construction. It draws
	// from dedicated seed streams only, so the main rng — and therefore
	// every honest random choice below — is untouched whether or not
	// adversaries are enabled.
	if err := cc.Adversary.Validate(); err != nil {
		return nil, err
	}
	c.behaviors = cc.Adversary.Sortition(cc.Seed, cc.N)
	c.agents = make([]*adversary.Agent, cc.N)
	for i := range c.agents {
		c.agents[i] = adversary.NewAgent(i, c.behaviors[i], cc.Seed, cc.Adversary)
	}

	// Register nodes.
	c.nodes = make([]*Node, cc.N)
	c.blockRecv = make([]time.Duration, cc.N)
	for i := 0; i < cc.N; i++ {
		i := i
		idx := net.AddNode(func(from, size int, payload any) {
			c.dispatch(i, from, size, payload)
		}, simnet.NodeBandwidth, simnet.NodeBandwidth)
		if idx != i {
			return nil, fmt.Errorf("core: node index mismatch: %d != %d", idx, i)
		}
		var tr Transport = simTransport{net: net, self: i}
		tr = c.agents[i].WrapTransport(tr)
		c.nodes[i] = NewNode(cc.Core, i, table, tr, cc.Seed^int64(i*2654435761))
		if cc.VerifySeeds {
			c.nodes[i].SetSeedVerification(proposer.Public)
		}
	}

	// The builder sits on a well-connected vertex with a 10 Gbps uplink.
	c.bIndex = net.AddNode(nil, simnet.BuilderBandwidth, simnet.BuilderBandwidth)
	builderID := ids.NewTestIdentityCached(cc.Seed<<20 + int64(cc.N) + 7).ID
	c.builder = NewBuilder(cc.Core, c.bIndex, builderID, table, simTransport{net: net, self: c.bIndex}, cc.Seed+99)
	c.builder.SetProposerSigner(func(slot uint64) [wire.SigSize]byte {
		var sig [wire.SigSize]byte
		copy(sig[:], proposer.Sign(wire.SeedSigningBytes(slot, builderID)))
		return sig
	})

	// Fault injection: dead nodes.
	if cc.DeadFraction > 0 {
		count := int(float64(cc.N) * cc.DeadFraction)
		for _, i := range rng.Perm(cc.N)[:count] {
			c.dead[i] = true
			if err := net.SetDead(i, true); err != nil {
				return nil, err
			}
		}
	}
	// Fault injection: incomplete views. Each node knows a random
	// (1 - f) subset of the network; the builder keeps its full view.
	// Views are LiveViews rather than fixed predicates so that dynamic
	// membership (below) can evolve the SAME view a node already has —
	// the two fault models compose instead of overwriting each other.
	//
	// At compactViewThreshold nodes and beyond, static deployments switch
	// to membership.SampledView: materializing N LiveViews of (1-f)N
	// entries each is O(N²) memory and rng time, which is exactly what
	// caps the paper's PeerSim runs at 20k nodes. The sampled views keep
	// the same marginal statistics (each peer visible independently with
	// probability keep/N); only churn runs need mutable views.
	if cc.OutOfViewFraction > 0 {
		keep := cc.N - int(float64(cc.N)*cc.OutOfViewFraction)
		if cc.N >= compactViewThreshold && !cc.Churn.Active() {
			frac := float64(keep) / float64(cc.N)
			for i := 0; i < cc.N; i++ {
				c.nodes[i].SetView(membership.NewSampledView(uint64(cc.Seed)^0x76696577, i, frac))
			}
		} else {
			c.views = make([]*membership.LiveView, cc.N)
			for i := 0; i < cc.N; i++ {
				v := membership.NewLiveView()
				v.Add(i)
				for _, p := range rng.Perm(cc.N)[:keep] {
					v.Add(p)
				}
				c.views[i] = v
				c.nodes[i].SetView(v)
			}
		}
	}

	// Block dissemination mesh over all nodes.
	if cc.BlockGossip {
		members := make([]int, cc.N)
		for i := range members {
			members[i] = i
		}
		c.overlay = gossip.NewOverlay(rng, members, gossip.DefaultDegree)
		c.routers = make([]*gossip.Router, cc.N)
		for i := range c.routers {
			c.routers[i] = gossip.NewRouter(i)
		}
	}

	// Dynamic membership. Set up strictly AFTER every consumer of the main
	// rng above, and from independent rand sources, so an inactive (or
	// absent) churn config leaves the static deployment bit-identical.
	if cc.Churn.Active() {
		if err := c.setupChurn(cc); err != nil {
			return nil, err
		}
	}
	// Adversary wiring (builder attacks, fault schedule, poisoners) runs
	// last: partial seeding composes with the builder's churn-believed
	// view, and poisoners ride the churn announcement mesh.
	if cc.Adversary.Active() {
		c.setupAdversary(cc)
	}
	return c, nil
}

// clusterBootstrapContacts is the sparse deterministic contact set each
// node's DHT routing table starts from; crawls grow it from there.
const clusterBootstrapContacts = 8

// compactViewThreshold is the network size at which static out-of-view
// deployments switch from materialized LiveViews to SampledView
// predicates (see NewCluster).
const compactViewThreshold = 20000

// setupChurn wires the dynamic-membership subsystem: the lifecycle
// engine, per-node evolving views, the announcement gossip mesh, the DHT
// crawl refreshers, and peer-liveness scoring.
func (c *Cluster) setupChurn(cc ClusterConfig) error {
	n := cc.N
	c.dir = membership.NewDirectory(n)
	if c.views == nil {
		c.views = make([]*membership.LiveView, n)
		for i := range c.views {
			c.views[i] = membership.FullLiveView(n)
			c.nodes[i].SetView(c.views[i])
		}
	}
	c.started = make([]bool, n)
	c.joinedAt = make([]time.Duration, n)
	c.leftAt = make([]time.Duration, n)

	// Liveness scoring is enabled only under churn so the static fault
	// sweeps (dead-node timeouts included) keep their exact behaviour.
	c.scorers = make([]*membership.Scorer, n)
	for i := range c.scorers {
		c.scorers[i] = membership.NewScorer(cc.Churn.Scorer, c.net.Now)
		if c.rec != nil {
			c.scorers[i].SetRecorder(c.rec, i)
		}
		c.nodes[i].SetLiveness(c.scorers[i])
	}

	// DHT substrate for view refresh: every node runs a Kademlia peer
	// over the same simulated links as the protocol traffic.
	entries := make([]dht.Entry, n)
	for i := 0; i < n; i++ {
		entries[i] = dht.Entry{ID: c.table.ID(i), Addr: i}
	}
	c.dhtPeers = make([]*dht.Peer, n)
	for i := 0; i < n; i++ {
		c.dhtPeers[i] = dht.NewPeer(entries[i], simTransport{net: c.net, self: i}, 0)
		for j := 1; j <= clusterBootstrapContacts && j < n; j++ {
			c.dhtPeers[i].Bootstrap([]dht.Entry{entries[(i+j*13)%n]})
		}
	}
	interval := cc.Churn.RefreshInterval
	if interval == 0 {
		interval = membership.DefaultRefreshInterval
	}
	c.refreshers = make([]*membership.Refresher, n)
	for i := 0; i < n; i++ {
		i := i
		c.refreshers[i] = membership.NewRefresher(
			c.dhtPeers[i], c.views[i], c.net,
			cc.Churn.RefreshInterval, cc.Churn.RefreshFanout,
			cc.Seed^int64(i)*7919,
			func() bool { return c.dir.Online(i) })
		if c.rec != nil {
			c.refreshers[i].SetRecorder(c.rec, i)
		}
		if interval > 0 {
			// Stagger crawl starts across one interval so the network is
			// not hit by synchronized lookups.
			c.refreshers[i].Start(interval * time.Duration(i) / time.Duration(n))
		}
	}

	// Join/leave announcements ride their own gossip mesh with their own
	// routers: unlike block routers these are NEVER reset per slot —
	// membership state outlives slot boundaries.
	annRng := rand.New(rand.NewSource(cc.Seed ^ 0x616e6e))
	members := make([]int, n)
	for i := range members {
		members[i] = i
	}
	c.annOverlay = gossip.NewOverlay(annRng, members, gossip.DefaultDegree)
	c.annRouters = make([]*gossip.Router, n)
	for i := range c.annRouters {
		c.annRouters[i] = gossip.NewRouter(i)
	}

	churnRng := rand.New(rand.NewSource(cc.Seed ^ 0x6368726e))
	c.engine = membership.NewEngine(*cc.Churn, c.net, churnRng, n, membership.Hooks{
		OnJoin:  c.onChurnJoin,
		OnLeave: c.onChurnLeave,
	})
	// DeadFraction nodes belong to the fault model, not the churn model:
	// they stay dead forever and never emit lifecycle events.
	for i, d := range c.dead {
		if d {
			c.engine.Exclude(i)
		}
	}
	c.engine.Start()

	// Nodes drawn initially offline have never been online: the builder
	// does not know them, peers' views exclude them, and the simulator
	// treats them as absent until their join fires.
	for i := 0; i < n; i++ {
		if c.engine.Online(i) {
			continue
		}
		c.dir.SetOnline(i, false)
		c.dir.SetBelieved(i, false)
		if err := c.net.SetDead(i, true); err != nil {
			return err
		}
		for j := 0; j < n; j++ {
			if j != i {
				c.views[j].Remove(i)
			}
		}
	}
	// The builder seeds its BELIEVED membership: graceful leavers are
	// announced and drop out of it; crashed nodes stay believed-online
	// and keep receiving (wasted) seed traffic until they return.
	c.builder.SetView(membership.ViewFunc(c.dir.Believed))
	return nil
}

// annMsg is one join/leave announcement frame on the membership mesh.
type annMsg struct {
	id  gossip.MsgID
	ann membership.Announcement
}

// publishAnnouncement floods a membership change from the subject node.
func (c *Cluster) publishAnnouncement(node int, join bool) {
	c.annSeq++
	m := annMsg{
		id:  gossip.MsgID(c.annSeq),
		ann: membership.Announcement{Seq: c.annSeq, Node: node, Join: join},
	}
	for _, peer := range c.annRouters[node].Publish(c.annOverlay, m.id) {
		c.net.Send(node, peer, membership.AnnouncementWireSize, m)
	}
}

func (c *Cluster) onAnnouncement(node, from, size int, m annMsg) {
	if c.mAnn != nil {
		c.mAnn.Inc()
	}
	fwd, isNew := c.annRouters[node].Receive(c.annOverlay, m.id, from)
	if !isNew {
		return
	}
	if m.ann.Node != node {
		if m.ann.Join {
			c.views[node].Add(m.ann.Node)
		} else {
			c.views[node].Remove(m.ann.Node)
		}
	}
	for _, peer := range fwd {
		c.net.Send(node, peer, size, m)
	}
}

// onChurnJoin brings a node online mid-run: fresh joiners and restarting
// crashers alike start the current slot from an empty store and announce
// themselves, and a catch-up crawl rebuilds their possibly stale view.
func (c *Cluster) onChurnJoin(node int, restart bool) {
	if err := c.net.SetDead(node, false); err != nil {
		return
	}
	delete(c.departed, node)
	if c.rec != nil {
		op := obsv.ChurnJoin
		if restart {
			op = obsv.ChurnRestart
		}
		c.rec.Record(obsv.Event{At: c.net.Now(), Slot: c.curSlot,
			Kind: obsv.KindChurnEvent, Node: int32(node), Peer: -1,
			Aux: int64(op)})
	}
	c.dir.SetOnline(node, true)
	c.dir.SetBelieved(node, true)
	if c.joinedAt[node] < 0 {
		c.joinedAt[node] = c.net.Now()
	}
	c.views[node].Add(node)
	c.nodes[node].JoinSlot(c.curSlot)
	c.started[node] = true
	c.publishAnnouncement(node, true)
	c.refreshers[node].RefreshNow()
}

// onChurnLeave takes a node offline. Graceful leavers announce their
// departure first, so peers prune them; crashers vanish silently and
// stay in every view — only liveness backoff steers traffic off them.
func (c *Cluster) onChurnLeave(node int, crash bool) {
	if c.leftAt[node] < 0 {
		c.leftAt[node] = c.net.Now()
	}
	if c.departed != nil {
		c.departed[node] = true
	}
	if c.rec != nil {
		op := obsv.ChurnLeave
		if crash {
			op = obsv.ChurnCrash
		}
		c.rec.Record(obsv.Event{At: c.net.Now(), Slot: c.curSlot,
			Kind: obsv.KindChurnEvent, Node: int32(node), Peer: -1,
			Aux: int64(op)})
	}
	if !crash {
		c.publishAnnouncement(node, false)
		c.dir.SetBelieved(node, false)
	}
	c.dir.SetOnline(node, false)
	_ = c.net.SetDead(node, true)
}

// dispatch routes payloads at a node: PANDAS protocol messages to the
// Node, gossip frames to the block router, announcements to the
// membership mesh, DHT RPCs to the node's Kademlia peer.
func (c *Cluster) dispatch(node, from, size int, payload any) {
	if id, ok := payload.(gossip.MsgID); ok {
		c.onBlockGossip(node, from, size, id)
		return
	}
	if m, ok := payload.(annMsg); ok {
		c.onAnnouncement(node, from, size, m)
		return
	}
	if c.dhtPeers != nil && c.dhtPeers[node].HandleMessage(from, payload) {
		if c.mDHT != nil {
			c.mDHT.Inc()
		}
		if c.rec != nil {
			c.rec.Record(obsv.Event{At: c.net.Now(), Slot: c.curSlot,
				Kind: obsv.KindDHTMsg, Node: int32(node), Peer: int32(from),
				Bytes: int64(size)})
		}
		if from >= 0 && from < len(c.nodes) {
			// Any DHT exchange teaches the recipient the sender's record,
			// as real Kademlia contact handling does — this is what lets
			// a joiner's presence spread into routing tables and from
			// there into crawled views.
			c.dhtPeers[node].Table().Add(dht.Entry{ID: c.table.ID(from), Addr: from})
		}
		return
	}
	c.nodes[node].HandleMessage(from, size, payload)
}

func (c *Cluster) onBlockGossip(node, from, size int, id gossip.MsgID) {
	if c.routers == nil {
		return
	}
	fwd, isNew := c.routers[node].Receive(c.overlay, id, from)
	if !isNew {
		if c.mGossipDup != nil {
			c.mGossipDup.Inc()
		}
		return
	}
	if c.mGossip != nil {
		c.mGossip.Inc()
	}
	if c.rec != nil {
		c.rec.Record(obsv.Event{At: c.net.Now(), Slot: c.curSlot,
			Kind: obsv.KindGossipMsg, Node: int32(node), Peer: int32(from),
			Bytes: int64(size)})
	}
	if c.blockRecv[node] < 0 {
		c.blockRecv[node] = c.net.Now()
	}
	for _, peer := range fwd {
		c.net.Send(node, peer, size, id)
	}
}

// Table exposes the epoch table.
func (c *Cluster) Table() *Table { return c.table }

// Builder exposes the builder (to set withholding, views, or real blobs).
func (c *Cluster) Builder() *Builder { return c.builder }

// Nodes exposes the node list.
func (c *Cluster) Nodes() []*Node { return c.nodes }

// Network exposes the simulator (for custom drivers).
func (c *Cluster) Network() *simnet.Network { return c.net }

// Engine exposes the churn engine (nil without dynamic membership).
func (c *Cluster) Engine() *membership.Engine { return c.engine }

// Behaviors returns the per-node adversary sortition (all Honest without
// an adversary config). Indexed by node.
func (c *Cluster) Behaviors() []adversary.Behavior { return c.behaviors }

// Agents returns the per-node adversary agents (honest agents for honest
// nodes). Indexed by node.
func (c *Cluster) Agents() []*adversary.Agent { return c.agents }

// Directory exposes the online/believed membership directory (nil
// without dynamic membership).
func (c *Cluster) Directory() *membership.Directory { return c.dir }

// RunSlot simulates one full slot: the proposer selects the builder at
// slot start, the builder seeds, nodes consolidate and sample. The
// simulation runs for a full 12 s slot so that stragglers past the 4 s
// deadline are still measured (as in Fig. 11).
func (c *Cluster) RunSlot(slot uint64) (*SlotResult, error) {
	start := c.net.Now()
	droppedBefore := c.net.Dropped()
	c.curSlot = slot
	// Liveness scorers and refreshers outlive slots; restamp the slot
	// their traced events carry.
	for _, s := range c.scorers {
		s.SetSlot(slot)
	}
	for _, r := range c.refreshers {
		r.SetSlot(slot)
	}
	for i, n := range c.nodes {
		c.blockRecv[i] = -1
		if c.dir != nil {
			c.joinedAt[i] = -1
			c.leftAt[i] = -1
			c.started[i] = c.dir.Online(i)
			if !c.started[i] {
				// Offline at slot start: the node joins the slot mid-way
				// if and when its join event fires.
				continue
			}
		}
		n.StartSlot(slot)
	}
	if c.routers != nil {
		for _, r := range c.routers {
			r.Reset()
		}
	}

	// Scheduled network faults re-arm each slot at their offsets.
	c.armFaults()

	// t=0: proposer instructs the builder to seed, and (optionally)
	// publishes the block via gossip from a random well-known node. A
	// late-seeding attack postpones the builder, eating into the 4 s
	// sampling budget.
	var report SeedingReport
	c.net.After(c.seedDelay, func() {
		report = c.builder.SeedSlot(slot)
	})
	if c.overlay != nil {
		origin := int(slot) % len(c.nodes)
		c.net.After(0, func() {
			if c.blockRecv[origin] < 0 {
				c.blockRecv[origin] = c.net.Now()
			}
			id := gossip.MsgID(slot + 1)
			for _, peer := range c.routers[origin].Publish(c.overlay, id) {
				c.net.Send(origin, peer, c.cfg.BlockSize, id)
			}
		})
	}
	c.net.Run(start + consensus.SlotDuration)

	res := &SlotResult{Seeding: report, Dropped: c.net.Dropped() - droppedBefore}
	res.BuilderBytes = c.net.Stats(c.bIndex).BytesSent
	if c.engine != nil {
		st := c.engine.Stats()
		res.Churn = st.Minus(c.churnPrev)
		c.churnPrev = st
	}
	res.Outcomes = make([]NodeOutcome, len(c.nodes))
	for i := range c.nodes {
		res.Outcomes[i] = c.nodeOutcome(i, start)
	}
	// Reset traffic stats so subsequent slots measure independently.
	c.net.ResetStats()
	return res, nil
}

// nodeOutcome derives one node's NodeOutcome from the unified read path:
// the obsv view the node's observer maintained during the slot (returned
// by Node.Metrics), plus the cluster's own lifecycle and block-gossip
// bookkeeping. Durations are made relative to the slot start here; the
// view keeps absolute virtual times.
func (c *Cluster) nodeOutcome(i int, start time.Duration) NodeOutcome {
	o := NodeOutcome{
		Seed:          -1,
		Consolidation: -1,
		Sampling:      -1,
		BlockRecv:     -1,
		ConsFromSeed:  -1,
		JoinedAt:      -1,
		LeftAt:        -1,
		Dead:          c.dead[i],
	}
	if c.dir != nil {
		o.Offline = !c.started[i]
		if c.joinedAt[i] >= 0 {
			o.JoinedAt = c.joinedAt[i] - start
		}
		if c.leftAt[i] >= 0 {
			o.LeftAt = c.leftAt[i] - start
		}
	}
	if o.Offline {
		// The node never ran this slot; its view holds stale leftovers
		// from its last active slot.
		o.SampleVote = consensus.Attest(consensus.TightForkChoice,
			consensus.AttestationInput{SlotStart: time.Unix(0, 0)})
		return o
	}
	m := c.nodes[i].Metrics()
	o.FetchMsgs = m.FetchMsgsSent + m.FetchMsgsRecv
	o.FetchBytes = m.FetchBytesSent + m.FetchBytesRecv
	o.Rounds = m.Rounds
	if m.HasSeed {
		// "Time to seeding" is the arrival of the node's initial seed
		// data (the paper's Fig. 9a metric).
		o.Seed = m.FirstSeedAt - start
	}
	if m.Consolidated {
		o.Consolidation = m.ConsolidatedAt - start
		if m.HasSeed {
			o.ConsFromSeed = m.ConsolidatedAt - m.FirstSeedAt
		}
	}
	if m.Sampled {
		o.Sampling = m.SampledAt - start
	}
	if c.blockRecv[i] >= 0 {
		o.BlockRecv = c.blockRecv[i] - start
	}
	// Tight fork-choice attestation: block (when gossiped) and DAS
	// must both land within the 4 s phase.
	in := consensus.AttestationInput{SlotStart: time.Unix(0, 0)}
	if o.BlockRecv >= 0 || c.overlay == nil {
		block := o.BlockRecv
		if c.overlay == nil {
			block = 0 // block dissemination not simulated: assume on time
		}
		in.BlockValidAt = in.SlotStart.Add(block)
	}
	if o.Sampling >= 0 {
		in.DASCompleteAt = in.SlotStart.Add(o.Sampling)
	}
	o.SampleVote = consensus.Attest(consensus.TightForkChoice, in)
	return o
}

// EligibleAt reports whether the node counts toward the deadline-success
// denominator: it must have been up when the slot started (so seeding
// could reach it) and still be up at the deadline. Mid-slot joiners are
// excluded — they miss seeding by construction and are measured as
// catch-up instead (JoinerCatchUp).
func (o NodeOutcome) EligibleAt(deadline time.Duration) bool {
	if o.Dead || o.Offline || o.JoinedAt >= 0 {
		return false
	}
	return o.LeftAt < 0 || o.LeftAt > deadline
}

// DeadlineRate returns the fraction of eligible nodes that completed
// sampling within the deadline. Without churn every live node is
// eligible, which reduces to the paper's Fig. 15 metric.
func (r *SlotResult) DeadlineRate(deadline time.Duration) float64 {
	live, ok := 0, 0
	for _, o := range r.Outcomes {
		if !o.EligibleAt(deadline) {
			continue
		}
		live++
		if o.Sampling >= 0 && o.Sampling <= deadline {
			ok++
		}
	}
	if live == 0 {
		return 0
	}
	return float64(ok) / float64(live)
}

// JoinerCatchUp reports how mid-slot joiners fared: the number that
// joined and, of those, the number that still completed sampling before
// the slot ended (from an empty store, without seeding).
func (r *SlotResult) JoinerCatchUp() (joined, sampled int) {
	for _, o := range r.Outcomes {
		if o.JoinedAt < 0 {
			continue
		}
		joined++
		if o.Sampling >= 0 {
			sampled++
		}
	}
	return joined, sampled
}

// CommitteeDecision samples a consensus committee for the slot and
// aggregates its members' tight fork-choice votes — the end-to-end
// outcome PANDAS feeds into Ethereum: with available data a
// supermajority attests and the block is accepted; with withheld data
// the committee rejects it, all without consensus-protocol changes.
func (r *SlotResult) CommitteeDecision(seed assign.Seed, slot uint64, size int) consensus.Decision {
	members := consensus.Committee(seed, consensus.Slot(slot), len(r.Outcomes), size)
	votes := make([]consensus.Vote, 0, len(members))
	for _, m := range members {
		votes = append(votes, r.Outcomes[m].SampleVote)
	}
	return consensus.Aggregate(votes, len(members))
}

package core

import (
	"fmt"
	"math/rand"
	"time"

	"pandas/internal/assign"
	"pandas/internal/consensus"
	"pandas/internal/gossip"
	"pandas/internal/ids"
	"pandas/internal/latency"
	"pandas/internal/simnet"
	"pandas/internal/wire"
)

// ClusterConfig describes a simulated PANDAS deployment: N nodes plus one
// builder over the discrete-event network.
type ClusterConfig struct {
	// Core holds the protocol parameters.
	Core Config
	// N is the number of (non-builder) nodes.
	N int
	// Seed drives every random choice in the deployment.
	Seed int64
	// Latency is the propagation model; nil selects the IPFS-like
	// planetary topology.
	Latency simnet.LatencyModel
	// LossRate is the per-message drop probability (3% default when
	// negative).
	LossRate float64
	// DeadFraction marks this share of nodes as crashed/free-riding:
	// they receive but never respond, and the builder does not know.
	DeadFraction float64
	// OutOfViewFraction removes this share of the network from every
	// node's view (views are random per node; the builder keeps a full
	// view).
	OutOfViewFraction float64
	// BlockGossip additionally disseminates a block over a global
	// GossipSub-style mesh and records reception times (Fig. 9a and the
	// attestation decision).
	BlockGossip bool
	// BlockSize is the gossiped block size in bytes (128 KiB default).
	BlockSize int
	// VerifySeeds enables proposer-signature verification at nodes
	// (real-payload deployments).
	VerifySeeds bool
}

// NodeOutcome reports one node's slot, with durations relative to the
// slot start. A negative duration means "never happened".
type NodeOutcome struct {
	Seed          time.Duration // last seed datagram
	Consolidation time.Duration
	Sampling      time.Duration
	BlockRecv     time.Duration // only with BlockGossip
	ConsFromSeed  time.Duration // consolidation measured from seeding
	Dead          bool

	FetchMsgs  int   // queries + responses, both directions
	FetchBytes int64 // corresponding traffic volume
	Rounds     []RoundStat
	SampleVote consensus.Vote // tight fork-choice attestation
}

// SlotResult aggregates a full slot.
type SlotResult struct {
	Outcomes []NodeOutcome
	Seeding  SeedingReport
	// BuilderBytes is the builder's total sent volume (seeding).
	BuilderBytes int64
	// Dropped counts messages lost in the network during the slot.
	Dropped int
}

// Cluster is a simulated deployment.
type Cluster struct {
	cfg     ClusterConfig
	net     *simnet.Network
	table   *Table
	nodes   []*Node
	builder *Builder
	bIndex  int

	proposer  *ids.Identity
	overlay   *gossip.Overlay
	routers   []*gossip.Router
	blockRecv []time.Duration
	deadSet   map[int]bool
	randao    *consensus.Randao
}

// simTransport adapts the simulator to the core Transport interface.
type simTransport struct {
	net  *simnet.Network
	self int
}

func (s simTransport) Send(to, size int, payload any) { s.net.Send(s.self, to, size, payload) }
func (s simTransport) SendReliable(to, size int, payload any) {
	s.net.SendReliable(s.self, to, size, payload)
}
func (s simTransport) After(d time.Duration, fn func()) { s.net.After(d, fn) }
func (s simTransport) Now() time.Duration               { return s.net.Now() }

// NewCluster builds the deployment: identities, epoch table, simulator
// wiring, fault injection, and optionally the block gossip overlay.
func NewCluster(cc ClusterConfig) (*Cluster, error) {
	if cc.N < 1 {
		return nil, ErrNoNodes
	}
	if err := cc.Core.Validate(); err != nil {
		return nil, err
	}
	if cc.Latency == nil {
		vertices := cc.N + 1
		if vertices > 10000 {
			vertices = 10000
		}
		cc.Latency = latency.NewIPFSLike(cc.Seed, vertices)
	}
	loss := cc.LossRate
	if loss < 0 {
		loss = simnet.DefaultLossRate
	}
	if cc.BlockSize == 0 {
		cc.BlockSize = 128 * 1024
	}
	net, err := simnet.New(simnet.Config{
		Latency:  cc.Latency,
		LossRate: loss,
		Seed:     cc.Seed,
		MinDelay: time.Millisecond,
	})
	if err != nil {
		return nil, err
	}

	rng := rand.New(rand.NewSource(cc.Seed))
	nodeIDs := make([]ids.NodeID, cc.N)
	for i := range nodeIDs {
		nodeIDs[i] = ids.NewTestIdentity(cc.Seed<<20 + int64(i)).ID
	}
	entropy := [32]byte{}
	rng.Read(entropy[:])
	randao := consensus.NewRandao(entropy)
	table, err := NewTable(cc.Core.Assign, randao.SeedFor(0), nodeIDs)
	if err != nil {
		return nil, err
	}

	c := &Cluster{
		cfg:     cc,
		net:     net,
		table:   table,
		deadSet: make(map[int]bool),
		randao:  randao,
	}

	proposer, err := ids.NewIdentity()
	if err != nil {
		return nil, fmt.Errorf("core: proposer identity: %w", err)
	}
	c.proposer = proposer

	// Register nodes.
	c.nodes = make([]*Node, cc.N)
	c.blockRecv = make([]time.Duration, cc.N)
	for i := 0; i < cc.N; i++ {
		i := i
		idx := net.AddNode(func(from, size int, payload any) {
			c.dispatch(i, from, size, payload)
		}, simnet.NodeBandwidth, simnet.NodeBandwidth)
		if idx != i {
			return nil, fmt.Errorf("core: node index mismatch: %d != %d", idx, i)
		}
		c.nodes[i] = NewNode(cc.Core, i, table, simTransport{net: net, self: i}, cc.Seed^int64(i*2654435761))
		if cc.VerifySeeds {
			c.nodes[i].SetSeedVerification(proposer.Public)
		}
	}

	// The builder sits on a well-connected vertex with a 10 Gbps uplink.
	c.bIndex = net.AddNode(nil, simnet.BuilderBandwidth, simnet.BuilderBandwidth)
	builderID := ids.NewTestIdentity(cc.Seed<<20 + int64(cc.N) + 7).ID
	c.builder = NewBuilder(cc.Core, c.bIndex, builderID, table, simTransport{net: net, self: c.bIndex}, cc.Seed+99)
	c.builder.SetProposerSigner(func(slot uint64) [wire.SigSize]byte {
		var sig [wire.SigSize]byte
		copy(sig[:], proposer.Sign(wire.SeedSigningBytes(slot, builderID)))
		return sig
	})

	// Fault injection: dead nodes.
	if cc.DeadFraction > 0 {
		count := int(float64(cc.N) * cc.DeadFraction)
		for _, i := range rng.Perm(cc.N)[:count] {
			c.deadSet[i] = true
			if err := net.SetDead(i, true); err != nil {
				return nil, err
			}
		}
	}
	// Fault injection: incomplete views. Each node knows a random
	// (1 - f) subset of the network; the builder keeps its full view.
	if cc.OutOfViewFraction > 0 {
		keep := cc.N - int(float64(cc.N)*cc.OutOfViewFraction)
		for i := 0; i < cc.N; i++ {
			visible := make(map[int]bool, keep)
			visible[i] = true
			for _, p := range rng.Perm(cc.N)[:keep] {
				visible[p] = true
			}
			c.nodes[i].SetView(func(peer int) bool { return visible[peer] })
		}
	}

	// Block dissemination mesh over all nodes.
	if cc.BlockGossip {
		members := make([]int, cc.N)
		for i := range members {
			members[i] = i
		}
		c.overlay = gossip.NewOverlay(rng, members, gossip.DefaultDegree)
		c.routers = make([]*gossip.Router, cc.N)
		for i := range c.routers {
			c.routers[i] = gossip.NewRouter(i)
		}
	}
	return c, nil
}

// dispatch routes payloads at a node: PANDAS protocol messages to the
// Node, gossip frames to the block router.
func (c *Cluster) dispatch(node, from, size int, payload any) {
	if id, ok := payload.(gossip.MsgID); ok {
		c.onBlockGossip(node, from, size, id)
		return
	}
	c.nodes[node].HandleMessage(from, size, payload)
}

func (c *Cluster) onBlockGossip(node, from, size int, id gossip.MsgID) {
	if c.routers == nil {
		return
	}
	fwd, isNew := c.routers[node].Receive(c.overlay, id, from)
	if !isNew {
		return
	}
	if c.blockRecv[node] < 0 {
		c.blockRecv[node] = c.net.Now()
	}
	for _, peer := range fwd {
		c.net.Send(node, peer, size, id)
	}
}

// Table exposes the epoch table.
func (c *Cluster) Table() *Table { return c.table }

// Builder exposes the builder (to set withholding, views, or real blobs).
func (c *Cluster) Builder() *Builder { return c.builder }

// Nodes exposes the node list.
func (c *Cluster) Nodes() []*Node { return c.nodes }

// Network exposes the simulator (for custom drivers).
func (c *Cluster) Network() *simnet.Network { return c.net }

// RunSlot simulates one full slot: the proposer selects the builder at
// slot start, the builder seeds, nodes consolidate and sample. The
// simulation runs for a full 12 s slot so that stragglers past the 4 s
// deadline are still measured (as in Fig. 11).
func (c *Cluster) RunSlot(slot uint64) (*SlotResult, error) {
	start := c.net.Now()
	droppedBefore := c.net.Dropped()
	for i, n := range c.nodes {
		n.StartSlot(slot)
		c.blockRecv[i] = -1
	}
	if c.routers != nil {
		for _, r := range c.routers {
			r.Reset()
		}
	}

	// t=0: proposer instructs the builder to seed, and (optionally)
	// publishes the block via gossip from a random well-known node.
	var report SeedingReport
	c.net.After(0, func() {
		report = c.builder.SeedSlot(slot)
	})
	if c.overlay != nil {
		origin := int(slot) % len(c.nodes)
		c.net.After(0, func() {
			if c.blockRecv[origin] < 0 {
				c.blockRecv[origin] = c.net.Now()
			}
			id := gossip.MsgID(slot + 1)
			for _, peer := range c.routers[origin].Publish(c.overlay, id) {
				c.net.Send(origin, peer, c.cfg.BlockSize, id)
			}
		})
	}
	c.net.Run(start + consensus.SlotDuration)

	res := &SlotResult{Seeding: report, Dropped: c.net.Dropped() - droppedBefore}
	res.BuilderBytes = c.net.Stats(c.bIndex).BytesSent
	res.Outcomes = make([]NodeOutcome, len(c.nodes))
	for i, n := range c.nodes {
		m := n.Metrics
		o := NodeOutcome{
			Seed:          -1,
			Consolidation: -1,
			Sampling:      -1,
			BlockRecv:     -1,
			ConsFromSeed:  -1,
			Dead:          c.deadSet[i],
			FetchMsgs:     m.FetchMsgsSent + m.FetchMsgsRecv,
			FetchBytes:    m.FetchBytesSent + m.FetchBytesRecv,
			Rounds:        m.Rounds,
		}
		if m.HasSeed {
			// "Time to seeding" is the arrival of the node's initial seed
			// data (the paper's Fig. 9a metric).
			o.Seed = m.FirstSeedAt - start
		}
		if m.Consolidated {
			o.Consolidation = m.ConsolidatedAt - start
			if m.HasSeed {
				o.ConsFromSeed = m.ConsolidatedAt - m.FirstSeedAt
			}
		}
		if m.Sampled {
			o.Sampling = m.SampledAt - start
		}
		if c.blockRecv[i] >= 0 {
			o.BlockRecv = c.blockRecv[i] - start
		}
		// Tight fork-choice attestation: block (when gossiped) and DAS
		// must both land within the 4 s phase.
		in := consensus.AttestationInput{SlotStart: time.Unix(0, 0)}
		if o.BlockRecv >= 0 || c.overlay == nil {
			block := o.BlockRecv
			if c.overlay == nil {
				block = 0 // block dissemination not simulated: assume on time
			}
			in.BlockValidAt = in.SlotStart.Add(block)
		}
		if o.Sampling >= 0 {
			in.DASCompleteAt = in.SlotStart.Add(o.Sampling)
		}
		o.SampleVote = consensus.Attest(consensus.TightForkChoice, in)
		res.Outcomes[i] = o
	}
	// Reset traffic stats so subsequent slots measure independently.
	c.net.ResetStats()
	return res, nil
}

// DeadlineRate returns the fraction of LIVE nodes that completed sampling
// within the deadline.
func (r *SlotResult) DeadlineRate(deadline time.Duration) float64 {
	live, ok := 0, 0
	for _, o := range r.Outcomes {
		if o.Dead {
			continue
		}
		live++
		if o.Sampling >= 0 && o.Sampling <= deadline {
			ok++
		}
	}
	if live == 0 {
		return 0
	}
	return float64(ok) / float64(live)
}

// CommitteeDecision samples a consensus committee for the slot and
// aggregates its members' tight fork-choice votes — the end-to-end
// outcome PANDAS feeds into Ethereum: with available data a
// supermajority attests and the block is accepted; with withheld data
// the committee rejects it, all without consensus-protocol changes.
func (r *SlotResult) CommitteeDecision(seed assign.Seed, slot uint64, size int) consensus.Decision {
	members := consensus.Committee(seed, consensus.Slot(slot), len(r.Outcomes), size)
	votes := make([]consensus.Vote, 0, len(members))
	for _, m := range members {
		votes = append(votes, r.Outcomes[m].SampleVote)
	}
	return consensus.Aggregate(votes, len(members))
}

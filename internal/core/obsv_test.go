package core

import (
	"bytes"
	"testing"
	"time"

	"pandas/internal/membership"
	"pandas/internal/metrics"
	"pandas/internal/obsv"
)

// TestTraceDoesNotPerturbProtocol guards the determinism contract: a run
// with the recorder enabled produces bit-identical outcomes to a run
// without it (no instrumentation touches RNG or timing).
func TestTraceDoesNotPerturbProtocol(t *testing.T) {
	run := func(rec obsv.Recorder) []time.Duration {
		c := smallCluster(t, 80, func(cc *ClusterConfig) {
			cc.DeadFraction = 0.1
			cc.Core.Recorder = rec
		})
		res, err := c.RunSlot(1)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]time.Duration, len(res.Outcomes))
		for i, o := range res.Outcomes {
			out[i] = o.Sampling
		}
		return out
	}
	plain := run(nil)
	traced := run(obsv.MustRing(obsv.DefaultRingSize))
	for i := range plain {
		if plain[i] != traced[i] {
			t.Fatalf("node %d: sampling %v without trace, %v with", i, plain[i], traced[i])
		}
	}
}

// TestTimelineMatchesLegacyAggregation is the golden cross-check of the
// unified read path: a fig15-style slot (20% dead nodes) is traced, the
// trace is round-tripped through JSONL, and the reconstructed timeline
// must reproduce the legacy NodeOutcome phase durations — and therefore
// the sampling-completion CDF — bit for bit.
func TestTimelineMatchesLegacyAggregation(t *testing.T) {
	ring := obsv.MustRing(obsv.DefaultRingSize)
	c := smallCluster(t, 120, func(cc *ClusterConfig) {
		cc.DeadFraction = 0.2
		cc.Core.Recorder = ring
	})
	res, err := c.RunSlot(1)
	if err != nil {
		t.Fatal(err)
	}
	if ring.Overwritten() > 0 {
		t.Fatalf("ring wrapped (%d lost): grow the test ring", ring.Overwritten())
	}

	// Round-trip the trace through the JSONL exporter, as an offline
	// analysis would.
	var buf bytes.Buffer
	if err := obsv.WriteJSONL(&buf, ring.Events()); err != nil {
		t.Fatal(err)
	}
	events, err := obsv.ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}

	st := obsv.NewTimeline(events).Slot(1)
	if st == nil {
		t.Fatal("trace has no slot 1")
	}
	// The builder's seed-sent events give it a timeline entry too; the
	// outcome comparison covers protocol nodes only.
	n := len(res.Outcomes)
	nodesOnly := func(node int) bool { return node < n }

	for phase, legacy := range map[obsv.Phase]func(NodeOutcome) time.Duration{
		obsv.PhaseSeed:          func(o NodeOutcome) time.Duration { return o.Seed },
		obsv.PhaseConsolidation: func(o NodeOutcome) time.Duration { return o.Consolidation },
		obsv.PhaseSampling:      func(o NodeOutcome) time.Duration { return o.Sampling },
	} {
		got := st.Durations(phase, nodesOnly)
		if len(got) != n {
			t.Fatalf("%v: timeline has %d nodes, outcomes %d", phase, len(got), n)
		}
		for i, d := range got {
			if want := legacy(res.Outcomes[i]); d != want {
				t.Errorf("%v node %d: timeline %v, legacy %v", phase, i, d, want)
			}
		}
	}

	// The derived CDF — what the figures plot — must agree bit for bit.
	legacySeries := make([]time.Duration, n)
	for i, o := range res.Outcomes {
		legacySeries[i] = o.Sampling
	}
	dLegacy := metrics.NewDistribution(legacySeries)
	dTrace := metrics.NewDistribution(st.Durations(obsv.PhaseSampling, nodesOnly))
	if dLegacy.Count() != dTrace.Count() || dLegacy.Failures() != dTrace.Failures() {
		t.Fatalf("distribution shape differs: legacy %d/%d, trace %d/%d",
			dLegacy.Count(), dLegacy.Failures(), dTrace.Count(), dTrace.Failures())
	}
	for _, p := range []float64{0, 10, 25, 50, 75, 90, 99, 100} {
		if a, b := dLegacy.Percentile(p), dTrace.Percentile(p); a != b {
			t.Errorf("p%v: legacy %v, trace %v", p, a, b)
		}
	}
	lc, tc := dLegacy.CDF(64), dTrace.CDF(64)
	for i := range lc {
		if lc[i] != tc[i] {
			t.Fatalf("CDF point %d differs: legacy %+v, trace %+v", i, lc[i], tc[i])
		}
	}
}

// TestClusterRegistryMetrics checks that a metrics-enabled run populates
// the shared registry with simulator counters.
func TestClusterRegistryMetrics(t *testing.T) {
	reg := obsv.NewRegistry()
	c := smallCluster(t, 60, func(cc *ClusterConfig) {
		cc.Core.Metrics = reg
	})
	if _, err := c.RunSlot(1); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if snap.Counters["simnet_delivered_total"] == 0 {
		t.Error("simnet_delivered_total not incremented")
	}
	if snap.Counters["simnet_bytes_total"] == 0 {
		t.Error("simnet_bytes_total not incremented")
	}
	var sb bytes.Buffer
	if err := snap.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(sb.Bytes(), []byte("# TYPE simnet_delivered_total counter")) {
		t.Error("Prometheus exposition missing simnet counters")
	}
}

// TestTraceChurnEvents checks that a churn-enabled run records membership
// lifecycle transitions.
func TestTraceChurnEvents(t *testing.T) {
	ring := obsv.MustRing(obsv.DefaultRingSize)
	c := smallCluster(t, 80, func(cc *ClusterConfig) {
		cc.Core.Recorder = ring
		cc.Churn = &membership.Config{
			MeanSession:            20 * time.Second,
			MeanDowntime:           5 * time.Second,
			JoinRate:               2,
			CrashFraction:          0.5,
			InitialOfflineFraction: 0.2,
		}
	})
	for slot := uint64(1); slot <= 2; slot++ {
		if _, err := c.RunSlot(slot); err != nil {
			t.Fatal(err)
		}
	}
	churn := 0
	for _, e := range ring.Events() {
		if e.Kind == obsv.KindChurnEvent {
			churn++
			op := obsv.ChurnOp(e.Aux)
			if op < obsv.ChurnJoin || op > obsv.ChurnCrash {
				t.Fatalf("churn event with bad op: %+v", e)
			}
		}
	}
	if churn == 0 {
		t.Fatal("churn-enabled run recorded no churn events")
	}
}

package core

import (
	"errors"
	"testing"

	"pandas/internal/obsv"
)

// The stock configurations must validate as-is: the observability knobs
// default to a nil recorder, nil registry, and a positive ring size.
func TestStockConfigsValidate(t *testing.T) {
	for name, cfg := range map[string]Config{
		"default": DefaultConfig(),
		"test":    TestConfig(),
	} {
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s config invalid: %v", name, err)
		}
		if cfg.Recorder != nil || cfg.Metrics != nil {
			t.Errorf("%s config: tracing must be off by default", name)
		}
		if cfg.TraceRing != obsv.DefaultRingSize {
			t.Errorf("%s config: TraceRing = %d, want %d", name, cfg.TraceRing, obsv.DefaultRingSize)
		}
	}
}

// Enabling observability must survive a validation round trip unchanged.
func TestConfigValidateWithObservability(t *testing.T) {
	cfg := TestConfig()
	cfg.Recorder = obsv.MustRing(64)
	cfg.Metrics = obsv.NewRegistry()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("config with recorder+registry invalid: %v", err)
	}
}

func TestConfigValidateRejectsBadTraceRing(t *testing.T) {
	for _, bad := range []int{0, -1, -65536} {
		cfg := TestConfig()
		cfg.TraceRing = bad
		err := cfg.Validate()
		if err == nil {
			t.Errorf("TraceRing=%d accepted", bad)
			continue
		}
		if !errors.Is(err, ErrBadConfig) {
			t.Errorf("TraceRing=%d: error %v does not wrap ErrBadConfig", bad, err)
		}
	}
}

func TestConfigValidateRejections(t *testing.T) {
	mutations := map[string]func(*Config){
		"samples-zero":    func(c *Config) { c.Samples = 0 },
		"policy-unknown":  func(c *Config) { c.Policy = Policy(99) },
		"deadline-zero":   func(c *Config) { c.Deadline = 0 },
		"max-cells-zero":  func(c *Config) { c.MaxCellsPerMsg = 0 },
		"redundancy-zero": func(c *Config) { c.Policy = PolicyRedundant; c.Redundancy = 0 },
		"assign-mismatch": func(c *Config) { c.Assign.N = c.Blob.N() + 2 },
		"trace-ring-zero": func(c *Config) { c.TraceRing = 0 },
	}
	for name, mutate := range mutations {
		cfg := TestConfig()
		mutate(&cfg)
		if err := cfg.Validate(); !errors.Is(err, ErrBadConfig) {
			t.Errorf("%s: Validate() = %v, want ErrBadConfig", name, err)
		}
	}
}

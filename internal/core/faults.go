package core

// Cluster-side adversary wiring: builder attacks, the per-slot network
// fault schedule, and view-poisoner gossip. Everything here reads
// randomness from dedicated streams (never the cluster's main rng), so
// honest deployments are bit-identical whether or not the subsystem is
// compiled in the configuration.

import (
	"math/rand"
	"sort"

	"pandas/internal/adversary"
	"pandas/internal/gossip"
	"pandas/internal/membership"
	"pandas/internal/obsv"
)

// Salts for the adversary subsystem's dedicated randomness streams.
const faultSalt = 0x46414c54 // "FALT"

// setupAdversary installs the configured attacks. Called after setupChurn
// so partial seeding composes with the builder's believed view and
// poisoners can ride the announcement mesh.
func (c *Cluster) setupAdversary(cc ClusterConfig) {
	adv := cc.Adversary

	// Builder attacks.
	if pred := adv.Builder.WithholdPredicate(cc.Core.Blob.N(), cc.Seed); pred != nil {
		c.builder.SetWithholding(pred)
	}
	if f := adv.Builder.CrashAfterFraction; f > 0 && f < 1 {
		c.builder.SetCrash(f)
	}
	c.seedDelay = adv.Builder.SeedDelay
	if targets := adversary.SeedTargets(cc.Seed, cc.N, adv.Builder.SeedFraction); targets != nil {
		// Partial seeding restricts the builder's view to the target set,
		// composed with whatever view it already has (churn's believed
		// membership): a node is seeded only if both agree.
		inner := c.builder.view
		c.builder.SetView(membership.ViewFunc(func(p int) bool {
			return targets[p] && (inner == nil || inner.Contains(p))
		}))
	}

	// Scheduled network faults. The link filter is installed once here —
	// it reads the partitioned set, empty outside fault windows — so the
	// per-message cost exists only in runs that configure a partition.
	if len(adv.Faults) > 0 {
		c.advRng = rand.New(rand.NewSource(cc.Seed ^ faultSalt))
		for _, f := range adv.Faults {
			if f.Kind == adversary.FaultPartition {
				// Indexed by simulator address; endpoints past cc.N (the
				// builder, gateway attachments) are never partitioned.
				c.partitioned = make([]bool, cc.N)
				inPart := func(i int) bool {
					return i >= 0 && i < len(c.partitioned) && c.partitioned[i]
				}
				c.net.SetLinkFilter(func(from, to int) bool {
					if c.partCount == 0 {
						return false
					}
					return inPart(from) != inPart(to)
				})
				break
			}
		}
	}

	// View poisoners require the churn announcement mesh: without it
	// there is no membership gossip to poison, so the behavior degrades
	// to honest (documented in adversary.Config).
	if c.annRouters != nil {
		if reg := cc.Core.Metrics; reg != nil {
			c.mPoison = reg.Counter("adversary_poison_announcements_total")
		}
		c.departed = make(map[int]bool)
		for i, b := range c.behaviors {
			if b == adversary.Poisoner {
				c.startPoisoner(i)
			}
		}
	}
}

// armFaults schedules this slot's fault windows on the simulation clock.
// Called at the top of every RunSlot; a run without faults schedules
// nothing.
func (c *Cluster) armFaults() {
	adv := c.cfg.Adversary
	if adv == nil || len(adv.Faults) == 0 {
		return
	}
	for _, f := range adv.Faults {
		f := f
		switch f.Kind {
		case adversary.FaultPartition:
			c.net.After(f.At, func() {
				count := int(float64(c.cfg.N) * f.Fraction)
				isolated := append([]int(nil), c.advRng.Perm(c.cfg.N)[:count]...)
				for _, i := range isolated {
					if !c.partitioned[i] {
						c.partitioned[i] = true
						c.partCount++
					}
				}
				c.emitFault(obsv.KindFaultStart, f.Kind, count)
				c.net.After(f.Duration, func() {
					for _, i := range isolated {
						if c.partitioned[i] {
							c.partitioned[i] = false
							c.partCount--
						}
					}
					c.emitFault(obsv.KindFaultStop, f.Kind, count)
				})
			})
		case adversary.FaultLossBurst:
			c.net.After(f.At, func() {
				base := c.net.LossRate()
				c.net.SetLossRate(f.LossRate)
				c.emitFault(obsv.KindFaultStart, f.Kind, 0)
				c.net.After(f.Duration, func() {
					c.net.SetLossRate(base)
					c.emitFault(obsv.KindFaultStop, f.Kind, 0)
				})
			})
		}
	}
}

// emitFault traces a fault transition (network-global: Node -1).
func (c *Cluster) emitFault(kind obsv.Kind, fk adversary.FaultKind, count int) {
	if c.rec == nil {
		return
	}
	c.rec.Record(obsv.Event{At: c.net.Now(), Slot: c.curSlot, Kind: kind,
		Node: -1, Peer: -1, Count: int32(count), Aux: int64(fk)})
}

// startPoisoner arms a node's forged-announcement loop: every poison
// period, an online poisoner re-advertises one departed peer as a fresh
// join, keeping dead entries alive in honest views. The loop reschedules
// itself forever (like the view refreshers); target choice comes from
// the agent's deterministic randomness.
func (c *Cluster) startPoisoner(node int) {
	agent := c.agents[node]
	period := c.cfg.Adversary.PoisonPeriod()
	var tick func()
	tick = func() {
		if c.dir != nil && c.dir.Online(node) && len(c.departed) > 0 {
			targets := make([]int, 0, len(c.departed))
			for t := range c.departed {
				targets = append(targets, t)
			}
			sort.Ints(targets)
			c.publishForgedAnnouncement(node, targets[agent.Pick(len(targets))])
		}
		c.net.After(period, tick)
	}
	c.net.After(period, tick)
}

// publishForgedAnnouncement floods a join announcement for a peer the
// poisoner knows to be gone. Honest receivers cannot distinguish it from
// a genuine (re)join — announcements carry no proof of the subject's
// cooperation — so the departed peer re-enters their views and wastes
// fetch attempts until liveness backoff demotes it again.
func (c *Cluster) publishForgedAnnouncement(poisoner, target int) {
	c.annSeq++
	m := annMsg{
		id:  gossip.MsgID(c.annSeq),
		ann: membership.Announcement{Seq: c.annSeq, Node: target, Join: true},
	}
	c.agents[poisoner].ForgedAnnouncements++
	if c.mPoison != nil {
		c.mPoison.Inc()
	}
	for _, peer := range c.annRouters[poisoner].Publish(c.annOverlay, m.id) {
		c.net.Send(poisoner, peer, membership.AnnouncementWireSize, m)
	}
}

package core

import (
	"testing"

	"pandas/internal/assign"
	"pandas/internal/blob"
	"pandas/internal/ids"
)

func testTable(t *testing.T, n int) *Table {
	t.Helper()
	p := assign.Params{Rows: 2, Cols: 2, N: 32}
	nodeIDs := make([]ids.NodeID, n)
	for i := range nodeIDs {
		nodeIDs[i] = ids.NewTestIdentity(int64(i)).ID
	}
	var seed assign.Seed
	seed[0] = 9
	tab, err := NewTable(p, seed, nodeIDs)
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestTableHoldersConsistentWithAssignments(t *testing.T) {
	tab := testTable(t, 80)
	for i := 0; i < tab.NumNodes(); i++ {
		a := tab.Assignment(i)
		for _, l := range a.Lines() {
			if tab.HolderRank(l, i) < 0 {
				t.Fatalf("node %d not in holders of its line %v", i, l)
			}
		}
	}
	// Every holder entry corresponds to an actual assignment.
	for kind := 0; kind < 2; kind++ {
		for li := 0; li < 32; li++ {
			l := blob.Line{Kind: blob.Row, Index: uint16(li)}
			if kind == 1 {
				l.Kind = blob.Col
			}
			for _, h := range tab.Holders(l) {
				if !tab.Assignment(h).HasLine(l) {
					t.Fatalf("holder %d of %v lacks the assignment", h, l)
				}
			}
		}
	}
}

func TestTableHolderRankRoundTrip(t *testing.T) {
	tab := testTable(t, 50)
	l := blob.Line{Kind: blob.Row, Index: 3}
	for rank, h := range tab.Holders(l) {
		if got := tab.HolderAt(l, rank); got != h {
			t.Fatalf("HolderAt(%d) = %d, want %d", rank, got, h)
		}
		if got := tab.HolderRank(l, h); got != rank {
			t.Fatalf("HolderRank(%d) = %d, want %d", h, got, rank)
		}
	}
	if tab.HolderAt(l, -1) != -1 || tab.HolderAt(l, 10000) != -1 {
		t.Fatal("out-of-range rank should return -1")
	}
}

func TestTableCanonicalOrderIsByID(t *testing.T) {
	tab := testTable(t, 60)
	l := blob.Line{Kind: blob.Col, Index: 7}
	hs := tab.Holders(l)
	for i := 1; i < len(hs); i++ {
		a, b := tab.ID(hs[i-1]), tab.ID(hs[i])
		if !a.Less(b) && a != b {
			t.Fatal("holders not sorted by node ID")
		}
	}
}

func TestTableRejectsBadParams(t *testing.T) {
	if _, err := NewTable(assign.Params{}, assign.Seed{}, nil); err == nil {
		t.Fatal("invalid params accepted")
	}
}

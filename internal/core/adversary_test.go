package core

import (
	"testing"
	"time"

	"pandas/internal/adversary"
	"pandas/internal/blob"
	"pandas/internal/membership"
	"pandas/internal/obsv"
)

// TestAdversaryInactiveConfigMatchesHonest guards the wiring's inertness:
// a present-but-empty adversary config must leave the deployment
// bit-identical to one without the subsystem — the agents exist but wrap
// nothing, and no honest randomness stream is perturbed.
func TestAdversaryInactiveConfigMatchesHonest(t *testing.T) {
	run := func(adv *adversary.Config) *SlotResult {
		c := smallCluster(t, 100, func(cc *ClusterConfig) {
			cc.DeadFraction = 0.1
			cc.Adversary = adv
		})
		res, err := c.RunSlot(1)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	honest := run(nil)
	inactive := run(&adversary.Config{})
	for i := range honest.Outcomes {
		a, b := honest.Outcomes[i], inactive.Outcomes[i]
		if a.Sampling != b.Sampling || a.Consolidation != b.Consolidation ||
			a.Seed != b.Seed || a.FetchMsgs != b.FetchMsgs {
			t.Fatalf("node %d diverged: %+v vs %+v", i, a, b)
		}
	}
}

// TestAdversaryRunsDeterministic pins the reproducibility contract for
// adversarial runs: the same seed with byzantine nodes, a withholding
// builder, and a scheduled fault produces bit-identical outcomes.
func TestAdversaryRunsDeterministic(t *testing.T) {
	run := func() []NodeOutcome {
		c := smallCluster(t, 100, func(cc *ClusterConfig) {
			cc.Adversary = &adversary.Config{
				SilentFraction:  0.1,
				GarbageFraction: 0.1,
				Builder:         adversary.BuilderAttack{Withholding: adversary.WithholdRandom, WithholdFraction: 0.2},
				Faults: []adversary.Fault{{
					Kind: adversary.FaultLossBurst, At: 300 * time.Millisecond,
					Duration: 400 * time.Millisecond, LossRate: 0.5,
				}},
			}
		})
		var out []NodeOutcome
		for s := 1; s <= 2; s++ {
			res, err := c.RunSlot(uint64(s))
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, res.Outcomes...)
		}
		return out
	}
	first, second := run(), run()
	for i := range first {
		a, b := first[i], second[i]
		if a.Sampling != b.Sampling || a.Consolidation != b.Consolidation ||
			a.Seed != b.Seed || a.FetchMsgs != b.FetchMsgs || a.FetchBytes != b.FetchBytes {
			t.Fatalf("outcome %d diverged across identical runs: %+v vs %+v", i, a, b)
		}
	}
}

// byzantineSlot runs one slot with a fraction of nodes following the
// behavior and returns the cluster plus outcomes.
func byzantineSlot(t *testing.T, frac float64, set func(*adversary.Config, float64)) (*Cluster, *SlotResult) {
	t.Helper()
	adv := &adversary.Config{}
	set(adv, frac)
	c := smallCluster(t, 100, func(cc *ClusterConfig) {
		cc.Adversary = adv
	})
	res, err := c.RunSlot(1)
	if err != nil {
		t.Fatal(err)
	}
	return c, res
}

// TestSilentByzantineHonestDeadline is the acceptance bound: with 20% of
// nodes silently dropping every query, every honest node must still
// complete sampling within the 4 s deadline (in-flight redundancy plus
// liveness demotion route around non-responders).
func TestSilentByzantineHonestDeadline(t *testing.T) {
	c, res := byzantineSlot(t, 0.2, func(a *adversary.Config, f float64) { a.SilentFraction = f })
	deadline := c.cfg.Core.Deadline
	silent := 0
	for i, o := range res.Outcomes {
		if c.Behaviors()[i] != adversary.Honest {
			silent++
			continue
		}
		if o.Sampling < 0 || o.Sampling > deadline {
			t.Errorf("honest node %d sampled at %v with 20%% silent peers (deadline %v)", i, o.Sampling, deadline)
		}
	}
	if silent != 20 {
		t.Fatalf("sortition produced %d silent nodes, want 20", silent)
	}
}

// TestGarbageRejectedAndRetried checks the reject-and-requeue path end to
// end: corrupted cells fail verification at honest receivers, are counted
// and traced, never count as ingested — and the victims still finish
// sampling by re-requesting from honest peers.
func TestGarbageRejectedAndRetried(t *testing.T) {
	ring := obsv.MustRing(obsv.DefaultRingSize)
	adv := &adversary.Config{GarbageFraction: 0.2}
	c := smallCluster(t, 100, func(cc *ClusterConfig) {
		cc.Adversary = adv
		cc.Core.Recorder = ring
	})
	res, err := c.RunSlot(1)
	if err != nil {
		t.Fatal(err)
	}
	// Byzantine nodes fetch for themselves too (free-riders), so they
	// also receive — and must also reject — garbage from their peers:
	// the trace cross-check sums over every node, not just honest ones.
	rejects, honestRejects, corrupted := 0, 0, 0
	for i, n := range c.Nodes() {
		rejects += n.Metrics().CorruptRejects
		if c.Behaviors()[i] == adversary.Honest {
			honestRejects += n.Metrics().CorruptRejects
		}
		corrupted += c.Agents()[i].CorruptedCells
	}
	if corrupted == 0 {
		t.Fatal("garbage agents corrupted no cells")
	}
	if honestRejects == 0 {
		t.Fatal("honest nodes ingested corrupted cells without rejecting")
	}
	traced := 0
	for _, ev := range ring.Events() {
		if ev.Kind == obsv.KindCorruptReject {
			traced += int(ev.Count)
		}
	}
	if traced != rejects {
		t.Fatalf("traced %d corrupt rejects, views count %d", traced, rejects)
	}
	deadline := c.cfg.Core.Deadline
	for i, o := range res.Outcomes {
		if c.Behaviors()[i] != adversary.Honest {
			continue
		}
		if o.Sampling < 0 || o.Sampling > deadline {
			t.Errorf("honest node %d sampled at %v with 20%% garbage peers", i, o.Sampling)
		}
	}
}

// TestLaggardByzantineHonestDeadline: 20% of nodes respond 0.5-2 s late —
// past every round timeout. Honest nodes must treat them as absent and
// meet the deadline anyway.
func TestLaggardByzantineHonestDeadline(t *testing.T) {
	c, res := byzantineSlot(t, 0.2, func(a *adversary.Config, f float64) { a.LaggardFraction = f })
	deadline := c.cfg.Core.Deadline
	delayed := 0
	for _, a := range c.Agents() {
		delayed += a.DelayedResponses
	}
	if delayed == 0 {
		t.Fatal("laggard agents delayed no responses")
	}
	for i, o := range res.Outcomes {
		if c.Behaviors()[i] != adversary.Honest {
			continue
		}
		if o.Sampling < 0 || o.Sampling > deadline {
			t.Errorf("honest node %d sampled at %v with 20%% laggard peers", i, o.Sampling)
		}
	}
}

// TestPoisonerForgesAnnouncements wires poisoners into the churn
// announcement mesh: after real departures, poisoners must re-advertise
// departed peers as joins (counted on the agent and in the registry).
func TestPoisonerForgesAnnouncements(t *testing.T) {
	reg := obsv.NewRegistry()
	c := smallCluster(t, 100, func(cc *ClusterConfig) {
		cc.Core.Metrics = reg
		cc.Adversary = &adversary.Config{PoisonFraction: 0.1, PoisonInterval: 500 * time.Millisecond}
		cc.Churn = &membership.Config{
			Flash: []membership.FlashEvent{{At: time.Second, Leave: 10}},
		}
	})
	for s := 1; s <= 2; s++ {
		if _, err := c.RunSlot(uint64(s)); err != nil {
			t.Fatal(err)
		}
	}
	forged := 0
	for _, a := range c.Agents() {
		forged += a.ForgedAnnouncements
	}
	if forged == 0 {
		t.Fatal("poisoners forged no announcements despite departures")
	}
	if got := reg.Counter("adversary_poison_announcements_total").Value(); got != int64(forged) {
		t.Fatalf("registry counts %d forged announcements, agents count %d", got, forged)
	}
}

// TestWithholdingEmitsEvent: a withholding builder must trace the attack
// (withheld-cell event carrying the skipped-position count).
func TestWithholdingEmitsEvent(t *testing.T) {
	ring := obsv.MustRing(obsv.DefaultRingSize)
	c := smallCluster(t, 50, func(cc *ClusterConfig) {
		cc.Core.Recorder = ring
		cc.Adversary = &adversary.Config{
			Builder: adversary.BuilderAttack{Withholding: adversary.WithholdMaximal},
		}
	})
	if _, err := c.RunSlot(1); err != nil {
		t.Fatal(err)
	}
	n := c.cfg.Core.Blob.N()
	found := false
	for _, ev := range ring.Events() {
		if ev.Kind == obsv.KindWithheldCell {
			found = true
			if int(ev.Count) < blob.WithheldCells(n) {
				t.Fatalf("withheld-cell event counts %d, want >= %d", ev.Count, blob.WithheldCells(n))
			}
		}
	}
	if !found {
		t.Fatal("no withheld-cell event traced")
	}
}

// TestMaximalWithholdingBlocksSampling: under the maximal pattern, the
// vast majority of nodes must fail sampling (their targets include a
// withheld cell nobody can serve) — the detection property itself.
func TestMaximalWithholdingBlocksSampling(t *testing.T) {
	c := smallCluster(t, 100, func(cc *ClusterConfig) {
		cc.Adversary = &adversary.Config{
			Builder: adversary.BuilderAttack{Withholding: adversary.WithholdMaximal},
		}
	})
	res, err := c.RunSlot(1)
	if err != nil {
		t.Fatal(err)
	}
	sampled := 0
	for _, o := range res.Outcomes {
		if o.Sampling >= 0 {
			sampled++
		}
	}
	// With 8 samples at the 32x32 test geometry the per-node miss
	// probability is ~7%; 30/100 leaves generous slack on both sides.
	if sampled > 30 {
		t.Fatalf("%d/100 nodes completed sampling under maximal withholding", sampled)
	}
	if sampled == 0 {
		t.Fatal("no node missed the withholding: sample-count geometry changed?")
	}
}

// TestLateSeedingDelaysPhases: a 500 ms seed delay must shift every
// node's first seed arrival past the delay.
func TestLateSeedingDelaysPhases(t *testing.T) {
	delay := 500 * time.Millisecond
	c := smallCluster(t, 50, func(cc *ClusterConfig) {
		cc.Adversary = &adversary.Config{Builder: adversary.BuilderAttack{SeedDelay: delay}}
	})
	res, err := c.RunSlot(1)
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range res.Outcomes {
		if o.Seed >= 0 && o.Seed < delay {
			t.Fatalf("node %d seeded at %v despite %v seed delay", i, o.Seed, delay)
		}
	}
}

// TestPartialSeedingRestrictsTargets: with SeedFraction 0.5, only the
// sortitioned half of the nodes may receive seed datagrams; the rest
// fetch everything and must still sample successfully.
func TestPartialSeedingRestrictsTargets(t *testing.T) {
	c := smallCluster(t, 100, func(cc *ClusterConfig) {
		cc.Adversary = &adversary.Config{Builder: adversary.BuilderAttack{SeedFraction: 0.5}}
	})
	res, err := c.RunSlot(1)
	if err != nil {
		t.Fatal(err)
	}
	targets := adversary.SeedTargets(42, 100, 0.5)
	seeded, sampled := 0, 0
	for i, o := range res.Outcomes {
		if o.Seed >= 0 {
			seeded++
			if !targets[i] {
				t.Errorf("node %d outside the target set received seed data", i)
			}
		}
		if o.Sampling >= 0 {
			sampled++
		}
	}
	if seeded == 0 || seeded > 50 {
		t.Fatalf("%d nodes seeded, want (0, 50]", seeded)
	}
	if sampled < 95 {
		t.Fatalf("only %d/100 nodes sampled under partial seeding", sampled)
	}
}

// TestBuilderCrashTruncatesSeeding: a builder crashing halfway through
// its transmission schedule must send half its datagrams and strictly
// fewer bytes than an honest one. (The crash budget counts datagrams;
// the small boost-map chunks go out in the first round-robin passes, so
// the byte ratio lands well below the datagram ratio.)
func TestBuilderCrashTruncatesSeeding(t *testing.T) {
	run := func(adv *adversary.Config) *SlotResult {
		c := smallCluster(t, 50, func(cc *ClusterConfig) {
			cc.Adversary = adv
		})
		res, err := c.RunSlot(1)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	honest := run(nil)
	crashed := run(&adversary.Config{Builder: adversary.BuilderAttack{CrashAfterFraction: 0.5}})
	if crashed.BuilderBytes >= honest.BuilderBytes {
		t.Fatalf("crashed builder sent %d bytes, honest %d", crashed.BuilderBytes, honest.BuilderBytes)
	}
	hm, cm := honest.Seeding.Messages, crashed.Seeding.Messages
	if cm < hm*4/10 || cm > hm*6/10 {
		t.Fatalf("crashed builder sent %d datagrams, want about half of %d", cm, hm)
	}
}

// TestPartitionFaultTracesAndHeals: a mid-slot partition must emit
// fault-start/stop events, actually cut traffic across the cut, and heal
// — nodes still sample by slot end once the window closes.
func TestPartitionFaultTracesAndHeals(t *testing.T) {
	ring := obsv.MustRing(obsv.DefaultRingSize)
	c := smallCluster(t, 100, func(cc *ClusterConfig) {
		cc.Core.Recorder = ring
		cc.Adversary = &adversary.Config{
			Faults: []adversary.Fault{{
				Kind: adversary.FaultPartition, At: 300 * time.Millisecond,
				Duration: 700 * time.Millisecond, Fraction: 0.3,
			}},
		}
	})
	res, err := c.RunSlot(1)
	if err != nil {
		t.Fatal(err)
	}
	starts, stops := 0, 0
	for _, ev := range ring.Events() {
		switch ev.Kind {
		case obsv.KindFaultStart:
			starts++
			if ev.Count != 30 {
				t.Errorf("fault-start isolates %d nodes, want 30", ev.Count)
			}
		case obsv.KindFaultStop:
			stops++
		}
	}
	if starts != 1 || stops != 1 {
		t.Fatalf("fault events: %d starts, %d stops, want 1/1", starts, stops)
	}
	sampled := 0
	for _, o := range res.Outcomes {
		if o.Sampling >= 0 {
			sampled++
		}
	}
	if sampled < 95 {
		t.Fatalf("only %d/100 nodes sampled after the partition healed", sampled)
	}
}

// TestLossBurstRestoresBaseline: the loss-burst fault must raise the
// simulator's drop rate for its window only, restoring the configured
// baseline afterwards (checked across two slots to cover re-arming).
func TestLossBurstRestoresBaseline(t *testing.T) {
	c := smallCluster(t, 50, func(cc *ClusterConfig) {
		cc.Adversary = &adversary.Config{
			Faults: []adversary.Fault{{
				Kind: adversary.FaultLossBurst, At: 200 * time.Millisecond,
				Duration: 300 * time.Millisecond, LossRate: 0.8,
			}},
		}
	})
	base := c.Network().LossRate()
	for s := 1; s <= 2; s++ {
		if _, err := c.RunSlot(uint64(s)); err != nil {
			t.Fatal(err)
		}
		if got := c.Network().LossRate(); got != base {
			t.Fatalf("slot %d left loss rate %v, baseline %v", s, got, base)
		}
	}
}

package core

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"

	"pandas/internal/blob"
	"pandas/internal/ids"
	"pandas/internal/kzg"
	"pandas/internal/membership"
	"pandas/internal/obsv"
	"pandas/internal/wire"
)

// SeedingReport summarizes a builder's output for one slot.
type SeedingReport struct {
	Policy      Policy
	Messages    int
	Cells       int   // cell copies sent
	Bytes       int64 // wire bytes including boost maps and headers
	NodesSeeded int
	Withheld    int // cell positions skipped by a withholding attack
}

// Builder prepares and seeds extended blob data (Section 6.1). In
// real-payload mode it holds the extended matrix, its commitment, and all
// cell proofs (Fig. 2); in metadata mode only the geometry.
type Builder struct {
	cfg   Config
	table *Table
	tr    Transport
	index int
	id    ids.NodeID
	rng   *rand.Rand

	extended   *blob.Extended
	commitment kzg.Commitment
	proofs     []kzg.Proof
	committer  *kzg.Committer // reused across slots; nil until first prepare

	// signSeed produces the proposer's signature binding this builder to
	// a slot; provided by whoever plays the proposer.
	signSeed func(slot uint64) [wire.SigSize]byte

	// withhold marks cells the builder refuses to release (a data
	// withholding attack). Nil means honest seeding.
	withhold func(blob.CellID) bool

	// crashAfter, when in (0, 1), makes the builder stop transmitting
	// after that fraction of its seed datagrams — a crash mid-seeding.
	crashAfter float64

	// view restricts the builder's knowledge of nodes; nil = complete.
	// Under churn this is the builder's BELIEVED membership: graceful
	// leaves are announced and drop out, crashes are not and keep
	// receiving (wasted) seed traffic.
	view membership.View

	// rec traces seed transmissions; nil disables tracing.
	rec obsv.Recorder
}

// NewBuilder creates a builder bound to a transport address.
func NewBuilder(cfg Config, index int, id ids.NodeID, table *Table, tr Transport, rngSeed int64) *Builder {
	return &Builder{
		cfg:   cfg,
		table: table,
		tr:    tr,
		index: index,
		id:    id,
		rng:   rand.New(rand.NewSource(rngSeed)),
		rec:   cfg.Recorder,
	}
}

// SetProposerSigner installs the proposer-provided signing function for
// seed messages.
func (b *Builder) SetProposerSigner(sign func(slot uint64) [wire.SigSize]byte) {
	b.signSeed = sign
}

// SetWithholding installs a data-withholding predicate: cells for which
// it returns true are never sent. Pass nil for honest behaviour.
func (b *Builder) SetWithholding(w func(blob.CellID) bool) { b.withhold = w }

// SetCrash makes the builder crash after transmitting the given fraction
// of its seed datagrams (0 or 1 disables). Because datagrams go out
// round-robin across nodes, every node receives a truncated batch rather
// than a few nodes receiving none — the realistic shape of a builder
// dying partway through its ~1 s transmission schedule.
func (b *Builder) SetCrash(fraction float64) { b.crashAfter = fraction }

// SetView restricts which nodes the builder knows about. Pass nil to
// restore the complete view.
func (b *Builder) SetView(v membership.View) { b.view = v }

// PrepareBlob loads real layer-2 data: extends it, commits, and computes
// all cell proofs. Only needed in real-payload mode. The extended-matrix
// backing, the committer's digest arenas, and the proof arena are all
// recycled across calls, so a builder preparing a blob per slot runs this
// with no steady-state allocation: the data is extended straight into the
// reused matrix, every payload byte is hashed exactly once (the cell
// digests feed commitment and proofs alike), and the proofs land in the
// retained arena.
func (b *Builder) PrepareBlob(data []byte) error {
	if err := b.extendAndCommit(data); err != nil {
		return err
	}
	b.committer.ProveAll(b.commitment, b.proofs, b.proveWorkers(), nil)
	return nil
}

// PrepareAndSeed is the streaming form of PrepareBlob + SeedSlot: row
// digesting overlaps the column-phase encode (via the extension's
// row-phase hook), proof generation runs concurrently with seed-plan
// construction, and each seed datagram is transmitted as soon as the
// proofs of the rows it carries are ready — the builder starts pushing
// cells into the network while the prover is still working through the
// matrix. Output is bit-identical to the monolithic path (same
// commitment, proofs, datagrams, and report); Config.SequentialPrepare
// selects the monolithic path for determinism-sensitive callers and
// differential tests. Transport callbacks fire from the calling
// goroutine only, as with SeedSlot.
func (b *Builder) PrepareAndSeed(slot uint64, data []byte) (SeedingReport, error) {
	if b.cfg.SequentialPrepare {
		if err := b.PrepareBlob(data); err != nil {
			return SeedingReport{}, err
		}
		return b.SeedSlot(slot), nil
	}
	if err := b.extendAndCommit(data); err != nil {
		return SeedingReport{}, err
	}
	n := b.cfg.Blob.N()
	tr := newRowTracker(n)
	var proving sync.WaitGroup
	proving.Add(1)
	go func() {
		defer proving.Done()
		b.committer.ProveAll(b.commitment, b.proofs, b.proveWorkers(), tr.rowDone)
	}()
	// The prover must be joined even if transmission ends early (crash
	// budgets): the builder's arenas are reused next slot.
	defer proving.Wait()
	plan, report := b.planSeed(slot)
	b.transmit(slot, plan, &report, tr)
	return report, nil
}

// extendAndCommit extends data into the builder's reused matrix and
// accumulates the commitment, leaving the committer's cell digests ready
// for proving and b.proofs sized. Unless SequentialPrepare is set, the
// top half of the matrix (rows 0..K-1: data and row parity, final after
// the row phase) is digested concurrently with the column-phase encode.
func (b *Builder) extendAndCommit(data []byte) error {
	p := b.cfg.Blob
	n := p.N()
	if b.committer == nil {
		b.committer = kzg.NewCommitter(n)
	} else {
		b.committer.Reset(n)
	}
	cm := b.committer
	opt := blob.ExtendOptions{Workers: b.cfg.ExtendWorkers, Reuse: b.extended}
	hashed := 0
	if !b.cfg.SequentialPrepare {
		opt.OnRowPhase = func(e *blob.Extended) {
			for r := 0; r < p.K; r++ {
				cm.HashRow(r, e.RowBytes(r), p.CellBytes)
			}
		}
		hashed = p.K
	}
	ext, err := blob.ExtendData(p, data, opt)
	if err != nil {
		return fmt.Errorf("core: builder extend: %w", err)
	}
	b.extended = ext
	for r := hashed; r < n; r++ {
		cm.HashRow(r, ext.RowBytes(r), p.CellBytes)
	}
	b.commitment = cm.Root()
	if cap(b.proofs) < n*n {
		b.proofs = make([]kzg.Proof, n*n)
	}
	b.proofs = b.proofs[:n*n]
	return nil
}

// proveWorkers resolves the prover pool size from the configuration.
func (b *Builder) proveWorkers() int {
	if b.cfg.SequentialPrepare {
		return 1
	}
	if b.cfg.ProveWorkers > 0 {
		return b.cfg.ProveWorkers
	}
	return runtime.GOMAXPROCS(0)
}

// rowTracker publishes prover progress to the transmission loop: rowDone
// marks rows complete (in any order), waitFor blocks until every row up
// to and including r is proved. The mutex also orders the prover's proof
// writes before the sender's reads.
type rowTracker struct {
	mu        sync.Mutex
	cond      *sync.Cond
	done      []bool
	watermark int // rows [0, watermark) are fully proved
}

func newRowTracker(n int) *rowTracker {
	t := &rowTracker{done: make([]bool, n)}
	t.cond = sync.NewCond(&t.mu)
	return t
}

func (t *rowTracker) rowDone(r int) {
	t.mu.Lock()
	t.done[r] = true
	for t.watermark < len(t.done) && t.done[t.watermark] {
		t.watermark++
	}
	t.mu.Unlock()
	t.cond.Broadcast()
}

func (t *rowTracker) waitFor(r int) {
	t.mu.Lock()
	for t.watermark <= r {
		t.cond.Wait()
	}
	t.mu.Unlock()
}

// Commitment returns the current blob commitment (zero in metadata mode
// unless PrepareBlob ran).
func (b *Builder) Commitment() kzg.Commitment { return b.commitment }

// CellPayload returns the wire cell for an id directly from the
// builder's prepared blob — the authoritative last-resort source the
// sampling gateway's upstream falls back to when no custody node holds
// the cell. It reports false in metadata mode (no prepared blob).
// The returned Data aliases the builder's extended matrix; callers
// must treat it as read-only (same contract as Store.Peek).
func (b *Builder) CellPayload(id blob.CellID) (wire.Cell, bool) {
	if b.extended == nil {
		return wire.Cell{}, false
	}
	return b.cellPayload(id), true
}

// cellPayload materializes a wire cell (with bytes and proof in real
// mode).
func (b *Builder) cellPayload(id blob.CellID) wire.Cell {
	c := wire.Cell{ID: id}
	if b.extended != nil {
		c.Data = b.extended.Cell(id)
		c.Proof = b.proofs[id.Index(b.cfg.Blob.N())]
	}
	return c
}

// SeedSlot executes the seeding phase: it assigns parcels of every line
// to holders per the configured policy, builds per-node seed messages
// with consolidation-boost maps, and transmits them.
func (b *Builder) SeedSlot(slot uint64) SeedingReport {
	plan, report := b.planSeed(slot)
	b.transmit(slot, plan, &report, nil)
	return report
}

// seedChunk is one planned seed datagram, stored in its compact planned
// form: cell IDs only (wire cells with payload and proof are
// materialized just before the send, which lets the pipelined path plan
// the whole schedule while proofs are still being generated) and a boost
// slice that ALIASES the line's shared entry list. Sharing is what keeps
// the plan linear in the schedule size: a line's CB entries are built
// once and referenced by every holder's datagram, never copied per
// recipient (the per-recipient copies were quadratic — tens of GB at
// 100k nodes).
type seedChunk struct {
	cellIDs []blob.CellID
	boost   []wire.BoostEntry
	index   uint16
	count   uint16
	maxRow  int // highest cell row carried; -1 for boost-only/empty chunks
}

type nodeSeedChunks struct {
	node   int
	chunks []seedChunk
}

// seedPlan is a complete per-node transmission schedule for one slot.
type seedPlan struct {
	nodes      []nodeSeedChunks
	maxChunks  int
	sendBudget int // datagrams before a simulated crash; -1 = unlimited
	sig        [wire.SigSize]byte
}

// planSeed runs the deciding half of SeedSlot: per-cell line choice,
// parcel assignment, boost maps, and datagram chunking, in a fixed rng
// order shared by the monolithic and pipelined paths (their schedules
// are bit-identical). It touches no cell payloads or proofs.
func (b *Builder) planSeed(slot uint64) (seedPlan, SeedingReport) {
	report := SeedingReport{Policy: b.cfg.Policy}
	n := b.cfg.Blob.N()
	half := b.cfg.Blob.K

	// Phase 1: decide, per cell, which of its two lines carries it.
	// Cells are seeded exactly once per copy set (140 MB for "single",
	// not 280), matching the paper's budget figures. The coin flip keeps
	// both row and column holders supplied.
	perLine := make(map[blob.Line][]int) // line -> positions carried by it
	hasHolders := make(map[blob.Line]bool, 2*n)
	lineHasHolders := func(l blob.Line) bool {
		v, ok := hasHolders[l]
		if !ok {
			v = len(b.knownHolders(l)) > 0
			hasHolders[l] = v
		}
		return v
	}
	addCell := func(id blob.CellID) {
		if b.withhold != nil && b.withhold(id) {
			report.Withheld++
			return
		}
		rowL := blob.Line{Kind: blob.Row, Index: id.Row}
		colL := blob.Line{Kind: blob.Col, Index: id.Col}
		// Carry the cell on one of its two lines, chosen by coin flip so
		// both row and column holders are supplied — but never on a line
		// with no known holders (possible at small scales or with
		// restricted views), which would silently lose the cell.
		rowOK, colOK := lineHasHolders(rowL), lineHasHolders(colL)
		var l blob.Line
		var pos int
		switch {
		case rowOK && (!colOK || b.rng.Intn(2) == 0):
			l, pos = rowL, int(id.Col)
		case colOK:
			l, pos = colL, int(id.Row)
		default:
			return // no holders at all: cell cannot be seeded
		}
		perLine[l] = append(perLine[l], pos)
	}
	switch b.cfg.Policy {
	case PolicyMinimal:
		// The minimal reconstructable set: the base data quadrant.
		for r := 0; r < half; r++ {
			for c := 0; c < half; c++ {
				addCell(blob.CellID{Row: uint16(r), Col: uint16(c)})
			}
		}
	default:
		for r := 0; r < n; r++ {
			for c := 0; c < n; c++ {
				addCell(blob.CellID{Row: uint16(r), Col: uint16(c)})
			}
		}
	}

	// Phase 2: split every line's positions into contiguous parcels among
	// a random permutation of its (known) holders, with r-fold
	// replication under the redundant policy.
	copies := 1
	if b.cfg.Policy == PolicyRedundant {
		copies = b.cfg.Redundancy
	}
	nodeCells := make(map[int][]blob.CellID) // recipient -> planned cells
	lineBoost := make(map[blob.Line][]wire.BoostEntry)
	linesInOrder := make([]blob.Line, 0, len(perLine))
	for line := range perLine {
		linesInOrder = append(linesInOrder, line)
	}
	sort.Slice(linesInOrder, func(i, j int) bool {
		a, c := linesInOrder[i], linesInOrder[j]
		if a.Kind != c.Kind {
			return a.Kind < c.Kind
		}
		return a.Index < c.Index
	})
	for _, line := range linesInOrder {
		positions := perLine[line]
		holders := b.knownHolders(line)
		if len(holders) == 0 {
			continue
		}
		// Positions arrive in scan order; parcels must group adjacent
		// cells.
		sortInts(positions)
		perm := b.rng.Perm(len(holders))
		numParcels := min(len(positions), len(holders))
		base := len(positions) / numParcels
		extra := len(positions) % numParcels
		start := 0
		for pi := 0; pi < numParcels; pi++ {
			cnt := base
			if pi < extra {
				cnt++
			}
			chunk := positions[start : start+cnt]
			start += cnt
			recipients := []int{holders[perm[pi]]}
			if copies > 1 {
				recipients = append(recipients, b.pickExtras(holders, recipients[0], copies-1)...)
			}
			for _, rcpt := range recipients {
				for _, pos := range chunk {
					// ID only: payload and proof are materialized at
					// transmission time (see transmit).
					nodeCells[rcpt] = append(nodeCells[rcpt], cellOnLine(line, pos))
				}
				if b.cfg.UseBoost {
					rank := b.table.HolderRank(line, rcpt)
					if rank >= 0 {
						lineBoost[line] = append(lineBoost[line], wire.BoostEntry{
							Line:      line,
							HolderRef: uint16(rank),
							Start:     uint16(chunk[0]),
							Count:     uint16(len(chunk)),
						})
					}
				}
			}
		}
	}

	// Phase 3: per-node boost maps — every holder of a line receives the
	// line's CB entries, even holders that got no cells. Each holder gets
	// a REFERENCE to the line's shared entry slice, never a copy: with H
	// holders per line the per-recipient copies the old code made cost
	// O(lines x entries x H) — about 39 GB at 100k nodes and default
	// geometry — while the shared slices cost one slice header per
	// (line, holder) pair.
	nodeBoost := make(map[int][][]wire.BoostEntry)
	if b.cfg.UseBoost {
		for _, line := range linesInOrder {
			entries := lineBoost[line]
			if len(entries) == 0 {
				continue
			}
			for _, h := range b.knownHolders(line) {
				nodeBoost[h] = append(nodeBoost[h], entries)
			}
		}
	}

	// Phase 4: transmit, in randomized node order, chunked to datagram
	// size.
	recipients := make([]int, 0, len(nodeCells)+len(nodeBoost))
	seen := make(map[int]bool)
	for node := range nodeCells {
		if !seen[node] {
			seen[node] = true
			recipients = append(recipients, node)
		}
	}
	for node := range nodeBoost {
		if !seen[node] {
			seen[node] = true
			recipients = append(recipients, node)
		}
	}
	sortInts(recipients)
	b.rng.Shuffle(len(recipients), func(i, j int) {
		recipients[i], recipients[j] = recipients[j], recipients[i]
	})
	plan := seedPlan{sendBudget: -1}
	if b.signSeed != nil {
		plan.sig = b.signSeed(slot)
	}
	// Build every node's chunk sequence. Boost-only chunks go FIRST: the
	// consolidation-boost map tells the node which cells are already on
	// their way to it, so its first fetch plan must see the complete map.
	// Boost chunks never span two lines — a datagram's Boost field is a
	// subslice of one line's shared entry list, so chunking stays
	// copy-free (at the cost of one datagram per held line instead of a
	// tight concatenated packing; line entry lists are far larger than
	// datagrams at scale, so the overhead is a few headers).
	for _, node := range recipients {
		cells := nodeCells[node]
		boostLines := nodeBoost[node]
		report.NodesSeeded++
		nChunks := (len(cells) + b.cfg.MaxCellsPerMsg - 1) / b.cfg.MaxCellsPerMsg
		for _, entries := range boostLines {
			nChunks += (len(entries) + maxBoostPerMsg - 1) / maxBoostPerMsg
		}
		if nChunks == 0 {
			nChunks = 1
		}
		nc := nodeSeedChunks{node: node, chunks: make([]seedChunk, 0, nChunks)}
		emit := func(cellIDs []blob.CellID, bChunk []wire.BoostEntry, maxRow int) {
			nc.chunks = append(nc.chunks, seedChunk{
				cellIDs: cellIDs,
				boost:   bChunk,
				index:   uint16(len(nc.chunks)),
				count:   uint16(nChunks),
				maxRow:  maxRow,
			})
		}
		for _, entries := range boostLines {
			for len(entries) > 0 {
				bChunk := entries
				if len(bChunk) > maxBoostPerMsg {
					bChunk = entries[:maxBoostPerMsg]
				}
				entries = entries[len(bChunk):]
				emit(nil, bChunk, -1)
			}
		}
		for len(cells) > 0 {
			chunk := cells
			if len(chunk) > b.cfg.MaxCellsPerMsg {
				chunk = cells[:b.cfg.MaxCellsPerMsg]
			}
			cells = cells[len(chunk):]
			maxRow := -1
			for _, id := range chunk {
				if int(id.Row) > maxRow {
					maxRow = int(id.Row)
				}
			}
			emit(chunk, nil, maxRow)
		}
		if len(nc.chunks) == 0 {
			// A known node with nothing to carry still gets one empty
			// announcement datagram (commitment + signature).
			emit(nil, nil, -1)
		}
		if nChunks > plan.maxChunks {
			plan.maxChunks = nChunks
		}
		plan.nodes = append(plan.nodes, nc)
	}
	// Withholding is decided by now; trace it so timelines can correlate
	// sampling failures with the attack that caused them.
	if report.Withheld > 0 && b.rec != nil {
		b.rec.Record(obsv.Event{At: b.tr.Now(), Slot: slot,
			Kind: obsv.KindWithheldCell, Node: int32(b.index), Peer: -1,
			Count: int32(report.Withheld), Aux: int64(n * n)})
	}
	// A crashing builder stops after a fraction of its datagram budget.
	if b.crashAfter > 0 && b.crashAfter < 1 {
		total := 0
		for _, nc := range plan.nodes {
			total += len(nc.chunks)
		}
		plan.sendBudget = int(b.crashAfter * float64(total))
	}
	return plan, report
}

// transmit sends a planned slot's datagrams round-robin across nodes
// (chunk 0 of every node, then chunk 1, ...). This interleaving mirrors
// a builder iterating over rows and columns: a node's first cells arrive
// early in the transmission schedule while its batch completes near the
// end, so all nodes start consolidation against peers that already hold
// their seed data. Cell payloads and proofs are materialized here, just
// before each send; when rows is non-nil (the pipelined path), each
// datagram additionally waits until the proofs of every row it carries
// are ready.
func (b *Builder) transmit(slot uint64, plan seedPlan, report *SeedingReport, rows *rowTracker) {
	sent := 0
	for pass := 0; pass < plan.maxChunks; pass++ {
		for _, nc := range plan.nodes {
			if pass >= len(nc.chunks) {
				continue
			}
			if plan.sendBudget >= 0 && sent >= plan.sendBudget {
				return
			}
			sent++
			chunk := &nc.chunks[pass]
			if rows != nil && chunk.maxRow >= 0 {
				rows.waitFor(chunk.maxRow)
			}
			m := &wire.Seed{
				Slot:        slot,
				Builder:     b.id,
				ProposerSig: plan.sig,
				Commitment:  b.commitment,
				ChunkIndex:  chunk.index,
				ChunkCount:  chunk.count,
				Boost:       chunk.boost,
			}
			if len(chunk.cellIDs) > 0 {
				cs := make([]wire.Cell, len(chunk.cellIDs))
				for i, id := range chunk.cellIDs {
					cs[i] = b.cellPayload(id)
				}
				m.Cells = cs
			}
			size := m.WireSize(b.cfg.Blob.CellBytes)
			report.Messages++
			report.Cells += len(m.Cells)
			report.Bytes += int64(size)
			if b.rec != nil {
				b.rec.Record(obsv.Event{At: b.tr.Now(), Slot: slot,
					Kind: obsv.KindSeedSent, Node: int32(b.index),
					Peer: int32(nc.node), Count: int32(len(m.Cells)),
					Bytes: int64(size), Aux: int64(len(m.Boost))})
			}
			b.tr.SendReliable(nc.node, size, m)
		}
	}
}

// maxBoostPerMsg keeps seed datagrams under the UDP limit; boost-only
// chunks carry no cells, so up to 4096 entries (37 KB) fit comfortably.
const maxBoostPerMsg = 4096

// knownHolders filters a line's holders by the builder's view.
func (b *Builder) knownHolders(l blob.Line) []int {
	hs := b.table.Holders(l)
	if b.view == nil {
		return hs
	}
	out := make([]int, 0, len(hs))
	for _, h := range hs {
		if b.view.Contains(h) {
			out = append(out, h)
		}
	}
	return out
}

// pickExtras selects count distinct holders different from primary.
func (b *Builder) pickExtras(holders []int, primary, count int) []int {
	if count <= 0 || len(holders) <= 1 {
		return nil
	}
	if count > len(holders)-1 {
		count = len(holders) - 1
	}
	out := make([]int, 0, count)
	seen := map[int]bool{primary: true}
	for len(out) < count {
		h := holders[b.rng.Intn(len(holders))]
		if seen[h] {
			continue
		}
		seen[h] = true
		out = append(out, h)
	}
	return out
}

func sortInts(s []int) { sort.Ints(s) }

package core

import (
	"testing"
	"time"

	"pandas/internal/blob"
	"pandas/internal/consensus"
	"pandas/internal/fetch"
	"pandas/internal/ids"
	"pandas/internal/simnet"
)

// smallCluster builds a fast deployment for tests: scaled-down blob,
// moderate node count, paper-like loss and latency.
func smallCluster(t testing.TB, n int, mutate func(*ClusterConfig)) *Cluster {
	t.Helper()
	cc := ClusterConfig{
		Core:     TestConfig(),
		N:        n,
		Seed:     42,
		LossRate: simnet.DefaultLossRate,
	}
	if mutate != nil {
		mutate(&cc)
	}
	c, err := NewCluster(cc)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestClusterConfigValidation(t *testing.T) {
	if _, err := NewCluster(ClusterConfig{Core: TestConfig(), N: 0}); err == nil {
		t.Fatal("zero nodes accepted")
	}
	bad := TestConfig()
	bad.Samples = 0
	if _, err := NewCluster(ClusterConfig{Core: bad, N: 5}); err == nil {
		t.Fatal("invalid core config accepted")
	}
}

func TestSlotAllNodesSampleWithinDeadline(t *testing.T) {
	c := smallCluster(t, 120, nil)
	res, err := c.RunSlot(1)
	if err != nil {
		t.Fatal(err)
	}
	deadline := c.cfg.Core.Deadline
	seedless := 0
	for i, o := range res.Outcomes {
		if o.Seed < 0 {
			// At this scale a node's whole seed batch fits in one UDP
			// datagram, so 3% loss occasionally leaves a node seedless;
			// it must still sample via the timer path.
			seedless++
		}
		if o.Sampling < 0 {
			t.Errorf("node %d never completed sampling", i)
		} else if o.Sampling > deadline {
			t.Errorf("node %d sampled at %v > %v", i, o.Sampling, deadline)
		}
		if o.Consolidation < 0 {
			t.Errorf("node %d never consolidated", i)
		}
	}
	if rate := res.DeadlineRate(deadline); rate < 1.0 {
		t.Fatalf("deadline rate %v < 1.0", rate)
	}
	if seedless > len(res.Outcomes)/10 {
		t.Fatalf("%d nodes never received seeds", seedless)
	}
	if res.Seeding.Cells == 0 || res.Seeding.Messages == 0 {
		t.Fatal("builder sent nothing")
	}
}

func TestSlotPhaseOrdering(t *testing.T) {
	c := smallCluster(t, 80, nil)
	res, err := c.RunSlot(1)
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range res.Outcomes {
		if o.Consolidation < 0 || o.Sampling < 0 {
			t.Fatalf("node %d incomplete: %+v", i, o)
		}
		// Consolidation cannot finish before the first seed message (when
		// seeds arrived at all).
		if o.Seed >= 0 && o.ConsFromSeed < 0 {
			t.Errorf("node %d: consolidation before seeding (%v)", i, o.ConsFromSeed)
		}
	}
}

func TestSlotNodesVerifyStoreContents(t *testing.T) {
	c := smallCluster(t, 60, nil)
	if _, err := c.RunSlot(1); err != nil {
		t.Fatal(err)
	}
	// After a successful slot every node's custody lines are complete and
	// all samples are present.
	for i, n := range c.Nodes() {
		a := c.Table().Assignment(i)
		for _, l := range a.Lines() {
			if !n.Store().LineComplete(l) {
				t.Fatalf("node %d line %v incomplete", i, l)
			}
		}
		for _, smp := range n.Samples() {
			if !n.Store().Has(smp) {
				t.Fatalf("node %d sample %v missing", i, smp)
			}
		}
	}
}

func TestSlotSeedingPolicies(t *testing.T) {
	// Builder cost ordering: minimal < single < redundant. The minimal
	// policy needs enough holders per line to survive response loss (it
	// has zero erasure slack — the paper calls it fragile and evaluates
	// at 1,000 nodes), so this test runs at a larger scale and holds it
	// to a softer bar.
	thresholds := map[Policy]float64{
		PolicyMinimal:   0.80,
		PolicySingle:    0.95,
		PolicyRedundant: 0.95,
	}
	var bytesByPolicy []int64
	for _, policy := range []Policy{PolicyMinimal, PolicySingle, PolicyRedundant} {
		c := smallCluster(t, 300, func(cc *ClusterConfig) {
			cc.Core.Policy = policy
		})
		res, err := c.RunSlot(1)
		if err != nil {
			t.Fatal(err)
		}
		if rate := res.DeadlineRate(c.cfg.Core.Deadline); rate < thresholds[policy] {
			t.Errorf("policy %v: deadline rate %v", policy, rate)
		}
		bytesByPolicy = append(bytesByPolicy, res.Seeding.Bytes)
	}
	if !(bytesByPolicy[0] < bytesByPolicy[1] && bytesByPolicy[1] < bytesByPolicy[2]) {
		t.Fatalf("policy cost ordering violated: %v", bytesByPolicy)
	}
}

func TestSlotRedundantPolicyVolume(t *testing.T) {
	// Redundant seeding sends ~r times the single policy's cell count.
	cSingle := smallCluster(t, 60, func(cc *ClusterConfig) { cc.Core.Policy = PolicySingle })
	resSingle, err := cSingle.RunSlot(1)
	if err != nil {
		t.Fatal(err)
	}
	cRed := smallCluster(t, 60, func(cc *ClusterConfig) { cc.Core.Policy = PolicyRedundant })
	resRed, err := cRed.RunSlot(1)
	if err != nil {
		t.Fatal(err)
	}
	r := float64(cRed.cfg.Core.Redundancy)
	ratio := float64(resRed.Seeding.Cells) / float64(resSingle.Seeding.Cells)
	// Lines with fewer than r holders cap their replication, so at this
	// small scale the ratio sits below r but well above 1.
	if ratio < 2 || ratio > r*1.05 {
		t.Fatalf("redundant/single cell ratio %.2f, want in (2, %v]", ratio, r)
	}
	// Single policy sends each extended cell exactly once.
	total := cSingle.cfg.Core.Blob.ExtendedCells()
	if resSingle.Seeding.Cells != total {
		t.Fatalf("single policy sent %d cells, want %d", resSingle.Seeding.Cells, total)
	}
}

func TestSlotWithDeadNodes(t *testing.T) {
	c := smallCluster(t, 150, func(cc *ClusterConfig) {
		cc.DeadFraction = 0.2
	})
	res, err := c.RunSlot(1)
	if err != nil {
		t.Fatal(err)
	}
	dead := 0
	for _, o := range res.Outcomes {
		if o.Dead {
			dead++
		}
	}
	if dead != 30 {
		t.Fatalf("dead = %d, want 30", dead)
	}
	// The paper: 20% dead nodes still let the great majority of live
	// nodes finish on time.
	if rate := res.DeadlineRate(c.cfg.Core.Deadline); rate < 0.9 {
		t.Fatalf("deadline rate with 20%% dead = %v", rate)
	}
}

func TestSlotWithOutOfViewNodes(t *testing.T) {
	c := smallCluster(t, 150, func(cc *ClusterConfig) {
		cc.OutOfViewFraction = 0.2
	})
	res, err := c.RunSlot(1)
	if err != nil {
		t.Fatal(err)
	}
	if rate := res.DeadlineRate(c.cfg.Core.Deadline); rate < 0.9 {
		t.Fatalf("deadline rate with 20%% out-of-view = %v", rate)
	}
}

func TestSlotSevereFaultsDegrade(t *testing.T) {
	// 80% dead nodes must hurt: far fewer live nodes meet the deadline
	// than in the fault-free case (paper: 27% at 80% dead).
	healthy := smallCluster(t, 100, nil)
	resH, err := healthy.RunSlot(1)
	if err != nil {
		t.Fatal(err)
	}
	faulty := smallCluster(t, 100, func(cc *ClusterConfig) { cc.DeadFraction = 0.8 })
	resF, err := faulty.RunSlot(1)
	if err != nil {
		t.Fatal(err)
	}
	rh := resH.DeadlineRate(healthy.cfg.Core.Deadline)
	rf := resF.DeadlineRate(faulty.cfg.Core.Deadline)
	if rf >= rh {
		t.Fatalf("80%% dead nodes did not degrade: healthy=%v faulty=%v", rh, rf)
	}
}

func TestSlotWithholdingDetected(t *testing.T) {
	// The builder withholds the maximal non-reconstructable square
	// (Fig. 3-right). No live node may complete sampling: unavailability
	// is systematically detected.
	c := smallCluster(t, 100, nil)
	n := c.cfg.Core.Blob.N()
	h := n/2 + 1
	c.Builder().SetWithholding(func(id blob.CellID) bool {
		return int(id.Row) < h && int(id.Col) < h
	})
	res, err := c.RunSlot(1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Seeding.Withheld == 0 {
		t.Fatal("withholding did not suppress any cells")
	}
	sampled := 0
	for _, o := range res.Outcomes {
		if o.Sampling >= 0 {
			sampled++
		}
	}
	// With 8 samples over a 32x32 matrix and a 17x17 withheld square,
	// the per-node false-positive bound is (1-0.28)^8 ~ 7%; allow slack
	// but the vast majority must detect unavailability.
	if frac := float64(sampled) / float64(len(res.Outcomes)); frac > 0.2 {
		t.Fatalf("%.0f%% of nodes wrongly considered withheld data available", frac*100)
	}
	for _, o := range res.Outcomes {
		if o.SampleVote != consensus.VoteInvalid && o.Sampling < 0 {
			t.Fatal("node with failed sampling attested valid")
		}
	}
}

func TestSlotAttestations(t *testing.T) {
	c := smallCluster(t, 80, func(cc *ClusterConfig) { cc.BlockGossip = true })
	res, err := c.RunSlot(1)
	if err != nil {
		t.Fatal(err)
	}
	validVotes := 0
	for i, o := range res.Outcomes {
		if o.BlockRecv < 0 {
			t.Errorf("node %d never received the block", i)
			continue
		}
		if o.SampleVote == consensus.VoteValid {
			validVotes++
		}
	}
	if frac := float64(validVotes) / float64(len(res.Outcomes)); frac < 0.95 {
		t.Fatalf("only %.0f%% of nodes attested valid", frac*100)
	}
}

func TestSlotRealPayloadsEndToEnd(t *testing.T) {
	// Full data plane: real cells, erasure reconstruction, commitment
	// verification, proposer signatures.
	c := smallCluster(t, 60, func(cc *ClusterConfig) {
		cc.Core.RealPayloads = true
		cc.VerifySeeds = true
	})
	data := make([]byte, c.cfg.Core.Blob.BlobBytes())
	for i := range data {
		data[i] = byte(i * 31)
	}
	if err := c.Builder().PrepareBlob(data); err != nil {
		t.Fatal(err)
	}
	res, err := c.RunSlot(1)
	if err != nil {
		t.Fatal(err)
	}
	if rate := res.DeadlineRate(c.cfg.Core.Deadline); rate < 0.95 {
		t.Fatalf("real-payload deadline rate %v", rate)
	}
	// Spot-check that a node's reconstructed custody matches the
	// builder's extension.
	node := c.Nodes()[0]
	a := c.Table().Assignment(0)
	l := a.Lines()[0]
	for pos := 0; pos < c.cfg.Core.Blob.N(); pos++ {
		id := cellOnLine(l, pos)
		cell, ok := node.Store().Get(id)
		if !ok {
			t.Fatalf("node 0 missing custody cell %v", id)
		}
		want := c.Builder().extended.Cell(id)
		if string(cell.Data) != string(want) {
			t.Fatalf("node 0 cell %v differs from builder", id)
		}
	}
}

func TestSlotDeterministicAcrossRuns(t *testing.T) {
	run := func() []time.Duration {
		c := smallCluster(t, 60, nil)
		res, err := c.RunSlot(1)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]time.Duration, len(res.Outcomes))
		for i, o := range res.Outcomes {
			out[i] = o.Sampling
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("node %d sampling time differs across identical runs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestMultipleSlots(t *testing.T) {
	c := smallCluster(t, 60, nil)
	for slot := uint64(1); slot <= 3; slot++ {
		res, err := c.RunSlot(slot)
		if err != nil {
			t.Fatal(err)
		}
		if rate := res.DeadlineRate(c.cfg.Core.Deadline); rate < 1.0 {
			t.Fatalf("slot %d deadline rate %v", slot, rate)
		}
	}
}

func TestRoundStatsRecorded(t *testing.T) {
	c := smallCluster(t, 100, nil)
	res, err := c.RunSlot(1)
	if err != nil {
		t.Fatal(err)
	}
	withRounds := 0
	for _, o := range res.Outcomes {
		if len(o.Rounds) > 0 {
			withRounds++
			if o.Rounds[0].MsgsSent == 0 && o.Rounds[0].CellsRequested > 0 {
				t.Fatal("round recorded cells without messages")
			}
		}
	}
	if withRounds == 0 {
		t.Fatal("no node recorded fetch rounds")
	}
}

func TestConstantScheduleIsSlower(t *testing.T) {
	// Fig. 11: the non-adaptive baseline must not beat adaptive fetching
	// at the tail.
	adaptive := smallCluster(t, 120, nil)
	resA, err := adaptive.RunSlot(1)
	if err != nil {
		t.Fatal(err)
	}
	constant := smallCluster(t, 120, func(cc *ClusterConfig) {
		cc.Core.Schedule = constantScheduleForTest()
	})
	resC, err := constant.RunSlot(1)
	if err != nil {
		t.Fatal(err)
	}
	maxA := maxSampling(resA)
	maxC := maxSampling(resC)
	if maxC < maxA {
		t.Fatalf("constant fetching faster at the tail: %v < %v", maxC, maxA)
	}
}

func maxSampling(res *SlotResult) time.Duration {
	var m time.Duration
	for _, o := range res.Outcomes {
		if o.Sampling > m {
			m = o.Sampling
		}
	}
	return m
}

func constantScheduleForTest() fetch.Schedule {
	return fetch.ConstantSchedule(400*time.Millisecond, 1)
}

func TestLaggingNodeCatchesUpNextSlot(t *testing.T) {
	// Paper 8.2: "Lagging nodes can perform multiple rounds of sample
	// fetching per 12 s slot, enabling them to catch up once network
	// conditions stabilize." A node dead during slot 1 recovers in
	// slot 2.
	c := smallCluster(t, 120, func(cc *ClusterConfig) { cc.DeadFraction = 0 })
	victim := 7
	if err := c.Network().SetDead(victim, true); err != nil {
		t.Fatal(err)
	}
	res1, err := c.RunSlot(1)
	if err != nil {
		t.Fatal(err)
	}
	if res1.Outcomes[victim].Sampling >= 0 {
		t.Fatal("dead node completed sampling")
	}
	// The node comes back; the next slot must complete normally.
	if err := c.Network().SetDead(victim, false); err != nil {
		t.Fatal(err)
	}
	res2, err := c.RunSlot(2)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Outcomes[victim].Sampling < 0 {
		t.Fatal("recovered node did not sample in the next slot")
	}
	if res2.Outcomes[victim].Sampling > c.cfg.Core.Deadline {
		t.Fatalf("recovered node too slow: %v", res2.Outcomes[victim].Sampling)
	}
}

func TestEpochRotationChangesAssignments(t *testing.T) {
	// Short-liveness end to end: tables derived from different epoch
	// seeds assign different lines, preventing targeted placement.
	c := smallCluster(t, 50, nil)
	a1 := c.Table().Assignment(3)
	seed2 := c.randao.SeedFor(1)
	ids2 := make([]ids.NodeID, 50)
	for i := range ids2 {
		ids2[i] = c.Table().ID(i)
	}
	t2, err := NewTable(c.cfg.Core.Assign, seed2, ids2)
	if err != nil {
		t.Fatal(err)
	}
	a2 := t2.Assignment(3)
	same := len(a1.Rows) == len(a2.Rows)
	if same {
		for i := range a1.Rows {
			if a1.Rows[i] != a2.Rows[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("assignment did not rotate across epochs")
	}
}

func TestCommitteeDecisionEndToEnd(t *testing.T) {
	// Healthy slot: the committee accepts.
	c := smallCluster(t, 100, func(cc *ClusterConfig) { cc.BlockGossip = true })
	res, err := c.RunSlot(1)
	if err != nil {
		t.Fatal(err)
	}
	seed := c.randao.SeedFor(0)
	if got := res.CommitteeDecision(seed, 1, 32); got != consensus.DecisionAccept {
		t.Fatalf("healthy slot rejected: %v", got)
	}

	// Withholding slot: the committee rejects.
	w := smallCluster(t, 100, func(cc *ClusterConfig) { cc.BlockGossip = true })
	n := w.cfg.Core.Blob.N()
	h := n/2 + 1
	w.Builder().SetWithholding(func(id blob.CellID) bool {
		return int(id.Row) < h && int(id.Col) < h
	})
	wres, err := w.RunSlot(1)
	if err != nil {
		t.Fatal(err)
	}
	if got := wres.CommitteeDecision(w.randao.SeedFor(0), 1, 32); got != consensus.DecisionReject {
		t.Fatalf("withholding slot accepted: %v", got)
	}
}

package core

import (
	"testing"
	"time"

	"pandas/internal/membership"
)

// TestChurnInactiveConfigMatchesStatic is the regression guard for the
// dynamic-membership wiring: a present-but-inactive churn config must
// leave the deployment bit-identical to the static path — same RNG
// stream, same outcomes.
func TestChurnInactiveConfigMatchesStatic(t *testing.T) {
	run := func(churn *membership.Config) *SlotResult {
		c := smallCluster(t, 100, func(cc *ClusterConfig) {
			cc.DeadFraction = 0.1
			cc.OutOfViewFraction = 0.2
			cc.BlockGossip = true
			cc.Churn = churn
		})
		res, err := c.RunSlot(1)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	static := run(nil)
	inactive := run(&membership.Config{RefreshInterval: time.Second}) // refresh-only: inactive
	if len(static.Outcomes) != len(inactive.Outcomes) {
		t.Fatal("outcome count diverged")
	}
	for i := range static.Outcomes {
		a, b := static.Outcomes[i], inactive.Outcomes[i]
		if a.Sampling != b.Sampling || a.Consolidation != b.Consolidation ||
			a.Seed != b.Seed || a.FetchMsgs != b.FetchMsgs || a.Dead != b.Dead {
			t.Fatalf("node %d diverged: %+v vs %+v", i, a, b)
		}
	}
}

// TestChurnCrashMidFetchRound crashes nodes ~800 ms into the slot —
// squarely inside the adaptive fetch rounds. Crashed nodes must be
// excluded from the deadline denominator, and the survivors must still
// meet the deadline despite their fetch plans pointing at peers that
// silently vanished (liveness backoff reroutes them).
func TestChurnCrashMidFetchRound(t *testing.T) {
	c := smallCluster(t, 100, func(cc *ClusterConfig) {
		cc.Churn = &membership.Config{
			Flash: []membership.FlashEvent{{At: 800 * time.Millisecond, Leave: 10, Crash: true}},
		}
	})
	res, err := c.RunSlot(1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Churn.Crashes != 10 {
		t.Fatalf("crashes=%d, want 10", res.Churn.Crashes)
	}
	crashed := 0
	for i, o := range res.Outcomes {
		if o.LeftAt < 0 {
			continue
		}
		crashed++
		if o.LeftAt != 800*time.Millisecond {
			t.Errorf("node %d left at %v, want 800ms", i, o.LeftAt)
		}
		if o.EligibleAt(c.cfg.Core.Deadline) {
			t.Errorf("node %d crashed before the deadline yet counts as eligible", i)
		}
	}
	if crashed != 10 {
		t.Fatalf("%d outcomes carry LeftAt, want 10", crashed)
	}
	if rate := res.DeadlineRate(c.cfg.Core.Deadline); rate < 0.95 {
		t.Fatalf("survivor deadline rate %.2f after mid-fetch crashes", rate)
	}
}

// TestChurnJoinAfterSeeding brings initially-offline nodes online at
// 1.5 s — after the builder's seeding pass, before sampling settles.
// Joiners start from an empty store, are excluded from the deadline
// metric, and must still complete sampling purely by fetching.
func TestChurnJoinAfterSeeding(t *testing.T) {
	c := smallCluster(t, 100, func(cc *ClusterConfig) {
		cc.Churn = &membership.Config{
			InitialOfflineFraction: 0.05,
			Flash:                  []membership.FlashEvent{{At: 1500 * time.Millisecond, Join: 5}},
		}
	})
	res, err := c.RunSlot(1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Churn.Joins != 5 {
		t.Fatalf("joins=%d, want 5", res.Churn.Joins)
	}
	joined, sampled := res.JoinerCatchUp()
	if joined != 5 {
		t.Fatalf("JoinerCatchUp joined=%d, want 5", joined)
	}
	if sampled == 0 {
		t.Fatal("no joiner completed sampling before the slot ended")
	}
	for i, o := range res.Outcomes {
		if o.JoinedAt < 0 {
			continue
		}
		if o.JoinedAt != 1500*time.Millisecond {
			t.Errorf("node %d joined at %v, want 1500ms", i, o.JoinedAt)
		}
		if o.Offline {
			t.Errorf("node %d joined mid-slot yet reads Offline", i)
		}
		if o.EligibleAt(c.cfg.Core.Deadline) {
			t.Errorf("joiner %d counts toward the deadline denominator", i)
		}
		if o.Sampling >= 0 && o.Sampling <= o.JoinedAt {
			t.Errorf("node %d sampled at %v before joining at %v", i, o.Sampling, o.JoinedAt)
		}
		if o.Seed >= 0 {
			t.Errorf("joiner %d received seeds despite joining after the seeding pass", i)
		}
	}
}

// TestChurnRestartResumesCustodyEmptyStore crashes one node mid-slot and
// flash-restarts it 1.5 s later (the join falls back to restarting the
// crashed node since the fresh-join pool is empty). The restart must
// resume custody from an EMPTY store — no seed state survives — and the
// generation guard must keep the pre-crash timers from firing into the
// restarted lifetime.
func TestChurnRestartResumesCustodyEmptyStore(t *testing.T) {
	c := smallCluster(t, 80, func(cc *ClusterConfig) {
		cc.Churn = &membership.Config{
			Flash: []membership.FlashEvent{
				{At: time.Second, Leave: 1, Crash: true},
				{At: 2500 * time.Millisecond, Join: 1},
			},
		}
	})
	// Probe the restarted node shortly after its join fires: JoinSlot must
	// have wiped all per-slot state (the crash lost the store).
	var probed, hadSeed, wasSampled bool
	c.Network().After(2600*time.Millisecond, func() {
		for i := range c.nodes {
			if c.joinedAt[i] >= 0 {
				probed = true
				hadSeed = c.nodes[i].Metrics().HasSeed
				wasSampled = c.nodes[i].Metrics().Sampled
			}
		}
	})
	res, err := c.RunSlot(1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Churn.Crashes != 1 || res.Churn.Restarts != 1 {
		t.Fatalf("crashes=%d restarts=%d, want 1/1", res.Churn.Crashes, res.Churn.Restarts)
	}
	if !probed {
		t.Fatal("probe never found the restarted node")
	}
	if hadSeed || wasSampled {
		t.Fatalf("restart kept pre-crash state: hadSeed=%v sampled=%v", hadSeed, wasSampled)
	}
	for i, o := range res.Outcomes {
		if o.JoinedAt < 0 {
			continue
		}
		if o.LeftAt != time.Second || o.JoinedAt != 2500*time.Millisecond {
			t.Fatalf("node %d lifecycle %v/%v, want 1s/2.5s", i, o.LeftAt, o.JoinedAt)
		}
		if o.Sampling >= 0 && o.Sampling <= o.JoinedAt {
			t.Fatalf("node %d sampled at %v, before its restart", i, o.Sampling)
		}
	}
}

// TestChurnComposesWithOutOfView is the SetView-composition fix: with
// both OutOfViewFraction and churn configured, nodes must keep their
// restricted views (not have them overwritten by full churn views), and
// graceful-leave announcements must evolve those same views.
func TestChurnComposesWithOutOfView(t *testing.T) {
	const n = 100
	c := smallCluster(t, n, func(cc *ClusterConfig) {
		cc.OutOfViewFraction = 0.5
		cc.Churn = &membership.Config{
			Flash: []membership.FlashEvent{{At: time.Second, Leave: 3}}, // graceful
			// Periodic crawls re-surface departed peers from stale routing
			// tables (by design); disable them to observe announcement
			// pruning in isolation.
			RefreshInterval: -1,
		}
	})
	// The restricted views must have survived churn setup: each node sees
	// at most keep+1 peers, far below the full network.
	views := make([]*membership.LiveView, n)
	for i, node := range c.Nodes() {
		lv, ok := node.View().(*membership.LiveView)
		if !ok {
			t.Fatalf("node %d view is %T, want *membership.LiveView", i, node.View())
		}
		views[i] = lv
		if lv.Len() > n/2+1 {
			t.Fatalf("node %d view has %d peers: out-of-view restriction overwritten", i, lv.Len())
		}
	}
	res, err := c.RunSlot(1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Churn.Leaves != 3 {
		t.Fatalf("leaves=%d, want 3", res.Churn.Leaves)
	}
	for i, o := range res.Outcomes {
		if o.LeftAt < 0 {
			continue
		}
		// The graceful leaver announced its departure: the builder no
		// longer believes it online, and the announcement flood pruned it
		// from (most) peer views that previously contained it.
		if c.Directory().Believed(i) {
			t.Errorf("builder still believes graceful leaver %d online", i)
		}
		had, still := 0, 0
		for j := range views {
			if j == i {
				continue
			}
			if views[j].Contains(i) {
				still++
			}
			had++
		}
		if still > had/4 {
			t.Errorf("leaver %d still in %d/%d views after announcement", i, still, had)
		}
	}
}

// TestChurnViewRefreshDiscoversJoiner runs two slots with a joiner in
// the first: by the end of the second slot, DHT crawls and the join
// announcement must have spread the joiner into most restricted views.
func TestChurnViewRefreshDiscoversJoiner(t *testing.T) {
	const n = 80
	c := smallCluster(t, n, func(cc *ClusterConfig) {
		cc.OutOfViewFraction = 0.5
		cc.Churn = &membership.Config{
			InitialOfflineFraction: 0.03,
			Flash:                  []membership.FlashEvent{{At: 2 * time.Second, Join: 1}},
			RefreshInterval:        3 * time.Second,
			RefreshFanout:          3,
		}
	})
	res, err := c.RunSlot(1)
	if err != nil {
		t.Fatal(err)
	}
	joiner := -1
	for i, o := range res.Outcomes {
		if o.JoinedAt >= 0 {
			joiner = i
		}
	}
	if joiner < 0 {
		t.Fatal("no joiner recorded")
	}
	if _, err := c.RunSlot(2); err != nil {
		t.Fatal(err)
	}
	know := 0
	for i, node := range c.Nodes() {
		if i == joiner {
			continue
		}
		if node.View().Contains(joiner) {
			know++
		}
	}
	if know < (n-1)/2 {
		t.Fatalf("only %d/%d nodes discovered the joiner", know, n-1)
	}
}

package core

import (
	"errors"
	"fmt"
	"math/bits"
	"sort"

	"pandas/internal/assign"
	"pandas/internal/blob"
	"pandas/internal/kzg"
	"pandas/internal/wire"
)

// Store errors.
var (
	ErrBadProof = errors.New("core: cell proof verification failed")
)

// Store is a node's per-slot custody state: presence bitmaps for its
// assigned rows and columns (plus any sample cells outside them), and —
// in real-payload mode — the cell bytes and proofs themselves.
//
// The store is deliberately sparse: a node never tracks the full 512x512
// matrix, only its ~16 custody lines and 73 samples. All line bitmaps
// live in one shared slab ([]uint64) and off-custody samples in a short
// sorted index slice, so metadata-mode custody state is a handful of
// allocations per node and a few hundred bytes — the budget that lets a
// single process hold 100k+ nodes. Line lookup is a linear scan over at
// most a handful of entries, which profiles faster than any map for
// these sizes and allocates nothing.
type Store struct {
	params blob.Params
	n      int
	real   bool

	rowIdx []uint16
	colIdx []uint16
	// lines holds row states first (parallel to rowIdx), then column
	// states (parallel to colIdx); every bitmap is a view into slab.
	lines []lineState
	slab  []uint64

	// extras holds cells outside every custody line (random samples) as
	// sorted flat cell indices.
	extras []uint32
	// data holds payloads in real mode, keyed by flat cell index.
	data map[int]wire.Cell

	commitment    kzg.Commitment
	hasCommitment bool
	verify        bool
}

type lineState struct {
	bits  []uint64
	count int
}

func (ls *lineState) has(pos int) bool {
	return ls.bits[pos/64]&(1<<uint(pos%64)) != 0
}

func (ls *lineState) set(pos int) bool {
	w, b := pos/64, uint(pos%64)
	if ls.bits[w]&(1<<b) != 0 {
		return false
	}
	ls.bits[w] |= 1 << b
	ls.count++
	return true
}

// NewStore creates the custody store for one slot. The assignment fixes
// which lines are tracked; real selects payload mode; verify enables
// per-cell proof checks against the commitment (real mode only).
func NewStore(p blob.Params, a assign.Assignment, real, verify bool) *Store {
	s := &Store{params: p, n: p.N()}
	s.Reset(a, real, verify)
	return s
}

// Reset reinitializes the store for a new slot, reusing the bitmap slab,
// index slices, and payload map of the previous slot. A node keeps one
// Store for its whole lifetime instead of allocating ~20 objects per
// slot; at 100k nodes that is the difference between a steady heap and
// gigabytes of per-slot garbage.
func (s *Store) Reset(a assign.Assignment, real, verify bool) {
	s.real = real
	s.verify = verify && real
	s.commitment = kzg.Commitment{}
	s.hasCommitment = false
	if real {
		if s.data == nil {
			s.data = make(map[int]wire.Cell)
		} else {
			clear(s.data)
		}
	} else {
		s.data = nil
	}
	s.extras = s.extras[:0]
	s.rowIdx = append(s.rowIdx[:0], a.Rows...)
	s.colIdx = append(s.colIdx[:0], a.Cols...)

	words := (s.n + 63) / 64
	nLines := len(s.rowIdx) + len(s.colIdx)
	if cap(s.lines) < nLines {
		s.lines = make([]lineState, nLines)
	} else {
		s.lines = s.lines[:nLines]
	}
	need := nLines * words
	if cap(s.slab) < need {
		s.slab = make([]uint64, need)
	} else {
		s.slab = s.slab[:need]
		for i := range s.slab {
			s.slab[i] = 0
		}
	}
	for i := range s.lines {
		s.lines[i] = lineState{bits: s.slab[i*words : (i+1)*words]}
	}
}

// SetCommitment records the blob commitment used for proof verification
// and for proving reconstructed cells.
func (s *Store) SetCommitment(c kzg.Commitment) {
	s.commitment = c
	s.hasCommitment = true
}

// Commitment returns the recorded commitment, if any.
func (s *Store) Commitment() (kzg.Commitment, bool) {
	return s.commitment, s.hasCommitment
}

// rowState returns the tracked state of a row, or nil.
func (s *Store) rowState(r uint16) *lineState {
	for i, x := range s.rowIdx {
		if x == r {
			return &s.lines[i]
		}
	}
	return nil
}

// colState returns the tracked state of a column, or nil.
func (s *Store) colState(c uint16) *lineState {
	for i, x := range s.colIdx {
		if x == c {
			return &s.lines[len(s.rowIdx)+i]
		}
	}
	return nil
}

// lineStateOf returns the tracked state of a line, or nil.
func (s *Store) lineStateOf(l blob.Line) *lineState {
	if l.Kind == blob.Row {
		return s.rowState(l.Index)
	}
	return s.colState(l.Index)
}

// extraHas reports whether the cell is recorded as an off-custody extra.
func (s *Store) extraHas(id blob.CellID) bool {
	idx := uint32(id.Index(s.n))
	i := sort.Search(len(s.extras), func(i int) bool { return s.extras[i] >= idx })
	return i < len(s.extras) && s.extras[i] == idx
}

// extraAdd records an off-custody extra, keeping the index sorted. It
// returns false for duplicates.
func (s *Store) extraAdd(id blob.CellID) bool {
	idx := uint32(id.Index(s.n))
	i := sort.Search(len(s.extras), func(i int) bool { return s.extras[i] >= idx })
	if i < len(s.extras) && s.extras[i] == idx {
		return false
	}
	s.extras = append(s.extras, 0)
	copy(s.extras[i+1:], s.extras[i:])
	s.extras[i] = idx
	return true
}

// Covered reports whether the cell lies on one of the tracked custody
// lines.
func (s *Store) Covered(id blob.CellID) bool {
	return s.rowState(id.Row) != nil || s.colState(id.Col) != nil
}

// Has reports whether the cell is present (on a custody line or as an
// extra sample).
func (s *Store) Has(id blob.CellID) bool {
	if ls := s.rowState(id.Row); ls != nil {
		return ls.has(int(id.Col))
	}
	if ls := s.colState(id.Col); ls != nil {
		return ls.has(int(id.Row))
	}
	return s.extraHas(id)
}

// Add records a received cell. It returns false when the cell was already
// present (a duplicate). In verifying mode the proof is checked first and
// ErrBadProof returned on mismatch.
func (s *Store) Add(c wire.Cell) (bool, error) {
	if int(c.ID.Row) >= s.n || int(c.ID.Col) >= s.n {
		return false, fmt.Errorf("%w: cell %v out of range", blob.ErrBadCell, c.ID)
	}
	// A tainted cell is the simulator's stand-in for a corrupted payload:
	// the proof check a real deployment always performs would fail, so
	// reject it in both payload modes. Real-payload corruption is also
	// caught below by the actual KZG verification.
	if c.Tainted {
		return false, fmt.Errorf("%w: cell %v (tainted)", ErrBadProof, c.ID)
	}
	if s.verify && s.hasCommitment {
		if !kzg.Verify(s.commitment, c.ID, c.Data, c.Proof) {
			return false, fmt.Errorf("%w: cell %v", ErrBadProof, c.ID)
		}
	}
	added, covered := false, false
	if ls := s.rowState(c.ID.Row); ls != nil {
		covered = true
		if ls.set(int(c.ID.Col)) {
			added = true
		}
	}
	if ls := s.colState(c.ID.Col); ls != nil {
		covered = true
		if ls.set(int(c.ID.Row)) {
			added = true
		}
	}
	if !covered && s.extraAdd(c.ID) {
		added = true
	}
	if added && s.real {
		s.data[c.ID.Index(s.n)] = c
	}
	return added, nil
}

// Get returns the stored cell. In metadata mode the returned cell has a
// nil payload but is valid for forwarding (sizes are charged in full).
func (s *Store) Get(id blob.CellID) (wire.Cell, bool) {
	if !s.Has(id) {
		return wire.Cell{}, false
	}
	if s.real {
		c, ok := s.data[id.Index(s.n)]
		return c, ok
	}
	return wire.Cell{ID: id}, true
}

// Peek is the read-only hot-path lookup used by the sampling gateway:
// it returns the stored cell WITHOUT copying the payload and with a
// single map probe in real mode (Get pays a custody-line scan first).
//
// Aliasing contract: in real-payload mode the returned Cell's Data
// slice aliases the store's internal storage. Callers must treat it as
// read-only and must not retain it across StartSlot (which resets the
// store in place); a caller that needs a private copy — e.g. to cache
// past the slot boundary — must copy Data itself. Mutating the returned
// payload corrupts custody state for every later reader (see
// TestStorePeekAliasing). In metadata mode the returned cell has a nil
// payload, exactly like Get.
func (s *Store) Peek(id blob.CellID) (wire.Cell, bool) {
	if s.real {
		c, ok := s.data[id.Index(s.n)]
		return c, ok
	}
	if !s.Has(id) {
		return wire.Cell{}, false
	}
	return wire.Cell{ID: id}, true
}

// LineCount returns the number of present cells on a tracked line
// (zero for untracked lines).
func (s *Store) LineCount(l blob.Line) int {
	if ls := s.lineStateOf(l); ls != nil {
		return ls.count
	}
	return 0
}

// LineComplete reports whether a tracked line is fully present.
func (s *Store) LineComplete(l blob.Line) bool {
	return s.LineCount(l) == s.n
}

// MissingOnLine returns the absent positions (0..n-1) of a tracked line.
func (s *Store) MissingOnLine(l blob.Line) []int {
	ls := s.lineStateOf(l)
	if ls == nil || ls.count == s.n {
		return nil
	}
	out := make([]int, 0, s.n-ls.count)
	for w, word := range ls.bits {
		inv := ^word
		for inv != 0 {
			b := bits.TrailingZeros64(inv)
			pos := w*64 + b
			if pos >= s.n {
				break
			}
			out = append(out, pos)
			inv &^= 1 << uint(b)
		}
	}
	return out
}

// TryReconstruct completes a tracked line if it holds at least half of
// its cells. It returns the cells newly materialized (nil if the line was
// complete or below the threshold). In real mode the Reed-Solomon decoder
// produces actual payloads and fresh proofs; in metadata mode presence
// bits are simply filled in.
func (s *Store) TryReconstruct(l blob.Line) ([]wire.Cell, error) {
	ls := s.lineStateOf(l)
	if ls == nil || ls.count == s.n || ls.count < s.n/2 {
		return nil, nil
	}
	missing := s.MissingOnLine(l)
	var newCells []wire.Cell
	if s.real {
		have := make(map[int][]byte, ls.count)
		for pos := 0; pos < s.n; pos++ {
			if !ls.has(pos) {
				continue
			}
			id := cellOnLine(l, pos)
			c, ok := s.data[id.Index(s.n)]
			if !ok {
				return nil, fmt.Errorf("core: line %v position %d marked present but payload missing", l, pos)
			}
			have[pos] = c.Data
		}
		full, err := blob.ReconstructLine(s.params, have)
		if err != nil {
			return nil, fmt.Errorf("core: reconstruct %v: %w", l, err)
		}
		for _, pos := range missing {
			id := cellOnLine(l, pos)
			c := wire.Cell{ID: id, Data: full[pos]}
			if s.hasCommitment {
				c.Proof = kzg.Prove(s.commitment, id, full[pos])
			}
			newCells = append(newCells, c)
		}
	} else {
		for _, pos := range missing {
			newCells = append(newCells, wire.Cell{ID: cellOnLine(l, pos)})
		}
	}
	for _, c := range newCells {
		if _, err := s.Add(c); err != nil {
			return nil, err
		}
	}
	return newCells, nil
}

// cellOnLine returns the CellID at a position along a line.
func cellOnLine(l blob.Line, pos int) blob.CellID {
	if l.Kind == blob.Row {
		return blob.CellID{Row: l.Index, Col: uint16(pos)}
	}
	return blob.CellID{Row: uint16(pos), Col: l.Index}
}

// CompleteLines returns how many tracked lines are fully present.
func (s *Store) CompleteLines() int {
	done := 0
	for i := range s.lines {
		if s.lines[i].count == s.n {
			done++
		}
	}
	return done
}

// TrackedLines returns the number of custody lines.
func (s *Store) TrackedLines() int { return len(s.lines) }

package core

import (
	"bytes"
	"fmt"
	"sort"

	"pandas/internal/assign"
	"pandas/internal/blob"
	"pandas/internal/ids"
)

// Table holds the epoch-wide assignment state shared by every honest
// participant: the node list, each node's custody assignment, and the
// inverse holders index per line. Because the assignment function is a
// pure function of (epoch seed, node ID), every node with the same view
// derives the same table — this is what lets consolidation-boost maps
// reference holders by rank instead of by full identity.
//
// A Table is immutable after construction and safe for concurrent reads.
type Table struct {
	seed        assign.Seed
	params      assign.Params
	nodeIDs     []ids.NodeID
	assignments []assign.Assignment
	// holders[kind][line] lists node indices assigned the line, sorted
	// by node ID bytes (a canonical, view-independent order).
	holders [2][][]int
}

// NewTable computes assignments and the holders index for all nodes.
func NewTable(p assign.Params, seed assign.Seed, nodeIDs []ids.NodeID) (*Table, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	t := &Table{seed: seed, params: p, nodeIDs: nodeIDs}
	t.assignments = make([]assign.Assignment, len(nodeIDs))
	t.holders[0] = make([][]int, p.N)
	t.holders[1] = make([][]int, p.N)
	for i, id := range nodeIDs {
		a, err := assign.For(p, seed, id)
		if err != nil {
			return nil, fmt.Errorf("core: assignment for node %d: %w", i, err)
		}
		t.assignments[i] = a
		for _, r := range a.Rows {
			t.holders[0][r] = append(t.holders[0][r], i)
		}
		for _, c := range a.Cols {
			t.holders[1][c] = append(t.holders[1][c], i)
		}
	}
	// Canonical holder order: by node ID bytes.
	for kind := 0; kind < 2; kind++ {
		for _, hs := range t.holders[kind] {
			sort.Slice(hs, func(a, b int) bool {
				return bytes.Compare(nodeIDs[hs[a]][:], nodeIDs[hs[b]][:]) < 0
			})
		}
	}
	return t, nil
}

// NumNodes returns the number of nodes in the table.
func (t *Table) NumNodes() int { return len(t.nodeIDs) }

// ID returns a node's identity hash.
func (t *Table) ID(node int) ids.NodeID { return t.nodeIDs[node] }

// Assignment returns a node's custody assignment.
func (t *Table) Assignment(node int) assign.Assignment { return t.assignments[node] }

// Holders returns the node indices assigned the line, in canonical
// order. The returned slice must not be modified.
func (t *Table) Holders(l blob.Line) []int {
	return t.holders[kindIndex(l.Kind)][l.Index]
}

// HolderRank returns the position of node within the canonical holder
// list of the line, or -1 if the node does not hold it.
func (t *Table) HolderRank(l blob.Line, node int) int {
	for i, h := range t.Holders(l) {
		if h == node {
			return i
		}
	}
	return -1
}

// HolderAt resolves a consolidation-boost HolderRef back to a node
// index, or -1 if the rank is out of range.
func (t *Table) HolderAt(l blob.Line, rank int) int {
	hs := t.Holders(l)
	if rank < 0 || rank >= len(hs) {
		return -1
	}
	return hs[rank]
}

func kindIndex(k blob.LineKind) int {
	if k == blob.Row {
		return 0
	}
	return 1
}

package gf256

import (
	"testing"
	"testing/quick"
)

func TestAddIsXor(t *testing.T) {
	if got := Add(0x53, 0xCA); got != 0x53^0xCA {
		t.Fatalf("Add(0x53, 0xCA) = %#x, want %#x", got, 0x53^0xCA)
	}
}

func TestMulKnownValues(t *testing.T) {
	cases := []struct {
		a, b, want byte
	}{
		{0, 0, 0},
		{0, 7, 0},
		{1, 1, 1},
		{1, 0xFF, 0xFF},
		{2, 2, 4},
		{2, 0x80, 0x1d}, // x * x^7 = x^8 = x^4+x^3+x^2+1 mod poly
		{2, 4, 8},
		{4, 0x40, 0x1d}, // x^2 * x^6 = x^8
	}
	for _, c := range cases {
		if got := Mul(c.a, c.b); got != c.want {
			t.Errorf("Mul(%#x, %#x) = %#x, want %#x", c.a, c.b, got, c.want)
		}
	}
}

func TestMulCommutative(t *testing.T) {
	f := func(a, b byte) bool { return Mul(a, b) == Mul(b, a) }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMulAssociative(t *testing.T) {
	f := func(a, b, c byte) bool {
		return Mul(Mul(a, b), c) == Mul(a, Mul(b, c))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDistributive(t *testing.T) {
	f := func(a, b, c byte) bool {
		return Mul(a, Add(b, c)) == Add(Mul(a, b), Mul(a, c))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMulIdentity(t *testing.T) {
	for a := 0; a < 256; a++ {
		if got := Mul(byte(a), 1); got != byte(a) {
			t.Fatalf("Mul(%#x, 1) = %#x", a, got)
		}
	}
}

func TestInvRoundTrip(t *testing.T) {
	for a := 1; a < 256; a++ {
		inv := Inv(byte(a))
		if got := Mul(byte(a), inv); got != 1 {
			t.Fatalf("Mul(%#x, Inv(%#x)) = %#x, want 1", a, a, got)
		}
	}
}

func TestDivInverseOfMul(t *testing.T) {
	f := func(a, b byte) bool {
		if b == 0 {
			return true
		}
		return Div(Mul(a, b), b) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDivByZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Div by zero did not panic")
		}
	}()
	Div(1, 0)
}

func TestInvZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Inv(0) did not panic")
		}
	}()
	Inv(0)
}

func TestLogZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Log(0) did not panic")
		}
	}()
	Log(0)
}

func TestExpLogRoundTrip(t *testing.T) {
	for a := 1; a < 256; a++ {
		if got := Exp(Log(byte(a))); got != byte(a) {
			t.Fatalf("Exp(Log(%#x)) = %#x", a, got)
		}
	}
}

func TestExpGeneratesAllNonZero(t *testing.T) {
	seen := make(map[byte]bool)
	for i := 0; i < 255; i++ {
		seen[Exp(i)] = true
	}
	if len(seen) != 255 {
		t.Fatalf("generator powers covered %d elements, want 255", len(seen))
	}
	if seen[0] {
		t.Fatal("generator powers must not include 0")
	}
}

func TestPow(t *testing.T) {
	cases := []struct {
		a    byte
		n    int
		want byte
	}{
		{0, 0, 1},
		{0, 5, 0},
		{3, 0, 1},
		{2, 1, 2},
		{2, 8, 0x1d},
		{7, 255, 1}, // Fermat: a^255 = 1 for a != 0
	}
	for _, c := range cases {
		if got := Pow(c.a, c.n); got != c.want {
			t.Errorf("Pow(%#x, %d) = %#x, want %#x", c.a, c.n, got, c.want)
		}
	}
}

func TestPowMatchesRepeatedMul(t *testing.T) {
	for a := 0; a < 256; a += 7 {
		acc := byte(1)
		for n := 0; n < 20; n++ {
			if got := Pow(byte(a), n); got != acc {
				t.Fatalf("Pow(%#x, %d) = %#x, want %#x", a, n, got, acc)
			}
			acc = Mul(acc, byte(a))
		}
	}
}

func TestMulSlice(t *testing.T) {
	src := []byte{0, 1, 2, 3, 0xFF}
	dst := make([]byte, len(src))
	MulSlice(3, src, dst)
	for i := range src {
		if dst[i] != Mul(3, src[i]) {
			t.Fatalf("MulSlice mismatch at %d: %#x vs %#x", i, dst[i], Mul(3, src[i]))
		}
	}
	// c == 0 zeroes the destination.
	MulSlice(0, src, dst)
	for i, d := range dst {
		if d != 0 {
			t.Fatalf("MulSlice(0) left dst[%d] = %#x", i, d)
		}
	}
	// c == 1 copies.
	MulSlice(1, src, dst)
	for i := range src {
		if dst[i] != src[i] {
			t.Fatalf("MulSlice(1) mismatch at %d", i)
		}
	}
}

func TestMulAddSlice(t *testing.T) {
	src := []byte{5, 6, 7, 8}
	dst := []byte{1, 2, 3, 4}
	want := make([]byte, 4)
	for i := range want {
		want[i] = Add(dst[i], Mul(9, src[i]))
	}
	MulAddSlice(9, src, dst)
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("MulAddSlice mismatch at %d: %#x vs %#x", i, dst[i], want[i])
		}
	}
}

func TestMulAddSliceZeroCoeffIsNoop(t *testing.T) {
	src := []byte{5, 6, 7, 8}
	dst := []byte{1, 2, 3, 4}
	MulAddSlice(0, src, dst)
	for i, want := range []byte{1, 2, 3, 4} {
		if dst[i] != want {
			t.Fatalf("MulAddSlice(0) modified dst[%d]", i)
		}
	}
}

func TestAddSlice(t *testing.T) {
	src := []byte{0xAA, 0x55}
	dst := []byte{0xFF, 0x00}
	AddSlice(src, dst)
	if dst[0] != 0x55 || dst[1] != 0x55 {
		t.Fatalf("AddSlice = %v", dst)
	}
}

func BenchmarkMul(b *testing.B) {
	var acc byte
	for i := 0; i < b.N; i++ {
		acc ^= Mul(byte(i), byte(i>>8))
	}
	_ = acc
}

func BenchmarkMulAddSlice(b *testing.B) {
	src := make([]byte, 512)
	dst := make([]byte, 512)
	for i := range src {
		src[i] = byte(i)
	}
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MulAddSlice(byte(i)|1, src, dst)
	}
}

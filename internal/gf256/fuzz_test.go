package gf256

import (
	"bytes"
	"testing"
)

// Differential fuzzing: the nibble-table kernels must agree with the
// log/exp scalar reference on every coefficient, every slice content,
// odd lengths, and fully aliased src/dst.

func FuzzMulAddSlice(f *testing.F) {
	f.Add(byte(0), []byte{})
	f.Add(byte(1), []byte{0, 1, 2, 3, 4, 5, 6, 7, 8})
	f.Add(byte(2), []byte{0xff, 0x00, 0x80, 0x01, 0x55})
	f.Add(byte(0x1d), []byte("odd length payload!"))
	f.Fuzz(func(t *testing.T, c byte, data []byte) {
		dst := make([]byte, len(data))
		for i := range dst {
			dst[i] = byte(i * 37)
		}
		want := append([]byte(nil), dst...)
		got := append([]byte(nil), dst...)
		mulAddSliceScalar(c, data, want)
		MulAddSlice(c, data, got)
		if !bytes.Equal(want, got) {
			t.Fatalf("MulAddSlice(%#x) diverges from scalar\nsrc  %x\nwant %x\ngot  %x", c, data, want, got)
		}
		// Fully aliased: dst == src. Elementwise independence must make
		// the kernels agree with the scalar loop.
		aliasWant := append([]byte(nil), data...)
		aliasGot := append([]byte(nil), data...)
		mulAddSliceScalar(c, aliasWant, aliasWant)
		MulAddSlice(c, aliasGot, aliasGot)
		if !bytes.Equal(aliasWant, aliasGot) {
			t.Fatalf("aliased MulAddSlice(%#x) diverges\nwant %x\ngot  %x", c, aliasWant, aliasGot)
		}
	})
}

func FuzzMulSlice(f *testing.F) {
	f.Add(byte(0), []byte{1})
	f.Add(byte(3), []byte{0xde, 0xad, 0xbe, 0xef, 0x99})
	f.Add(byte(255), []byte("unaligned"))
	f.Fuzz(func(t *testing.T, c byte, data []byte) {
		want := make([]byte, len(data))
		got := make([]byte, len(data))
		mulSliceScalar(c, data, want)
		MulSlice(c, data, got)
		if !bytes.Equal(want, got) {
			t.Fatalf("MulSlice(%#x) diverges from scalar\nsrc  %x\nwant %x\ngot  %x", c, data, want, got)
		}
		aliasWant := append([]byte(nil), data...)
		aliasGot := append([]byte(nil), data...)
		mulSliceScalar(c, aliasWant, aliasWant)
		MulSlice(c, aliasGot, aliasGot)
		if !bytes.Equal(aliasWant, aliasGot) {
			t.Fatalf("aliased MulSlice(%#x) diverges\nwant %x\ngot  %x", c, aliasWant, aliasGot)
		}
	})
}

// FuzzMulAddSliceIsMulXor cross-checks the kernel against elementwise
// field multiplication, anchoring the tables to Mul itself.
func FuzzMulAddSliceIsMulXor(f *testing.F) {
	f.Add(byte(7), []byte{1, 2, 3})
	f.Fuzz(func(t *testing.T, c byte, data []byte) {
		got := make([]byte, len(data))
		MulAddSlice(c, data, got)
		for i, s := range data {
			if want := Mul(c, s); got[i] != want {
				t.Fatalf("byte %d: got %#x, want Mul(%#x,%#x)=%#x", i, got[i], c, s, want)
			}
		}
	})
}

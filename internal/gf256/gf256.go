// Package gf256 implements arithmetic over the finite field GF(2^8).
//
// The field is constructed as GF(2)[x] / (x^8 + x^4 + x^3 + x^2 + 1),
// i.e. the polynomial 0x11D used by most Reed-Solomon deployments
// (including the erasure codes used for Ethereum blob data). Multiplication
// and division are implemented with logarithm/exponential tables built at
// package initialization, giving constant-time-ish single lookups.
//
// The package is the foundation of the Reed-Solomon codec in package rs,
// which in turn backs the two-dimensional blob extension used by PANDAS.
package gf256

import "encoding/binary"

// Polynomial is the irreducible polynomial defining the field,
// x^8 + x^4 + x^3 + x^2 + 1.
const Polynomial = 0x11d

// Order is the number of elements in the field.
const Order = 256

// generator is a primitive element of the field; powers of it enumerate
// all non-zero field elements.
const generator = 2

var (
	expTable [512]byte // expTable[i] = generator^i, doubled to avoid mod 255
	logTable [256]byte // logTable[x] = log_generator(x), logTable[0] unused

	// Split multiplication tables: for s = hi<<4 | lo,
	// c*s = mulHigh[c][hi] ^ mulLow[c][lo] by linearity over the bit
	// decomposition of s. 32 bytes per coefficient (8 KiB total), so the
	// slice kernels below are branch-free with L1-resident lookups.
	mulLow  [256][16]byte // mulLow[c][x] = c * x
	mulHigh [256][16]byte // mulHigh[c][x] = c * (x<<4)
)

func init() {
	x := 1
	for i := 0; i < 255; i++ {
		expTable[i] = byte(x)
		logTable[x] = byte(i)
		x <<= 1
		if x&0x100 != 0 {
			x ^= Polynomial
		}
	}
	// Duplicate the table so Mul can index exp[logA+logB] without a
	// modular reduction (logA+logB <= 508).
	for i := 255; i < 512; i++ {
		expTable[i] = expTable[i-255]
	}
	for c := 1; c < 256; c++ {
		logC := int(logTable[c])
		for x := 1; x < 16; x++ {
			mulLow[c][x] = expTable[logC+int(logTable[x])]
			mulHigh[c][x] = expTable[logC+int(logTable[x<<4])]
		}
	}
}

// Add returns a + b in GF(2^8). Addition is XOR; it is its own inverse,
// so Sub(a, b) == Add(a, b).
func Add(a, b byte) byte { return a ^ b }

// Sub returns a - b in GF(2^8), identical to Add.
func Sub(a, b byte) byte { return a ^ b }

// Mul returns a * b in GF(2^8).
func Mul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return expTable[int(logTable[a])+int(logTable[b])]
}

// Div returns a / b in GF(2^8). Division by zero panics, mirroring the
// behaviour of integer division: it is a programming error, not a
// recoverable runtime condition.
func Div(a, b byte) byte {
	if b == 0 {
		panic("gf256: division by zero")
	}
	if a == 0 {
		return 0
	}
	d := int(logTable[a]) - int(logTable[b])
	if d < 0 {
		d += 255
	}
	return expTable[d]
}

// Inv returns the multiplicative inverse of a. Inv(0) panics.
func Inv(a byte) byte {
	if a == 0 {
		panic("gf256: inverse of zero")
	}
	return expTable[255-int(logTable[a])]
}

// Exp returns generator^n for n >= 0.
func Exp(n int) byte {
	return expTable[n%255]
}

// Log returns log_generator(a) in [0, 255). Log(0) panics.
func Log(a byte) int {
	if a == 0 {
		panic("gf256: log of zero")
	}
	return int(logTable[a])
}

// Pow returns a^n in GF(2^8), with a^0 == 1 for any a (including 0, by
// the usual empty-product convention).
func Pow(a byte, n int) byte {
	if n == 0 {
		return 1
	}
	if a == 0 {
		return 0
	}
	l := (int(logTable[a]) * n) % 255
	if l < 0 {
		l += 255
	}
	return expTable[l]
}

// MulSlice sets dst[i] = c * src[i] for all i. dst and src must have the
// same length; they may alias.
func MulSlice(c byte, src, dst []byte) {
	if c == 0 {
		for i := range dst {
			dst[i] = 0
		}
		return
	}
	if c == 1 {
		copy(dst, src)
		return
	}
	lo, hi := &mulLow[c], &mulHigh[c]
	for i, s := range src {
		dst[i] = lo[s&0xf] ^ hi[s>>4]
	}
}

// mulSliceScalar is the log/exp reference implementation of MulSlice,
// kept for differential fuzzing of the nibble-table kernel.
func mulSliceScalar(c byte, src, dst []byte) {
	if c == 0 {
		for i := range dst {
			dst[i] = 0
		}
		return
	}
	if c == 1 {
		copy(dst, src)
		return
	}
	logC := int(logTable[c])
	for i, s := range src {
		if s == 0 {
			dst[i] = 0
		} else {
			dst[i] = expTable[logC+int(logTable[s])]
		}
	}
}

// MulAddSlice sets dst[i] ^= c * src[i] for all i, the fused
// multiply-accumulate at the heart of Reed-Solomon encoding. dst and src
// must have the same length.
func MulAddSlice(c byte, src, dst []byte) {
	if c == 0 {
		return
	}
	if c == 1 {
		AddSlice(src, dst)
		return
	}
	lo, hi := &mulLow[c], &mulHigh[c]
	for i, s := range src {
		dst[i] ^= lo[s&0xf] ^ hi[s>>4]
	}
}

// mulAddSliceScalar is the log/exp reference implementation of
// MulAddSlice, kept for differential fuzzing of the nibble-table kernel.
func mulAddSliceScalar(c byte, src, dst []byte) {
	if c == 0 {
		return
	}
	if c == 1 {
		for i, s := range src {
			dst[i] ^= s
		}
		return
	}
	logC := int(logTable[c])
	for i, s := range src {
		if s != 0 {
			dst[i] ^= expTable[logC+int(logTable[s])]
		}
	}
}

// AddSlice sets dst[i] ^= src[i] for all i, eight bytes per step.
func AddSlice(src, dst []byte) {
	n := len(src)
	if len(dst) < n {
		n = len(dst)
	}
	i := 0
	for ; i+8 <= n; i += 8 {
		binary.LittleEndian.PutUint64(dst[i:],
			binary.LittleEndian.Uint64(dst[i:])^binary.LittleEndian.Uint64(src[i:]))
	}
	for ; i < n; i++ {
		dst[i] ^= src[i]
	}
}

package gateway

import (
	"sync"

	"pandas/internal/wire"
)

// flight is one in-progress upstream fetch that any number of waiters
// share. done is closed exactly once, after cell/err are set; waiters
// read them only after observing the close, so no lock is needed on
// the read side.
type flight struct {
	done    chan struct{}
	cell    wire.Cell
	err     error
	waiters int // joined queries, including the initiator (shard lock)
}

// coShard is an independently locked slice of the in-flight table.
type coShard struct {
	mu      sync.Mutex
	flights map[Key]*flight
}

// coalescer is the singleflight layer: the first query for a missing
// cell creates a flight and triggers ONE upstream fetch; every
// concurrent query for the same cell joins that flight and shares the
// result. This is what keeps upstream fan-out proportional to distinct
// cells rather than to client count (Chaudhuri et al. 2024 show this
// dedup is what makes aggregate DAS bandwidth sublinear in clients).
type coalescer struct {
	shards []coShard
	mask   uint64
}

func newCoalescer(shards int) *coalescer {
	if shards <= 0 {
		shards = 16
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	c := &coalescer{shards: make([]coShard, n), mask: uint64(n - 1)}
	for i := range c.shards {
		c.shards[i].flights = make(map[Key]*flight)
	}
	return c
}

func (c *coalescer) shard(k Key) *coShard { return &c.shards[k.hash()&c.mask] }

// join returns the flight for the key, creating it when none is in
// progress. created reports whether THIS call must arrange the upstream
// fetch; waiters is the number of queries sharing the flight so far
// (1 for the creator). A waiter whose context expires simply abandons
// the flight — the fetch continues for the remaining waiters, so one
// impatient client never cancels work others depend on.
func (c *coalescer) join(k Key) (f *flight, created bool, waiters int) {
	s := c.shard(k)
	s.mu.Lock()
	f, ok := s.flights[k]
	if !ok {
		f = &flight{done: make(chan struct{})}
		s.flights[k] = f
		created = true
	}
	f.waiters++
	waiters = f.waiters
	s.mu.Unlock()
	return f, created, waiters
}

// complete resolves the flight: records the outcome, wakes every
// waiter, and removes the entry so later queries for the key start
// fresh (normally they hit the cache instead).
func (c *coalescer) complete(k Key, cell wire.Cell, err error) {
	s := c.shard(k)
	s.mu.Lock()
	f, ok := s.flights[k]
	if ok {
		delete(s.flights, k)
	}
	s.mu.Unlock()
	if !ok {
		return
	}
	f.cell, f.err = cell, err
	close(f.done)
}

// failAll resolves every in-flight fetch with err (gateway shutdown).
func (c *coalescer) failAll(err error) {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		flights := s.flights
		s.flights = make(map[Key]*flight)
		s.mu.Unlock()
		for _, f := range flights {
			f.err = err
			close(f.done)
		}
	}
}

// inflight returns the number of open flights (tests/metrics).
func (c *coalescer) inflight() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += len(s.flights)
		s.mu.Unlock()
	}
	return n
}

package gateway

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pandas/internal/blob"
	"pandas/internal/kzg"
	"pandas/internal/wire"
)

func testCell(id blob.CellID) wire.Cell {
	data := make([]byte, 64)
	for i := range data {
		data[i] = byte(int(id.Row)*31 + int(id.Col)*7 + i)
	}
	return wire.Cell{ID: id, Data: data}
}

// blockingUpstream serves testCell payloads but parks every fetch until
// release is closed, so tests control exactly when flights resolve.
type blockingUpstream struct {
	fetches atomic.Int64
	started chan struct{} // receives one token per fetch that has begun
	release chan struct{}
}

func newBlockingUpstream() *blockingUpstream {
	return &blockingUpstream{started: make(chan struct{}, 1024), release: make(chan struct{})}
}

func (u *blockingUpstream) FetchCell(ctx context.Context, slot uint64, id blob.CellID) (wire.Cell, error) {
	u.fetches.Add(1)
	u.started <- struct{}{}
	select {
	case <-u.release:
		return testCell(id), nil
	case <-ctx.Done():
		return wire.Cell{}, ctx.Err()
	}
}

// TestCoalescerSingleFetch is the core singleflight guarantee: N
// concurrent queries for the same missing cell trigger exactly ONE
// upstream fetch, and every waiter receives the same payload.
func TestCoalescerSingleFetch(t *testing.T) {
	up := newBlockingUpstream()
	g, err := New(Config{Upstream: up, Workers: 4, MaxPerClient: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	const n = 128
	id := blob.CellID{Row: 3, Col: 9}
	var wg sync.WaitGroup
	results := make([]wire.Cell, n)
	errs := make([]error, n)
	wg.Add(n)
	for i := 0; i < n; i++ {
		i := i
		go func() {
			defer wg.Done()
			results[i], errs[i] = g.Query(context.Background(), i, 1, id)
		}()
	}
	// Wait until every query is counted (past the cache check), then let
	// the single upstream fetch finish.
	for g.Stats().Queries < n {
		time.Sleep(100 * time.Microsecond)
	}
	close(up.release)
	wg.Wait()

	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("query %d: %v", i, errs[i])
		}
		if string(results[i].Data) != string(testCell(id).Data) {
			t.Fatalf("query %d: wrong payload", i)
		}
	}
	if got := up.fetches.Load(); got != 1 {
		t.Fatalf("upstream fetches = %d, want 1 (coalescing failed)", got)
	}
	st := g.Stats()
	if st.CacheHits+st.CoalescedJoins != n-1 {
		t.Fatalf("hits(%d)+joins(%d) = %d, want %d", st.CacheHits, st.CoalescedJoins,
			st.CacheHits+st.CoalescedJoins, n-1)
	}
	// A repeat query now comes from the cache, still one upstream fetch.
	if _, err := g.Query(context.Background(), 0, 1, id); err != nil {
		t.Fatal(err)
	}
	if got := up.fetches.Load(); got != 1 {
		t.Fatalf("repeat query refetched upstream: fetches = %d", got)
	}
}

// TestCoalescerCancellation: a waiter whose context expires mid-flight
// gets its context error, while the fetch continues and the remaining
// waiter still receives the cell.
func TestCoalescerCancellation(t *testing.T) {
	up := newBlockingUpstream()
	g, err := New(Config{Upstream: up, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	id := blob.CellID{Row: 1, Col: 1}
	ctx, cancel := context.WithCancel(context.Background())
	cancelled := make(chan error, 1)
	go func() {
		_, err := g.Query(ctx, 1, 1, id)
		cancelled <- err
	}()
	<-up.started // the flight's fetch is running
	patient := make(chan error, 1)
	var patientCell wire.Cell
	go func() {
		var err error
		patientCell, err = g.Query(context.Background(), 2, 1, id)
		patient <- err
	}()
	for g.Stats().Queries < 2 {
		time.Sleep(100 * time.Microsecond)
	}
	cancel()
	if err := <-cancelled; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter: err = %v, want context.Canceled", err)
	}
	close(up.release)
	if err := <-patient; err != nil {
		t.Fatalf("surviving waiter: %v", err)
	}
	if string(patientCell.Data) != string(testCell(id).Data) {
		t.Fatal("surviving waiter got wrong payload")
	}
	if got := up.fetches.Load(); got != 1 {
		t.Fatalf("fetches = %d, want 1", got)
	}
}

// TestOverloadQueueFull: with a single blocked worker and a depth-1
// queue, excess distinct-cell queries are rejected with an error that
// matches ErrOverloaded and carries a retry-after hint — never queued
// without bound.
func TestOverloadQueueFull(t *testing.T) {
	up := newBlockingUpstream()
	g, err := New(Config{
		Upstream: up, Workers: 1, QueueDepth: 1,
		RetryAfter: 7 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	const n = 6 // distinct cells; capacity is 2 (1 in worker + 1 queued)
	errc := make(chan error, n)
	for i := 0; i < n; i++ {
		id := blob.CellID{Row: uint16(i), Col: 0}
		go func() {
			_, err := g.Query(context.Background(), 1, 1, id)
			errc <- err
		}()
	}
	var rejected int
	var firstReject error
	deadline := time.After(2 * time.Second)
	for rejected < n-2 {
		select {
		case err := <-errc:
			if err == nil {
				t.Fatal("query succeeded while upstream is blocked")
			}
			if !errors.Is(err, ErrOverloaded) {
				t.Fatalf("rejection = %v, want errors.Is(ErrOverloaded)", err)
			}
			if firstReject == nil {
				firstReject = err
			}
			rejected++
		case <-deadline:
			t.Fatalf("only %d of %d rejections arrived", rejected, n-2)
		}
	}
	var ra *RetryAfterError
	if !errors.As(firstReject, &ra) || ra.After != 7*time.Millisecond {
		t.Fatalf("rejection = %v, want *RetryAfterError{7ms}", firstReject)
	}
	// Every query that returned ErrOverloaded is counted — coalesced
	// waiters on a rejected flight included, not just initiators.
	if got := g.Stats().Rejects; got != int64(rejected) {
		t.Fatalf("Stats.Rejects = %d, want %d (one per rejected query)", got, rejected)
	}
	close(up.release)
	for i := 0; i < 2; i++ {
		if err := <-errc; err != nil {
			t.Fatalf("admitted query failed after release: %v", err)
		}
	}
}

// TestPerClientFairness: one client cannot hold more than MaxPerClient
// admission slots; other clients are unaffected.
func TestPerClientFairness(t *testing.T) {
	up := newBlockingUpstream()
	g, err := New(Config{Upstream: up, Workers: 1, QueueDepth: 64, MaxPerClient: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	first := make(chan error, 1)
	go func() {
		_, err := g.Query(context.Background(), 7, 1, blob.CellID{Row: 0, Col: 0})
		first <- err
	}()
	<-up.started
	// Same client, second in-flight query: over budget.
	_, err = g.Query(context.Background(), 7, 1, blob.CellID{Row: 0, Col: 1})
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("same-client overflow: err = %v, want ErrOverloaded", err)
	}
	// A different client still gets through.
	other := make(chan error, 1)
	go func() {
		_, err := g.Query(context.Background(), 8, 1, blob.CellID{Row: 0, Col: 1})
		other <- err
	}()
	for g.Stats().UpstreamFetches < 1 {
		time.Sleep(100 * time.Microsecond)
	}
	close(up.release)
	if err := <-first; err != nil {
		t.Fatalf("client 7 first query: %v", err)
	}
	if err := <-other; err != nil {
		t.Fatalf("client 8 query: %v", err)
	}
	// Budget released: client 7 can query again.
	if _, err := g.Query(context.Background(), 7, 1, blob.CellID{Row: 0, Col: 0}); err != nil {
		t.Fatalf("client 7 after release: %v", err)
	}
}

// TestVerifyRejectsBadProof: with verification on, an upstream response
// whose proof does not match the slot commitment is reported as
// ErrBadProof and never cached.
func TestVerifyRejectsBadProof(t *testing.T) {
	var commit kzg.Commitment
	copy(commit[:], "gateway-test-blob")
	id := blob.CellID{Row: 2, Col: 5}
	good := testCell(id)
	good.Proof = kzg.Prove(commit, id, good.Data)

	var fetches atomic.Int64
	corrupt := true
	up := UpstreamFunc(func(ctx context.Context, slot uint64, cid blob.CellID) (wire.Cell, error) {
		fetches.Add(1)
		c := good
		if corrupt {
			c.Proof[0] ^= 0xff
		}
		return c, nil
	})
	g, err := New(Config{Upstream: up, VerifyProofs: true, VerifyWindow: 50 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	g.StartSlot(1, commit)

	if _, err := g.Query(context.Background(), 1, 1, id); !errors.Is(err, ErrBadProof) {
		t.Fatalf("corrupt proof: err = %v, want ErrBadProof", err)
	}
	st := g.Stats()
	if st.BadProofs != 1 || st.VerifiedCells != 0 {
		t.Fatalf("stats after bad proof: %+v", st)
	}
	// The bad cell must not have been cached: the next query re-fetches,
	// and a clean response verifies and is served.
	corrupt = false
	c, err := g.Query(context.Background(), 1, 1, id)
	if err != nil {
		t.Fatalf("clean retry: %v", err)
	}
	if string(c.Data) != string(good.Data) {
		t.Fatal("clean retry returned wrong payload")
	}
	if fetches.Load() != 2 {
		t.Fatalf("fetches = %d, want 2 (bad cell must not be cached)", fetches.Load())
	}
	if g.Stats().VerifiedCells != 1 {
		t.Fatalf("verified = %d, want 1", g.Stats().VerifiedCells)
	}
}

// TestWrongCellRejected: an upstream that answers a query with a
// DIFFERENT cell — one whose proof is valid for its own coordinates —
// must be rejected on both the unverified and verified paths, and
// nothing may be cached under the queried key.
func TestWrongCellRejected(t *testing.T) {
	asked := blob.CellID{Row: 1, Col: 2}
	other := blob.CellID{Row: 3, Col: 4}
	var commit kzg.Commitment
	copy(commit[:], "wrong-cell-blob")
	swap := UpstreamFunc(func(ctx context.Context, slot uint64, id blob.CellID) (wire.Cell, error) {
		c := testCell(other)
		c.Proof = kzg.Prove(commit, other, c.Data)
		return c, nil
	})
	for _, verify := range []bool{false, true} {
		g, err := New(Config{Upstream: swap, VerifyProofs: verify, VerifyWindow: 50 * time.Microsecond})
		if err != nil {
			t.Fatal(err)
		}
		g.StartSlot(1, commit)
		if _, qerr := g.Query(context.Background(), 1, 1, asked); !errors.Is(qerr, ErrWrongCell) {
			g.Close()
			t.Fatalf("verify=%v: err = %v, want ErrWrongCell", verify, qerr)
		}
		if _, ok := g.Cache().Get(Key{Slot: 1, ID: asked}); ok {
			g.Close()
			t.Fatalf("verify=%v: swapped cell was cached under the queried key", verify)
		}
		g.Close()
	}
}

// TestVerifyUsesRequestedCoordinates: an upstream that RELABELS a cell
// (cell.ID matches the query, but payload+proof belong to different
// coordinates) passes the ID check yet must fail verification — the
// verifier proves against the requested key, not upstream's claim.
func TestVerifyUsesRequestedCoordinates(t *testing.T) {
	asked := blob.CellID{Row: 1, Col: 2}
	other := blob.CellID{Row: 3, Col: 4}
	var commit kzg.Commitment
	copy(commit[:], "relabel-blob")
	up := UpstreamFunc(func(ctx context.Context, slot uint64, id blob.CellID) (wire.Cell, error) {
		c := testCell(other)
		c.Proof = kzg.Prove(commit, other, c.Data)
		c.ID = asked
		return c, nil
	})
	g, err := New(Config{Upstream: up, VerifyProofs: true, VerifyWindow: 50 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	g.StartSlot(1, commit)
	if _, qerr := g.Query(context.Background(), 1, 1, asked); !errors.Is(qerr, ErrBadProof) {
		t.Fatalf("relabeled cell: err = %v, want ErrBadProof", qerr)
	}
	if _, ok := g.Cache().Get(Key{Slot: 1, ID: asked}); ok {
		t.Fatal("relabeled cell was cached under the queried key")
	}
}

// TestUnknownSlot: verification enabled but no commitment registered
// for the queried slot.
func TestUnknownSlot(t *testing.T) {
	up := UpstreamFunc(func(ctx context.Context, slot uint64, id blob.CellID) (wire.Cell, error) {
		return testCell(id), nil
	})
	g, err := New(Config{Upstream: up, VerifyProofs: true})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if _, err := g.Query(context.Background(), 1, 99, blob.CellID{}); !errors.Is(err, ErrUnknownSlot) {
		t.Fatalf("err = %v, want ErrUnknownSlot", err)
	}
}

// TestSlotLifecycleEviction: StartSlot advances the retention window;
// cells from expired slots are evicted and must be re-fetched.
func TestSlotLifecycleEviction(t *testing.T) {
	var fetches atomic.Int64
	up := UpstreamFunc(func(ctx context.Context, slot uint64, id blob.CellID) (wire.Cell, error) {
		fetches.Add(1)
		return testCell(id), nil
	})
	g, err := New(Config{Upstream: up, RetainSlots: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	id := blob.CellID{Row: 4, Col: 4}
	g.StartSlot(1, kzg.Commitment{})
	if _, err := g.Query(context.Background(), 1, 1, id); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Query(context.Background(), 1, 1, id); err != nil {
		t.Fatal(err)
	}
	if fetches.Load() != 1 {
		t.Fatalf("fetches = %d, want 1 before eviction", fetches.Load())
	}
	g.StartSlot(2, kzg.Commitment{}) // slot 1 still retained
	if g.Cache().Len() != 1 {
		t.Fatalf("cache len = %d after StartSlot(2), want 1", g.Cache().Len())
	}
	g.StartSlot(3, kzg.Commitment{}) // retention window [2,3]: slot 1 evicted
	if g.Cache().Len() != 0 {
		t.Fatalf("cache len = %d after StartSlot(3), want 0", g.Cache().Len())
	}
	if _, err := g.Query(context.Background(), 1, 1, id); err != nil {
		t.Fatal(err)
	}
	if fetches.Load() != 2 {
		t.Fatalf("fetches = %d, want 2 after slot-boundary eviction", fetches.Load())
	}
}

// TestCloseFailsWaiters: Close resolves in-flight queries and later
// queries return ErrClosed; Close never hangs on a parked upstream.
func TestCloseFailsWaiters(t *testing.T) {
	up := newBlockingUpstream()
	g, err := New(Config{Upstream: up, Workers: 2, UpstreamTimeout: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	waiter := make(chan error, 1)
	go func() {
		_, err := g.Query(context.Background(), 1, 1, blob.CellID{Row: 0, Col: 0})
		waiter <- err
	}()
	<-up.started
	done := make(chan struct{})
	go func() { g.Close(); close(done) }()
	select {
	case err := <-waiter:
		if err == nil {
			t.Fatal("in-flight query succeeded across Close")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("in-flight query hung across Close")
	}
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Close hung")
	}
	if _, err := g.Query(context.Background(), 1, 1, blob.CellID{Row: 0, Col: 1}); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-Close query: err = %v, want ErrClosed", err)
	}
}

// TestQueryStress drives many clients over a small hot set with
// verification on — primarily a race-detector workload exercising
// cache, coalescer, verifier, and admission together.
func TestQueryStress(t *testing.T) {
	var commit kzg.Commitment
	copy(commit[:], "stress-blob")
	up := UpstreamFunc(func(ctx context.Context, slot uint64, id blob.CellID) (wire.Cell, error) {
		c := testCell(id)
		c.Proof = kzg.Prove(commit, id, c.Data)
		return c, nil
	})
	g, err := New(Config{Upstream: up, VerifyProofs: true, Workers: 8, MaxPerClient: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	const clients, queries, slots = 32, 40, 3
	for s := uint64(1); s <= slots; s++ {
		g.StartSlot(s, commit)
		var wg sync.WaitGroup
		wg.Add(clients)
		for c := 0; c < clients; c++ {
			c := c
			go func() {
				defer wg.Done()
				for q := 0; q < queries; q++ {
					id := blob.CellID{Row: uint16((c + q) % 8), Col: uint16(q % 8)}
					for {
						_, err := g.Query(context.Background(), c, s, id)
						if err == nil {
							break
						}
						var ra *RetryAfterError
						if errors.As(err, &ra) {
							time.Sleep(ra.After)
							continue
						}
						t.Errorf("client %d slot %d: %v", c, s, err)
						return
					}
				}
			}()
		}
		wg.Wait()
	}
	st := g.Stats()
	if st.BadProofs != 0 {
		t.Fatalf("bad proofs under stress: %+v", st)
	}
	if st.CacheHits == 0 || st.UpstreamFetches == 0 {
		t.Fatalf("implausible stress stats: %+v", st)
	}
}

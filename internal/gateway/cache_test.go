package gateway

import (
	"fmt"
	"sync"
	"testing"

	"pandas/internal/blob"
	"pandas/internal/kzg"
	"pandas/internal/wire"
)

func cellOfSize(id blob.CellID, n int) wire.Cell {
	return wire.Cell{ID: id, Data: make([]byte, n)}
}

const cellCost = 64 + kzg.ProofSize + entryOverhead // cost of a 64-byte cell

// TestCacheByteBudget: the cache is sized in bytes, evicts in LRU order
// when over budget, and a Get refreshes recency.
func TestCacheByteBudget(t *testing.T) {
	// Single shard so LRU order is globally observable; room for 3 cells.
	c := NewCache(3*cellCost, 1)
	key := func(i int) Key { return Key{Slot: 1, ID: blob.CellID{Row: uint16(i)}} }
	for i := 0; i < 3; i++ {
		c.Add(key(i), cellOfSize(key(i).ID, 64))
	}
	if c.Len() != 3 || c.Bytes() != 3*cellCost {
		t.Fatalf("len=%d bytes=%d, want 3/%d", c.Len(), c.Bytes(), 3*cellCost)
	}
	// Touch key(0): key(1) becomes the LRU victim.
	if _, ok := c.Get(key(0)); !ok {
		t.Fatal("key(0) missing")
	}
	c.Add(key(3), cellOfSize(key(3).ID, 64))
	if c.Len() != 3 {
		t.Fatalf("len=%d after eviction, want 3", c.Len())
	}
	if _, ok := c.Get(key(1)); ok {
		t.Fatal("LRU victim key(1) still cached")
	}
	for _, i := range []int{0, 2, 3} {
		if _, ok := c.Get(key(i)); !ok {
			t.Fatalf("key(%d) evicted unexpectedly", i)
		}
	}
	if c.Bytes() > 3*cellCost {
		t.Fatalf("bytes=%d exceeds budget %d", c.Bytes(), 3*cellCost)
	}
}

// TestCacheRefreshInPlace: re-adding a key updates bytes, not count.
func TestCacheRefreshInPlace(t *testing.T) {
	c := NewCache(1<<20, 1)
	k := Key{Slot: 1, ID: blob.CellID{Row: 1, Col: 2}}
	c.Add(k, cellOfSize(k.ID, 64))
	c.Add(k, cellOfSize(k.ID, 128))
	if c.Len() != 1 {
		t.Fatalf("len=%d, want 1", c.Len())
	}
	if want := int64(128 + kzg.ProofSize + entryOverhead); c.Bytes() != want {
		t.Fatalf("bytes=%d, want %d", c.Bytes(), want)
	}
	got, ok := c.Get(k)
	if !ok || len(got.Data) != 128 {
		t.Fatalf("refreshed entry: ok=%v len=%d", ok, len(got.Data))
	}
}

// TestCacheOversizedCell: a cell bigger than the whole shard budget is
// refused rather than evicting everything else.
func TestCacheOversizedCell(t *testing.T) {
	c := NewCache(2*cellCost, 1)
	small := Key{Slot: 1, ID: blob.CellID{Row: 1}}
	c.Add(small, cellOfSize(small.ID, 64))
	big := Key{Slot: 1, ID: blob.CellID{Row: 2}}
	c.Add(big, cellOfSize(big.ID, 4096))
	if _, ok := c.Get(big); ok {
		t.Fatal("oversized cell was cached")
	}
	if _, ok := c.Get(small); !ok {
		t.Fatal("oversized insert evicted resident entries")
	}
}

// TestCacheEvictSlots: the slot-lifecycle hook removes exactly the
// entries below the retention floor, across shards.
func TestCacheEvictSlots(t *testing.T) {
	c := NewCache(1<<20, 4)
	perSlot := 32
	for slot := uint64(1); slot <= 3; slot++ {
		for i := 0; i < perSlot; i++ {
			k := Key{Slot: slot, ID: blob.CellID{Row: uint16(i), Col: uint16(slot)}}
			c.Add(k, cellOfSize(k.ID, 64))
		}
	}
	if c.Len() != 3*perSlot {
		t.Fatalf("len=%d, want %d", c.Len(), 3*perSlot)
	}
	if removed := c.EvictSlots(2); removed != perSlot {
		t.Fatalf("EvictSlots(2) removed %d, want %d", removed, perSlot)
	}
	if c.Len() != 2*perSlot {
		t.Fatalf("len=%d after eviction, want %d", c.Len(), 2*perSlot)
	}
	for slot := uint64(1); slot <= 3; slot++ {
		k := Key{Slot: slot, ID: blob.CellID{Row: 0, Col: uint16(slot)}}
		_, ok := c.Get(k)
		if want := slot >= 2; ok != want {
			t.Fatalf("slot %d present=%v, want %v", slot, ok, want)
		}
	}
	if want := int64(2*perSlot) * cellCost; c.Bytes() != want {
		t.Fatalf("bytes=%d after eviction, want %d", c.Bytes(), want)
	}
}

// TestCacheConcurrent exercises the sharded paths under the race
// detector: concurrent Add/Get across slots interleaved with slot
// eviction must stay consistent.
func TestCacheConcurrent(t *testing.T) {
	c := NewCache(64<<10, 8)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for slot := uint64(1); slot <= 8; slot++ {
				for i := 0; i < 64; i++ {
					k := Key{Slot: slot, ID: blob.CellID{Row: uint16(i), Col: uint16(w)}}
					c.Add(k, cellOfSize(k.ID, 64))
					c.Get(k)
				}
				if w == 0 && slot > 2 {
					c.EvictSlots(slot - 2)
				}
			}
		}()
	}
	wg.Wait()
	c.EvictSlots(9)
	if c.Len() != 0 || c.Bytes() != 0 {
		t.Fatalf("after full eviction: len=%d bytes=%d, want 0/0", c.Len(), c.Bytes())
	}
}

func TestKeyHashSpreads(t *testing.T) {
	seen := make(map[uint64]int)
	for slot := uint64(0); slot < 4; slot++ {
		for r := 0; r < 16; r++ {
			for col := 0; col < 16; col++ {
				k := Key{Slot: slot, ID: blob.CellID{Row: uint16(r), Col: uint16(col)}}
				seen[k.hash()&15]++
			}
		}
	}
	if len(seen) != 16 {
		t.Fatalf("hash uses %d of 16 shards: %v", len(seen), seen)
	}
	for shard, n := range seen {
		if n < 16 {
			t.Fatal(fmt.Sprintf("shard %d badly underloaded: %d of 1024", shard, n))
		}
	}
}

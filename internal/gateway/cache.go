package gateway

import (
	"sync"

	"pandas/internal/blob"
	"pandas/internal/kzg"
	"pandas/internal/wire"
)

// Key identifies one cell of one slot — the unit of caching and request
// coalescing at the gateway.
type Key struct {
	Slot uint64
	ID   blob.CellID
}

// hash mixes the key into a shard selector (splitmix64-style finalizer:
// cheap, and adjacent slots/cells land on different shards).
func (k Key) hash() uint64 {
	x := k.Slot*0x9e3779b97f4a7c15 ^ uint64(k.ID.Row)<<16 ^ uint64(k.ID.Col)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	return x ^ x>>31
}

// entryOverhead approximates the bookkeeping bytes per cached cell
// (entry struct, map bucket share, list links) so the byte budget
// reflects real memory, not just payload bytes.
const entryOverhead = 96

// cacheEntry is one resident cell on a shard's LRU list.
type cacheEntry struct {
	key        Key
	cell       wire.Cell
	cost       int64
	prev, next *cacheEntry
}

// cacheShard is an independently locked LRU segment. head is the most
// recently used entry, tail the eviction candidate.
type cacheShard struct {
	mu    sync.Mutex
	items map[Key]*cacheEntry
	head  *cacheEntry
	tail  *cacheEntry
	bytes int64
	max   int64
}

// Cache is the gateway's hot-cell store: a sharded LRU sized in BYTES,
// not entries, so a budget set from available memory holds regardless
// of cell geometry. Shards keep the lock uncontended under the
// many-clients access pattern; per-slot eviction (EvictSlots) is wired
// to the slot lifecycle so stale slots never crowd out the live one.
type Cache struct {
	shards []cacheShard
	mask   uint64
}

// NewCache builds a cache with the given total byte budget spread over
// shards (rounded up to a power of two; 0 selects 16). maxBytes must be
// positive.
func NewCache(maxBytes int64, shards int) *Cache {
	if shards <= 0 {
		shards = 16
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	per := maxBytes / int64(n)
	if per < 1 {
		per = 1
	}
	c := &Cache{shards: make([]cacheShard, n), mask: uint64(n - 1)}
	for i := range c.shards {
		c.shards[i].items = make(map[Key]*cacheEntry)
		c.shards[i].max = per
	}
	return c
}

func (c *Cache) shard(k Key) *cacheShard { return &c.shards[k.hash()&c.mask] }

// Get returns the cached cell and promotes it to most-recently-used.
// The returned Cell's Data aliases the cached payload: gateway clients
// receive it read-only (the cache stores the upstream's bytes exactly
// once; see core.Store.Peek for the same contract one layer down).
func (c *Cache) Get(k Key) (wire.Cell, bool) {
	s := c.shard(k)
	s.mu.Lock()
	e, ok := s.items[k]
	if !ok {
		s.mu.Unlock()
		return wire.Cell{}, false
	}
	s.moveToFront(e)
	cell := e.cell
	s.mu.Unlock()
	return cell, true
}

// Add inserts (or refreshes) a cell, evicting least-recently-used
// entries while the shard exceeds its byte budget. A cell larger than
// the whole shard budget is not cached.
func (c *Cache) Add(k Key, cell wire.Cell) {
	cost := int64(len(cell.Data)) + kzg.ProofSize + entryOverhead
	s := c.shard(k)
	s.mu.Lock()
	if e, ok := s.items[k]; ok {
		s.bytes += cost - e.cost
		e.cell, e.cost = cell, cost
		s.moveToFront(e)
	} else if cost <= s.max {
		e := &cacheEntry{key: k, cell: cell, cost: cost}
		s.items[k] = e
		s.pushFront(e)
		s.bytes += cost
	}
	for s.bytes > s.max && s.tail != nil {
		s.remove(s.tail)
	}
	s.mu.Unlock()
}

// EvictSlots drops every cached cell whose slot is strictly below
// keepFrom; the slot lifecycle calls this when a slot ends so finalized
// data stops occupying the hot set. It returns the entries removed.
func (c *Cache) EvictSlots(keepFrom uint64) int {
	removed := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for e := s.tail; e != nil; {
			prev := e.prev
			if e.key.Slot < keepFrom {
				s.remove(e)
				removed++
			}
			e = prev
		}
		s.mu.Unlock()
	}
	return removed
}

// Len returns the resident entry count.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += len(s.items)
		s.mu.Unlock()
	}
	return n
}

// Bytes returns the resident byte total (payloads plus bookkeeping).
func (c *Cache) Bytes() int64 {
	var b int64
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		b += s.bytes
		s.mu.Unlock()
	}
	return b
}

// --- intrusive LRU list (shard lock held) ----------------------------

func (s *cacheShard) pushFront(e *cacheEntry) {
	e.prev = nil
	e.next = s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
	if s.tail == nil {
		s.tail = e
	}
}

func (s *cacheShard) unlink(e *cacheEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		s.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (s *cacheShard) moveToFront(e *cacheEntry) {
	if s.head == e {
		return
	}
	s.unlink(e)
	s.pushFront(e)
}

func (s *cacheShard) remove(e *cacheEntry) {
	s.unlink(e)
	delete(s.items, e.key)
	s.bytes -= e.cost
}

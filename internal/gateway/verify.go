package gateway

import (
	"time"

	"pandas/internal/blob"
	"pandas/internal/kzg"
	"pandas/internal/wire"
)

// verifyJob is one upstream response awaiting proof verification. done
// is invoked exactly once with the verdict, from the verifier
// goroutine.
type verifyJob struct {
	commit kzg.Commitment
	key    Key
	cell   wire.Cell
	done   func(ok bool)
}

// verifier amortizes KZG proof checks across queued responses: instead
// of verifying each upstream response on its own goroutine, responses
// queue into a bounded channel and a single collector drains them in
// batches — one pooled kzg scratch state (PR 2's allocation-free hash
// path) serves the whole batch, and per-batch bookkeeping (trace event,
// metric updates) is paid once per batch instead of once per cell.
type verifier struct {
	ch      chan verifyJob
	batch   int
	window  time.Duration
	stop    chan struct{}
	stopped chan struct{}
	// onBatch observes each completed batch: size and failure count.
	onBatch func(size, bad int)
}

func newVerifier(queue, batch int, window time.Duration, onBatch func(size, bad int)) *verifier {
	if queue < 1 {
		queue = 256
	}
	if batch < 1 {
		batch = 64
	}
	if window <= 0 {
		window = 200 * time.Microsecond
	}
	v := &verifier{
		ch:      make(chan verifyJob, queue),
		batch:   batch,
		window:  window,
		stop:    make(chan struct{}),
		stopped: make(chan struct{}),
		onBatch: onBatch,
	}
	go v.run()
	return v
}

// submit enqueues a response for verification. It blocks when the
// verify queue is full — backpressure propagates to the fetch workers
// rather than spawning goroutines or dropping verdicts.
func (v *verifier) submit(j verifyJob) { v.ch <- j }

// close drains outstanding jobs and stops the collector.
func (v *verifier) close() {
	close(v.stop)
	<-v.stopped
}

// run is the collector loop: block for the first job, then gather more
// until the batch is full or the coalescing window expires, then verify
// the whole batch with one pooled scratch pass.
func (v *verifier) run() {
	defer close(v.stopped)
	jobs := make([]verifyJob, 0, v.batch)
	timer := time.NewTimer(v.window)
	defer timer.Stop()
	for {
		jobs = jobs[:0]
		select {
		case j := <-v.ch:
			jobs = append(jobs, j)
		case <-v.stop:
			// Drain whatever is queued, then exit.
			for {
				select {
				case j := <-v.ch:
					v.flush([]verifyJob{j})
				default:
					return
				}
			}
		}
		// First job in hand: gather until batch-full or window expiry.
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(v.window)
	gather:
		for len(jobs) < v.batch {
			select {
			case j := <-v.ch:
				jobs = append(jobs, j)
			case <-timer.C:
				break gather
			case <-v.stop:
				break gather
			}
		}
		v.flush(jobs)
	}
}

// flush verifies one batch. Jobs may span slots (and therefore
// commitments); each commitment group goes through kzg.VerifyBatch as
// one run so the pooled scratch still serves every cell.
func (v *verifier) flush(jobs []verifyJob) {
	if len(jobs) == 0 {
		return
	}
	ids := make([]blob.CellID, 0, len(jobs))
	cells := make([][]byte, 0, len(jobs))
	proofs := make([]kzg.Proof, 0, len(jobs))
	ok := make([]bool, len(jobs))
	bad := 0
	for start := 0; start < len(jobs); {
		end := start + 1
		for end < len(jobs) && jobs[end].commit == jobs[start].commit {
			end++
		}
		group := jobs[start:end]
		ids, cells, proofs = ids[:0], cells[:0], proofs[:0]
		for _, j := range group {
			// Verify against the REQUESTED coordinates, never the
			// upstream-supplied cell.ID: a response carrying a different
			// cell (with a proof valid for that other cell) must fail here,
			// not pass and get cached under the queried key.
			ids = append(ids, j.key.ID)
			cells = append(cells, j.cell.Data)
			proofs = append(proofs, j.cell.Proof)
		}
		valid := kzg.VerifyBatch(group[0].commit, ids, cells, proofs, ok[start:end])
		bad += len(group) - valid
		start = end
	}
	if v.onBatch != nil {
		v.onBatch(len(jobs), bad)
	}
	for i, j := range jobs {
		j.done(ok[i])
	}
}

package gateway

import (
	"context"
	"sync/atomic"
	"testing"

	"pandas/internal/blob"
	"pandas/internal/kzg"
	"pandas/internal/wire"
)

// BenchmarkQueryCacheHit measures the fast path: a sharded cache lookup
// on the caller's goroutine, under parallel load.
func BenchmarkQueryCacheHit(b *testing.B) {
	up := UpstreamFunc(func(ctx context.Context, slot uint64, id blob.CellID) (wire.Cell, error) {
		return testCell(id), nil
	})
	g, err := New(Config{Upstream: up})
	if err != nil {
		b.Fatal(err)
	}
	defer g.Close()
	const hot = 256
	for i := 0; i < hot; i++ {
		id := blob.CellID{Row: uint16(i / 16), Col: uint16(i % 16)}
		if _, err := g.Query(context.Background(), 0, 1, id); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			id := blob.CellID{Row: uint16(i / 16 % 16), Col: uint16(i % 16)}
			if _, err := g.Query(context.Background(), i, 1, id); err != nil {
				b.Fatal(err)
			}
			i++
		}
	})
}

// BenchmarkQueryMissVerified measures the full miss path — admission,
// coalescer, worker fetch, batched proof verification, cache fill —
// with a distinct cell per iteration (worst case: nothing coalesces).
func BenchmarkQueryMissVerified(b *testing.B) {
	var commit kzg.Commitment
	copy(commit[:], "bench-blob")
	up := UpstreamFunc(func(ctx context.Context, slot uint64, id blob.CellID) (wire.Cell, error) {
		c := testCell(id)
		c.Proof = kzg.Prove(commit, id, c.Data)
		return c, nil
	})
	g, err := New(Config{Upstream: up, VerifyProofs: true, CacheBytes: 1 << 30, QueueDepth: 1 << 16})
	if err != nil {
		b.Fatal(err)
	}
	defer g.Close()
	g.StartSlot(1, commit)
	var seq atomic.Uint64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			n := seq.Add(1)
			id := blob.CellID{Row: uint16(n >> 16), Col: uint16(n)}
			if _, err := g.Query(context.Background(), int(n%64), 1, id); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkCacheAddGet measures the raw sharded-LRU cost.
func BenchmarkCacheAddGet(b *testing.B) {
	c := NewCache(64<<20, 16)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			k := Key{Slot: 1, ID: blob.CellID{Row: uint16(i % 512), Col: uint16(i % 61)}}
			if i%4 == 0 {
				c.Add(k, wire.Cell{ID: k.ID, Data: make([]byte, 64)})
			} else {
				c.Get(k)
			}
			i++
		}
	})
}

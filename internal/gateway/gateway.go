// Package gateway implements the sampling-as-a-service frontend: a
// concurrent query layer on top of a PANDAS full node that serves
// light-client data-availability queries of the form (slot, row, col)
// -> cell + proof.
//
// The paper's sampling role ends at full nodes; this package is the
// piece that faces "millions of users" (ROADMAP north star). Per-query
// upstream fan-out is the dominant cost at that scale (Król et al.
// 2023), so the gateway is built around making upstream work
// proportional to DISTINCT cells rather than to clients:
//
//   - a singleflight coalescer (coalesce.go) shares one upstream fetch
//     among every concurrent waiter on the same cell;
//   - a sharded hot-cell LRU cache (cache.go), sized in bytes and
//     evicted per slot, serves repeat queries without any upstream
//     traffic;
//   - a batched verifier (verify.go) amortizes KZG proof checks across
//     queued responses using the pooled scratch paths of internal/kzg;
//   - a bounded worker/admission layer (this file) enforces per-client
//     fairness and converts overload into an explicit retry-after
//     error instead of unbounded goroutines or silent queueing.
//
// Concurrency model: Query may be called from any number of client
// goroutines. Upstream fetches run on a fixed worker pool; proof
// verification runs on one collector goroutine; everything else happens
// on the caller's goroutine. The gateway runs in real time (it faces
// external clients), unlike the simnet protocol stack it fronts.
package gateway

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"pandas/internal/blob"
	"pandas/internal/kzg"
	"pandas/internal/obsv"
	"pandas/internal/wire"
)

// Errors returned by the gateway.
var (
	// ErrOverloaded is the admission-control rejection: the global queue
	// or the caller's per-client budget is full. Use errors.As with
	// *RetryAfterError to read the backoff hint.
	ErrOverloaded = errors.New("gateway: overloaded")
	// ErrClosed reports a query against a gateway that has shut down.
	ErrClosed = errors.New("gateway: closed")
	// ErrBadProof reports that the upstream response failed proof
	// verification; the cell is not cached and not returned.
	ErrBadProof = errors.New("gateway: cell proof verification failed")
	// ErrUnknownSlot reports a query for a slot the gateway has no
	// commitment for (verification enabled, StartSlot never called).
	ErrUnknownSlot = errors.New("gateway: unknown slot")
	// ErrWrongCell reports an upstream response whose cell ID does not
	// match the queried coordinates; the response is discarded before
	// verification or caching.
	ErrWrongCell = errors.New("gateway: upstream returned wrong cell")
)

// RetryAfterError is the concrete overload rejection: clients should
// back off for at least After before retrying. errors.Is(err,
// ErrOverloaded) matches it.
type RetryAfterError struct {
	After time.Duration
}

// Error implements error.
func (e *RetryAfterError) Error() string {
	return fmt.Sprintf("gateway: overloaded, retry after %v", e.After)
}

// Is makes errors.Is(err, ErrOverloaded) succeed.
func (e *RetryAfterError) Is(target error) bool { return target == ErrOverloaded }

// Upstream is the gateway's view of the full node (or node cluster)
// behind it. FetchCell is invoked once per coalesced cache miss, from a
// bounded worker pool; it must be safe for concurrent use.
type Upstream interface {
	FetchCell(ctx context.Context, slot uint64, id blob.CellID) (wire.Cell, error)
}

// UpstreamFunc adapts a function to the Upstream interface.
type UpstreamFunc func(ctx context.Context, slot uint64, id blob.CellID) (wire.Cell, error)

// FetchCell implements Upstream.
func (f UpstreamFunc) FetchCell(ctx context.Context, slot uint64, id blob.CellID) (wire.Cell, error) {
	return f(ctx, slot, id)
}

// Config parameterizes a Gateway. The zero value of every field has a
// usable default (see New); Upstream is the only required field.
type Config struct {
	// Upstream fetches cells the cache cannot serve. Required.
	Upstream Upstream
	// CacheBytes is the hot-cell cache budget in BYTES (default 8 MiB).
	CacheBytes int64
	// Shards is the cache/coalescer shard count (default 16).
	Shards int
	// Workers is the upstream fetch worker-pool size (default 32).
	Workers int
	// QueueDepth bounds the pending upstream-fetch queue; admission
	// rejects with *RetryAfterError beyond it (default 4096).
	QueueDepth int
	// MaxPerClient bounds one client's in-flight queries — the fairness
	// knob: no client can occupy more than this many admission slots
	// regardless of how fast it submits (default 64).
	MaxPerClient int
	// RetryAfter is the backoff hint carried by overload rejections
	// (default 50 ms).
	RetryAfter time.Duration
	// VerifyProofs enables batched KZG verification of upstream
	// responses against per-slot commitments registered via StartSlot.
	VerifyProofs bool
	// VerifyBatch is the max cells per verification batch (default 64).
	VerifyBatch int
	// VerifyWindow is how long the verifier waits to fill a batch after
	// the first response arrives (default 200 µs).
	VerifyWindow time.Duration
	// RetainSlots is how many trailing slots stay cached; StartSlot(s)
	// evicts everything below s-RetainSlots+1 (default 2).
	RetainSlots int
	// UpstreamTimeout bounds one upstream fetch (default 4 s — the
	// sampling deadline).
	UpstreamTimeout time.Duration
	// Recorder receives gateway trace events (query-received,
	// cache-hit, coalesced-join, batch-verify). Nil disables tracing.
	Recorder obsv.Recorder
	// Metrics exports gateway counters/histograms. Nil disables.
	Metrics *obsv.Registry
	// Node is the gateway's id in trace events (default -1: standalone).
	Node int32
	// Clock supplies trace timestamps (default: wall time since New).
	Clock func() time.Duration
}

// QueryLatencyBounds are histogram bucket upper bounds (seconds) for
// the gateway query path: cache hits are microseconds, coalesced
// upstream fetches single-digit milliseconds, retries beyond.
var QueryLatencyBounds = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2, 4,
}

// Stats is a point-in-time copy of the gateway's own counters. Each
// completed query is exactly one of CacheHits, CoalescedJoins, or
// UpstreamFetches (+UpstreamErrors/BadProofs on the failure paths), so
// Queries - CacheHits - CoalescedJoins == upstream-initiating queries.
type Stats struct {
	Queries         int64 // queries admitted past the cache/admission layer plus cache hits
	CacheHits       int64
	CoalescedJoins  int64
	UpstreamFetches int64
	UpstreamErrors  int64
	Rejects         int64 // queries returning ErrOverloaded (queue-full, client budget, or coalesced onto a rejected flight)
	BatchVerifies   int64
	VerifiedCells   int64
	BadProofs       int64
}

// Gateway is the sampling frontend. Create with New, feed the slot
// lifecycle with StartSlot, serve with Query, stop with Close.
type Gateway struct {
	cfg   Config
	cache *Cache
	co    *coalescer
	ver   *verifier
	tasks chan Key
	stopC chan struct{}
	wg    sync.WaitGroup

	start  time.Time
	closed atomic.Bool

	// commitments maps retained slots to their KZG commitments.
	cmu     sync.RWMutex
	commits map[uint64]kzg.Commitment

	// clients tracks per-client in-flight counts, sharded to keep the
	// admission path uncontended.
	clients [64]clientShard

	// own counters (always on) + optional registry mirrors.
	queries, hits, joins       atomic.Int64
	upstream, upErrs, rejects  atomic.Int64
	batches, verified, badPrf  atomic.Int64
	mQueries, mHits, mJoins    *obsv.Counter
	mUpstream, mUpErr, mReject *obsv.Counter
	mBatches, mVerified, mBad  *obsv.Counter
	mCacheBytes, mCacheCells   *obsv.Gauge
	mLatency                   *obsv.Histogram
}

type clientShard struct {
	mu sync.Mutex
	m  map[int]int
}

// New builds and starts a gateway (worker pool + verifier goroutines).
func New(cfg Config) (*Gateway, error) {
	if cfg.Upstream == nil {
		return nil, errors.New("gateway: config needs an Upstream")
	}
	if cfg.CacheBytes <= 0 {
		cfg.CacheBytes = 8 << 20
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 16
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 32
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 4096
	}
	if cfg.MaxPerClient <= 0 {
		cfg.MaxPerClient = 64
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = 50 * time.Millisecond
	}
	if cfg.RetainSlots <= 0 {
		cfg.RetainSlots = 2
	}
	if cfg.UpstreamTimeout <= 0 {
		cfg.UpstreamTimeout = 4 * time.Second
	}
	if cfg.Node == 0 {
		cfg.Node = -1
	}
	g := &Gateway{
		cfg:     cfg,
		cache:   NewCache(cfg.CacheBytes, cfg.Shards),
		co:      newCoalescer(cfg.Shards),
		tasks:   make(chan Key, cfg.QueueDepth),
		stopC:   make(chan struct{}),
		start:   time.Now(),
		commits: make(map[uint64]kzg.Commitment),
	}
	for i := range g.clients {
		g.clients[i].m = make(map[int]int)
	}
	if g.cfg.Clock == nil {
		g.cfg.Clock = func() time.Duration { return time.Since(g.start) }
	}
	if reg := cfg.Metrics; reg != nil {
		g.mQueries = reg.Counter("gateway_queries_total")
		g.mHits = reg.Counter("gateway_cache_hits_total")
		g.mJoins = reg.Counter("gateway_coalesced_joins_total")
		g.mUpstream = reg.Counter("gateway_upstream_fetches_total")
		g.mUpErr = reg.Counter("gateway_upstream_errors_total")
		g.mReject = reg.Counter("gateway_overload_rejects_total")
		g.mBatches = reg.Counter("gateway_batch_verifies_total")
		g.mVerified = reg.Counter("gateway_verified_cells_total")
		g.mBad = reg.Counter("gateway_bad_proof_total")
		g.mCacheBytes = reg.Gauge("gateway_cache_bytes")
		g.mCacheCells = reg.Gauge("gateway_cache_cells")
		g.mLatency = reg.Histogram("gateway_query_seconds", QueryLatencyBounds)
	}
	if cfg.VerifyProofs {
		g.ver = newVerifier(cfg.QueueDepth, cfg.VerifyBatch, cfg.VerifyWindow, func(size, bad int) {
			g.batches.Add(1)
			g.verified.Add(int64(size - bad))
			g.badPrf.Add(int64(bad))
			if g.mBatches != nil {
				g.mBatches.Inc()
				g.mVerified.Add(int64(size - bad))
				g.mBad.Add(int64(bad))
			}
			g.emit(obsv.Event{Kind: obsv.KindGatewayBatchVerify, Peer: -1,
				Count: int32(size), Aux: int64(bad)})
		})
	}
	g.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go g.worker()
	}
	return g, nil
}

// emit records a gateway trace event when tracing is enabled.
func (g *Gateway) emit(e obsv.Event) {
	if g.cfg.Recorder == nil {
		return
	}
	e.At = g.cfg.Clock()
	e.Node = g.cfg.Node
	g.cfg.Recorder.Record(e)
}

// StartSlot feeds the slot lifecycle: it registers the slot's
// commitment for verification and evicts cache entries (and retained
// commitments) older than the retention window. Call it when the
// fronted node starts a slot.
func (g *Gateway) StartSlot(slot uint64, commit kzg.Commitment) {
	g.cmu.Lock()
	g.commits[slot] = commit
	keepFrom := uint64(0)
	if slot >= uint64(g.cfg.RetainSlots) {
		keepFrom = slot - uint64(g.cfg.RetainSlots) + 1
	}
	for s := range g.commits {
		if s < keepFrom {
			delete(g.commits, s)
		}
	}
	g.cmu.Unlock()
	g.cache.EvictSlots(keepFrom)
	if g.mCacheBytes != nil {
		g.mCacheBytes.Set(g.cache.Bytes())
		g.mCacheCells.Set(int64(g.cache.Len()))
	}
}

// commitment returns the registered commitment for a slot.
func (g *Gateway) commitment(slot uint64) (kzg.Commitment, bool) {
	g.cmu.RLock()
	c, ok := g.commits[slot]
	g.cmu.RUnlock()
	return c, ok
}

// Query serves one light-client sampling query: (slot, row, col) ->
// cell + proof. client identifies the caller for fairness accounting.
//
// The fast path is a sharded cache lookup on the caller's goroutine; a
// miss goes through admission (bounded, fair), joins or creates a
// coalesced upstream fetch, and waits for the verified result. On
// overload the error matches errors.Is(err, ErrOverloaded) and carries
// a *RetryAfterError backoff hint.
func (g *Gateway) Query(ctx context.Context, client int, slot uint64, id blob.CellID) (wire.Cell, error) {
	if g.closed.Load() {
		return wire.Cell{}, ErrClosed
	}
	g.queries.Add(1)
	if g.mQueries != nil {
		g.mQueries.Inc()
	}
	g.emit(obsv.Event{Kind: obsv.KindGatewayQuery, Peer: int32(client),
		Slot: slot, Count: 1})
	var t0 time.Time
	if g.mLatency != nil {
		t0 = time.Now()
	}
	key := Key{Slot: slot, ID: id}
	if c, ok := g.cache.Get(key); ok {
		g.hits.Add(1)
		if g.mHits != nil {
			g.mHits.Inc()
		}
		g.emit(obsv.Event{Kind: obsv.KindGatewayCacheHit, Peer: int32(client), Slot: slot})
		if g.mLatency != nil {
			g.mLatency.Observe(time.Since(t0).Seconds())
		}
		return c, nil
	}
	if g.cfg.VerifyProofs {
		if _, ok := g.commitment(slot); !ok {
			return wire.Cell{}, fmt.Errorf("%w: %d", ErrUnknownSlot, slot)
		}
	}
	// Admission: per-client budget first (fairness), then the global
	// queue when this query must initiate a fetch.
	if !g.acquire(client) {
		return wire.Cell{}, g.reject()
	}
	defer g.release(client)

	f, created, waiters := g.co.join(key)
	if created {
		select {
		case g.tasks <- key:
		default:
			// Global queue full: resolve the flight we just created so
			// no waiter hangs, and reject this query.
			g.co.complete(key, wire.Cell{}, ErrOverloaded)
			<-f.done
			return wire.Cell{}, g.reject()
		}
	} else {
		g.joins.Add(1)
		if g.mJoins != nil {
			g.mJoins.Inc()
		}
		g.emit(obsv.Event{Kind: obsv.KindGatewayCoalesced, Peer: int32(client),
			Slot: slot, Aux: int64(waiters)})
	}
	select {
	case <-f.done:
		if f.err != nil {
			if errors.Is(f.err, ErrOverloaded) {
				// This waiter's query returns ErrOverloaded too, so it
				// counts as its own rejection — the initiator counted only
				// itself, not the flight's waiters.
				return wire.Cell{}, g.reject()
			}
			return wire.Cell{}, f.err
		}
		if g.mLatency != nil {
			g.mLatency.Observe(time.Since(t0).Seconds())
		}
		return f.cell, nil
	case <-ctx.Done():
		// Abandon the flight; it completes for the remaining waiters.
		return wire.Cell{}, ctx.Err()
	case <-g.stopC:
		// Shutdown racing this query: a flight created after Close's
		// sweep would otherwise never resolve.
		return wire.Cell{}, ErrClosed
	}
}

// reject counts and builds an overload rejection. Every query that
// returns ErrOverloaded goes through here exactly once — initiators and
// coalesced waiters alike — so Stats.Rejects is the true rejection rate.
func (g *Gateway) reject() error {
	g.rejects.Add(1)
	if g.mReject != nil {
		g.mReject.Inc()
	}
	return &RetryAfterError{After: g.cfg.RetryAfter}
}

// acquire reserves one in-flight slot for the client.
func (g *Gateway) acquire(client int) bool {
	s := &g.clients[uint(client)%uint(len(g.clients))]
	s.mu.Lock()
	ok := s.m[client] < g.cfg.MaxPerClient
	if ok {
		s.m[client]++
	}
	s.mu.Unlock()
	return ok
}

// release returns the client's slot.
func (g *Gateway) release(client int) {
	s := &g.clients[uint(client)%uint(len(g.clients))]
	s.mu.Lock()
	if n := s.m[client]; n <= 1 {
		delete(s.m, client)
	} else {
		s.m[client] = n - 1
	}
	s.mu.Unlock()
}

// worker drains the fetch queue: one upstream fetch per coalesced key,
// then hands the response to the batched verifier (or straight to the
// cache when verification is off).
func (g *Gateway) worker() {
	defer g.wg.Done()
	for {
		select {
		case key := <-g.tasks:
			g.runFetch(key)
		case <-g.stopC:
			return
		}
	}
}

func (g *Gateway) runFetch(key Key) {
	g.upstream.Add(1)
	if g.mUpstream != nil {
		g.mUpstream.Inc()
	}
	ctx, cancel := context.WithTimeout(context.Background(), g.cfg.UpstreamTimeout)
	cell, err := g.cfg.Upstream.FetchCell(ctx, key.Slot, key.ID)
	cancel()
	if err != nil {
		g.upErrs.Add(1)
		if g.mUpErr != nil {
			g.mUpErr.Inc()
		}
		g.co.complete(key, wire.Cell{}, err)
		return
	}
	// A response must carry the queried coordinates. Without this check a
	// malicious upstream could answer (r,c) with a different cell — and,
	// on the verified path, a proof valid for that OTHER cell — and have
	// it cached and served under the requested key. The verifier also
	// checks proofs against key.ID, but reject the swap on both paths.
	if cell.ID != key.ID {
		g.upErrs.Add(1)
		if g.mUpErr != nil {
			g.mUpErr.Inc()
		}
		g.co.complete(key, wire.Cell{}, fmt.Errorf("%w: asked %v, got %v (slot %d)",
			ErrWrongCell, key.ID, cell.ID, key.Slot))
		return
	}
	if !g.cfg.VerifyProofs {
		g.cache.Add(key, cell)
		g.co.complete(key, cell, nil)
		return
	}
	commit, ok := g.commitment(key.Slot)
	if !ok {
		g.co.complete(key, wire.Cell{}, fmt.Errorf("%w: %d", ErrUnknownSlot, key.Slot))
		return
	}
	g.ver.submit(verifyJob{commit: commit, key: key, cell: cell, done: func(valid bool) {
		if !valid {
			g.co.complete(key, wire.Cell{}, fmt.Errorf("%w: cell %v slot %d", ErrBadProof, key.ID, key.Slot))
			return
		}
		g.cache.Add(key, cell)
		g.co.complete(key, cell, nil)
	}})
}

// Stats returns a snapshot of the gateway's counters.
func (g *Gateway) Stats() Stats {
	return Stats{
		Queries:         g.queries.Load(),
		CacheHits:       g.hits.Load(),
		CoalescedJoins:  g.joins.Load(),
		UpstreamFetches: g.upstream.Load(),
		UpstreamErrors:  g.upErrs.Load(),
		Rejects:         g.rejects.Load(),
		BatchVerifies:   g.batches.Load(),
		VerifiedCells:   g.verified.Load(),
		BadProofs:       g.badPrf.Load(),
	}
}

// Cache exposes the hot-cell cache (tests, metrics).
func (g *Gateway) Cache() *Cache { return g.cache }

// Close stops the worker pool and verifier and fails every in-flight
// query with ErrClosed. Queries submitted after Close return ErrClosed.
func (g *Gateway) Close() {
	if !g.closed.CompareAndSwap(false, true) {
		return
	}
	close(g.stopC)
	g.wg.Wait()
	if g.ver != nil {
		// Drain queued verification jobs first: their done callbacks
		// resolve flights normally, then the sweep fails the rest.
		g.ver.close()
	}
	g.co.failAll(ErrClosed)
}

package wire

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"pandas/internal/blob"
	"pandas/internal/ids"
)

const testCellBytes = 64

func randCell(rng *rand.Rand) Cell {
	c := Cell{ID: blob.CellID{Row: uint16(rng.Intn(512)), Col: uint16(rng.Intn(512))}}
	c.Data = make([]byte, testCellBytes)
	rng.Read(c.Data)
	rng.Read(c.Proof[:])
	return c
}

func TestSeedRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := &Seed{
		Slot:    42,
		Builder: ids.NewTestIdentity(1).ID,
	}
	rng.Read(m.ProposerSig[:])
	rng.Read(m.Commitment[:])
	for i := 0; i < 10; i++ {
		m.Cells = append(m.Cells, randCell(rng))
	}
	m.Boost = []BoostEntry{
		{Line: blob.Line{Kind: blob.Row, Index: 7}, HolderRef: 3, Start: 0, Count: 12},
		{Line: blob.Line{Kind: blob.Col, Index: 500}, HolderRef: 90, Start: 256, Count: 8},
	}
	data, err := Encode(m, testCellBytes)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != m.WireSize(testCellBytes)-OverheadIPUDP {
		t.Fatalf("encoded %d bytes, WireSize-overhead %d", len(data), m.WireSize(testCellBytes)-OverheadIPUDP)
	}
	got, err := Decode(data, testCellBytes)
	if err != nil {
		t.Fatal(err)
	}
	s, ok := got.(*Seed)
	if !ok {
		t.Fatalf("decoded %T", got)
	}
	if s.Slot != m.Slot || s.Builder != m.Builder || s.ProposerSig != m.ProposerSig || s.Commitment != m.Commitment {
		t.Fatal("header fields mismatch")
	}
	if len(s.Cells) != len(m.Cells) {
		t.Fatalf("cells %d vs %d", len(s.Cells), len(m.Cells))
	}
	for i := range s.Cells {
		if s.Cells[i].ID != m.Cells[i].ID || !bytes.Equal(s.Cells[i].Data, m.Cells[i].Data) || s.Cells[i].Proof != m.Cells[i].Proof {
			t.Fatalf("cell %d mismatch", i)
		}
	}
	if len(s.Boost) != 2 || s.Boost[0] != m.Boost[0] || s.Boost[1] != m.Boost[1] {
		t.Fatalf("boost mismatch: %+v", s.Boost)
	}
}

func TestQueryRoundTrip(t *testing.T) {
	m := &Query{Slot: 7, Cells: []blob.CellID{{Row: 1, Col: 2}, {Row: 3, Col: 4}, {Row: 511, Col: 0}}}
	data, err := Encode(m, testCellBytes)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(data, testCellBytes)
	if err != nil {
		t.Fatal(err)
	}
	q := got.(*Query)
	if q.Slot != 7 || len(q.Cells) != 3 {
		t.Fatal("query fields mismatch")
	}
	for i := range q.Cells {
		if q.Cells[i] != m.Cells[i] {
			t.Fatalf("cell id %d mismatch", i)
		}
	}
}

func TestResponseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := &Response{Slot: 9}
	for i := 0; i < 5; i++ {
		m.Cells = append(m.Cells, randCell(rng))
	}
	data, err := Encode(m, testCellBytes)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(data, testCellBytes)
	if err != nil {
		t.Fatal(err)
	}
	r := got.(*Response)
	if r.Slot != 9 || len(r.Cells) != 5 {
		t.Fatal("response fields mismatch")
	}
	for i := range r.Cells {
		if r.Cells[i].ID != m.Cells[i].ID || !bytes.Equal(r.Cells[i].Data, m.Cells[i].Data) {
			t.Fatalf("cell %d mismatch", i)
		}
	}
}

func TestMetadataCellsEncodeAsZeros(t *testing.T) {
	m := &Response{Slot: 1, Cells: []Cell{{ID: blob.CellID{Row: 5, Col: 6}}}} // nil Data
	data, err := Encode(m, testCellBytes)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(data, testCellBytes)
	if err != nil {
		t.Fatal(err)
	}
	c := got.(*Response).Cells[0]
	if len(c.Data) != testCellBytes {
		t.Fatalf("decoded payload %d bytes", len(c.Data))
	}
	for _, b := range c.Data {
		if b != 0 {
			t.Fatal("metadata cell not zero-encoded")
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(nil, testCellBytes); !errors.Is(err, ErrTruncated) {
		t.Fatalf("nil: %v", err)
	}
	if _, err := Decode([]byte{99, 0, 0, 0, 0, 0, 0, 0, 0}, testCellBytes); !errors.Is(err, ErrBadType) {
		t.Fatalf("bad type: %v", err)
	}
	// Truncated query: claims 5 cells, provides none.
	m := &Query{Slot: 1, Cells: []blob.CellID{{Row: 1, Col: 1}, {Row: 2, Col: 2}, {Row: 3, Col: 3}, {Row: 4, Col: 4}, {Row: 5, Col: 5}}}
	data, err := Encode(m, testCellBytes)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(data[:14], testCellBytes); !errors.Is(err, ErrTruncated) {
		t.Fatalf("truncated: %v", err)
	}
}

func TestEncodeRejectsOversized(t *testing.T) {
	m := &Response{Slot: 1}
	for i := 0; i < 200; i++ { // 200 cells * 560+ bytes > 65507 with big cells
		c := Cell{ID: blob.CellID{Row: uint16(i)}}
		c.Data = make([]byte, 512)
		m.Cells = append(m.Cells, c)
	}
	if _, err := Encode(m, 512); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
}

func TestEncodeUnknownType(t *testing.T) {
	if _, err := Encode(fakeMsg{}, testCellBytes); !errors.Is(err, ErrBadType) {
		t.Fatalf("err = %v, want ErrBadType", err)
	}
}

type fakeMsg struct{}

func (fakeMsg) Type() MsgType    { return 99 }
func (fakeMsg) WireSize(int) int { return 0 }

func TestWireSizePaperCell(t *testing.T) {
	// With paper parameters a cell costs 4 + 512 + 48 = 564 bytes framed.
	if got := cellWire(512); got != 564 {
		t.Fatalf("cellWire(512) = %d", got)
	}
	// A single-cell query is tiny (the "lightweight direct exchange").
	q := &Query{Slot: 1, Cells: make([]blob.CellID, 1)}
	if got := q.WireSize(512); got != OverheadIPUDP+1+8+4+4 {
		t.Fatalf("query WireSize = %d", got)
	}
}

func TestQuickQueryRoundTrip(t *testing.T) {
	f := func(slot uint64, rows, cols []uint16) bool {
		n := min(len(rows), len(cols))
		m := &Query{Slot: slot}
		for i := 0; i < n; i++ {
			m.Cells = append(m.Cells, blob.CellID{Row: rows[i], Col: cols[i]})
		}
		data, err := Encode(m, testCellBytes)
		if err != nil {
			return errors.Is(err, ErrTooLarge) && len(m.Cells) > 16000
		}
		got, err := Decode(data, testCellBytes)
		if err != nil {
			return false
		}
		q := got.(*Query)
		if q.Slot != slot || len(q.Cells) != n {
			return false
		}
		for i := range q.Cells {
			if q.Cells[i] != m.Cells[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestVerifySeedSignatureFlow(t *testing.T) {
	// The proposer signs the builder binding; nodes verify it on receipt.
	// This test documents the signing flow end to end at the wire level.
	proposer := ids.NewTestIdentity(10)
	builder := ids.NewTestIdentity(11)
	binding := SeedSigningBytes(42, builder.ID)
	var sig [SigSize]byte
	copy(sig[:], proposer.Sign(binding))
	m := &Seed{Slot: 42, Builder: builder.ID, ProposerSig: sig}
	if !ids.VerifyFrom(proposer.Public, SeedSigningBytes(m.Slot, m.Builder), m.ProposerSig[:]) {
		t.Fatal("seed signature verification failed")
	}
	if ids.VerifyFrom(proposer.Public, SeedSigningBytes(43, m.Builder), m.ProposerSig[:]) {
		t.Fatal("signature valid for wrong slot")
	}
}

func BenchmarkEncodeResponse(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	m := &Response{Slot: 1}
	for i := 0; i < 50; i++ {
		m.Cells = append(m.Cells, randCell(rng))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Encode(m, testCellBytes); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeResponse(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	m := &Response{Slot: 1}
	for i := 0; i < 50; i++ {
		m.Cells = append(m.Cells, randCell(rng))
	}
	data, err := Encode(m, testCellBytes)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(data, testCellBytes); err != nil {
			b.Fatal(err)
		}
	}
}

func TestDecodeNeverPanicsOnRandomInput(t *testing.T) {
	// Robustness: arbitrary datagrams from the network must never panic
	// the decoder — they either parse or return an error.
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 5000; i++ {
		size := rng.Intn(2048)
		buf := make([]byte, size)
		rng.Read(buf)
		if size > 0 {
			buf[0] = byte(rng.Intn(5)) // bias toward valid type tags
		}
		_, _ = Decode(buf, testCellBytes)
	}
}

func TestDecodeTruncationSweep(t *testing.T) {
	// Every prefix of a valid message must decode cleanly or error —
	// never panic, never return a half-parsed success.
	rng := rand.New(rand.NewSource(100))
	m := &Seed{Slot: 5, Builder: ids.NewTestIdentity(1).ID}
	for i := 0; i < 6; i++ {
		m.Cells = append(m.Cells, randCell(rng))
	}
	m.Boost = []BoostEntry{{Line: blob.Line{Kind: blob.Row, Index: 1}, HolderRef: 2, Start: 3, Count: 4}}
	data, err := Encode(m, testCellBytes)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(data); cut++ {
		if msg, err := Decode(data[:cut], testCellBytes); err == nil {
			s, ok := msg.(*Seed)
			if !ok || len(s.Cells) > len(m.Cells) {
				t.Fatalf("cut %d produced inconsistent message", cut)
			}
		}
	}
}

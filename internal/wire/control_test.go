package wire

import (
	"errors"
	"reflect"
	"strings"
	"testing"
)

// controlMessages returns one populated instance of every swarm
// control/discovery message.
func controlMessages() []Message {
	return []Message{
		&Hello{Slot: 3, Nonce: 77, Index: 5, Ready: true, Known: 9,
			DataAddr: "127.0.0.1:40001", MetricsAddr: "127.0.0.1:40002"},
		&Hello{Nonce: 1, Index: 0, DataAddr: "127.0.0.1:40003"},
		&WorkerConfig{Nonce: 77, Index: 5, NumNodes: 64, Seed: -42,
			K: 8, Custody: 4, Samples: 6, CellBytes: 64, Redundancy: 4,
			SeedWaitMs: 400, DeadlineMs: 4000,
			Bootstrap: []PeerEntry{{Index: 0, Addr: "127.0.0.1:40010"}, {Index: 64, Addr: "127.0.0.1:40011"}}},
		&Start{Slot: 2, Nonce: 99},
		&Report{Slot: 2, Nonce: 100, Index: 5, HasSeed: true, Consolidated: true, Sampled: true,
			FirstSeedUs: 120_000, ConsolidatedUs: 900_000, SampledUs: 1_400_000,
			SeedCells: 64, FetchMsgs: 31, FetchBytes: 18_000, CorruptRejects: 1, Restarts: 2},
		&Report{Slot: 2, Nonce: 101, Index: 64, Builder: true, SeedCells: 1024,
			FirstSeedUs: -1, ConsolidatedUs: -1, SampledUs: -1},
		&Ack{Nonce: 100},
		&FindPeers{Nonce: 7, Index: 5, Addr: "127.0.0.1:40001"},
		&Peers{Nonce: 7, Entries: []PeerEntry{{Index: 0, Addr: "127.0.0.1:40010"},
			{Index: 1, Addr: "127.0.0.1:40012"}, {Index: 64, Addr: "127.0.0.1:40011"}}},
	}
}

func TestControlRoundTrip(t *testing.T) {
	for _, m := range controlMessages() {
		data, err := Encode(m, 0)
		if err != nil {
			t.Fatalf("%T: encode: %v", m, err)
		}
		if want := m.WireSize(0) - OverheadIPUDP; len(data) != want {
			t.Errorf("%T: encoded %d bytes, WireSize says %d", m, len(data), want)
		}
		got, err := Decode(data, 0)
		if err != nil {
			t.Fatalf("%T: decode: %v", m, err)
		}
		// Empty decoded slices come back non-nil with zero length; normalize.
		if wc, ok := got.(*WorkerConfig); ok && len(wc.Bootstrap) == 0 {
			wc.Bootstrap = nil
		}
		if p, ok := got.(*Peers); ok && len(p.Entries) == 0 {
			p.Entries = nil
		}
		if !reflect.DeepEqual(m, got) {
			t.Errorf("%T: round trip mismatch:\n want %+v\n got  %+v", m, m, got)
		}
	}
}

func TestControlTruncationRejected(t *testing.T) {
	for _, m := range controlMessages() {
		data, err := Encode(m, 0)
		if err != nil {
			t.Fatal(err)
		}
		for cut := 9; cut < len(data); cut++ {
			if _, err := Decode(data[:cut], 0); err == nil {
				t.Fatalf("%T: truncation to %d bytes accepted", m, cut)
			}
		}
	}
}

func TestControlAddrTooLong(t *testing.T) {
	long := strings.Repeat("x", MaxAddrLen+1)
	for _, m := range []Message{
		&Hello{DataAddr: long},
		&Hello{MetricsAddr: long},
		&FindPeers{Addr: long},
		&WorkerConfig{Bootstrap: []PeerEntry{{Addr: long}}},
		&Peers{Entries: []PeerEntry{{Addr: long}}},
	} {
		if _, err := Encode(m, 0); !errors.Is(err, ErrAddrTooLong) {
			t.Errorf("%T: oversized address: err = %v", m, err)
		}
	}
}

// TestControlIgnoresCellBytes pins that the control plane decodes
// identically regardless of the cellBytes the endpoint was configured
// with: control datagrams may arrive on the data socket.
func TestControlIgnoresCellBytes(t *testing.T) {
	m := &Hello{Nonce: 5, Index: 2, DataAddr: "127.0.0.1:1"}
	data, err := Encode(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(data, 64)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, got) {
		t.Fatalf("cellBytes-dependent decode: %+v", got)
	}
}

package wire

// Swarm control-plane and discovery messages. These ride the same
// type-byte + slot framing as the protocol messages (Seed/Query/Response)
// so one Decode call demultiplexes both planes:
//
//   - Hello/WorkerConfig/Start/Report/Ack run between a swarm supervisor
//     and its pandas-node worker processes: workers register (and
//     heartbeat) with Hello, the supervisor answers with the per-node
//     WorkerConfig, drives slots with Start, and harvests per-slot
//     outcomes with Report — all over UDP with nonce-matched
//     acknowledgements supplying the reliability UDP does not.
//   - FindPeers/Peers is the discv5-style discovery plane between
//     workers: a node announces its own (index, address) binding and
//     pulls the responder's known peer table, so the full table spreads
//     from a small bootstrap set instead of static configuration.
//
// None of these messages carry cells, so their codecs ignore the
// cellBytes parameter; the swarm control channel conventionally encodes
// and decodes with cellBytes 0.

import (
	"encoding/binary"
	"fmt"
)

// Control/discovery message types (the protocol plane uses 1-3).
const (
	TypeHello MsgType = iota + 4
	TypeConfig
	TypeStart
	TypeReport
	TypeAck
	TypeFindPeers
	TypePeers
)

// MaxAddrLen bounds an encoded transport address (uint8 length prefix).
const MaxAddrLen = 255

// MaxPeersPerMessage caps entries per Peers datagram; larger tables are
// chunked by the sender.
const MaxPeersPerMessage = 512

// ErrAddrTooLong is returned when encoding an address over MaxAddrLen.
var ErrAddrTooLong = fmt.Errorf("wire: address exceeds %d bytes", MaxAddrLen)

// PeerEntry binds a swarm peer index to its UDP data address.
type PeerEntry struct {
	Index uint32
	Addr  string // host:port
}

func peerEntryWire(e PeerEntry) int { return 4 + 1 + len(e.Addr) }

// Hello registers a worker with the supervisor and doubles as the
// liveness heartbeat: workers resend it periodically, so one idempotent
// message covers registration, readiness reporting, and failure
// detection. The supervisor answers every Hello with a WorkerConfig.
type Hello struct {
	Slot  uint64 // worker's current slot (0 before the first Start)
	Nonce uint64
	Index uint32
	Ready bool   // discovery complete: full peer table learned
	Known uint32 // peer-table entries discovered so far
	// DataAddr is the worker's bound protocol (transport.UDP) address.
	DataAddr string
	// MetricsAddr is the worker's obsv metrics HTTP address ("" if the
	// worker serves no metrics endpoint).
	MetricsAddr string
}

// Type implements Message.
func (*Hello) Type() MsgType { return TypeHello }

// WireSize implements Message.
func (m *Hello) WireSize(int) int {
	return OverheadIPUDP + 1 + 8 + 8 + 4 + 1 + 4 + 1 + len(m.DataAddr) + 1 + len(m.MetricsAddr)
}

// WorkerConfig is the supervisor's reply to a Hello: the per-node
// configuration a worker needs to participate — slot geometry, role
// (index NumNodes is the builder), shared seed, and the bootstrap peer
// set discovery starts from.
type WorkerConfig struct {
	Nonce      uint64 // echoes the Hello nonce
	Index      uint32
	NumNodes   uint32 // sampler/custodian count; the builder is index NumNodes
	Seed       int64
	K          uint16 // base matrix size (extended is 2K x 2K)
	Custody    uint16 // rows and columns per node
	Samples    uint16
	CellBytes  uint16
	Redundancy uint16
	SeedWaitMs uint32
	DeadlineMs uint32
	Bootstrap  []PeerEntry
}

// Type implements Message.
func (*WorkerConfig) Type() MsgType { return TypeConfig }

// WireSize implements Message.
func (m *WorkerConfig) WireSize(int) int {
	n := OverheadIPUDP + 1 + 8 + 8 + 4 + 4 + 8 + 5*2 + 4 + 4 + 2
	for _, e := range m.Bootstrap {
		n += peerEntryWire(e)
	}
	return n
}

// Start drives one slot: the supervisor sends it to every worker (nodes
// first, builder last) and retries until the worker echoes the nonce in
// an Ack. Duplicate Starts for the same slot are idempotent.
type Start struct {
	Slot  uint64
	Nonce uint64
}

// Type implements Message.
func (*Start) Type() MsgType { return TypeStart }

// WireSize implements Message.
func (m *Start) WireSize(int) int { return OverheadIPUDP + 1 + 8 + 8 }

// Report carries one worker's per-slot outcome back to the supervisor
// (the experiment harvest). Durations are microseconds measured from the
// worker's own StartSlot, matching the simnet's NodeOutcome semantics;
// -1 marks a phase that never completed.
type Report struct {
	Slot         uint64
	Nonce        uint64
	Index        uint32
	Builder      bool
	HasSeed      bool
	Consolidated bool
	Sampled      bool

	FirstSeedUs    int64
	ConsolidatedUs int64
	SampledUs      int64

	SeedCells      uint32
	FetchMsgs      uint32
	FetchBytes     uint64
	CorruptRejects uint32
	// Restarts is how many times this worker's process has been
	// relaunched by the supervisor (from the environment it passes down).
	Restarts uint32
}

// Type implements Message.
func (*Report) Type() MsgType { return TypeReport }

// WireSize implements Message.
func (m *Report) WireSize(int) int {
	return OverheadIPUDP + 1 + 8 + 8 + 4 + 1 + 3*8 + 4 + 4 + 8 + 4 + 4
}

// Ack acknowledges a Start or Report by echoing its nonce.
type Ack struct {
	Nonce uint64
}

// Type implements Message.
func (*Ack) Type() MsgType { return TypeAck }

// WireSize implements Message.
func (m *Ack) WireSize(int) int { return OverheadIPUDP + 1 + 8 + 8 }

// FindPeers asks a peer for its known peer table and simultaneously
// announces the sender's own (index, address) binding — so a restarted
// worker re-announcing to the swarm rebinds its index to the new socket
// everywhere it asks.
type FindPeers struct {
	Nonce uint64
	Index uint32 // sender's swarm index
	Addr  string // sender's data address
}

// Type implements Message.
func (*FindPeers) Type() MsgType { return TypeFindPeers }

// WireSize implements Message.
func (m *FindPeers) WireSize(int) int {
	return OverheadIPUDP + 1 + 8 + 8 + 4 + 1 + len(m.Addr)
}

// Peers answers FindPeers with the responder's known entries (chunked at
// MaxPeersPerMessage).
type Peers struct {
	Nonce   uint64
	Entries []PeerEntry
}

// Type implements Message.
func (*Peers) Type() MsgType { return TypePeers }

// WireSize implements Message.
func (m *Peers) WireSize(int) int {
	n := OverheadIPUDP + 1 + 8 + 8 + 2
	for _, e := range m.Entries {
		n += peerEntryWire(e)
	}
	return n
}

func appendAddr(buf []byte, addr string) ([]byte, error) {
	if len(addr) > MaxAddrLen {
		return nil, fmt.Errorf("%w: %q", ErrAddrTooLong, addr)
	}
	buf = append(buf, byte(len(addr)))
	return append(buf, addr...), nil
}

func appendPeerEntry(buf []byte, e PeerEntry) ([]byte, error) {
	buf = binary.BigEndian.AppendUint32(buf, e.Index)
	return appendAddr(buf, e.Addr)
}

// encodeControl serializes the swarm control/discovery messages. The
// slot header slot field is 0 for messages without slot semantics.
func encodeControl(m Message) ([]byte, error) {
	var buf []byte
	var err error
	switch v := m.(type) {
	case *Hello:
		buf = make([]byte, 0, v.WireSize(0)-OverheadIPUDP)
		buf = append(buf, byte(TypeHello))
		buf = binary.BigEndian.AppendUint64(buf, v.Slot)
		buf = binary.BigEndian.AppendUint64(buf, v.Nonce)
		buf = binary.BigEndian.AppendUint32(buf, v.Index)
		buf = append(buf, boolByte(v.Ready))
		buf = binary.BigEndian.AppendUint32(buf, v.Known)
		if buf, err = appendAddr(buf, v.DataAddr); err != nil {
			return nil, err
		}
		if buf, err = appendAddr(buf, v.MetricsAddr); err != nil {
			return nil, err
		}
	case *WorkerConfig:
		buf = make([]byte, 0, v.WireSize(0)-OverheadIPUDP)
		buf = append(buf, byte(TypeConfig))
		buf = binary.BigEndian.AppendUint64(buf, 0)
		buf = binary.BigEndian.AppendUint64(buf, v.Nonce)
		buf = binary.BigEndian.AppendUint32(buf, v.Index)
		buf = binary.BigEndian.AppendUint32(buf, v.NumNodes)
		buf = binary.BigEndian.AppendUint64(buf, uint64(v.Seed))
		buf = binary.BigEndian.AppendUint16(buf, v.K)
		buf = binary.BigEndian.AppendUint16(buf, v.Custody)
		buf = binary.BigEndian.AppendUint16(buf, v.Samples)
		buf = binary.BigEndian.AppendUint16(buf, v.CellBytes)
		buf = binary.BigEndian.AppendUint16(buf, v.Redundancy)
		buf = binary.BigEndian.AppendUint32(buf, v.SeedWaitMs)
		buf = binary.BigEndian.AppendUint32(buf, v.DeadlineMs)
		buf = binary.BigEndian.AppendUint16(buf, uint16(len(v.Bootstrap)))
		for _, e := range v.Bootstrap {
			if buf, err = appendPeerEntry(buf, e); err != nil {
				return nil, err
			}
		}
	case *Start:
		buf = make([]byte, 0, v.WireSize(0)-OverheadIPUDP)
		buf = append(buf, byte(TypeStart))
		buf = binary.BigEndian.AppendUint64(buf, v.Slot)
		buf = binary.BigEndian.AppendUint64(buf, v.Nonce)
	case *Report:
		buf = make([]byte, 0, v.WireSize(0)-OverheadIPUDP)
		buf = append(buf, byte(TypeReport))
		buf = binary.BigEndian.AppendUint64(buf, v.Slot)
		buf = binary.BigEndian.AppendUint64(buf, v.Nonce)
		buf = binary.BigEndian.AppendUint32(buf, v.Index)
		var flags byte
		if v.Builder {
			flags |= 1
		}
		if v.HasSeed {
			flags |= 2
		}
		if v.Consolidated {
			flags |= 4
		}
		if v.Sampled {
			flags |= 8
		}
		buf = append(buf, flags)
		buf = binary.BigEndian.AppendUint64(buf, uint64(v.FirstSeedUs))
		buf = binary.BigEndian.AppendUint64(buf, uint64(v.ConsolidatedUs))
		buf = binary.BigEndian.AppendUint64(buf, uint64(v.SampledUs))
		buf = binary.BigEndian.AppendUint32(buf, v.SeedCells)
		buf = binary.BigEndian.AppendUint32(buf, v.FetchMsgs)
		buf = binary.BigEndian.AppendUint64(buf, v.FetchBytes)
		buf = binary.BigEndian.AppendUint32(buf, v.CorruptRejects)
		buf = binary.BigEndian.AppendUint32(buf, v.Restarts)
	case *Ack:
		buf = make([]byte, 0, v.WireSize(0)-OverheadIPUDP)
		buf = append(buf, byte(TypeAck))
		buf = binary.BigEndian.AppendUint64(buf, 0)
		buf = binary.BigEndian.AppendUint64(buf, v.Nonce)
	case *FindPeers:
		buf = make([]byte, 0, v.WireSize(0)-OverheadIPUDP)
		buf = append(buf, byte(TypeFindPeers))
		buf = binary.BigEndian.AppendUint64(buf, 0)
		buf = binary.BigEndian.AppendUint64(buf, v.Nonce)
		buf = binary.BigEndian.AppendUint32(buf, v.Index)
		if buf, err = appendAddr(buf, v.Addr); err != nil {
			return nil, err
		}
	case *Peers:
		buf = make([]byte, 0, v.WireSize(0)-OverheadIPUDP)
		buf = append(buf, byte(TypePeers))
		buf = binary.BigEndian.AppendUint64(buf, 0)
		buf = binary.BigEndian.AppendUint64(buf, v.Nonce)
		buf = binary.BigEndian.AppendUint16(buf, uint16(len(v.Entries)))
		for _, e := range v.Entries {
			if buf, err = appendPeerEntry(buf, e); err != nil {
				return nil, err
			}
		}
	default:
		return nil, fmt.Errorf("%w: %T", ErrBadType, m)
	}
	return buf, nil
}

func boolByte(b bool) byte {
	if b {
		return 1
	}
	return 0
}

func (r *reader) uint64() (uint64, bool) {
	if len(r.buf) < 8 {
		return 0, false
	}
	v := binary.BigEndian.Uint64(r.buf[:8])
	r.buf = r.buf[8:]
	return v, true
}

func (r *reader) uint16() (uint16, bool) {
	if len(r.buf) < 2 {
		return 0, false
	}
	v := binary.BigEndian.Uint16(r.buf[:2])
	r.buf = r.buf[2:]
	return v, true
}

func (r *reader) byte() (byte, bool) {
	if len(r.buf) < 1 {
		return 0, false
	}
	v := r.buf[0]
	r.buf = r.buf[1:]
	return v, true
}

func (r *reader) addr() (string, bool) {
	n, ok := r.byte()
	if !ok || len(r.buf) < int(n) {
		return "", false
	}
	s := string(r.buf[:n])
	r.buf = r.buf[n:]
	return s, true
}

func (r *reader) peerEntry() (PeerEntry, bool) {
	var e PeerEntry
	idx, ok := r.uint32()
	if !ok {
		return e, false
	}
	e.Index = idx
	e.Addr, ok = r.addr()
	return e, ok
}

// decodeControl parses the swarm control/discovery message bodies.
func decodeControl(typ MsgType, slot uint64, r reader) (Message, error) {
	switch typ {
	case TypeHello:
		m := &Hello{Slot: slot}
		var ok bool
		if m.Nonce, ok = r.uint64(); !ok {
			return nil, ErrTruncated
		}
		if m.Index, ok = r.uint32(); !ok {
			return nil, ErrTruncated
		}
		f, ok := r.byte()
		if !ok {
			return nil, ErrTruncated
		}
		m.Ready = f != 0
		if m.Known, ok = r.uint32(); !ok {
			return nil, ErrTruncated
		}
		if m.DataAddr, ok = r.addr(); !ok {
			return nil, ErrTruncated
		}
		if m.MetricsAddr, ok = r.addr(); !ok {
			return nil, ErrTruncated
		}
		return m, nil
	case TypeConfig:
		m := &WorkerConfig{}
		var ok bool
		if m.Nonce, ok = r.uint64(); !ok {
			return nil, ErrTruncated
		}
		if m.Index, ok = r.uint32(); !ok {
			return nil, ErrTruncated
		}
		if m.NumNodes, ok = r.uint32(); !ok {
			return nil, ErrTruncated
		}
		seed, ok := r.uint64()
		if !ok {
			return nil, ErrTruncated
		}
		m.Seed = int64(seed)
		for _, dst := range []*uint16{&m.K, &m.Custody, &m.Samples, &m.CellBytes, &m.Redundancy} {
			if *dst, ok = r.uint16(); !ok {
				return nil, ErrTruncated
			}
		}
		if m.SeedWaitMs, ok = r.uint32(); !ok {
			return nil, ErrTruncated
		}
		if m.DeadlineMs, ok = r.uint32(); !ok {
			return nil, ErrTruncated
		}
		n, ok := r.uint16()
		if !ok {
			return nil, ErrTruncated
		}
		m.Bootstrap = make([]PeerEntry, 0, min(int(n), MaxPeersPerMessage))
		for i := 0; i < int(n); i++ {
			e, ok := r.peerEntry()
			if !ok {
				return nil, ErrTruncated
			}
			m.Bootstrap = append(m.Bootstrap, e)
		}
		return m, nil
	case TypeStart:
		m := &Start{Slot: slot}
		var ok bool
		if m.Nonce, ok = r.uint64(); !ok {
			return nil, ErrTruncated
		}
		return m, nil
	case TypeReport:
		m := &Report{Slot: slot}
		var ok bool
		if m.Nonce, ok = r.uint64(); !ok {
			return nil, ErrTruncated
		}
		if m.Index, ok = r.uint32(); !ok {
			return nil, ErrTruncated
		}
		f, ok := r.byte()
		if !ok {
			return nil, ErrTruncated
		}
		m.Builder = f&1 != 0
		m.HasSeed = f&2 != 0
		m.Consolidated = f&4 != 0
		m.Sampled = f&8 != 0
		for _, dst := range []*int64{&m.FirstSeedUs, &m.ConsolidatedUs, &m.SampledUs} {
			v, ok := r.uint64()
			if !ok {
				return nil, ErrTruncated
			}
			*dst = int64(v)
		}
		if m.SeedCells, ok = r.uint32(); !ok {
			return nil, ErrTruncated
		}
		if m.FetchMsgs, ok = r.uint32(); !ok {
			return nil, ErrTruncated
		}
		if m.FetchBytes, ok = r.uint64(); !ok {
			return nil, ErrTruncated
		}
		if m.CorruptRejects, ok = r.uint32(); !ok {
			return nil, ErrTruncated
		}
		if m.Restarts, ok = r.uint32(); !ok {
			return nil, ErrTruncated
		}
		return m, nil
	case TypeAck:
		m := &Ack{}
		var ok bool
		if m.Nonce, ok = r.uint64(); !ok {
			return nil, ErrTruncated
		}
		return m, nil
	case TypeFindPeers:
		m := &FindPeers{}
		var ok bool
		if m.Nonce, ok = r.uint64(); !ok {
			return nil, ErrTruncated
		}
		if m.Index, ok = r.uint32(); !ok {
			return nil, ErrTruncated
		}
		if m.Addr, ok = r.addr(); !ok {
			return nil, ErrTruncated
		}
		return m, nil
	case TypePeers:
		m := &Peers{}
		var ok bool
		if m.Nonce, ok = r.uint64(); !ok {
			return nil, ErrTruncated
		}
		n, ok := r.uint16()
		if !ok {
			return nil, ErrTruncated
		}
		m.Entries = make([]PeerEntry, 0, min(int(n), MaxPeersPerMessage))
		for i := 0; i < int(n); i++ {
			e, ok := r.peerEntry()
			if !ok {
				return nil, ErrTruncated
			}
			m.Entries = append(m.Entries, e)
		}
		return m, nil
	default:
		return nil, fmt.Errorf("%w: %d", ErrBadType, typ)
	}
}

// Package wire defines the PANDAS message formats, their binary codecs,
// and their wire-size accounting.
//
// PANDAS uses one-way, connectionless UDP messages with no session
// establishment. Three protocol messages exist (Section 6):
//
//   - Seed: builder -> node, carrying the node's initial cells for a slot,
//     the proposer's signature binding the builder identity, the blob
//     commitment, and optionally a consolidation-boost map;
//   - Query: node -> node, requesting a set of cells by ID;
//   - Response: node -> node, carrying requested cells.
//
// The same structs travel through both substrates: the in-memory
// simulator passes them by reference and charges Msg.WireSize() bytes,
// while the real UDP transport serializes them with Encode/Decode. In
// simulator "metadata mode" cell payloads are nil, but WireSize still
// charges the full payload so bandwidth accounting matches the paper.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"

	"pandas/internal/blob"
	"pandas/internal/ids"
	"pandas/internal/kzg"
)

// Overheads and limits.
const (
	// OverheadIPUDP is the per-datagram IPv4 + UDP header cost counted
	// against bandwidth.
	OverheadIPUDP = 28
	// SigSize is the ed25519 signature size (proposer binding).
	SigSize = 64
	// MaxCellsPerMessage caps cells per datagram so encoded messages stay
	// under the 64 KB UDP limit with default 560 B cells.
	MaxCellsPerMessage = 96
)

// MsgType tags wire messages.
type MsgType uint8

// Message types.
const (
	TypeSeed MsgType = iota + 1
	TypeQuery
	TypeResponse
)

// Errors returned by the codec.
var (
	ErrTruncated = errors.New("wire: truncated message")
	ErrBadType   = errors.New("wire: unknown message type")
	ErrTooLarge  = errors.New("wire: message exceeds datagram limit")
)

// Cell is one extended-matrix cell in flight: identifier, payload, and
// KZG proof. In the simulator's metadata mode Data is nil and Proof zero,
// but sizes are still charged in full.
type Cell struct {
	ID    blob.CellID
	Data  []byte
	Proof kzg.Proof
	// Tainted marks a cell corrupted by a simulated byzantine sender. It
	// is a simulator-only annotation — never encoded or decoded — that
	// stands in for the proof-verification failure a real deployment
	// would observe: in metadata mode there are no payload bytes to
	// corrupt, so the store rejects Tainted cells exactly where real mode
	// rejects cells whose KZG proof fails.
	Tainted bool
}

// Message is implemented by all PANDAS wire messages.
type Message interface {
	Type() MsgType
	// WireSize returns the number of bytes the message occupies on the
	// wire (including IP/UDP overhead) given the cell payload size.
	WireSize(cellBytes int) int
}

// cellWire returns the per-cell wire cost: 4-byte ID + payload + proof.
func cellWire(cellBytes int) int { return 4 + cellBytes + kzg.ProofSize }

// BoostEntry is one record of the consolidation-boost map CB: it tells
// the receiving node that the holder (identified by its rank within the
// deterministic holder list of the line) was seeded cells
// [Start, Start+Count) of the line. Holder ranks are resolvable locally
// because the assignment function is deterministic.
type BoostEntry struct {
	Line      blob.Line
	HolderRef uint16 // rank within the builder's sorted holder list
	Start     uint16 // first position along the line
	Count     uint16
}

// boostEntryWire is the encoded size of one boost entry:
// kind(1) + line index(2) + holder(2) + start(2) + count(2).
const boostEntryWire = 9

// Seed is the builder's seeding message for one slot (one of possibly
// several datagrams per node).
type Seed struct {
	Slot        uint64
	Builder     ids.NodeID
	ProposerSig [SigSize]byte
	Commitment  kzg.Commitment
	// ChunkIndex / ChunkCount let the receiver detect when its seed
	// batch is complete: consolidation and sampling start then (or on
	// the seed-wait timer if the tail chunk is lost).
	ChunkIndex uint16
	ChunkCount uint16
	Cells      []Cell
	Boost      []BoostEntry
}

// Type implements Message.
func (*Seed) Type() MsgType { return TypeSeed }

// WireSize implements Message.
func (m *Seed) WireSize(cellBytes int) int {
	return OverheadIPUDP + 1 + 8 + ids.IDSize + SigSize + kzg.CommitmentSize + 4 +
		4 + len(m.Cells)*cellWire(cellBytes) +
		4 + len(m.Boost)*boostEntryWire
}

// Query requests cells from a peer for a slot.
type Query struct {
	Slot  uint64
	Cells []blob.CellID
}

// Type implements Message.
func (*Query) Type() MsgType { return TypeQuery }

// WireSize implements Message.
func (m *Query) WireSize(cellBytes int) int {
	return OverheadIPUDP + 1 + 8 + 4 + len(m.Cells)*4
}

// Response carries cells answering a Query (possibly delayed: queried
// nodes buffer requests for cells they are assigned but have not yet
// received).
type Response struct {
	Slot  uint64
	Cells []Cell
}

// Type implements Message.
func (*Response) Type() MsgType { return TypeResponse }

// WireSize implements Message.
func (m *Response) WireSize(cellBytes int) int {
	return OverheadIPUDP + 1 + 8 + 4 + len(m.Cells)*cellWire(cellBytes)
}

// Encode serializes a message for UDP transport. cellBytes fixes the cell
// payload size (cells with nil Data are encoded as zero payloads).
func Encode(m Message, cellBytes int) ([]byte, error) {
	var buf []byte
	switch v := m.(type) {
	case *Seed:
		buf = make([]byte, 0, v.WireSize(cellBytes))
		buf = append(buf, byte(TypeSeed))
		buf = binary.BigEndian.AppendUint64(buf, v.Slot)
		buf = append(buf, v.Builder[:]...)
		buf = append(buf, v.ProposerSig[:]...)
		buf = append(buf, v.Commitment[:]...)
		buf = binary.BigEndian.AppendUint16(buf, v.ChunkIndex)
		buf = binary.BigEndian.AppendUint16(buf, v.ChunkCount)
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(v.Cells)))
		for _, c := range v.Cells {
			buf = appendCell(buf, c, cellBytes)
		}
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(v.Boost)))
		for _, b := range v.Boost {
			buf = append(buf, byte(b.Line.Kind))
			buf = binary.BigEndian.AppendUint16(buf, b.Line.Index)
			buf = binary.BigEndian.AppendUint16(buf, b.HolderRef)
			buf = binary.BigEndian.AppendUint16(buf, b.Start)
			buf = binary.BigEndian.AppendUint16(buf, b.Count)
		}
	case *Query:
		buf = make([]byte, 0, v.WireSize(cellBytes))
		buf = append(buf, byte(TypeQuery))
		buf = binary.BigEndian.AppendUint64(buf, v.Slot)
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(v.Cells)))
		for _, id := range v.Cells {
			buf = binary.BigEndian.AppendUint16(buf, id.Row)
			buf = binary.BigEndian.AppendUint16(buf, id.Col)
		}
	case *Response:
		buf = make([]byte, 0, v.WireSize(cellBytes))
		buf = append(buf, byte(TypeResponse))
		buf = binary.BigEndian.AppendUint64(buf, v.Slot)
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(v.Cells)))
		for _, c := range v.Cells {
			buf = appendCell(buf, c, cellBytes)
		}
	default:
		// Swarm control/discovery messages (see control.go).
		cbuf, err := encodeControl(m)
		if err != nil {
			return nil, err
		}
		buf = cbuf
	}
	if len(buf) > 65507 { // max UDP payload
		return nil, fmt.Errorf("%w: %d bytes", ErrTooLarge, len(buf))
	}
	return buf, nil
}

func appendCell(buf []byte, c Cell, cellBytes int) []byte {
	buf = binary.BigEndian.AppendUint16(buf, c.ID.Row)
	buf = binary.BigEndian.AppendUint16(buf, c.ID.Col)
	if c.Data == nil {
		buf = append(buf, make([]byte, cellBytes)...)
	} else {
		buf = append(buf, c.Data[:cellBytes]...)
	}
	buf = append(buf, c.Proof[:]...)
	return buf
}

// Decode parses a datagram produced by Encode.
func Decode(data []byte, cellBytes int) (Message, error) {
	if len(data) < 9 {
		return nil, ErrTruncated
	}
	typ := MsgType(data[0])
	slot := binary.BigEndian.Uint64(data[1:9])
	r := reader{buf: data[9:]}
	switch typ {
	case TypeSeed:
		m := &Seed{Slot: slot}
		if !r.bytes(m.Builder[:]) || !r.bytes(m.ProposerSig[:]) || !r.bytes(m.Commitment[:]) {
			return nil, ErrTruncated
		}
		if len(r.buf) < 4 {
			return nil, ErrTruncated
		}
		m.ChunkIndex = binary.BigEndian.Uint16(r.buf[0:2])
		m.ChunkCount = binary.BigEndian.Uint16(r.buf[2:4])
		r.buf = r.buf[4:]
		nCells, ok := r.uint32()
		if !ok {
			return nil, ErrTruncated
		}
		m.Cells = make([]Cell, 0, min(int(nCells), 4096))
		for i := 0; i < int(nCells); i++ {
			c, ok := r.cell(cellBytes)
			if !ok {
				return nil, ErrTruncated
			}
			m.Cells = append(m.Cells, c)
		}
		nBoost, ok := r.uint32()
		if !ok {
			return nil, ErrTruncated
		}
		m.Boost = make([]BoostEntry, 0, min(int(nBoost), 65536))
		for i := 0; i < int(nBoost); i++ {
			if len(r.buf) < boostEntryWire {
				return nil, ErrTruncated
			}
			var b BoostEntry
			b.Line.Kind = blob.LineKind(r.buf[0])
			b.Line.Index = binary.BigEndian.Uint16(r.buf[1:3])
			b.HolderRef = binary.BigEndian.Uint16(r.buf[3:5])
			b.Start = binary.BigEndian.Uint16(r.buf[5:7])
			b.Count = binary.BigEndian.Uint16(r.buf[7:9])
			r.buf = r.buf[boostEntryWire:]
			m.Boost = append(m.Boost, b)
		}
		return m, nil
	case TypeQuery:
		m := &Query{Slot: slot}
		nCells, ok := r.uint32()
		if !ok {
			return nil, ErrTruncated
		}
		m.Cells = make([]blob.CellID, 0, min(int(nCells), 65536))
		for i := 0; i < int(nCells); i++ {
			if len(r.buf) < 4 {
				return nil, ErrTruncated
			}
			m.Cells = append(m.Cells, blob.CellID{
				Row: binary.BigEndian.Uint16(r.buf[0:2]),
				Col: binary.BigEndian.Uint16(r.buf[2:4]),
			})
			r.buf = r.buf[4:]
		}
		return m, nil
	case TypeResponse:
		m := &Response{Slot: slot}
		nCells, ok := r.uint32()
		if !ok {
			return nil, ErrTruncated
		}
		m.Cells = make([]Cell, 0, min(int(nCells), 4096))
		for i := 0; i < int(nCells); i++ {
			c, ok := r.cell(cellBytes)
			if !ok {
				return nil, ErrTruncated
			}
			m.Cells = append(m.Cells, c)
		}
		return m, nil
	default:
		// Swarm control/discovery messages (see control.go).
		return decodeControl(typ, slot, r)
	}
}

// reader is a tiny sequential decoder.
type reader struct {
	buf []byte
}

func (r *reader) bytes(dst []byte) bool {
	if len(r.buf) < len(dst) {
		return false
	}
	copy(dst, r.buf[:len(dst)])
	r.buf = r.buf[len(dst):]
	return true
}

func (r *reader) uint32() (uint32, bool) {
	if len(r.buf) < 4 {
		return 0, false
	}
	v := binary.BigEndian.Uint32(r.buf[:4])
	r.buf = r.buf[4:]
	return v, true
}

func (r *reader) cell(cellBytes int) (Cell, bool) {
	need := 4 + cellBytes + kzg.ProofSize
	if len(r.buf) < need {
		return Cell{}, false
	}
	var c Cell
	c.ID.Row = binary.BigEndian.Uint16(r.buf[0:2])
	c.ID.Col = binary.BigEndian.Uint16(r.buf[2:4])
	c.Data = append([]byte(nil), r.buf[4:4+cellBytes]...)
	copy(c.Proof[:], r.buf[4+cellBytes:need])
	r.buf = r.buf[need:]
	return c, true
}

// SeedSigningBytes returns the canonical byte string the proposer signs to
// bind a builder's identity to a slot. Every seeding message carries this
// signature so nodes can accept blob data before the block arrives via
// gossip (Section 6.1).
func SeedSigningBytes(slot uint64, builder ids.NodeID) []byte {
	buf := make([]byte, 0, 13+ids.IDSize)
	buf = append(buf, "pandas-seed:"...)
	buf = binary.BigEndian.AppendUint64(buf, slot)
	buf = append(buf, builder[:]...)
	return buf
}

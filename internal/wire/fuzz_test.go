package wire

import (
	"bytes"
	"testing"

	"pandas/internal/blob"
)

// FuzzDecode exercises the datagram decoder with arbitrary inputs: it
// must never panic, and anything it accepts must re-encode to an
// equivalent message (decode/encode/decode fixpoint).
func FuzzDecode(f *testing.F) {
	// Seed corpus: one valid message of each type plus junk.
	q := &Query{Slot: 3, Cells: make([]blob.CellID, 2)}
	if data, err := Encode(q, 64); err == nil {
		f.Add(data)
	}
	r := &Response{Slot: 4, Cells: []Cell{{Data: make([]byte, 64)}}}
	if data, err := Encode(r, 64); err == nil {
		f.Add(data)
	}
	s := &Seed{Slot: 5, ChunkCount: 1}
	if data, err := Encode(s, 64); err == nil {
		f.Add(data)
	}
	// Swarm control/discovery messages (control.go).
	for _, m := range controlMessages() {
		if data, err := Encode(m, 64); err == nil {
			f.Add(data)
		}
	}
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3})

	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := Decode(data, 64)
		if err != nil {
			return
		}
		re, err := Encode(msg, 64)
		if err != nil {
			// Oversized reconstructions can legitimately exceed the
			// datagram cap; anything else is a bug.
			return
		}
		msg2, err := Decode(re, 64)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		re2, err := Encode(msg2, 64)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(re, re2) {
			t.Fatal("encode/decode not a fixpoint")
		}
	})
}

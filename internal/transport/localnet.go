package transport

import (
	"fmt"
	"time"

	"pandas/internal/assign"
	"pandas/internal/core"
	"pandas/internal/ids"
	"pandas/internal/wire"
)

// Localnet is a real-UDP PANDAS deployment on the loopback interface: N
// nodes plus one builder, each with its own socket and event loop. It is
// the repository's stand-in for the paper's 1,000-process cluster
// deployment and powers the localnet example and the cross-validation
// test.
type Localnet struct {
	Cfg     core.Config
	Table   *core.Table
	Nodes   []*core.Node
	Builder *core.Builder

	endpoints []*UDP // nodes 0..N-1, builder at index N
	proposer  *ids.Identity
}

// NewLocalnet binds N node endpoints and one builder endpoint on
// 127.0.0.1 and wires the protocol. Real payloads are used: the builder
// must be given blob data via PrepareBlob before the first slot (done
// here with deterministic filler).
func NewLocalnet(cfg core.Config, n int, seed int64) (*Localnet, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg.RealPayloads = true
	ln := &Localnet{Cfg: cfg}

	nodeIDs := make([]ids.NodeID, n)
	for i := range nodeIDs {
		nodeIDs[i] = ids.NewTestIdentity(seed<<16 + int64(i)).ID
	}
	var epochSeed assign.Seed
	epochSeed[0] = byte(seed)
	epochSeed[1] = byte(seed >> 8)
	table, err := core.NewTable(cfg.Assign, epochSeed, nodeIDs)
	if err != nil {
		return nil, err
	}
	ln.Table = table

	// Bind all endpoints first so every peer table is complete.
	addrs := make([]string, n+1)
	for i := 0; i <= n; i++ {
		ep, err := NewUDP(i, "127.0.0.1:0", cfg.Blob.CellBytes)
		if err != nil {
			ln.Close()
			return nil, err
		}
		ln.endpoints = append(ln.endpoints, ep)
		addrs[i] = ep.Addr()
	}
	for _, ep := range ln.endpoints {
		if err := ep.SetPeers(addrs); err != nil {
			ln.Close()
			return nil, err
		}
	}

	proposer, err := ids.NewIdentity()
	if err != nil {
		ln.Close()
		return nil, fmt.Errorf("transport: proposer identity: %w", err)
	}
	ln.proposer = proposer

	// Nodes.
	for i := 0; i < n; i++ {
		node := core.NewNode(cfg, i, table, ln.endpoints[i], seed^int64(i*7919))
		node.SetSeedVerification(proposer.Public)
		ln.Nodes = append(ln.Nodes, node)
		ln.endpoints[i].Start(func(from, size int, payload any) {
			node.HandleMessage(from, size, payload)
		})
	}

	// Builder.
	builderID := ids.NewTestIdentity(seed<<16 + int64(n) + 3).ID
	builder := core.NewBuilder(cfg, n, builderID, table, ln.endpoints[n], seed+5)
	builder.SetProposerSigner(func(slot uint64) [wire.SigSize]byte {
		var sig [wire.SigSize]byte
		copy(sig[:], proposer.Sign(wire.SeedSigningBytes(slot, builderID)))
		return sig
	})
	ln.Builder = builder
	ln.endpoints[n].Start(func(from, size int, payload any) {})

	// Real data plane: load deterministic filler layer-2 data.
	data := make([]byte, cfg.Blob.BlobBytes())
	for i := range data {
		data[i] = byte(i*2654435761 + 17)
	}
	if err := builder.PrepareBlob(data); err != nil {
		ln.Close()
		return nil, err
	}
	return ln, nil
}

// RunSlot starts a slot on every node, triggers seeding, and waits (real
// time) until all nodes finish sampling or the timeout expires. It
// returns per-node sampling durations measured from the seeding trigger
// (negative = did not finish).
func (ln *Localnet) RunSlot(slot uint64, timeout time.Duration) ([]time.Duration, error) {
	type ack struct{}
	started := make(chan ack, len(ln.Nodes))
	for i, node := range ln.Nodes {
		node := node
		ln.endpoints[i].Run(func() {
			node.StartSlot(slot)
			started <- ack{}
		})
	}
	for range ln.Nodes {
		<-started
	}

	begin := time.Now()
	seeded := make(chan ack, 1)
	bIdx := len(ln.Nodes)
	ln.endpoints[bIdx].Run(func() {
		ln.Builder.SeedSlot(slot)
		seeded <- ack{}
	})
	<-seeded

	deadline := time.After(timeout)
	ticker := time.NewTicker(20 * time.Millisecond)
	defer ticker.Stop()
	for {
		select {
		case <-deadline:
			return ln.collect(begin), nil
		case <-ticker.C:
			if ln.allSampled() {
				return ln.collect(begin), nil
			}
		}
	}
}

// allSampled polls node completion on each node's own event loop.
func (ln *Localnet) allSampled() bool {
	done := make(chan bool, len(ln.Nodes))
	for i, node := range ln.Nodes {
		node := node
		ln.endpoints[i].Run(func() { done <- node.Metrics().Sampled })
	}
	for range ln.Nodes {
		if !<-done {
			return false
		}
	}
	return true
}

func (ln *Localnet) collect(begin time.Time) []time.Duration {
	type sample struct {
		i int
		d time.Duration
	}
	ch := make(chan sample, len(ln.Nodes))
	for i, node := range ln.Nodes {
		i, node := i, node
		ln.endpoints[i].Run(func() {
			d := time.Duration(-1)
			if node.Metrics().Sampled {
				// Node clocks are per-endpoint; convert via wall time.
				d = time.Since(begin) - (node.Transport().Now() - node.Metrics().SampledAt)
			}
			ch <- sample{i: i, d: d}
		})
	}
	out := make([]time.Duration, len(ln.Nodes))
	for range ln.Nodes {
		s := <-ch
		out[s.i] = s.d
	}
	return out
}

// Close shuts down every endpoint.
func (ln *Localnet) Close() {
	for _, ep := range ln.endpoints {
		if ep != nil {
			_ = ep.Close()
		}
	}
}

package transport

import (
	"net"
	"testing"
	"time"

	"pandas/internal/assign"
	"pandas/internal/blob"
	"pandas/internal/core"
	"pandas/internal/wire"
)

func TestUDPEndpointRoundTrip(t *testing.T) {
	a, err := NewUDP(0, "127.0.0.1:0", 64)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := NewUDP(1, "127.0.0.1:0", 64)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	addrs := []string{a.Addr(), b.Addr()}
	if err := a.SetPeers(addrs); err != nil {
		t.Fatal(err)
	}
	if err := b.SetPeers(addrs); err != nil {
		t.Fatal(err)
	}

	got := make(chan *wire.Query, 1)
	b.Start(func(from, size int, payload any) {
		if from != 0 {
			t.Errorf("from = %d", from)
		}
		if q, ok := payload.(*wire.Query); ok {
			got <- q
		}
	})
	a.Start(func(from, size int, payload any) {})

	q := &wire.Query{Slot: 9, Cells: []blob.CellID{{Row: 1, Col: 2}}}
	a.Send(1, q.WireSize(64), q)
	select {
	case m := <-got:
		if m.Slot != 9 || len(m.Cells) != 1 || m.Cells[0] != q.Cells[0] {
			t.Fatalf("decoded %+v", m)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("message never arrived")
	}
}

func TestUDPAfterRunsOnEventLoop(t *testing.T) {
	a, err := NewUDP(0, "127.0.0.1:0", 64)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	a.Start(func(from, size int, payload any) {})
	fired := make(chan time.Duration, 1)
	start := time.Now()
	a.After(50*time.Millisecond, func() { fired <- time.Since(start) })
	select {
	case d := <-fired:
		if d < 40*time.Millisecond {
			t.Fatalf("fired too early: %v", d)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("timer never fired")
	}
}

func TestUDPIgnoresUnknownSendersAndGarbage(t *testing.T) {
	a, err := NewUDP(0, "127.0.0.1:0", 64)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if err := a.SetPeers([]string{a.Addr()}); err != nil {
		t.Fatal(err)
	}
	received := make(chan struct{}, 1)
	a.Start(func(from, size int, payload any) { received <- struct{}{} })
	// Garbage datagram from a known sender: must be dropped by the codec.
	if udpAddr, ok := a.conn.LocalAddr().(*net.UDPAddr); ok {
		if _, err := a.conn.WriteToUDP([]byte{0xFF, 1, 2}, udpAddr); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case <-received:
		t.Fatal("garbage delivered")
	case <-time.After(100 * time.Millisecond):
	}
}

func TestUDPCloseIdempotent(t *testing.T) {
	a, err := NewUDP(0, "127.0.0.1:0", 64)
	if err != nil {
		t.Fatal(err)
	}
	a.Start(func(from, size int, payload any) {})
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != ErrClosed {
		t.Fatalf("second close err = %v", err)
	}
}

// TestLocalnetSlotEndToEnd runs a REAL slot over loopback UDP sockets:
// real payloads, erasure reconstruction, commitment verification, and
// proposer signatures — the repository's equivalent of the paper's
// cluster deployment (scaled down).
func TestLocalnetSlotEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time UDP test")
	}
	// A dense small geometry: 16x16 extended matrix, 4 rows + 4 cols per
	// node, so 16 nodes give every line ~4 holders.
	cfg := core.TestConfig()
	cfg.Blob = blob.Params{K: 8, CellBytes: 64, ProofBytes: 48}
	cfg.Assign = assign.Params{Rows: 4, Cols: 4, N: 16}
	cfg.Samples = 6
	ln, err := NewLocalnet(cfg, 16, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	times, err := ln.RunSlot(1, 8*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	incomplete := 0
	for i, d := range times {
		if d < 0 {
			incomplete++
			t.Logf("node %d did not finish sampling", i)
		}
	}
	if incomplete > 1 {
		t.Fatalf("%d of %d nodes did not finish sampling", incomplete, len(times))
	}
	// Verify a node actually holds verified custody payloads.
	node := ln.Nodes[0]
	a := ln.Table.Assignment(0)
	l := a.Lines()[0]
	count := node.Store().LineCount(l)
	if count < cfg.Blob.N() {
		t.Fatalf("node 0 line %v incomplete: %d/%d", l, count, cfg.Blob.N())
	}
}

// TestSetPeersRebindConsistency is the regression test for the
// stale-entry hazard: after the peer table shrinks or an index is
// rebound to a new address, datagrams from the OLD address must no
// longer resolve (and certainly not to the wrong index), while the new
// binding must resolve immediately — even with the receive loop live.
func TestSetPeersRebindConsistency(t *testing.T) {
	a, err := NewUDP(0, "127.0.0.1:0", 64)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	// Two sender sockets: old and new homes for peer index 1.
	oldHome, err := NewUDP(1, "127.0.0.1:0", 64)
	if err != nil {
		t.Fatal(err)
	}
	defer oldHome.Close()
	newHome, err := NewUDP(1, "127.0.0.1:0", 64)
	if err != nil {
		t.Fatal(err)
	}
	defer newHome.Close()

	from := make(chan int, 4)
	a.Start(func(f, size int, payload any) { from <- f })

	send := func(src *UDP) {
		q := &wire.Query{Slot: 1}
		src.Send(0, q.WireSize(64), q)
	}
	wire3 := []string{a.Addr(), oldHome.Addr(), newHome.Addr()}
	for _, src := range []*UDP{oldHome, newHome} {
		if err := src.SetPeers(wire3); err != nil {
			t.Fatal(err)
		}
	}

	// Initially index 1 lives at oldHome; index 2 at newHome.
	if err := a.SetPeers(wire3); err != nil {
		t.Fatal(err)
	}
	send(oldHome)
	if got := <-from; got != 1 {
		t.Fatalf("before rebind: from = %d, want 1", got)
	}

	// Rebind: table SHRINKS to two entries and index 1 moves to
	// newHome's address. The old address must go stale atomically.
	if err := a.SetPeers([]string{a.Addr(), newHome.Addr()}); err != nil {
		t.Fatal(err)
	}
	send(newHome)
	if got := <-from; got != 1 {
		t.Fatalf("after rebind: from = %d, want 1", got)
	}
	send(oldHome) // stale sender: must be dropped
	select {
	case got := <-from:
		t.Fatalf("stale address delivered as index %d", got)
	case <-time.After(150 * time.Millisecond):
	}
}

func TestAddPeerGrowAndRebind(t *testing.T) {
	a, err := NewUDP(0, "127.0.0.1:0", 64)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if err := a.SetPeers([]string{a.Addr(), ""}); err != nil {
		t.Fatal(err)
	}
	if got := a.Known(); got != 1 {
		t.Fatalf("known = %d, want 1", got)
	}
	// Fill the sparse slot, then grow past the table end.
	if err := a.AddPeer(1, "127.0.0.1:40100"); err != nil {
		t.Fatal(err)
	}
	if err := a.AddPeer(5, "127.0.0.1:40101"); err != nil {
		t.Fatal(err)
	}
	peers := a.Peers()
	if len(peers) != 6 || peers[1] != "127.0.0.1:40100" || peers[5] != "127.0.0.1:40101" {
		t.Fatalf("peers = %v", peers)
	}
	// Rebind index 1 to a fresh address: the old one must vanish.
	if err := a.AddPeer(1, "127.0.0.1:40102"); err != nil {
		t.Fatal(err)
	}
	if i, ok := a.table.Load().lookup("127.0.0.1:40100"); ok {
		t.Fatalf("stale address still resolves to %d", i)
	}
	// Move index 5's address onto index 2: index 5 must lose it.
	if err := a.AddPeer(2, "127.0.0.1:40101"); err != nil {
		t.Fatal(err)
	}
	peers = a.Peers()
	if peers[2] != "127.0.0.1:40101" || peers[5] != "" {
		t.Fatalf("after address move: peers = %v", peers)
	}
	if i, _ := a.table.Load().lookup("127.0.0.1:40101"); i != 2 {
		t.Fatalf("moved address resolves to %d, want 2", i)
	}
}

func TestUnknownSenderHandler(t *testing.T) {
	a, err := NewUDP(0, "127.0.0.1:0", 64)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := NewUDP(1, "127.0.0.1:0", 64)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if err := a.SetPeers([]string{a.Addr()}); err != nil { // b unknown to a
		t.Fatal(err)
	}
	if err := b.SetPeers([]string{a.Addr(), b.Addr()}); err != nil {
		t.Fatal(err)
	}
	got := make(chan *net.UDPAddr, 1)
	a.SetUnknownSender(func(raddr *net.UDPAddr, size int, payload any) {
		if _, ok := payload.(*wire.FindPeers); ok {
			got <- raddr
		}
	})
	reply := make(chan *wire.Peers, 1)
	a.Start(func(from, size int, payload any) {})
	b.Start(func(from, size int, payload any) {
		if p, ok := payload.(*wire.Peers); ok {
			reply <- p
		}
	})
	fp := &wire.FindPeers{Nonce: 1, Index: 1, Addr: b.Addr()}
	b.Send(0, fp.WireSize(64), fp)
	select {
	case raddr := <-got:
		if raddr.String() != b.Addr() {
			t.Fatalf("raddr = %v, want %v", raddr, b.Addr())
		}
		// And the reverse path: reply to the not-yet-registered sender.
		a.SendToAddr(raddr, &wire.Peers{Nonce: 1})
		select {
		case p := <-reply:
			if p.Nonce != 1 {
				t.Fatalf("reply nonce = %d", p.Nonce)
			}
		case <-time.After(2 * time.Second):
			t.Fatal("SendToAddr reply never arrived")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("unknown-sender datagram never surfaced")
	}
}

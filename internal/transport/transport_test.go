package transport

import (
	"net"
	"testing"
	"time"

	"pandas/internal/assign"
	"pandas/internal/blob"
	"pandas/internal/core"
	"pandas/internal/wire"
)

func TestUDPEndpointRoundTrip(t *testing.T) {
	a, err := NewUDP(0, "127.0.0.1:0", 64)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := NewUDP(1, "127.0.0.1:0", 64)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	addrs := []string{a.Addr(), b.Addr()}
	if err := a.SetPeers(addrs); err != nil {
		t.Fatal(err)
	}
	if err := b.SetPeers(addrs); err != nil {
		t.Fatal(err)
	}

	got := make(chan *wire.Query, 1)
	b.Start(func(from, size int, payload any) {
		if from != 0 {
			t.Errorf("from = %d", from)
		}
		if q, ok := payload.(*wire.Query); ok {
			got <- q
		}
	})
	a.Start(func(from, size int, payload any) {})

	q := &wire.Query{Slot: 9, Cells: []blob.CellID{{Row: 1, Col: 2}}}
	a.Send(1, q.WireSize(64), q)
	select {
	case m := <-got:
		if m.Slot != 9 || len(m.Cells) != 1 || m.Cells[0] != q.Cells[0] {
			t.Fatalf("decoded %+v", m)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("message never arrived")
	}
}

func TestUDPAfterRunsOnEventLoop(t *testing.T) {
	a, err := NewUDP(0, "127.0.0.1:0", 64)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	a.Start(func(from, size int, payload any) {})
	fired := make(chan time.Duration, 1)
	start := time.Now()
	a.After(50*time.Millisecond, func() { fired <- time.Since(start) })
	select {
	case d := <-fired:
		if d < 40*time.Millisecond {
			t.Fatalf("fired too early: %v", d)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("timer never fired")
	}
}

func TestUDPIgnoresUnknownSendersAndGarbage(t *testing.T) {
	a, err := NewUDP(0, "127.0.0.1:0", 64)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if err := a.SetPeers([]string{a.Addr()}); err != nil {
		t.Fatal(err)
	}
	received := make(chan struct{}, 1)
	a.Start(func(from, size int, payload any) { received <- struct{}{} })
	// Garbage datagram from a known sender: must be dropped by the codec.
	if udpAddr, ok := a.conn.LocalAddr().(*net.UDPAddr); ok {
		if _, err := a.conn.WriteToUDP([]byte{0xFF, 1, 2}, udpAddr); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case <-received:
		t.Fatal("garbage delivered")
	case <-time.After(100 * time.Millisecond):
	}
}

func TestUDPCloseIdempotent(t *testing.T) {
	a, err := NewUDP(0, "127.0.0.1:0", 64)
	if err != nil {
		t.Fatal(err)
	}
	a.Start(func(from, size int, payload any) {})
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != ErrClosed {
		t.Fatalf("second close err = %v", err)
	}
}

// TestLocalnetSlotEndToEnd runs a REAL slot over loopback UDP sockets:
// real payloads, erasure reconstruction, commitment verification, and
// proposer signatures — the repository's equivalent of the paper's
// cluster deployment (scaled down).
func TestLocalnetSlotEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time UDP test")
	}
	// A dense small geometry: 16x16 extended matrix, 4 rows + 4 cols per
	// node, so 16 nodes give every line ~4 holders.
	cfg := core.TestConfig()
	cfg.Blob = blob.Params{K: 8, CellBytes: 64, ProofBytes: 48}
	cfg.Assign = assign.Params{Rows: 4, Cols: 4, N: 16}
	cfg.Samples = 6
	ln, err := NewLocalnet(cfg, 16, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	times, err := ln.RunSlot(1, 8*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	incomplete := 0
	for i, d := range times {
		if d < 0 {
			incomplete++
			t.Logf("node %d did not finish sampling", i)
		}
	}
	if incomplete > 1 {
		t.Fatalf("%d of %d nodes did not finish sampling", incomplete, len(times))
	}
	// Verify a node actually holds verified custody payloads.
	node := ln.Nodes[0]
	a := ln.Table.Assignment(0)
	l := a.Lines()[0]
	count := node.Store().LineCount(l)
	if count < cfg.Blob.N() {
		t.Fatalf("node 0 line %v incomplete: %d/%d", l, count, cfg.Blob.N())
	}
}

package transport

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"pandas/internal/assign"
	"pandas/internal/blob"
	"pandas/internal/core"
)

// localnetTestConfig is the dense small geometry the end-to-end test
// uses: 16x16 extended matrix, 4+4 custody lines, so 16 nodes give every
// line ~4 holders.
func localnetTestConfig() core.Config {
	cfg := core.TestConfig()
	cfg.Blob = blob.Params{K: 8, CellBytes: 64, ProofBytes: 48}
	cfg.Assign = assign.Params{Rows: 4, Cols: 4, N: 16}
	cfg.Samples = 6
	return cfg
}

// applyLinkPolicy installs a deterministic link policy on every endpoint
// (nodes and builder) of a localnet.
func applyLinkPolicy(ln *Localnet, mk func(self int) func(to int, data []byte) (bool, time.Duration)) {
	for i, ep := range ln.endpoints {
		ep.SetLinkPolicy(mk(i))
	}
}

// TestLocalnetUnderPacketLoss drops ~12% of ALL datagrams (seeding
// included) and checks the deployment still completes: lost seed chunks
// are absorbed by the seed-wait timer and the adaptive fetcher's
// retries, exactly the loss-resilience the paper claims for the real
// cluster. Only the happy path was exercised before.
func TestLocalnetUnderPacketLoss(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time UDP test")
	}
	ln, err := NewLocalnet(localnetTestConfig(), 16, 11)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	var mu sync.Mutex
	dropped, total := 0, 0
	applyLinkPolicy(ln, func(self int) func(to int, data []byte) (bool, time.Duration) {
		rng := rand.New(rand.NewSource(1000 + int64(self)))
		return func(to int, data []byte) (bool, time.Duration) {
			drop := rng.Float64() < 0.12
			mu.Lock()
			total++
			if drop {
				dropped++
			}
			mu.Unlock()
			return drop, 0
		}
	})

	times, err := ln.RunSlot(1, 15*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	incomplete := 0
	for i, d := range times {
		if d < 0 {
			incomplete++
			t.Logf("node %d did not finish sampling", i)
		}
	}
	mu.Lock()
	t.Logf("dropped %d of %d datagrams", dropped, total)
	if dropped == 0 {
		mu.Unlock()
		t.Fatal("loss injection never fired; the test exercised the happy path")
	}
	mu.Unlock()
	// Retries must absorb the loss for nearly everyone; allow stragglers
	// for the unlucky tail of a real-time run.
	if incomplete > 2 {
		t.Fatalf("%d of %d nodes did not finish sampling under 12%% loss", incomplete, len(times))
	}
}

// TestLocalnetUnderReordering delays each datagram by a random 0-40 ms,
// so responses routinely overtake queries and seed chunks arrive out of
// order. The protocol must tolerate arbitrary interleaving: chunk
// completion is detected by count (not order), and late cells are
// deduplicated.
func TestLocalnetUnderReordering(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time UDP test")
	}
	ln, err := NewLocalnet(localnetTestConfig(), 16, 12)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	applyLinkPolicy(ln, func(self int) func(to int, data []byte) (bool, time.Duration) {
		rng := rand.New(rand.NewSource(2000 + int64(self)))
		var mu sync.Mutex
		return func(to int, data []byte) (bool, time.Duration) {
			mu.Lock()
			d := time.Duration(rng.Int63n(int64(40 * time.Millisecond)))
			mu.Unlock()
			return false, d
		}
	})

	times, err := ln.RunSlot(1, 15*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	incomplete := 0
	for i, d := range times {
		if d < 0 {
			incomplete++
			t.Logf("node %d did not finish sampling", i)
		}
	}
	if incomplete > 1 {
		t.Fatalf("%d of %d nodes did not finish sampling under reordering", incomplete, len(times))
	}
	// Every completed node must hold a fully verified custody line
	// despite the scrambled arrival order.
	node := ln.Nodes[0]
	l := ln.Table.Assignment(0).Lines()[0]
	if count := node.Store().LineCount(l); count < ln.Cfg.Blob.N() {
		t.Fatalf("node 0 line %v incomplete after reordering: %d/%d", l, count, ln.Cfg.Blob.N())
	}
}

// TestLocalnetLossAndReorderCombined mixes both impairments at once —
// the closest the loopback harness gets to a congested real network.
func TestLocalnetLossAndReorderCombined(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time UDP test")
	}
	ln, err := NewLocalnet(localnetTestConfig(), 16, 13)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	applyLinkPolicy(ln, func(self int) func(to int, data []byte) (bool, time.Duration) {
		rng := rand.New(rand.NewSource(3000 + int64(self)))
		var mu sync.Mutex
		return func(to int, data []byte) (bool, time.Duration) {
			mu.Lock()
			defer mu.Unlock()
			if rng.Float64() < 0.08 {
				return true, 0
			}
			return false, time.Duration(rng.Int63n(int64(25 * time.Millisecond)))
		}
	})

	times, err := ln.RunSlot(1, 15*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	incomplete := 0
	for _, d := range times {
		if d < 0 {
			incomplete++
		}
	}
	if incomplete > 2 {
		t.Fatalf("%d of %d nodes did not finish sampling under loss+reordering", incomplete, len(times))
	}
}

// Package transport provides a real UDP transport for PANDAS nodes,
// playing the role the libp2p/devp2p stack plays for the paper's
// prototype: every node binds a UDP socket, protocol messages are
// serialized with the wire codec, and peers are addressed by index into a
// shared peer table (the crawled "view").
//
// The transport satisfies core.Transport. Each endpoint owns a
// single-threaded event loop, so the (deliberately lock-free) core.Node
// state machine runs exactly as it does on the simulator's event loop.
package transport

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"pandas/internal/wire"
)

// ErrClosed is returned after Close.
var ErrClosed = errors.New("transport: closed")

// UDP is one node's transport endpoint.
type UDP struct {
	self      int
	cellBytes int
	conn      *net.UDPConn
	peers     []*net.UDPAddr
	addrIndex map[string]int
	start     time.Time

	events  chan func()
	done    chan struct{}
	wg      sync.WaitGroup
	handler func(from, size int, payload any)

	mu     sync.Mutex
	closed bool
}

// NewUDP binds a UDP endpoint. bind is this node's listen address
// ("127.0.0.1:0" picks a port); peers will be filled in later with
// SetPeers once every participant's address is known. cellBytes is the
// cell payload size for the wire codec.
func NewUDP(self int, bind string, cellBytes int) (*UDP, error) {
	addr, err := net.ResolveUDPAddr("udp", bind)
	if err != nil {
		return nil, fmt.Errorf("transport: resolve %q: %w", bind, err)
	}
	conn, err := net.ListenUDP("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %q: %w", bind, err)
	}
	return &UDP{
		self:      self,
		cellBytes: cellBytes,
		conn:      conn,
		addrIndex: make(map[string]int),
		start:     time.Now(),
		events:    make(chan func(), 1024),
		done:      make(chan struct{}),
	}, nil
}

// Addr returns the bound address (host:port).
func (u *UDP) Addr() string { return u.conn.LocalAddr().String() }

// SetPeers installs the peer table: peers[i] is node i's address. Must be
// called before Start.
func (u *UDP) SetPeers(addrs []string) error {
	u.peers = make([]*net.UDPAddr, len(addrs))
	u.addrIndex = make(map[string]int, len(addrs))
	for i, a := range addrs {
		ua, err := net.ResolveUDPAddr("udp", a)
		if err != nil {
			return fmt.Errorf("transport: resolve peer %d %q: %w", i, a, err)
		}
		u.peers[i] = ua
		u.addrIndex[ua.String()] = i
	}
	return nil
}

// Start launches the receive and event loops; handler receives decoded
// protocol messages on the event loop.
func (u *UDP) Start(handler func(from, size int, payload any)) {
	u.handler = handler
	u.wg.Add(2)
	go u.eventLoop()
	go u.receiveLoop()
}

// Run schedules fn on the endpoint's event loop (e.g. to start a slot on
// the same thread as message handling).
func (u *UDP) Run(fn func()) {
	select {
	case u.events <- fn:
	case <-u.done:
	}
}

func (u *UDP) eventLoop() {
	defer u.wg.Done()
	for {
		select {
		case fn := <-u.events:
			fn()
		case <-u.done:
			return
		}
	}
}

func (u *UDP) receiveLoop() {
	defer u.wg.Done()
	buf := make([]byte, 65536)
	for {
		n, raddr, err := u.conn.ReadFromUDP(buf)
		if err != nil {
			select {
			case <-u.done:
				return
			default:
			}
			continue
		}
		from, ok := u.addrIndex[raddr.String()]
		if !ok {
			continue // unknown sender
		}
		msg, err := wire.Decode(buf[:n], u.cellBytes)
		if err != nil {
			continue // malformed datagram
		}
		size := n + wire.OverheadIPUDP
		u.Run(func() {
			if u.handler != nil {
				u.handler(from, size, msg)
			}
		})
	}
}

// Send implements core.Transport: encode and transmit one datagram.
// Errors (unknown peer, encode failure) are dropped silently, matching
// UDP's fire-and-forget semantics.
func (u *UDP) Send(to int, size int, payload any) {
	if to < 0 || to >= len(u.peers) {
		return
	}
	msg, ok := payload.(wire.Message)
	if !ok {
		return
	}
	data, err := wire.Encode(msg, u.cellBytes)
	if err != nil {
		return
	}
	_, _ = u.conn.WriteToUDP(data, u.peers[to])
}

// SendReliable implements core.Transport. Real UDP offers no reliability
// distinction; it is identical to Send.
func (u *UDP) SendReliable(to int, size int, payload any) { u.Send(to, size, payload) }

// After implements core.Transport using wall-clock timers delivered onto
// the event loop.
func (u *UDP) After(d time.Duration, fn func()) {
	timer := time.AfterFunc(d, func() { u.Run(fn) })
	_ = timer
}

// Now implements core.Transport: time since the endpoint started.
func (u *UDP) Now() time.Duration { return time.Since(u.start) }

// Close shuts the endpoint down and waits for its loops.
func (u *UDP) Close() error {
	u.mu.Lock()
	if u.closed {
		u.mu.Unlock()
		return ErrClosed
	}
	u.closed = true
	u.mu.Unlock()
	close(u.done)
	err := u.conn.Close()
	u.wg.Wait()
	return err
}

// Package transport provides a real UDP transport for PANDAS nodes,
// playing the role the libp2p/devp2p stack plays for the paper's
// prototype: every node binds a UDP socket, protocol messages are
// serialized with the wire codec, and peers are addressed by index into a
// shared peer table (the crawled "view").
//
// The transport satisfies core.Transport. Each endpoint owns a
// single-threaded event loop, so the (deliberately lock-free) core.Node
// state machine runs exactly as it does on the simulator's event loop.
//
// The peer table is dynamic: it can start sparse (addresses unknown) and
// be filled in or rebound while the endpoint is live — the substrate the
// swarm runtime's discovery crawl builds on. Lookups go through an
// immutable snapshot swapped atomically, so the receive loop never sees
// a half-rebuilt table.
package transport

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"pandas/internal/wire"
)

// ErrClosed is returned after Close.
var ErrClosed = errors.New("transport: closed")

// peerTable is an immutable peer-table snapshot: addrs[i] is peer i's
// address (nil = unknown), index inverts it. Updates build a fresh table
// and swap it atomically, so the index can never hold an entry for an
// address that was shrunk away or rebound to another peer — the
// stale-entry hazard of mutating the map in place.
type peerTable struct {
	addrs []*net.UDPAddr
	index map[string]int
}

func (t *peerTable) lookup(addr string) (int, bool) {
	if t == nil {
		return 0, false
	}
	i, ok := t.index[addr]
	return i, ok
}

// UDP is one node's transport endpoint.
type UDP struct {
	self      int
	cellBytes int
	conn      *net.UDPConn
	table     atomic.Pointer[peerTable]
	start     time.Time

	events  chan func()
	done    chan struct{}
	wg      sync.WaitGroup
	handler func(from, size int, payload any)

	// unknown receives decoded datagrams from senders absent from the
	// peer table (discovery traffic from late joiners); nil drops them.
	unknown atomic.Pointer[func(raddr *net.UDPAddr, size int, payload any)]

	// linkPolicy is a test hook interposed on outgoing datagrams to
	// inject loss and reordering; nil sends directly.
	linkPolicy atomic.Pointer[func(to int, data []byte) (drop bool, delay time.Duration)]

	mu      sync.Mutex // serializes Close and peer-table writers
	closed  bool
	started bool
}

// NewUDP binds a UDP endpoint. bind is this node's listen address
// ("127.0.0.1:0" picks a port); peers will be filled in later with
// SetPeers/AddPeer once participants' addresses are known. cellBytes is
// the cell payload size for the wire codec (settable until Start via
// SetCellBytes when it is not yet known at bind time).
func NewUDP(self int, bind string, cellBytes int) (*UDP, error) {
	addr, err := net.ResolveUDPAddr("udp", bind)
	if err != nil {
		return nil, fmt.Errorf("transport: resolve %q: %w", bind, err)
	}
	conn, err := net.ListenUDP("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %q: %w", bind, err)
	}
	return &UDP{
		self:      self,
		cellBytes: cellBytes,
		conn:      conn,
		start:     time.Now(),
		events:    make(chan func(), 4096),
		done:      make(chan struct{}),
	}, nil
}

// Addr returns the bound address (host:port).
func (u *UDP) Addr() string { return u.conn.LocalAddr().String() }

// SetCellBytes fixes the wire codec's cell payload size. It must be
// called before Start; the swarm worker uses it because the geometry
// arrives over the control channel after the socket is bound.
func (u *UDP) SetCellBytes(n int) {
	u.mu.Lock()
	defer u.mu.Unlock()
	if u.started {
		panic("transport: SetCellBytes after Start")
	}
	u.cellBytes = n
}

// SetPeers installs the peer table: addrs[i] is node i's address, where
// an empty string marks a peer whose address is not yet known (sends to
// it are dropped until AddPeer fills it in). Safe to call while the
// endpoint is live: the table is rebuilt from scratch and swapped
// atomically, so shrinking the table or rebinding an index to a new
// address never leaves a stale address mapped to the wrong peer.
func (u *UDP) SetPeers(addrs []string) error {
	t := &peerTable{
		addrs: make([]*net.UDPAddr, len(addrs)),
		index: make(map[string]int, len(addrs)),
	}
	for i, a := range addrs {
		if a == "" {
			continue
		}
		ua, err := net.ResolveUDPAddr("udp", a)
		if err != nil {
			return fmt.Errorf("transport: resolve peer %d %q: %w", i, a, err)
		}
		t.addrs[i] = ua
		t.index[ua.String()] = i
	}
	u.mu.Lock()
	u.table.Store(t)
	u.mu.Unlock()
	return nil
}

// AddPeer binds index i to addr, growing the table if needed. If i was
// previously bound to a different address, the old mapping is removed
// (a restarted peer rebinding its index to a fresh socket); if addr was
// previously bound to a different index, that index loses the address.
// Safe to call concurrently with the receive loop.
func (u *UDP) AddPeer(i int, addr string) error {
	if i < 0 {
		return fmt.Errorf("transport: add peer: negative index %d", i)
	}
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return fmt.Errorf("transport: resolve peer %d %q: %w", i, addr, err)
	}
	u.mu.Lock()
	defer u.mu.Unlock()
	old := u.table.Load()
	n := i + 1
	if old != nil && len(old.addrs) > n {
		n = len(old.addrs)
	}
	t := &peerTable{addrs: make([]*net.UDPAddr, n), index: make(map[string]int, n)}
	if old != nil {
		copy(t.addrs, old.addrs)
		for a, j := range old.index {
			t.index[a] = j
		}
	}
	key := ua.String()
	if prev := t.addrs[i]; prev != nil && t.index[prev.String()] == i {
		delete(t.index, prev.String())
	}
	if j, ok := t.index[key]; ok && j != i && j < len(t.addrs) {
		// The address moved between indexes; the displaced peer keeps no
		// claim on it.
		t.addrs[j] = nil
	}
	t.addrs[i] = ua
	t.index[key] = i
	u.table.Store(t)
	return nil
}

// Peers returns a snapshot of the peer table as strings (empty = entry
// unknown). The result is a private copy.
func (u *UDP) Peers() []string {
	t := u.table.Load()
	if t == nil {
		return nil
	}
	out := make([]string, len(t.addrs))
	for i, a := range t.addrs {
		if a != nil {
			out[i] = a.String()
		}
	}
	return out
}

// Known returns how many peer-table entries have addresses.
func (u *UDP) Known() int {
	t := u.table.Load()
	if t == nil {
		return 0
	}
	n := 0
	for _, a := range t.addrs {
		if a != nil {
			n++
		}
	}
	return n
}

// SetUnknownSender installs a handler for decoded datagrams whose sender
// is not in the peer table; it runs on the event loop like the main
// handler. The swarm discovery plane uses it to serve FindPeers from
// late joiners before they are registered.
func (u *UDP) SetUnknownSender(h func(raddr *net.UDPAddr, size int, payload any)) {
	if h == nil {
		u.unknown.Store(nil)
		return
	}
	u.unknown.Store(&h)
}

// SetLinkPolicy interposes a test hook on every outgoing datagram: drop
// suppresses it, a positive delay defers the socket write (out-of-order
// delivery). A nil policy restores direct sends.
func (u *UDP) SetLinkPolicy(p func(to int, data []byte) (drop bool, delay time.Duration)) {
	if p == nil {
		u.linkPolicy.Store(nil)
		return
	}
	u.linkPolicy.Store(&p)
}

// Start launches the receive and event loops; handler receives decoded
// protocol messages on the event loop.
func (u *UDP) Start(handler func(from, size int, payload any)) {
	u.mu.Lock()
	u.handler = handler
	u.started = true
	u.mu.Unlock()
	u.wg.Add(2)
	go u.eventLoop()
	go u.receiveLoop()
}

// Run schedules fn on the endpoint's event loop (e.g. to start a slot on
// the same thread as message handling).
func (u *UDP) Run(fn func()) {
	select {
	case u.events <- fn:
	case <-u.done:
	}
}

func (u *UDP) eventLoop() {
	defer u.wg.Done()
	for {
		select {
		case fn := <-u.events:
			fn()
		case <-u.done:
			return
		}
	}
}

func (u *UDP) receiveLoop() {
	defer u.wg.Done()
	buf := make([]byte, 65536)
	for {
		n, raddr, err := u.conn.ReadFromUDP(buf)
		if err != nil {
			select {
			case <-u.done:
				return
			default:
			}
			continue
		}
		from, known := u.table.Load().lookup(raddr.String())
		var unknownH func(*net.UDPAddr, int, any)
		if !known {
			hp := u.unknown.Load()
			if hp == nil {
				continue // unknown sender, no discovery plane
			}
			unknownH = *hp
		}
		msg, err := wire.Decode(buf[:n], u.cellBytes)
		if err != nil {
			continue // malformed datagram
		}
		size := n + wire.OverheadIPUDP
		u.Run(func() {
			if !known {
				unknownH(raddr, size, msg)
				return
			}
			if u.handler != nil {
				u.handler(from, size, msg)
			}
		})
	}
}

// Send implements core.Transport: encode and transmit one datagram.
// Errors (unknown peer, encode failure) are dropped silently, matching
// UDP's fire-and-forget semantics.
func (u *UDP) Send(to int, size int, payload any) {
	t := u.table.Load()
	if t == nil || to < 0 || to >= len(t.addrs) || t.addrs[to] == nil {
		return
	}
	msg, ok := payload.(wire.Message)
	if !ok {
		return
	}
	data, err := wire.Encode(msg, u.cellBytes)
	if err != nil {
		return
	}
	if pp := u.linkPolicy.Load(); pp != nil {
		drop, delay := (*pp)(to, data)
		if drop {
			return
		}
		if delay > 0 {
			addr := t.addrs[to]
			time.AfterFunc(delay, func() { _, _ = u.conn.WriteToUDP(data, addr) })
			return
		}
	}
	_, _ = u.conn.WriteToUDP(data, t.addrs[to])
}

// SendToAddr transmits a message directly to a UDP address that need not
// be in the peer table (discovery replies to not-yet-registered peers).
func (u *UDP) SendToAddr(addr *net.UDPAddr, payload any) {
	msg, ok := payload.(wire.Message)
	if !ok {
		return
	}
	data, err := wire.Encode(msg, u.cellBytes)
	if err != nil {
		return
	}
	_, _ = u.conn.WriteToUDP(data, addr)
}

// SendReliable implements core.Transport. Real UDP offers no reliability
// distinction; it is identical to Send.
func (u *UDP) SendReliable(to int, size int, payload any) { u.Send(to, size, payload) }

// After implements core.Transport using wall-clock timers delivered onto
// the event loop.
func (u *UDP) After(d time.Duration, fn func()) {
	timer := time.AfterFunc(d, func() { u.Run(fn) })
	_ = timer
}

// Now implements core.Transport: time since the endpoint started.
func (u *UDP) Now() time.Duration { return time.Since(u.start) }

// Close shuts the endpoint down and waits for its loops.
func (u *UDP) Close() error {
	u.mu.Lock()
	if u.closed {
		u.mu.Unlock()
		return ErrClosed
	}
	u.closed = true
	started := u.started
	u.mu.Unlock()
	close(u.done)
	err := u.conn.Close()
	if started {
		u.wg.Wait()
	}
	return err
}

// Package fetch implements the adaptive fetching strategy of PANDAS
// (Section 7, Algorithm 1) as pure, independently testable logic.
//
// Fetching proceeds in rounds. Round i has a timeout t_i and a redundancy
// factor k_i: every missing cell should be requested from k_i distinct
// peers before the node sleeps t_i and re-plans. Early rounds are cautious
// (k_1 = 1, t_1 = 400 ms, giving seeded peers time to respond); later
// rounds grow aggressive as the 4-second deadline nears (timeouts halve
// to a 100 ms floor, redundancy climbs by two per round to a cap of 10).
//
// The three steps of a round are:
//
//	scoring:  each queryable peer is scored by how many missing cells its
//	          custody covers, plus cb_boost for every missing cell the
//	          builder's consolidation-boost map says was seeded to it;
//	planning: peers are considered in descending score order and greedily
//	          assigned the missing cells they cover until every cell has
//	          k_i planned queries (or peers run out);
//	execution: one Query message per planned peer (performed by the
//	          caller); each peer is queried at most once per slot.
package fetch

import (
	"slices"
	"time"
)

// Default schedule parameters from the paper.
const (
	// DefaultCBBoost is the score bonus per boosted cell; it dwarfs any
	// plain coverage score so seeded peers are contacted first.
	DefaultCBBoost = 10000
	// DefaultMaxRounds caps the number of fetch rounds (t_50 in the
	// paper).
	DefaultMaxRounds = 50
	// MaxRedundancy is the redundancy ceiling k_max.
	MaxRedundancy = 10
)

// Schedule supplies per-round timeouts and redundancy factors.
type Schedule struct {
	// Timeouts holds t_1, t_2, ...; rounds beyond the slice reuse the
	// last entry.
	Timeouts []time.Duration
	// Redundancy holds k_1, k_2, ...; rounds beyond the slice reuse the
	// last entry.
	Redundancy []int
	// MaxRounds caps the total number of rounds.
	MaxRounds int
}

// DefaultSchedule returns the paper's adaptive schedule:
// t = 400, 200, 100, 100, ... ms and k = 1, 2, 4, 6, 8, 10, 10, ...
func DefaultSchedule() Schedule {
	return Schedule{
		Timeouts: []time.Duration{
			400 * time.Millisecond,
			200 * time.Millisecond,
			100 * time.Millisecond,
		},
		Redundancy: []int{1, 2, 4, 6, 8, MaxRedundancy},
		MaxRounds:  DefaultMaxRounds,
	}
}

// ConstantSchedule returns the non-adaptive baseline used in Fig. 11:
// fixed timeout and fixed redundancy every round.
func ConstantSchedule(timeout time.Duration, redundancy int) Schedule {
	return Schedule{
		Timeouts:   []time.Duration{timeout},
		Redundancy: []int{redundancy},
		MaxRounds:  DefaultMaxRounds,
	}
}

// Timeout returns t_round (1-based). Out-of-range rounds clamp to the
// nearest defined value.
func (s Schedule) Timeout(round int) time.Duration {
	if len(s.Timeouts) == 0 {
		return 100 * time.Millisecond
	}
	if round < 1 {
		round = 1
	}
	if round > len(s.Timeouts) {
		round = len(s.Timeouts)
	}
	return s.Timeouts[round-1]
}

// RedundancyAt returns k_round (1-based), clamped like Timeout.
func (s Schedule) RedundancyAt(round int) int {
	if len(s.Redundancy) == 0 {
		return 1
	}
	if round < 1 {
		round = 1
	}
	if round > len(s.Redundancy) {
		round = len(s.Redundancy)
	}
	return s.Redundancy[round-1]
}

// Candidate is a queryable peer from the node's view, described by which
// of the currently missing cells it covers. Cells are indices into the
// caller's missing-cell list (0..numCells-1).
type Candidate struct {
	// Peer is an opaque peer handle returned in the plan.
	Peer int
	// Cells lists the missing-cell indices this peer's custody covers.
	Cells []int
	// Boosted is the number of those cells the consolidation-boost map
	// says were seeded directly to this peer.
	Boosted int
}

// score implements lines 4-9 of Algorithm 1.
func (c Candidate) score(cbBoost int) int {
	return len(c.Cells) + c.Boosted*cbBoost
}

// Query is one planned query: ask Peer for the given missing-cell
// indices.
type Query struct {
	Peer  int
	Cells []int
}

// Plan implements the planning step (lines 10-17 of Algorithm 1): sort
// candidates by descending score, then greedily pick peers while any cell
// has fewer than k planned queries. A chosen peer is asked for ALL of its
// cells of interest that are still under-redundant.
//
// numCells is the size of the missing-cell index space; k the round's
// redundancy factor. Candidates must not repeat peers.
func Plan(candidates []Candidate, numCells, k, cbBoost int) []Query {
	if numCells == 0 || k <= 0 || len(candidates) == 0 {
		return nil
	}
	sorted := make([]Candidate, len(candidates))
	copy(sorted, candidates)
	slices.SortStableFunc(sorted, func(a, b Candidate) int {
		return b.score(cbBoost) - a.score(cbBoost)
	})

	counts := make([]int, numCells) // planned queries per cell
	under := numCells               // cells with counts[c] < k
	var plan []Query
	for _, cand := range sorted {
		if under == 0 {
			break
		}
		var ask []int
		for _, cell := range cand.Cells {
			if cell < 0 || cell >= numCells {
				continue
			}
			if counts[cell] < k {
				ask = append(ask, cell)
				counts[cell]++
				if counts[cell] == k {
					under--
				}
			}
		}
		if len(ask) > 0 {
			plan = append(plan, Query{Peer: cand.Peer, Cells: ask})
		}
	}
	return plan
}

// Coverage reports how many of numCells have at least one planned query
// in the plan; used by tests and diagnostics.
func Coverage(plan []Query, numCells int) int {
	seen := make([]bool, numCells)
	covered := 0
	for _, q := range plan {
		for _, c := range q.Cells {
			if c >= 0 && c < numCells && !seen[c] {
				seen[c] = true
				covered++
			}
		}
	}
	return covered
}

// Scored is a peer with a precomputed score, for PlanLazy.
type Scored struct {
	Peer  int
	Score int
}

// Liveness supplies peer-quality knowledge to the scoring step. Under
// dynamic membership a node's view contains peers that have already
// departed (crashes are never announced and crawls re-surface stale
// entries); Liveness is how the fetcher avoids burning round budget on
// them. Implemented by membership.Scorer.
type Liveness interface {
	// Queryable reports whether the peer may be queried now; false while
	// the peer sits in timeout backoff.
	Queryable(peer int) bool
	// Penalty returns a score deduction for the peer — zero for healthy
	// peers, growing with recorded failures for flaky ones.
	Penalty(peer int) int
}

// ApplyLiveness folds liveness knowledge into scored candidates: peers
// in backoff are dropped entirely, and re-armed peers with a failure
// history are demoted by their penalty (floored at score 1 so they stay
// eligible as a last resort). The slice is filtered in place. A nil
// liveness returns the input unchanged.
func ApplyLiveness(scored []Scored, l Liveness) []Scored {
	return ApplyLivenessObserved(scored, l, nil)
}

// ApplyLivenessObserved is ApplyLiveness with a drop observer: onSkip is
// invoked for every peer filtered out by its backoff (the observability
// layer traces these as peer-demoted events). A nil onSkip is ignored.
func ApplyLivenessObserved(scored []Scored, l Liveness, onSkip func(peer int)) []Scored {
	if l == nil {
		return scored
	}
	out := scored[:0]
	for _, s := range scored {
		if !l.Queryable(s.Peer) {
			if onSkip != nil {
				onSkip(s.Peer)
			}
			continue
		}
		if p := l.Penalty(s.Peer); p > 0 {
			s.Score -= p
			if s.Score < 1 {
				s.Score = 1
			}
		}
		out = append(out, s)
	}
	return out
}

// Exclude drops candidates the banned predicate matches. Unlike liveness
// backoff (temporary, forgiving), exclusion is unconditional: the caller
// uses it for peers caught misbehaving cryptographically — serving cells
// that fail proof verification — which no score demotion should ever
// resurrect. The slice is filtered in place. A nil predicate returns the
// input unchanged.
func Exclude(scored []Scored, banned func(peer int) bool) []Scored {
	if banned == nil {
		return scored
	}
	out := scored[:0]
	for _, s := range scored {
		if banned(s.Peer) {
			continue
		}
		out = append(out, s)
	}
	return out
}

// PlanLazy is the allocation-frugal equivalent of Plan used by the
// simulator at large scales: candidate cell lists are materialized only
// for peers actually considered, via the cellsOf callback. cellsOf must
// return the missing-cell indices the peer covers (the same list Plan
// would have received), and scores must equal Candidate.score for the
// plans to be identical.
func PlanLazy(scored []Scored, numCells, k int, cellsOf func(peer int) []int) []Query {
	return PlanLazyFrom(scored, make([]int, numCells), k, cellsOf)
}

// PlanLazyFrom is PlanLazy with pre-existing per-cell redundancy counts:
// cells that already have k or more outstanding (in-flight) queries are
// not re-requested this round. This is what keeps duplicate deliveries
// low when responses straggle across round boundaries — the paper's
// Table 1 shows per-round duplicates in the low hundreds, which is only
// possible if in-flight requests count toward the redundancy target.
// counts is modified in place and its length defines the cell index
// space.
func PlanLazyFrom(scored []Scored, counts []int, k int, cellsOf func(peer int) []int) []Query {
	numCells := len(counts)
	if numCells == 0 || k <= 0 || len(scored) == 0 {
		return nil
	}
	sorted := make([]Scored, len(scored))
	copy(sorted, scored)
	slices.SortStableFunc(sorted, func(a, b Scored) int {
		return b.Score - a.Score
	})
	under := 0
	for _, c := range counts {
		if c < k {
			under++
		}
	}
	var plan []Query
	for _, cand := range sorted {
		if under == 0 {
			break
		}
		var ask []int
		for _, cell := range cellsOf(cand.Peer) {
			if cell < 0 || cell >= numCells {
				continue
			}
			if counts[cell] < k {
				ask = append(ask, cell)
				counts[cell]++
				if counts[cell] == k {
					under--
				}
			}
		}
		if len(ask) > 0 {
			plan = append(plan, Query{Peer: cand.Peer, Cells: ask})
		}
	}
	return plan
}

package fetch

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestDefaultScheduleMatchesPaper(t *testing.T) {
	s := DefaultSchedule()
	wantT := []time.Duration{
		400 * time.Millisecond, // t1
		200 * time.Millisecond, // t2
		100 * time.Millisecond, // t3
		100 * time.Millisecond, // t4 (clamped)
		100 * time.Millisecond, // t5
	}
	for i, want := range wantT {
		if got := s.Timeout(i + 1); got != want {
			t.Errorf("t%d = %v, want %v", i+1, got, want)
		}
	}
	wantK := []int{1, 2, 4, 6, 8, 10, 10, 10}
	for i, want := range wantK {
		if got := s.RedundancyAt(i + 1); got != want {
			t.Errorf("k%d = %d, want %d", i+1, got, want)
		}
	}
	if s.MaxRounds != 50 {
		t.Errorf("MaxRounds = %d", s.MaxRounds)
	}
}

func TestConstantSchedule(t *testing.T) {
	s := ConstantSchedule(400*time.Millisecond, 1)
	for round := 1; round <= 10; round++ {
		if s.Timeout(round) != 400*time.Millisecond || s.RedundancyAt(round) != 1 {
			t.Fatalf("round %d not constant", round)
		}
	}
}

func TestScheduleEmptyAndClamping(t *testing.T) {
	var s Schedule
	if s.Timeout(1) != 100*time.Millisecond {
		t.Fatal("empty schedule timeout default wrong")
	}
	if s.RedundancyAt(3) != 1 {
		t.Fatal("empty schedule redundancy default wrong")
	}
	d := DefaultSchedule()
	if d.Timeout(0) != d.Timeout(1) || d.RedundancyAt(-1) != d.RedundancyAt(1) {
		t.Fatal("low rounds should clamp to round 1")
	}
}

func TestPlanSingleRedundancy(t *testing.T) {
	cands := []Candidate{
		{Peer: 1, Cells: []int{0, 1, 2}},
		{Peer: 2, Cells: []int{2, 3}},
		{Peer: 3, Cells: []int{3}},
	}
	plan := Plan(cands, 4, 1, DefaultCBBoost)
	// Peer 1 covers 0,1,2; peer 2 then covers 3 only (2 already planned).
	if len(plan) != 2 {
		t.Fatalf("plan = %+v", plan)
	}
	if plan[0].Peer != 1 || len(plan[0].Cells) != 3 {
		t.Fatalf("first query = %+v", plan[0])
	}
	if plan[1].Peer != 2 || len(plan[1].Cells) != 1 || plan[1].Cells[0] != 3 {
		t.Fatalf("second query = %+v", plan[1])
	}
	if Coverage(plan, 4) != 4 {
		t.Fatal("full coverage expected")
	}
}

func TestPlanRespectsRedundancyFactor(t *testing.T) {
	cands := []Candidate{
		{Peer: 1, Cells: []int{0}},
		{Peer: 2, Cells: []int{0}},
		{Peer: 3, Cells: []int{0}},
	}
	plan := Plan(cands, 1, 2, DefaultCBBoost)
	if len(plan) != 2 {
		t.Fatalf("want 2 queries for k=2, got %+v", plan)
	}
	// With k larger than the peer count, all peers are used.
	plan = Plan(cands, 1, 5, DefaultCBBoost)
	if len(plan) != 3 {
		t.Fatalf("want all 3 peers, got %+v", plan)
	}
}

func TestPlanBoostDominates(t *testing.T) {
	// Peer 2 covers fewer cells but one is boosted: it must be contacted
	// first (cb_boost = 10,000 dwarfs coverage).
	cands := []Candidate{
		{Peer: 1, Cells: []int{0, 1, 2, 3, 4}},
		{Peer: 2, Cells: []int{5}, Boosted: 1},
	}
	plan := Plan(cands, 6, 1, DefaultCBBoost)
	if plan[0].Peer != 2 {
		t.Fatalf("boosted peer not ranked first: %+v", plan)
	}
}

func TestPlanZeroBoostFallsBackToCoverage(t *testing.T) {
	cands := []Candidate{
		{Peer: 1, Cells: []int{0}},
		{Peer: 2, Cells: []int{0, 1}},
	}
	plan := Plan(cands, 2, 1, 0)
	if plan[0].Peer != 2 {
		t.Fatalf("coverage ordering broken: %+v", plan)
	}
}

func TestPlanEdgeCases(t *testing.T) {
	if Plan(nil, 5, 1, 0) != nil {
		t.Fatal("nil candidates should plan nothing")
	}
	if Plan([]Candidate{{Peer: 1, Cells: []int{0}}}, 0, 1, 0) != nil {
		t.Fatal("zero cells should plan nothing")
	}
	if Plan([]Candidate{{Peer: 1, Cells: []int{0}}}, 1, 0, 0) != nil {
		t.Fatal("zero redundancy should plan nothing")
	}
	// Out-of-range cell indices are ignored rather than panicking.
	plan := Plan([]Candidate{{Peer: 1, Cells: []int{-1, 7, 0}}}, 1, 1, 0)
	if len(plan) != 1 || len(plan[0].Cells) != 1 || plan[0].Cells[0] != 0 {
		t.Fatalf("plan = %+v", plan)
	}
}

func TestPlanStableTieBreak(t *testing.T) {
	// Equal scores: input order must be preserved (deterministic plans).
	cands := []Candidate{
		{Peer: 5, Cells: []int{0}},
		{Peer: 3, Cells: []int{1}},
		{Peer: 9, Cells: []int{2}},
	}
	plan := Plan(cands, 3, 1, DefaultCBBoost)
	if plan[0].Peer != 5 || plan[1].Peer != 3 || plan[2].Peer != 9 {
		t.Fatalf("tie-break not stable: %+v", plan)
	}
}

func TestPlanNeverQueriesUselessPeer(t *testing.T) {
	cands := []Candidate{
		{Peer: 1, Cells: []int{0, 1}},
		{Peer: 2, Cells: []int{0, 1}}, // fully redundant with peer 1 at k=1
	}
	plan := Plan(cands, 2, 1, 0)
	if len(plan) != 1 {
		t.Fatalf("useless peer queried: %+v", plan)
	}
}

func TestPlanPropertyEveryCellCoveredUpToK(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		numCells := 1 + rng.Intn(50)
		numPeers := 1 + rng.Intn(40)
		k := 1 + rng.Intn(4)
		cands := make([]Candidate, numPeers)
		avail := make([]int, numCells) // how many peers cover each cell
		for p := range cands {
			cands[p].Peer = p
			for c := 0; c < numCells; c++ {
				if rng.Float64() < 0.3 {
					cands[p].Cells = append(cands[p].Cells, c)
					avail[c]++
				}
			}
			if len(cands[p].Cells) > 0 && rng.Float64() < 0.2 {
				cands[p].Boosted = 1
			}
		}
		plan := Plan(cands, numCells, k, DefaultCBBoost)
		counts := make([]int, numCells)
		usedPeer := map[int]bool{}
		for _, q := range plan {
			if usedPeer[q.Peer] {
				return false // peer queried twice in one round
			}
			usedPeer[q.Peer] = true
			seen := map[int]bool{}
			for _, c := range q.Cells {
				if seen[c] {
					return false // duplicate cell within one query
				}
				seen[c] = true
				counts[c]++
			}
		}
		for c := 0; c < numCells; c++ {
			want := min(k, avail[c])
			if counts[c] != want {
				return false // each cell planned exactly min(k, availability) times
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCoverage(t *testing.T) {
	plan := []Query{{Peer: 1, Cells: []int{0, 1}}, {Peer: 2, Cells: []int{1, 2}}}
	if got := Coverage(plan, 4); got != 3 {
		t.Fatalf("Coverage = %d, want 3", got)
	}
	if got := Coverage(nil, 4); got != 0 {
		t.Fatalf("Coverage(nil) = %d", got)
	}
}

func BenchmarkPlan(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	const numCells, numPeers = 4000, 200
	cands := make([]Candidate, numPeers)
	for p := range cands {
		cands[p].Peer = p
		for c := 0; c < numCells; c++ {
			if rng.Float64() < 0.05 {
				cands[p].Cells = append(cands[p].Cells, c)
			}
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Plan(cands, numCells, 2, DefaultCBBoost)
	}
}

func TestPlanLazyMatchesPlan(t *testing.T) {
	// Differential test: PlanLazy with exact scores must produce the same
	// plan as the eager reference implementation.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		numCells := 1 + rng.Intn(40)
		numPeers := 1 + rng.Intn(30)
		k := 1 + rng.Intn(3)
		cands := make([]Candidate, numPeers)
		for p := range cands {
			cands[p].Peer = p
			for c := 0; c < numCells; c++ {
				if rng.Float64() < 0.25 {
					cands[p].Cells = append(cands[p].Cells, c)
				}
			}
			if rng.Float64() < 0.3 {
				cands[p].Boosted = rng.Intn(3)
			}
		}
		want := Plan(cands, numCells, k, DefaultCBBoost)
		scored := make([]Scored, numPeers)
		for p, c := range cands {
			scored[p] = Scored{Peer: c.Peer, Score: c.score(DefaultCBBoost)}
		}
		got := PlanLazy(scored, numCells, k, func(peer int) []int { return cands[peer].Cells })
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i].Peer != want[i].Peer || len(got[i].Cells) != len(want[i].Cells) {
				return false
			}
			for j := range got[i].Cells {
				if got[i].Cells[j] != want[i].Cells[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPlanLazyEdgeCases(t *testing.T) {
	if PlanLazy(nil, 5, 1, nil) != nil {
		t.Fatal("nil scored should plan nothing")
	}
	if PlanLazy([]Scored{{Peer: 1, Score: 5}}, 0, 1, nil) != nil {
		t.Fatal("zero cells should plan nothing")
	}
}

// Package baseline implements the two alternative DAS designs PANDAS is
// compared against in Section 8: dissemination over GossipSub topic
// meshes, and storage/retrieval through the Kademlia DHT. Both reuse the
// same simulator, latency model, cell geometry, and sampling semantics as
// the PANDAS cluster, so the comparison isolates the dissemination layer.
package baseline

import (
	"math/rand"
	"time"

	"pandas/internal/blob"
	"pandas/internal/core"
	"pandas/internal/gossip"
	"pandas/internal/ids"
	"pandas/internal/latency"
	"pandas/internal/simnet"
	"pandas/internal/wire"
)

// Result reports a baseline slot: per-node sampling completion (negative
// = never) and traffic totals from the network layer.
type Result struct {
	Sampling     []time.Duration
	MsgsPerNode  []int
	BytesPerNode []int64
	BuilderBytes int64
}

// DeadlineRate returns the fraction of nodes sampling within deadline.
func (r *Result) DeadlineRate(deadline time.Duration) float64 {
	ok := 0
	for _, s := range r.Sampling {
		if s >= 0 && s <= deadline {
			ok++
		}
	}
	if len(r.Sampling) == 0 {
		return 0
	}
	return float64(ok) / float64(len(r.Sampling))
}

// Config parameterizes a baseline deployment.
type Config struct {
	Core     core.Config
	N        int
	Seed     int64
	Latency  simnet.LatencyModel
	LossRate float64
}

func (c *Config) fill() {
	if c.Latency == nil {
		vertices := c.N + 1
		if vertices > 10000 {
			vertices = 10000
		}
		c.Latency = latency.NewIPFSLike(c.Seed, vertices)
	}
	if c.LossRate < 0 {
		c.LossRate = simnet.DefaultLossRate
	}
}

// custodyChunk is one gossip frame: a batch of cells of one line.
type custodyChunk struct {
	id    gossip.MsgID
	slot  uint64
	line  blob.Line
	cells []wire.Cell
}

func (c *custodyChunk) wireSize(cellBytes int) int {
	// Comparable framing to a PANDAS response plus the gossip message ID.
	m := wire.Response{Slot: c.slot, Cells: c.cells}
	return m.WireSize(cellBytes) + 8
}

// GossipCluster runs DAS with GossipSub-based dissemination: one topic
// per row/column, membership = the line's holders, mesh degree 8. The
// builder injects r copies of every line into its topic; members flood.
// Explicit consolidation is disabled; sampling works as in PANDAS.
type GossipCluster struct {
	cfg      Config
	net      *simnet.Network
	table    *core.Table
	nodes    []*core.Node
	overlays map[blob.Line]*gossip.Overlay
	routers  []*gossip.Router
	bIndex   int
	rng      *rand.Rand
	nextMsg  uint64
}

type simTransport struct {
	net  *simnet.Network
	self int
}

func (s simTransport) Send(to, size int, payload any) { s.net.Send(s.self, to, size, payload) }
func (s simTransport) SendReliable(to, size int, payload any) {
	s.net.SendReliable(s.self, to, size, payload)
}
func (s simTransport) After(d time.Duration, fn func()) { s.net.After(d, fn) }
func (s simTransport) Now() time.Duration               { return s.net.Now() }

// NewGossipCluster builds the GossipSub-DAS deployment.
func NewGossipCluster(cfg Config) (*GossipCluster, error) {
	cfg.fill()
	coreCfg := cfg.Core
	coreCfg.DisableConsolidation = true
	if err := coreCfg.Validate(); err != nil {
		return nil, err
	}
	net, err := simnet.New(simnet.Config{
		Latency:  cfg.Latency,
		LossRate: cfg.LossRate,
		Seed:     cfg.Seed,
		MinDelay: time.Millisecond,
	})
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	nodeIDs := make([]ids.NodeID, cfg.N)
	for i := range nodeIDs {
		nodeIDs[i] = ids.NewTestIdentity(cfg.Seed<<20 + int64(i)).ID
	}
	var seed [32]byte
	rng.Read(seed[:])
	table, err := core.NewTable(coreCfg.Assign, seed, nodeIDs)
	if err != nil {
		return nil, err
	}
	g := &GossipCluster{
		cfg:      cfg,
		net:      net,
		table:    table,
		overlays: make(map[blob.Line]*gossip.Overlay),
		rng:      rng,
	}
	g.nodes = make([]*core.Node, cfg.N)
	g.routers = make([]*gossip.Router, cfg.N)
	for i := 0; i < cfg.N; i++ {
		i := i
		net.AddNode(func(from, size int, payload any) {
			g.dispatch(i, from, size, payload)
		}, simnet.NodeBandwidth, simnet.NodeBandwidth)
		g.nodes[i] = core.NewNode(coreCfg, i, table, simTransport{net: net, self: i}, cfg.Seed^int64(i*40503))
		g.routers[i] = gossip.NewRouter(i)
	}
	g.bIndex = net.AddNode(nil, simnet.BuilderBandwidth, simnet.BuilderBandwidth)

	// One topic mesh per line over its holders.
	n := coreCfg.Blob.N()
	for kind := 0; kind < 2; kind++ {
		for idx := 0; idx < n; idx++ {
			l := blob.Line{Kind: blob.Row, Index: uint16(idx)}
			if kind == 1 {
				l.Kind = blob.Col
			}
			members := table.Holders(l)
			if len(members) == 0 {
				continue
			}
			g.overlays[l] = gossip.NewOverlay(rng, members, gossip.DefaultDegree)
		}
	}
	return g, nil
}

func (g *GossipCluster) dispatch(node, from, size int, payload any) {
	chunk, ok := payload.(*custodyChunk)
	if !ok {
		g.nodes[node].HandleMessage(from, size, payload)
		return
	}
	overlay, ok := g.overlays[chunk.line]
	if !ok {
		return
	}
	fwd, isNew := g.routers[node].Receive(overlay, chunk.id, from)
	if !isNew {
		return
	}
	for _, peer := range fwd {
		g.net.Send(node, peer, size, chunk)
	}
	g.nodes[node].DeliverCustody(chunk.cells)
}

// Table exposes the epoch table.
func (g *GossipCluster) Table() *core.Table { return g.table }

// RunSlot publishes the blob through the topic meshes and measures
// per-node sampling completion.
func (g *GossipCluster) RunSlot(slot uint64) (*Result, error) {
	start := g.net.Now()
	for _, nd := range g.nodes {
		nd.StartSlot(slot)
	}
	for _, r := range g.routers {
		r.Reset()
	}

	coreCfg := g.cfg.Core
	n := coreCfg.Blob.N()
	copies := coreCfg.Redundancy
	if copies < 1 {
		copies = 1
	}
	g.net.After(0, func() {
		// The builder pushes every line into its topic: cells chunked to
		// datagram size, each chunk injected at `copies` random members
		// (the same outbound budget as PANDAS's redundant policy).
		for kind := 0; kind < 2; kind++ {
			for idx := 0; idx < n; idx++ {
				l := blob.Line{Kind: blob.Row, Index: uint16(idx)}
				if kind == 1 {
					l.Kind = blob.Col
				}
				overlay, ok := g.overlays[l]
				if !ok {
					continue
				}
				members := overlay.Members()
				cells := l.Cells(n)
				for startIdx := 0; startIdx < len(cells); startIdx += coreCfg.MaxCellsPerMsg {
					end := min(startIdx+coreCfg.MaxCellsPerMsg, len(cells))
					batch := make([]wire.Cell, 0, end-startIdx)
					for _, id := range cells[startIdx:end] {
						batch = append(batch, wire.Cell{ID: id})
					}
					g.nextMsg++
					chunk := &custodyChunk{id: gossip.MsgID(g.nextMsg), slot: slot, line: l, cells: batch}
					size := chunk.wireSize(coreCfg.Blob.CellBytes)
					entry := copies
					if entry > len(members) {
						entry = len(members)
					}
					for _, mi := range g.rng.Perm(len(members))[:entry] {
						g.net.Send(g.bIndex, members[mi], size, chunk)
					}
				}
			}
		}
	})
	g.net.Run(start + 12*time.Second)

	res := &Result{BuilderBytes: g.net.Stats(g.bIndex).BytesSent}
	for i, nd := range g.nodes {
		s := time.Duration(-1)
		if nd.Metrics().Sampled {
			s = nd.Metrics().SampledAt - start
		}
		res.Sampling = append(res.Sampling, s)
		st := g.net.Stats(i)
		res.MsgsPerNode = append(res.MsgsPerNode, st.TotalMsgs())
		res.BytesPerNode = append(res.BytesPerNode, st.TotalBytes())
	}
	g.net.ResetStats()
	return res, nil
}

package baseline

import (
	"testing"
	"time"

	"pandas/internal/blob"
	"pandas/internal/core"
	"pandas/internal/simnet"
)

func testBaseConfig(n int) Config {
	return Config{
		Core:     core.TestConfig(),
		N:        n,
		Seed:     11,
		LossRate: simnet.DefaultLossRate,
	}
}

func TestGossipClusterSamplingCompletes(t *testing.T) {
	g, err := NewGossipCluster(testBaseConfig(120))
	if err != nil {
		t.Fatal(err)
	}
	res, err := g.RunSlot(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sampling) != 120 {
		t.Fatalf("samples = %d", len(res.Sampling))
	}
	done := 0
	for _, s := range res.Sampling {
		if s >= 0 {
			done++
		}
	}
	// Gossip dissemination should allow most nodes to finish the slot;
	// the interesting comparison (deadline rate) happens in experiments.
	if frac := float64(done) / 120; frac < 0.8 {
		t.Fatalf("only %.0f%% finished sampling at all", frac*100)
	}
	if res.BuilderBytes == 0 {
		t.Fatal("builder sent nothing")
	}
}

func TestGossipSlowerThanPandasAtTail(t *testing.T) {
	// The paper's headline comparison: PANDAS completes sampling faster
	// than GossipSub-based dissemination.
	cfg := testBaseConfig(120)
	g, err := NewGossipCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	resG, err := g.RunSlot(1)
	if err != nil {
		t.Fatal(err)
	}
	pc, err := core.NewCluster(core.ClusterConfig{Core: cfg.Core, N: cfg.N, Seed: cfg.Seed, LossRate: cfg.LossRate})
	if err != nil {
		t.Fatal(err)
	}
	resP, err := pc.RunSlot(1)
	if err != nil {
		t.Fatal(err)
	}
	deadline := cfg.Core.Deadline
	if rp, rg := resP.DeadlineRate(deadline), resG.DeadlineRate(deadline); rp < rg {
		t.Fatalf("PANDAS (%v) should meet the deadline at least as often as GossipSub (%v)", rp, rg)
	}
}

func TestDHTClusterSamplingCompletes(t *testing.T) {
	d, err := NewDHTCluster(testBaseConfig(80))
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.RunSlot(1)
	if err != nil {
		t.Fatal(err)
	}
	done := 0
	for _, s := range res.Sampling {
		if s >= 0 {
			done++
		}
	}
	if frac := float64(done) / 80; frac < 0.8 {
		t.Fatalf("only %.0f%% completed DHT sampling", frac*100)
	}
	// Multi-hop retrieval must show up as message overhead.
	total := 0
	for _, m := range res.MsgsPerNode {
		total += m
	}
	if total == 0 {
		t.Fatal("no DHT messages recorded")
	}
}

func TestDHTSlowerThanGossipOrPandas(t *testing.T) {
	cfg := testBaseConfig(80)
	d, err := NewDHTCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	resD, err := d.RunSlot(1)
	if err != nil {
		t.Fatal(err)
	}
	pc, err := core.NewCluster(core.ClusterConfig{Core: cfg.Core, N: cfg.N, Seed: cfg.Seed, LossRate: cfg.LossRate})
	if err != nil {
		t.Fatal(err)
	}
	resP, err := pc.RunSlot(1)
	if err != nil {
		t.Fatal(err)
	}
	// Compare median sampling times: PANDAS must win.
	medP := median(outcomesSampling(resP))
	medD := median(resD.Sampling)
	if medP <= 0 || medD <= 0 {
		t.Fatalf("invalid medians %v %v", medP, medD)
	}
	if medP > medD {
		t.Fatalf("PANDAS median %v slower than DHT %v", medP, medD)
	}
}

func TestDeadlineRateHelper(t *testing.T) {
	r := &Result{Sampling: []time.Duration{time.Second, 5 * time.Second, -1}}
	if got := r.DeadlineRate(4 * time.Second); got != 1.0/3 {
		t.Fatalf("DeadlineRate = %v", got)
	}
	empty := &Result{}
	if empty.DeadlineRate(time.Second) != 0 {
		t.Fatal("empty rate should be 0")
	}
}

func TestParcelMapping(t *testing.T) {
	n := 32
	if parcelOf(blob.CellID{Row: 0, Col: 0}, n) != 0 {
		t.Fatal("first cell should be parcel 0")
	}
	if parcelOf(blob.CellID{Row: 2, Col: 0}, n) != 1 {
		t.Fatal("cell 64 should start parcel 1")
	}
	k1 := parcelKey(1, 0)
	k2 := parcelKey(1, 1)
	k3 := parcelKey(2, 0)
	if k1 == k2 || k1 == k3 {
		t.Fatal("parcel keys must be distinct")
	}
	if parcelKey(1, 0) != k1 {
		t.Fatal("parcel keys must be deterministic")
	}
}

func median(s []time.Duration) time.Duration {
	var ok []time.Duration
	for _, v := range s {
		if v >= 0 {
			ok = append(ok, v)
		}
	}
	if len(ok) == 0 {
		return -1
	}
	for i := 1; i < len(ok); i++ {
		for j := i; j > 0 && ok[j] < ok[j-1]; j-- {
			ok[j], ok[j-1] = ok[j-1], ok[j]
		}
	}
	return ok[len(ok)/2]
}

func outcomesSampling(res *core.SlotResult) []time.Duration {
	out := make([]time.Duration, len(res.Outcomes))
	for i, o := range res.Outcomes {
		out[i] = o.Sampling
	}
	return out
}

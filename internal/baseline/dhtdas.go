package baseline

import (
	"crypto/sha256"
	"encoding/binary"
	"time"

	"pandas/internal/blob"
	"pandas/internal/dht"
	"pandas/internal/ids"
	"pandas/internal/simnet"
)

// ParcelCells is the number of adjacent cells per DHT parcel (the paper
// flattens the matrix and splits it into 64-cell parcels).
const ParcelCells = 64

// Retry pacing for GETs that miss: the parcel may not be stored yet
// early in the slot (the builder's 4,096 PUTs take seconds), so retries
// back off exponentially to avoid a congestion spiral of full iterative
// lookups.
const (
	dhtRetryDelay    = 300 * time.Millisecond
	dhtRetryBackoff  = 1.6
	dhtRetryDelayMax = 2 * time.Second
)

// parcelKey derives the DHT key of a parcel.
func parcelKey(slot uint64, parcel int) ids.NodeID {
	var buf [16]byte
	binary.BigEndian.PutUint64(buf[:8], slot)
	binary.BigEndian.PutUint64(buf[8:], uint64(parcel))
	return sha256.Sum256(buf[:])
}

// parcelOf maps a cell to its parcel index (row-major flattening).
func parcelOf(id blob.CellID, n int) int {
	return id.Index(n) / ParcelCells
}

// DHTCluster runs DAS over a Kademlia DHT: the builder PUTs every 64-cell
// parcel (replicated at the 8 closest peers), and sampling nodes GET the
// parcels containing their random cells through iterative multi-hop
// routing. There is no consolidation phase.
type DHTCluster struct {
	cfg    Config
	net    *simnet.Network
	peers  []*dht.Peer
	bPeer  *dht.Peer
	bIndex int

	// Per-slot sampling state.
	sampleDone []time.Duration
}

// NewDHTCluster builds the DHT-DAS deployment: N peers plus the builder,
// all bootstrapped with the full peer list (a well-crawled network).
func NewDHTCluster(cfg Config) (*DHTCluster, error) {
	cfg.fill()
	if err := cfg.Core.Validate(); err != nil {
		return nil, err
	}
	net, err := simnet.New(simnet.Config{
		Latency:  cfg.Latency,
		LossRate: cfg.LossRate,
		Seed:     cfg.Seed,
		MinDelay: time.Millisecond,
	})
	if err != nil {
		return nil, err
	}
	d := &DHTCluster{cfg: cfg, net: net}
	entries := make([]dht.Entry, cfg.N+1)
	for i := 0; i <= cfg.N; i++ {
		entries[i] = dht.Entry{ID: ids.NewTestIdentity(cfg.Seed<<20 + int64(i)).ID, Addr: i}
	}
	d.peers = make([]*dht.Peer, cfg.N)
	for i := 0; i < cfg.N; i++ {
		i := i
		net.AddNode(func(from, size int, payload any) {
			d.peers[i].HandleMessage(from, payload)
		}, simnet.NodeBandwidth, simnet.NodeBandwidth)
		d.peers[i] = dht.NewPeer(entries[i], dhtTransport{net: net, self: i}, 0)
		d.peers[i].Bootstrap(entries)
	}
	d.bIndex = net.AddNode(func(from, size int, payload any) {
		d.bPeer.HandleMessage(from, payload)
	}, simnet.BuilderBandwidth, simnet.BuilderBandwidth)
	d.bPeer = dht.NewPeer(entries[cfg.N], dhtTransport{net: net, self: d.bIndex}, 0)
	d.bPeer.Bootstrap(entries)
	return d, nil
}

type dhtTransport struct {
	net  *simnet.Network
	self int
}

func (t dhtTransport) Self() int                        { return t.self }
func (t dhtTransport) Send(to, size int, payload any)   { t.net.Send(t.self, to, size, payload) }
func (t dhtTransport) After(d time.Duration, fn func()) { t.net.After(d, fn) }
func (t dhtTransport) Now() time.Duration               { return t.net.Now() }

// RunSlot stores all parcels and samples them from every node.
func (d *DHTCluster) RunSlot(slot uint64) (*Result, error) {
	start := d.net.Now()
	cfg := d.cfg.Core
	n := cfg.Blob.N()
	totalParcels := (cfg.Blob.ExtendedCells() + ParcelCells - 1) / ParcelCells
	parcelBytes := ParcelCells * cfg.Blob.CellWireBytes()

	// Builder: PUT every parcel at slot start. dht.Put replicates at the
	// Replication (8) closest peers, matching the paper's "eight put
	// operations per parcel" budget.
	d.net.After(0, func() {
		for p := 0; p < totalParcels; p++ {
			d.bPeer.Put(parcelKey(slot, p), parcelBytes, p, func(int) {})
		}
	})

	// Samplers: each node derives the parcels covering its random cells
	// and GETs them, retrying misses until the slot ends.
	d.sampleDone = make([]time.Duration, d.cfg.N)
	remaining := make([]int, d.cfg.N)
	for i := 0; i < d.cfg.N; i++ {
		d.sampleDone[i] = -1
		node := i
		rng := newSplitMix(uint64(d.cfg.Seed) ^ uint64(node)*0x9E3779B97F4A7C15)
		need := map[int]bool{}
		for len(need) < cfg.Samples {
			idx := int(rng.next() % uint64(cfg.Blob.ExtendedCells()))
			need[parcelOf(blob.CellIDFromIndex(idx, n), n)] = true
		}
		remaining[node] = len(need)
		for p := range need {
			p := p
			delay := dhtRetryDelay
			var attempt func()
			attempt = func() {
				d.peers[node].Get(parcelKey(slot, p), func(dht.GetResp) {
					remaining[node]--
					if remaining[node] == 0 {
						d.sampleDone[node] = d.net.Now() - start
					}
				}, func() {
					// Not stored yet (or routed poorly): retry with
					// exponential backoff until the slot runs out.
					if d.net.Now()-start < 12*time.Second-delay {
						d.net.After(delay, attempt)
						delay = time.Duration(float64(delay) * dhtRetryBackoff)
						if delay > dhtRetryDelayMax {
							delay = dhtRetryDelayMax
						}
					}
				})
			}
			d.net.After(0, attempt)
		}
	}

	d.net.Run(start + 12*time.Second)

	res := &Result{BuilderBytes: d.net.Stats(d.bIndex).BytesSent}
	for i := 0; i < d.cfg.N; i++ {
		res.Sampling = append(res.Sampling, d.sampleDone[i])
		st := d.net.Stats(i)
		res.MsgsPerNode = append(res.MsgsPerNode, st.TotalMsgs())
		res.BytesPerNode = append(res.BytesPerNode, st.TotalBytes())
	}
	d.net.ResetStats()
	return res, nil
}

// splitMix is a tiny deterministic generator for sample selection.
type splitMix struct{ state uint64 }

func newSplitMix(seed uint64) *splitMix { return &splitMix{state: seed} }

func (s *splitMix) next() uint64 {
	s.state += 0x9E3779B97F4A7C15
	z := s.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

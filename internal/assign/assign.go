// Package assign implements PANDAS's deterministic, short-lived
// cell-to-node assignment (Section 5 of the paper).
//
// The assignment function A(n, e) maps a node ID and an epoch to a fixed
// number of distinct rows and distinct columns of the extended blob
// matrix. Two properties are required:
//
//   - Determinism: any two nodes compute A(n, e) identically even with
//     inconsistent network views — so the function depends only on the
//     node ID and the epoch seed, never on view contents (unlike
//     consistent hashing).
//   - Short-liveness: the assignment changes unpredictably each epoch,
//     driven by the RANDAO-style epoch seed, preventing targeted eclipse
//     or censorship attacks on specific rows/columns.
package assign

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math"

	"pandas/internal/blob"
	"pandas/internal/ids"
)

// DefaultLinesPerKind is the paper's default custody load: 8 distinct rows
// and 8 distinct columns per node.
const DefaultLinesPerKind = 8

// Seed is a RANDAO-style epoch seed, known one epoch in advance.
type Seed [32]byte

// Params configures the assignment function.
type Params struct {
	// Rows and Cols are the number of distinct rows/columns assigned to
	// each node (8 and 8 in the paper).
	Rows, Cols int
	// N is the extended matrix width (512 in the paper).
	N int
}

// DefaultParams returns the paper's assignment parameters for the given
// extended width.
func DefaultParams(n int) Params {
	return Params{Rows: DefaultLinesPerKind, Cols: DefaultLinesPerKind, N: n}
}

// Validate checks parameter consistency.
func (p Params) Validate() error {
	switch {
	case p.N < 2:
		return fmt.Errorf("assign: invalid matrix width %d", p.N)
	case p.Rows < 0 || p.Rows > p.N:
		return fmt.Errorf("assign: rows %d out of range [0,%d]", p.Rows, p.N)
	case p.Cols < 0 || p.Cols > p.N:
		return fmt.Errorf("assign: cols %d out of range [0,%d]", p.Cols, p.N)
	case p.Rows+p.Cols == 0:
		return fmt.Errorf("assign: empty assignment")
	}
	return nil
}

// Assignment is the custody duty of one node for one epoch.
type Assignment struct {
	Rows []uint16 // sorted, distinct
	Cols []uint16 // sorted, distinct
}

// Lines returns the assignment as a flat list of lines, rows first.
func (a Assignment) Lines() []blob.Line {
	out := make([]blob.Line, 0, len(a.Rows)+len(a.Cols))
	for _, r := range a.Rows {
		out = append(out, blob.Line{Kind: blob.Row, Index: r})
	}
	for _, c := range a.Cols {
		out = append(out, blob.Line{Kind: blob.Col, Index: c})
	}
	return out
}

// HasLine reports whether the assignment includes the line.
func (a Assignment) HasLine(l blob.Line) bool {
	s := a.Rows
	if l.Kind == blob.Col {
		s = a.Cols
	}
	for _, x := range s {
		if x == l.Index {
			return true
		}
	}
	return false
}

// Covers reports whether the node's custody includes the cell, i.e. one of
// its assigned rows or columns passes through it.
func (a Assignment) Covers(c blob.CellID) bool {
	return a.HasLine(blob.Line{Kind: blob.Row, Index: c.Row}) ||
		a.HasLine(blob.Line{Kind: blob.Col, Index: c.Col})
}

// CellCount returns the number of distinct cells under custody:
// rows*N + cols*N - rows*cols (intersections counted once). With the
// paper's defaults this is 8*512 + 8*512 - 64 = 8,128... the paper counts
// 8*512 + 8*510 = 8,176 by excluding two intersections per column; we use
// the exact inclusion-exclusion count.
func (a Assignment) CellCount(n int) int {
	r, c := len(a.Rows), len(a.Cols)
	return r*n + c*n - r*c
}

// For computes the assignment of node id in the epoch identified by seed.
// The computation is a pure function of (params, seed, id): it draws
// distinct row indices and distinct column indices from a
// cryptographically seeded PRNG, so it is deterministic across nodes and
// unpredictable across epochs.
func For(p Params, seed Seed, id ids.NodeID) (Assignment, error) {
	if err := p.Validate(); err != nil {
		return Assignment{}, err
	}
	rng := newPRNG(seed, id)
	return Assignment{
		Rows: drawDistinct(rng, p.Rows, p.N),
		Cols: drawDistinct(rng, p.Cols, p.N),
	}, nil
}

// LineHolders returns, for every line of the matrix, the indices into
// nodes of the nodes whose assignment includes that line. It is the
// inverse view used by builders (choosing seeding targets) and by fetchers
// (choosing peers to query): W(l) = {n in view | l in A(n, e)}.
//
// The result is indexed as [kind][line index] with kind 0 = rows,
// kind 1 = columns.
func LineHolders(p Params, seed Seed, nodes []ids.NodeID) ([][][]int, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	holders := make([][][]int, 2)
	holders[0] = make([][]int, p.N)
	holders[1] = make([][]int, p.N)
	for i, id := range nodes {
		a, err := For(p, seed, id)
		if err != nil {
			return nil, err
		}
		for _, r := range a.Rows {
			holders[0][r] = append(holders[0][r], i)
		}
		for _, c := range a.Cols {
			holders[1][c] = append(holders[1][c], i)
		}
	}
	return holders, nil
}

// drawDistinct samples count distinct values in [0, n) via a partial
// Fisher-Yates over a virtual identity array, then sorts them.
func drawDistinct(rng *prng, count, n int) []uint16 {
	if count == 0 {
		return nil
	}
	// Sparse Fisher-Yates: only touched indices are materialized.
	swapped := make(map[int]int, count*2)
	out := make([]uint16, count)
	for i := 0; i < count; i++ {
		j := i + int(rng.uint64n(uint64(n-i)))
		vi, ok := swapped[j]
		if !ok {
			vi = j
		}
		vj, ok := swapped[i]
		if !ok {
			vj = i
		}
		out[i] = uint16(vi)
		swapped[j] = vj
	}
	insertionSortU16(out)
	return out
}

func insertionSortU16(s []uint16) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// prng is a SplitMix64 generator seeded from SHA-256(seed || id), giving
// uniform, reproducible streams with cryptographic seed separation between
// nodes and epochs.
type prng struct {
	state uint64
}

func newPRNG(seed Seed, id ids.NodeID) *prng {
	h := sha256.New()
	h.Write(seed[:])
	h.Write(id[:])
	d := h.Sum(nil)
	return &prng{state: binary.BigEndian.Uint64(d[:8])}
}

func (p *prng) next() uint64 {
	p.state += 0x9E3779B97F4A7C15
	z := p.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// uint64n returns a uniform value in [0, n) using rejection sampling.
func (p *prng) uint64n(n uint64) uint64 {
	if n == 0 {
		return 0
	}
	limit := ^uint64(0) - ^uint64(0)%n
	for {
		v := p.next()
		if v < limit {
			return v % n
		}
	}
}

// CensorshipProbability returns the probability that an adversary
// controlling a fraction f of the network's nodes holds EVERY copy of
// some specific line, letting it censor that line's cells (the targeted
// Sybil attack of the paper's Section 9).
//
// Holder counts per line are Binomial(nodes, lines/N) ≈ Poisson(λ) with
// λ = nodes*(rows+cols)/(2N); a line is censorable when all its holders
// are adversarial, so P = E[f^H] = exp(-λ(1-f)). The paper's defenses —
// unpredictable per-epoch rotation and full-network randomized fetching —
// mean the adversary cannot choose WHICH line it controls, and the
// assignment changes every 6.4 minutes, faster than ENR crawls.
func CensorshipProbability(p Params, nodes int, sybilFraction float64) float64 {
	if nodes <= 0 || sybilFraction <= 0 {
		return 0
	}
	if sybilFraction >= 1 {
		return 1
	}
	lambda := float64(nodes) * float64(p.Rows+p.Cols) / float64(2*p.N)
	return math.Exp(-lambda * (1 - sybilFraction))
}

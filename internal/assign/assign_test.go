package assign

import (
	"testing"
	"testing/quick"

	"pandas/internal/blob"
	"pandas/internal/ids"
)

func seedOf(b byte) Seed {
	var s Seed
	s[0] = b
	return s
}

func TestForDeterministic(t *testing.T) {
	p := DefaultParams(512)
	id := ids.NewTestIdentity(1).ID
	a1, err := For(p, seedOf(1), id)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := For(p, seedOf(1), id)
	if err != nil {
		t.Fatal(err)
	}
	if len(a1.Rows) != len(a2.Rows) || len(a1.Cols) != len(a2.Cols) {
		t.Fatal("lengths differ")
	}
	for i := range a1.Rows {
		if a1.Rows[i] != a2.Rows[i] {
			t.Fatal("rows differ between identical calls")
		}
	}
	for i := range a1.Cols {
		if a1.Cols[i] != a2.Cols[i] {
			t.Fatal("cols differ between identical calls")
		}
	}
}

func TestForDistinctAndInRange(t *testing.T) {
	p := DefaultParams(512)
	for s := int64(0); s < 20; s++ {
		id := ids.NewTestIdentity(s).ID
		a, err := For(p, seedOf(byte(s)), id)
		if err != nil {
			t.Fatal(err)
		}
		if len(a.Rows) != 8 || len(a.Cols) != 8 {
			t.Fatalf("got %d rows, %d cols", len(a.Rows), len(a.Cols))
		}
		seen := map[uint16]bool{}
		for _, r := range a.Rows {
			if int(r) >= p.N {
				t.Fatalf("row %d out of range", r)
			}
			if seen[r] {
				t.Fatalf("duplicate row %d", r)
			}
			seen[r] = true
		}
		seen = map[uint16]bool{}
		for _, c := range a.Cols {
			if int(c) >= p.N {
				t.Fatalf("col %d out of range", c)
			}
			if seen[c] {
				t.Fatalf("duplicate col %d", c)
			}
			seen[c] = true
		}
	}
}

func TestForSorted(t *testing.T) {
	p := DefaultParams(512)
	a, err := For(p, seedOf(9), ids.NewTestIdentity(9).ID)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(a.Rows); i++ {
		if a.Rows[i] < a.Rows[i-1] {
			t.Fatal("rows not sorted")
		}
	}
	for i := 1; i < len(a.Cols); i++ {
		if a.Cols[i] < a.Cols[i-1] {
			t.Fatal("cols not sorted")
		}
	}
}

func TestShortLiveness(t *testing.T) {
	// Different epoch seeds must (overwhelmingly) give different
	// assignments for the same node.
	p := DefaultParams(512)
	id := ids.NewTestIdentity(3).ID
	a1, _ := For(p, seedOf(1), id)
	a2, _ := For(p, seedOf(2), id)
	same := true
	for i := range a1.Rows {
		if a1.Rows[i] != a2.Rows[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("assignment did not change across epochs")
	}
}

func TestNodeSeparation(t *testing.T) {
	p := DefaultParams(512)
	a1, _ := For(p, seedOf(1), ids.NewTestIdentity(1).ID)
	a2, _ := For(p, seedOf(1), ids.NewTestIdentity(2).ID)
	same := true
	for i := range a1.Rows {
		if a1.Rows[i] != a2.Rows[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("two nodes drew identical rows (vanishingly unlikely)")
	}
}

func TestUniformity(t *testing.T) {
	// Over many nodes, each row index should be assigned roughly equally
	// often: mean = nodes*rows/N, and no line should deviate wildly.
	p := DefaultParams(128)
	const nodes = 2000
	counts := make([]int, p.N)
	for i := 0; i < nodes; i++ {
		a, err := For(p, seedOf(5), ids.NewTestIdentity(int64(i)).ID)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range a.Rows {
			counts[r]++
		}
	}
	mean := float64(nodes*p.Rows) / float64(p.N)
	for i, c := range counts {
		if float64(c) < mean*0.5 || float64(c) > mean*1.5 {
			t.Fatalf("row %d assigned %d times, mean %.1f (non-uniform)", i, c, mean)
		}
	}
}

func TestLinesAndHasLine(t *testing.T) {
	a := Assignment{Rows: []uint16{1, 5}, Cols: []uint16{2}}
	lines := a.Lines()
	if len(lines) != 3 {
		t.Fatalf("len(lines) = %d", len(lines))
	}
	if !a.HasLine(blob.Line{Kind: blob.Row, Index: 5}) {
		t.Fatal("HasLine missed row 5")
	}
	if a.HasLine(blob.Line{Kind: blob.Col, Index: 5}) {
		t.Fatal("HasLine found col 5")
	}
	if !a.Covers(blob.CellID{Row: 1, Col: 100}) {
		t.Fatal("Covers missed row cell")
	}
	if !a.Covers(blob.CellID{Row: 100, Col: 2}) {
		t.Fatal("Covers missed col cell")
	}
	if a.Covers(blob.CellID{Row: 100, Col: 100}) {
		t.Fatal("Covers claimed uncovered cell")
	}
}

func TestCellCount(t *testing.T) {
	a := Assignment{Rows: []uint16{0, 1, 2, 3, 4, 5, 6, 7}, Cols: []uint16{0, 1, 2, 3, 4, 5, 6, 7}}
	// 8*512 + 8*512 - 64 distinct cells.
	if got := a.CellCount(512); got != 8*512+8*512-64 {
		t.Fatalf("CellCount = %d", got)
	}
}

func TestLineHolders(t *testing.T) {
	p := Params{Rows: 2, Cols: 2, N: 16}
	nodes := make([]ids.NodeID, 50)
	for i := range nodes {
		nodes[i] = ids.NewTestIdentity(int64(i)).ID
	}
	holders, err := LineHolders(p, seedOf(1), nodes)
	if err != nil {
		t.Fatal(err)
	}
	// Cross-check against direct assignment computation.
	for i, id := range nodes {
		a, _ := For(p, seedOf(1), id)
		for _, r := range a.Rows {
			found := false
			for _, h := range holders[0][r] {
				if h == i {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("node %d missing from holders of row %d", i, r)
			}
		}
		for _, c := range a.Cols {
			found := false
			for _, h := range holders[1][c] {
				if h == i {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("node %d missing from holders of col %d", i, c)
			}
		}
	}
}

func TestParamsValidate(t *testing.T) {
	bad := []Params{
		{Rows: 8, Cols: 8, N: 1},
		{Rows: -1, Cols: 8, N: 16},
		{Rows: 8, Cols: 17, N: 16},
		{Rows: 0, Cols: 0, N: 16},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
	if err := DefaultParams(512).Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
}

func TestDrawDistinctProperties(t *testing.T) {
	f := func(seedByte byte, idSeed int64) bool {
		rng := newPRNG(seedOf(seedByte), ids.NewTestIdentity(idSeed%100).ID)
		n := 32
		count := 1 + int(uint(seedByte)%16)
		vals := drawDistinct(rng, count, n)
		if len(vals) != count {
			return false
		}
		seen := map[uint16]bool{}
		for i, v := range vals {
			if int(v) >= n || seen[v] {
				return false
			}
			seen[v] = true
			if i > 0 && vals[i] < vals[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDrawDistinctFullRange(t *testing.T) {
	rng := newPRNG(seedOf(1), ids.NewTestIdentity(1).ID)
	vals := drawDistinct(rng, 16, 16)
	for i, v := range vals {
		if int(v) != i {
			t.Fatalf("drawing all of [0,16) must yield the identity, got %v", vals)
		}
	}
}

func BenchmarkFor(b *testing.B) {
	p := DefaultParams(512)
	id := ids.NewTestIdentity(1).ID
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := For(p, seedOf(byte(i)), id); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLineHolders10k(b *testing.B) {
	p := DefaultParams(512)
	nodes := make([]ids.NodeID, 10000)
	for i := range nodes {
		nodes[i] = ids.NewTestIdentity(int64(i)).ID
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := LineHolders(p, seedOf(1), nodes); err != nil {
			b.Fatal(err)
		}
	}
}

func TestCensorshipProbability(t *testing.T) {
	p := DefaultParams(512)
	// Paper parameters at 10,000 nodes: lambda ~ 156 holders per line;
	// even a 50% Sybil fraction leaves a vanishing censorship chance.
	if got := CensorshipProbability(p, 10000, 0.5); got > 1e-30 {
		t.Fatalf("P(censor) at 50%% Sybils = %g, expected vanishing", got)
	}
	// Monotone in the Sybil fraction.
	prev := 0.0
	for _, f := range []float64{0.1, 0.5, 0.9, 0.99} {
		cur := CensorshipProbability(p, 1000, f)
		if cur < prev {
			t.Fatal("not monotone in Sybil fraction")
		}
		prev = cur
	}
	// Edge cases.
	if CensorshipProbability(p, 0, 0.5) != 0 || CensorshipProbability(p, 100, 0) != 0 {
		t.Fatal("degenerate inputs should be 0")
	}
	if CensorshipProbability(p, 100, 1) != 1 {
		t.Fatal("full Sybil control should be 1")
	}
	// Monte Carlo sanity at small scale: draw assignments, mark a random
	// fraction of nodes Sybil, count lines fully controlled.
	small := Params{Rows: 2, Cols: 2, N: 32}
	const nodes, trials = 100, 300
	f := 0.6
	rngSeed := int64(0)
	hit, total := 0, 0
	for trial := 0; trial < trials; trial++ {
		rngSeed++
		var seed Seed
		seed[0] = byte(trial)
		seed[1] = byte(trial >> 8)
		holders := make(map[uint16][]int)
		for i := 0; i < nodes; i++ {
			a, err := For(small, seed, ids.NewTestIdentity(rngSeed*1000+int64(i)).ID)
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range a.Rows {
				holders[r] = append(holders[r], i)
			}
		}
		// Nodes 0..59 are Sybil (60%).
		line := uint16(trial % 32)
		hs := holders[line]
		if len(hs) == 0 {
			continue
		}
		total++
		all := true
		for _, h := range hs {
			if float64(h) >= f*nodes {
				all = false
				break
			}
		}
		if all {
			hit++
		}
	}
	want := CensorshipProbability(small, nodes, f) // includes empty-holder mass
	got := float64(hit) / float64(total)
	// Loose agreement: the analytic form conditions differently on empty
	// lines, so allow a wide band.
	if got > want*4+0.1 {
		t.Fatalf("Monte Carlo censorship rate %g far above analytic %g", got, want)
	}
}

// Package ids provides node identities for the PANDAS network: ed25519
// key pairs, 32-byte node IDs derived by hashing the public key, and
// signed Ethereum-Node-Record-style (ENR) contact records.
//
// As in Ethereum, a node is identified by the hash of its public key; the
// association between nodes and validators is never exposed. Records carry
// a sequence number so stale entries can be superseded, and a signature so
// third parties (DHT storers, crawlers) can verify them.
package ids

import (
	"crypto/ed25519"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	mrand "math/rand"
	"sync"
)

// IDSize is the size of a NodeID in bytes.
const IDSize = 32

// Errors returned by this package.
var (
	ErrBadSignature = errors.New("ids: invalid signature")
	ErrBadRecord    = errors.New("ids: malformed record")
)

// NodeID uniquely identifies a node: the SHA-256 hash of its public key.
type NodeID [IDSize]byte

// String returns a short hex prefix for logs.
func (id NodeID) String() string { return hex.EncodeToString(id[:6]) }

// Hex returns the full hex encoding.
func (id NodeID) Hex() string { return hex.EncodeToString(id[:]) }

// IsZero reports whether the ID is all zeroes.
func (id NodeID) IsZero() bool { return id == NodeID{} }

// XOR returns the Kademlia distance metric between two IDs.
func (id NodeID) XOR(other NodeID) NodeID {
	var out NodeID
	for i := range id {
		out[i] = id[i] ^ other[i]
	}
	return out
}

// Less compares IDs as big-endian integers; used to order XOR distances.
func (id NodeID) Less(other NodeID) bool {
	for i := range id {
		if id[i] != other[i] {
			return id[i] < other[i]
		}
	}
	return false
}

// LeadingZeros returns the number of leading zero bits, which determines
// the Kademlia bucket index.
func (id NodeID) LeadingZeros() int {
	for i, b := range id {
		if b != 0 {
			n := 0
			for mask := byte(0x80); mask != 0; mask >>= 1 {
				if b&mask != 0 {
					return i*8 + n
				}
				n++
			}
		}
	}
	return IDSize * 8
}

// Identity is a node's key pair and derived ID.
type Identity struct {
	ID      NodeID
	Public  ed25519.PublicKey
	private ed25519.PrivateKey
}

// NewIdentity generates a fresh identity from crypto/rand.
func NewIdentity() (*Identity, error) {
	return newIdentityFrom(rand.Reader)
}

// NewTestIdentity generates a deterministic identity from a seed; intended
// for simulations and tests where reproducibility matters more than
// secrecy.
func NewTestIdentity(seed int64) *Identity {
	id, err := newIdentityFrom(mrand.New(mrand.NewSource(seed)))
	if err != nil {
		// ed25519 generation from a non-failing reader cannot fail.
		panic(fmt.Sprintf("ids: test identity: %v", err))
	}
	return id
}

// testIDCache interns NewTestIdentityCached results. Identities are
// immutable after construction, so sharing one *Identity across clusters
// is safe (including concurrently — sweeps run clusters in parallel).
var testIDCache sync.Map // int64 -> *Identity

// NewTestIdentityCached is NewTestIdentity behind a process-wide cache:
// the same seed always yields the same identity, so large simulations
// that rebuild clusters point after point skip the ~50µs ed25519 keygen
// per node — at 100k nodes that is seconds per cluster construction.
func NewTestIdentityCached(seed int64) *Identity {
	if v, ok := testIDCache.Load(seed); ok {
		return v.(*Identity)
	}
	v, _ := testIDCache.LoadOrStore(seed, NewTestIdentity(seed))
	return v.(*Identity)
}

func newIdentityFrom(r io.Reader) (*Identity, error) {
	pub, priv, err := ed25519.GenerateKey(r)
	if err != nil {
		return nil, fmt.Errorf("ids: generate key: %w", err)
	}
	return &Identity{ID: IDFromPublicKey(pub), Public: pub, private: priv}, nil
}

// IDFromPublicKey derives the node ID from a public key.
func IDFromPublicKey(pub ed25519.PublicKey) NodeID {
	return sha256.Sum256(pub)
}

// Sign signs an arbitrary message with the identity's private key.
func (id *Identity) Sign(msg []byte) []byte {
	return ed25519.Sign(id.private, msg)
}

// VerifyFrom verifies that sig is a valid signature of msg under pub.
func VerifyFrom(pub ed25519.PublicKey, msg, sig []byte) bool {
	return len(pub) == ed25519.PublicKeySize && ed25519.Verify(pub, msg, sig)
}

// Record is an ENR-style signed contact record: identity, address, and a
// sequence number for freshness.
type Record struct {
	ID        NodeID
	PublicKey ed25519.PublicKey
	Addr      string // "host:port" or a simulator address
	Seq       uint64
	Signature []byte
}

// NewRecord builds and signs a record for the identity.
func NewRecord(id *Identity, addr string, seq uint64) Record {
	r := Record{ID: id.ID, PublicKey: id.Public, Addr: addr, Seq: seq}
	r.Signature = id.Sign(r.signingBytes())
	return r
}

func (r Record) signingBytes() []byte {
	buf := make([]byte, 0, IDSize+8+len(r.Addr))
	buf = append(buf, r.ID[:]...)
	var seq [8]byte
	binary.BigEndian.PutUint64(seq[:], r.Seq)
	buf = append(buf, seq[:]...)
	buf = append(buf, r.Addr...)
	return buf
}

// Verify checks the record's internal consistency: the ID matches the
// public key and the signature is valid.
func (r Record) Verify() error {
	if len(r.PublicKey) != ed25519.PublicKeySize {
		return fmt.Errorf("%w: bad public key length %d", ErrBadRecord, len(r.PublicKey))
	}
	if IDFromPublicKey(r.PublicKey) != r.ID {
		return fmt.Errorf("%w: ID does not match public key", ErrBadRecord)
	}
	if !VerifyFrom(r.PublicKey, r.signingBytes(), r.Signature) {
		return ErrBadSignature
	}
	return nil
}

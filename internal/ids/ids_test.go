package ids

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestNewIdentityDerivesID(t *testing.T) {
	id, err := NewIdentity()
	if err != nil {
		t.Fatal(err)
	}
	if id.ID != IDFromPublicKey(id.Public) {
		t.Fatal("ID does not match public key hash")
	}
	if id.ID.IsZero() {
		t.Fatal("ID is zero")
	}
}

func TestTestIdentityDeterministic(t *testing.T) {
	a := NewTestIdentity(7)
	b := NewTestIdentity(7)
	c := NewTestIdentity(8)
	if a.ID != b.ID {
		t.Fatal("same seed produced different identities")
	}
	if a.ID == c.ID {
		t.Fatal("different seeds produced equal identities")
	}
}

func TestSignVerify(t *testing.T) {
	id := NewTestIdentity(1)
	msg := []byte("pandas seeding message")
	sig := id.Sign(msg)
	if !VerifyFrom(id.Public, msg, sig) {
		t.Fatal("valid signature rejected")
	}
	if VerifyFrom(id.Public, append(msg, 'x'), sig) {
		t.Fatal("tampered message accepted")
	}
	other := NewTestIdentity(2)
	if VerifyFrom(other.Public, msg, sig) {
		t.Fatal("wrong key accepted")
	}
	if VerifyFrom(nil, msg, sig) {
		t.Fatal("nil key accepted")
	}
}

func TestXORProperties(t *testing.T) {
	f := func(a, b NodeID) bool {
		// Symmetric, self-distance zero, and a^b^b == a.
		return a.XOR(b) == b.XOR(a) &&
			a.XOR(a).IsZero() &&
			a.XOR(b).XOR(b) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLessIsStrictOrder(t *testing.T) {
	a := NodeID{0x01}
	b := NodeID{0x02}
	if !a.Less(b) || b.Less(a) || a.Less(a) {
		t.Fatal("Less ordering wrong")
	}
}

func TestLeadingZeros(t *testing.T) {
	cases := []struct {
		id   NodeID
		want int
	}{
		{NodeID{}, 256},
		{NodeID{0x80}, 0},
		{NodeID{0x40}, 1},
		{NodeID{0x01}, 7},
		{NodeID{0x00, 0x80}, 8},
		{NodeID{0x00, 0x00, 0x01}, 23},
	}
	for _, c := range cases {
		if got := c.id.LeadingZeros(); got != c.want {
			t.Errorf("LeadingZeros(%v) = %d, want %d", c.id, got, c.want)
		}
	}
}

func TestRecordVerify(t *testing.T) {
	id := NewTestIdentity(3)
	r := NewRecord(id, "10.0.0.1:9000", 5)
	if err := r.Verify(); err != nil {
		t.Fatalf("valid record rejected: %v", err)
	}
}

func TestRecordVerifyRejectsTampering(t *testing.T) {
	id := NewTestIdentity(4)
	r := NewRecord(id, "10.0.0.1:9000", 5)

	addr := r
	addr.Addr = "10.0.0.2:9000"
	if err := addr.Verify(); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("tampered addr: err = %v, want ErrBadSignature", err)
	}

	seq := r
	seq.Seq = 6
	if err := seq.Verify(); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("tampered seq: err = %v, want ErrBadSignature", err)
	}

	wrongKey := r
	wrongKey.PublicKey = NewTestIdentity(5).Public
	if err := wrongKey.Verify(); !errors.Is(err, ErrBadRecord) {
		t.Fatalf("wrong key: err = %v, want ErrBadRecord", err)
	}

	badKey := r
	badKey.PublicKey = badKey.PublicKey[:5]
	if err := badKey.Verify(); !errors.Is(err, ErrBadRecord) {
		t.Fatalf("short key: err = %v, want ErrBadRecord", err)
	}
}

func TestNodeIDStrings(t *testing.T) {
	id := NodeID{0xAB, 0xCD}
	if id.String() != "abcd00000000" {
		t.Fatalf("String = %q", id.String())
	}
	if len(id.Hex()) != 64 {
		t.Fatalf("Hex length = %d", len(id.Hex()))
	}
}

// TestNewTestIdentityCached checks the interned constructor returns the
// same identity as the uncached one and a stable pointer per seed.
func TestNewTestIdentityCached(t *testing.T) {
	a := NewTestIdentityCached(1234)
	b := NewTestIdentityCached(1234)
	if a != b {
		t.Fatal("cache returned distinct pointers for one seed")
	}
	if fresh := NewTestIdentity(1234); fresh.ID != a.ID {
		t.Fatalf("cached ID %v != fresh ID %v", a.ID, fresh.ID)
	}
	if other := NewTestIdentityCached(1235); other.ID == a.ID {
		t.Fatal("distinct seeds collided")
	}
}

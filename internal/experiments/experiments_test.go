package experiments

import (
	"strings"
	"testing"

	"pandas/internal/core"
	"pandas/internal/simnet"
)

func TestFig9SmallScale(t *testing.T) {
	res, err := Fig9(TestOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerPhase) != 3 {
		t.Fatalf("policies = %d", len(res.PerPhase))
	}
	for _, p := range res.Policies {
		pt := res.PerPhase[p]
		if pt.Sampling.Total() == 0 {
			t.Fatalf("policy %v: no sampling data", p)
		}
		// Seeding always precedes sampling in the aggregate.
		if pt.Seeding.Median() > pt.Sampling.Median() {
			t.Errorf("policy %v: seeding median after sampling median", p)
		}
	}
	if res.Block == nil || res.Block.Total() == 0 {
		t.Fatal("block gossip curve missing")
	}
	out := res.Render()
	for _, want := range []string{"Fig. 9", "minimal", "single", "redundant", "sampling", "block reception"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestFig9RedundantBeatsMinimalOnConsolidation(t *testing.T) {
	o := TestOptions()
	o.Nodes = 200
	res, err := Fig9(o)
	if err != nil {
		t.Fatal(err)
	}
	red := res.PerPhase[core.PolicyRedundant].ConsFromStart
	minimal := res.PerPhase[core.PolicyMinimal].ConsFromStart
	// Paper: redundant seeding consolidates faster than minimal.
	if red.Median() > minimal.Median() {
		t.Fatalf("redundant median %v slower than minimal %v", red.Median(), minimal.Median())
	}
}

func TestFig10SmallScale(t *testing.T) {
	res, err := Fig10(TestOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Policies {
		if res.Msgs[p].Count() == 0 || res.Bytes[p].Count() == 0 {
			t.Fatalf("policy %v missing traffic data", p)
		}
	}
	// Paper: redundant seeding needs FEWER fetch messages than minimal.
	if res.Msgs[core.PolicyRedundant].Mean() > res.Msgs[core.PolicyMinimal].Mean() {
		t.Fatal("redundant should reduce fetch messages vs minimal")
	}
	if !strings.Contains(res.Render(), "Fig. 10") {
		t.Fatal("render header missing")
	}
}

func TestTable1SmallScale(t *testing.T) {
	res, err := Table1(TestOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rounds) != 4 {
		t.Fatalf("rounds = %d", len(res.Rounds))
	}
	r1 := res.Rounds[0]
	if r1.MsgsSent.Mean() <= 0 || r1.CellsRequested.Mean() <= 0 {
		t.Fatal("round 1 has no activity")
	}
	// Cells requested must shrink across rounds (coverage grows).
	if res.Rounds[2].CellsRequested.Mean() > r1.CellsRequested.Mean() {
		t.Fatal("cells requested did not decrease by round 3")
	}
	// Coverage is cumulative.
	for i := 1; i < len(res.Rounds); i++ {
		if res.Rounds[i].Coverage+1e-9 < res.Rounds[i-1].Coverage {
			t.Fatal("coverage not monotone")
		}
	}
	out := res.Render()
	for _, want := range []string{"Table 1", "Messages sent", "Cumulative coverage"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q", want)
		}
	}
}

func TestFig11SmallScale(t *testing.T) {
	res, err := Fig11(TestOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Adaptive must not be slower at the tail than constant fetching.
	if res.AdaptiveSampling.Percentile(99) > res.ConstantSampling.Percentile(99) {
		t.Fatalf("adaptive P99 %v > constant P99 %v",
			res.AdaptiveSampling.Percentile(99), res.ConstantSampling.Percentile(99))
	}
	// Constant fetching uses fewer messages (k=1 forever).
	if res.ConstantMsgs.Mean() > res.AdaptiveMsgs.Mean() {
		t.Fatal("constant strategy should send fewer messages")
	}
	if !strings.Contains(res.Render(), "constant(t=400ms,k=1)") {
		t.Fatal("render missing constant row")
	}
}

func TestFig12SmallScale(t *testing.T) {
	o := TestOptions()
	o.Nodes = 100
	o.Slots = 1
	res, err := Fig12(o)
	if err != nil {
		t.Fatal(err)
	}
	p := res.Systems[SystemPandas]
	g := res.Systems[SystemGossip]
	d := res.Systems[SystemDHT]
	if p == nil || g == nil || d == nil {
		t.Fatal("missing systems")
	}
	deadline := o.Core.Deadline
	if p.Sampling.FractionWithin(deadline) < g.Sampling.FractionWithin(deadline)-0.05 {
		t.Fatalf("PANDAS on-time %v below GossipSub %v",
			p.Sampling.FractionWithin(deadline), g.Sampling.FractionWithin(deadline))
	}
	if p.Sampling.Median() > d.Sampling.Median() {
		t.Fatal("PANDAS median should beat DHT")
	}
	if !strings.Contains(res.Render(), "gossipsub") {
		t.Fatal("render missing baseline")
	}
}

func TestFig13SmallScale(t *testing.T) {
	o := TestOptions()
	o.Slots = 1
	res, err := Fig13(o, []int{80, 160})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sizes) != 2 {
		t.Fatal("sizes wrong")
	}
	for _, size := range res.Sizes {
		if res.Phases[size].Sampling.Total() == 0 {
			t.Fatalf("size %d: no data", size)
		}
	}
	if !strings.Contains(res.Render(), "Fig. 13") {
		t.Fatal("render header missing")
	}
}

func TestFig14SmallScale(t *testing.T) {
	o := TestOptions()
	o.Slots = 1
	res, err := Fig14(o, []int{80})
	if err != nil {
		t.Fatal(err)
	}
	per := res.Results[80]
	if len(per) != 3 {
		t.Fatalf("systems = %d", len(per))
	}
	if !strings.Contains(res.Render(), "80 nodes") {
		t.Fatal("render missing size header")
	}
}

func TestFig15DeadSweep(t *testing.T) {
	o := TestOptions()
	o.Nodes = 150
	o.Slots = 1
	res, err := Fig15(o, FaultDead, []float64{0, 0.4, 0.8})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 3 {
		t.Fatalf("points = %d", len(res.Points))
	}
	// Deadline success must degrade monotonically-ish with faults: the
	// 80% point must be well below the fault-free point.
	if res.Points[2].DeadlineRate >= res.Points[0].DeadlineRate {
		t.Fatalf("no degradation: %v vs %v", res.Points[2].DeadlineRate, res.Points[0].DeadlineRate)
	}
	if !strings.Contains(res.Render(), "Fig. 15a") {
		t.Fatal("render missing header")
	}
}

func TestFig15OutOfViewSweep(t *testing.T) {
	o := TestOptions()
	o.Nodes = 150
	o.Slots = 1
	res, err := Fig15(o, FaultOutOfView, []float64{0, 0.6})
	if err != nil {
		t.Fatal(err)
	}
	if res.Points[1].DeadlineRate > res.Points[0].DeadlineRate {
		t.Fatal("out-of-view nodes should not improve the deadline rate")
	}
	if !strings.Contains(res.Render(), "Fig. 15b") {
		t.Fatal("render missing header")
	}
}

func TestConfidence(t *testing.T) {
	res := Confidence(64, []int{5, 20, 40}, 2000, 1)
	if len(res.Points) != 3 {
		t.Fatal("points wrong")
	}
	prev := 1.1
	for _, p := range res.Points {
		if p.Analytic > prev {
			t.Fatal("analytic bound not decreasing")
		}
		prev = p.Analytic
		// Monte Carlo must not exceed the bound by much more than noise.
		if p.Empirical > p.Analytic*2+0.02 {
			t.Fatalf("empirical %v far above bound %v at s=%d", p.Empirical, p.Analytic, p.Samples)
		}
	}
	if !strings.Contains(res.Render(), "Sampling confidence") {
		t.Fatal("render missing header")
	}
}

func TestValidation(t *testing.T) {
	o := TestOptions()
	o.Nodes = 60
	o.Slots = 1
	res, err := Validate(o)
	if err != nil {
		t.Fatal(err)
	}
	// The metadata shortcut must track the real data plane closely —
	// the paper's simulator-vs-prototype curves are "almost
	// indistinguishable"; allow 25% median slack at this small scale.
	if res.MedianGap > 0.25 {
		t.Fatalf("median gap %.0f%% too large", res.MedianGap*100)
	}
	if !strings.Contains(res.Render(), "validation") {
		t.Fatal("render missing header")
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Nodes != 1000 || o.Slots != 10 || o.Core.Blob.K != 256 {
		t.Fatalf("defaults wrong: %+v", o)
	}
	if *o.LossRate != simnet.DefaultLossRate {
		t.Fatalf("nil loss should select the default, got %v", *o.LossRate)
	}
	neg := Options{LossRate: Loss(-1)}.withDefaults()
	if *neg.LossRate != 0 {
		t.Fatal("negative loss should mean zero")
	}
	zero := Options{LossRate: Loss(0)}.withDefaults()
	if *zero.LossRate != 0 {
		t.Fatal("explicit zero loss must stay zero, not revert to the default")
	}
}

func TestAblationSweep(t *testing.T) {
	o := TestOptions()
	o.Nodes = 150
	o.Slots = 1
	res, err := Ablation(o, []int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("points = %d", len(res.Points))
	}
	// More redundancy means more builder bytes...
	if res.Points[1].BuilderBytes.Mean() <= res.Points[0].BuilderBytes.Mean() {
		t.Fatal("builder cost did not grow with redundancy")
	}
	// ...and at least as good a deadline rate.
	if res.Points[1].DeadlineRate+0.05 < res.Points[0].DeadlineRate {
		t.Fatalf("higher redundancy degraded the deadline rate: %v vs %v",
			res.Points[1].DeadlineRate, res.Points[0].DeadlineRate)
	}
	if !strings.Contains(res.Render(), "Ablation") {
		t.Fatal("render header missing")
	}
}

package experiments

import (
	"os"
	"strconv"
	"testing"

	"pandas/internal/core"
)

// TestScaleProfile runs one metadata slot at SCALE_N nodes; used with
// -cpuprofile/-memprofile to hunt superlinear costs. Skipped unless
// SCALE_N is set.
func TestScaleProfile(t *testing.T) {
	n, _ := strconv.Atoi(os.Getenv("SCALE_N"))
	if n == 0 {
		t.Skip("set SCALE_N to profile")
	}
	o := Options{Nodes: n, Slots: 1, Seed: 1, Core: core.TestConfig()}
	res, err := Scale(o, []int{n})
	if err != nil {
		t.Fatal(err)
	}
	t.Log(res.Render())
}

package experiments

import (
	"testing"

	"pandas/internal/adversary"
)

// TestWithholdingMatchesMonteCarlo is the protocol-level golden test of
// the Section 3 sampling analysis: the miss rate of real adversarial
// cluster runs under maximal withholding must agree with confidence.go's
// idealized Monte Carlo at the same geometry, within combined binomial
// confidence bounds. This ties the end-to-end protocol (seeding,
// fetching, per-node sample draws) to the math the 73-sample choice
// rests on.
func TestWithholdingMatchesMonteCarlo(t *testing.T) {
	o := TestOptions()
	o.Slots = 3 // 360 node-slots per point
	const mcTrials = 5000
	res, err := Withholding(o, nil, mcTrials)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) == 0 {
		t.Fatal("no sweep points")
	}
	for _, p := range res.Points {
		if p.Trials < 300 {
			t.Fatalf("samples=%d: only %d node-slots measured", p.Samples, p.Trials)
		}
		if !p.WithinCI(mcTrials, 4) {
			t.Errorf("samples=%d: cluster miss %.4f vs Monte Carlo %.4f outside 4-sigma bounds (%d node-slots)",
				p.Samples, p.Cluster, p.MonteCarlo, p.Trials)
		}
		// The analytic hypergeometric bound upper-bounds both estimators
		// up to sampling noise; a gross violation means the withholding
		// pattern and the analysis no longer describe the same attack.
		if p.Cluster > p.Analytic+0.1 {
			t.Errorf("samples=%d: cluster miss %.4f far above analytic bound %.4f",
				p.Samples, p.Cluster, p.Analytic)
		}
	}
}

// TestByzantineSweepDeadline pins the acceptance bound at the test
// geometry: at 20% silent byzantine nodes every honest node meets the
// 4 s sampling deadline, and the zero-fraction point is unaffected.
func TestByzantineSweepDeadline(t *testing.T) {
	o := TestOptions()
	res, err := Byzantine(o, adversary.Silent, []float64{0, 0.2})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Points {
		if p.DeadlineRate != 1.0 {
			t.Errorf("silent fraction %.0f%%: honest deadline rate %.4f, want 1.0",
				p.Fraction*100, p.DeadlineRate)
		}
	}
}

// TestByzantineSweepGarbageRejects: the garbage sweep must surface
// verification rejects in its table (the reject counter is the sweep's
// evidence that corrupted cells were served and refused).
func TestByzantineSweepGarbageRejects(t *testing.T) {
	o := TestOptions()
	o.Nodes = 60
	o.Slots = 1
	res, err := Byzantine(o, adversary.Garbage, []float64{0, 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Points[0].CorruptRejects != 0 {
		t.Fatalf("honest point reports %d corrupt rejects", res.Points[0].CorruptRejects)
	}
	if res.Points[1].CorruptRejects == 0 {
		t.Fatal("garbage point reports no corrupt rejects")
	}
}

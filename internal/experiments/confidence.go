package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"pandas/internal/blob"
	"pandas/internal/metrics"
)

// ConfidencePoint is one row of the sampling-confidence analysis.
type ConfidencePoint struct {
	Samples   int
	Analytic  float64 // hypergeometric false-positive upper bound
	Empirical float64 // Monte Carlo miss rate vs maximal withholding
}

// ConfidenceResult reproduces the Section 3 analysis behind the choice of
// 73 samples: the false-positive probability of availability sampling as
// a function of the sample count, validated by Monte Carlo against the
// maximal withholding pattern (Fig. 3-right).
type ConfidenceResult struct {
	N       int // extended matrix width
	Points  []ConfidencePoint
	Needed  int // samples for <= 1e-9 per the analytic bound
	Paper73 float64
}

// Confidence computes the analytic bound and a Monte Carlo validation.
// trials controls the Monte Carlo precision (0 selects 20,000).
func Confidence(n int, sampleCounts []int, trials int, seed int64) *ConfidenceResult {
	if len(sampleCounts) == 0 {
		sampleCounts = []int{1, 5, 10, 20, 30, 40, 50, 60, 70, 73, 80}
	}
	if trials <= 0 {
		trials = 20000
	}
	res := &ConfidenceResult{
		N:       n,
		Needed:  blob.SamplesForConfidence(n, 1e-9),
		Paper73: blob.FalsePositiveBound(n, 73),
	}
	withheld := blob.MaximalWithholding(n)
	rng := rand.New(rand.NewSource(seed))
	for _, s := range sampleCounts {
		point := ConfidencePoint{Samples: s, Analytic: blob.FalsePositiveBound(n, s)}
		misses := 0
		for trial := 0; trial < trials; trial++ {
			allPresent := true
			seen := make(map[int]bool, s)
			for len(seen) < s {
				idx := rng.Intn(n * n)
				if seen[idx] {
					continue
				}
				seen[idx] = true
				if !withheld.Has(blob.CellIDFromIndex(idx, n)) {
					allPresent = false
					break
				}
			}
			if allPresent {
				misses++
			}
		}
		point.Empirical = float64(misses) / float64(trials)
		res.Points = append(res.Points, point)
	}
	return res
}

// Render prints the confidence table.
func (r *ConfidenceResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Sampling confidence (Section 3), extended width %d\n", r.N)
	fmt.Fprintf(&b, "samples for <=1e-9 bound: %d (paper uses 73, bound %.2g)\n", r.Needed, r.Paper73)
	tab := metrics.NewTable("samples", "analytic bound", "empirical miss rate")
	for _, p := range r.Points {
		tab.AddRow(fmt.Sprintf("%d", p.Samples),
			fmt.Sprintf("%.3g", p.Analytic),
			fmt.Sprintf("%.3g", p.Empirical))
	}
	b.WriteString(tab.String())
	return b.String()
}

package experiments

import (
	"fmt"
	"strings"
	"time"

	"pandas/internal/consensus"
	"pandas/internal/core"
	"pandas/internal/membership"
	"pandas/internal/metrics"
)

// DefaultChurnRates is the sweep of expected per-node departures per
// slot. Rate 0 is the static-membership control (it runs the unmodified
// fixed-membership code path, so it must match Fig. 15 at fraction 0).
var DefaultChurnRates = []float64{0, 0.05, 0.1, 0.2, 0.4}

// ChurnPoint is one churn-rate sweep point.
type ChurnPoint struct {
	// Rate is the expected number of departures per node per slot.
	Rate float64
	// Sampling pools eligible nodes' sampling-completion times.
	Sampling *metrics.Distribution
	// DeadlineRate is the fraction of eligible nodes (up at slot start,
	// still up at the deadline) that sampled on time.
	DeadlineRate float64
	// Eligible counts node-slots in the deadline denominator.
	Eligible int
	// Joined counts mid-slot joiners; CaughtUp of them still completed
	// sampling before their first slot ended (empty store, no seeding).
	Joined, CaughtUp int
	// Events totals the lifecycle events over the run.
	Events membership.Stats
}

// ChurnResult holds a dynamic-membership sweep.
type ChurnResult struct {
	Options Options
	Rates   []float64
	Points  []ChurnPoint
}

// churnConfigForRate translates a per-slot departure rate into engine
// parameters: exponential sessions with the matching mean, ~one slot of
// downtime before a restart, and an even split between graceful leaves
// and silent crashes.
func churnConfigForRate(rate float64) *membership.Config {
	if rate <= 0 {
		return nil // static membership: the untouched fixed-view path
	}
	return &membership.Config{
		MeanSession:   time.Duration(float64(consensus.SlotDuration) / rate),
		MeanDowntime:  consensus.SlotDuration,
		CrashFraction: 0.5,
	}
}

// Churn sweeps the dynamic-membership engine: for each churn rate it
// runs the usual multi-slot deployment while nodes join, leave, crash,
// and restart mid-slot, and reports sampling-deadline success over the
// nodes that were actually present for the whole deadline window.
func Churn(o Options, rates []float64) (*ChurnResult, error) {
	o = o.withDefaults()
	if len(rates) == 0 {
		rates = DefaultChurnRates
	}
	res := &ChurnResult{Options: o, Rates: rates}
	for _, rate := range rates {
		rate := rate
		c, err := newCluster(o, func(cc *core.ClusterConfig) {
			cc.Core.Policy = core.PolicyRedundant
			cc.Churn = churnConfigForRate(rate)
		})
		if err != nil {
			return nil, err
		}
		point := ChurnPoint{Rate: rate}
		var samp []time.Duration
		onTime := 0
		for s := 1; s <= o.Slots; s++ {
			slot, err := c.RunSlot(uint64(s))
			if err != nil {
				return nil, fmt.Errorf("rate %.2f slot %d: %w", rate, s, err)
			}
			point.Events.Joins += slot.Churn.Joins
			point.Events.Restarts += slot.Churn.Restarts
			point.Events.Leaves += slot.Churn.Leaves
			point.Events.Crashes += slot.Churn.Crashes
			j, cu := slot.JoinerCatchUp()
			point.Joined += j
			point.CaughtUp += cu
			for _, out := range slot.Outcomes {
				if !out.EligibleAt(o.Core.Deadline) {
					continue
				}
				point.Eligible++
				samp = append(samp, out.Sampling)
				if out.Sampling >= 0 && out.Sampling <= o.Core.Deadline {
					onTime++
				}
			}
		}
		point.Sampling = metrics.NewDistribution(samp)
		if point.Eligible > 0 {
			point.DeadlineRate = float64(onTime) / float64(point.Eligible)
		}
		res.Points = append(res.Points, point)
	}
	return res, nil
}

// Render prints churn-rate sweep rows.
func (r *ChurnResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Churn sweep — departures per node per slot, %d nodes, %d slots\n",
		r.Options.Nodes, r.Options.Slots)
	tab := metrics.NewTable("rate", "events J/R/L/C", "eligible",
		"sample median", "sample P99", "on-time%", "joiner catch-up")
	for _, p := range r.Points {
		catchUp := "-"
		if p.Joined > 0 {
			catchUp = fmt.Sprintf("%d/%d (%.0f%%)", p.CaughtUp, p.Joined,
				100*float64(p.CaughtUp)/float64(p.Joined))
		}
		tab.AddRow(fmt.Sprintf("%.2f", p.Rate),
			fmt.Sprintf("%d/%d/%d/%d", p.Events.Joins, p.Events.Restarts,
				p.Events.Leaves, p.Events.Crashes),
			fmt.Sprintf("%d", p.Eligible),
			fmtMs(p.Sampling.Median()), fmtMs(p.Sampling.Percentile(99)),
			fmt.Sprintf("%.1f", 100*p.DeadlineRate),
			catchUp)
	}
	b.WriteString(tab.String())
	return b.String()
}

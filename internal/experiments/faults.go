package experiments

import (
	"fmt"
	"strings"
	"time"

	"pandas/internal/core"
	"pandas/internal/metrics"
)

// FaultKind selects the Fig. 15 fault model.
type FaultKind string

// Fault kinds.
const (
	// FaultDead marks nodes as crashed/free-riding: they never respond,
	// and neither builder nor peers know.
	FaultDead FaultKind = "dead"
	// FaultOutOfView gives every node an incomplete, random view of the
	// network (the builder keeps its full view).
	FaultOutOfView FaultKind = "out-of-view"
)

// Fig15Point is one sweep point.
type Fig15Point struct {
	Fraction      float64
	Consolidation *metrics.Distribution
	Sampling      *metrics.Distribution
	DeadlineRate  float64 // fraction of LIVE nodes sampling on time
}

// Fig15Result holds a fault sweep.
type Fig15Result struct {
	Options   Options
	Kind      FaultKind
	Fractions []float64
	Points    []Fig15Point
}

// Fig15 reproduces Fig. 15: time to consolidation and sampling for
// increasing fractions of dead (Fig. 15a) or out-of-view (Fig. 15b)
// nodes. The paper sweeps 0-80% in 20% steps on a 10,000-node network.
func Fig15(o Options, kind FaultKind, fractions []float64) (*Fig15Result, error) {
	o = o.withDefaults()
	if len(fractions) == 0 {
		fractions = []float64{0, 0.2, 0.4, 0.6, 0.8}
	}
	res := &Fig15Result{Options: o, Kind: kind, Fractions: fractions}
	for _, frac := range fractions {
		frac := frac
		c, err := newCluster(o, func(cc *core.ClusterConfig) {
			cc.Core.Policy = core.PolicyRedundant
			switch kind {
			case FaultDead:
				cc.DeadFraction = frac
			case FaultOutOfView:
				cc.OutOfViewFraction = frac
			}
		})
		if err != nil {
			return nil, err
		}
		outcomes, _, err := runSlots(c, o.Slots)
		if err != nil {
			return nil, err
		}
		var cons, samp []time.Duration
		live, onTime := 0, 0
		for _, out := range outcomes {
			if out.Dead {
				continue
			}
			live++
			cons = append(cons, out.Consolidation)
			samp = append(samp, out.Sampling)
			if out.Sampling >= 0 && out.Sampling <= o.Core.Deadline {
				onTime++
			}
		}
		point := Fig15Point{
			Fraction:      frac,
			Consolidation: metrics.NewDistribution(cons),
			Sampling:      metrics.NewDistribution(samp),
		}
		if live > 0 {
			point.DeadlineRate = float64(onTime) / float64(live)
		}
		res.Points = append(res.Points, point)
	}
	return res, nil
}

// Render prints Fig. 15 rows.
func (r *Fig15Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 15%s — %s nodes sweep, %d nodes\n",
		map[FaultKind]string{FaultDead: "a", FaultOutOfView: "b"}[r.Kind], r.Kind, r.Options.Nodes)
	tab := metrics.NewTable("fraction", "cons median", "cons P99", "sample median", "sample P99", "on-time%")
	for _, p := range r.Points {
		tab.AddRow(fmt.Sprintf("%.0f%%", p.Fraction*100),
			fmtMs(p.Consolidation.Median()), fmtMs(p.Consolidation.Percentile(99)),
			fmtMs(p.Sampling.Median()), fmtMs(p.Sampling.Percentile(99)),
			fmt.Sprintf("%.1f", 100*p.DeadlineRate))
	}
	b.WriteString(tab.String())
	return b.String()
}

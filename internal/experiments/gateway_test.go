package experiments

import (
	"testing"
)

func gatewayTestOptions() (Options, GatewayLoadOptions) {
	return Options{Nodes: 48, Slots: 2, Seed: 42},
		GatewayLoadOptions{Clients: 300, QueriesPerClient: 3}
}

// TestGatewayLoadGolden pins the deterministic core of the load
// harness for a fixed seed. Latency is wall-clock and varies run to
// run, but the query streams are drawn from per-client seeded RNGs and
// every query completes, so the COUNT accounting must be exact:
//
//   - each slot completes Clients x QueriesPerClient queries;
//   - upstream fetches == distinct cells drawn that slot (the cache is
//     ample and the coalescer dedups everything else — this equality IS
//     the subsystem's reason to exist);
//   - cache hits + coalesced joins covers every remaining query (the
//     hit/join split depends on timing, their sum does not);
//   - no rejects (clients issue sequentially, well under QueueDepth),
//     no bad proofs, no upstream errors.
func TestGatewayLoadGolden(t *testing.T) {
	o, gwo := gatewayTestOptions()
	res, err := GatewayLoad(o, gwo)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerSlot) != o.Slots {
		t.Fatalf("slots = %d, want %d", len(res.PerSlot), o.Slots)
	}
	perSlot := int64(gwo.Clients * gwo.QueriesPerClient)
	for _, ss := range res.PerSlot {
		if ss.Queries != perSlot {
			t.Fatalf("slot %d: queries = %d, want %d", ss.Slot, ss.Queries, perSlot)
		}
		if ss.Rejects != 0 || ss.BadProofs != 0 {
			t.Fatalf("slot %d: rejects=%d badProofs=%d, want 0/0", ss.Slot, ss.Rejects, ss.BadProofs)
		}
		if ss.UpstreamFetches != int64(ss.DistinctCells) {
			t.Fatalf("slot %d: upstream=%d distinct=%d — coalescing+cache must reduce to one fetch per distinct cell",
				ss.Slot, ss.UpstreamFetches, ss.DistinctCells)
		}
		if ss.CacheHits+ss.CoalescedJoins+ss.UpstreamFetches != ss.Queries {
			t.Fatalf("slot %d: hits(%d)+joins(%d)+upstream(%d) != queries(%d)",
				ss.Slot, ss.CacheHits, ss.CoalescedJoins, ss.UpstreamFetches, ss.Queries)
		}
		if ss.BatchVerifies == 0 {
			t.Fatalf("slot %d: no batched verifications ran", ss.Slot)
		}
	}
	if res.Reduction < 2 {
		t.Fatalf("upstream reduction = %.1fx; zipf over %d cells with %d queries must dedup more",
			res.Reduction, res.Cells, res.Queries)
	}
	if res.Render() == "" {
		t.Fatal("empty render")
	}
}

// TestGatewayLoadDeterministic: two runs with the same seed agree on
// every deterministic field (the golden contract the experiment report
// relies on).
func TestGatewayLoadDeterministic(t *testing.T) {
	o, gwo := gatewayTestOptions()
	a, err := GatewayLoad(o, gwo)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GatewayLoad(o, gwo)
	if err != nil {
		t.Fatal(err)
	}
	if a.Queries != b.Queries || a.UpstreamFetches != b.UpstreamFetches {
		t.Fatalf("aggregate mismatch: %d/%d fetches vs %d/%d", a.Queries, a.UpstreamFetches, b.Queries, b.UpstreamFetches)
	}
	for i := range a.PerSlot {
		sa, sb := a.PerSlot[i], b.PerSlot[i]
		if sa.DistinctCells != sb.DistinctCells || sa.UpstreamFetches != sb.UpstreamFetches ||
			sa.Queries != sb.Queries {
			t.Fatalf("slot %d diverged across runs: %+v vs %+v", sa.Slot, sa, sb)
		}
	}
	// A different seed draws a different workload.
	o2 := o
	o2.Seed = 43
	c, err := GatewayLoad(o2, gwo)
	if err != nil {
		t.Fatal(err)
	}
	if c.PerSlot[0].DistinctCells == a.PerSlot[0].DistinctCells &&
		c.PerSlot[1].DistinctCells == a.PerSlot[1].DistinctCells {
		t.Fatal("seed change did not change the workload")
	}
}

// BenchmarkGatewayLoad100k is the acceptance workload: 100k concurrent
// synthetic light clients per slot against a simnet cluster. Custom
// metrics report what the table in EXPERIMENTS.md tracks.
func BenchmarkGatewayLoad100k(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := GatewayLoad(
			Options{Nodes: 128, Slots: 2, Seed: 42},
			GatewayLoadOptions{Clients: 100_000, QueriesPerClient: 3},
		)
		if err != nil {
			b.Fatal(err)
		}
		var qps float64
		for _, ss := range res.PerSlot {
			qps += ss.QPS
		}
		qps /= float64(len(res.PerSlot))
		b.ReportMetric(qps, "qps")
		b.ReportMetric(float64(res.P50.Nanoseconds())/1000, "p50_us")
		b.ReportMetric(float64(res.P99.Nanoseconds())/1000, "p99_us")
		b.ReportMetric(res.HitRate*100, "hit_%")
		b.ReportMetric(res.Reduction, "reduction_x")
		b.ReportMetric(res.CoalesceFactor, "coalesce_x")
	}
}

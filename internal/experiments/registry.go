package experiments

// The experiment registry. Every runnable experiment is one table entry
// — name, description, the shared parameter flags it consumes, and a
// uniform Run hook — so the CLIs dispatch and generate their -list
// output from the table instead of a hand-maintained switch that had to
// be edited in three places per new experiment.

import (
	"flag"
	"fmt"
	"math"
	"sort"
	"strings"

	"pandas/internal/adversary"
)

// Renderer is the uniform result contract: every experiment returns a
// value that renders the corresponding paper table/figure as text.
type Renderer interface{ Render() string }

// Params carries the cross-experiment knobs a CLI binds once and every
// experiment reads from. Zero values mean "use the experiment default";
// DefaultParams fills the fields whose zero value is not a sensible
// default.
type Params struct {
	// Sizes is the network-size sweep (fig13, fig14, scale) or the
	// redundancy sweep (ablation).
	Sizes []int
	// Fractions is the fault/byzantine fraction sweep in [0, 1).
	Fractions []float64
	// Rates is the churn sweep (departures/node/slot).
	Rates []float64
	// Trials is the Monte Carlo trial count (confidence, adversary).
	Trials int
	// Behavior is the byzantine behavior under test.
	Behavior adversary.Behavior
	// Clients, QueriesPerClient, Zipf drive the gateway load model.
	Clients          int
	QueriesPerClient int
	Zipf             float64
}

// DefaultParams returns the parameter defaults the old CLI flags used.
func DefaultParams() Params {
	return Params{
		Trials:           20000,
		Behavior:         adversary.Silent,
		Clients:          100_000,
		QueriesPerClient: 3,
		Zipf:             1.2,
	}
}

// FlagBinder is handed to each experiment's Flags hook. The hook calls
// one method per shared parameter it consumes; the binder registers the
// corresponding flag exactly once across all experiments (the flags are
// shared, so fig13 and fig14 both declaring Sizes is one -sizes flag)
// and records the names so -list can show which flags an experiment
// honors.
type FlagBinder struct {
	fs    *flag.FlagSet // nil when only recording names for -list
	p     *Params
	bound map[string]bool // dedup across experiments
	names []string        // this experiment's flags, in declaration order
}

func (b *FlagBinder) bind(name string, register func()) {
	b.names = append(b.names, "-"+name)
	if b.fs == nil || b.bound[name] {
		return
	}
	b.bound[name] = true
	register()
}

// Sizes binds -sizes (comma-separated positive integers).
func (b *FlagBinder) Sizes() {
	b.bind("sizes", func() {
		b.fs.Var(&intListValue{name: "-sizes", dst: &b.p.Sizes}, "sizes",
			"comma-separated sweep values (network sizes; seeding redundancies for ablation)")
	})
}

// Fractions binds -fractions (comma-separated floats in [0, 1)).
func (b *FlagBinder) Fractions() {
	b.bind("fractions", func() {
		b.fs.Var(&floatListValue{name: "-fractions", dst: &b.p.Fractions, min: 0, max: 1}, "fractions",
			"comma-separated fault/byzantine fractions in [0,1)")
	})
}

// Rates binds -rates (comma-separated non-negative floats).
func (b *FlagBinder) Rates() {
	b.bind("rates", func() {
		b.fs.Var(&floatListValue{name: "-rates", dst: &b.p.Rates, min: 0, max: math.Inf(1)}, "rates",
			"comma-separated churn rates (departures/node/slot)")
	})
}

// Trials binds -trials.
func (b *FlagBinder) Trials() {
	b.bind("trials", func() {
		b.fs.IntVar(&b.p.Trials, "trials", b.p.Trials, "Monte Carlo trials")
	})
}

// Behavior binds -behavior (silent, laggard, garbage).
func (b *FlagBinder) Behavior() {
	b.bind("behavior", func() {
		b.fs.Var(&behaviorValue{dst: &b.p.Behavior}, "behavior",
			"byzantine behavior: silent laggard garbage")
	})
}

// Gateway binds the gateway load-model flags.
func (b *FlagBinder) Gateway() {
	b.bind("clients", func() {
		b.fs.IntVar(&b.p.Clients, "clients", b.p.Clients, "gateway: concurrent synthetic light clients per slot")
	})
	b.bind("queries", func() {
		b.fs.IntVar(&b.p.QueriesPerClient, "queries", b.p.QueriesPerClient, "gateway: sampling queries per client per slot")
	})
	b.bind("zipf", func() {
		b.fs.Float64Var(&b.p.Zipf, "zipf", b.p.Zipf, "gateway: zipf exponent of cell popularity (>1)")
	})
}

// behaviorValue adapts adversary.Behavior to flag.Value.
type behaviorValue struct{ dst *adversary.Behavior }

var behaviorNames = map[string]adversary.Behavior{
	"silent":  adversary.Silent,
	"laggard": adversary.Laggard,
	"garbage": adversary.Garbage,
}

func (v *behaviorValue) String() string {
	if v == nil || v.dst == nil {
		return ""
	}
	for name, b := range behaviorNames {
		if b == *v.dst {
			return name
		}
	}
	return ""
}

func (v *behaviorValue) Set(s string) error {
	b, ok := behaviorNames[s]
	if !ok {
		names := make([]string, 0, len(behaviorNames))
		for n := range behaviorNames {
			names = append(names, n)
		}
		sort.Strings(names)
		return fmt.Errorf("unknown behavior %q (%s)", s, strings.Join(names, ", "))
	}
	*v.dst = b
	return nil
}

// Experiment is one registry entry.
type Experiment struct {
	// Name is the -exp selector.
	Name string
	// Desc is the one-line -list description.
	Desc string
	// Flags declares the shared Params flags the experiment consumes
	// (nil if it only uses the base options).
	Flags func(*FlagBinder)
	// Run executes the experiment.
	Run func(Options, *Params) (Renderer, error)
}

// registry holds the experiments in paper order (the -list order).
var registry []Experiment

func register(e Experiment) {
	if e.Name == "" || e.Run == nil {
		panic("experiments: register: incomplete entry")
	}
	for _, prev := range registry {
		if prev.Name == e.Name {
			panic("experiments: duplicate experiment " + e.Name)
		}
	}
	registry = append(registry, e)
}

// Experiments returns the registered experiments in -list order.
func Experiments() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	return out
}

// Lookup finds an experiment by name.
func Lookup(name string) (Experiment, bool) {
	for _, e := range registry {
		if e.Name == name {
			return e, true
		}
	}
	return Experiment{}, false
}

// Names returns the registered experiment names in -list order.
func Names() []string {
	out := make([]string, len(registry))
	for i, e := range registry {
		out[i] = e.Name
	}
	return out
}

// BindFlags registers the union of every experiment's shared flags on
// fs, each exactly once, targeting p. CLIs call this before flag
// parsing; per-experiment validity is not enforced (passing -sizes to
// fig9 is ignored, as with the old hand-rolled flag set).
func BindFlags(fs *flag.FlagSet, p *Params) {
	b := &FlagBinder{fs: fs, p: p, bound: make(map[string]bool)}
	for _, e := range registry {
		if e.Flags != nil {
			b.names = b.names[:0]
			e.Flags(b)
		}
	}
}

// flagNames returns the flags an experiment declares, for -list.
func flagNames(e Experiment) []string {
	if e.Flags == nil {
		return nil
	}
	b := &FlagBinder{}
	e.Flags(b)
	return b.names
}

// ListText renders the -list output from the registry.
func ListText() string {
	var sb strings.Builder
	sb.WriteString("experiments:\n")
	width := 0
	for _, e := range registry {
		if len(e.Name) > width {
			width = len(e.Name)
		}
	}
	for _, e := range registry {
		fmt.Fprintf(&sb, "  %-*s %s", width, e.Name, e.Desc)
		if names := flagNames(e); len(names) > 0 {
			fmt.Fprintf(&sb, " (%s)", strings.Join(names, " "))
		}
		sb.WriteByte('\n')
	}
	return strings.TrimRight(sb.String(), "\n")
}

func init() {
	register(Experiment{Name: "fig9", Desc: "phase-time distributions per seeding policy (Fig. 9a-d)",
		Run: func(o Options, _ *Params) (Renderer, error) { return Fig9(o) }})
	register(Experiment{Name: "fig10", Desc: "per-node fetch traffic per policy (Fig. 10)",
		Run: func(o Options, _ *Params) (Renderer, error) { return Fig10(o) }})
	register(Experiment{Name: "table1", Desc: "per-round fetching statistics (Table 1)",
		Run: func(o Options, _ *Params) (Renderer, error) { return Table1(o) }})
	register(Experiment{Name: "fig11", Desc: "adaptive vs constant fetching (Fig. 11)",
		Run: func(o Options, _ *Params) (Renderer, error) { return Fig11(o) }})
	register(Experiment{Name: "fig12", Desc: "PANDAS vs GossipSub vs DHT at one scale (Fig. 12)",
		Run: func(o Options, _ *Params) (Renderer, error) { return Fig12(o) }})
	register(Experiment{Name: "fig13", Desc: "PANDAS scaling sweep (Fig. 13)",
		Flags: func(b *FlagBinder) { b.Sizes() },
		Run:   func(o Options, p *Params) (Renderer, error) { return Fig13(o, p.Sizes) }})
	register(Experiment{Name: "fig14", Desc: "system comparison across scales (Fig. 14)",
		Flags: func(b *FlagBinder) { b.Sizes() },
		Run:   func(o Options, p *Params) (Renderer, error) { return Fig14(o, p.Sizes) }})
	register(Experiment{Name: "fig15a", Desc: "dead-node sweep (Fig. 15a)",
		Flags: func(b *FlagBinder) { b.Fractions() },
		Run:   func(o Options, p *Params) (Renderer, error) { return Fig15(o, FaultDead, p.Fractions) }})
	register(Experiment{Name: "fig15b", Desc: "out-of-view sweep (Fig. 15b)",
		Flags: func(b *FlagBinder) { b.Fractions() },
		Run:   func(o Options, p *Params) (Renderer, error) { return Fig15(o, FaultOutOfView, p.Fractions) }})
	register(Experiment{Name: "churn", Desc: "dynamic membership: churn rate vs sampling-deadline success",
		Flags: func(b *FlagBinder) { b.Rates() },
		Run:   func(o Options, p *Params) (Renderer, error) { return Churn(o, p.Rates) }})
	register(Experiment{Name: "ablation", Desc: "builder seeding-redundancy sweep (design knob, paper 9)",
		Flags: func(b *FlagBinder) { b.Sizes() },
		Run:   func(o Options, p *Params) (Renderer, error) { return Ablation(o, p.Sizes) }})
	register(Experiment{Name: "validate", Desc: "metadata vs real data plane cross-validation (8.2)",
		Run: func(o Options, _ *Params) (Renderer, error) { return Validate(o) }})
	register(Experiment{Name: "confidence", Desc: "sampling false-positive analysis (Section 3)",
		Flags: func(b *FlagBinder) { b.Trials() },
		Run: func(o Options, p *Params) (Renderer, error) {
			o = o.withDefaults()
			return Confidence(o.Core.Blob.N(), nil, p.Trials, o.Seed), nil
		}})
	register(Experiment{Name: "adversary", Desc: "withholding detection + byzantine-fraction sweep (threat model)",
		Flags: func(b *FlagBinder) { b.Behavior(); b.Fractions(); b.Trials() },
		Run: func(o Options, p *Params) (Renderer, error) {
			return Adversary(o, p.Behavior, p.Fractions, p.Trials)
		}})
	register(Experiment{Name: "withholding", Desc: "withholding-detection table only (cluster vs Monte Carlo)",
		Flags: func(b *FlagBinder) { b.Trials() },
		Run:   func(o Options, p *Params) (Renderer, error) { return Withholding(o, nil, p.Trials) }})
	register(Experiment{Name: "byzantine", Desc: "byzantine-fraction sweep only",
		Flags: func(b *FlagBinder) { b.Behavior(); b.Fractions() },
		Run:   func(o Options, p *Params) (Renderer, error) { return Byzantine(o, p.Behavior, p.Fractions) }})
	register(Experiment{Name: "gateway", Desc: "sampling-gateway load: coalescing/cache under 100k+ light clients",
		Flags: func(b *FlagBinder) { b.Gateway() },
		Run: func(o Options, p *Params) (Renderer, error) {
			return GatewayLoad(o, GatewayLoadOptions{
				Clients: p.Clients, QueriesPerClient: p.QueriesPerClient, ZipfS: p.Zipf,
			})
		}})
	register(Experiment{Name: "scale", Desc: "simulator capacity: bytes/node, event throughput, deadline rate vs N",
		Flags: func(b *FlagBinder) { b.Sizes() },
		Run:   func(o Options, p *Params) (Renderer, error) { return Scale(o, p.Sizes) }})
	register(Experiment{Name: "swarm", Desc: "multi-process deployment: real UDP, discovery, crash-restart (one process per node)",
		Flags: func(b *FlagBinder) { b.Fractions() },
		Run: func(o Options, p *Params) (Renderer, error) {
			kill := 0.0
			if len(p.Fractions) > 0 {
				kill = p.Fractions[0]
			}
			return Swarm(o, kill)
		}})
}

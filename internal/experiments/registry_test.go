package experiments

import (
	"flag"
	"io"
	"strings"
	"testing"
)

func TestRegistryCoversAllExperiments(t *testing.T) {
	want := []string{"fig9", "fig10", "table1", "fig11", "fig12", "fig13", "fig14",
		"fig15a", "fig15b", "churn", "ablation", "validate", "confidence",
		"adversary", "withholding", "byzantine", "gateway", "scale", "swarm"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("registry has %d experiments, want %d: %v", len(got), len(want), got)
	}
	for _, name := range want {
		e, ok := Lookup(name)
		if !ok {
			t.Fatalf("Lookup(%q) failed", name)
		}
		if e.Name != name || e.Desc == "" || e.Run == nil {
			t.Fatalf("entry %q incomplete: %+v", name, e)
		}
	}
	if _, ok := Lookup("nope"); ok {
		t.Fatal("Lookup accepted an unknown name")
	}
}

func TestRegistryListText(t *testing.T) {
	out := ListText()
	for _, name := range Names() {
		if !strings.Contains(out, name) {
			t.Fatalf("ListText missing %q:\n%s", name, out)
		}
	}
	// Flag annotations come from the declared hooks.
	for _, frag := range []string{"-sizes", "-fractions", "-rates", "-behavior", "-clients"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("ListText missing flag %q:\n%s", frag, out)
		}
	}
}

func TestBindFlagsDedupAndParse(t *testing.T) {
	p := DefaultParams()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	// Many experiments declare -sizes/-fractions; binding must not panic
	// on duplicate registration.
	BindFlags(fs, &p)
	err := fs.Parse([]string{"-sizes", "100,200", "-fractions", "0,0.5",
		"-rates", "0,2.5", "-behavior", "laggard", "-trials", "7"})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Sizes) != 2 || p.Sizes[1] != 200 {
		t.Fatalf("sizes = %v", p.Sizes)
	}
	if len(p.Fractions) != 2 || p.Fractions[1] != 0.5 {
		t.Fatalf("fractions = %v", p.Fractions)
	}
	if len(p.Rates) != 2 || p.Rates[1] != 2.5 {
		t.Fatalf("rates = %v", p.Rates)
	}
	if p.Trials != 7 {
		t.Fatalf("trials = %d", p.Trials)
	}
	// Malformed values must fail the parse, not be silently dropped.
	for _, bad := range [][]string{
		{"-sizes", "100,bogus"},
		{"-sizes", "100,-3"},
		{"-fractions", "0.2,1.5"},
		{"-rates", "0.1,-1"},
		{"-behavior", "sneaky"},
	} {
		fs2 := flag.NewFlagSet("test", flag.ContinueOnError)
		fs2.SetOutput(io.Discard)
		p2 := DefaultParams()
		BindFlags(fs2, &p2)
		if err := fs2.Parse(bad); err == nil {
			t.Fatalf("parse accepted %v", bad)
		}
	}
}

func TestParseLists(t *testing.T) {
	if xs, err := ParseIntList("-sizes", " 1, 2 ,3"); err != nil || len(xs) != 3 {
		t.Fatalf("got %v, %v", xs, err)
	}
	if xs, err := ParseIntList("-sizes", ""); err != nil || xs != nil {
		t.Fatalf("empty: got %v, %v", xs, err)
	}
	if _, err := ParseIntList("-sizes", "1,0"); err == nil {
		t.Fatal("zero accepted")
	}
	if _, err := ParseFloatList("-fractions", "0.5,1.0", 0, 1); err == nil {
		t.Fatal("upper bound not exclusive")
	}
	if xs, err := ParseFloatList("-rates", "0,0.5,10", 0, 1e18); err != nil || len(xs) != 3 {
		t.Fatalf("got %v, %v", xs, err)
	}
}

package experiments

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"

	"pandas/internal/blob"
	"pandas/internal/core"
	"pandas/internal/gateway"
	"pandas/internal/metrics"
	"pandas/internal/wire"
)

// GatewayLoadOptions parameterizes the sampling-gateway load harness:
// how many synthetic light clients hammer the gateway each slot, how
// their queries are distributed, and how the gateway itself is sized.
type GatewayLoadOptions struct {
	// Clients is the number of concurrent synthetic light clients
	// (default 100,000 — the "millions of users" workload scaled to one
	// gateway process).
	Clients int
	// QueriesPerClient is how many sampling queries each client issues
	// per slot, sequentially (default 3; with Clients concurrent
	// goroutines this keeps Clients queries in flight at all times).
	QueriesPerClient int
	// ZipfS is the zipf exponent of the cell-popularity distribution
	// (must be > 1; default 1.2 — light clients sample mostly-uniform
	// cells but block explorers and rollup watchers re-query hot ones).
	ZipfS float64
	// CacheBytes sizes the gateway hot-cell cache (default 8 MiB).
	CacheBytes int64
	// Workers sizes the gateway's upstream worker pool (default 64).
	Workers int
	// QueueDepth bounds the gateway admission queue (default 4096).
	QueueDepth int
	// MaxPerClient bounds one client's in-flight queries (default 8).
	MaxPerClient int
	// UpstreamBase and UpstreamJitter model the P2P fetch RTT the
	// gateway pays per upstream cell: base plus a deterministic
	// per-cell jitter in [0, UpstreamJitter) (defaults 500 µs + 2 ms).
	UpstreamBase, UpstreamJitter time.Duration
	// MaxRetries bounds per-query retry attempts after overload
	// rejections (default 100; each waits the gateway's hint).
	MaxRetries int
}

func (g GatewayLoadOptions) withDefaults() GatewayLoadOptions {
	if g.Clients == 0 {
		g.Clients = 100_000
	}
	if g.QueriesPerClient == 0 {
		g.QueriesPerClient = 3
	}
	if g.ZipfS <= 1 {
		g.ZipfS = 1.2
	}
	if g.CacheBytes == 0 {
		g.CacheBytes = 8 << 20
	}
	if g.Workers == 0 {
		g.Workers = 64
	}
	if g.QueueDepth == 0 {
		g.QueueDepth = 4096
	}
	if g.MaxPerClient == 0 {
		g.MaxPerClient = 8
	}
	if g.UpstreamBase == 0 {
		g.UpstreamBase = 500 * time.Microsecond
	}
	if g.UpstreamJitter == 0 {
		g.UpstreamJitter = 2 * time.Millisecond
	}
	if g.MaxRetries == 0 {
		g.MaxRetries = 100
	}
	return g
}

// GatewaySlotStats reports one slot of gateway load.
type GatewaySlotStats struct {
	Slot            uint64
	Queries         int64 // completed queries
	CacheHits       int64
	CoalescedJoins  int64
	UpstreamFetches int64
	Rejects         int64 // overload rejections (every one retried)
	BatchVerifies   int64
	BadProofs       int64
	DistinctCells   int // distinct cells the clients drew this slot
	P50, P90, P99   time.Duration
	Max             time.Duration
	Wall            time.Duration
	QPS             float64
}

// GatewayLoadResult aggregates a gateway load run. The count fields are
// deterministic for a fixed seed (queries are drawn from per-client
// seeded streams and every query eventually completes); the latency
// fields are wall-clock measurements and vary run to run.
type GatewayLoadResult struct {
	Options GatewayLoadOptions
	Nodes   int
	Slots   int
	Cells   int // extended cells per slot (the query key space)

	PerSlot []GatewaySlotStats

	// Aggregates over all slots.
	Queries         int64
	CacheHits       int64
	CoalescedJoins  int64
	UpstreamFetches int64
	Rejects         int64
	BatchVerifies   int64
	BadProofs       int64
	HitRate         float64 // CacheHits / Queries
	CoalesceFactor  float64 // queries resolved per upstream fetch (hits excluded)
	Reduction       float64 // Queries / UpstreamFetches — the fan-out saving
	P50, P99        time.Duration
}

// clusterUpstream adapts a simulated PANDAS deployment to the gateway's
// Upstream interface: a fetch consults the custody nodes assigned to
// the cell's row/column (zero-copy Store.Peek), then any node, then the
// builder's prepared blob. Each fetch pays a simulated P2P RTT — the
// cost the cache and coalescer exist to avoid.
type clusterUpstream struct {
	cluster      *core.Cluster
	base, jitter time.Duration
}

func (u *clusterUpstream) FetchCell(ctx context.Context, slot uint64, id blob.CellID) (wire.Cell, error) {
	if u.base > 0 || u.jitter > 0 {
		d := u.base
		if u.jitter > 0 {
			d += time.Duration(gatewayKeyHash(slot, id) % uint64(u.jitter))
		}
		select {
		case <-time.After(d):
		case <-ctx.Done():
			return wire.Cell{}, ctx.Err()
		}
	}
	table := u.cluster.Table()
	nodes := u.cluster.Nodes()
	for _, l := range []blob.Line{
		{Kind: blob.Row, Index: id.Row},
		{Kind: blob.Col, Index: id.Col},
	} {
		for _, holder := range table.Holders(l) {
			if holder < 0 || holder >= len(nodes) {
				continue
			}
			if st := nodes[holder].Store(); st != nil {
				if c, ok := st.Peek(id); ok && c.Data != nil {
					return c, nil
				}
			}
		}
	}
	if c, ok := u.cluster.Builder().CellPayload(id); ok {
		return c, nil
	}
	return wire.Cell{}, fmt.Errorf("experiments: cell %v not held anywhere", id)
}

// gatewayKeyHash is the deterministic per-cell jitter source.
func gatewayKeyHash(slot uint64, id blob.CellID) uint64 {
	x := slot*0x9e3779b97f4a7c15 ^ uint64(id.Row)<<16 ^ uint64(id.Col)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	return x ^ x>>31
}

// GatewayLoad runs the sampling-as-a-service load harness: a simnet
// PANDAS cluster runs each slot to populate custody stores, then
// go.Clients synthetic light clients concurrently issue zipf-distributed
// sampling queries against a gateway fronting the cluster. It reports
// latency percentiles, cache hit rate, coalescing factor, and the
// upstream-fetch reduction.
//
// The harness always runs the scaled-down real-payload geometry
// (32x32, identical code paths): the full 512x512 extension takes
// minutes of CPU and the gateway's behaviour is geometry-independent.
func GatewayLoad(o Options, gwo GatewayLoadOptions) (*GatewayLoadResult, error) {
	o = o.withDefaults()
	gwo = gwo.withDefaults()
	// Force the real data plane at test geometry: the gateway serves
	// actual bytes and verifies actual proofs.
	o.Core = core.TestConfig()
	o.Core.RealPayloads = true
	if o.Nodes > 500 {
		o.Nodes = 500
	}

	c, err := newCluster(o, func(cc *core.ClusterConfig) {
		cc.Core.Policy = core.PolicyRedundant
	})
	if err != nil {
		return nil, err
	}
	data := make([]byte, o.Core.Blob.BlobBytes())
	for i := range data {
		data[i] = byte(i*131 + 17)
	}
	if err := c.Builder().PrepareBlob(data); err != nil {
		return nil, err
	}

	up := &clusterUpstream{cluster: c, base: gwo.UpstreamBase, jitter: gwo.UpstreamJitter}
	gw, err := gateway.New(gateway.Config{
		Upstream:     up,
		CacheBytes:   gwo.CacheBytes,
		Workers:      gwo.Workers,
		QueueDepth:   gwo.QueueDepth,
		MaxPerClient: gwo.MaxPerClient,
		VerifyProofs: true,
		RetainSlots:  2,
		Recorder:     o.Core.Recorder,
		Metrics:      o.Core.Metrics,
	})
	if err != nil {
		return nil, err
	}
	defer gw.Close()

	cells := o.Core.Blob.ExtendedCells()
	n := o.Core.Blob.N()
	res := &GatewayLoadResult{
		Options: gwo, Nodes: o.Nodes, Slots: o.Slots, Cells: cells,
	}

	// Per-client deterministic query streams: client i's zipf draws
	// depend only on the run seed and i, never on goroutine scheduling.
	rngs := make([]*rand.Rand, gwo.Clients)
	zipfs := make([]*rand.Zipf, gwo.Clients)
	for i := range rngs {
		rngs[i] = rand.New(rand.NewSource(o.Seed ^ int64(i)*0x9e3779b9 ^ 0x676174))
		zipfs[i] = rand.NewZipf(rngs[i], gwo.ZipfS, 1, uint64(cells-1))
	}

	lat := make([]time.Duration, gwo.Clients*gwo.QueriesPerClient)
	drawn := make([][]blob.CellID, gwo.Clients)

	var prev gateway.Stats
	for s := 1; s <= o.Slots; s++ {
		slot := uint64(s)
		if _, err := c.RunSlot(slot); err != nil {
			return nil, fmt.Errorf("slot %d: %w", s, err)
		}
		gw.StartSlot(slot, c.Builder().Commitment())

		start := time.Now()
		var wg sync.WaitGroup
		var firstErr error
		var errMu sync.Mutex
		wg.Add(gwo.Clients)
		for i := 0; i < gwo.Clients; i++ {
			i := i
			go func() {
				defer wg.Done()
				drawn[i] = drawn[i][:0]
				for q := 0; q < gwo.QueriesPerClient; q++ {
					id := blob.CellIDFromIndex(int(zipfs[i].Uint64()), n)
					drawn[i] = append(drawn[i], id)
					t0 := time.Now()
					if err := gatewayQueryRetry(gw, i, slot, id, gwo.MaxRetries); err != nil {
						errMu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						errMu.Unlock()
						return
					}
					lat[i*gwo.QueriesPerClient+q] = time.Since(t0)
				}
			}()
		}
		wg.Wait()
		wall := time.Since(start)
		if firstErr != nil {
			return nil, firstErr
		}

		distinct := make(map[blob.CellID]struct{}, cells)
		for i := range drawn {
			for _, id := range drawn[i] {
				distinct[id] = struct{}{}
			}
		}
		cur := gw.Stats()
		d := gatewayStatsDelta(cur, prev)
		prev = cur

		sorted := append([]time.Duration(nil), lat...)
		sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
		pct := func(p float64) time.Duration {
			idx := int(p / 100 * float64(len(sorted)-1))
			return sorted[idx]
		}
		completed := int64(gwo.Clients * gwo.QueriesPerClient)
		ss := GatewaySlotStats{
			Slot:            slot,
			Queries:         completed,
			CacheHits:       d.CacheHits,
			CoalescedJoins:  d.CoalescedJoins,
			UpstreamFetches: d.UpstreamFetches,
			Rejects:         d.Rejects,
			BatchVerifies:   d.BatchVerifies,
			BadProofs:       d.BadProofs,
			DistinctCells:   len(distinct),
			P50:             pct(50),
			P90:             pct(90),
			P99:             pct(99),
			Max:             sorted[len(sorted)-1],
			Wall:            wall,
			QPS:             float64(completed) / wall.Seconds(),
		}
		res.PerSlot = append(res.PerSlot, ss)
	}

	for _, ss := range res.PerSlot {
		res.Queries += ss.Queries
		res.CacheHits += ss.CacheHits
		res.CoalescedJoins += ss.CoalescedJoins
		res.UpstreamFetches += ss.UpstreamFetches
		res.Rejects += ss.Rejects
		res.BatchVerifies += ss.BatchVerifies
		res.BadProofs += ss.BadProofs
	}
	if res.Queries > 0 {
		res.HitRate = float64(res.CacheHits) / float64(res.Queries)
	}
	if res.UpstreamFetches > 0 {
		res.CoalesceFactor = float64(res.CoalescedJoins+res.UpstreamFetches) / float64(res.UpstreamFetches)
		res.Reduction = float64(res.Queries) / float64(res.UpstreamFetches)
	}
	if len(res.PerSlot) > 0 {
		// Aggregate percentiles: median of per-slot values keeps the
		// report robust to one warm-up slot.
		p50s := make([]time.Duration, 0, len(res.PerSlot))
		p99s := make([]time.Duration, 0, len(res.PerSlot))
		for _, ss := range res.PerSlot {
			p50s = append(p50s, ss.P50)
			p99s = append(p99s, ss.P99)
		}
		sort.Slice(p50s, func(a, b int) bool { return p50s[a] < p50s[b] })
		sort.Slice(p99s, func(a, b int) bool { return p99s[a] < p99s[b] })
		res.P50 = p50s[len(p50s)/2]
		res.P99 = p99s[len(p99s)/2]
	}
	return res, nil
}

// gatewayQueryRetry issues one query, honouring retry-after hints on
// overload. Every query eventually completes (or the run aborts), which
// is what keeps the run's count accounting deterministic under load.
func gatewayQueryRetry(gw *gateway.Gateway, client int, slot uint64, id blob.CellID, maxRetries int) error {
	for attempt := 0; ; attempt++ {
		_, err := gw.Query(context.Background(), client, slot, id)
		if err == nil {
			return nil
		}
		var ra *gateway.RetryAfterError
		if errors.As(err, &ra) && attempt < maxRetries {
			time.Sleep(ra.After)
			continue
		}
		return fmt.Errorf("experiments: gateway query client=%d slot=%d cell=%v: %w", client, slot, id, err)
	}
}

// fmtUs renders gateway-scale latencies (cache hits are microseconds;
// the experiments-wide fmtMs would round them all to 0).
func fmtUs(d time.Duration) string {
	if d < 0 {
		return "-"
	}
	return fmt.Sprintf("%d", d.Microseconds())
}

func gatewayStatsDelta(cur, prev gateway.Stats) gateway.Stats {
	return gateway.Stats{
		Queries:         cur.Queries - prev.Queries,
		CacheHits:       cur.CacheHits - prev.CacheHits,
		CoalescedJoins:  cur.CoalescedJoins - prev.CoalescedJoins,
		UpstreamFetches: cur.UpstreamFetches - prev.UpstreamFetches,
		UpstreamErrors:  cur.UpstreamErrors - prev.UpstreamErrors,
		Rejects:         cur.Rejects - prev.Rejects,
		BatchVerifies:   cur.BatchVerifies - prev.BatchVerifies,
		VerifiedCells:   cur.VerifiedCells - prev.VerifiedCells,
		BadProofs:       cur.BadProofs - prev.BadProofs,
	}
}

// Render prints the gateway load table.
func (r *GatewayLoadResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Gateway load — %d clients x %d queries/slot, zipf %.2f over %d cells, %d-node cluster\n",
		r.Options.Clients, r.Options.QueriesPerClient, r.Options.ZipfS, r.Cells, r.Nodes)
	tab := metrics.NewTable("slot", "queries", "hits", "joins", "upstream", "rejects", "p50us", "p99us", "kqps")
	for _, ss := range r.PerSlot {
		tab.AddRow(
			fmt.Sprintf("%d", ss.Slot),
			fmt.Sprintf("%d", ss.Queries),
			fmt.Sprintf("%d", ss.CacheHits),
			fmt.Sprintf("%d", ss.CoalescedJoins),
			fmt.Sprintf("%d", ss.UpstreamFetches),
			fmt.Sprintf("%d", ss.Rejects),
			fmtUs(ss.P50),
			fmtUs(ss.P99),
			fmt.Sprintf("%.0f", ss.QPS/1000),
		)
	}
	b.WriteString(tab.String())
	fmt.Fprintf(&b, "aggregate: hit rate %.1f%%, coalesce %.1f queries/fetch, upstream reduction %.0fx, %d batch verifies, %d bad proofs\n",
		r.HitRate*100, r.CoalesceFactor, r.Reduction, r.BatchVerifies, r.BadProofs)
	return b.String()
}

package experiments

import (
	"fmt"
	"strings"
	"time"

	"pandas/internal/baseline"
	"pandas/internal/core"
	"pandas/internal/metrics"
)

// System identifies the compared DAS designs.
type System string

// Compared systems.
const (
	SystemPandas System = "pandas"
	SystemGossip System = "gossipsub"
	SystemDHT    System = "dht"
)

// SystemResult holds one system's sampling distribution and traffic.
type SystemResult struct {
	Sampling *metrics.Distribution
	Msgs     *metrics.Scalar
	Bytes    *metrics.Scalar
}

// runSystem executes one system at the given options and pools slots.
func runSystem(sys System, o Options) (*SystemResult, error) {
	switch sys {
	case SystemPandas:
		c, err := newCluster(o, func(cc *core.ClusterConfig) {
			cc.Core.Policy = core.PolicyRedundant
		})
		if err != nil {
			return nil, err
		}
		outcomes, _, err := runSlots(c, o.Slots)
		if err != nil {
			return nil, err
		}
		var samp []time.Duration
		msgs, bytes := metrics.NewScalar(nil), metrics.NewScalar(nil)
		for _, out := range outcomes {
			if out.Dead {
				continue
			}
			samp = append(samp, out.Sampling)
			msgs.Add(float64(out.FetchMsgs))
			bytes.Add(float64(out.FetchBytes))
		}
		return &SystemResult{Sampling: metrics.NewDistribution(samp), Msgs: msgs, Bytes: bytes}, nil
	case SystemGossip, SystemDHT:
		cfg := baseline.Config{Core: o.Core, N: o.Nodes, Seed: o.Seed, LossRate: *o.LossRate}
		var run func(uint64) (*baseline.Result, error)
		if sys == SystemGossip {
			g, err := baseline.NewGossipCluster(cfg)
			if err != nil {
				return nil, err
			}
			run = g.RunSlot
		} else {
			d, err := baseline.NewDHTCluster(cfg)
			if err != nil {
				return nil, err
			}
			run = d.RunSlot
		}
		var samp []time.Duration
		msgs, bytes := metrics.NewScalar(nil), metrics.NewScalar(nil)
		for s := 1; s <= o.Slots; s++ {
			res, err := run(uint64(s))
			if err != nil {
				return nil, err
			}
			samp = append(samp, res.Sampling...)
			for _, m := range res.MsgsPerNode {
				msgs.Add(float64(m))
			}
			for _, b := range res.BytesPerNode {
				bytes.Add(float64(b))
			}
		}
		return &SystemResult{Sampling: metrics.NewDistribution(samp), Msgs: msgs, Bytes: bytes}, nil
	default:
		return nil, fmt.Errorf("experiments: unknown system %q", sys)
	}
}

// Fig12Result compares the three systems at one scale (Fig. 12).
type Fig12Result struct {
	Options Options
	Systems map[System]*SystemResult
}

// Fig12 reproduces Fig. 12: time to sampling and message counts for
// PANDAS, the GossipSub baseline, and the DHT baseline at one scale.
func Fig12(o Options) (*Fig12Result, error) {
	o = o.withDefaults()
	res := &Fig12Result{Options: o, Systems: make(map[System]*SystemResult)}
	for _, sys := range []System{SystemPandas, SystemGossip, SystemDHT} {
		sr, err := runSystem(sys, o)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", sys, err)
		}
		res.Systems[sys] = sr
	}
	return res, nil
}

// Render prints Fig. 12 rows.
func (r *Fig12Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 12 — PANDAS vs baselines, %d nodes\n", r.Options.Nodes)
	b.WriteString(renderSystems(r.Systems, r.Options.Core.Deadline))
	return b.String()
}

func renderSystems(systems map[System]*SystemResult, deadline time.Duration) string {
	tab := metrics.NewTable("system", "median ms", "P99 ms", "max ms", "on-time%", "msgs mean", "KB mean")
	for _, sys := range []System{SystemPandas, SystemGossip, SystemDHT} {
		sr, ok := systems[sys]
		if !ok {
			continue
		}
		tab.AddRow(string(sys),
			fmtMs(sr.Sampling.Median()), fmtMs(sr.Sampling.Percentile(99)), fmtMs(sr.Sampling.Max()),
			fmt.Sprintf("%.1f", 100*sr.Sampling.FractionWithin(deadline)),
			fmt.Sprintf("%.0f", sr.Msgs.Mean()),
			fmt.Sprintf("%.1f", sr.Bytes.Mean()/1024))
	}
	return tab.String()
}

// Fig13Result holds PANDAS's scaling behaviour (Fig. 13).
type Fig13Result struct {
	Options Options
	Sizes   []int
	Phases  map[int]PhaseTimes
	Msgs    map[int]*metrics.Scalar
	Bytes   map[int]*metrics.Scalar
}

// Fig13 reproduces Fig. 13: PANDAS phase times, messages, and bandwidth
// at increasing network sizes (paper: 1k, 3k, 5k, 10k, 20k).
func Fig13(o Options, sizes []int) (*Fig13Result, error) {
	o = o.withDefaults()
	if len(sizes) == 0 {
		sizes = []int{1000, 3000, 5000, 10000, 20000}
	}
	res := &Fig13Result{
		Options: o,
		Sizes:   sizes,
		Phases:  make(map[int]PhaseTimes),
		Msgs:    make(map[int]*metrics.Scalar),
		Bytes:   make(map[int]*metrics.Scalar),
	}
	for _, size := range sizes {
		so := o
		so.Nodes = size
		c, err := newCluster(so, func(cc *core.ClusterConfig) {
			cc.Core.Policy = core.PolicyRedundant
		})
		if err != nil {
			return nil, err
		}
		outcomes, _, err := runSlots(c, so.Slots)
		if err != nil {
			return nil, err
		}
		res.Phases[size] = phaseTimes(outcomes)
		msgs, bytes := metrics.NewScalar(nil), metrics.NewScalar(nil)
		for _, out := range outcomes {
			if out.Dead {
				continue
			}
			msgs.Add(float64(out.FetchMsgs))
			bytes.Add(float64(out.FetchBytes))
		}
		res.Msgs[size] = msgs
		res.Bytes[size] = bytes
	}
	return res, nil
}

// Render prints Fig. 13 rows.
func (r *Fig13Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 13 — PANDAS scaling (redundant seeding, %d slots)\n", r.Options.Slots)
	tab := metrics.NewTable("nodes", "seed P99", "cons P99", "sample median", "sample P99", "on-time%", "msgs mean", "KB mean")
	for _, size := range r.Sizes {
		pt := r.Phases[size]
		tab.AddRow(fmt.Sprintf("%d", size),
			fmtMs(pt.Seeding.Percentile(99)),
			fmtMs(pt.ConsFromStart.Percentile(99)),
			fmtMs(pt.Sampling.Median()),
			fmtMs(pt.Sampling.Percentile(99)),
			fmt.Sprintf("%.1f", 100*pt.Sampling.FractionWithin(r.Options.Core.Deadline)),
			fmt.Sprintf("%.0f", r.Msgs[size].Mean()),
			fmt.Sprintf("%.1f", r.Bytes[size].Mean()/1024))
	}
	b.WriteString(tab.String())
	return b.String()
}

// Fig14Result compares systems across scales (Fig. 14).
type Fig14Result struct {
	Options Options
	Sizes   []int
	Results map[int]map[System]*SystemResult
}

// Fig14 reproduces Fig. 14: sampling time, messages, and bandwidth for
// PANDAS and both baselines across network sizes.
func Fig14(o Options, sizes []int) (*Fig14Result, error) {
	o = o.withDefaults()
	if len(sizes) == 0 {
		sizes = []int{1000, 3000, 5000, 10000, 20000}
	}
	res := &Fig14Result{Options: o, Sizes: sizes, Results: make(map[int]map[System]*SystemResult)}
	for _, size := range sizes {
		so := o
		so.Nodes = size
		per := make(map[System]*SystemResult)
		for _, sys := range []System{SystemPandas, SystemGossip, SystemDHT} {
			sr, err := runSystem(sys, so)
			if err != nil {
				return nil, fmt.Errorf("%s @%d: %w", sys, size, err)
			}
			per[sys] = sr
		}
		res.Results[size] = per
	}
	return res, nil
}

// Render prints Fig. 14 rows.
func (r *Fig14Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 14 — system comparison across scales\n")
	for _, size := range r.Sizes {
		fmt.Fprintf(&b, "\n%d nodes:\n", size)
		b.WriteString(renderSystems(r.Results[size], r.Options.Core.Deadline))
	}
	return b.String()
}

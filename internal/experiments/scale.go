package experiments

// The scale experiment measures the simulator itself rather than the
// protocol: how much resident memory one simulated node costs in
// metadata mode and how many discrete events per wall-clock second the
// engine sustains, across network sizes. These are the gates that back
// the 100k-1M node claims (compact per-node state + pooled sharded
// event heap); scripts/bench.sh runs the 100k point and enforces
// bytes/node and events/sec floors.

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"pandas/internal/metrics"
)

// ScalePoint is one network size of the capacity sweep.
type ScalePoint struct {
	Nodes int
	// BytesPerNode is the post-GC heap growth from building and running
	// the cluster, divided by N: the resident cost of one simulated
	// node (stores, views, routing state, amortized event pool).
	BytesPerNode float64
	// Events is the total discrete events executed across all slots.
	Events uint64
	// EventsPerSec is Events divided by the wall-clock run time.
	EventsPerSec float64
	// Wall is the wall-clock time of the slot runs (excludes build).
	Wall time.Duration
	// Build is the wall-clock time of cluster construction.
	Build time.Duration
	// DeadlineRate is the fraction of live nodes sampling on time.
	DeadlineRate float64
}

// ScaleResult holds the capacity sweep.
type ScaleResult struct {
	Options Options
	Points  []ScalePoint
}

// Scale runs a metadata-mode cluster at each size and reports the
// simulator's resource profile. Memory is measured as the post-GC
// HeapAlloc delta around build+run, so it reflects state the cluster
// retains, not transient garbage.
func Scale(o Options, sizes []int) (*ScaleResult, error) {
	o = o.withDefaults()
	if len(sizes) == 0 {
		sizes = []int{1000, 10000}
	}
	res := &ScaleResult{Options: o, Points: make([]ScalePoint, 0, len(sizes))}
	for _, n := range sizes {
		ro := o
		ro.Nodes = n
		runtime.GC()
		var before runtime.MemStats
		runtime.ReadMemStats(&before)

		buildStart := time.Now()
		c, err := newCluster(ro, nil)
		if err != nil {
			return nil, err
		}
		build := time.Since(buildStart)

		runStart := time.Now()
		outcomes, _, err := runSlots(c, ro.Slots)
		if err != nil {
			return nil, err
		}
		wall := time.Since(runStart)

		runtime.GC()
		var after runtime.MemStats
		runtime.ReadMemStats(&after)
		// Read the event counter after the memory probe so the cluster
		// (and everything it retains) stays reachable across the GC.
		events := c.Network().Engine().Executed()

		p := ScalePoint{Nodes: n, Events: events, Wall: wall, Build: build}
		if after.HeapAlloc > before.HeapAlloc {
			p.BytesPerNode = float64(after.HeapAlloc-before.HeapAlloc) / float64(n)
		}
		if wall > 0 {
			p.EventsPerSec = float64(events) / wall.Seconds()
		}
		live, onTime := 0, 0
		for _, out := range outcomes {
			if out.Dead {
				continue
			}
			live++
			if out.Sampling >= 0 && out.Sampling <= ro.Core.Deadline {
				onTime++
			}
		}
		if live > 0 {
			p.DeadlineRate = float64(onTime) / float64(live)
		}
		res.Points = append(res.Points, p)
	}
	return res, nil
}

// Render prints the capacity table.
func (r *ScaleResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Simulator capacity — metadata mode, %d slots, geometry %dx%d\n",
		r.Options.Slots, r.Options.Core.Blob.N(), r.Options.Core.Blob.N())
	tab := metrics.NewTable("nodes", "bytes/node", "events", "events/sec", "build", "run", "on-time%")
	for _, p := range r.Points {
		tab.AddRow(
			fmt.Sprintf("%d", p.Nodes),
			fmt.Sprintf("%.0f", p.BytesPerNode),
			fmt.Sprintf("%d", p.Events),
			fmt.Sprintf("%.0f", p.EventsPerSec),
			p.Build.Round(time.Millisecond).String(),
			p.Wall.Round(time.Millisecond).String(),
			fmt.Sprintf("%.1f", 100*p.DeadlineRate),
		)
	}
	b.WriteString(tab.String())
	return b.String()
}

package experiments

import (
	"fmt"
	"os"

	"pandas/internal/swarm"
)

// Swarm runs the multi-process deployment (internal/swarm) as a
// registry experiment: it compiles the pandas-node worker binary from
// the enclosing module, launches o.Nodes real worker processes plus a
// builder process on localhost, drives o.Slots slots over real UDP
// sockets, and harvests the outcomes into the simnet's schema so the
// numbers line up with the in-process experiments. kill is the
// per-slot fraction of worker processes killed mid-slot (0 disables
// fault injection); victims are restarted by the supervisor and must
// rejoin the live deployment.
func Swarm(o Options, kill float64) (*swarm.Result, error) {
	n := o.Nodes
	if n == 0 {
		// The simnet default of 1,000 nodes would mean 1,000 OS
		// processes here; default to a single-machine-sized swarm.
		n = 32
	}
	slots := o.Slots
	if slots == 0 {
		slots = 3
	}
	dir, err := os.MkdirTemp("", "pandas-swarm-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	fmt.Fprintln(os.Stderr, "swarm: building pandas-node worker binary...")
	bin, err := swarm.BuildNodeBinary(dir)
	if err != nil {
		return nil, fmt.Errorf("build worker binary: %w", err)
	}
	return swarm.Run(swarm.Options{
		N:             n,
		Slots:         slots,
		Seed:          o.Seed,
		Geometry:      swarm.DefaultGeometry(),
		KillFraction:  kill,
		Command:       swarm.NodeBinaryCommand(bin),
		ScrapeMetrics: true,
	})
}

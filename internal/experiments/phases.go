package experiments

import (
	"fmt"
	"strings"
	"time"

	"pandas/internal/core"
	"pandas/internal/metrics"
)

// Fig9Result holds the phase-time distributions for the three seeding
// policies (Fig. 9a-d) plus the gossip block-reception curve plotted for
// comparison in Fig. 9a.
type Fig9Result struct {
	Options  Options
	Policies []core.Policy
	PerPhase map[core.Policy]PhaseTimes
	Block    *metrics.Distribution
}

// Fig9 reproduces Fig. 9: distributions of time-to-seeding,
// time-to-consolidation (from seeding and from slot start), and
// time-to-sampling across all nodes, for the minimal / single / redundant
// seeding policies.
func Fig9(o Options) (*Fig9Result, error) {
	o = o.withDefaults()
	res := &Fig9Result{
		Options:  o,
		Policies: []core.Policy{core.PolicyMinimal, core.PolicySingle, core.PolicyRedundant},
		PerPhase: make(map[core.Policy]PhaseTimes),
	}
	for _, policy := range res.Policies {
		policy := policy
		c, err := newCluster(o, func(cc *core.ClusterConfig) {
			cc.Core.Policy = policy
			cc.BlockGossip = policy == core.PolicyRedundant // one block curve suffices
		})
		if err != nil {
			return nil, err
		}
		outcomes, _, err := runSlots(c, o.Slots)
		if err != nil {
			return nil, err
		}
		res.PerPhase[policy] = phaseTimes(outcomes)
		if policy == core.PolicyRedundant {
			var block []time.Duration
			for _, out := range outcomes {
				if !out.Dead {
					block = append(block, out.BlockRecv)
				}
			}
			res.Block = metrics.NewDistribution(block)
		}
	}
	return res, nil
}

// Render prints the paper-style summary rows.
func (r *Fig9Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 9 — phase times, %d nodes, %d slots (ms)\n", r.Options.Nodes, r.Options.Slots)
	tab := metrics.NewTable("policy", "phase", "median", "P99", "max", "on-time%")
	deadline := r.Options.Core.Deadline
	for _, p := range r.Policies {
		pt := r.PerPhase[p]
		rows := []struct {
			name string
			d    *metrics.Distribution
		}{
			{"seeding", pt.Seeding},
			{"consolidation(from seed)", pt.ConsFromSeed},
			{"consolidation(from start)", pt.ConsFromStart},
			{"sampling", pt.Sampling},
		}
		for _, row := range rows {
			tab.AddRow(p.String(), row.name,
				fmtMs(row.d.Median()), fmtMs(row.d.Percentile(99)), fmtMs(row.d.Max()),
				fmt.Sprintf("%.1f", 100*row.d.FractionWithin(deadline)))
		}
	}
	if r.Block != nil {
		tab.AddRow("(gossip)", "block reception",
			fmtMs(r.Block.Median()), fmtMs(r.Block.Percentile(99)), fmtMs(r.Block.Max()),
			fmt.Sprintf("%.1f", 100*r.Block.FractionWithin(deadline)))
	}
	b.WriteString(tab.String())
	return b.String()
}

// Fig10Result holds fetch traffic distributions per seeding policy.
type Fig10Result struct {
	Options  Options
	Policies []core.Policy
	Msgs     map[core.Policy]*metrics.Scalar
	Bytes    map[core.Policy]*metrics.Scalar
}

// Fig10 reproduces Fig. 10: distribution of messages and traffic volume
// used for fetching (consolidation + sampling, both directions) across
// nodes, per seeding policy.
func Fig10(o Options) (*Fig10Result, error) {
	o = o.withDefaults()
	res := &Fig10Result{
		Options:  o,
		Policies: []core.Policy{core.PolicyMinimal, core.PolicySingle, core.PolicyRedundant},
		Msgs:     make(map[core.Policy]*metrics.Scalar),
		Bytes:    make(map[core.Policy]*metrics.Scalar),
	}
	for _, policy := range res.Policies {
		policy := policy
		c, err := newCluster(o, func(cc *core.ClusterConfig) { cc.Core.Policy = policy })
		if err != nil {
			return nil, err
		}
		outcomes, _, err := runSlots(c, o.Slots)
		if err != nil {
			return nil, err
		}
		msgs := metrics.NewScalar(nil)
		bytes := metrics.NewScalar(nil)
		for _, out := range outcomes {
			if out.Dead {
				continue
			}
			msgs.Add(float64(out.FetchMsgs))
			bytes.Add(float64(out.FetchBytes))
		}
		res.Msgs[policy] = msgs
		res.Bytes[policy] = bytes
	}
	return res, nil
}

// Render prints Fig. 10 rows.
func (r *Fig10Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 10 — fetch traffic per node, %d nodes (both directions)\n", r.Options.Nodes)
	tab := metrics.NewTable("policy", "msgs mean±std", "msgs max", "KB mean", "KB max")
	for _, p := range r.Policies {
		tab.AddRow(p.String(),
			r.Msgs[p].MeanStd(),
			fmt.Sprintf("%.0f", r.Msgs[p].Max()),
			fmt.Sprintf("%.1f", r.Bytes[p].Mean()/1024),
			fmt.Sprintf("%.1f", r.Bytes[p].Max()/1024))
	}
	b.WriteString(tab.String())
	return b.String()
}

// Table1Result aggregates per-round fetching statistics (Table 1).
type Table1Result struct {
	Options Options
	Rounds  []Table1Round
}

// Table1Round is one column of Table 1: means ± stddev over nodes.
type Table1Round struct {
	Round          int
	MsgsSent       *metrics.Scalar
	CellsRequested *metrics.Scalar
	RepliesIn      *metrics.Scalar
	RepliesAfter   *metrics.Scalar
	CellsIn        *metrics.Scalar
	CellsAfter     *metrics.Scalar
	Duplicates     *metrics.Scalar
	Reconstructed  *metrics.Scalar
	Coverage       float64 // mean cumulative coverage of F
}

// Table1 reproduces Table 1: fetching-algorithm performance in successive
// rounds under the redundant seeding policy.
func Table1(o Options) (*Table1Result, error) {
	o = o.withDefaults()
	c, err := newCluster(o, func(cc *core.ClusterConfig) {
		cc.Core.Policy = core.PolicyRedundant
	})
	if err != nil {
		return nil, err
	}
	outcomes, _, err := runSlots(c, o.Slots)
	if err != nil {
		return nil, err
	}
	const maxRounds = 4
	res := &Table1Result{Options: o}
	for round := 0; round < maxRounds; round++ {
		tr := Table1Round{
			Round:          round + 1,
			MsgsSent:       metrics.NewScalar(nil),
			CellsRequested: metrics.NewScalar(nil),
			RepliesIn:      metrics.NewScalar(nil),
			RepliesAfter:   metrics.NewScalar(nil),
			CellsIn:        metrics.NewScalar(nil),
			CellsAfter:     metrics.NewScalar(nil),
			Duplicates:     metrics.NewScalar(nil),
			Reconstructed:  metrics.NewScalar(nil),
		}
		covSum, covN := 0.0, 0
		for _, out := range outcomes {
			if out.Dead || len(out.Rounds) == 0 {
				continue
			}
			// Nodes that finished before this round carry their final
			// coverage forward (they sit at ~100%), so the aggregate
			// matches the paper's cumulative column.
			if len(out.Rounds) <= round {
				covSum += out.Rounds[len(out.Rounds)-1].CoverageAfter
				covN++
				continue
			}
			rs := out.Rounds[round]
			tr.MsgsSent.Add(float64(rs.MsgsSent))
			tr.CellsRequested.Add(float64(rs.CellsRequested))
			tr.RepliesIn.Add(float64(rs.RepliesInRound))
			tr.RepliesAfter.Add(float64(rs.RepliesAfterRound))
			tr.CellsIn.Add(float64(rs.CellsInRound))
			tr.CellsAfter.Add(float64(rs.CellsAfterRound))
			tr.Duplicates.Add(float64(rs.Duplicates))
			tr.Reconstructed.Add(float64(rs.Reconstructed))
			covSum += rs.CoverageAfter
			covN++
		}
		if covN > 0 {
			tr.Coverage = covSum / float64(covN)
		}
		res.Rounds = append(res.Rounds, tr)
	}
	return res, nil
}

// Render prints Table 1.
func (r *Table1Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1 — fetching per round, %d nodes, redundant seeding\n", r.Options.Nodes)
	tab := metrics.NewTable("metric", "round 1", "round 2", "round 3", "round 4")
	row := func(name string, get func(Table1Round) string) {
		cells := []string{name}
		for _, tr := range r.Rounds {
			cells = append(cells, get(tr))
		}
		tab.AddRow(cells...)
	}
	row("Messages sent", func(t Table1Round) string { return t.MsgsSent.MeanStd() })
	row("Cells requested", func(t Table1Round) string { return t.CellsRequested.MeanStd() })
	row("Replies received in round", func(t Table1Round) string { return t.RepliesIn.MeanStd() })
	row("Replies received after round", func(t Table1Round) string { return t.RepliesAfter.MeanStd() })
	row("Cells received in round", func(t Table1Round) string { return t.CellsIn.MeanStd() })
	row("Cells received after round", func(t Table1Round) string { return t.CellsAfter.MeanStd() })
	row("Received cells duplicates", func(t Table1Round) string { return t.Duplicates.MeanStd() })
	row("Cells reconstructed", func(t Table1Round) string { return t.Reconstructed.MeanStd() })
	row("Cumulative coverage of F", func(t Table1Round) string { return fmt.Sprintf("%.0f%%", t.Coverage*100) })
	b.WriteString(tab.String())
	return b.String()
}

// Fig11Result compares adaptive and constant fetching.
type Fig11Result struct {
	Options          Options
	AdaptiveSampling *metrics.Distribution
	ConstantSampling *metrics.Distribution
	AdaptiveMsgs     *metrics.Scalar
	ConstantMsgs     *metrics.Scalar
}

// Fig11 reproduces Fig. 11: adaptive fetching versus a constant strategy
// (fixed 400 ms timeout, redundancy 1) under redundant seeding.
func Fig11(o Options) (*Fig11Result, error) {
	o = o.withDefaults()
	run := func(constant bool) (*metrics.Distribution, *metrics.Scalar, error) {
		c, err := newCluster(o, func(cc *core.ClusterConfig) {
			cc.Core.Policy = core.PolicyRedundant
			if constant {
				cc.Core.Schedule = constantSchedule()
			}
		})
		if err != nil {
			return nil, nil, err
		}
		outcomes, _, err := runSlots(c, o.Slots)
		if err != nil {
			return nil, nil, err
		}
		var samp []time.Duration
		msgs := metrics.NewScalar(nil)
		for _, out := range outcomes {
			if out.Dead {
				continue
			}
			samp = append(samp, out.Sampling)
			msgs.Add(float64(out.FetchMsgs))
		}
		return metrics.NewDistribution(samp), msgs, nil
	}
	var err error
	res := &Fig11Result{Options: o}
	if res.AdaptiveSampling, res.AdaptiveMsgs, err = run(false); err != nil {
		return nil, err
	}
	if res.ConstantSampling, res.ConstantMsgs, err = run(true); err != nil {
		return nil, err
	}
	return res, nil
}

// Render prints Fig. 11 rows.
func (r *Fig11Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 11 — adaptive vs constant fetching, %d nodes\n", r.Options.Nodes)
	tab := metrics.NewTable("strategy", "median ms", "P99 ms", "max ms", "on-time%", "msgs mean±std")
	deadline := r.Options.Core.Deadline
	tab.AddRow("adaptive",
		fmtMs(r.AdaptiveSampling.Median()), fmtMs(r.AdaptiveSampling.Percentile(99)), fmtMs(r.AdaptiveSampling.Max()),
		fmt.Sprintf("%.1f", 100*r.AdaptiveSampling.FractionWithin(deadline)),
		r.AdaptiveMsgs.MeanStd())
	tab.AddRow("constant(t=400ms,k=1)",
		fmtMs(r.ConstantSampling.Median()), fmtMs(r.ConstantSampling.Percentile(99)), fmtMs(r.ConstantSampling.Max()),
		fmt.Sprintf("%.1f", 100*r.ConstantSampling.FractionWithin(deadline)),
		r.ConstantMsgs.MeanStd())
	b.WriteString(tab.String())
	return b.String()
}

package experiments

import (
	"strings"
	"testing"
)

func TestChurnSweepSmallScale(t *testing.T) {
	res, err := Churn(TestOptions(), []float64{0, 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("points=%d", len(res.Points))
	}
	static, churned := res.Points[0], res.Points[1]
	if static.Events.Leaves+static.Events.Crashes+static.Events.Joins+static.Events.Restarts != 0 {
		t.Fatalf("rate 0 produced lifecycle events: %+v", static.Events)
	}
	if churned.Events.Leaves+churned.Events.Crashes == 0 {
		t.Fatal("rate 0.3 produced no departures")
	}
	if churned.Events.Restarts == 0 {
		t.Fatal("rate 0.3 produced no restarts despite MeanDowntime")
	}
	if static.DeadlineRate < 0.99 {
		t.Fatalf("static deadline rate %.2f", static.DeadlineRate)
	}
	if churned.DeadlineRate < 0.8 {
		t.Fatalf("eligible nodes under churn sampled at only %.2f", churned.DeadlineRate)
	}
	if churned.Eligible >= static.Eligible {
		t.Fatal("churn did not shrink the eligible denominator")
	}
	out := res.Render()
	for _, want := range []string{"Churn sweep", "0.00", "0.30", "on-time%"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

// TestChurnRateZeroMatchesFig15 is the acceptance regression guard: the
// churn sweep at rate 0 takes the unmodified static-membership path, so
// its numbers must MATCH the Fig. 15 dead-node sweep at fraction 0 —
// same cluster construction, same RNG stream, same outcomes.
func TestChurnRateZeroMatchesFig15(t *testing.T) {
	o := TestOptions()
	churn, err := Churn(o, []float64{0})
	if err != nil {
		t.Fatal(err)
	}
	fig15, err := Fig15(o, FaultDead, []float64{0})
	if err != nil {
		t.Fatal(err)
	}
	cp, fp := churn.Points[0], fig15.Points[0]
	if cp.DeadlineRate != fp.DeadlineRate {
		t.Fatalf("deadline rate diverged: churn %.4f vs fig15 %.4f", cp.DeadlineRate, fp.DeadlineRate)
	}
	if cp.Sampling.Median() != fp.Sampling.Median() {
		t.Fatalf("sampling median diverged: %v vs %v", cp.Sampling.Median(), fp.Sampling.Median())
	}
	if cp.Sampling.Percentile(99) != fp.Sampling.Percentile(99) {
		t.Fatalf("sampling P99 diverged: %v vs %v", cp.Sampling.Percentile(99), fp.Sampling.Percentile(99))
	}
}

package experiments

import (
	"fmt"
	"strings"
	"time"

	"pandas/internal/core"
	"pandas/internal/metrics"
)

// ValidationResult cross-validates the two simulation modes, mirroring
// the paper's §8.2 "Simulator validation" (prototype vs PeerSim): the
// metadata-cell mode (used for large scales) is compared against the
// full data plane (real payloads, erasure decoding, commitment
// verification) on identical deployments.
type ValidationResult struct {
	Options  Options
	Metadata PhaseTimes
	Real     PhaseTimes
	// MedianGap is |median_meta - median_real| / median_real for
	// time-to-sampling; small values validate the metadata shortcut.
	MedianGap float64
}

// Validate runs both modes at the same scale and compares distributions.
func Validate(o Options) (*ValidationResult, error) {
	o = o.withDefaults()
	run := func(real bool) (PhaseTimes, error) {
		c, err := newCluster(o, func(cc *core.ClusterConfig) {
			cc.Core.Policy = core.PolicyRedundant
			cc.Core.RealPayloads = real
		})
		if err != nil {
			return PhaseTimes{}, err
		}
		if real {
			data := make([]byte, o.Core.Blob.BlobBytes())
			for i := range data {
				data[i] = byte(i * 131)
			}
			if err := c.Builder().PrepareBlob(data); err != nil {
				return PhaseTimes{}, err
			}
		}
		outcomes, _, err := runSlots(c, o.Slots)
		if err != nil {
			return PhaseTimes{}, err
		}
		return phaseTimes(outcomes), nil
	}
	meta, err := run(false)
	if err != nil {
		return nil, fmt.Errorf("metadata mode: %w", err)
	}
	real, err := run(true)
	if err != nil {
		return nil, fmt.Errorf("real mode: %w", err)
	}
	res := &ValidationResult{Options: o, Metadata: meta, Real: real}
	mm, mr := meta.Sampling.Median(), real.Sampling.Median()
	if mr > 0 {
		gap := mm - mr
		if gap < 0 {
			gap = -gap
		}
		res.MedianGap = float64(gap) / float64(mr)
	}
	return res, nil
}

// Render prints the validation comparison.
func (r *ValidationResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Simulator validation — metadata vs real data plane, %d nodes\n", r.Options.Nodes)
	tab := metrics.NewTable("mode", "seed P99", "cons median", "sample median", "sample P99")
	row := func(name string, pt PhaseTimes) {
		tab.AddRow(name,
			fmtMs(pt.Seeding.Percentile(99)),
			fmtMs(pt.ConsFromStart.Median()),
			fmtMs(pt.Sampling.Median()),
			fmtMs(pt.Sampling.Percentile(99)))
	}
	row("metadata", r.Metadata)
	row("real", r.Real)
	b.WriteString(tab.String())
	fmt.Fprintf(&b, "sampling median gap: %.1f%%\n", 100*r.MedianGap)
	return b.String()
}

// phaseDurations is a helper for tests: extracts the sampling values.
func phaseDurations(d *metrics.Distribution) []time.Duration {
	pts := d.CDF(d.Count())
	out := make([]time.Duration, len(pts))
	for i, p := range pts {
		out[i] = p.Value
	}
	return out
}

// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 8). Each experiment has one entry point that runs
// the necessary simulations and returns structured results with a
// Render method producing the rows/series the paper reports.
//
// The experiments are scale-parameterized: `go test` exercises them at
// reduced size, while cmd/pandas-sim and cmd/pandas-exp run the paper's
// 1,000-20,000-node configurations.
package experiments

import (
	"fmt"
	"time"

	"pandas/internal/core"
	"pandas/internal/fetch"
	"pandas/internal/metrics"
	"pandas/internal/simnet"
)

// Options selects the scale and parameters of an experiment run.
type Options struct {
	// Nodes is the network size (paper: 1,000 for testbed figures).
	Nodes int
	// Slots is the number of seeding/consolidation/sampling cycles
	// aggregated (paper: 10).
	Slots int
	// Seed drives all randomness.
	Seed int64
	// Core holds protocol parameters; zero value selects DefaultConfig.
	Core core.Config
	// LossRate is the message loss probability in [0, 1). nil selects
	// the simulator default (3%); Loss(0) disables loss entirely. The
	// pointer removes the old ambiguity where the zero value conflated
	// "unset" with "lossless" and callers had to smuggle a negative
	// sentinel to get a lossless run. Negative rates clamp to 0.
	LossRate *float64
}

// Loss builds an Options.LossRate value: Loss(0.1) requests 10% loss,
// Loss(0) requests a lossless network. Leave the field nil for the
// simulator default.
func Loss(rate float64) *float64 { return &rate }

// withDefaults fills unset fields.
func (o Options) withDefaults() Options {
	if o.Nodes == 0 {
		o.Nodes = 1000
	}
	if o.Slots == 0 {
		o.Slots = 10
	}
	if o.Core.Blob.K == 0 {
		o.Core = core.DefaultConfig()
	}
	if o.LossRate == nil {
		o.LossRate = Loss(simnet.DefaultLossRate)
	} else if *o.LossRate < 0 {
		o.LossRate = Loss(0)
	}
	return o
}

// TestOptions returns a fast configuration for unit tests and examples.
func TestOptions() Options {
	return Options{Nodes: 120, Slots: 2, Seed: 7, Core: core.TestConfig()}
}

// PhaseTimes groups the per-phase distributions of Fig. 9.
type PhaseTimes struct {
	Seeding       *metrics.Distribution // Fig. 9a (from slot start)
	ConsFromSeed  *metrics.Distribution // Fig. 9b
	ConsFromStart *metrics.Distribution // Fig. 9c
	Sampling      *metrics.Distribution // Fig. 9d
}

// runSlots executes the cluster for o.Slots slots and pools outcomes.
func runSlots(c *core.Cluster, slots int) ([]core.NodeOutcome, []core.SeedingReport, error) {
	var outcomes []core.NodeOutcome
	var reports []core.SeedingReport
	for s := 1; s <= slots; s++ {
		res, err := c.RunSlot(uint64(s))
		if err != nil {
			return nil, nil, fmt.Errorf("slot %d: %w", s, err)
		}
		outcomes = append(outcomes, res.Outcomes...)
		reports = append(reports, res.Seeding)
	}
	return outcomes, reports, nil
}

func phaseTimes(outcomes []core.NodeOutcome) PhaseTimes {
	var seed, cfs, cons, samp []time.Duration
	for _, o := range outcomes {
		if o.Dead {
			continue
		}
		seed = append(seed, o.Seed)
		cfs = append(cfs, o.ConsFromSeed)
		cons = append(cons, o.Consolidation)
		samp = append(samp, o.Sampling)
	}
	return PhaseTimes{
		Seeding:       metrics.NewDistribution(seed),
		ConsFromSeed:  metrics.NewDistribution(cfs),
		ConsFromStart: metrics.NewDistribution(cons),
		Sampling:      metrics.NewDistribution(samp),
	}
}

// newCluster builds a PANDAS cluster for the options.
func newCluster(o Options, mutate func(*core.ClusterConfig)) (*core.Cluster, error) {
	cc := core.ClusterConfig{
		Core:     o.Core,
		N:        o.Nodes,
		Seed:     o.Seed,
		LossRate: *o.LossRate,
	}
	if mutate != nil {
		mutate(&cc)
	}
	return core.NewCluster(cc)
}

func fmtMs(d time.Duration) string {
	if d < 0 {
		return "-"
	}
	return fmt.Sprintf("%d", d.Milliseconds())
}

// constantSchedule is the Fig. 11 baseline: fixed timeout, redundancy 1.
func constantSchedule() fetch.Schedule {
	return fetch.ConstantSchedule(400*time.Millisecond, 1)
}

package experiments

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"pandas/internal/adversary"
	"pandas/internal/blob"
	"pandas/internal/core"
	"pandas/internal/metrics"
)

// WithholdingPoint is one row of the withholding-detection table: the
// sampling miss rate at one sample count, measured three ways.
type WithholdingPoint struct {
	Samples int
	// Analytic is the hypergeometric false-positive upper bound.
	Analytic float64
	// MonteCarlo is confidence.go's idealized Monte Carlo miss rate
	// (independent uniform draws against the withheld set, no network).
	MonteCarlo float64
	// Cluster is the miss rate of real protocol runs under a maximally
	// withholding builder: the fraction of live node-slots whose sampling
	// completed even though the data is unrecoverable.
	Cluster float64
	// Trials is the number of node-slots behind Cluster.
	Trials int
}

// WithinCI reports whether the cluster and Monte Carlo miss rates agree
// within z combined binomial standard errors (plus a small absolute
// floor for the zero-miss regime, where both estimators degenerate).
func (p WithholdingPoint) WithinCI(mcTrials int, z float64) bool {
	se := func(rate float64, n int) float64 {
		if n == 0 {
			return 0
		}
		return math.Sqrt(rate * (1 - rate) / float64(n))
	}
	tol := z*math.Hypot(se(p.Cluster, p.Trials), se(p.MonteCarlo, mcTrials)) + 0.01
	return math.Abs(p.Cluster-p.MonteCarlo) <= tol
}

// WithholdingResult holds the sampling-detection validation: protocol
// runs against the analysis they are supposed to realize.
type WithholdingResult struct {
	Options  Options
	N        int // extended matrix width
	MCTrials int
	Points   []WithholdingPoint
}

// Withholding measures the end-to-end sampling miss rate against a
// maximally withholding builder (the (n/2+1)^2 square of Fig. 3-right)
// as a function of the per-node sample count, and sets it against the
// analytic bound and the idealized Monte Carlo of the Section 3
// analysis. A "miss" is a node that found all its samples and so would
// attest to an unavailable block; the paper's 73 samples push this below
// 1e-9. sampleCounts nil selects a sweep scaled to the geometry;
// mcTrials <= 0 selects 20,000.
func Withholding(o Options, sampleCounts []int, mcTrials int) (*WithholdingResult, error) {
	o = o.withDefaults()
	n := o.Core.Blob.N()
	if len(sampleCounts) == 0 {
		sampleCounts = defaultSampleSweep(o.Core.Samples)
	}
	if mcTrials <= 0 {
		mcTrials = 20000
	}
	mc := Confidence(n, sampleCounts, mcTrials, o.Seed)
	res := &WithholdingResult{Options: o, N: n, MCTrials: mcTrials}
	for i, s := range sampleCounts {
		s := s
		c, err := newCluster(o, func(cc *core.ClusterConfig) {
			cc.Core.Samples = s
			cc.Adversary = &adversary.Config{
				Builder: adversary.BuilderAttack{Withholding: adversary.WithholdMaximal},
			}
		})
		if err != nil {
			return nil, err
		}
		outcomes, _, err := runSlots(c, o.Slots)
		if err != nil {
			return nil, err
		}
		trials, misses := 0, 0
		for _, out := range outcomes {
			if out.Dead || out.Offline {
				continue
			}
			trials++
			if out.Sampling >= 0 {
				misses++
			}
		}
		point := WithholdingPoint{
			Samples:    s,
			Analytic:   blob.FalsePositiveBound(n, s),
			MonteCarlo: mc.Points[i].Empirical,
			Trials:     trials,
		}
		if trials > 0 {
			point.Cluster = float64(misses) / float64(trials)
		}
		res.Points = append(res.Points, point)
	}
	return res, nil
}

// defaultSampleSweep returns doubling sample counts up to the configured
// per-node count, always ending at the configured count itself.
func defaultSampleSweep(samples int) []int {
	counts := []int{1, 2, 4, 8, 16, 32}
	var out []int
	for _, c := range counts {
		if c < samples {
			out = append(out, c)
		}
	}
	out = append(out, samples)
	sort.Ints(out)
	return out
}

// Render prints the withholding-detection table.
func (r *WithholdingResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Withholding detection — maximal pattern (%d of %d cells withheld), %d nodes x %d slots, %d MC trials\n",
		blob.WithheldCells(r.N), r.N*r.N, r.Options.Nodes, r.Options.Slots, r.MCTrials)
	tab := metrics.NewTable("samples", "analytic bound", "monte carlo", "cluster miss", "node-slots")
	for _, p := range r.Points {
		tab.AddRow(fmt.Sprintf("%d", p.Samples),
			fmt.Sprintf("%.3g", p.Analytic),
			fmt.Sprintf("%.3g", p.MonteCarlo),
			fmt.Sprintf("%.3g", p.Cluster),
			fmt.Sprintf("%d", p.Trials))
	}
	b.WriteString(tab.String())
	return b.String()
}

// ByzantinePoint is one sweep point of the byzantine-tolerance table.
type ByzantinePoint struct {
	Fraction     float64
	DeadlineRate float64 // honest live nodes sampling within the deadline
	Sampling     *metrics.Distribution
	// CorruptRejects counts cells honest nodes rejected for failed
	// verification (garbage behavior only).
	CorruptRejects int
}

// ByzantineResult holds a byzantine-fraction sweep for one behavior.
type ByzantineResult struct {
	Options  Options
	Behavior adversary.Behavior
	Points   []ByzantinePoint
}

// Byzantine sweeps the fraction of nodes exhibiting one byzantine
// behavior and measures the sampling-deadline success of the honest
// remainder. The paper's robustness claim is that redundancy in the
// adaptive fetcher (parallel in-flight queries, liveness demotion)
// absorbs non-responding or lying peers; this quantifies how far that
// holds. fractions nil selects 0-40% in 10% steps.
func Byzantine(o Options, behavior adversary.Behavior, fractions []float64) (*ByzantineResult, error) {
	o = o.withDefaults()
	if len(fractions) == 0 {
		fractions = []float64{0, 0.1, 0.2, 0.3, 0.4}
	}
	res := &ByzantineResult{Options: o, Behavior: behavior}
	for _, frac := range fractions {
		frac := frac
		adv := &adversary.Config{}
		switch behavior {
		case adversary.Silent:
			adv.SilentFraction = frac
		case adversary.Laggard:
			adv.LaggardFraction = frac
		case adversary.Garbage:
			adv.GarbageFraction = frac
		default:
			return nil, fmt.Errorf("byzantine sweep: unsupported behavior %v", behavior)
		}
		c, err := newCluster(o, func(cc *core.ClusterConfig) {
			cc.Adversary = adv
		})
		if err != nil {
			return nil, err
		}
		behaviors := c.Behaviors()
		outcomes, _, err := runSlots(c, o.Slots)
		if err != nil {
			return nil, err
		}
		var samp []time.Duration
		honest, onTime := 0, 0
		for idx, out := range outcomes {
			if behaviors[idx%o.Nodes] != adversary.Honest || out.Dead || out.Offline {
				continue
			}
			honest++
			samp = append(samp, out.Sampling)
			if out.Sampling >= 0 && out.Sampling <= o.Core.Deadline {
				onTime++
			}
		}
		point := ByzantinePoint{
			Fraction: frac,
			Sampling: metrics.NewDistribution(samp),
		}
		if honest > 0 {
			point.DeadlineRate = float64(onTime) / float64(honest)
		}
		for _, node := range c.Nodes() {
			point.CorruptRejects += node.Metrics().CorruptRejects
		}
		res.Points = append(res.Points, point)
	}
	return res, nil
}

// Render prints the byzantine sweep table.
func (r *ByzantineResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Byzantine tolerance — %s nodes sweep, %d nodes x %d slots, %v deadline\n",
		r.Behavior, r.Options.Nodes, r.Options.Slots, r.Options.Core.Deadline)
	tab := metrics.NewTable("byzantine", "deadline met", "sample median", "sample P99", "corrupt rejects")
	for _, p := range r.Points {
		tab.AddRow(fmt.Sprintf("%.0f%%", p.Fraction*100),
			fmt.Sprintf("%.1f%%", 100*p.DeadlineRate),
			fmtMs(p.Sampling.Median()), fmtMs(p.Sampling.Percentile(99)),
			fmt.Sprintf("%d", p.CorruptRejects))
	}
	b.WriteString(tab.String())
	return b.String()
}

// AdversaryResult bundles the two security tables pandas-sim's adversary
// experiment prints.
type AdversaryResult struct {
	Withholding *WithholdingResult
	Byzantine   *ByzantineResult
}

// Adversary runs both security experiments: withholding detection vs the
// sampling analysis, and the byzantine-fraction sweep.
func Adversary(o Options, behavior adversary.Behavior, fractions []float64, mcTrials int) (*AdversaryResult, error) {
	w, err := Withholding(o, nil, mcTrials)
	if err != nil {
		return nil, err
	}
	bz, err := Byzantine(o, behavior, fractions)
	if err != nil {
		return nil, err
	}
	return &AdversaryResult{Withholding: w, Byzantine: bz}, nil
}

// Render prints both tables.
func (r *AdversaryResult) Render() string {
	return r.Withholding.Render() + "\n" + r.Byzantine.Render()
}

package experiments

import (
	"strings"
	"testing"

	"pandas/internal/core"
)

func TestScaleSweep(t *testing.T) {
	o := TestOptions()
	o.Slots = 1
	res, err := Scale(o, []int{60, 120})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("points = %d", len(res.Points))
	}
	for _, p := range res.Points {
		if p.Events == 0 {
			t.Fatalf("N=%d: no events executed", p.Nodes)
		}
		if p.EventsPerSec <= 0 {
			t.Fatalf("N=%d: events/sec = %v", p.Nodes, p.EventsPerSec)
		}
		if p.DeadlineRate <= 0 {
			t.Fatalf("N=%d: no node sampled on time", p.Nodes)
		}
	}
	// More nodes means more work.
	if res.Points[1].Events <= res.Points[0].Events {
		t.Fatalf("events did not grow with N: %d vs %d", res.Points[0].Events, res.Points[1].Events)
	}
	out := res.Render()
	if !strings.Contains(out, "bytes/node") || !strings.Contains(out, "events/sec") {
		t.Fatalf("render missing columns:\n%s", out)
	}
}

// BenchmarkSimnetScale100k is the scripts/bench.sh capacity gate: one
// full metadata-mode slot at 100,000 nodes, reporting resident
// bytes/node and engine events/sec (run with -benchtime=1x).
func BenchmarkSimnetScale100k(b *testing.B) {
	o := Options{Nodes: 100_000, Slots: 1, Seed: 1, Core: core.TestConfig()}
	for i := 0; i < b.N; i++ {
		res, err := Scale(o, []int{o.Nodes})
		if err != nil {
			b.Fatal(err)
		}
		p := res.Points[0]
		if p.DeadlineRate < 0.9 {
			b.Fatalf("100k-node run missed the sampling deadline: on-time %.1f%%", 100*p.DeadlineRate)
		}
		b.ReportMetric(p.BytesPerNode, "bytes/node")
		b.ReportMetric(p.EventsPerSec, "events/sec")
	}
}

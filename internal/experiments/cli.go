package experiments

// Shared command-line parsing for the experiment runners. The old CLIs
// had three hand-rolled list parsers with inconsistent error handling —
// sizes and fractions silently dropped malformed entries while churn
// rates errored — so a typo like "-sizes 1000,2k" ran the sweep on half
// the intended points without a word. These parsers reject every
// malformed or out-of-range entry.

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseIntList parses a comma-separated list of positive integers.
// Empty input yields nil (callers substitute their defaults); any
// malformed or non-positive entry is an error naming the flag.
func ParseIntList(flagName, s string) ([]int, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		v, err := strconv.Atoi(part)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("%s: %q is not a positive integer", flagName, part)
		}
		out = append(out, v)
	}
	return out, nil
}

// ParseFloatList parses a comma-separated list of floats in [min, max).
// Empty input yields nil; any malformed or out-of-range entry is an
// error naming the flag.
func ParseFloatList(flagName, s string, min, max float64) ([]float64, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []float64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		v, err := strconv.ParseFloat(part, 64)
		if err != nil || v < min || v >= max {
			return nil, fmt.Errorf("%s: %q is not a number in [%v, %v)", flagName, part, min, max)
		}
		out = append(out, v)
	}
	return out, nil
}

// intListValue adapts ParseIntList to flag.Value.
type intListValue struct {
	name string
	dst  *[]int
}

func (v *intListValue) String() string {
	if v == nil || v.dst == nil {
		return ""
	}
	parts := make([]string, len(*v.dst))
	for i, x := range *v.dst {
		parts[i] = strconv.Itoa(x)
	}
	return strings.Join(parts, ",")
}

func (v *intListValue) Set(s string) error {
	xs, err := ParseIntList(v.name, s)
	if err != nil {
		return err
	}
	*v.dst = xs
	return nil
}

// floatListValue adapts ParseFloatList to flag.Value.
type floatListValue struct {
	name     string
	dst      *[]float64
	min, max float64
}

func (v *floatListValue) String() string {
	if v == nil || v.dst == nil {
		return ""
	}
	parts := make([]string, len(*v.dst))
	for i, x := range *v.dst {
		parts[i] = strconv.FormatFloat(x, 'g', -1, 64)
	}
	return strings.Join(parts, ",")
}

func (v *floatListValue) Set(s string) error {
	xs, err := ParseFloatList(v.name, s, v.min, v.max)
	if err != nil {
		return err
	}
	*v.dst = xs
	return nil
}

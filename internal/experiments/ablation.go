package experiments

import (
	"fmt"
	"strings"
	"time"

	"pandas/internal/core"
	"pandas/internal/metrics"
)

// AblationPoint is one redundancy setting of the builder ablation.
type AblationPoint struct {
	Redundancy   int
	BuilderBytes *metrics.Scalar // bytes sent by the builder per slot
	Sampling     *metrics.Distribution
	FetchMsgs    *metrics.Scalar
	DeadlineRate float64
}

// AblationResult sweeps the builder's seeding redundancy r — the design
// knob the paper's §9 "adaptive policies" discussion calls out. It
// quantifies the trade the builder faces: more copies cost outbound
// bandwidth but cut consolidation retries and tail latency.
type AblationResult struct {
	Options Options
	Points  []AblationPoint
}

// Ablation runs the redundancy sweep (default r = 1, 2, 4, 8, 16).
func Ablation(o Options, redundancies []int) (*AblationResult, error) {
	o = o.withDefaults()
	if len(redundancies) == 0 {
		redundancies = []int{1, 2, 4, 8, 16}
	}
	res := &AblationResult{Options: o}
	for _, r := range redundancies {
		r := r
		c, err := newCluster(o, func(cc *core.ClusterConfig) {
			cc.Core.Policy = core.PolicyRedundant
			cc.Core.Redundancy = r
		})
		if err != nil {
			return nil, err
		}
		var samp []time.Duration
		builderBytes := metrics.NewScalar(nil)
		msgs := metrics.NewScalar(nil)
		live, onTime := 0, 0
		for s := 1; s <= o.Slots; s++ {
			sr, err := c.RunSlot(uint64(s))
			if err != nil {
				return nil, err
			}
			builderBytes.Add(float64(sr.Seeding.Bytes))
			for _, out := range sr.Outcomes {
				if out.Dead {
					continue
				}
				live++
				samp = append(samp, out.Sampling)
				msgs.Add(float64(out.FetchMsgs))
				if out.Sampling >= 0 && out.Sampling <= o.Core.Deadline {
					onTime++
				}
			}
		}
		point := AblationPoint{
			Redundancy:   r,
			BuilderBytes: builderBytes,
			Sampling:     metrics.NewDistribution(samp),
			FetchMsgs:    msgs,
		}
		if live > 0 {
			point.DeadlineRate = float64(onTime) / float64(live)
		}
		res.Points = append(res.Points, point)
	}
	return res, nil
}

// Render prints the ablation table.
func (r *AblationResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation — builder seeding redundancy, %d nodes\n", r.Options.Nodes)
	tab := metrics.NewTable("r", "builder MB/slot", "sample median", "sample P99", "on-time%", "fetch msgs mean")
	for _, p := range r.Points {
		tab.AddRow(fmt.Sprintf("%d", p.Redundancy),
			fmt.Sprintf("%.1f", p.BuilderBytes.Mean()/1e6),
			fmtMs(p.Sampling.Median()), fmtMs(p.Sampling.Percentile(99)),
			fmt.Sprintf("%.1f", 100*p.DeadlineRate),
			fmt.Sprintf("%.0f", p.FetchMsgs.Mean()))
	}
	b.WriteString(tab.String())
	return b.String()
}

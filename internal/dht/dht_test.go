package dht

import (
	"crypto/sha256"
	"testing"
	"time"

	"pandas/internal/ids"
	"pandas/internal/simnet"
)

func TestRoutingTableAddAndClosest(t *testing.T) {
	self := ids.NewTestIdentity(0).ID
	rt := NewRoutingTable(self)
	if rt.Add(Entry{ID: self, Addr: 0}) {
		t.Fatal("added self")
	}
	var entries []Entry
	for i := 1; i <= 50; i++ {
		e := Entry{ID: ids.NewTestIdentity(int64(i)).ID, Addr: i}
		entries = append(entries, e)
		rt.Add(e)
	}
	if rt.Size() == 0 {
		t.Fatal("table empty after adds")
	}
	if rt.Add(entries[0]) {
		t.Fatal("duplicate add accepted")
	}
	target := ids.NewTestIdentity(99).ID
	closest := rt.Closest(target, 5)
	if len(closest) != 5 {
		t.Fatalf("Closest returned %d", len(closest))
	}
	for i := 1; i < len(closest); i++ {
		if closest[i].ID.XOR(target).Less(closest[i-1].ID.XOR(target)) {
			t.Fatal("Closest not sorted by distance")
		}
	}
}

func TestBucketCapacity(t *testing.T) {
	// Flood one distance range; the bucket must cap at K.
	var self ids.NodeID
	rt := NewRoutingTable(self)
	added := 0
	for i := 0; i < 100; i++ {
		// IDs starting with 0x80 all share bucket 0 relative to zero self.
		var id ids.NodeID
		id[0] = 0x80
		id[31] = byte(i)
		id[30] = byte(i >> 4)
		if rt.Add(Entry{ID: id, Addr: i}) {
			added++
		}
	}
	if added != K {
		t.Fatalf("bucket accepted %d entries, want %d", added, K)
	}
}

// cluster wires n DHT peers over the simulator.
type cluster struct {
	net   *simnet.Network
	peers []*Peer
}

type simTransport struct {
	net  *simnet.Network
	self int
}

func (s simTransport) Self() int                        { return s.self }
func (s simTransport) Send(to, size int, payload any)   { s.net.Send(s.self, to, size, payload) }
func (s simTransport) After(d time.Duration, fn func()) { s.net.After(d, fn) }
func (s simTransport) Now() time.Duration               { return s.net.Now() }

func newCluster(t *testing.T, n int, loss float64) *cluster {
	t.Helper()
	net, err := simnet.New(simnet.Config{
		Latency:  simnet.ConstantLatency(10 * time.Millisecond),
		LossRate: loss,
		Seed:     7,
	})
	if err != nil {
		t.Fatal(err)
	}
	c := &cluster{net: net}
	entries := make([]Entry, n)
	for i := 0; i < n; i++ {
		entries[i] = Entry{ID: ids.NewTestIdentity(int64(i)).ID, Addr: i}
	}
	for i := 0; i < n; i++ {
		i := i
		idx := net.AddNode(func(from, size int, payload any) {
			c.peers[i].HandleMessage(from, payload)
		}, 0, 0)
		if idx != i {
			t.Fatalf("node index mismatch")
		}
		p := NewPeer(entries[i], simTransport{net: net, self: i}, 0)
		p.Bootstrap(entries)
		c.peers = append(c.peers, p)
	}
	return c
}

func TestLookupFindsClosestNodes(t *testing.T) {
	c := newCluster(t, 60, 0)
	target := ids.NewTestIdentity(1234).ID
	var got []Entry
	c.peers[0].Lookup(target, func(closest []Entry) { got = closest })
	c.net.Run(30 * time.Second)
	if got == nil {
		t.Fatal("lookup never finished")
	}
	if len(got) == 0 {
		t.Fatal("lookup returned nothing")
	}
	// The first result must be the globally closest node.
	bestDist := got[0].ID.XOR(target)
	for i := 0; i < 60; i++ {
		d := ids.NewTestIdentity(int64(i)).ID.XOR(target)
		if d.Less(bestDist) {
			t.Fatalf("lookup missed closer node %d", i)
		}
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	c := newCluster(t, 60, 0)
	key := ids.NodeID(sha256.Sum256([]byte("parcel-0")))
	stored := -1
	c.peers[0].Put(key, 1000, "parcel-data", func(n int) { stored = n })
	c.net.Run(30 * time.Second)
	if stored < Replication/2 {
		t.Fatalf("stored at %d peers, want >= %d", stored, Replication/2)
	}
	// A different node retrieves it.
	var got GetResp
	found := false
	missed := false
	c.peers[42].Get(key, func(r GetResp) { got = r; found = true }, func() { missed = true })
	c.net.Run(60 * time.Second)
	if missed || !found {
		t.Fatalf("Get failed: found=%v missed=%v", found, missed)
	}
	if got.Value.(string) != "parcel-data" || got.ValueSize != 1000 {
		t.Fatalf("got %+v", got)
	}
}

func TestGetMissingKey(t *testing.T) {
	c := newCluster(t, 30, 0)
	missed := false
	c.peers[3].Get(ids.NodeID(sha256.Sum256([]byte("nope"))), func(GetResp) {
		t.Error("found a value that was never stored")
	}, func() { missed = true })
	c.net.Run(60 * time.Second)
	if !missed {
		t.Fatal("onMiss never invoked")
	}
}

func TestLookupSurvivesLoss(t *testing.T) {
	c := newCluster(t, 60, 0.1)
	target := ids.NewTestIdentity(777).ID
	finished := false
	c.peers[5].Lookup(target, func([]Entry) { finished = true })
	c.net.Run(60 * time.Second)
	if !finished {
		t.Fatal("lookup stalled under 10% loss")
	}
	if c.peers[5].Stats.RPCsSent == 0 {
		t.Fatal("no RPCs sent")
	}
}

func TestPutGetUnderLoss(t *testing.T) {
	c := newCluster(t, 80, 0.05)
	key := ids.NodeID(sha256.Sum256([]byte("lossy-parcel")))
	done := false
	c.peers[0].Put(key, 500, "v", func(int) { done = true })
	c.net.Run(60 * time.Second)
	if !done {
		t.Fatal("put never completed")
	}
	found, missed := false, false
	c.peers[50].Get(key, func(GetResp) { found = true }, func() { missed = true })
	c.net.Run(120 * time.Second)
	if !found && !missed {
		t.Fatal("get never concluded")
	}
	// With 8-way replication and 5% loss the value should be found.
	if !found {
		t.Fatal("value lost despite replication")
	}
}

func TestHandleMessageIgnoresUnknownPayload(t *testing.T) {
	c := newCluster(t, 5, 0)
	if c.peers[0].HandleMessage(1, "not-a-dht-message") {
		t.Fatal("unknown payload claimed as DHT message")
	}
}

func TestStoredValue(t *testing.T) {
	c := newCluster(t, 5, 0)
	key := ids.NodeID{1}
	if _, ok := c.peers[0].StoredValue(key); ok {
		t.Fatal("value present before store")
	}
	c.peers[0].HandleMessage(1, StoreReq{ReqID: 1, Key: key, ValueSize: 10, Value: "x"})
	v, ok := c.peers[0].StoredValue(key)
	if !ok || v.(string) != "x" {
		t.Fatal("stored value not retrievable")
	}
}

func TestLookupMultiHop(t *testing.T) {
	// With 300 nodes and K=16 initial entries... every peer bootstraps
	// with the full list here, so instead verify that lookups complete
	// with bounded RPC counts (not contacting the whole network).
	c := newCluster(t, 300, 0)
	target := ids.NewTestIdentity(9999).ID
	done := false
	c.peers[7].Lookup(target, func([]Entry) { done = true })
	c.net.Run(60 * time.Second)
	if !done {
		t.Fatal("lookup did not finish")
	}
	sent := c.peers[7].Stats.RPCsSent
	if sent == 0 || sent > 100 {
		t.Fatalf("lookup used %d RPCs, want 1..100", sent)
	}
}

func BenchmarkRoutingTableAdd(b *testing.B) {
	rt := NewRoutingTable(ids.NewTestIdentity(0).ID)
	entries := make([]Entry, 1000)
	for i := range entries {
		entries[i] = Entry{ID: ids.NewTestIdentity(int64(i + 1)).ID, Addr: i}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rt.Add(entries[i%1000])
	}
}

func BenchmarkClosest(b *testing.B) {
	rt := NewRoutingTable(ids.NewTestIdentity(0).ID)
	for i := 1; i <= 1000; i++ {
		rt.Add(Entry{ID: ids.NewTestIdentity(int64(i)).ID, Addr: i})
	}
	target := ids.NewTestIdentity(5000).ID
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rt.Closest(target, K)
	}
}

func TestCrawlDiscoversNetwork(t *testing.T) {
	// Bootstrap peers with only a handful of contacts; crawling must
	// discover a large fraction of the network, as ENR crawls do.
	const n = 120
	net, err := simnet.New(simnet.Config{
		Latency: simnet.ConstantLatency(5 * time.Millisecond),
		Seed:    3,
	})
	if err != nil {
		t.Fatal(err)
	}
	entries := make([]Entry, n)
	for i := 0; i < n; i++ {
		entries[i] = Entry{ID: ids.NewTestIdentity(int64(i)).ID, Addr: i}
	}
	peers := make([]*Peer, n)
	for i := 0; i < n; i++ {
		i := i
		net.AddNode(func(from, size int, payload any) {
			peers[i].HandleMessage(from, payload)
		}, 0, 0)
		peers[i] = NewPeer(entries[i], simTransport{net: net, self: i}, 0)
		// Sparse bootstrap: each peer knows only ~8 contacts.
		for j := 1; j <= 8; j++ {
			peers[i].Bootstrap([]Entry{entries[(i+j*13)%n]})
		}
	}
	var view []Entry
	peers[0].Crawl(12, 7, func(found []Entry) { view = found })
	net.Run(2 * time.Minute)
	if view == nil {
		t.Fatal("crawl never finished")
	}
	if frac := float64(len(view)) / n; frac < 0.5 {
		t.Fatalf("crawl discovered only %.0f%% of the network", frac*100)
	}
	// Discovered entries must be genuine network members.
	valid := map[ids.NodeID]bool{}
	for _, e := range entries {
		valid[e.ID] = true
	}
	for _, e := range view {
		if !valid[e.ID] {
			t.Fatalf("crawl fabricated entry %v", e.ID)
		}
	}
}

func TestCrawlSingleFanout(t *testing.T) {
	c := newCluster(t, 30, 0)
	var view []Entry
	c.peers[0].Crawl(0, 1, func(found []Entry) { view = found }) // clamps to 1
	c.net.Run(time.Minute)
	if len(view) == 0 {
		t.Fatal("single-fanout crawl found nothing")
	}
}

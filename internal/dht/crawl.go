package dht

import (
	"crypto/sha256"
	"encoding/binary"

	"pandas/internal/ids"
)

// Crawl enumerates the network by issuing FIND_NODE lookups toward a set
// of random targets, accumulating every entry seen in the responses —
// the mechanism Ethereum nodes use to build their views of the network
// (the paper's §4.1: "views are filled by periodically crawling the
// DHT", taking about a minute in practice).
//
// fanout controls how many random-target lookups are issued; done
// receives the accumulated entries once every lookup concludes. More
// fanout discovers more of the network: with k-bucket routing each
// lookup surfaces O(K log N) entries around its target, so covering an
// N-node network needs roughly N/K targets.
func (p *Peer) Crawl(fanout int, seed int64, done func([]Entry)) {
	if fanout < 1 {
		fanout = 1
	}
	found := make(map[ids.NodeID]Entry)
	remaining := fanout
	finish := func(closest []Entry) {
		for _, e := range closest {
			found[e.ID] = e
		}
		remaining--
		if remaining > 0 {
			return
		}
		// Also include everything the lookups taught the routing table.
		for _, e := range p.rt.Closest(p.self.ID, p.rt.Size()) {
			found[e.ID] = e
		}
		out := make([]Entry, 0, len(found))
		for _, e := range found {
			out = append(out, e)
		}
		SortByDistance(out, p.self.ID)
		done(out)
	}
	for i := 0; i < fanout; i++ {
		p.Lookup(crawlTarget(seed, i), finish)
	}
}

// crawlTarget derives the i-th pseudo-random crawl target.
func crawlTarget(seed int64, i int) ids.NodeID {
	var buf [16]byte
	binary.BigEndian.PutUint64(buf[:8], uint64(seed))
	binary.BigEndian.PutUint64(buf[8:], uint64(i))
	return sha256.Sum256(buf[:])
}

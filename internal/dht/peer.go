package dht

import (
	"time"

	"pandas/internal/ids"
)

// RPC wire sizes (bytes, including IP/UDP overhead of 28).
const (
	findNodeReqSize = 28 + 8 + ids.IDSize
	storeRespSize   = 28 + 8 + 1
	rpcEntrySize    = ids.IDSize + 6 // ID + packed address
	rpcHeaderSize   = 28 + 8
	// DefaultRPCTimeout is how long a lookup waits for one peer before
	// writing it off.
	DefaultRPCTimeout = 300 * time.Millisecond
)

// Transport abstracts the message substrate (the simulator in practice).
type Transport interface {
	// Self returns this node's transport address.
	Self() int
	// Send transmits payload (of the given wire size) to a peer address.
	Send(to int, size int, payload any)
	// After schedules a callback after a virtual-time delay.
	After(d time.Duration, fn func())
	// Now returns the current virtual time.
	Now() time.Duration
}

// Request/response payloads exchanged between peers.
type (
	// FindNodeReq asks for the peer's closest entries to Target.
	FindNodeReq struct {
		ReqID  uint64
		Target ids.NodeID
	}
	// FindNodeResp returns up to K closest entries.
	FindNodeResp struct {
		ReqID   uint64
		Closest []Entry
	}
	// StoreReq stores a value (metadata: key + size) at the peer.
	StoreReq struct {
		ReqID     uint64
		Key       ids.NodeID
		ValueSize int
		Value     any
	}
	// StoreResp acknowledges a store.
	StoreResp struct {
		ReqID uint64
	}
	// GetReq is Kademlia FIND_VALUE: returns the value if the peer has
	// it, otherwise its closest entries to the key.
	GetReq struct {
		ReqID uint64
		Key   ids.NodeID
	}
	// GetResp carries the value or a closest-set.
	GetResp struct {
		ReqID     uint64
		Found     bool
		ValueSize int
		Value     any
		Closest   []Entry
	}
)

type storedValue struct {
	size  int
	value any
}

type pendingReq struct {
	onFindNode func(FindNodeResp, bool)
	onStore    func(bool)
	onGet      func(GetResp, bool)
}

// Peer is one node's DHT endpoint: routing table, local value store, and
// in-flight request bookkeeping. It is single-threaded: all calls must
// come from the simulator's event loop.
type Peer struct {
	self    Entry
	rt      *RoutingTable
	tr      Transport
	store   map[ids.NodeID]storedValue
	pending map[uint64]*pendingReq
	nextReq uint64
	timeout time.Duration

	// Stats counts RPCs for the baseline's message accounting.
	Stats Stats
}

// Stats counts DHT traffic at one peer.
type Stats struct {
	RPCsSent     int
	RPCsReceived int
	Timeouts     int
}

// NewPeer creates a DHT endpoint for a node.
func NewPeer(self Entry, tr Transport, timeout time.Duration) *Peer {
	if timeout <= 0 {
		timeout = DefaultRPCTimeout
	}
	return &Peer{
		self:    self,
		rt:      NewRoutingTable(self.ID),
		tr:      tr,
		store:   make(map[ids.NodeID]storedValue),
		pending: make(map[uint64]*pendingReq),
		timeout: timeout,
	}
}

// Table exposes the routing table (for bootstrap).
func (p *Peer) Table() *RoutingTable { return p.rt }

// Bootstrap seeds the routing table from known entries.
func (p *Peer) Bootstrap(entries []Entry) {
	for _, e := range entries {
		p.rt.Add(e)
	}
}

// StoredValue returns a locally stored value.
func (p *Peer) StoredValue(key ids.NodeID) (any, bool) {
	v, ok := p.store[key]
	return v.value, ok
}

// HandleMessage processes an incoming DHT payload. Unknown payloads are
// ignored (the caller may multiplex other protocols on the same node).
// It reports whether the payload was a DHT message.
func (p *Peer) HandleMessage(from int, payload any) bool {
	switch m := payload.(type) {
	case FindNodeReq:
		p.Stats.RPCsReceived++
		closest := p.rt.Closest(m.Target, K)
		resp := FindNodeResp{ReqID: m.ReqID, Closest: closest}
		p.tr.Send(from, rpcHeaderSize+len(closest)*rpcEntrySize, resp)
	case FindNodeResp:
		if req, ok := p.pending[m.ReqID]; ok && req.onFindNode != nil {
			delete(p.pending, m.ReqID)
			req.onFindNode(m, true)
		}
	case StoreReq:
		p.Stats.RPCsReceived++
		p.store[m.Key] = storedValue{size: m.ValueSize, value: m.Value}
		p.tr.Send(from, storeRespSize, StoreResp{ReqID: m.ReqID})
	case StoreResp:
		if req, ok := p.pending[m.ReqID]; ok && req.onStore != nil {
			delete(p.pending, m.ReqID)
			req.onStore(true)
		}
	case GetReq:
		p.Stats.RPCsReceived++
		if v, ok := p.store[m.Key]; ok {
			p.tr.Send(from, rpcHeaderSize+1+v.size, GetResp{ReqID: m.ReqID, Found: true, ValueSize: v.size, Value: v.value})
		} else {
			closest := p.rt.Closest(m.Key, K)
			p.tr.Send(from, rpcHeaderSize+1+len(closest)*rpcEntrySize, GetResp{ReqID: m.ReqID, Closest: closest})
		}
	case GetResp:
		if req, ok := p.pending[m.ReqID]; ok && req.onGet != nil {
			delete(p.pending, m.ReqID)
			req.onGet(m, true)
		}
	default:
		return false
	}
	return true
}

// findNode issues a FIND_NODE RPC with a timeout.
func (p *Peer) findNode(to Entry, target ids.NodeID, cb func(FindNodeResp, bool)) {
	p.nextReq++
	id := p.nextReq
	p.pending[id] = &pendingReq{onFindNode: cb}
	p.Stats.RPCsSent++
	p.tr.Send(to.Addr, findNodeReqSize, FindNodeReq{ReqID: id, Target: target})
	p.tr.After(p.timeout, func() {
		if req, ok := p.pending[id]; ok && req.onFindNode != nil {
			delete(p.pending, id)
			p.Stats.Timeouts++
			cb(FindNodeResp{}, false)
		}
	})
}

// storeAt issues a STORE RPC with a timeout.
func (p *Peer) storeAt(to Entry, key ids.NodeID, size int, value any, cb func(bool)) {
	p.nextReq++
	id := p.nextReq
	p.pending[id] = &pendingReq{onStore: cb}
	p.Stats.RPCsSent++
	p.tr.Send(to.Addr, rpcHeaderSize+ids.IDSize+size, StoreReq{ReqID: id, Key: key, ValueSize: size, Value: value})
	p.tr.After(p.timeout, func() {
		if req, ok := p.pending[id]; ok && req.onStore != nil {
			delete(p.pending, id)
			p.Stats.Timeouts++
			cb(false)
		}
	})
}

// getFrom issues a FIND_VALUE RPC with a timeout.
func (p *Peer) getFrom(to Entry, key ids.NodeID, cb func(GetResp, bool)) {
	p.nextReq++
	id := p.nextReq
	p.pending[id] = &pendingReq{onGet: cb}
	p.Stats.RPCsSent++
	p.tr.Send(to.Addr, rpcHeaderSize+ids.IDSize, GetReq{ReqID: id, Key: key})
	p.tr.After(p.timeout, func() {
		if req, ok := p.pending[id]; ok && req.onGet != nil {
			delete(p.pending, id)
			p.Stats.Timeouts++
			cb(GetResp{}, false)
		}
	})
}

// Package dht implements a Kademlia distributed hash table: XOR-metric
// routing tables with k-buckets, iterative node lookup, and STORE /
// FIND_VALUE operations.
//
// In the paper the Kademlia DHT plays two roles: Ethereum nodes advertise
// their ENRs in it (views are built by crawling), and it is the substrate
// of the DHT DAS baseline (Section 8.1), where the builder PUTs 64-cell
// parcels at the 8 closest peers to each parcel key and sampling nodes
// GET them with multi-hop iterative routing. The baseline's weakness —
// multi-hop latency and message overhead — emerges naturally from this
// implementation.
package dht

import (
	"sort"

	"pandas/internal/ids"
)

// Kademlia parameters (libp2p defaults scaled to the paper's setting).
const (
	// K is the bucket size and the closest-set size returned by lookups.
	K = 16
	// Alpha is the lookup concurrency factor.
	Alpha = 3
	// Replication is the number of closest peers a value is stored at
	// (the paper stores 8 copies to match PANDAS's redundant seeding).
	Replication = 8
)

// Entry pairs a node's Kademlia ID with its transport address.
type Entry struct {
	ID   ids.NodeID
	Addr int
}

// RoutingTable is a Kademlia routing table: 256 k-buckets indexed by the
// length of the common prefix with the local ID.
type RoutingTable struct {
	self    ids.NodeID
	buckets [ids.IDSize * 8][]Entry
	size    int
}

// NewRoutingTable creates an empty table for the local node.
func NewRoutingTable(self ids.NodeID) *RoutingTable {
	return &RoutingTable{self: self}
}

// bucketIndex returns the bucket for an ID: the number of leading zero
// bits of the XOR distance (identical IDs map to the last bucket).
func (rt *RoutingTable) bucketIndex(id ids.NodeID) int {
	d := rt.self.XOR(id)
	lz := d.LeadingZeros()
	if lz >= len(rt.buckets) {
		return len(rt.buckets) - 1
	}
	return lz
}

// Add inserts a peer, respecting the k-bucket capacity (new entries are
// dropped when the bucket is full, Kademlia's stability bias). The local
// ID is never added. Reports whether the entry was inserted.
func (rt *RoutingTable) Add(e Entry) bool {
	if e.ID == rt.self {
		return false
	}
	b := rt.bucketIndex(e.ID)
	for _, x := range rt.buckets[b] {
		if x.ID == e.ID {
			return false
		}
	}
	if len(rt.buckets[b]) >= K {
		return false
	}
	rt.buckets[b] = append(rt.buckets[b], e)
	rt.size++
	return true
}

// Size returns the number of stored entries.
func (rt *RoutingTable) Size() int { return rt.size }

// Closest returns up to count entries closest to target in XOR distance.
func (rt *RoutingTable) Closest(target ids.NodeID, count int) []Entry {
	all := make([]Entry, 0, rt.size)
	for _, b := range rt.buckets {
		all = append(all, b...)
	}
	SortByDistance(all, target)
	if len(all) > count {
		all = all[:count]
	}
	return all
}

// SortByDistance orders entries by ascending XOR distance to target.
func SortByDistance(entries []Entry, target ids.NodeID) {
	sort.Slice(entries, func(i, j int) bool {
		return entries[i].ID.XOR(target).Less(entries[j].ID.XOR(target))
	})
}

package dht

import (
	"pandas/internal/ids"
)

// lookupState drives one iterative Kademlia lookup with Alpha-way
// concurrency: repeatedly query the closest unqueried candidates, merge
// their responses into the shortlist, and stop when the K closest known
// entries have all been queried (or failed).
type lookupState struct {
	peer      *Peer
	target    ids.NodeID
	shortlist []Entry
	queried   map[ids.NodeID]bool
	failed    map[ids.NodeID]bool
	inflight  int
	done      bool
	finish    func([]Entry)

	// getMode: issue GetReq instead of FindNodeReq, stop early on Found.
	getMode bool
	onValue func(GetResp)
}

// Lookup performs an iterative FIND_NODE toward target and calls finish
// with the K closest reachable entries.
func (p *Peer) Lookup(target ids.NodeID, finish func([]Entry)) {
	ls := &lookupState{
		peer:      p,
		target:    target,
		queried:   make(map[ids.NodeID]bool),
		failed:    make(map[ids.NodeID]bool),
		finish:    finish,
		shortlist: p.rt.Closest(target, K),
	}
	ls.step()
}

// Get performs an iterative FIND_VALUE for key. onValue receives the
// successful response; onMiss runs if the lookup exhausts without finding
// the value.
func (p *Peer) Get(key ids.NodeID, onValue func(GetResp), onMiss func()) {
	ls := &lookupState{
		peer:      p,
		target:    key,
		queried:   make(map[ids.NodeID]bool),
		failed:    make(map[ids.NodeID]bool),
		getMode:   true,
		onValue:   onValue,
		finish:    func([]Entry) { onMiss() },
		shortlist: p.rt.Closest(key, K),
	}
	ls.step()
}

// Put stores the value at the Replication closest reachable peers to key.
// done receives the number of successful stores.
func (p *Peer) Put(key ids.NodeID, size int, value any, done func(stored int)) {
	p.Lookup(key, func(closest []Entry) {
		if len(closest) > Replication {
			closest = closest[:Replication]
		}
		if len(closest) == 0 {
			done(0)
			return
		}
		remaining := len(closest)
		stored := 0
		for _, e := range closest {
			p.storeAt(e, key, size, value, func(ok bool) {
				if ok {
					stored++
				}
				remaining--
				if remaining == 0 {
					done(stored)
				}
			})
		}
	})
}

// step issues queries until Alpha are in flight or no candidates remain.
func (ls *lookupState) step() {
	if ls.done {
		return
	}
	for ls.inflight < Alpha {
		next, ok := ls.nextCandidate()
		if !ok {
			break
		}
		ls.queried[next.ID] = true
		ls.inflight++
		if ls.getMode {
			ls.peer.getFrom(next, ls.target, func(resp GetResp, ok bool) {
				ls.inflight--
				if ls.done {
					return
				}
				if !ok {
					ls.failed[next.ID] = true
				} else if resp.Found {
					ls.done = true
					ls.onValue(resp)
					return
				} else {
					ls.merge(resp.Closest)
				}
				ls.step()
			})
		} else {
			ls.peer.findNode(next, ls.target, func(resp FindNodeResp, ok bool) {
				ls.inflight--
				if ls.done {
					return
				}
				if !ok {
					ls.failed[next.ID] = true
				} else {
					ls.merge(resp.Closest)
				}
				ls.step()
			})
		}
	}
	if ls.inflight == 0 && !ls.done {
		// No candidates left: conclude with the K closest successful.
		ls.done = true
		out := make([]Entry, 0, K)
		for _, e := range ls.shortlist {
			if ls.failed[e.ID] {
				continue
			}
			out = append(out, e)
			if len(out) == K {
				break
			}
		}
		ls.finish(out)
	}
}

// nextCandidate picks the closest shortlist entry not yet queried.
func (ls *lookupState) nextCandidate() (Entry, bool) {
	for _, e := range ls.shortlist {
		if !ls.queried[e.ID] {
			return e, true
		}
	}
	return Entry{}, false
}

// merge folds response entries into the shortlist, keeping it sorted by
// distance and bounded.
func (ls *lookupState) merge(entries []Entry) {
	for _, e := range entries {
		if e.ID == ls.peer.self.ID {
			continue
		}
		dup := false
		for _, x := range ls.shortlist {
			if x.ID == e.ID {
				dup = true
				break
			}
		}
		if !dup {
			ls.shortlist = append(ls.shortlist, e)
		}
		ls.peer.rt.Add(e)
	}
	SortByDistance(ls.shortlist, ls.target)
	// Bound the shortlist: K closest unfailed candidates is all Kademlia
	// needs; keep slack for failures.
	if len(ls.shortlist) > 3*K {
		ls.shortlist = ls.shortlist[:3*K]
	}
}

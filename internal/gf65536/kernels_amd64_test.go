//go:build amd64 && !purego

package gf65536

import (
	"bytes"
	"math/rand"
	"testing"
)

// TestAVX512KernelsMatchScalar pins the assembly kernels against the
// scalar word-parallel kernels across coefficient edge cases, unaligned
// base addresses, block and non-block lengths, and odd tails. It is the
// deterministic companion to the fuzzers (which also exercise the asm
// path, since MulAddBytes dispatches through it when available).
func TestAVX512KernelsMatchScalar(t *testing.T) {
	if !haveAVX512 {
		t.Skip("no AVX-512 on this machine")
	}
	rng := rand.New(rand.NewSource(0x5eed))
	coeffs := []uint16{2, 3, 0x0a0b, 0x8000, 0xffff, 0x1234, 7}
	lengths := []int{2, 8, 62, 64, 66, 126, 128, 130, 192, 510, 512, 514, 1000, 4096}
	for _, c := range coeffs {
		tab := TableFor(c)
		for _, n := range lengths {
			for _, off := range []int{0, 1, 3} {
				buf := make([]byte, n+off)
				rng.Read(buf)
				src := buf[off:]

				// MulAdd vs scalar reference.
				dst := make([]byte, n)
				rng.Read(dst)
				want := append([]byte(nil), dst...)
				mulAddBytesScalar(c, src, want)
				tab.MulAdd(src, dst)
				if !bytes.Equal(dst, want) {
					t.Fatalf("MulAdd mismatch c=%#x n=%d off=%d", c, n, off)
				}

				// Mul overwrite form.
				dst2 := make([]byte, n)
				want2 := make([]byte, n)
				mulBytesScalar(c, src, want2)
				tab.Mul(src, dst2)
				if !bytes.Equal(dst2, want2) {
					t.Fatalf("Mul mismatch c=%#x n=%d off=%d", c, n, off)
				}

				// Butterflies vs their two-call formulations.
				u := make([]byte, n)
				v := make([]byte, n)
				rng.Read(u)
				rng.Read(v)
				wu := append([]byte(nil), u...)
				wv := append([]byte(nil), v...)
				mulAddBytesScalar(c, wv, wu) // u ^= c*v
				for i := range wv {
					wv[i] ^= wu[i] // v ^= u
				}
				FwdButterfly(tab, u, v)
				if !bytes.Equal(u, wu) || !bytes.Equal(v, wv) {
					t.Fatalf("FwdButterfly mismatch c=%#x n=%d off=%d", c, n, off)
				}

				rng.Read(u)
				rng.Read(v)
				wu = append(wu[:0], u...)
				wv = append(wv[:0], v...)
				for i := range wv {
					wv[i] ^= wu[i] // v ^= u
				}
				mulAddBytesScalar(c, wv, wu) // u ^= c*v
				InvButterfly(tab, u, v)
				if !bytes.Equal(u, wu) || !bytes.Equal(v, wv) {
					t.Fatalf("InvButterfly mismatch c=%#x n=%d off=%d", c, n, off)
				}
			}
		}
	}
}

// TestMulAddAliased pins the full-aliasing contract (src == dst) on the
// assembly path, matching the scalar kernel's behavior.
func TestMulAddAliased(t *testing.T) {
	if !haveAVX512 {
		t.Skip("no AVX-512 on this machine")
	}
	rng := rand.New(rand.NewSource(42))
	for _, c := range []uint16{5, 0xbeef} {
		buf := make([]byte, 640)
		rng.Read(buf)
		want := append([]byte(nil), buf...)
		mulAddBytesScalar(c, want, want)
		TableFor(c).MulAdd(buf, buf)
		if !bytes.Equal(buf, want) {
			t.Fatalf("aliased MulAdd mismatch c=%#x", c)
		}
	}
}

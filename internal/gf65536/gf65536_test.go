package gf65536

import (
	"testing"
	"testing/quick"
)

func TestGeneratorIsPrimitive(t *testing.T) {
	// x must generate all 65535 non-zero elements; verify the table walk
	// returned to 1 exactly at the end.
	if Exp(0) != 1 {
		t.Fatalf("Exp(0) = %d", Exp(0))
	}
	if Exp(65535) != 1 {
		t.Fatalf("Exp(65535) = %d, want 1 (x not primitive?)", Exp(65535))
	}
	for i := 1; i < 65535; i++ {
		if expTable[i] == 1 {
			t.Fatalf("x^%d = 1: generator has short order", i)
		}
	}
}

func TestMulCommutativeAssociative(t *testing.T) {
	f := func(a, b, c uint16) bool {
		return Mul(a, b) == Mul(b, a) &&
			Mul(Mul(a, b), c) == Mul(a, Mul(b, c))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestDistributive(t *testing.T) {
	f := func(a, b, c uint16) bool {
		return Mul(a, Add(b, c)) == Add(Mul(a, b), Mul(a, c))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestInvRoundTrip(t *testing.T) {
	f := func(a uint16) bool {
		if a == 0 {
			return true
		}
		return Mul(a, Inv(a)) == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestDivInverseOfMul(t *testing.T) {
	f := func(a, b uint16) bool {
		if b == 0 {
			return true
		}
		return Div(Mul(a, b), b) == a
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestMulByX(t *testing.T) {
	// Multiplying by 2 (= x) is a shift with conditional reduction.
	for _, a := range []uint16{1, 0x8000, 0xFFFF, 0x1234} {
		want := uint16(0)
		wide := int(a) << 1
		if wide&0x10000 != 0 {
			wide ^= Polynomial
		}
		want = uint16(wide)
		if got := Mul(a, 2); got != want {
			t.Fatalf("Mul(%#x, 2) = %#x, want %#x", a, got, want)
		}
	}
}

func TestPowFermat(t *testing.T) {
	// a^65535 == 1 for all non-zero a.
	for _, a := range []uint16{1, 2, 3, 0xABCD, 0xFFFF} {
		if got := Pow(a, 65535); got != 1 {
			t.Fatalf("Pow(%#x, 65535) = %#x, want 1", a, got)
		}
	}
	if Pow(0, 0) != 1 || Pow(0, 3) != 0 || Pow(5, 0) != 1 {
		t.Fatal("Pow edge cases wrong")
	}
}

func TestPowMatchesRepeatedMul(t *testing.T) {
	for _, a := range []uint16{0, 1, 2, 999, 0xFFFF} {
		acc := uint16(1)
		for n := 0; n < 10; n++ {
			if got := Pow(a, n); got != acc {
				t.Fatalf("Pow(%#x, %d) = %#x, want %#x", a, n, got, acc)
			}
			acc = Mul(acc, a)
		}
	}
}

func TestDivByZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Div(1, 0)
}

func TestInvZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Inv(0)
}

func TestMulAddSlice(t *testing.T) {
	src := []uint16{0, 1, 0xFFFF, 1234}
	dst := []uint16{7, 8, 9, 10}
	want := make([]uint16, 4)
	for i := range want {
		want[i] = dst[i] ^ Mul(3, src[i])
	}
	MulAddSlice(3, src, dst)
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("mismatch at %d", i)
		}
	}
}

func TestMulAddBytesMatchesWordwise(t *testing.T) {
	src := []byte{0x12, 0x34, 0x00, 0x00, 0xFF, 0xFF, 0xAB, 0xCD}
	dst := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	wantWords := make([]uint16, 4)
	for i := 0; i < 4; i++ {
		s := uint16(src[2*i])<<8 | uint16(src[2*i+1])
		d := uint16(dst[2*i])<<8 | uint16(dst[2*i+1])
		wantWords[i] = d ^ Mul(0x0102, s)
	}
	MulAddBytes(0x0102, src, dst)
	for i := 0; i < 4; i++ {
		got := uint16(dst[2*i])<<8 | uint16(dst[2*i+1])
		if got != wantWords[i] {
			t.Fatalf("word %d: got %#x want %#x", i, got, wantWords[i])
		}
	}
}

func TestMulBytesIdentityAndZero(t *testing.T) {
	src := []byte{1, 2, 3, 4}
	dst := make([]byte, 4)
	MulBytes(1, src, dst)
	for i := range src {
		if dst[i] != src[i] {
			t.Fatal("MulBytes(1) is not copy")
		}
	}
	MulBytes(0, src, dst)
	for _, d := range dst {
		if d != 0 {
			t.Fatal("MulBytes(0) did not zero dst")
		}
	}
}

func BenchmarkMulAddBytes(b *testing.B) {
	src := make([]byte, 512)
	dst := make([]byte, 512)
	for i := range src {
		src[i] = byte(i * 7)
	}
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MulAddBytes(uint16(i)|1, src, dst)
	}
}

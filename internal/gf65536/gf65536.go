// Package gf65536 implements arithmetic over the finite field GF(2^16).
//
// GF(2^8) Reed-Solomon codes cap at 256 shards, but PANDAS extends each
// 256-cell row or column of the blob matrix to 512 cells — 512 shards per
// codeword. GF(2^16) supports up to 65536 shards, comfortably covering the
// Danksharding parameters. Field elements are uint16; byte slices are
// interpreted as sequences of big-endian 16-bit words by the codec layer.
//
// The field is GF(2)[x] / (x^16 + x^12 + x^3 + x + 1), a primitive
// polynomial, so x itself generates the multiplicative group and log/exp
// tables can be filled by repeated doubling.
package gf65536

// Polynomial is the primitive polynomial defining the field,
// x^16 + x^12 + x^3 + x + 1.
const Polynomial = 0x1100B

// Order is the number of field elements.
const Order = 1 << 16

var (
	expTable []uint16 // expTable[i] = x^i, length 2*65535 to skip reductions
	logTable []uint16 // logTable[a] = log_x(a); logTable[0] unused
)

func init() {
	expTable = make([]uint16, 2*65535)
	logTable = make([]uint16, 65536)
	x := 1
	for i := 0; i < 65535; i++ {
		expTable[i] = uint16(x)
		logTable[x] = uint16(i)
		x <<= 1
		if x&0x10000 != 0 {
			x ^= Polynomial
		}
	}
	for i := 65535; i < 2*65535; i++ {
		expTable[i] = expTable[i-65535]
	}
}

// Add returns a + b (XOR). Subtraction is identical.
func Add(a, b uint16) uint16 { return a ^ b }

// Mul returns a * b in GF(2^16).
func Mul(a, b uint16) uint16 {
	if a == 0 || b == 0 {
		return 0
	}
	return expTable[int(logTable[a])+int(logTable[b])]
}

// Div returns a / b. Division by zero panics.
func Div(a, b uint16) uint16 {
	if b == 0 {
		panic("gf65536: division by zero")
	}
	if a == 0 {
		return 0
	}
	d := int(logTable[a]) - int(logTable[b])
	if d < 0 {
		d += 65535
	}
	return expTable[d]
}

// Inv returns the multiplicative inverse of a. Inv(0) panics.
func Inv(a uint16) uint16 {
	if a == 0 {
		panic("gf65536: inverse of zero")
	}
	return expTable[65535-int(logTable[a])]
}

// Exp returns x^n for n >= 0.
func Exp(n int) uint16 { return expTable[n%65535] }

// Log returns log_x(a). Log(0) panics.
func Log(a uint16) int {
	if a == 0 {
		panic("gf65536: log of zero")
	}
	return int(logTable[a])
}

// Pow returns a^n, with a^0 == 1 for any a.
func Pow(a uint16, n int) uint16 {
	if n == 0 {
		return 1
	}
	if a == 0 {
		return 0
	}
	l := (int(logTable[a]) % 65535 * (n % 65535)) % 65535
	if l < 0 {
		l += 65535
	}
	return expTable[l]
}

// MulSlice sets dst[i] = c * src[i]. Slices must have equal length.
func MulSlice(c uint16, src, dst []uint16) {
	if c == 0 {
		for i := range dst {
			dst[i] = 0
		}
		return
	}
	if c == 1 {
		copy(dst, src)
		return
	}
	logC := int(logTable[c])
	for i, s := range src {
		if s == 0 {
			dst[i] = 0
		} else {
			dst[i] = expTable[logC+int(logTable[s])]
		}
	}
}

// MulAddSlice sets dst[i] ^= c * src[i], the Reed-Solomon inner loop.
func MulAddSlice(c uint16, src, dst []uint16) {
	if c == 0 {
		return
	}
	if c == 1 {
		for i, s := range src {
			dst[i] ^= s
		}
		return
	}
	logC := int(logTable[c])
	for i, s := range src {
		if s != 0 {
			dst[i] ^= expTable[logC+int(logTable[s])]
		}
	}
}

// MulAddBytes sets dst ^= c*src where the byte slices are interpreted as
// big-endian uint16 words. Both lengths must be equal and even.
// Dispatches to the cached split-table kernel; hot loops that reuse the
// same coefficient should hold a TableFor(c) result and call MulAdd on
// it directly to skip the per-call cache load.
func MulAddBytes(c uint16, src, dst []byte) {
	if c == 0 {
		return
	}
	if c == 1 {
		AddBytes(src, dst)
		return
	}
	TableFor(c).MulAdd(src, dst)
}

// mulAddBytesScalar is the log/exp-table reference implementation of
// MulAddBytes, kept for differential fuzzing of the split-table kernel.
func mulAddBytesScalar(c uint16, src, dst []byte) {
	if c == 0 {
		return
	}
	if c == 1 {
		for i, s := range src {
			dst[i] ^= s
		}
		return
	}
	logC := int(logTable[c])
	for i := 0; i+1 < len(src); i += 2 {
		s := uint16(src[i])<<8 | uint16(src[i+1])
		if s == 0 {
			continue
		}
		p := expTable[logC+int(logTable[s])]
		dst[i] ^= byte(p >> 8)
		dst[i+1] ^= byte(p)
	}
}

// MulBytes sets dst = c*src over big-endian uint16 words.
func MulBytes(c uint16, src, dst []byte) {
	if c == 0 {
		for i := range dst {
			dst[i] = 0
		}
		return
	}
	if c == 1 {
		copy(dst, src)
		return
	}
	TableFor(c).Mul(src, dst)
}

// mulBytesScalar is the log/exp-table reference implementation of
// MulBytes, kept for differential fuzzing of the split-table kernel.
func mulBytesScalar(c uint16, src, dst []byte) {
	if c == 0 {
		for i := range dst {
			dst[i] = 0
		}
		return
	}
	if c == 1 {
		copy(dst, src)
		return
	}
	logC := int(logTable[c])
	for i := 0; i+1 < len(src); i += 2 {
		s := uint16(src[i])<<8 | uint16(src[i+1])
		if s == 0 {
			dst[i], dst[i+1] = 0, 0
			continue
		}
		p := expTable[logC+int(logTable[s])]
		dst[i] = byte(p >> 8)
		dst[i+1] = byte(p)
	}
}

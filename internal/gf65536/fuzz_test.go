package gf65536

import (
	"bytes"
	"testing"
)

// Differential fuzzing: the split-table kernels must agree with the
// log/exp scalar reference on every coefficient, every slice content,
// odd lengths (trailing byte ignored by the word kernels), and fully
// aliased src/dst.

func FuzzMulAddBytes(f *testing.F) {
	f.Add(uint16(0), []byte{})
	f.Add(uint16(1), []byte{1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Add(uint16(2), []byte{0xff, 0xee, 0x00, 0x00, 0x12, 0x34})
	f.Add(uint16(0xffff), []byte("an odd-length slice spanning multiple 8-byte blocks"))
	f.Fuzz(func(t *testing.T, c uint16, data []byte) {
		dst := make([]byte, len(data))
		for i := range dst {
			dst[i] = byte(i*31 + 7)
		}
		want := append([]byte(nil), dst...)
		got := append([]byte(nil), dst...)
		mulAddBytesScalar(c, data, want)
		MulAddBytes(c, data, got)
		if !bytes.Equal(want, got) {
			t.Fatalf("MulAddBytes(%#x) diverges from scalar\nsrc  %x\nwant %x\ngot  %x", c, data, want, got)
		}
		// Fully aliased: dst == src. Each 16-bit word is read before its
		// bytes are written, so the result must match the scalar loop.
		aliasWant := append([]byte(nil), data...)
		aliasGot := append([]byte(nil), data...)
		mulAddBytesScalar(c, aliasWant, aliasWant)
		MulAddBytes(c, aliasGot, aliasGot)
		if !bytes.Equal(aliasWant, aliasGot) {
			t.Fatalf("aliased MulAddBytes(%#x) diverges\nwant %x\ngot  %x", c, aliasWant, aliasGot)
		}
	})
}

func FuzzMulBytes(f *testing.F) {
	f.Add(uint16(0), []byte{9, 9})
	f.Add(uint16(3), []byte{0xde, 0xad, 0xbe, 0xef})
	f.Add(uint16(0x8000), []byte("sixteen-bit word payload x"))
	f.Fuzz(func(t *testing.T, c uint16, data []byte) {
		want := make([]byte, len(data))
		got := make([]byte, len(data))
		// Pre-fill so untouched tail bytes must match too.
		for i := range want {
			want[i] = 0xa5
			got[i] = 0xa5
		}
		mulBytesScalar(c, data, want)
		MulBytes(c, data, got)
		if !bytes.Equal(want, got) {
			t.Fatalf("MulBytes(%#x) diverges from scalar\nsrc  %x\nwant %x\ngot  %x", c, data, want, got)
		}
	})
}

// FuzzMulAdd4 checks the fused four-source kernel against four
// sequential scalar multiply-accumulates.
func FuzzMulAdd4(f *testing.F) {
	f.Add(uint16(2), uint16(3), uint16(4), uint16(5), []byte("0123456789abcdef0123456789"))
	f.Add(uint16(0), uint16(1), uint16(0xffff), uint16(0x100), []byte{7, 7, 7, 7})
	f.Fuzz(func(t *testing.T, c0, c1, c2, c3 uint16, data []byte) {
		// Derive four equally sized sources from the fuzz payload. The
		// fused kernels are word-only (codec shard sizes are always
		// even), unlike the scalar c==1 special case which XORs a
		// trailing odd byte, so keep the length even.
		q := (len(data) / 4) &^ 1
		s0, s1, s2, s3 := data[:q], data[q:2*q], data[2*q:3*q], data[3*q:4*q]
		want := make([]byte, q)
		got := make([]byte, q)
		mulAddBytesScalar(c0, s0, want)
		mulAddBytesScalar(c1, s1, want)
		mulAddBytesScalar(c2, s2, want)
		mulAddBytesScalar(c3, s3, want)
		MulAdd4(TableFor(c0), TableFor(c1), TableFor(c2), TableFor(c3), s0, s1, s2, s3, got)
		if !bytes.Equal(want, got) {
			t.Fatalf("MulAdd4(%#x,%#x,%#x,%#x) diverges\nwant %x\ngot  %x", c0, c1, c2, c3, want, got)
		}
		want2 := make([]byte, q)
		got2 := make([]byte, q)
		mulAddBytesScalar(c0, s0, want2)
		mulAddBytesScalar(c1, s1, want2)
		MulAdd2(TableFor(c0), TableFor(c1), s0, s1, got2)
		if !bytes.Equal(want2, got2) {
			t.Fatalf("MulAdd2(%#x,%#x) diverges\nwant %x\ngot  %x", c0, c1, want2, got2)
		}
	})
}

// FuzzTableMatchesMul anchors every table entry reachable from a fuzzed
// coefficient to the scalar field multiplication.
func FuzzTableMatchesMul(f *testing.F) {
	f.Add(uint16(0x1100), uint16(0xb))
	f.Fuzz(func(t *testing.T, c, s uint16) {
		tab := BuildTable(c)
		if got, want := tab.Hi[s>>8]^tab.Lo[s&0xff], Mul(c, s); got != want {
			t.Fatalf("table product %#x != Mul(%#x,%#x)=%#x", got, c, s, want)
		}
		if cached := TableFor(c); *cached != *tab {
			t.Fatalf("TableFor(%#x) differs from BuildTable", c)
		}
	})
}

package gf65536

import (
	"bytes"
	"testing"
)

// Differential fuzzing: the split-table kernels must agree with the
// log/exp scalar reference on every coefficient, every slice content,
// odd lengths (trailing byte ignored by the word kernels), and fully
// aliased src/dst.

func FuzzMulAddBytes(f *testing.F) {
	f.Add(uint16(0), []byte{})
	f.Add(uint16(1), []byte{1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Add(uint16(2), []byte{0xff, 0xee, 0x00, 0x00, 0x12, 0x34})
	f.Add(uint16(0xffff), []byte("an odd-length slice spanning multiple 8-byte blocks"))
	f.Fuzz(func(t *testing.T, c uint16, data []byte) {
		dst := make([]byte, len(data))
		for i := range dst {
			dst[i] = byte(i*31 + 7)
		}
		want := append([]byte(nil), dst...)
		got := append([]byte(nil), dst...)
		mulAddBytesScalar(c, data, want)
		MulAddBytes(c, data, got)
		if !bytes.Equal(want, got) {
			t.Fatalf("MulAddBytes(%#x) diverges from scalar\nsrc  %x\nwant %x\ngot  %x", c, data, want, got)
		}
		// Fully aliased: dst == src. Each 16-bit word is read before its
		// bytes are written, so the result must match the scalar loop.
		aliasWant := append([]byte(nil), data...)
		aliasGot := append([]byte(nil), data...)
		mulAddBytesScalar(c, aliasWant, aliasWant)
		MulAddBytes(c, aliasGot, aliasGot)
		if !bytes.Equal(aliasWant, aliasGot) {
			t.Fatalf("aliased MulAddBytes(%#x) diverges\nwant %x\ngot  %x", c, aliasWant, aliasGot)
		}
	})
}

func FuzzMulBytes(f *testing.F) {
	f.Add(uint16(0), []byte{9, 9})
	f.Add(uint16(3), []byte{0xde, 0xad, 0xbe, 0xef})
	f.Add(uint16(0x8000), []byte("sixteen-bit word payload x"))
	f.Fuzz(func(t *testing.T, c uint16, data []byte) {
		want := make([]byte, len(data))
		got := make([]byte, len(data))
		// Pre-fill so untouched tail bytes must match too.
		for i := range want {
			want[i] = 0xa5
			got[i] = 0xa5
		}
		mulBytesScalar(c, data, want)
		MulBytes(c, data, got)
		if !bytes.Equal(want, got) {
			t.Fatalf("MulBytes(%#x) diverges from scalar\nsrc  %x\nwant %x\ngot  %x", c, data, want, got)
		}
	})
}

// FuzzMulAdd4 checks the fused four-source kernel against four
// sequential scalar multiply-accumulates.
func FuzzMulAdd4(f *testing.F) {
	f.Add(uint16(2), uint16(3), uint16(4), uint16(5), []byte("0123456789abcdef0123456789"))
	f.Add(uint16(0), uint16(1), uint16(0xffff), uint16(0x100), []byte{7, 7, 7, 7})
	f.Fuzz(func(t *testing.T, c0, c1, c2, c3 uint16, data []byte) {
		// Derive four equally sized sources from the fuzz payload. The
		// fused kernels are word-only (codec shard sizes are always
		// even), unlike the scalar c==1 special case which XORs a
		// trailing odd byte, so keep the length even.
		q := (len(data) / 4) &^ 1
		s0, s1, s2, s3 := data[:q], data[q:2*q], data[2*q:3*q], data[3*q:4*q]
		want := make([]byte, q)
		got := make([]byte, q)
		mulAddBytesScalar(c0, s0, want)
		mulAddBytesScalar(c1, s1, want)
		mulAddBytesScalar(c2, s2, want)
		mulAddBytesScalar(c3, s3, want)
		MulAdd4(TableFor(c0), TableFor(c1), TableFor(c2), TableFor(c3), s0, s1, s2, s3, got)
		if !bytes.Equal(want, got) {
			t.Fatalf("MulAdd4(%#x,%#x,%#x,%#x) diverges\nwant %x\ngot  %x", c0, c1, c2, c3, want, got)
		}
		want2 := make([]byte, q)
		got2 := make([]byte, q)
		mulAddBytesScalar(c0, s0, want2)
		mulAddBytesScalar(c1, s1, want2)
		MulAdd2(TableFor(c0), TableFor(c1), s0, s1, got2)
		if !bytes.Equal(want2, got2) {
			t.Fatalf("MulAdd2(%#x,%#x) diverges\nwant %x\ngot  %x", c0, c1, want2, got2)
		}
	})
}

// FuzzMulAdd8 checks the fused eight-source kernel against eight
// sequential scalar multiply-accumulates.
func FuzzMulAdd8(f *testing.F) {
	f.Add(uint16(2), uint16(3), uint16(4), uint16(5), uint16(6), uint16(7), uint16(8), uint16(9),
		[]byte("a deterministic seed payload long enough for eight even slices!!"))
	f.Add(uint16(0), uint16(1), uint16(0xffff), uint16(0x100), uint16(0x8000), uint16(0x1b), uint16(0), uint16(1),
		[]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16})
	f.Fuzz(func(t *testing.T, c0, c1, c2, c3, c4, c5, c6, c7 uint16, data []byte) {
		q := (len(data) / 8) &^ 1
		var s [8][]byte
		cs := []uint16{c0, c1, c2, c3, c4, c5, c6, c7}
		want := make([]byte, q)
		for i := range s {
			s[i] = data[i*q : (i+1)*q]
			mulAddBytesScalar(cs[i], s[i], want)
		}
		got := make([]byte, q)
		MulAdd8(TableFor(c0), TableFor(c1), TableFor(c2), TableFor(c3),
			TableFor(c4), TableFor(c5), TableFor(c6), TableFor(c7),
			s[0], s[1], s[2], s[3], s[4], s[5], s[6], s[7], got)
		if !bytes.Equal(want, got) {
			t.Fatalf("MulAdd8%v diverges\nwant %x\ngot  %x", cs, want, got)
		}
	})
}

// FuzzButterflies checks the fused additive-FFT butterflies (including
// the AVX-512 path on capable machines) against their unfused two-call
// formulations built from the scalar reference, plus the nil-twiddle
// XOR-only forms.
func FuzzButterflies(f *testing.F) {
	f.Add(uint16(2), []byte("butterfly butterfly butterfly butterfly butterfly butterfly fly!"))
	f.Add(uint16(0xffff), []byte{0, 1, 2, 3})
	f.Fuzz(func(t *testing.T, c uint16, data []byte) {
		h := (len(data) / 2) &^ 1
		u0, v0 := data[:h], data[h:2*h]
		tab := TableFor(c)
		if c == 0 || c == 1 {
			tab = TableFor(2) // keep a representative non-trivial table
		}

		// Forward: u ^= c*v ; v ^= u.
		u := append([]byte(nil), u0...)
		v := append([]byte(nil), v0...)
		wu := append([]byte(nil), u0...)
		wv := append([]byte(nil), v0...)
		FwdButterfly(tab, u, v)
		cc := tab.Lo[1] // the table's coefficient: c * 0x0001
		mulAddBytesScalar(cc, wv, wu)
		for i := range wv {
			wv[i] ^= wu[i]
		}
		if !bytes.Equal(u, wu) || !bytes.Equal(v, wv) {
			t.Fatalf("FwdButterfly(%#x) diverges", cc)
		}

		// Inverse: v ^= u ; u ^= c*v.
		u = append(u[:0], u0...)
		v = append(v[:0], v0...)
		copy(wu, u0)
		copy(wv, v0)
		InvButterfly(tab, u, v)
		for i := range wv {
			wv[i] ^= wu[i]
		}
		mulAddBytesScalar(cc, wv, wu)
		if !bytes.Equal(u, wu) || !bytes.Equal(v, wv) {
			t.Fatalf("InvButterfly(%#x) diverges", cc)
		}

		// Nil table: both reduce to v ^= u.
		u = append(u[:0], u0...)
		v = append(v[:0], v0...)
		FwdButterfly(nil, u, v)
		copy(wu, u0)
		copy(wv, v0)
		for i := range wv {
			wv[i] ^= wu[i]
		}
		if !bytes.Equal(u, wu) || !bytes.Equal(v, wv) {
			t.Fatalf("FwdButterfly(nil) diverges")
		}
	})
}

// FuzzTableMatchesMul anchors every table entry reachable from a fuzzed
// coefficient to the scalar field multiplication.
func FuzzTableMatchesMul(f *testing.F) {
	f.Add(uint16(0x1100), uint16(0xb))
	f.Fuzz(func(t *testing.T, c, s uint16) {
		tab := BuildTable(c)
		if got, want := tab.Hi[s>>8]^tab.Lo[s&0xff], Mul(c, s); got != want {
			t.Fatalf("table product %#x != Mul(%#x,%#x)=%#x", got, c, s, want)
		}
		if cached := TableFor(c); *cached != *tab {
			t.Fatalf("TableFor(%#x) differs from BuildTable", c)
		}
	})
}

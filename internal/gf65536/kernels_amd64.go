//go:build amd64 && !purego

package gf65536

// AVX-512 kernels (kernels_amd64.s). All four require n to be a positive
// multiple of 64; the Go wrappers in tables.go handle shorter tails with
// the scalar word-parallel loops. The kernels interpret byte slices as
// big-endian 16-bit words, matching the scalar kernels bit for bit
// (pinned by TestAVX512KernelsMatchScalar and the differential fuzzers).

//go:noescape
func muladdAVX512(tab *MulTable16, src, dst *byte, n int)

//go:noescape
func mulAVX512(tab *MulTable16, src, dst *byte, n int)

//go:noescape
func fwdBflyAVX512(tab *MulTable16, u, v *byte, n int)

//go:noescape
func invBflyAVX512(tab *MulTable16, u, v *byte, n int)

//go:noescape
func xorAVX512(src, dst *byte, n int)

// cpuidex and xgetbv0 live in cpu_amd64.s; no dependency on x/sys/cpu.
func cpuidex(leaf, sub uint32) (eax, ebx, ecx, edx uint32)

func xgetbv0() (eax, edx uint32)

// haveAVX512 gates the assembly kernels. It is a variable (not a
// constant) so differential tests can flip it to exercise both paths.
var haveAVX512 = detectAVX512()

// detectAVX512 reports whether the CPU and OS support the AVX-512
// subsets the kernels use: F (zmm), BW (byte/word ops incl. VPSHUFB on
// zmm) and VBMI (VPERMB/VPERMI2B), with the OS saving zmm and opmask
// state (XCR0 bits checked via XGETBV, gated on OSXSAVE).
func detectAVX512() bool {
	maxLeaf, _, _, _ := cpuidex(0, 0)
	if maxLeaf < 7 {
		return false
	}
	_, _, c1, _ := cpuidex(1, 0)
	const osxsave = 1 << 27
	if c1&osxsave == 0 {
		return false
	}
	xcr0, _ := xgetbv0()
	// SSE(1) | AVX(2) | opmask(5) | ZMM_Hi256(6) | Hi16_ZMM(7)
	const zmmState = 1<<1 | 1<<2 | 1<<5 | 1<<6 | 1<<7
	if xcr0&zmmState != zmmState {
		return false
	}
	_, b7, c7, _ := cpuidex(7, 0)
	const avx512f = 1 << 16
	const avx512bw = 1 << 30
	const avx512vbmi = 1 << 1
	return b7&avx512f != 0 && b7&avx512bw != 0 && c7&avx512vbmi != 0
}

package gf65536

import (
	"math/rand"
	"testing"
)

func benchSlices(n int) (a, b, c, d, dst []byte) {
	rng := rand.New(rand.NewSource(1))
	mk := func() []byte {
		s := make([]byte, n)
		rng.Read(s)
		return s
	}
	return mk(), mk(), mk(), mk(), mk()
}

// BenchmarkMulAddBytesScalar measures the log/exp reference kernel.
func BenchmarkMulAddBytesScalar(b *testing.B) {
	src, _, _, _, dst := benchSlices(512)
	b.SetBytes(512)
	for i := 0; i < b.N; i++ {
		mulAddBytesScalar(0x1234, src, dst)
	}
}

// BenchmarkMulAddBytesTable measures the split-table kernel.
func BenchmarkMulAddBytesTable(b *testing.B) {
	src, _, _, _, dst := benchSlices(512)
	t := TableFor(0x1234)
	b.SetBytes(512)
	for i := 0; i < b.N; i++ {
		t.MulAdd(src, dst)
	}
}

// BenchmarkMulAdd4 measures the fused four-source kernel; throughput is
// reported per source byte processed.
func BenchmarkMulAdd4(b *testing.B) {
	s0, s1, s2, s3, dst := benchSlices(512)
	t0, t1, t2, t3 := TableFor(3), TableFor(0x1234), TableFor(0xfedc), TableFor(0x8001)
	b.SetBytes(4 * 512)
	for i := 0; i < b.N; i++ {
		MulAdd4(t0, t1, t2, t3, s0, s1, s2, s3, dst)
	}
}

// BenchmarkAddBytes measures the wide-XOR c==1 path.
func BenchmarkAddBytes(b *testing.B) {
	src, _, _, _, dst := benchSlices(512)
	b.SetBytes(512)
	for i := 0; i < b.N; i++ {
		AddBytes(src, dst)
	}
}

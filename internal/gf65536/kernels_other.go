//go:build !amd64 || purego

package gf65536

// Non-amd64 (or purego) builds fall back to the scalar word-parallel
// kernels; the stubs below are never reached because haveAVX512 is
// false.

const haveAVX512 = false

func muladdAVX512(tab *MulTable16, src, dst *byte, n int) {
	panic("gf65536: AVX-512 kernel called on unsupported platform")
}

func mulAVX512(tab *MulTable16, src, dst *byte, n int) {
	panic("gf65536: AVX-512 kernel called on unsupported platform")
}

func fwdBflyAVX512(tab *MulTable16, u, v *byte, n int) {
	panic("gf65536: AVX-512 kernel called on unsupported platform")
}

func invBflyAVX512(tab *MulTable16, u, v *byte, n int) {
	panic("gf65536: AVX-512 kernel called on unsupported platform")
}

func xorAVX512(src, dst *byte, n int) {
	panic("gf65536: AVX-512 kernel called on unsupported platform")
}

package gf65536

import (
	"encoding/binary"
	"sync/atomic"
)

// MulTable16 holds the split multiplication tables for one fixed
// coefficient c: for a 16-bit word s = hi<<8 | lo,
//
//	c*s = Hi[hi] ^ Lo[lo]
//
// by linearity of GF(2^16) multiplication over the bit decomposition of
// s. Each table has 256 uint16 entries (1 KiB per coefficient in total),
// so the working set of a multiply-accumulate pass fits in L1 cache —
// unlike the scalar log/exp path, whose lookups roam a 384 KiB table
// pair. All MulTable16 methods are branch-free per word and process
// eight bytes (four words) per loop iteration.
type MulTable16 struct {
	Lo [256]uint16 // c * s for s in 0..255
	Hi [256]uint16 // c * (s<<8) for s in 0..255

	// zmm holds the nibble-split shuffle tables consumed by the AVX-512
	// kernels in kernels_amd64.s, which index this struct by fixed byte
	// offset (1024 + 64*i) — keep the field order and sizes in sync with
	// the assembly. Writing c*s = T0[s&15] ^ T1[s>>4&15] ^ T2[s>>8&15] ^
	// T3[s>>12] (linearity over the nibble decomposition), each 64-byte
	// vector carries four 16-entry byte tables, one per 128-bit VPSHUFB
	// lane, arranged for the deinterleaved layout the kernel produces
	// (low bytes of 32 words, then high bytes):
	//
	//	zmm[0] = [T0lo T0lo T2lo T2lo]  (even nibbles, product low byte)
	//	zmm[1] = [T1lo T1lo T3lo T3lo]  (odd  nibbles, product low byte)
	//	zmm[2] = [T0hi T0hi T2hi T2hi]  (even nibbles, product high byte)
	//	zmm[3] = [T1hi T1hi T3hi T3hi]  (odd  nibbles, product high byte)
	zmm [4][64]byte
}

// BuildTable computes the split tables for coefficient c from the
// log/exp tables. Callers that apply the same coefficient repeatedly
// should use TableFor, which caches the result process-wide.
func BuildTable(c uint16) *MulTable16 {
	t := new(MulTable16)
	if c == 0 {
		return t
	}
	logC := int(logTable[c])
	for s := 1; s < 256; s++ {
		t.Lo[s] = expTable[logC+int(logTable[s])]
		t.Hi[s] = expTable[logC+int(logTable[uint16(s)<<8])]
	}
	for n := 1; n < 16; n++ {
		t0 := t.Lo[n]    // c * n
		t1 := t.Lo[n<<4] // c * (n<<4)
		t2 := t.Hi[n]    // c * (n<<8)
		t3 := t.Hi[n<<4] // c * (n<<12)
		t.zmm[0][n], t.zmm[0][16+n] = byte(t0), byte(t0)
		t.zmm[0][32+n], t.zmm[0][48+n] = byte(t2), byte(t2)
		t.zmm[1][n], t.zmm[1][16+n] = byte(t1), byte(t1)
		t.zmm[1][32+n], t.zmm[1][48+n] = byte(t3), byte(t3)
		t.zmm[2][n], t.zmm[2][16+n] = byte(t0>>8), byte(t0>>8)
		t.zmm[2][32+n], t.zmm[2][48+n] = byte(t2>>8), byte(t2>>8)
		t.zmm[3][n], t.zmm[3][16+n] = byte(t1>>8), byte(t1>>8)
		t.zmm[3][32+n], t.zmm[3][48+n] = byte(t3>>8), byte(t3>>8)
	}
	return t
}

// tableCache lazily caches one MulTable16 per coefficient, shared by all
// codecs in the process. The pointer array costs 512 KiB; tables are
// built on first use only for coefficients that actually occur in an
// encode or decode matrix.
var tableCache [Order]atomic.Pointer[MulTable16]

// TableFor returns the (cached) split multiplication table for c.
// Safe for concurrent use.
func TableFor(c uint16) *MulTable16 {
	if t := tableCache[c].Load(); t != nil {
		return t
	}
	t := BuildTable(c)
	if !tableCache[c].CompareAndSwap(nil, t) {
		t = tableCache[c].Load()
	}
	return t
}

// productWord computes c*s for four packed big-endian 16-bit words at
// once through the split tables — the shared inner step of the scalar
// word-parallel kernels.
func productWord(t *MulTable16, s uint64) uint64 {
	return uint64(t.Hi[s>>56]^t.Lo[s>>48&0xff])<<48 |
		uint64(t.Hi[s>>40&0xff]^t.Lo[s>>32&0xff])<<32 |
		uint64(t.Hi[s>>24&0xff]^t.Lo[s>>16&0xff])<<16 |
		uint64(t.Hi[s>>8&0xff]^t.Lo[s&0xff])
}

// MulAdd sets dst ^= c*src over big-endian 16-bit words, where c is the
// table's coefficient. len(dst) must be >= len(src); a trailing odd byte
// is ignored (slices used with the codec are always even-sized).
func (t *MulTable16) MulAdd(src, dst []byte) {
	n := len(src)
	if len(dst) < n {
		n = len(dst)
	}
	i := 0
	if haveAVX512 && n >= 64 {
		blk := n &^ 63
		muladdAVX512(t, &src[0], &dst[0], blk)
		i = blk
	}
	for ; i+8 <= n; i += 8 {
		s := binary.BigEndian.Uint64(src[i:])
		p := productWord(t, s)
		binary.BigEndian.PutUint64(dst[i:], binary.BigEndian.Uint64(dst[i:])^p)
	}
	for ; i+1 < n; i += 2 {
		p := t.Hi[src[i]] ^ t.Lo[src[i+1]]
		dst[i] ^= byte(p >> 8)
		dst[i+1] ^= byte(p)
	}
}

// Mul sets dst = c*src over big-endian 16-bit words (overwrite form,
// saving the dst pre-read of MulAdd). Same length rules as MulAdd.
func (t *MulTable16) Mul(src, dst []byte) {
	n := len(src)
	if len(dst) < n {
		n = len(dst)
	}
	i := 0
	if haveAVX512 && n >= 64 {
		blk := n &^ 63
		mulAVX512(t, &src[0], &dst[0], blk)
		i = blk
	}
	for ; i+8 <= n; i += 8 {
		s := binary.BigEndian.Uint64(src[i:])
		binary.BigEndian.PutUint64(dst[i:], productWord(t, s))
	}
	for ; i+1 < n; i += 2 {
		p := t.Hi[src[i]] ^ t.Lo[src[i+1]]
		dst[i] = byte(p >> 8)
		dst[i+1] = byte(p)
	}
}

// MulAdd4 sets dst ^= c0*s0 ^ c1*s1 ^ c2*s2 ^ c3*s3 in a single pass.
// Fusing four sources quarters the dst read-modify-write traffic of four
// separate MulAdd calls — with 512 B cells the dst stream is otherwise
// the dominant memory cost of encoding. All four sources must have the
// same length; len(dst) must be >= that length.
func MulAdd4(t0, t1, t2, t3 *MulTable16, s0, s1, s2, s3, dst []byte) {
	n := len(s0)
	if len(dst) < n {
		n = len(dst)
	}
	i := 0
	for ; i+8 <= n; i += 8 {
		a := binary.BigEndian.Uint64(s0[i:])
		b := binary.BigEndian.Uint64(s1[i:])
		c := binary.BigEndian.Uint64(s2[i:])
		d := binary.BigEndian.Uint64(s3[i:])
		p := uint64(t0.Hi[a>>56]^t0.Lo[a>>48&0xff]^t1.Hi[b>>56]^t1.Lo[b>>48&0xff]^
			t2.Hi[c>>56]^t2.Lo[c>>48&0xff]^t3.Hi[d>>56]^t3.Lo[d>>48&0xff])<<48 |
			uint64(t0.Hi[a>>40&0xff]^t0.Lo[a>>32&0xff]^t1.Hi[b>>40&0xff]^t1.Lo[b>>32&0xff]^
				t2.Hi[c>>40&0xff]^t2.Lo[c>>32&0xff]^t3.Hi[d>>40&0xff]^t3.Lo[d>>32&0xff])<<32 |
			uint64(t0.Hi[a>>24&0xff]^t0.Lo[a>>16&0xff]^t1.Hi[b>>24&0xff]^t1.Lo[b>>16&0xff]^
				t2.Hi[c>>24&0xff]^t2.Lo[c>>16&0xff]^t3.Hi[d>>24&0xff]^t3.Lo[d>>16&0xff])<<16 |
			uint64(t0.Hi[a>>8&0xff]^t0.Lo[a&0xff]^t1.Hi[b>>8&0xff]^t1.Lo[b&0xff]^
				t2.Hi[c>>8&0xff]^t2.Lo[c&0xff]^t3.Hi[d>>8&0xff]^t3.Lo[d&0xff])
		binary.BigEndian.PutUint64(dst[i:], binary.BigEndian.Uint64(dst[i:])^p)
	}
	for ; i+1 < n; i += 2 {
		p := t0.Hi[s0[i]] ^ t0.Lo[s0[i+1]] ^
			t1.Hi[s1[i]] ^ t1.Lo[s1[i+1]] ^
			t2.Hi[s2[i]] ^ t2.Lo[s2[i+1]] ^
			t3.Hi[s3[i]] ^ t3.Lo[s3[i+1]]
		dst[i] ^= byte(p >> 8)
		dst[i+1] ^= byte(p)
	}
}

// MulAdd2 is the two-source form of MulAdd4, used for tails.
func MulAdd2(t0, t1 *MulTable16, s0, s1, dst []byte) {
	n := len(s0)
	if len(dst) < n {
		n = len(dst)
	}
	i := 0
	for ; i+8 <= n; i += 8 {
		a := binary.BigEndian.Uint64(s0[i:])
		b := binary.BigEndian.Uint64(s1[i:])
		p := uint64(t0.Hi[a>>56]^t0.Lo[a>>48&0xff]^t1.Hi[b>>56]^t1.Lo[b>>48&0xff])<<48 |
			uint64(t0.Hi[a>>40&0xff]^t0.Lo[a>>32&0xff]^t1.Hi[b>>40&0xff]^t1.Lo[b>>32&0xff])<<32 |
			uint64(t0.Hi[a>>24&0xff]^t0.Lo[a>>16&0xff]^t1.Hi[b>>24&0xff]^t1.Lo[b>>16&0xff])<<16 |
			uint64(t0.Hi[a>>8&0xff]^t0.Lo[a&0xff]^t1.Hi[b>>8&0xff]^t1.Lo[b&0xff])
		binary.BigEndian.PutUint64(dst[i:], binary.BigEndian.Uint64(dst[i:])^p)
	}
	for ; i+1 < n; i += 2 {
		p := t0.Hi[s0[i]] ^ t0.Lo[s0[i+1]] ^ t1.Hi[s1[i]] ^ t1.Lo[s1[i+1]]
		dst[i] ^= byte(p >> 8)
		dst[i+1] ^= byte(p)
	}
}

// MulAdd8 sets dst ^= c0*s0 ^ ... ^ c7*s7 in a single pass, the
// eight-source extension of MulAdd4: one dst read-modify-write sweep
// amortized over eight sources, processing four coefficients per uint64
// lane. All eight sources must have the same length; len(dst) must be
// >= that length.
func MulAdd8(t0, t1, t2, t3, t4, t5, t6, t7 *MulTable16,
	s0, s1, s2, s3, s4, s5, s6, s7, dst []byte) {
	n := len(s0)
	if len(dst) < n {
		n = len(dst)
	}
	i := 0
	for ; i+8 <= n; i += 8 {
		p := productWord(t0, binary.BigEndian.Uint64(s0[i:])) ^
			productWord(t1, binary.BigEndian.Uint64(s1[i:])) ^
			productWord(t2, binary.BigEndian.Uint64(s2[i:])) ^
			productWord(t3, binary.BigEndian.Uint64(s3[i:])) ^
			productWord(t4, binary.BigEndian.Uint64(s4[i:])) ^
			productWord(t5, binary.BigEndian.Uint64(s5[i:])) ^
			productWord(t6, binary.BigEndian.Uint64(s6[i:])) ^
			productWord(t7, binary.BigEndian.Uint64(s7[i:]))
		binary.BigEndian.PutUint64(dst[i:], binary.BigEndian.Uint64(dst[i:])^p)
	}
	for ; i+1 < n; i += 2 {
		p := t0.Hi[s0[i]] ^ t0.Lo[s0[i+1]] ^ t1.Hi[s1[i]] ^ t1.Lo[s1[i+1]] ^
			t2.Hi[s2[i]] ^ t2.Lo[s2[i+1]] ^ t3.Hi[s3[i]] ^ t3.Lo[s3[i+1]] ^
			t4.Hi[s4[i]] ^ t4.Lo[s4[i+1]] ^ t5.Hi[s5[i]] ^ t5.Lo[s5[i+1]] ^
			t6.Hi[s6[i]] ^ t6.Lo[s6[i+1]] ^ t7.Hi[s7[i]] ^ t7.Lo[s7[i+1]]
		dst[i] ^= byte(p >> 8)
		dst[i+1] ^= byte(p)
	}
}

// FwdButterfly applies the forward (fft) additive-FFT butterfly in one
// fused pass over big-endian 16-bit words:
//
//	u ^= t*v ; v ^= u
//
// A nil table means the twiddle is zero (u unchanged, v ^= u). Fusing
// the multiply-accumulate and the XOR halves the memory sweeps of the
// two-call formulation, which dominates when codewords exceed cache.
// len is min(len(u), len(v)); u and v must not overlap.
func FwdButterfly(t *MulTable16, u, v []byte) {
	if t == nil {
		AddBytes(u, v)
		return
	}
	n := len(u)
	if len(v) < n {
		n = len(v)
	}
	i := 0
	if haveAVX512 && n >= 64 {
		blk := n &^ 63
		fwdBflyAVX512(t, &u[0], &v[0], blk)
		i = blk
	}
	for ; i+8 <= n; i += 8 {
		sv := binary.BigEndian.Uint64(v[i:])
		nu := binary.BigEndian.Uint64(u[i:]) ^ productWord(t, sv)
		binary.BigEndian.PutUint64(u[i:], nu)
		binary.BigEndian.PutUint64(v[i:], sv^nu)
	}
	for ; i+1 < n; i += 2 {
		p := t.Hi[v[i]] ^ t.Lo[v[i+1]]
		u[i] ^= byte(p >> 8)
		u[i+1] ^= byte(p)
		v[i] ^= u[i]
		v[i+1] ^= u[i+1]
	}
}

// InvButterfly applies the inverse (ifft) additive-FFT butterfly in one
// fused pass:
//
//	v ^= u ; u ^= t*v
//
// A nil table means the twiddle is zero (v ^= u only). Same length and
// overlap rules as FwdButterfly.
func InvButterfly(t *MulTable16, u, v []byte) {
	if t == nil {
		AddBytes(u, v)
		return
	}
	n := len(u)
	if len(v) < n {
		n = len(v)
	}
	i := 0
	if haveAVX512 && n >= 64 {
		blk := n &^ 63
		invBflyAVX512(t, &u[0], &v[0], blk)
		i = blk
	}
	for ; i+8 <= n; i += 8 {
		nv := binary.BigEndian.Uint64(v[i:]) ^ binary.BigEndian.Uint64(u[i:])
		binary.BigEndian.PutUint64(v[i:], nv)
		binary.BigEndian.PutUint64(u[i:],
			binary.BigEndian.Uint64(u[i:])^productWord(t, nv))
	}
	for ; i+1 < n; i += 2 {
		v[i] ^= u[i]
		v[i+1] ^= u[i+1]
		p := t.Hi[v[i]] ^ t.Lo[v[i+1]]
		u[i] ^= byte(p >> 8)
		u[i+1] ^= byte(p)
	}
}

// AddBytes sets dst ^= src with wide 8-byte XORs (the c==1 fast path;
// XOR is endianness-agnostic). A trailing odd byte IS processed, since
// plain addition has no word structure.
func AddBytes(src, dst []byte) {
	n := len(src)
	if len(dst) < n {
		n = len(dst)
	}
	i := 0
	if haveAVX512 && n >= 64 {
		blk := n &^ 63
		xorAVX512(&src[0], &dst[0], blk)
		i = blk
	}
	for ; i+8 <= n; i += 8 {
		binary.LittleEndian.PutUint64(dst[i:],
			binary.LittleEndian.Uint64(dst[i:])^binary.LittleEndian.Uint64(src[i:]))
	}
	for ; i < n; i++ {
		dst[i] ^= src[i]
	}
}

//go:build amd64 && !purego

#include "textflag.h"

// AVX-512 GF(2^16) kernels over big-endian 16-bit words.
//
// Strategy (VPSHUFB nibble tables, extended to 16-bit symbols): split
// each input word into four nibbles; by linearity the product c*w is
// the XOR of four 16-entry table lookups. VPSHUFB performs 64 such
// lookups at once, but only within 128-bit lanes, so the input block is
// first deinterleaved with VPERMB into [32 low bytes | 32 high bytes]
// and the four per-lane tables of MulTable16.zmm are arranged to match
// that layout (see tables.go). The two partial products (low half of
// the vector = contribution of the low input bytes, high half = high
// input bytes) are folded with a 256-bit half swap, and the product's
// high/low bytes are re-interleaved into big-endian order with VPERMI2B.
//
// Fixed registers per call: Z1 = deinterleave index, Z2 = 0x0f mask,
// Z3 = interleave index, Z10..Z13 = the four shuffle tables (loaded
// once from tab.zmm — byte offsets 1024..1216, keep in sync with the
// struct). GFPRODUCT clobbers Z4..Z9.
//
// n must be a positive multiple of 64 (Go wrappers handle tails).

// GFPRODUCT computes the GF(2^16) product of the 32 big-endian words in
// VSRC by the table coefficient, leaving the result (same byte order)
// in VOUT. VSRC and VOUT must be distinct from Z4..Z9 and each other.
// Steps: deinterleave into [lo bytes | hi bytes] (VPERMB); split even
// and odd nibbles; four VPSHUFB lookups XORed into unfolded low/high
// product bytes; fold the 256-bit halves; re-interleave the high and
// low product bytes into big-endian word order (VPERMI2B consumes the
// index register, hence the VMOVDQA64 copy).
#define GFPRODUCT(VSRC, VOUT) \
	VPERMB     VSRC, Z1, Z4       \
	VPANDQ     Z2, Z4, Z5         \
	VPSRLW     $4, Z4, Z6         \
	VPANDQ     Z2, Z6, Z6         \
	VPSHUFB    Z5, Z10, Z7        \
	VPSHUFB    Z6, Z11, Z9        \
	VPXORQ     Z9, Z7, Z7         \
	VPSHUFB    Z5, Z12, Z8        \
	VPSHUFB    Z6, Z13, Z9        \
	VPXORQ     Z9, Z8, Z8         \
	VSHUFI64X2 $0x4E, Z7, Z7, Z9  \
	VPXORQ     Z9, Z7, Z7         \
	VSHUFI64X2 $0x4E, Z8, Z8, Z9  \
	VPXORQ     Z9, Z8, Z8         \
	VMOVDQA64  Z3, VOUT           \
	VPERMI2B   Z7, Z8, VOUT

#define KERNELHEAD \
	MOVQ      tab+0(FP), AX        \
	VMOVDQU64 ·gfDeintIdx(SB), Z1  \
	VMOVDQU64 ·gfNibMask(SB), Z2   \
	VMOVDQU64 ·gfIntIdx(SB), Z3    \
	VMOVDQU64 1024(AX), Z10        \
	VMOVDQU64 1088(AX), Z11        \
	VMOVDQU64 1152(AX), Z12        \
	VMOVDQU64 1216(AX), Z13

// func muladdAVX512(tab *MulTable16, src, dst *byte, n int)
// dst ^= c*src
TEXT ·muladdAVX512(SB), NOSPLIT, $0-32
	KERNELHEAD
	MOVQ src+8(FP), SI
	MOVQ dst+16(FP), DI
	MOVQ n+24(FP), CX

muladd_loop:
	VMOVDQU64 (SI), Z0
	GFPRODUCT(Z0, Z14)
	VMOVDQU64 (DI), Z15
	VPXORQ    Z14, Z15, Z15
	VMOVDQU64 Z15, (DI)
	ADDQ      $64, SI
	ADDQ      $64, DI
	SUBQ      $64, CX
	JNZ       muladd_loop
	VZEROUPPER
	RET

// func mulAVX512(tab *MulTable16, src, dst *byte, n int)
// dst = c*src
TEXT ·mulAVX512(SB), NOSPLIT, $0-32
	KERNELHEAD
	MOVQ src+8(FP), SI
	MOVQ dst+16(FP), DI
	MOVQ n+24(FP), CX

mul_loop:
	VMOVDQU64 (SI), Z0
	GFPRODUCT(Z0, Z14)
	VMOVDQU64 Z14, (DI)
	ADDQ      $64, SI
	ADDQ      $64, DI
	SUBQ      $64, CX
	JNZ       mul_loop
	VZEROUPPER
	RET

// func fwdBflyAVX512(tab *MulTable16, u, v *byte, n int)
// u ^= c*v ; v ^= u   (forward additive-FFT butterfly, fused)
TEXT ·fwdBflyAVX512(SB), NOSPLIT, $0-32
	KERNELHEAD
	MOVQ u+8(FP), DI
	MOVQ v+16(FP), SI
	MOVQ n+24(FP), CX

fwd_loop:
	VMOVDQU64 (SI), Z0
	GFPRODUCT(Z0, Z14)
	VMOVDQU64 (DI), Z15
	VPXORQ    Z14, Z15, Z15       // u' = u ^ c*v
	VMOVDQU64 Z15, (DI)
	VPXORQ    Z15, Z0, Z0         // v' = v ^ u'
	VMOVDQU64 Z0, (SI)
	ADDQ      $64, SI
	ADDQ      $64, DI
	SUBQ      $64, CX
	JNZ       fwd_loop
	VZEROUPPER
	RET

// func invBflyAVX512(tab *MulTable16, u, v *byte, n int)
// v ^= u ; u ^= c*v   (inverse additive-FFT butterfly, fused)
TEXT ·invBflyAVX512(SB), NOSPLIT, $0-32
	KERNELHEAD
	MOVQ u+8(FP), DI
	MOVQ v+16(FP), SI
	MOVQ n+24(FP), CX

inv_loop:
	VMOVDQU64 (SI), Z0
	VMOVDQU64 (DI), Z15
	VPXORQ    Z15, Z0, Z0         // v' = v ^ u
	VMOVDQU64 Z0, (SI)
	GFPRODUCT(Z0, Z14)
	VPXORQ    Z14, Z15, Z15       // u' = u ^ c*v'
	VMOVDQU64 Z15, (DI)
	ADDQ      $64, SI
	ADDQ      $64, DI
	SUBQ      $64, CX
	JNZ       inv_loop
	VZEROUPPER
	RET

// func xorAVX512(src, dst *byte, n int)
// dst ^= src (no table; the c==1 / zero-twiddle fast path)
TEXT ·xorAVX512(SB), NOSPLIT, $0-24
	MOVQ src+0(FP), SI
	MOVQ dst+8(FP), DI
	MOVQ n+16(FP), CX

xor_loop:
	VMOVDQU64 (SI), Z0
	VMOVDQU64 (DI), Z1
	VPXORQ    Z0, Z1, Z1
	VMOVDQU64 Z1, (DI)
	ADDQ      $64, SI
	ADDQ      $64, DI
	SUBQ      $64, CX
	JNZ       xor_loop
	VZEROUPPER
	RET

// Deinterleave index for VPERMB: output byte i<32 takes input byte
// 2i+1 (the low byte of big-endian word i); byte 32+i takes input byte
// 2i (the high byte).
DATA ·gfDeintIdx+0(SB)/8, $0x0F0D0B0907050301
DATA ·gfDeintIdx+8(SB)/8, $0x1F1D1B1917151311
DATA ·gfDeintIdx+16(SB)/8, $0x2F2D2B2927252321
DATA ·gfDeintIdx+24(SB)/8, $0x3F3D3B3937353331
DATA ·gfDeintIdx+32(SB)/8, $0x0E0C0A0806040200
DATA ·gfDeintIdx+40(SB)/8, $0x1E1C1A1816141210
DATA ·gfDeintIdx+48(SB)/8, $0x2E2C2A2826242220
DATA ·gfDeintIdx+56(SB)/8, $0x3E3C3A3836343230
GLOBL ·gfDeintIdx(SB), RODATA|NOPTR, $64

// Interleave index for VPERMI2B: output byte 2i = byte i of the first
// table (product high bytes, index < 64), byte 2i+1 = byte i of the
// second table (product low bytes, index 64+i).
DATA ·gfIntIdx+0(SB)/8, $0x4303420241014000
DATA ·gfIntIdx+8(SB)/8, $0x4707460645054404
DATA ·gfIntIdx+16(SB)/8, $0x4B0B4A0A49094808
DATA ·gfIntIdx+24(SB)/8, $0x4F0F4E0E4D0D4C0C
DATA ·gfIntIdx+32(SB)/8, $0x5313521251115010
DATA ·gfIntIdx+40(SB)/8, $0x5717561655155414
DATA ·gfIntIdx+48(SB)/8, $0x5B1B5A1A59195818
DATA ·gfIntIdx+56(SB)/8, $0x5F1F5E1E5D1D5C1C
GLOBL ·gfIntIdx(SB), RODATA|NOPTR, $64

DATA ·gfNibMask+0(SB)/8, $0x0F0F0F0F0F0F0F0F
DATA ·gfNibMask+8(SB)/8, $0x0F0F0F0F0F0F0F0F
DATA ·gfNibMask+16(SB)/8, $0x0F0F0F0F0F0F0F0F
DATA ·gfNibMask+24(SB)/8, $0x0F0F0F0F0F0F0F0F
DATA ·gfNibMask+32(SB)/8, $0x0F0F0F0F0F0F0F0F
DATA ·gfNibMask+40(SB)/8, $0x0F0F0F0F0F0F0F0F
DATA ·gfNibMask+48(SB)/8, $0x0F0F0F0F0F0F0F0F
DATA ·gfNibMask+56(SB)/8, $0x0F0F0F0F0F0F0F0F
GLOBL ·gfNibMask(SB), RODATA|NOPTR, $64

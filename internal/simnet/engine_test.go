package simnet

import (
	"container/heap"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// refEvent / refHeap reimplement the pre-sharding event queue (a
// container/heap of individually allocated events) as the ordering
// oracle for the differential test below.
type refEvent struct {
	at  time.Duration
	seq uint64
	id  int
}

type refHeap []*refEvent

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h refHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x interface{}) { *h = append(*h, x.(*refEvent)) }
func (h *refHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// TestEngineOrderMatchesReferenceHeap drives the sharded queue and the
// old container/heap implementation with the same random schedule —
// including many exact timestamp collisions to exercise the FIFO
// tie-break — and requires the identical execution order.
func TestEngineOrderMatchesReferenceHeap(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	e := NewEngine(1)
	var ref refHeap
	var refSeq uint64

	const n = 5000
	var got, want []int
	for i := 0; i < n; i++ {
		// Coarse-grained times force ties; spread spans many bands so
		// several shards are populated at once.
		at := time.Duration(rng.Intn(50)) * 3 * time.Millisecond
		id := i
		e.At(at, func() { got = append(got, id) })
		refSeq++
		heap.Push(&ref, &refEvent{at: at, seq: refSeq, id: id})
	}
	e.Run(time.Second)
	for ref.Len() > 0 {
		want = append(want, heap.Pop(&ref).(*refEvent).id)
	}
	if len(got) != n || len(want) != n {
		t.Fatalf("ran %d events, reference %d, want %d", len(got), len(want), n)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("execution order diverges at %d: got id %d, reference id %d", i, got[i], want[i])
		}
	}
}

// TestEngineOrderWithRescheduling interleaves Run windows with events
// that schedule more events (the simulator's dominant pattern) and
// checks global (at, seq) order is still honored.
func TestEngineOrderWithRescheduling(t *testing.T) {
	e := NewEngine(7)
	var order []int
	var schedule func(depth, id int)
	schedule = func(depth, id int) {
		e.After(time.Duration(id%5)*time.Millisecond, func() {
			order = append(order, id)
			if depth < 3 {
				schedule(depth+1, id*10+1)
				schedule(depth+1, id*10+2)
			}
		})
	}
	for i := 1; i <= 8; i++ {
		schedule(0, i)
	}
	// Run in short windows so pending events straddle Run boundaries.
	for w := time.Duration(0); w < 100*time.Millisecond; w += 2 * time.Millisecond {
		e.Run(w)
	}
	e.Run(time.Second)
	if e.Pending() != 0 {
		t.Fatalf("pending = %d after drain, want 0", e.Pending())
	}
	seen := make(map[int]bool)
	for _, id := range order {
		if seen[id] {
			t.Fatalf("event %d ran twice", id)
		}
		seen[id] = true
	}
	// 8 roots, each spawning a binary tree of depth 3: 8*(1+2+4+8).
	if len(order) != 8*15 {
		t.Fatalf("ran %d events, want %d", len(order), 8*15)
	}
}

// TestEnginePastEventsRunAtNow pins the clamping rule: scheduling in the
// past executes at the current virtual time, in FIFO seq order with
// anything else scheduled at that time.
func TestEnginePastEventsRunAtNow(t *testing.T) {
	e := NewEngine(1)
	var order []string
	e.At(10*time.Millisecond, func() {
		e.At(2*time.Millisecond, func() { order = append(order, "past") })
		e.At(10*time.Millisecond, func() { order = append(order, "now") })
		order = append(order, "first")
	})
	e.Run(time.Second)
	if len(order) != 3 || order[0] != "first" || order[1] != "past" || order[2] != "now" {
		t.Fatalf("order = %v, want [first past now]", order)
	}
	if e.Executed() != 3 {
		t.Fatalf("Executed() = %d, want 3", e.Executed())
	}
}

// TestEnginePoolReuse checks the backing arrays are reused: after a
// warm-up that sizes the shard heaps, steady-state At+Run cycles must
// not grow the heap allocation at all. The closure is hoisted so the
// measurement sees only the scheduler's own behavior.
func TestEnginePoolReuse(t *testing.T) {
	e := NewEngine(3)
	fn := func() {}
	// Warm up: grow every shard's backing array past steady-state size.
	for i := 0; i < 4096; i++ {
		e.At(time.Duration(i)*time.Millisecond, fn)
	}
	e.Run(5 * time.Second)

	base := e.Now()
	allocs := testing.AllocsPerRun(200, func() {
		// Interleave Run and At across several bands, as the protocol
		// stack does, and drain fully so slots are recycled.
		for i := 0; i < 64; i++ {
			e.After(time.Duration(i%7)*time.Millisecond, fn)
		}
		base += 10 * time.Millisecond
		e.Run(base)
	})
	if e.Pending() != 0 {
		t.Fatalf("pending = %d, want 0", e.Pending())
	}
	if allocs > 0 {
		t.Fatalf("steady-state schedule/run allocated %v allocs per cycle, want 0", allocs)
	}
}

// TestEngineConcurrentEngines runs independent engines on separate
// goroutines under the race tier: shard pools are per-engine state and
// must not share anything mutable across instances.
func TestEngineConcurrentEngines(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			e := NewEngine(seed)
			count := 0
			for i := 0; i < 1000; i++ {
				e.At(time.Duration(i%97)*time.Millisecond, func() { count++ })
			}
			e.Run(time.Second)
			if count != 1000 {
				t.Errorf("engine %d ran %d events, want 1000", seed, count)
			}
		}(int64(g))
	}
	wg.Wait()
}

// BenchmarkEngineThroughput measures raw scheduler throughput: a
// self-sustaining event population (each callback reschedules itself)
// sized like a large simulation's in-flight message count.
func BenchmarkEngineThroughput(b *testing.B) {
	e := NewEngine(9)
	const population = 1 << 16
	var fns [population]func()
	for i := 0; i < population; i++ {
		d := time.Duration(1+i%1024) * 37 * time.Microsecond
		fns[i] = func() { e.After(d, fns[i]) }
	}
	for i := 0; i < population; i++ {
		e.After(time.Duration(i)*time.Microsecond, fns[i])
	}
	// Warm up: cycle the whole population several times so every
	// time-band shard grows to steady-state capacity (bands rotate
	// across shards as the clock advances); the measured loop is then
	// alloc-free even at -benchtime 1x (the bench.sh gate
	// configuration).
	warm := e.Now()
	for e.Executed() < 16*population {
		warm += 10 * time.Millisecond
		e.Run(warm)
	}
	b.ReportAllocs()
	b.ResetTimer()
	start := e.Executed()
	horizon := e.Now()
	for e.Executed()-start < uint64(b.N) {
		horizon += 10 * time.Millisecond
		e.Run(horizon)
	}
	b.StopTimer()
	ran := e.Executed() - start
	if ran > 0 {
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(ran), "ns/event")
	}
}

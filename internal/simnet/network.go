package simnet

import (
	"errors"
	"fmt"
	"time"

	"pandas/internal/obsv"
)

// Common bandwidth figures (bits per second) from the paper's testbed.
const (
	// NodeBandwidth is the per-node connection cap (25 Mbps).
	NodeBandwidth = 25_000_000
	// BuilderBandwidth is the builder's cloud uplink (10 Gbps).
	BuilderBandwidth = 10_000_000_000
	// DefaultLossRate is the UDP packet loss observed in the paper's
	// cluster.
	DefaultLossRate = 0.03
)

// Errors returned by the network.
var ErrUnknownNode = errors.New("simnet: unknown node index")

// LatencyModel yields the one-way propagation delay between two nodes.
type LatencyModel interface {
	Delay(from, to int) time.Duration
}

// ConstantLatency is the simplest latency model: the same one-way delay
// for every pair.
type ConstantLatency time.Duration

// Delay implements LatencyModel.
func (c ConstantLatency) Delay(from, to int) time.Duration { return time.Duration(c) }

// Handler receives delivered messages. from is the sender's node index,
// size the wire size in bytes. Payloads are shared by reference: handlers
// must not mutate them.
type Handler func(from int, size int, payload any)

// NodeStats accumulates per-node traffic counters.
type NodeStats struct {
	MsgsSent  int
	MsgsRecv  int
	BytesSent int64
	BytesRecv int64
	MsgsLost  int // messages sent by this node that the network dropped
}

// TotalBytes returns traffic volume summed over both directions, the
// quantity plotted in Fig. 10 / Fig. 13c of the paper.
func (s NodeStats) TotalBytes() int64 { return s.BytesSent + s.BytesRecv }

// TotalMsgs returns messages summed over both directions.
func (s NodeStats) TotalMsgs() int { return s.MsgsSent + s.MsgsRecv }

// Config parameterizes a Network.
type Config struct {
	// Latency provides propagation delays; required.
	Latency LatencyModel
	// LossRate is the independent drop probability per message.
	LossRate float64
	// Seed drives all the network's randomness.
	Seed int64
	// MinDelay bounds the smallest propagation delay (packets never
	// arrive instantaneously, even loopback); optional.
	MinDelay time.Duration
	// Jitter adds a uniform random extra delay in [0, Jitter) to every
	// delivered message, modelling transient latency spikes; optional.
	Jitter time.Duration
}

// Network simulates message exchange among indexed nodes over the engine.
type Network struct {
	engine  *Engine
	cfg     Config
	nodes   []nodeState
	dropped int

	// linkFilter, when non-nil, vetoes individual links: a true return
	// drops the message (after the sender's uplink is charged — the bytes
	// were transmitted into a black hole). Used by fault injection to
	// model partitions.
	linkFilter func(from, to int) bool

	// Registry metric handles (nil without SetMetrics): looked up once so
	// the per-message cost is a nil check plus an atomic add.
	mDelivered *obsv.Counter
	mDropped   *obsv.Counter
	mBytes     *obsv.Counter
	mQueue     *obsv.Gauge
}

type nodeState struct {
	handler    Handler
	upBps      float64
	downBps    float64
	uplinkFree time.Duration
	downFree   time.Duration
	stats      NodeStats
	dead       bool
}

// New creates an empty network. Config.Latency must be non-nil.
func New(cfg Config) (*Network, error) {
	if cfg.Latency == nil {
		return nil, errors.New("simnet: config requires a latency model")
	}
	if cfg.LossRate < 0 || cfg.LossRate >= 1 {
		return nil, fmt.Errorf("simnet: loss rate %v out of [0,1)", cfg.LossRate)
	}
	return &Network{engine: NewEngine(cfg.Seed), cfg: cfg}, nil
}

// Engine returns the underlying event engine (for timers).
func (n *Network) Engine() *Engine { return n.engine }

// Now returns the current virtual time.
func (n *Network) Now() time.Duration { return n.engine.Now() }

// After schedules a callback; sugar for Engine().After.
func (n *Network) After(d time.Duration, fn func()) { n.engine.After(d, fn) }

// Run drives the simulation; sugar for Engine().Run.
func (n *Network) Run(until time.Duration) int { return n.engine.Run(until) }

// AddNode registers a node with the given bandwidth caps (bits/second)
// and returns its index. A nil handler discards deliveries.
func (n *Network) AddNode(h Handler, upBps, downBps float64) int {
	n.nodes = append(n.nodes, nodeState{handler: h, upBps: upBps, downBps: downBps})
	return len(n.nodes) - 1
}

// SetHandler replaces a node's message handler.
func (n *Network) SetHandler(idx int, h Handler) error {
	if idx < 0 || idx >= len(n.nodes) {
		return fmt.Errorf("%w: %d", ErrUnknownNode, idx)
	}
	n.nodes[idx].handler = h
	return nil
}

// SetDead marks a node as crashed/free-riding: it still receives bytes
// (the network cannot know) but its handler is never invoked, and it
// sends nothing. Used for the paper's dead-node fault experiments.
func (n *Network) SetDead(idx int, dead bool) error {
	if idx < 0 || idx >= len(n.nodes) {
		return fmt.Errorf("%w: %d", ErrUnknownNode, idx)
	}
	n.nodes[idx].dead = dead
	return nil
}

// IsDead reports the dead flag.
func (n *Network) IsDead(idx int) bool {
	return idx >= 0 && idx < len(n.nodes) && n.nodes[idx].dead
}

// NumNodes returns the number of registered nodes.
func (n *Network) NumNodes() int { return len(n.nodes) }

// Stats returns a copy of the node's traffic counters.
func (n *Network) Stats(idx int) NodeStats {
	if idx < 0 || idx >= len(n.nodes) {
		return NodeStats{}
	}
	return n.nodes[idx].stats
}

// ResetStats zeroes traffic counters for all nodes (between slots).
func (n *Network) ResetStats() {
	for i := range n.nodes {
		n.nodes[i].stats = NodeStats{}
	}
}

// Dropped returns the total number of messages lost in transit.
func (n *Network) Dropped() int { return n.dropped }

// LossRate returns the current random-loss probability.
func (n *Network) LossRate() float64 { return n.cfg.LossRate }

// SetLossRate changes the random-loss probability mid-run (fault
// injection: loss bursts raise it for a window, then restore the
// baseline). Out-of-range values are clamped to [0, 1).
func (n *Network) SetLossRate(rate float64) {
	if rate < 0 {
		rate = 0
	}
	if rate >= 1 {
		rate = 0.999999
	}
	n.cfg.LossRate = rate
}

// SetLinkFilter installs (or, with nil, removes) a per-link veto: f is
// consulted for every lossy or reliable send, and a true return drops
// the message after uplink accounting — partitioned traffic still costs
// the sender bandwidth. Fault injection uses this to model network
// partitions; the filter must be deterministic for reproducible runs.
func (n *Network) SetLinkFilter(f func(from, to int) bool) {
	n.linkFilter = f
}

// SetMetrics publishes the network's counters into an obsv registry:
// simnet_delivered_total, simnet_dropped_total, simnet_bytes_total, and
// the simnet_queue_depth gauge (event-queue depth sampled at each
// delivery). Pass nil to stop updating.
func (n *Network) SetMetrics(reg *obsv.Registry) {
	if reg == nil {
		n.mDelivered, n.mDropped, n.mBytes, n.mQueue = nil, nil, nil, nil
		return
	}
	n.mDelivered = reg.Counter("simnet_delivered_total")
	n.mDropped = reg.Counter("simnet_dropped_total")
	n.mBytes = reg.Counter("simnet_bytes_total")
	n.mQueue = reg.Gauge("simnet_queue_depth")
}

// Send transmits size bytes of payload from one node to another. The
// message occupies the sender's uplink (store-and-forward), propagates
// with the model's delay, then occupies the receiver's downlink. It may
// be silently lost. Sending from a dead node is a no-op, as is sending to
// an unknown index.
func (n *Network) Send(from, to, size int, payload any) {
	n.send(from, to, size, payload, true)
}

// SendReliable is Send without the random loss. The paper's testbed
// observed its 3% UDP loss under many-to-many fetch congestion; the
// builder's dedicated seeding path (one sender on a 10 Gbps cloud uplink)
// delivered in full — its Fig. 9a seeding CDF reaches every node. Seeding
// therefore uses this path; all peer-to-peer fetch traffic uses Send.
func (n *Network) SendReliable(from, to, size int, payload any) {
	n.send(from, to, size, payload, false)
}

func (n *Network) send(from, to, size int, payload any, lossy bool) {
	if from < 0 || from >= len(n.nodes) || to < 0 || to >= len(n.nodes) {
		return
	}
	sender := &n.nodes[from]
	if sender.dead {
		return
	}
	now := n.engine.Now()
	sender.stats.MsgsSent++
	sender.stats.BytesSent += int64(size)

	// Uplink serialization: transmission begins when the link frees up.
	txTime := transferTime(size, sender.upBps)
	start := max(now, sender.uplinkFree)
	sender.uplinkFree = start + txTime

	// A partition cut drops the message outright — before the loss draw,
	// so the rng stream is untouched by messages that could never arrive.
	// Reliable sends are cut too: no transport crosses a partition.
	if n.linkFilter != nil && n.linkFilter(from, to) {
		sender.stats.MsgsLost++
		n.dropped++
		if n.mDropped != nil {
			n.mDropped.Inc()
		}
		return
	}

	// Loss is decided up front (deterministic given the seed) but the
	// uplink capacity is still consumed — the sender paid for the bytes.
	if lossy && n.cfg.LossRate > 0 && n.engine.rng.Float64() < n.cfg.LossRate {
		sender.stats.MsgsLost++
		n.dropped++
		if n.mDropped != nil {
			n.mDropped.Inc()
		}
		return
	}

	prop := n.cfg.Latency.Delay(from, to)
	if prop < n.cfg.MinDelay {
		prop = n.cfg.MinDelay
	}
	if n.cfg.Jitter > 0 {
		prop += time.Duration(n.engine.rng.Int63n(int64(n.cfg.Jitter)))
	}
	arrive := start + txTime + prop

	n.engine.At(arrive, func() {
		recv := &n.nodes[to]
		rxTime := transferTime(size, recv.downBps)
		rxStart := max(n.engine.Now(), recv.downFree)
		recv.downFree = rxStart + rxTime
		n.engine.At(rxStart+rxTime, func() {
			recv.stats.MsgsRecv++
			recv.stats.BytesRecv += int64(size)
			if n.mDelivered != nil {
				n.mDelivered.Inc()
				n.mBytes.Add(int64(size))
				n.mQueue.Set(int64(n.engine.Pending()))
			}
			if recv.dead || recv.handler == nil {
				return
			}
			recv.handler(from, size, payload)
		})
	})
}

// transferTime converts a byte count and a bandwidth (bits/s) into a
// duration. Zero or negative bandwidth means "infinite".
func transferTime(size int, bps float64) time.Duration {
	if bps <= 0 {
		return 0
	}
	seconds := float64(size*8) / bps
	return time.Duration(seconds * float64(time.Second))
}

// Package simnet is a deterministic discrete-event network simulator.
//
// It plays the role of the paper's two evaluation substrates at once: the
// 80-server cluster with tc-emulated WAN latencies (for 1,000 nodes) and
// the PeerSim simulator (up to 20,000 nodes). A single-threaded event loop
// over a virtual clock delivers messages with
//
//	delay = uplink queueing + transmission + propagation +
//	        downlink queueing + reception
//
// where transmission/reception times derive from per-node bandwidth caps
// (25 Mbps for ordinary nodes, 10 Gbps for the builder, as in the paper)
// and propagation comes from an all-pairs latency model (package latency).
// Messages are independently lost with a configurable probability (3% in
// the paper's testbed). All randomness is drawn from a seeded generator,
// so runs are exactly reproducible.
package simnet

import (
	"container/heap"
	"math/rand"
	"time"
)

// event is a scheduled callback.
type event struct {
	at  time.Duration
	seq uint64 // tie-break for equal times: FIFO
	fn  func()
}

// eventHeap is a min-heap ordered by (at, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Engine is the discrete-event core: a virtual clock and an event queue.
// It is not safe for concurrent use; all callbacks run on the caller's
// goroutine inside Run.
type Engine struct {
	now   time.Duration
	seq   uint64
	queue eventHeap
	rng   *rand.Rand
}

// NewEngine creates an engine with a deterministic random source.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Rand exposes the engine's deterministic random source.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// At schedules fn at absolute virtual time t. Times in the past run at the
// current time (never before).
func (e *Engine) At(t time.Duration, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	heap.Push(&e.queue, &event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn delay after the current virtual time.
func (e *Engine) After(delay time.Duration, fn func()) {
	e.At(e.now+delay, fn)
}

// Run executes events in timestamp order until the queue is empty or the
// next event is later than until. It returns the number of events run.
func (e *Engine) Run(until time.Duration) int {
	n := 0
	for len(e.queue) > 0 {
		next := e.queue[0]
		if next.at > until {
			break
		}
		heap.Pop(&e.queue)
		e.now = next.at
		next.fn()
		n++
	}
	if e.now < until {
		e.now = until
	}
	return n
}

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.queue) }

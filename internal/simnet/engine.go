// Package simnet is a deterministic discrete-event network simulator.
//
// It plays the role of the paper's two evaluation substrates at once: the
// 80-server cluster with tc-emulated WAN latencies (for 1,000 nodes) and
// the PeerSim simulator (up to 20,000 nodes). A single-threaded event loop
// over a virtual clock delivers messages with
//
//	delay = uplink queueing + transmission + propagation +
//	        downlink queueing + reception
//
// where transmission/reception times derive from per-node bandwidth caps
// (25 Mbps for ordinary nodes, 10 Gbps for the builder, as in the paper)
// and propagation comes from an all-pairs latency model (package latency).
// Messages are independently lost with a configurable probability (3% in
// the paper's testbed). All randomness is drawn from a seeded generator,
// so runs are exactly reproducible.
package simnet

import (
	"math/rand"
	"time"
)

// event is a scheduled callback. Events are stored by value inside the
// shard heaps' backing arrays: scheduling never allocates a per-event
// object, and popped slots are reused for later pushes (the backing
// arrays act as the event pool).
type event struct {
	at  time.Duration
	seq uint64 // tie-break for equal times: FIFO
	fn  func()
}

// The event queue is sharded by time band so that each push/pop works on
// a short heap: events whose timestamps fall in the same bandWidth-sized
// window share a shard, and consecutive windows round-robin across the
// shards. Simulation load is dominated by message deliveries spread over
// a few hundred milliseconds of virtual time, so banding spreads the
// queue roughly evenly and cuts the sift depth by ~log2(numShards)
// compared to one big heap.
const (
	numShards = 8
	// bandBits selects ~4.2ms bands (time.Duration is in nanoseconds).
	bandBits = 22
)

// eventShard is a 4-ary min-heap of events ordered by (at, seq). A 4-ary
// layout halves the tree depth of a binary heap and keeps children of a
// node in one cache line, which profiles faster for the short
// value-struct heaps used here.
type eventShard []event

func (h eventShard) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h *eventShard) push(ev event) {
	s := *h
	s = append(s, ev)
	// Sift up.
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 4
		if !s.less(i, parent) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
	*h = s
}

// pop removes and returns the minimum event. The vacated tail slot keeps
// its backing storage but drops the closure reference so the GC can
// collect executed callbacks.
func (h *eventShard) pop() event {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s[n] = event{}
	s = s[:n]
	// Sift down.
	i := 0
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		min := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if s.less(c, min) {
				min = c
			}
		}
		if !s.less(min, i) {
			break
		}
		s[i], s[min] = s[min], s[i]
		i = min
	}
	*h = s
	return top
}

// shardFor maps a timestamp to its time-band shard.
func shardFor(at time.Duration) int {
	return int(uint64(at)>>bandBits) % numShards
}

// Engine is the discrete-event core: a virtual clock and a sharded event
// queue. It is not safe for concurrent use; all callbacks run on the
// caller's goroutine inside Run.
type Engine struct {
	now      time.Duration
	seq      uint64
	executed uint64
	pending  int
	shards   [numShards]eventShard
	rng      *rand.Rand
}

// NewEngine creates an engine with a deterministic random source.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Rand exposes the engine's deterministic random source.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// At schedules fn at absolute virtual time t. Times in the past run at the
// current time (never before).
func (e *Engine) At(t time.Duration, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	e.pending++
	e.shards[shardFor(t)].push(event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn delay after the current virtual time.
func (e *Engine) After(delay time.Duration, fn func()) {
	e.At(e.now+delay, fn)
}

// peekShard returns the shard index holding the globally minimum (at,
// seq) event, or -1 when the queue is empty. Sequence numbers are unique,
// so the (at, seq) order across shards is total and matches the single
// heap exactly.
func (e *Engine) peekShard() int {
	best := -1
	for i := range e.shards {
		s := e.shards[i]
		if len(s) == 0 {
			continue
		}
		if best < 0 {
			best = i
			continue
		}
		b := e.shards[best]
		if s[0].at < b[0].at || (s[0].at == b[0].at && s[0].seq < b[0].seq) {
			best = i
		}
	}
	return best
}

// Run executes events in timestamp order until the queue is empty or the
// next event is later than until. It returns the number of events run.
func (e *Engine) Run(until time.Duration) int {
	n := 0
	for {
		i := e.peekShard()
		if i < 0 || e.shards[i][0].at > until {
			break
		}
		ev := e.shards[i].pop()
		e.pending--
		e.now = ev.at
		ev.fn()
		n++
	}
	e.executed += uint64(n)
	if e.now < until {
		e.now = until
	}
	return n
}

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return e.pending }

// Executed returns the total number of events run since creation; the
// scale experiments divide it by wall-clock time for events/sec.
func (e *Engine) Executed() uint64 { return e.executed }
